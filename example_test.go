package pmgard_test

import (
	"fmt"
	"math"

	"pmgard"
)

// waveField builds a small smooth 3-D field for the examples.
func waveField() *pmgard.Tensor {
	n := 17
	f := pmgard.NewTensor(n, n, n)
	data := f.Data()
	ix := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				x := float64(i) / float64(n-1)
				y := float64(j) / float64(n-1)
				z := float64(k) / float64(n-1)
				data[ix] = math.Sin(3*x) * math.Cos(2*y) * math.Sin(x+z)
				ix++
			}
		}
	}
	return f
}

// Example compresses a field and retrieves it progressively at two
// tolerances, showing that the tighter tolerance costs more bytes.
func Example() {
	field := waveField()
	c, err := pmgard.Compress(field, pmgard.DefaultConfig(), "demo", 0)
	if err != nil {
		panic(err)
	}
	h := &c.Header

	loose, _, err := pmgard.RetrieveTolerance(h, c, h.TheoryEstimator(), h.AbsTolerance(1e-2))
	if err != nil {
		panic(err)
	}
	_, planLoose, _ := pmgard.RetrieveTolerance(h, c, h.TheoryEstimator(), h.AbsTolerance(1e-2))
	_, planTight, err := pmgard.RetrieveTolerance(h, c, h.TheoryEstimator(), h.AbsTolerance(1e-6))
	if err != nil {
		panic(err)
	}
	fmt.Println("loose error within bound:", pmgard.MaxAbsDiff(field, loose) <= h.AbsTolerance(1e-2))
	fmt.Println("tight costs more:", planTight.Bytes > planLoose.Bytes)
	// Output:
	// loose error within bound: true
	// tight costs more: true
}

// ExampleSession shows progressive refinement: tightening the tolerance
// only fetches the delta, so the session's total never exceeds a one-shot
// retrieval at the final tolerance.
func ExampleSession() {
	field := waveField()
	c, err := pmgard.Compress(field, pmgard.DefaultConfig(), "demo", 0)
	if err != nil {
		panic(err)
	}
	h := &c.Header
	s, err := pmgard.NewSession(h, c)
	if err != nil {
		panic(err)
	}
	est := h.TheoryEstimator()
	if _, _, _, err := s.Refine(est, h.AbsTolerance(1e-2)); err != nil {
		panic(err)
	}
	coarseBytes := s.BytesFetched()
	if _, _, _, err := s.Refine(est, h.AbsTolerance(1e-6)); err != nil {
		panic(err)
	}
	_, oneShot, err := pmgard.RetrieveTolerance(h, c, est, h.AbsTolerance(1e-6))
	if err != nil {
		panic(err)
	}
	fmt.Println("refinement fetched more:", s.BytesFetched() > coarseBytes)
	fmt.Println("no wasted reads:", s.BytesFetched() <= oneShot.Bytes)
	// Output:
	// refinement fetched more: true
	// no wasted reads: true
}

// ExampleBackends selects a progressive-codec backend explicitly and probes
// which backend retrieves a field cheapest — the selection cmd/serve -raw
// automates per field.
func ExampleBackends() {
	field := waveField()
	fmt.Println("registered:", pmgard.Backends())

	cfg := pmgard.DefaultConfig()
	cfg.Backend = "interp"
	c, err := pmgard.Compress(field, cfg, "demo", 0)
	if err != nil {
		panic(err)
	}
	h := &c.Header
	rec, _, err := pmgard.RetrieveTolerance(h, c, h.TheoryEstimator(), h.AbsTolerance(1e-4))
	if err != nil {
		panic(err)
	}
	fmt.Println("backend:", h.Codec())
	fmt.Println("within bound:", pmgard.MaxAbsDiff(field, rec) <= h.AbsTolerance(1e-4))

	cmp, err := pmgard.ProbeBackends(field, pmgard.DefaultConfig(), "demo", nil, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("probed backends:", len(cmp.Results) == len(pmgard.Backends()))
	// Output:
	// registered: [interp mgard]
	// backend: interp
	// within bound: true
	// probed backends: true
}

// ExampleRetrieveResolution reconstructs at a quarter of the resolution
// from only the coarse coefficient levels.
func ExampleRetrieveResolution() {
	field := waveField()
	c, err := pmgard.Compress(field, pmgard.DefaultConfig(), "demo", 0)
	if err != nil {
		panic(err)
	}
	coarse, _, err := pmgard.RetrieveResolution(&c.Header, c, []int{32, 32, 32, 0, 0}, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println("coarse dims:", coarse.Dims())
	// Output:
	// coarse dims: [5 5 5]
}
