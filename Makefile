# pmgard build and verification targets.

GO ?= go

.PHONY: all build test vet race cover fuzz bench bench-parallel bench-scaling bench-full experiments clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	gofmt -l . | (! grep .) || (echo "gofmt needed on the files above" && exit 1)

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Coverage gate over the codec stack (internal/codec, internal/bitplane,
# internal/core) against the baseline in ci/coverage_baseline.txt.
cover:
	./ci/covergate.sh

# Short fuzz pass over every fuzz target (regression corpora always run
# under plain `make test`).
fuzz:
	$(GO) test -fuzz FuzzOpen -fuzztime 30s ./internal/storage/
	$(GO) test -fuzz FuzzRoundTrip -fuzztime 30s ./internal/lossless/
	$(GO) test -fuzz FuzzDecompressGarbage -fuzztime 30s ./internal/lossless/
	$(GO) test -fuzz FuzzRead -fuzztime 30s ./internal/fieldio/
	$(GO) test -fuzz FuzzCodecRoundtrip -fuzztime 30s ./internal/codec/codectest/

# testing.B harness at smoke scale (one pass per figure).
bench:
	$(GO) test -bench . -benchmem -benchtime 1x .

# Re-record the GOMAXPROCS scaling sweep of the streaming refactor
# pipeline (BENCH_parallel.json).
bench-parallel:
	$(GO) run ./cmd/bench -dims 33,33,33 -parallel-out BENCH_parallel.json

# Multi-core scaling gate (skips on single-core hosts).
bench-scaling:
	./ci/benchscaling.sh

# Regenerate every paper table/figure at default scale (~25 min on 1 core).
experiments:
	$(GO) run ./cmd/bench -exp all

clean:
	$(GO) clean ./...
