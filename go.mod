module pmgard

go 1.22
