// Fault tolerance: retrieve through a flaky storage hierarchy. The cold
// tiers that make progressive retrieval worthwhile (HDD, tape, remote
// object stores, §II-A) are exactly where transient I/O errors, latency
// spikes and bit-rot live, so the fetch path must survive them instead of
// failing closed. This walkthrough shows the three layers:
//
//  1. a RetryingSource absorbing a 20% transient-fault rate with bounded
//     retries and exponential backoff — the reconstruction is byte-identical
//     to the fault-free run;
//  2. a degraded-mode session: when a plane is permanently lost, Refine
//     falls back to the deepest consistent plane prefix and reports the
//     error bound still achieved, instead of returning an error;
//  3. manifest checksums: a corrupted tiered payload is detected before it
//     reaches the decoder.
//
// Run with: go run ./examples/fault-tolerance
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"pmgard/internal/core"
	"pmgard/internal/faults"
	"pmgard/internal/grid"
	"pmgard/internal/sim/warpx"
	"pmgard/internal/storage"
)

func main() {
	field, err := warpx.DefaultConfig(17, 17, 17).Field("Ex", 24)
	if err != nil {
		log.Fatal(err)
	}
	c, err := core.Compress(field, core.DefaultConfig(), "Ex", 24)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "pmgard-faults")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store := filepath.Join(dir, "tiered")
	hier, err := storage.DefaultHierarchy(len(c.Header.Levels))
	if err != nil {
		log.Fatal(err)
	}
	if err := c.WriteTiered(store, hier); err != nil {
		log.Fatal(err)
	}
	h, st, err := core.OpenTiered(store)
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	est := h.TheoryEstimator()
	tol := h.AbsTolerance(1e-4)

	// 1 — fault-free baseline, then the same retrieval through a source
	// that fails 20% of read attempts, behind the retry layer.
	clean, _, err := core.RetrieveTolerance(h, core.TieredSource{Store: st}, est, tol)
	if err != nil {
		log.Fatal(err)
	}
	flaky := faults.WrapSource(core.TieredSource{Store: st}, faults.Config{Seed: 42, TransientRate: 0.20})
	retrying := storage.NewRetryingSource(nil, flaky, storage.DefaultRetryPolicy())
	rec, _, err := core.RetrieveTolerance(h, retrying, est, tol)
	if err != nil {
		log.Fatal(err)
	}
	rs, is := retrying.Stats(), flaky.Stats()
	fmt.Printf("1. flaky tier (20%% transient): %d injected faults over %d attempts,\n", is.Transient, is.Reads)
	fmt.Printf("   %d retries, %d reads recovered — reconstruction byte-identical: %v\n",
		rs.Retries, rs.Recovered, grid.MaxAbsDiff(clean, rec) == 0)

	// 2 — degraded mode: level 2 loses everything below plane 2
	// permanently. The session keeps the consistent prefix and reports
	// what the reconstruction still guarantees.
	lost := faults.WrapSource(core.TieredSource{Store: st}, faults.Config{
		Seed:      42,
		Permanent: []faults.PlaneID{{Level: 2, Plane: 2}},
	})
	sess, err := core.NewSession(h, storage.NewRetryingSource(nil, lost, storage.DefaultRetryPolicy()))
	if err != nil {
		log.Fatal(err)
	}
	drec, _, deg, err := sess.Refine(est, tol)
	if err != nil {
		log.Fatal(err)
	}
	if deg == nil {
		log.Fatal("expected a degradation report")
	}
	fmt.Printf("2. plane (2,2) lost: requested planes %v, decoded %v\n", deg.Requested, deg.Got)
	fmt.Printf("   requested tol %.3e, degraded bound %.3e, measured error %.3e (within bound: %v)\n",
		deg.RequestedTol, deg.AchievedBound, grid.MaxAbsDiff(field, drec),
		grid.MaxAbsDiff(field, drec) <= deg.AchievedBound)

	// 3 — bit-rot on disk: flip one byte in a tier file; the manifest
	// checksum rejects the payload before the decoder sees it.
	tier, err := st.TierOf(0)
	if err != nil {
		log.Fatal(err)
	}
	level0 := filepath.Join(store, tier, "level_0.seg")
	blob, err := os.ReadFile(level0)
	if err != nil {
		log.Fatal(err)
	}
	blob[0] ^= 0xFF
	if err := os.WriteFile(level0, blob, 0o644); err != nil {
		log.Fatal(err)
	}
	h2, st2, err := core.OpenTiered(store)
	if err != nil {
		log.Fatal(err)
	}
	defer st2.Close()
	_, err = st2.ReadSegment(storage.SegmentID{Level: 0, Plane: 0})
	fmt.Printf("3. flipped one byte in %s/level_0.seg: read fails with checksum error: %v\n", tier, err != nil)

	// And the degraded session turns even that into a usable answer:
	// corruption classifies as permanent, so level 0 is dropped entirely
	// and the report says what accuracy is left.
	sess2, err := core.NewSession(h2, storage.NewRetryingSource(nil, core.TieredSource{Store: st2}, storage.DefaultRetryPolicy()))
	if err != nil {
		log.Fatal(err)
	}
	_, _, deg2, err := sess2.Refine(est, tol)
	if err != nil {
		log.Fatal(err)
	}
	if deg2 != nil {
		fmt.Printf("   degraded retrieval around the corruption: decoded planes %v, bound %.3e\n",
			deg2.Got, deg2.AchievedBound)
	}
}
