// Parallel pipeline: compress and retrieve the same field at several
// worker counts, timing each and verifying the determinism invariant —
// every stored segment and every reconstructed sample is bit-identical no
// matter how many workers ran the pipeline.
//
// Run with: go run ./examples/parallel-pipeline
package main

import (
	"bytes"
	"fmt"
	"log"
	"math"
	"runtime"
	"time"

	"pmgard/internal/core"
	"pmgard/internal/retrieval"
	"pmgard/internal/sim/grayscott"
)

func main() {
	sim, err := grayscott.New(grayscott.DefaultConfig(33))
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		sim.Step()
	}
	field := sim.FieldV()
	fmt.Printf("field Dv: dims %v, GOMAXPROCS %d\n\n", field.Dims(), runtime.GOMAXPROCS(0))

	// Compress at each worker count; keep the workers=1 artifact as the
	// reference and compare every segment byte-for-byte.
	var ref *core.Compressed
	fmt.Println("workers   compress   retrieve   identical")
	for _, workers := range []int{1, 2, 4, 8} {
		cfg := core.DefaultConfig()
		cfg.Parallelism = workers
		t0 := time.Now()
		c, err := core.Compress(field, cfg, "Dv", 20)
		if err != nil {
			log.Fatal(err)
		}
		compressTime := time.Since(t0)
		h := &c.Header

		plan, err := retrieval.GreedyPlan(h.LevelInfos(), h.TheoryEstimator(), h.AbsTolerance(1e-5))
		if err != nil {
			log.Fatal(err)
		}
		t0 = time.Now()
		rec, err := core.RetrieveWorkers(h, c, plan, workers)
		if err != nil {
			log.Fatal(err)
		}
		retrieveTime := time.Since(t0)

		identical := true
		if ref == nil {
			ref = c
		} else {
			for l := range h.Levels {
				for k := 0; k < h.Planes; k++ {
					seg, _ := c.Segment(l, k)
					want, _ := ref.Segment(l, k)
					if !bytes.Equal(seg, want) {
						identical = false
					}
				}
			}
		}
		// The reconstruction must match the sequential one bit for bit.
		seqRec, err := core.RetrieveWorkers(&ref.Header, ref, plan, 1)
		if err != nil {
			log.Fatal(err)
		}
		for i, v := range rec.Data() {
			if math.Float64bits(v) != math.Float64bits(seqRec.Data()[i]) {
				identical = false
				break
			}
		}
		fmt.Printf("%7d %10s %10s   %v\n", workers, compressTime.Round(time.Millisecond),
			retrieveTime.Round(time.Millisecond), identical)
		if !identical {
			log.Fatal("determinism invariant violated")
		}
	}
	fmt.Println("\nevery worker count produced byte-identical segments and reconstructions")
}
