// Progressive analysis: the exploratory post-hoc workflow the framework is
// built for. An analyst opens a stored field, looks at a cheap coarse
// render, zooms into a region of interest, and progressively tightens the
// accuracy — every step reads only the delta it needs.
//
// Run with: go run ./examples/progressive-analysis
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"pmgard/internal/core"
	"pmgard/internal/sim/warpx"
)

func main() {
	// A stored WarpX current-density dump.
	field, err := warpx.DefaultConfig(17, 17, 17).Field("Jx", 40)
	if err != nil {
		log.Fatal(err)
	}
	c, err := core.Compress(field, core.DefaultConfig(), "Jx", 40)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "pmgard-analysis")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "jx.pmgd")
	if err := c.WriteFile(path); err != nil {
		log.Fatal(err)
	}
	h, st, err := core.OpenFile(path)
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	src := core.StoreSource{Store: st}
	fmt.Printf("stored field: dims %v, %d payload bytes\n\n", h.Dims, h.TotalBytes())

	// Step 1 — cheap overview: reconstruct only the coarse 5³ grid from the
	// first three levels (a fraction of the data, a fraction of the compute).
	coarse, plan, err := core.RetrieveResolution(h, src, []int{32, 32, 32, 0, 0}, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1. overview at %v: %d bytes (%.0f%% of store)\n",
		coarse.Dims(), plan.Bytes, 100*float64(plan.Bytes)/float64(h.TotalBytes()))

	// Step 2 — the analyst spots structure and pulls the full grid at a
	// loose tolerance through a progressive session.
	sess, err := core.NewSession(h, src)
	if err != nil {
		log.Fatal(err)
	}
	est := h.TheoryEstimator()
	rec, _, _, err := sess.Refine(est, h.AbsTolerance(1e-2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2. full grid @1e-2: session has fetched %d bytes\n", sess.BytesFetched())

	// Step 3 — slice the region of interest around the wake maximum.
	lo, hi := []int{4, 4, 4}, []int{13, 13, 13}
	roi := rec.Slice(lo, hi)
	fmt.Printf("3. region of interest %v–%v: %v values, range %.4g\n",
		lo, hi, roi.Dims(), roi.Range())

	// Step 4 — tighten twice; each refinement reads only the delta.
	for _, rel := range []float64{1e-4, 1e-6} {
		before := sess.BytesFetched()
		rec, _, _, err = sess.Refine(est, h.AbsTolerance(rel))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("4. refined to %g: +%d bytes (total %d)\n",
			rel, sess.BytesFetched()-before, sess.BytesFetched())
	}
	fmt.Printf("\nfinal accuracy everywhere, including the ROI, for %d of %d bytes\n",
		sess.BytesFetched(), h.TotalBytes())
}
