// Storage tiers: persist a compressed field as a segment-store file, map
// its coefficient levels across a simulated HPC storage hierarchy (NVMe →
// SSD → HDD → tape, §II-A), and show how the modeled retrieval time grows
// as tighter tolerances reach into slower tiers.
//
// Run with: go run ./examples/storage-tiers
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"pmgard/internal/core"
	"pmgard/internal/sim/warpx"
	"pmgard/internal/storage"
)

func main() {
	field, err := warpx.DefaultConfig(17, 17, 17).Field("Ex", 24)
	if err != nil {
		log.Fatal(err)
	}
	c, err := core.Compress(field, core.DefaultConfig(), "Ex", 24)
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "pmgard-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "ex.pmgd")
	if err := c.WriteFile(path); err != nil {
		log.Fatal(err)
	}

	h, st, err := core.OpenFile(path)
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	hier, err := storage.DefaultHierarchy(len(h.Levels))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("level → tier placement:")
	for l, tierIx := range hier.Placement {
		tier := hier.Tiers[tierIx]
		var levelBytes int64
		for _, s := range h.Levels[l].PlaneSizes {
			levelBytes += s
		}
		fmt.Printf("  level %d (%7d bytes) → %-4s (%.0f MB/s, %.3g s latency)\n",
			l, levelBytes, tier.Name, tier.Bandwidth/1e6, tier.Latency)
	}

	fmt.Println("\nrel_bound  bytes_read  ranged_reads  modeled_io_time  planes/level")
	src := core.StoreSource{Store: st}
	for _, rel := range []float64{1e-1, 1e-3, 1e-5, 1e-7} {
		st.ResetCounters()
		tol := h.AbsTolerance(rel)
		_, plan, err := core.RetrieveTolerance(h, src, h.TheoryEstimator(), tol)
		if err != nil {
			log.Fatal(err)
		}
		// A plane prefix is contiguous, so each touched level costs one
		// ranged read on its tier.
		reqs := make([]int, len(plan.Planes))
		for l, b := range plan.Planes {
			if b > 0 {
				reqs[l] = 1
			}
		}
		tm, err := hier.PlanTime(plan.BytesPerLevel, reqs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%9.0e %11d %13d %14.4g s  %v\n", rel, st.BytesRead(), st.Requests(), tm, plan.Planes)
	}
	fmt.Println("\nthe greedy retriever reaches the tape tier for level 4's cheap top planes")
	fmt.Println("at every tolerance, so its fixed latency dominates; tighter tolerances")
	fmt.Println("grow the bytes moved from the slow tiers")
}
