// Dataset campaign: the full lifecycle a simulation campaign goes through —
// dump several fields over many timesteps into a compressed dataset, train
// the retrieval models once, attach them, and serve post-hoc analyses at
// whatever accuracy each one needs, with collection-wide I/O accounting.
//
// Run with: go run ./examples/dataset-campaign
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"pmgard/internal/core"
	"pmgard/internal/dataset"
	"pmgard/internal/dmgard"
	"pmgard/internal/emgard"
	"pmgard/internal/sim/grayscott"
)

func main() {
	const steps = 10
	dir, err := os.MkdirTemp("", "pmgard-campaign")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Simulation side: dump both Gray-Scott fields every step.
	fmt.Println("running simulation and writing compressed dataset ...")
	sim, err := grayscott.New(grayscott.DefaultConfig(17))
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	w, err := dataset.Create(filepath.Join(dir, "run1"), "gray-scott-17", cfg)
	if err != nil {
		log.Fatal(err)
	}
	bounds := []float64{1e-8, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 5e-7, 5e-5, 5e-3}
	var drecs []dmgard.Record
	var esamps []emgard.Sample
	for t := 0; t < steps; t++ {
		sim.Step()
		for _, name := range grayscott.FieldNames() {
			field, err := sim.Field(name)
			if err != nil {
				log.Fatal(err)
			}
			if err := w.Add(field, name, t); err != nil {
				log.Fatal(err)
			}
			// Harvest model training data alongside the dump (offline
			// stage of Fig. 4), first half of the run only.
			if name == "Du" && t < steps/2 {
				dr, _, err := dmgard.Harvest(field, name, t, cfg, bounds)
				if err != nil {
					log.Fatal(err)
				}
				drecs = append(drecs, dr...)
				es, _, err := emgard.Harvest(field, name, t, cfg, bounds)
				if err != nil {
					log.Fatal(err)
				}
				esamps = append(esamps, es...)
			}
		}
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}

	// 2. Train both models once ("train once, infer many times", §IV-A4).
	fmt.Printf("training D-MGARD (%d records) and E-MGARD (%d samples) ...\n", len(drecs), len(esamps))
	dcfg := dmgard.DefaultConfig()
	dcfg.Epochs = 60
	dm, err := dmgard.Train(drecs, cfg.Planes, dcfg)
	if err != nil {
		log.Fatal(err)
	}
	ecfg := emgard.DefaultConfig()
	ecfg.Epochs = 80
	em, err := emgard.Train(esamps, ecfg)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Analysis side: open the dataset, attach the models, retrieve.
	r, err := dataset.Open(filepath.Join(dir, "run1"))
	if err != nil {
		log.Fatal(err)
	}
	defer r.Close()
	fmt.Printf("\ndataset %q: fields %v, %d timesteps, %d stored bytes\n",
		r.Name(), r.Fields(), len(r.Timesteps("Du")), r.StoredBytes())
	r.AttachDMGARD(dm)
	r.AttachEMGARD(em)

	fmt.Println("\ncontrol    field@t   rel_bound   bytes")
	for _, q := range []struct {
		control string
		field   string
		ts      int
		rel     float64
	}{
		{"theory", "Du", 7, 1e-2},
		{"emgard", "Du", 7, 1e-2},
		{"theory", "Dv", 9, 1e-4},
		{"emgard", "Dv", 9, 1e-4},
		{"dmgard", "Du", 8, 1e-3},
	} {
		var bytes int64
		var err error
		switch q.control {
		case "theory":
			_, plan, e := r.Retrieve(q.field, q.ts, q.rel)
			bytes, err = plan.Bytes, e
		case "emgard":
			_, plan, e := r.RetrieveEMGARD(q.field, q.ts, q.rel)
			bytes, err = plan.Bytes, e
		case "dmgard":
			_, plan, e := r.RetrieveDMGARD(q.field, q.ts, q.rel)
			bytes, err = plan.Bytes, e
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %s@%-6d %9.0e %8d\n", q.control, q.field, q.ts, q.rel, bytes)
	}
	fmt.Printf("\ntotal payload read across the campaign: %d bytes\n", r.BytesRead())
}
