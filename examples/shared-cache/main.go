// Shared plane cache: the multi-analyst serving scenario. N analysts open
// the same stored field at once and refine to the same tolerance — without
// sharing, every analyst pays the full store-read and decompression bill;
// with a shared servecache, the first request for each plane does the work
// and everyone else reuses it (concurrent requests coalesce onto one
// in-flight fetch). Per-analyst accounting is unchanged either way.
//
// Run with: go run ./examples/shared-cache
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync/atomic"

	"pmgard/internal/core"
	"pmgard/internal/pool"
	"pmgard/internal/servecache"
	"pmgard/internal/sim/warpx"
)

// countingSource counts raw store reads so the two serving strategies can
// be compared on the metric that matters: I/O issued to the store.
type countingSource struct {
	src   core.SegmentSource
	reads atomic.Int64
}

func (c *countingSource) Segment(level, plane int) ([]byte, error) {
	c.reads.Add(1)
	return c.src.Segment(level, plane)
}

func main() {
	const analysts = 8

	// One stored WarpX field, served to every analyst.
	field, err := warpx.DefaultConfig(17, 17, 17).Field("Ex", 10)
	if err != nil {
		log.Fatal(err)
	}
	c, err := core.Compress(field, core.DefaultConfig(), "Ex", 10)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "pmgard-shared")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "ex.pmgd")
	if err := c.WriteFile(path); err != nil {
		log.Fatal(err)
	}
	h, st, err := core.OpenFile(path)
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	est := h.TheoryEstimator()
	tol := h.AbsTolerance(1e-4)

	// Strategy 1 — independent sessions: every analyst reads every plane.
	indep := &countingSource{src: core.StoreSource{Store: st}}
	err = pool.Run(analysts, analysts, func(_, i int) error {
		s, err := core.NewSession(h, indep)
		if err != nil {
			return err
		}
		_, _, _, err = s.Refine(est, tol)
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("independent: %d analysts issued %d store reads\n", analysts, indep.reads.Load())

	// Strategy 2 — shared cache: concurrent requests for the same plane
	// coalesce onto one store read + one decompression.
	shared := &countingSource{src: core.StoreSource{Store: st}}
	cache := servecache.New(64 << 20)
	var perAnalyst [analysts]int64
	err = pool.Run(analysts, analysts, func(_, i int) error {
		s, err := core.NewSharedSession(h, core.SharedSource{Src: shared, Cache: cache})
		if err != nil {
			return err
		}
		_, _, _, err = s.Refine(est, tol)
		perAnalyst[i] = s.BytesFetched()
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
	st2 := cache.Stats()
	fmt.Printf("shared:      %d analysts issued %d store reads\n", analysts, shared.reads.Load())
	fmt.Printf("             cache: %d misses, %d hits, %d coalesced, %d bytes resident\n",
		st2.Misses, st2.Hits, st2.Coalesced, cache.Bytes())

	// Accounting is per-analyst even through the cache: every analyst is
	// billed for the planes their session consumed, shared or not.
	for i := 1; i < analysts; i++ {
		if perAnalyst[i] != perAnalyst[0] {
			log.Fatalf("analyst %d billed %d bytes, analyst 0 billed %d", i, perAnalyst[i], perAnalyst[0])
		}
	}
	fmt.Printf("             every analyst billed %d bytes, %.1fx fewer store reads\n",
		perAnalyst[0], float64(indep.reads.Load())/float64(shared.reads.Load()))
}
