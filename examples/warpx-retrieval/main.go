// WarpX retrieval comparison: train D-MGARD and E-MGARD on early timesteps
// of a synthetic laser-wakefield run, then compare the bytes each error-
// control strategy fetches on later timesteps — the paper's headline
// experiment (Fig. 13) as a runnable program.
//
// Run with: go run ./examples/warpx-retrieval
package main

import (
	"fmt"
	"log"

	"pmgard/internal/core"
	"pmgard/internal/dmgard"
	"pmgard/internal/emgard"
	"pmgard/internal/features"
	"pmgard/internal/grid"
	"pmgard/internal/sim/warpx"
)

const (
	steps     = 16
	trainHalf = 8
)

func main() {
	simCfg := warpx.DefaultConfig(17, 17, 17)
	compCfg := core.DefaultConfig()
	bounds := dmgard.DefaultRelBounds()

	// Offline stage: sweep compression experiments on the first half of the
	// run and train both models (§III, Fig. 4).
	fmt.Println("harvesting training sweeps on the first half of the run ...")
	var drecs []dmgard.Record
	var esamps []emgard.Sample
	for t := 0; t < trainHalf; t++ {
		field, err := simCfg.Field("Jx", t)
		if err != nil {
			log.Fatal(err)
		}
		dr, _, err := dmgard.Harvest(field, "Jx", t, compCfg, bounds)
		if err != nil {
			log.Fatal(err)
		}
		drecs = append(drecs, dr...)
		es, _, err := emgard.Harvest(field, "Jx", t, compCfg, bounds)
		if err != nil {
			log.Fatal(err)
		}
		esamps = append(esamps, es...)
	}
	dcfg := dmgard.DefaultConfig()
	dm, err := dmgard.Train(drecs, compCfg.Planes, dcfg)
	if err != nil {
		log.Fatal(err)
	}
	ecfg := emgard.DefaultConfig()
	em, err := emgard.Train(esamps, ecfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained D-MGARD on %d records, E-MGARD on %d samples\n\n", len(drecs), len(esamps))

	// Online stage: retrieve unseen timesteps under each strategy.
	fmt.Println("rel_bound  mgard_bytes  dmgard_bytes  emgard_bytes  sav_D%  sav_E%")
	for _, rel := range []float64{1e-6, 1e-4, 1e-2} {
		var mB, dB, eB int64
		for t := trainHalf; t < steps; t++ {
			field, err := simCfg.Field("Jx", t)
			if err != nil {
				log.Fatal(err)
			}
			c, err := core.Compress(field, compCfg, "Jx", t)
			if err != nil {
				log.Fatal(err)
			}
			h := &c.Header
			tol := h.AbsTolerance(rel)

			// Original MGARD: theory-based greedy control.
			_, planM, err := core.RetrieveTolerance(h, c, h.TheoryEstimator(), tol)
			if err != nil {
				log.Fatal(err)
			}
			mB += planM.Bytes

			// D-MGARD: predict plane counts directly, then size-interpret.
			feat := dmgard.CombineFeatures(features.Extract(field, t), h)
			planes, err := dm.Predict(feat, rel)
			if err != nil {
				log.Fatal(err)
			}
			recD, planD, err := core.RetrievePlanes(h, c, planes)
			if err != nil {
				log.Fatal(err)
			}
			dB += planD.Bytes
			_ = recD

			// E-MGARD: learned per-level constants in the same greedy loop.
			est, err := em.Estimator(h.LevelPools)
			if err != nil {
				log.Fatal(err)
			}
			recE, planE, err := core.RetrieveTolerance(h, c, est, tol)
			if err != nil {
				log.Fatal(err)
			}
			eB += planE.Bytes
			if e := grid.MaxAbsDiff(field, recE); e > tol {
				fmt.Printf("  note: E-MGARD overshot at t=%d (%.2e > %.2e)\n", t, e, tol)
			}
		}
		fmt.Printf("%9.0e %12d %13d %13d %6.1f %6.1f\n",
			rel, mB, dB, eB,
			100*float64(mB-dB)/float64(mB),
			100*float64(mB-eB)/float64(mB))
	}
	fmt.Println("\n(the paper reports 5–40% savings for D-MGARD and 20–80% for E-MGARD)")
}
