// Train-predict: the "train once, infer many times" workflow of §IV-A4.
// A D-MGARD model is trained on the first half of a Gray-Scott run and
// predicts the per-level bit-plane counts on the second half; the program
// prints the prediction-error histogram the paper reports in Fig. 10.
//
// Run with: go run ./examples/train-predict
package main

import (
	"fmt"
	"log"

	"pmgard/internal/core"
	"pmgard/internal/dmgard"
	"pmgard/internal/sim/grayscott"
)

func main() {
	const steps = 12
	sim, err := grayscott.New(grayscott.DefaultConfig(17))
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	bounds := []float64{1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1,
		5e-8, 5e-6, 5e-4, 5e-2}

	var train, test []dmgard.Record
	for t := 0; t < steps; t++ {
		sim.Step()
		field := sim.FieldU()
		recs, _, err := dmgard.Harvest(field, "Du", t, cfg, bounds)
		if err != nil {
			log.Fatal(err)
		}
		if t < steps/2 {
			train = append(train, recs...)
		} else {
			test = append(test, recs...)
		}
	}
	fmt.Printf("harvested %d training and %d test records\n", len(train), len(test))

	tc := dmgard.DefaultConfig()
	tc.Epochs = 100
	model, err := dmgard.Train(train, cfg.Planes, tc)
	if err != nil {
		log.Fatal(err)
	}

	// Histogram of (predicted − actual) plane counts per level.
	const span = 3 // buckets -3..+3
	hist := make([][2*span + 1]int, model.Levels())
	beyond := make([]int, model.Levels())
	for _, r := range test {
		pred, err := model.Predict(r.Features, r.AchievedErr)
		if err != nil {
			log.Fatal(err)
		}
		for l := range pred {
			d := pred[l] - r.Planes[l]
			if d < -span || d > span {
				beyond[l]++
				continue
			}
			hist[l][d+span]++
		}
	}

	fmt.Println("\nprediction error (predicted − actual planes), % of test records:")
	fmt.Print("level ")
	for d := -span; d <= span; d++ {
		fmt.Printf("%7d", d)
	}
	fmt.Println("  |>3|")
	n := float64(len(test))
	for l := range hist {
		fmt.Printf("%5d ", l)
		for _, c := range hist[l] {
			fmt.Printf("%6.1f%%", 100*float64(c)/n)
		}
		fmt.Printf(" %5.1f%%\n", 100*float64(beyond[l])/n)
	}
	fmt.Println("\n(the paper finds >60% of predictions exact on lower levels, ±1 for most of the rest)")
}
