// Quickstart: compress one Gray-Scott field with the progressive pipeline
// and retrieve it at a few error tolerances, printing how little data each
// tolerance needs.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pmgard/internal/core"
	"pmgard/internal/grid"
	"pmgard/internal/sim/grayscott"
)

func main() {
	// 1. Simulate a few steps of the Gray-Scott reaction-diffusion system.
	sim, err := grayscott.New(grayscott.DefaultConfig(17))
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		sim.Step()
	}
	field := sim.FieldV()
	fmt.Printf("field Dv: dims %v, range %.4f\n", field.Dims(), field.Range())

	// 2. Compress: multilevel decomposition → nega-binary bit-planes →
	//    lossless coding, with the error matrix collected along the way.
	c, err := core.Compress(field, core.DefaultConfig(), "Dv", 20)
	if err != nil {
		log.Fatal(err)
	}
	h := &c.Header
	raw := int64(8 * field.Len())
	fmt.Printf("stored payload: %d bytes (raw %d, %.2fx)\n\n",
		h.TotalBytes(), raw, float64(raw)/float64(h.TotalBytes()))

	// 3. Progressive retrieval: each tolerance fetches only the bit-planes
	//    it needs. Tighter tolerance → more planes → more bytes.
	fmt.Println("rel_bound   bytes   % of stored   planes/level        achieved_err")
	for _, rel := range []float64{1e-1, 1e-2, 1e-4, 1e-6, 1e-8} {
		tol := h.AbsTolerance(rel)
		rec, plan, err := core.RetrieveTolerance(h, c, h.TheoryEstimator(), tol)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%9.0e %7d %12.1f%%   %-18s %.3e\n",
			rel, plan.Bytes,
			100*float64(plan.Bytes)/float64(h.TotalBytes()),
			fmt.Sprint(plan.Planes), grid.MaxAbsDiff(field, rec))
	}
}
