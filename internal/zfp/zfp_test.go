package zfp

import (
	"math"
	"math/rand"
	"testing"

	"pmgard/internal/grid"
	"pmgard/internal/sim/warpx"
)

func TestLiftRoundTripWithinOneUnit(t *testing.T) {
	// ZFP's integer lifting drops low bits (it is lossy by design); the
	// round trip must stay within a few units, and blockErr accounts for
	// the residual exactly.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		orig := make([]int64, 4)
		for i := range orig {
			orig[i] = int64(rng.Intn(2000) - 1000)
		}
		p := append([]int64(nil), orig...)
		fwdLift(p, 0, 1)
		invLift(p, 0, 1)
		for i := range orig {
			if d := orig[i] - p[i]; d > 4 || d < -4 {
				t.Fatalf("lift round trip drifted by %d at %d (in %v out %v)", d, i, orig, p)
			}
		}
	}
}

func TestSequencyOrderIsPermutation(t *testing.T) {
	for rank := 1; rank <= 3; rank++ {
		order := sequencyOrder(rank)
		seen := make(map[int]bool)
		for _, o := range order {
			if seen[o] {
				t.Fatalf("rank %d: duplicate %d", rank, o)
			}
			seen[o] = true
		}
		want := 1
		for i := 0; i < rank; i++ {
			want *= blockEdge
		}
		if len(order) != want {
			t.Fatalf("rank %d: %d entries, want %d", rank, len(order), want)
		}
		if order[0] != 0 {
			t.Fatalf("rank %d: DC coefficient not first", rank)
		}
	}
}

func TestRoundTripRespectsBound(t *testing.T) {
	field, err := warpx.DefaultConfig(17, 17, 17).Field("Ex", 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, rel := range []float64{1e-2, 1e-4, 1e-6, 1e-9} {
		bound := rel * field.Range()
		blob, err := Compress(field, bound)
		if err != nil {
			t.Fatal(err)
		}
		rec, gotBound, err := Decompress(blob)
		if err != nil {
			t.Fatal(err)
		}
		if gotBound != bound {
			t.Fatalf("bound round trip: %g vs %g", gotBound, bound)
		}
		if achieved := grid.MaxAbsDiff(field, rec); achieved > bound {
			t.Fatalf("rel %g: achieved %g > bound %g", rel, achieved, bound)
		}
	}
}

func TestTighterBoundBiggerStream(t *testing.T) {
	field, err := warpx.DefaultConfig(17, 17, 17).Field("Jx", 4)
	if err != nil {
		t.Fatal(err)
	}
	loose, _ := Compress(field, 1e-2*field.Range())
	tight, _ := Compress(field, 1e-7*field.Range())
	if len(tight) <= len(loose) {
		t.Fatalf("tight stream %d not larger than loose %d", len(tight), len(loose))
	}
}

func TestLowRankAndOddShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, dims := range [][]int{{6}, {9, 5}, {7, 10, 5}, {4, 4, 4}} {
		f := grid.New(dims...)
		for i := range f.Data() {
			f.Data()[i] = math.Cos(float64(i)/7)*3 + 0.05*rng.NormFloat64()
		}
		bound := 1e-4 * f.Range()
		blob, err := Compress(f, bound)
		if err != nil {
			t.Fatalf("dims %v: %v", dims, err)
		}
		rec, _, err := Decompress(blob)
		if err != nil {
			t.Fatalf("dims %v: %v", dims, err)
		}
		if grid.MaxAbsDiff(f, rec) > bound {
			t.Fatalf("dims %v: bound violated", dims)
		}
	}
}

func TestZeroBlocksNearlyFree(t *testing.T) {
	f := grid.New(16, 16, 16)
	blob, err := Compress(f, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) > 300 {
		t.Fatalf("all-zero field compressed to %d bytes", len(blob))
	}
	rec, _, err := Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	if rec.LinfNorm() != 0 {
		t.Fatal("zero field not reconstructed as zero")
	}
}

func TestSmoothBeatsNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	smooth := grid.New(16, 16, 16)
	noisy := grid.New(16, 16, 16)
	i := 0
	for x := 0; x < 16; x++ {
		for y := 0; y < 16; y++ {
			for z := 0; z < 16; z++ {
				smooth.Data()[i] = math.Sin(float64(x)/5) * math.Cos(float64(y+z)/7)
				noisy.Data()[i] = rng.NormFloat64()
				i++
			}
		}
	}
	bound := 1e-4
	bs, _ := Compress(smooth, bound)
	bn, _ := Compress(noisy, bound)
	if len(bs) >= len(bn) {
		t.Fatalf("smooth field (%d bytes) did not beat noisy (%d bytes)", len(bs), len(bn))
	}
}

func TestCompressValidation(t *testing.T) {
	f := grid.New(4)
	for _, bound := range []float64{0, -1, math.NaN()} {
		if _, err := Compress(f, bound); err == nil {
			t.Errorf("bound %v accepted", bound)
		}
	}
	f4 := grid.New(2, 2, 2, 2)
	if _, err := Compress(f4, 1); err == nil {
		t.Error("rank-4 accepted")
	}
}

func TestDecompressRejectsCorrupt(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2},
		append([]byte{255, 255, 255, 255}, make([]byte, 16)...),
	}
	for i, blob := range cases {
		if _, _, err := Decompress(blob); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	f := grid.New(8, 8)
	for i := range f.Data() {
		f.Data()[i] = float64(i)
	}
	blob, _ := Compress(f, 1e-3)
	if _, _, err := Decompress(blob[:len(blob)-6]); err == nil {
		t.Error("truncated stream accepted")
	}
}
