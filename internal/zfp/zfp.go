// Package zfp implements a simplified ZFP-style error-bounded lossy
// compressor (Lindstrom [16]) as the transform-based counterpart to
// package sz: 4^d blocks, a common fixed-point exponent per block, ZFP's
// integer lifting transform along each axis, sequency reordering,
// nega-binary bit-planes truncated per block to the requested accuracy,
// and a DEFLATE entropy stage.
//
// Like sz (and unlike the progressive pipeline in internal/core), the error
// bound is fixed at compression time — this is the "cannot adjust the
// tolerance after the fact" baseline of the paper's §I. Fixed-accuracy mode
// only; each block stores exactly as many planes as its content needs.
//
// The per-block plane count is chosen against the *measured* block
// reconstruction error (encode → truncate → inverse transform → compare),
// so the bound holds exactly, transform amplification included.
package zfp

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"pmgard/internal/bitplane"
	"pmgard/internal/grid"
	"pmgard/internal/lossless"
)

// blockEdge is the block side length (ZFP's fixed 4).
const blockEdge = 4

// planesBudget is the maximum bit-planes per block (enough to reach double
// round-off at our scales).
const planesBudget = 44

// header is the self-describing stream prefix.
type header struct {
	Dims  []int   `json:"dims"`
	Bound float64 `json:"bound"`
}

// Compress encodes t under the given absolute error bound.
func Compress(t *grid.Tensor, bound float64) ([]byte, error) {
	if bound <= 0 || math.IsNaN(bound) || math.IsInf(bound, 0) {
		return nil, fmt.Errorf("zfp: bound %g must be positive and finite", bound)
	}
	dims := t.Dims()
	rank := len(dims)
	if rank < 1 || rank > 3 {
		return nil, fmt.Errorf("zfp: rank %d unsupported (1-3)", rank)
	}
	blockLen := 1
	for i := 0; i < rank; i++ {
		blockLen *= blockEdge
	}

	var body bytes.Buffer
	forEachBlock(dims, func(origin []int) error {
		block := gatherBlock(t, origin)
		return encodeBlock(&body, block, blockLen, bound)
	})

	packed, err := lossless.Deflate().Compress(body.Bytes())
	if err != nil {
		return nil, fmt.Errorf("zfp: entropy stage: %w", err)
	}
	head, err := json.Marshal(header{Dims: dims, Bound: bound})
	if err != nil {
		return nil, fmt.Errorf("zfp: marshal header: %w", err)
	}
	var out bytes.Buffer
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(head)))
	out.Write(lenBuf[:])
	out.Write(head)
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(body.Len()))
	out.Write(lenBuf[:])
	out.Write(packed)
	return out.Bytes(), nil
}

// Decompress reverses Compress.
func Decompress(blob []byte) (*grid.Tensor, float64, error) {
	if len(blob) < 8 {
		return nil, 0, fmt.Errorf("zfp: stream too short")
	}
	headLen := binary.LittleEndian.Uint32(blob[:4])
	if int(headLen) > len(blob)-8 {
		return nil, 0, fmt.Errorf("zfp: corrupt header length %d", headLen)
	}
	var h header
	if err := json.Unmarshal(blob[4:4+headLen], &h); err != nil {
		return nil, 0, fmt.Errorf("zfp: parse header: %w", err)
	}
	rank := len(h.Dims)
	if rank < 1 || rank > 3 || h.Bound <= 0 {
		return nil, 0, fmt.Errorf("zfp: invalid header %+v", h)
	}
	n := 1
	for _, d := range h.Dims {
		if d <= 0 || n > (1<<28)/d {
			return nil, 0, fmt.Errorf("zfp: implausible dims %v", h.Dims)
		}
		n *= d
	}
	rest := blob[4+headLen:]
	rawLen := binary.LittleEndian.Uint32(rest[:4])
	if rawLen > uint32(16*n+1<<16) {
		return nil, 0, fmt.Errorf("zfp: implausible payload length %d", rawLen)
	}
	body, err := lossless.Deflate().Decompress(rest[4:], int(rawLen))
	if err != nil {
		return nil, 0, fmt.Errorf("zfp: entropy stage: %w", err)
	}

	blockLen := 1
	for i := 0; i < rank; i++ {
		blockLen *= blockEdge
	}
	out := grid.New(h.Dims...)
	rd := bytes.NewReader(body)
	derr := forEachBlock(h.Dims, func(origin []int) error {
		block, err := decodeBlock(rd, blockLen, rank)
		if err != nil {
			return err
		}
		scatterBlock(out, origin, block)
		return nil
	})
	if derr != nil {
		return nil, 0, derr
	}
	return out, h.Bound, nil
}

// forEachBlock walks block origins in row-major order.
func forEachBlock(dims []int, fn func(origin []int) error) error {
	rank := len(dims)
	origin := make([]int, rank)
	for {
		if err := fn(origin); err != nil {
			return err
		}
		d := rank - 1
		for ; d >= 0; d-- {
			origin[d] += blockEdge
			if origin[d] < dims[d] {
				break
			}
			origin[d] = 0
		}
		if d < 0 {
			return nil
		}
	}
}

// gatherBlock copies a 4^d block starting at origin, replicating edge
// values into padding (ZFP's partial-block handling).
func gatherBlock(t *grid.Tensor, origin []int) []float64 {
	dims := t.Dims()
	rank := len(dims)
	blockLen := 1
	for i := 0; i < rank; i++ {
		blockLen *= blockEdge
	}
	block := make([]float64, blockLen)
	idx := make([]int, rank)
	for i := 0; i < blockLen; i++ {
		rem := i
		src := make([]int, rank)
		for d := rank - 1; d >= 0; d-- {
			idx[d] = rem % blockEdge
			rem /= blockEdge
			p := origin[d] + idx[d]
			if p >= dims[d] {
				p = dims[d] - 1 // edge replication
			}
			src[d] = p
		}
		block[i] = t.At(src...)
	}
	return block
}

// scatterBlock writes the in-range part of a block back to the tensor.
func scatterBlock(t *grid.Tensor, origin []int, block []float64) {
	dims := t.Dims()
	rank := len(dims)
	blockLen := len(block)
	idx := make([]int, rank)
	for i := 0; i < blockLen; i++ {
		rem := i
		in := true
		dst := make([]int, rank)
		for d := rank - 1; d >= 0; d-- {
			idx[d] = rem % blockEdge
			rem /= blockEdge
			p := origin[d] + idx[d]
			if p >= dims[d] {
				in = false
				break
			}
			dst[d] = p
		}
		if in {
			t.Set(block[i], dst...)
		}
	}
}

// encodeBlock writes one block record: exponent (int16), plane count
// (uint8), then the planes bit-packed.
func encodeBlock(w *bytes.Buffer, block []float64, blockLen int, bound float64) error {
	maxAbs := 0.0
	for _, v := range block {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs <= bound/2 {
		// Whole block reconstructs as zero within the bound.
		var rec [3]byte
		binary.LittleEndian.PutUint16(rec[:2], 0)
		rec[2] = 0xFF // zero-block marker
		w.Write(rec[:])
		return nil
	}
	exp := int(math.Ceil(math.Log2(maxAbs)))
	if math.Ldexp(1, exp) < maxAbs {
		exp++
	}
	unit := math.Ldexp(1, exp-(planesBudget-4))
	q := make([]int64, blockLen)
	for i, v := range block {
		q[i] = int64(math.Round(v / unit))
	}
	rank := rankOfBlockLen(blockLen)
	forwardTransform(q, rank)
	order := sequencyOrder(rank)
	coeffs := make([]int64, blockLen)
	for i, o := range order {
		coeffs[i] = q[o]
	}

	// Choose the smallest plane count whose measured block error meets the
	// bound. Correct regardless of nega-binary prefix non-monotonicity.
	nb := make([]uint64, blockLen)
	for i, c := range coeffs {
		nb[i] = bitplane.EncodeNegabinary(c)
	}
	planes := planesBudget
	scratch := make([]int64, blockLen)
	for k := 0; k <= planesBudget; k++ {
		if blockErr(nb, k, order, rank, unit, block, scratch) <= bound {
			planes = k
			break
		}
	}

	var head [3]byte
	binary.LittleEndian.PutUint16(head[:2], uint16(int16(exp)))
	head[2] = uint8(planes)
	w.Write(head[:])
	// Pack planes MSB-first, blockLen bits per plane.
	bits := make([]byte, (blockLen*planes+7)/8)
	bit := 0
	for k := 0; k < planes; k++ {
		shift := uint(planesBudget - 1 - k)
		for i := 0; i < blockLen; i++ {
			if nb[i]>>shift&1 == 1 {
				bits[bit>>3] |= 1 << uint(bit&7)
			}
			bit++
		}
	}
	w.Write(bits)
	return nil
}

// blockErr measures the max reconstruction error of keeping the top k
// planes of the block's nega-binary coefficients.
func blockErr(nb []uint64, k int, order []int, rank int, unit float64, orig []float64, scratch []int64) float64 {
	var mask uint64
	if k > 0 {
		mask = ((uint64(1) << uint(k)) - 1) << uint(planesBudget-k)
	}
	for i, o := range order {
		scratch[o] = bitplane.DecodeNegabinary(nb[i] & mask)
	}
	inverseTransform(scratch, rank)
	maxErr := 0.0
	for i, v := range scratch {
		if e := math.Abs(orig[i] - float64(v)*unit); e > maxErr {
			maxErr = e
		}
	}
	return maxErr
}

// decodeBlock reads one block record and reconstructs its values.
func decodeBlock(rd *bytes.Reader, blockLen, rank int) ([]float64, error) {
	var head [3]byte
	if _, err := io.ReadFull(rd, head[:]); err != nil {
		return nil, fmt.Errorf("zfp: block header: %w", err)
	}
	if head[2] == 0xFF {
		return make([]float64, blockLen), nil
	}
	exp := int(int16(binary.LittleEndian.Uint16(head[:2])))
	planes := int(head[2])
	if planes > planesBudget {
		return nil, fmt.Errorf("zfp: block plane count %d out of range", planes)
	}
	bits := make([]byte, (blockLen*planes+7)/8)
	if len(bits) > 0 {
		if _, err := io.ReadFull(rd, bits); err != nil {
			return nil, fmt.Errorf("zfp: block planes: %w", err)
		}
	}
	nb := make([]uint64, blockLen)
	bit := 0
	for k := 0; k < planes; k++ {
		shift := uint(planesBudget - 1 - k)
		for i := 0; i < blockLen; i++ {
			if bits[bit>>3]>>uint(bit&7)&1 == 1 {
				nb[i] |= 1 << shift
			}
			bit++
		}
	}
	order := sequencyOrder(rank)
	q := make([]int64, blockLen)
	for i, o := range order {
		q[o] = bitplane.DecodeNegabinary(nb[i])
	}
	inverseTransform(q, rank)
	unit := math.Ldexp(1, exp-(planesBudget-4))
	out := make([]float64, blockLen)
	for i, v := range q {
		out[i] = float64(v) * unit
	}
	return out, nil
}

func rankOfBlockLen(blockLen int) int {
	switch blockLen {
	case blockEdge:
		return 1
	case blockEdge * blockEdge:
		return 2
	default:
		return 3
	}
}

// forwardTransform applies ZFP's 4-point integer lifting along every axis.
func forwardTransform(q []int64, rank int) {
	applyTransform(q, rank, fwdLift)
}

// inverseTransform exactly reverses forwardTransform.
func inverseTransform(q []int64, rank int) {
	applyTransform(q, rank, invLift)
}

func applyTransform(q []int64, rank int, lift func([]int64, int, int)) {
	blockLen := len(q)
	for axis := 0; axis < rank; axis++ {
		stride := 1
		for d := rank - 1; d > axis; d-- {
			stride *= blockEdge
		}
		lines := blockLen / blockEdge
		for line := 0; line < lines; line++ {
			// Base offset of this line: enumerate positions with axis
			// coordinate 0.
			base := lineBase(line, axis, rank)
			lift(q, base, stride)
		}
	}
}

// lineBase maps a line index to the flat offset of its first element for
// the given transform axis.
func lineBase(line, axis, rank int) int {
	// Positions are blockEdge-ary numbers; insert a zero digit at `axis`.
	digits := make([]int, rank)
	rem := line
	for d := rank - 1; d >= 0; d-- {
		if d == axis {
			continue
		}
		digits[d] = rem % blockEdge
		rem /= blockEdge
	}
	flat := 0
	for d := 0; d < rank; d++ {
		flat = flat*blockEdge + digits[d]
	}
	return flat
}

// fwdLift is ZFP's forward 4-point lifting step.
func fwdLift(p []int64, base, s int) {
	x, y, z, w := p[base], p[base+s], p[base+2*s], p[base+3*s]
	x += w
	x >>= 1
	w -= x
	z += y
	z >>= 1
	y -= z
	x += z
	x >>= 1
	z -= x
	w += y
	w >>= 1
	y -= w
	w += y >> 1
	y -= w >> 1
	p[base], p[base+s], p[base+2*s], p[base+3*s] = x, y, z, w
}

// invLift exactly reverses fwdLift.
func invLift(p []int64, base, s int) {
	x, y, z, w := p[base], p[base+s], p[base+2*s], p[base+3*s]
	y += w >> 1
	w -= y >> 1
	y += w
	w <<= 1
	w -= y
	z += x
	x <<= 1
	x -= z
	y += z
	z <<= 1
	z -= y
	w += x
	x <<= 1
	x -= w
	p[base], p[base+s], p[base+2*s], p[base+3*s] = x, y, z, w
}

// sequencyOrder returns the static coefficient order (by total index sum,
// ties by flat index) used to front-load low-frequency content.
func sequencyOrder(rank int) []int {
	blockLen := 1
	for i := 0; i < rank; i++ {
		blockLen *= blockEdge
	}
	type item struct{ sum, flat int }
	items := make([]item, blockLen)
	for i := 0; i < blockLen; i++ {
		sum := 0
		rem := i
		for d := 0; d < rank; d++ {
			sum += rem % blockEdge
			rem /= blockEdge
		}
		items[i] = item{sum: sum, flat: i}
	}
	// Insertion sort by (sum, flat): blockLen ≤ 64.
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && (items[j].sum < items[j-1].sum ||
			(items[j].sum == items[j-1].sum && items[j].flat < items[j-1].flat)); j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
	order := make([]int, blockLen)
	for i, it := range items {
		order[i] = it.flat
	}
	return order
}
