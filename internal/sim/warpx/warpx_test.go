package warpx

import (
	"math"
	"testing"

	"pmgard/internal/grid"
)

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Dims: []int{16, 16}, A0: 1, Density: 1, Duration: 0.1},
		{Dims: []int{2, 16, 16}, A0: 1, Density: 1, Duration: 0.1},
		{Dims: []int{16, 16, 16}, A0: 0, Density: 1, Duration: 0.1},
		{Dims: []int{16, 16, 16}, A0: 1, Density: 0, Duration: 0.1},
		{Dims: []int{16, 16, 16}, A0: 1, Density: 1, Duration: 0},
		{Dims: []int{16, 16, 16}, A0: 1, Density: 1, Duration: 2},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, c)
		}
	}
	if err := DefaultConfig(16, 16, 16).Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
}

func TestFieldGeneration(t *testing.T) {
	cfg := DefaultConfig(16, 12, 12)
	for _, name := range FieldNames() {
		f, err := cfg.Field(name, 10)
		if err != nil {
			t.Fatalf("Field(%q): %v", name, err)
		}
		if got := f.Dims(); got[0] != 16 || got[1] != 12 || got[2] != 12 {
			t.Fatalf("Field(%q) dims = %v", name, got)
		}
		if f.LinfNorm() == 0 {
			t.Fatalf("Field(%q) is identically zero", name)
		}
		for _, v := range f.Data() {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("Field(%q) contains non-finite values", name)
			}
		}
	}
	if _, err := cfg.Field("Du", 0); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestDeterministic(t *testing.T) {
	cfg := DefaultConfig(16, 8, 8)
	a, err := cfg.Field("Jx", 32)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := cfg.Field("Jx", 32)
	if grid.MaxAbsDiff(a, b) != 0 {
		t.Fatal("field generation not deterministic")
	}
}

func TestFieldsEvolveOverTime(t *testing.T) {
	cfg := DefaultConfig(16, 8, 8)
	a, _ := cfg.Field("Ex", 0)
	b, _ := cfg.Field("Ex", 50)
	if grid.MaxAbsDiff(a, b) == 0 {
		t.Fatal("field identical at t=0 and t=50")
	}
}

func TestAmplitudeScalesWithA0(t *testing.T) {
	lo := DefaultConfig(24, 8, 8)
	lo.A0 = 1
	hi := lo
	hi.A0 = 6
	fl, _ := lo.Field("Ex", 40)
	fh, _ := hi.Field("Ex", 40)
	if fh.LinfNorm() <= fl.LinfNorm() {
		t.Fatalf("higher a0 gave weaker wake: %g vs %g", fh.LinfNorm(), fl.LinfNorm())
	}
}

func TestDensityChangesWakeStructure(t *testing.T) {
	// Different electron densities should change the wake wavelength, so
	// the fields differ substantially (Fig. 3d premise).
	a := DefaultConfig(32, 8, 8)
	a.Density = 0.5
	b := DefaultConfig(32, 8, 8)
	b.Density = 2.0
	fa, _ := a.Field("Jx", 40)
	fb, _ := b.Field("Jx", 40)
	diff := grid.MaxAbsDiff(fa, fb)
	if diff < 0.01*fb.LinfNorm() {
		t.Fatalf("density change barely affected field: diff %g vs norm %g", diff, fb.LinfNorm())
	}
}

func TestDurationChangesEnvelope(t *testing.T) {
	short := DefaultConfig(32, 8, 8)
	short.Duration = 0.03
	long := DefaultConfig(32, 8, 8)
	long.Duration = 0.3
	fs, _ := short.Field("Bx", 20)
	fl, _ := long.Field("Bx", 20)
	// A longer pulse spreads laser energy over more of the axis: count
	// axial positions with significant |Bx|.
	active := func(f *grid.Tensor) int {
		thresh := f.LinfNorm() * 0.05
		count := 0
		dims := f.Dims()
		for i := 0; i < dims[0]; i++ {
			if math.Abs(f.At(i, dims[1]/2, dims[2]/2)) > thresh {
				count++
			}
		}
		return count
	}
	if active(fl) <= active(fs) {
		t.Fatalf("long pulse active extent %d not larger than short %d", active(fl), active(fs))
	}
}

func TestSeedChangesFluctuations(t *testing.T) {
	a := DefaultConfig(16, 8, 8)
	b := DefaultConfig(16, 8, 8)
	b.Seed = 1234
	fa, _ := a.Field("Ex", 30)
	fb, _ := b.Field("Ex", 30)
	if grid.MaxAbsDiff(fa, fb) == 0 {
		t.Fatal("seed change had no effect")
	}
}
