// Package warpx synthesizes fields resembling a WarpX laser-driven electron
// acceleration (laser wakefield) simulation — the paper's second workload.
//
// The real WarpX runs on Summit are not available to this reproduction, so
// the generator produces the closest synthetic equivalent (see DESIGN.md §1):
// a Gaussian laser pulse advecting through a plasma, the plasma wake it
// drives, and the resulting current density. The three scalar fields match
// the paper's evaluation set:
//
//	B_x — the laser's fast transverse oscillation under the pulse envelope,
//	E_x — the longitudinal wakefield: plasma oscillations trailing the
//	      pulse at the plasma wavenumber k_p ∝ √n_e,
//	J_x — the electron current: wake oscillation with nonlinear steepening
//	      growing with the laser amplitude a0.
//
// What matters for the retrieval framework is preserved: the fields evolve
// non-linearly over timesteps, their spectra and smoothness respond to the
// simulation's input parameters (laser peak amplitude, electron density,
// laser duration — the knobs of Fig. 3c/3d), and they carry both smooth
// envelopes and oscillatory detail, giving multilevel coefficients with
// realistic decay. Everything is a deterministic function of (Config, t),
// so any timestep can be generated independently and reproducibly.
package warpx

import (
	"fmt"
	"math"

	"pmgard/internal/grid"
)

// Config holds the simulation input parameters.
type Config struct {
	// Dims are the grid extents; axis 0 is the laser propagation axis.
	Dims []int
	// A0 is the normalized laser peak amplitude (typically 1–10; higher
	// values drive a more nonlinear wake).
	A0 float64
	// Density is the relative electron density n_e (1 = nominal). The
	// plasma wavenumber scales with √Density.
	Density float64
	// Duration is the laser pulse duration in units of the box length
	// (typical 0.02–0.2); it sets the longitudinal envelope width.
	Duration float64
	// Seed decorrelates the small-scale plasma noise between runs.
	Seed int64
}

// DefaultConfig returns a mid-range parameter point.
func DefaultConfig(dims ...int) Config {
	return Config{Dims: dims, A0: 3, Density: 1, Duration: 0.08, Seed: 7}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if len(c.Dims) != 3 {
		return fmt.Errorf("warpx: need 3 dims, got %v", c.Dims)
	}
	for _, d := range c.Dims {
		if d < 4 {
			return fmt.Errorf("warpx: dimension %d < 4", d)
		}
	}
	if c.A0 <= 0 {
		return fmt.Errorf("warpx: A0 %g must be positive", c.A0)
	}
	if c.Density <= 0 {
		return fmt.Errorf("warpx: Density %g must be positive", c.Density)
	}
	if c.Duration <= 0 || c.Duration > 1 {
		return fmt.Errorf("warpx: Duration %g out of (0,1]", c.Duration)
	}
	return nil
}

// FieldNames lists the generated scalar fields.
func FieldNames() []string { return []string{"Bx", "Ex", "Jx"} }

// Field generates the named field at output timestep t (t ≥ 0). The result
// is deterministic in (c, name, t).
func (c Config) Field(name string, t int) (*grid.Tensor, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	switch name {
	case "Bx", "Ex", "Jx":
	default:
		return nil, fmt.Errorf("warpx: unknown field %q (have %v)", name, FieldNames())
	}
	nx, ny, nz := c.Dims[0], c.Dims[1], c.Dims[2]
	out := grid.New(c.Dims...)
	data := out.Data()

	// Normalized time: pulse crosses the box in 256 output steps and wraps
	// (mimicking a moving window that re-enters). It starts at 0.35 so the
	// wake is developed from the first dump, as in a production run whose
	// early transient is not written out.
	tt := float64(t) / 256.0
	center := math.Mod(0.35+tt, 1.2) // pulse center, may exit the box

	kp := 24 * math.Sqrt(c.Density) // plasma wavenumber (rad per box)
	k0 := 160.0                     // laser wavenumber (rad per box)
	sigX := c.Duration / 2          // longitudinal envelope σ
	// The wake grows while the pulse self-focuses, then saturates and
	// partially depletes — a slow non-linear amplitude evolution over the
	// run (the non-monotone timestep behaviour of Fig. 3a).
	evolve := 0.75 + 0.5*math.Sin(math.Pi*tt*4)*math.Exp(-tt) + 0.35*tt
	wakeAmp := c.A0 * c.A0 / (1 + 0.1*c.A0*c.A0) * math.Sqrt(c.Density) * evolve
	// Nonlinear steepening factor grows with a0.
	steep := c.A0 / (2 + c.A0)
	// Wake oscillation phase velocity slightly below the pulse.
	phaseT := 2 * math.Pi * tt * (1 + 0.2*c.Density)

	// Deterministic small-scale plasma turbulence modes.
	type mode struct{ kx, ky, kz, phase, amp float64 }
	modes := make([]mode, 6)
	h := uint64(c.Seed)*2654435761 + 12345
	next := func() float64 {
		h ^= h << 13
		h ^= h >> 7
		h ^= h << 17
		return float64(h%10000) / 10000.0
	}
	for m := range modes {
		modes[m] = mode{
			kx:    2 * math.Pi * (2 + math.Floor(next()*6)),
			ky:    2 * math.Pi * (1 + math.Floor(next()*4)),
			kz:    2 * math.Pi * (1 + math.Floor(next()*4)),
			phase: 2 * math.Pi * next(),
			amp:   0.01 + 0.02*next(),
		}
	}

	idx := 0
	for i := 0; i < nx; i++ {
		x := float64(i) / float64(nx-1)
		xi := x - center // co-moving coordinate
		env := math.Exp(-xi * xi / (2 * sigX * sigX))
		// The wake trails the pulse: strongest just behind, decaying with
		// distance behind the pulse center.
		behind := center - x
		var wakeEnv float64
		if behind > 0 {
			wakeEnv = math.Exp(-behind / (6 * c.Duration * (1 + 0.3*c.A0)))
		}
		wakePhase := kp*(x-0.9*center)*2*math.Pi/2 + phaseT
		for j := 0; j < ny; j++ {
			y := float64(j)/float64(ny-1) - 0.5
			for k := 0; k < nz; k++ {
				z := float64(k)/float64(nz-1) - 0.5
				r2 := y*y + z*z
				trans := math.Exp(-r2 / (2 * 0.04))
				var v float64
				switch name {
				case "Bx":
					// Laser oscillation under the envelope plus a weak
					// quasi-static wake magnetic component.
					v = c.A0*env*trans*math.Cos(k0*x-2*math.Pi*8*tt) +
						0.1*wakeAmp*wakeEnv*trans*math.Sin(wakePhase)
				case "Ex":
					// Longitudinal wakefield with nonlinear steepening.
					s := math.Sin(wakePhase)
					v = wakeAmp * wakeEnv * trans * (s + steep*s*math.Abs(s))
				case "Jx":
					// Electron current: density spikes at wake crests.
					cphase := math.Cos(wakePhase)
					v = c.Density * wakeAmp * wakeEnv * trans *
						(cphase + steep*(cphase*cphase*cphase))
				}
				// Background plasma fluctuations, common to all fields.
				fluct := 0.0
				for _, m := range modes {
					fluct += m.amp * math.Sin(m.kx*x+m.ky*(y+0.5)+m.kz*(z+0.5)+m.phase+3*phaseT)
				}
				v += fluct * 0.05 * wakeAmp * math.Sqrt(c.Density)
				data[idx] = v
				idx++
			}
		}
	}
	return out, nil
}
