package grayscott

import (
	"testing"

	"pmgard/internal/grid"
)

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{N: 2, Du: 0.1, Dv: 0.1, Dt: 0.5, SubSteps: 1},
		{N: 16, Du: 0, Dv: 0.1, Dt: 0.5, SubSteps: 1},
		{N: 16, Du: 0.1, Dv: 0.1, Dt: 0, SubSteps: 1},
		{N: 16, Du: 0.5, Dv: 0.1, Dt: 1, SubSteps: 1}, // unstable
		{N: 16, Du: 0.1, Dv: 0.1, Dt: 0.5, SubSteps: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, c)
		}
	}
	if err := DefaultConfig(16).Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
}

func TestInitialCondition(t *testing.T) {
	cfg := DefaultConfig(16)
	cfg.Warmup = 0
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	u, v := s.FieldU(), s.FieldV()
	// Outside the seed block, u = 1 and v = 0.
	if u.At(0, 0, 0) != 1 || v.At(0, 0, 0) != 0 {
		t.Fatalf("corner (u,v) = (%g,%g), want (1,0)", u.At(0, 0, 0), v.At(0, 0, 0))
	}
	// The center block is perturbed.
	if v.At(8, 8, 8) == 0 {
		t.Fatal("center v = 0, want seeded perturbation")
	}
}

func TestWarmupDevelopsPattern(t *testing.T) {
	// With the default warmup, the fields must carry developed structure
	// rather than the raw seed block: every corner differs from 1/0 and the
	// v field spans a meaningful range.
	s, err := New(DefaultConfig(17))
	if err != nil {
		t.Fatal(err)
	}
	v := s.FieldV()
	if v.Range() < 0.01 {
		t.Fatalf("v range %g after warmup, want developed pattern", v.Range())
	}
	if err := (Config{N: 8, Du: 0.1, Dv: 0.05, F: 0.02, K: 0.05, Dt: 1, SubSteps: 1, Warmup: -1}).Validate(); err == nil {
		t.Fatal("negative warmup accepted")
	}
}

func TestFieldsStayBoundedAndEvolve(t *testing.T) {
	s, err := New(DefaultConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	u0 := s.FieldU()
	for i := 0; i < 10; i++ {
		s.Step()
	}
	u, v := s.FieldU(), s.FieldV()
	for _, f := range []*grid.Tensor{u, v} {
		mn, mx := f.MinMax()
		if mn < -0.5 || mx > 1.5 {
			t.Fatalf("field escaped physical bounds: [%g, %g]", mn, mx)
		}
	}
	if grid.MaxAbsDiff(u0, u) == 0 {
		t.Fatal("field did not evolve after 10 steps")
	}
	if s.Timestep() != 10 {
		t.Fatalf("Timestep = %d, want 10", s.Timestep())
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() *grid.Tensor {
		s, err := New(DefaultConfig(12))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			s.Step()
		}
		return s.FieldV()
	}
	a, b := run(), run()
	if grid.MaxAbsDiff(a, b) != 0 {
		t.Fatal("simulation not deterministic")
	}
}

func TestFieldAccessors(t *testing.T) {
	s, err := New(DefaultConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range FieldNames() {
		f, err := s.Field(name)
		if err != nil {
			t.Fatalf("Field(%q): %v", name, err)
		}
		if f.Len() != 512 {
			t.Fatalf("Field(%q) has %d elements, want 512", name, f.Len())
		}
	}
	if _, err := s.Field("Ex"); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestFieldCopiesAreIndependent(t *testing.T) {
	s, err := New(DefaultConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	u := s.FieldU()
	u.Fill(99)
	if s.FieldU().At(0, 0, 0) == 99 {
		t.Fatal("FieldU returned internal storage")
	}
}

func TestMassConservationTendency(t *testing.T) {
	// With F>0 the system feeds u; total v should stay finite and not
	// blow up over a longer run (stability smoke test).
	cfg := DefaultConfig(12)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		s.Step()
	}
	if mx := s.FieldV().LinfNorm(); mx > 1.0 {
		t.Fatalf("v reached %g after 50 steps, expect < 1.0", mx)
	}
}
