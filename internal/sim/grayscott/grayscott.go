// Package grayscott implements the 3-D Gray-Scott reaction-diffusion system
// (Pearson, "Complex patterns in a simple system", Science 1993), one of the
// paper's two evaluation workloads. The solver integrates
//
//	∂u/∂t = Du ∇²u − u·v² + F(1−u)
//	∂v/∂t = Dv ∇²v + u·v² − (F+k)·v
//
// with explicit Euler time stepping and periodic boundaries on a uniform
// grid. The two concentration fields are the paper's D_u and D_v variables.
package grayscott

import (
	"fmt"
	"math/rand"

	"pmgard/internal/grid"
)

// Config parametrizes a simulation run.
type Config struct {
	// N is the grid extent per axis (the paper uses 512³; this
	// reproduction defaults to laptop-scale grids).
	N int
	// Du, Dv are the diffusion rates of the two species.
	Du, Dv float64
	// F is the feed rate, K the kill rate; together they select the
	// Pearson pattern regime.
	F, K float64
	// Dt is the Euler time step. Stability requires Dt ≤ 1/(6·max(Du,Dv)).
	Dt float64
	// SubSteps is the number of integrator steps per output timestep.
	SubSteps int
	// Warmup is the number of integrator steps taken during New, before
	// the first output: production runs dump data only after the pattern
	// has formed, and the retrieval models need developed structure.
	Warmup int
	// Seed drives the initial perturbation.
	Seed int64
}

// DefaultConfig returns a configuration in a self-sustaining pattern regime
// for small 3-D boxes (verified to keep both fields structured for hundreds
// of steps at 17³) that is stable under explicit Euler.
func DefaultConfig(n int) Config {
	return Config{
		N: n, Du: 0.16, Dv: 0.08, F: 0.026, K: 0.051,
		Dt: 1.0, SubSteps: 4, Warmup: 200, Seed: 42,
	}
}

// Validate reports whether the configuration is usable and stable.
func (c Config) Validate() error {
	if c.N < 4 {
		return fmt.Errorf("grayscott: N %d < 4", c.N)
	}
	if c.Du <= 0 || c.Dv <= 0 {
		return fmt.Errorf("grayscott: non-positive diffusion rates %g, %g", c.Du, c.Dv)
	}
	if c.Dt <= 0 {
		return fmt.Errorf("grayscott: non-positive Dt %g", c.Dt)
	}
	maxD := c.Du
	if c.Dv > maxD {
		maxD = c.Dv
	}
	if c.Dt*maxD*6 > 1.0+1e-12 {
		return fmt.Errorf("grayscott: Dt %g unstable for diffusion %g (need Dt ≤ %g)", c.Dt, maxD, 1/(6*maxD))
	}
	if c.SubSteps < 1 {
		return fmt.Errorf("grayscott: SubSteps %d < 1", c.SubSteps)
	}
	if c.Warmup < 0 {
		return fmt.Errorf("grayscott: negative Warmup %d", c.Warmup)
	}
	return nil
}

// Sim is a running Gray-Scott simulation. It is not safe for concurrent use.
type Sim struct {
	cfg  Config
	u, v *grid.Tensor
	un   []float64 // scratch
	vn   []float64
	step int
}

// New initializes a simulation: u = 1 everywhere, v = 0, with a central
// seeded block of (u, v) = (0.50, 0.25) perturbed by noise — the standard
// Gray-Scott ignition.
func New(cfg Config) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.N
	s := &Sim{
		cfg: cfg,
		u:   grid.New(n, n, n),
		v:   grid.New(n, n, n),
		un:  make([]float64, n*n*n),
		vn:  make([]float64, n*n*n),
	}
	s.u.Fill(1)
	rng := rand.New(rand.NewSource(cfg.Seed))
	lo, hi := n/2-n/8, n/2+n/8
	for i := lo; i < hi; i++ {
		for j := lo; j < hi; j++ {
			for k := lo; k < hi; k++ {
				s.u.Set(0.50+0.02*rng.NormFloat64(), i, j, k)
				s.v.Set(0.25+0.02*rng.NormFloat64(), i, j, k)
			}
		}
	}
	for i := 0; i < cfg.Warmup; i++ {
		s.eulerStep()
	}
	return s, nil
}

// Step advances the simulation by one output timestep (SubSteps Euler
// updates).
func (s *Sim) Step() {
	for sub := 0; sub < s.cfg.SubSteps; sub++ {
		s.eulerStep()
	}
	s.step++
}

// eulerStep performs one explicit Euler update with periodic boundaries.
func (s *Sim) eulerStep() {
	n := s.cfg.N
	u, v := s.u.Data(), s.v.Data()
	du, dv, f, k, dt := s.cfg.Du, s.cfg.Dv, s.cfg.F, s.cfg.K, s.cfg.Dt
	n2 := n * n
	for i := 0; i < n; i++ {
		im := ((i - 1 + n) % n) * n2
		ip := ((i + 1) % n) * n2
		ic := i * n2
		for j := 0; j < n; j++ {
			jm := ((j - 1 + n) % n) * n
			jp := ((j + 1) % n) * n
			jc := j * n
			for kk := 0; kk < n; kk++ {
				km := (kk - 1 + n) % n
				kp := (kk + 1) % n
				c := ic + jc + kk
				lapU := u[im+jc+kk] + u[ip+jc+kk] +
					u[ic+jm+kk] + u[ic+jp+kk] +
					u[ic+jc+km] + u[ic+jc+kp] - 6*u[c]
				lapV := v[im+jc+kk] + v[ip+jc+kk] +
					v[ic+jm+kk] + v[ic+jp+kk] +
					v[ic+jc+km] + v[ic+jc+kp] - 6*v[c]
				uvv := u[c] * v[c] * v[c]
				s.un[c] = u[c] + dt*(du*lapU-uvv+f*(1-u[c]))
				s.vn[c] = v[c] + dt*(dv*lapV+uvv-(f+k)*v[c])
			}
		}
	}
	copy(u, s.un)
	copy(v, s.vn)
}

// Timestep returns the number of output steps taken so far.
func (s *Sim) Timestep() int { return s.step }

// FieldU returns a copy of the u concentration field (the paper's D_u).
func (s *Sim) FieldU() *grid.Tensor { return s.u.Clone() }

// FieldV returns a copy of the v concentration field (the paper's D_v).
func (s *Sim) FieldV() *grid.Tensor { return s.v.Clone() }

// Field returns a copy of the named field: "Du" or "Dv".
func (s *Sim) Field(name string) (*grid.Tensor, error) {
	switch name {
	case "Du":
		return s.FieldU(), nil
	case "Dv":
		return s.FieldV(), nil
	default:
		return nil, fmt.Errorf("grayscott: unknown field %q (have Du, Dv)", name)
	}
}

// FieldNames lists the fields a Gray-Scott run produces.
func FieldNames() []string { return []string{"Du", "Dv"} }
