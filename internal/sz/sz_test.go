package sz

import (
	"math"
	"math/rand"
	"testing"

	"pmgard/internal/grid"
	"pmgard/internal/sim/warpx"
)

func TestRoundTripRespectsBound(t *testing.T) {
	field, err := warpx.DefaultConfig(17, 17, 17).Field("Jx", 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, rel := range []float64{1e-2, 1e-4, 1e-6} {
		bound := rel * field.Range()
		blob, err := Compress(field, bound)
		if err != nil {
			t.Fatal(err)
		}
		rec, gotBound, err := Decompress(blob)
		if err != nil {
			t.Fatal(err)
		}
		if gotBound != bound {
			t.Fatalf("bound round trip: %g vs %g", gotBound, bound)
		}
		if achieved := grid.MaxAbsDiff(field, rec); achieved > bound+1e-15 {
			t.Fatalf("rel %g: achieved %g > bound %g", rel, achieved, bound)
		}
		if int64(len(blob)) >= int64(8*field.Len()) {
			t.Fatalf("rel %g: no compression (%d bytes for %d raw)", rel, len(blob), 8*field.Len())
		}
	}
}

func TestTighterBoundBiggerStream(t *testing.T) {
	field, err := warpx.DefaultConfig(17, 17, 17).Field("Ex", 3)
	if err != nil {
		t.Fatal(err)
	}
	loose, _ := Compress(field, 1e-2*field.Range())
	tight, _ := Compress(field, 1e-6*field.Range())
	if len(tight) <= len(loose) {
		t.Fatalf("tight bound stream %d not larger than loose %d", len(tight), len(loose))
	}
}

func TestLowRankAndShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][]int{{100}, {17, 23}, {5, 7, 9}} {
		f := grid.New(dims...)
		for i := range f.Data() {
			f.Data()[i] = math.Sin(float64(i)/11) + 0.1*rng.NormFloat64()
		}
		bound := 1e-4 * f.Range()
		blob, err := Compress(f, bound)
		if err != nil {
			t.Fatalf("dims %v: %v", dims, err)
		}
		rec, _, err := Decompress(blob)
		if err != nil {
			t.Fatalf("dims %v: %v", dims, err)
		}
		if grid.MaxAbsDiff(f, rec) > bound+1e-15 {
			t.Fatalf("dims %v: bound violated", dims)
		}
	}
}

func TestOutlierEscape(t *testing.T) {
	// A huge isolated spike forces the outlier path; it must reconstruct
	// exactly (raw storage).
	f := grid.New(32)
	for i := range f.Data() {
		f.Data()[i] = float64(i)
	}
	f.Set(1e18, 16)
	bound := 1e-6
	blob, err := Compress(f, bound)
	if err != nil {
		t.Fatal(err)
	}
	rec, _, err := Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	if rec.At(16) != 1e18 {
		t.Fatalf("outlier reconstructed as %g", rec.At(16))
	}
	if grid.MaxAbsDiff(f, rec) > bound {
		t.Fatal("bound violated around outlier")
	}
}

func TestConstantFieldCompressesHard(t *testing.T) {
	f := grid.New(16, 16, 16)
	f.Fill(3.25)
	blob, err := Compress(f, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) > 600 {
		t.Fatalf("constant field compressed to %d bytes", len(blob))
	}
	rec, _, err := Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	if grid.MaxAbsDiff(f, rec) > 1e-6 {
		t.Fatal("bound violated")
	}
}

func TestCompressValidation(t *testing.T) {
	f := grid.New(4)
	for _, bound := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := Compress(f, bound); err == nil {
			t.Errorf("bound %v accepted", bound)
		}
	}
}

func TestDecompressRejectsCorrupt(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		append([]byte{255, 255, 255, 255}, make([]byte, 16)...),
		[]byte("\x05\x00\x00\x00notjsnPADPADPAD"),
	}
	for i, blob := range cases {
		if _, _, err := Decompress(blob); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Valid header, truncated payload.
	f := grid.New(8)
	blob, _ := Compress(f, 1)
	if _, _, err := Decompress(blob[:len(blob)-4]); err == nil {
		t.Error("truncated payload accepted")
	}
}

func TestNaNBecomesOutlier(t *testing.T) {
	f := grid.New(8)
	f.Set(math.NaN(), 3)
	blob, err := Compress(f, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	rec, _, err := Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(rec.At(3)) {
		t.Fatalf("NaN reconstructed as %g", rec.At(3))
	}
}
