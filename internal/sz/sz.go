// Package sz implements a simplified SZ-style error-bounded lossy
// compressor (Di & Cappello [17], Tao et al. [31]) as a *non-progressive*
// baseline for the paper's motivation (§I): prediction-based compressors
// achieve strong ratios at a fixed error bound, but the bound is baked in
// at compression time — serving users with diverse accuracy needs requires
// one archive per bound, which is exactly what progressive retrieval
// removes.
//
// The pipeline follows SZ 1.4's structure at reduced sophistication:
// an N-dimensional Lorenzo predictor over already-reconstructed neighbours,
// linear quantization of the prediction residual against the absolute error
// bound, an outlier escape for unpredictable points, and an entropy stage
// (zigzag varints + DEFLATE standing in for SZ's Huffman+ZSTD).
//
// The decompressed data satisfies |rec - orig| ≤ bound for every point —
// verified by property tests.
package sz

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"

	"pmgard/internal/grid"
	"pmgard/internal/lossless"
)

// quantLimit bounds the quantization codes; residuals beyond it are stored
// as raw outliers (SZ's "unpredictable data").
const quantLimit = 1 << 20

// header is the self-describing prefix of a compressed stream.
type header struct {
	Dims  []int   `json:"dims"`
	Bound float64 `json:"bound"`
	// NOutliers is the number of raw-stored points.
	NOutliers int `json:"n_outliers"`
}

// Compress encodes t under the given absolute error bound.
func Compress(t *grid.Tensor, bound float64) ([]byte, error) {
	if bound <= 0 || math.IsNaN(bound) || math.IsInf(bound, 0) {
		return nil, fmt.Errorf("sz: bound %g must be positive and finite", bound)
	}
	dims := t.Dims()
	n := t.Len()
	data := t.Data()

	// Reconstruction buffer: predictions must use the values the
	// decompressor will see, or errors compound past the bound.
	rec := make([]float64, n)
	codes := make([]int64, 0, n)
	var outliers []float64

	strides := make([]int, len(dims))
	s := 1
	for d := len(dims) - 1; d >= 0; d-- {
		strides[d] = s
		s *= dims[d]
	}
	idx := make([]int, len(dims))
	twoEps := 2 * bound

	for flat := 0; flat < n; flat++ {
		pred := lorenzo(rec, idx, strides)
		q := math.Round((data[flat] - pred) / twoEps)
		if math.IsNaN(q) || math.Abs(q) > quantLimit {
			// Unpredictable: store raw, reconstruct exactly.
			codes = append(codes, math.MinInt32) // escape marker
			outliers = append(outliers, data[flat])
			rec[flat] = data[flat]
		} else {
			codes = append(codes, int64(q))
			rec[flat] = pred + q*twoEps
		}
		// Advance row-major multi-index.
		for d := len(idx) - 1; d >= 0; d-- {
			idx[d]++
			if idx[d] < dims[d] {
				break
			}
			idx[d] = 0
		}
	}

	// Serialize: JSON header line, varint code stream, raw outliers; then
	// DEFLATE the payload.
	var payload bytes.Buffer
	tmp := make([]byte, binary.MaxVarintLen64)
	for _, q := range codes {
		k := binary.PutVarint(tmp, q)
		payload.Write(tmp[:k])
	}
	for _, v := range outliers {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		payload.Write(b[:])
	}
	packed, err := lossless.Deflate().Compress(payload.Bytes())
	if err != nil {
		return nil, fmt.Errorf("sz: entropy stage: %w", err)
	}

	head, err := json.Marshal(header{Dims: dims, Bound: bound, NOutliers: len(outliers)})
	if err != nil {
		return nil, fmt.Errorf("sz: marshal header: %w", err)
	}
	var out bytes.Buffer
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(head)))
	out.Write(lenBuf[:])
	out.Write(head)
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(payload.Len()))
	out.Write(lenBuf[:])
	out.Write(packed)
	return out.Bytes(), nil
}

// Decompress reverses Compress. The result satisfies the bound recorded in
// the stream.
func Decompress(blob []byte) (*grid.Tensor, float64, error) {
	if len(blob) < 8 {
		return nil, 0, fmt.Errorf("sz: stream too short")
	}
	headLen := binary.LittleEndian.Uint32(blob[:4])
	if int(headLen) > len(blob)-8 {
		return nil, 0, fmt.Errorf("sz: corrupt header length %d", headLen)
	}
	var h header
	if err := json.Unmarshal(blob[4:4+headLen], &h); err != nil {
		return nil, 0, fmt.Errorf("sz: parse header: %w", err)
	}
	if len(h.Dims) == 0 || h.Bound <= 0 {
		return nil, 0, fmt.Errorf("sz: invalid header %+v", h)
	}
	n := 1
	for _, d := range h.Dims {
		if d <= 0 || n > (1<<28)/d {
			return nil, 0, fmt.Errorf("sz: implausible dims %v", h.Dims)
		}
		n *= d
	}
	if h.NOutliers < 0 || h.NOutliers > n {
		return nil, 0, fmt.Errorf("sz: implausible outlier count %d", h.NOutliers)
	}
	rest := blob[4+headLen:]
	if len(rest) < 4 {
		return nil, 0, fmt.Errorf("sz: truncated payload header")
	}
	rawLen := binary.LittleEndian.Uint32(rest[:4])
	if rawLen > uint32(12*n+8*h.NOutliers+64) {
		return nil, 0, fmt.Errorf("sz: implausible payload length %d", rawLen)
	}
	payload, err := lossless.Deflate().Decompress(rest[4:], int(rawLen))
	if err != nil {
		return nil, 0, fmt.Errorf("sz: entropy stage: %w", err)
	}

	rd := bytes.NewReader(payload)
	codes := make([]int64, n)
	for i := range codes {
		q, err := binary.ReadVarint(rd)
		if err != nil {
			return nil, 0, fmt.Errorf("sz: code stream truncated at %d: %w", i, err)
		}
		codes[i] = q
	}
	outliers := make([]float64, h.NOutliers)
	for i := range outliers {
		var b [8]byte
		if _, err := rd.Read(b[:]); err != nil {
			return nil, 0, fmt.Errorf("sz: outlier stream truncated: %w", err)
		}
		outliers[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
	}

	t := grid.New(h.Dims...)
	rec := t.Data()
	strides := make([]int, len(h.Dims))
	s := 1
	for d := len(h.Dims) - 1; d >= 0; d-- {
		strides[d] = s
		s *= h.Dims[d]
	}
	idx := make([]int, len(h.Dims))
	twoEps := 2 * h.Bound
	outIx := 0
	for flat := 0; flat < n; flat++ {
		if codes[flat] == math.MinInt32 {
			if outIx >= len(outliers) {
				return nil, 0, fmt.Errorf("sz: outlier index out of range")
			}
			rec[flat] = outliers[outIx]
			outIx++
		} else {
			pred := lorenzo(rec, idx, strides)
			rec[flat] = pred + float64(codes[flat])*twoEps
		}
		for d := len(idx) - 1; d >= 0; d-- {
			idx[d]++
			if idx[d] < h.Dims[d] {
				break
			}
			idx[d] = 0
		}
	}
	return t, h.Bound, nil
}

// lorenzo evaluates the N-dimensional Lorenzo predictor at the given
// multi-index: the inclusion-exclusion sum over the 2^d-1 already-visited
// corner neighbours. Out-of-range neighbours contribute zero, matching the
// implicit zero boundary of SZ.
func lorenzo(rec []float64, idx, strides []int) float64 {
	d := len(idx)
	pred := 0.0
	// Subset mask over dimensions; bit set = step back along that dim.
	for mask := 1; mask < 1<<d; mask++ {
		flat := 0
		ok := true
		for dim := 0; dim < d; dim++ {
			p := idx[dim]
			if mask>>dim&1 == 1 {
				if p == 0 {
					ok = false
					break
				}
				p--
			}
			flat += p * strides[dim]
		}
		if !ok {
			continue
		}
		if popcount(mask)%2 == 1 {
			pred += rec[flat]
		} else {
			pred -= rec[flat]
		}
	}
	return pred
}

func popcount(v int) int {
	c := 0
	for v != 0 {
		c += v & 1
		v >>= 1
	}
	return c
}
