// Package shard is the distributed serving tier: a static, gossip-free
// shard map that consistent-hashes (codec, field, level, plane) segment
// keys across N storage/cache nodes, the node-side /planes HTTP endpoint
// that exposes a node-local serve stack's decompressed planes, and the
// router-side client that implements servecache.SourceCtx over that
// endpoint with per-node circuit breakers, retry/backoff and replica
// failover.
//
// The MGARD framework paper (arXiv:2401.05994) refactors data across a
// facility's hierarchical storage; this package is that idea as a service:
// one router process fans plane fetches out to N nodes, each running
// today's serve stack, so aggregate cache bytes and store bandwidth scale
// with node count. The map is static JSON — no gossip, no coordination,
// stdlib only — and every router holding the same map file routes every
// key identically.
//
// Placement: each key hashes onto a ring of virtual nodes (FNV-1a 64);
// its replicas are the first R distinct nodes clockwise from the key's
// point. R is Map.Replication for hot planes (bit-plane index below
// Map.HotPlanes; HotPlanes 0 means every plane is hot) and 1 for cold
// planes — the low planes are the shared prefix every session fetches, so
// replicating them spreads the hottest traffic while cold tails stay
// single-homed. DESIGN.md §14 documents the contract.
package shard

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/url"
	"os"
	"sort"
	"strconv"
)

// Node is one serving node of the shard map.
type Node struct {
	// Name labels the node in metrics (shard.node_reads.<name>, per-node
	// breaker gauges). Must be unique within the map.
	Name string `json:"name"`
	// URL is the node's base API URL, e.g. "http://node0:8080".
	URL string `json:"url"`
}

// Map is the static shard map: the node set plus the placement policy.
// Routers holding byte-identical map files place every key identically.
type Map struct {
	// Nodes is the serving node set; order is irrelevant to placement
	// (the ring is keyed by node name), but must be non-empty.
	Nodes []Node `json:"nodes"`
	// Replication is the replica count for hot planes. Values below 1 or
	// above len(Nodes) are clamped into [1, len(Nodes)].
	Replication int `json:"replication"`
	// HotPlanes bounds the hot set: planes with index < HotPlanes get
	// Replication replicas, deeper planes get exactly one. 0 (the default)
	// makes every plane hot — full replication, the safe choice for small
	// maps and the failover tests.
	HotPlanes int `json:"hot_planes,omitempty"`
	// VNodes is the number of virtual ring points per node; more points
	// smooth the key distribution. 0 means the default of 64.
	VNodes int `json:"vnodes,omitempty"`

	// ring is the precomputed consistent-hash ring, built by finish.
	ring []ringPoint
}

// ringPoint is one virtual node on the hash ring.
type ringPoint struct {
	hash uint64
	node int // index into Nodes
}

// Key identifies one plane segment for placement. It mirrors
// servecache.Key: the codec backend, the field namespace, and the
// (level, plane) coordinates.
type Key struct {
	// Codec is the progressive-codec backend ID of the artifact.
	Codec string
	// Field is the field namespace (typically the field name).
	Field string
	// Level is the coefficient level of the plane.
	Level int
	// Plane is the bit-plane index within the level.
	Plane int
}

// ParseMap parses and validates a shard map from its JSON form and builds
// the placement ring.
func ParseMap(data []byte) (*Map, error) {
	var m Map
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("shard: parse map: %w", err)
	}
	if err := m.finish(); err != nil {
		return nil, err
	}
	return &m, nil
}

// LoadMap reads and parses a shard map file.
func LoadMap(path string) (*Map, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	m, err := ParseMap(data)
	if err != nil {
		return nil, fmt.Errorf("shard: map %s: %w", path, err)
	}
	return m, nil
}

// finish validates the map and precomputes the ring. It is idempotent and
// must be called before Replicas; ParseMap and LoadMap call it.
func (m *Map) finish() error {
	if len(m.Nodes) == 0 {
		return fmt.Errorf("shard: map has no nodes")
	}
	seen := make(map[string]bool, len(m.Nodes))
	for i, n := range m.Nodes {
		if n.Name == "" {
			return fmt.Errorf("shard: node %d has no name", i)
		}
		if seen[n.Name] {
			return fmt.Errorf("shard: duplicate node name %q", n.Name)
		}
		seen[n.Name] = true
		u, err := url.Parse(n.URL)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return fmt.Errorf("shard: node %q has invalid URL %q", n.Name, n.URL)
		}
	}
	if m.Replication < 1 {
		m.Replication = 1
	}
	if m.Replication > len(m.Nodes) {
		m.Replication = len(m.Nodes)
	}
	if m.HotPlanes < 0 {
		return fmt.Errorf("shard: hot_planes %d is negative", m.HotPlanes)
	}
	if m.VNodes <= 0 {
		m.VNodes = 64
	}
	m.ring = make([]ringPoint, 0, len(m.Nodes)*m.VNodes)
	for i, n := range m.Nodes {
		for v := 0; v < m.VNodes; v++ {
			m.ring = append(m.ring, ringPoint{hash: hash64(n.Name + "#" + strconv.Itoa(v)), node: i})
		}
	}
	sort.Slice(m.ring, func(a, b int) bool {
		if m.ring[a].hash != m.ring[b].hash {
			return m.ring[a].hash < m.ring[b].hash
		}
		// Tie-break on node index so equal hashes (vanishingly rare but
		// possible) still order deterministically across routers.
		return m.ring[a].node < m.ring[b].node
	})
	return nil
}

// hash64 is FNV-1a over s with a splitmix64 finalizer — stable across
// processes and Go versions, which is what a static shard map needs
// (maphash would re-seed per process). The finalizer matters: FNV-1a ends
// by XORing the last input byte into the low byte of the sum, so keys that
// differ only in a trailing plane digit would land on one narrow arc of
// the ring and pile onto a single node.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is splitmix64's avalanche finalizer: every input bit affects every
// output bit.
func mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashKey collapses a placement key to its ring position. The separator
// cannot occur in codec IDs, and level/plane are rendered in decimal, so
// distinct keys cannot collide textually.
func hashKey(k Key) uint64 {
	return hash64(k.Codec + "|" + k.Field + "|" + strconv.Itoa(k.Level) + "|" + strconv.Itoa(k.Plane))
}

// replication returns the effective replica count for a plane index.
func (m *Map) replication(plane int) int {
	if m.HotPlanes == 0 || plane < m.HotPlanes {
		return m.Replication
	}
	return 1
}

// Replicas returns the indexes into m.Nodes that host key, primary first:
// the first R distinct nodes clockwise from the key's ring position, where
// R is the plane's effective replication. The order is deterministic, so
// every router agrees on the primary and on the failover sequence.
func (m *Map) Replicas(k Key) []int {
	want := m.replication(k.Plane)
	h := hashKey(k)
	start := sort.Search(len(m.ring), func(i int) bool { return m.ring[i].hash >= h })
	out := make([]int, 0, want)
	taken := make(map[int]bool, want)
	for i := 0; i < len(m.ring) && len(out) < want; i++ {
		p := m.ring[(start+i)%len(m.ring)]
		if !taken[p.node] {
			taken[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}
