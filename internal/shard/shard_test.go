package shard

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"pmgard/internal/core"
	"pmgard/internal/obs"
	"pmgard/internal/servecache"
	"pmgard/internal/sim/warpx"
	"pmgard/internal/storage"
)

func TestParseMapValidation(t *testing.T) {
	bad := []string{
		`{"nodes": []}`,
		`{"nodes": [{"name": "", "url": "http://a:1"}]}`,
		`{"nodes": [{"name": "a", "url": "http://a:1"}, {"name": "a", "url": "http://b:1"}]}`,
		`{"nodes": [{"name": "a", "url": "not a url"}]}`,
		`{"nodes": [{"name": "a", "url": "http://a:1"}], "hot_planes": -1}`,
		`not json`,
	}
	for _, s := range bad {
		if _, err := ParseMap([]byte(s)); err == nil {
			t.Errorf("ParseMap(%s) succeeded, want error", s)
		}
	}

	m, err := ParseMap([]byte(`{
		"nodes": [{"name": "a", "url": "http://a:1"}, {"name": "b", "url": "http://b:1"}],
		"replication": 99
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if m.Replication != 2 {
		t.Fatalf("replication 99 over 2 nodes clamped to %d, want 2", m.Replication)
	}
	if m.VNodes != 64 {
		t.Fatalf("default vnodes = %d, want 64", m.VNodes)
	}
	m, err = ParseMap([]byte(`{"nodes": [{"name": "a", "url": "http://a:1"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if m.Replication != 1 {
		t.Fatalf("missing replication defaulted to %d, want 1", m.Replication)
	}
}

// threeNodeMap returns a parsed three-node map with the given replication
// and hot-plane bound, pointing at placeholder URLs.
func threeNodeMap(t *testing.T, replication, hotPlanes int) *Map {
	t.Helper()
	m, err := ParseMap([]byte(fmt.Sprintf(`{
		"nodes": [
			{"name": "n0", "url": "http://n0:1"},
			{"name": "n1", "url": "http://n1:1"},
			{"name": "n2", "url": "http://n2:1"}
		],
		"replication": %d,
		"hot_planes": %d
	}`, replication, hotPlanes)))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestReplicasPlacement pins the placement contract: deterministic across
// independently parsed maps (routers agree byte-for-byte), distinct
// replicas, hot planes replicated and cold planes single-homed, and every
// node owning a share of the keyspace.
func TestReplicasPlacement(t *testing.T) {
	m1 := threeNodeMap(t, 2, 8)
	m2 := threeNodeMap(t, 2, 8)
	primaries := make(map[int]int)
	for level := 0; level < 4; level++ {
		for plane := 0; plane < 32; plane++ {
			k := Key{Codec: "interp", Field: "Jx@0", Level: level, Plane: plane}
			r1, r2 := m1.Replicas(k), m2.Replicas(k)
			if !reflect.DeepEqual(r1, r2) {
				t.Fatalf("replicas for %+v differ across identical maps: %v vs %v", k, r1, r2)
			}
			want := 1
			if plane < 8 {
				want = 2
			}
			if len(r1) != want {
				t.Fatalf("replicas for %+v = %v, want %d replicas (hot_planes 8)", k, r1, want)
			}
			seen := make(map[int]bool)
			for _, n := range r1 {
				if n < 0 || n >= 3 || seen[n] {
					t.Fatalf("replicas for %+v = %v: out of range or repeated node", k, r1)
				}
				seen[n] = true
			}
			primaries[r1[0]]++
		}
	}
	for n := 0; n < 3; n++ {
		if primaries[n] == 0 {
			t.Fatalf("node %d is primary for no key out of 128: placement skewed %v", n, primaries)
		}
	}
	// HotPlanes 0 means every plane is hot.
	m3 := threeNodeMap(t, 3, 0)
	if got := m3.Replicas(Key{Codec: "interp", Field: "Jx@0", Level: 0, Plane: 30}); len(got) != 3 {
		t.Fatalf("hot_planes 0 replicas = %v, want all 3 nodes", got)
	}
}

// buildArtifact compresses a small synthetic field for the HTTP tests.
func buildArtifact(t *testing.T) *core.Compressed {
	t.Helper()
	field, err := warpx.DefaultConfig(9, 9, 9).Field("Jx", 5)
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.Compress(field, core.DefaultConfig(), "Jx", 0)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// nodeSource adapts one artifact to the NodeSource interface, serving its
// planes through a PlaneStore like cmd/serve's node role does.
type nodeSource struct {
	h     *core.Header
	store *core.PlaneStore
	// lost, when set, makes that (level, plane) fail permanently.
	lost *[2]int
}

func (s *nodeSource) PlaneField(name string) (NodeField, bool) {
	if name != s.h.FieldName {
		return NodeField{}, false
	}
	return NodeField{
		Header: s.h,
		Fetch: func(ctx context.Context, level, plane int) ([]byte, int64, error) {
			if s.lost != nil && s.lost[0] == level && s.lost[1] == plane {
				return nil, 0, fmt.Errorf("test: plane lost: %w", storage.ErrPermanent)
			}
			return s.store.Fetch(ctx, level, plane)
		},
	}, true
}

func (s *nodeSource) PlaneFields() []string { return []string{s.h.FieldName} }

// startNodes launches n node handlers over the artifact and returns their
// test servers plus a parsed map addressing them with the given
// replication (hot_planes 0: every plane replicated).
func startNodes(t *testing.T, c *core.Compressed, n, replication int, lost *[2]int) ([]*httptest.Server, *Map) {
	t.Helper()
	store, err := core.NewPlaneStore(&c.Header, c)
	if err != nil {
		t.Fatal(err)
	}
	servers := make([]*httptest.Server, n)
	mapJSON := `{"nodes": [`
	for i := range servers {
		nh := NewNodeHandler(&nodeSource{h: &c.Header, store: store, lost: lost}, obs.New())
		servers[i] = httptest.NewServer(nh)
		t.Cleanup(servers[i].Close)
		if i > 0 {
			mapJSON += ","
		}
		mapJSON += fmt.Sprintf(`{"name": "n%d", "url": %q}`, i, servers[i].URL)
	}
	mapJSON += fmt.Sprintf(`], "replication": %d}`, replication)
	m, err := ParseMap([]byte(mapJSON))
	if err != nil {
		t.Fatal(err)
	}
	return servers, m
}

// fieldKey is the cache key of plane (level, plane) of c's field.
func fieldKey(c *core.Compressed, level, plane int) servecache.Key {
	return servecache.Key{
		Codec: c.Header.Codec(),
		Field: fmt.Sprintf("%s@%d", c.Header.FieldName, c.Header.Timestep),
		Level: level, Plane: plane,
	}
}

// TestRouterFetchesAllPlanes reads every plane of the artifact through a
// three-node shard and requires byte equality with a direct store fetch,
// plus discovery (Fields, Header) agreement.
func TestRouterFetchesAllPlanes(t *testing.T) {
	c := buildArtifact(t)
	_, m := startNodes(t, c, 3, 2, nil)
	o := obs.New()
	r, err := NewRouter(RouterConfig{Map: m, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	fields, err := r.Fields(ctx)
	if err != nil || len(fields) != 1 || fields[0] != "Jx" {
		t.Fatalf("Fields = %v, %v; want [Jx]", fields, err)
	}
	h, err := r.Header(ctx, "Jx")
	if err != nil {
		t.Fatal(err)
	}
	if h.FieldName != c.Header.FieldName || len(h.Levels) != len(c.Header.Levels) || h.Planes != c.Header.Planes {
		t.Fatalf("fetched header %+v does not match artifact", h)
	}

	store, err := core.NewPlaneStore(&c.Header, c)
	if err != nil {
		t.Fatal(err)
	}
	fc := r.FieldClient(h)
	for level := range h.Levels {
		for plane := 0; plane < h.Planes; plane++ {
			raw, payload, err := fc.FetchPlaneCtx(ctx, fieldKey(c, level, plane))
			if err != nil {
				t.Fatalf("fetch (%d,%d): %v", level, plane, err)
			}
			wantRaw, wantPayload, err := store.Fetch(ctx, level, plane)
			if err != nil {
				t.Fatal(err)
			}
			if payload != wantPayload {
				t.Fatalf("plane (%d,%d) payload %d, want %d", level, plane, payload, wantPayload)
			}
			if !reflect.DeepEqual(raw, wantRaw) {
				t.Fatalf("plane (%d,%d) bitset differs from direct store fetch", level, plane)
			}
		}
	}
	snap := o.Metrics.Snapshot()
	var total int64
	for i := 0; i < 3; i++ {
		total += snap.Counters[fmt.Sprintf("shard.node_reads.n%d", i)]
	}
	if want := int64(len(h.Levels) * h.Planes); total != want {
		t.Fatalf("node_reads total %d, want %d (one per plane)", total, want)
	}
	if snap.Counters["shard.replica_failover"] != 0 {
		t.Fatalf("failover = %d with healthy nodes", snap.Counters["shard.replica_failover"])
	}
}

// TestRouterFailsOverToReplica kills one node of a replication-2 shard and
// requires every plane to still be served (from replicas), with failover
// counted, while a 1-replica shard loses the dead node's share.
func TestRouterFailsOverToReplica(t *testing.T) {
	c := buildArtifact(t)
	servers, m := startNodes(t, c, 3, 2, nil)
	o := obs.New()
	// No breakers: this test wants every read attempted so the per-plane
	// failover behavior is visible; breaker interaction is tested below.
	r, err := NewRouter(RouterConfig{Map: m, Obs: o, BreakerFailures: -1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	h := &c.Header
	fc := r.FieldClient(h)

	servers[1].Close()
	for level := range h.Levels {
		for plane := 0; plane < h.Planes; plane++ {
			if _, _, err := fc.FetchPlaneCtx(ctx, fieldKey(c, level, plane)); err != nil {
				t.Fatalf("fetch (%d,%d) with n1 dead: %v", level, plane, err)
			}
		}
	}
	snap := o.Metrics.Snapshot()
	if snap.Counters["shard.replica_failover"] == 0 {
		t.Fatal("no failover recorded with a dead node in a replication-2 shard")
	}
	if snap.Counters["shard.node_reads.n1"] != 0 {
		t.Fatalf("dead node served %d reads", snap.Counters["shard.node_reads.n1"])
	}
}

// TestRouterPermanentLossWinsOverTransient requires a permanent verdict
// from any replica to beat transient errors from others, so sessions
// degrade around genuinely lost planes instead of retrying forever.
func TestRouterPermanentLossWinsOverTransient(t *testing.T) {
	c := buildArtifact(t)
	lost := [2]int{0, 0}
	servers, m := startNodes(t, c, 2, 2, &lost)
	o := obs.New()
	r, err := NewRouter(RouterConfig{Map: m, Obs: o, BreakerFailures: -1})
	if err != nil {
		t.Fatal(err)
	}
	// One replica answers 410 (plane lost), the other is dead (transient).
	servers[1].Close()
	fc := r.FieldClient(&c.Header)
	_, _, err = fc.FetchPlaneCtx(context.Background(), fieldKey(c, 0, 0))
	if err == nil {
		t.Fatal("fetch of a lost plane succeeded")
	}
	if storage.Classify(err) != storage.FaultPermanent {
		t.Fatalf("lost-plane error classifies %v (%v), want FaultPermanent", storage.Classify(err), err)
	}
}

// TestRouterBreakerFailsFastAfterNodeDeath pins the breaker layering: once
// a dead node's breaker opens, later fetches skip its retry budget (the
// breaker fast-fails) and go straight to the replica, and RetryAfter
// reports a positive cooldown.
func TestRouterBreakerFailsFastAfterNodeDeath(t *testing.T) {
	c := buildArtifact(t)
	servers, m := startNodes(t, c, 2, 2, nil)
	o := obs.New()
	r, err := NewRouter(RouterConfig{Map: m, Obs: o, BreakerFailures: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	h := &c.Header
	fc := r.FieldClient(h)
	servers[0].Close()

	for level := range h.Levels {
		for plane := 0; plane < h.Planes; plane++ {
			if _, _, err := fc.FetchPlaneCtx(ctx, fieldKey(c, level, plane)); err != nil {
				t.Fatalf("fetch (%d,%d): %v", level, plane, err)
			}
		}
	}
	snap := o.Metrics.Snapshot()
	if snap.Gauges["storage.breaker_state.node.n0"] != 1 {
		t.Fatalf("dead node breaker state = %v, want 1 (open)", snap.Gauges["storage.breaker_state.node.n0"])
	}
	if snap.Counters["resilience.breaker.node.n0.fast_fails"] == 0 {
		t.Fatal("open breaker never fast-failed: reads kept burning the retry budget")
	}
	if r.RetryAfter() <= 0 {
		t.Fatal("RetryAfter = 0 with an open node breaker")
	}
}

// TestRouterPropagatesTraceparent requires the router's node requests to
// carry the caller's trace as a W3C traceparent header, so node span trees
// hang off the router's.
func TestRouterPropagatesTraceparent(t *testing.T) {
	c := buildArtifact(t)
	store, err := core.NewPlaneStore(&c.Header, c)
	if err != nil {
		t.Fatal(err)
	}
	var gotTP string
	nh := NewNodeHandler(&nodeSource{h: &c.Header, store: store}, obs.New())
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotTP = r.Header.Get("traceparent")
		nh.ServeHTTP(w, r)
	}))
	defer ts.Close()
	m, err := ParseMap([]byte(fmt.Sprintf(`{"nodes": [{"name": "n0", "url": %q}]}`, ts.URL)))
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(RouterConfig{Map: m, Obs: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	tc := obs.NewTraceContext()
	ctx := obs.ContextWithTrace(context.Background(), tc)
	fc := r.FieldClient(&c.Header)
	if _, _, err := fc.FetchPlaneCtx(ctx, fieldKey(c, 0, 0)); err != nil {
		t.Fatal(err)
	}
	parsed, ok := obs.ParseTraceParent(gotTP)
	if !ok {
		t.Fatalf("node saw no valid traceparent, got %q", gotTP)
	}
	if parsed.TraceID != tc.TraceID {
		t.Fatalf("propagated trace id %s, want %s", parsed.TraceID, tc.TraceID)
	}
}

// TestRouterRejectsBadResponses pins the router-side validation: a node
// response of the wrong length is corruption, and node-side 400s for
// out-of-range coordinates come back as permanent faults.
func TestRouterRejectsBadResponses(t *testing.T) {
	c := buildArtifact(t)
	// A lying node: returns a truncated body for every plane.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write([]byte("short"))
	}))
	defer ts.Close()
	m, err := ParseMap([]byte(fmt.Sprintf(`{"nodes": [{"name": "n0", "url": %q}]}`, ts.URL)))
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(RouterConfig{Map: m, Obs: obs.New(), BreakerFailures: -1})
	if err != nil {
		t.Fatal(err)
	}
	fc := r.FieldClient(&c.Header)
	_, _, err = fc.FetchPlaneCtx(context.Background(), fieldKey(c, 0, 0))
	if err == nil || !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("truncated node response error = %v, want ErrCorrupt", err)
	}

	// A real node answers out-of-range coordinates with 400 → permanent.
	_, m2 := startNodes(t, c, 1, 1, nil)
	r2, err := NewRouter(RouterConfig{Map: m2, Obs: obs.New(), BreakerFailures: -1})
	if err != nil {
		t.Fatal(err)
	}
	fc2 := r2.FieldClient(&c.Header)
	key := fieldKey(c, 0, 0)
	key.Plane = c.Header.Planes + 5
	_, _, err = fc2.FetchPlaneCtx(context.Background(), key)
	if err == nil || storage.Classify(err) != storage.FaultPermanent {
		t.Fatalf("out-of-range fetch error = %v, want a permanent fault", err)
	}
}
