package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"pmgard/internal/core"
	"pmgard/internal/obs"
	"pmgard/internal/resilience"
	"pmgard/internal/servecache"
	"pmgard/internal/storage"
)

// RouterConfig configures a Router.
type RouterConfig struct {
	// Map is the static shard map; must be non-nil and finished (ParseMap
	// or LoadMap).
	Map *Map
	// Client issues the node HTTP requests; nil uses a default client
	// (per-request cancellation still applies through contexts).
	Client *http.Client
	// Retry is the per-node retry policy. The zero value uses the router
	// default — 2 attempts with 2ms..20ms equal-jitter backoff — which is
	// deliberately tighter than storage.DefaultRetryPolicy: a dead node
	// should fail over to its replica in milliseconds, not burn the full
	// single-store retry budget first.
	Retry storage.RetryPolicy
	// BreakerFailures is the consecutive-failure threshold of each node's
	// circuit breaker; 0 means the default of 5, negative disables the
	// breakers.
	BreakerFailures int
	// BreakerCooldown is the open-state cooldown of the node breakers; 0
	// uses the resilience default.
	BreakerCooldown time.Duration
	// Obs records the router metrics (shard.node_reads.<name>,
	// shard.replica_failover, per-node breaker gauges); must be non-nil.
	Obs *obs.Obs
}

// Router is the router-side client of the shard tier: it places plane keys
// on the map's ring and fetches them from node /planes endpoints with
// per-node retry/backoff and circuit breaking, failing over to the next
// replica when a node is down. Its FieldClient implements
// servecache.SourceCtx, so plugging it into core.SharedSource.Planes gives
// the router's shared cache cross-node singleflight: concurrent sessions
// missing the same plane trigger exactly one network fetch.
type Router struct {
	m        *Map
	client   *http.Client
	pol      storage.RetryPolicy
	o        *obs.Obs
	breakers []*resilience.Breaker // per node, nil entries when disabled
	reads    []*obs.Counter        // shard.node_reads.<name>, per node
	failover *obs.Counter
}

// NewRouter returns a router over cfg.Map.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if cfg.Map == nil || len(cfg.Map.Nodes) == 0 {
		return nil, fmt.Errorf("shard: router needs a non-empty map")
	}
	if cfg.Obs == nil {
		return nil, fmt.Errorf("shard: router needs an Obs")
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	pol := cfg.Retry
	if pol.MaxAttempts == 0 && pol.BaseDelay == 0 && pol.MaxDelay == 0 {
		pol = storage.RetryPolicy{MaxAttempts: 2, BaseDelay: 2 * time.Millisecond, MaxDelay: 20 * time.Millisecond}
	}
	r := &Router{
		m:        cfg.Map,
		client:   client,
		pol:      pol,
		o:        cfg.Obs,
		breakers: make([]*resilience.Breaker, len(cfg.Map.Nodes)),
		reads:    make([]*obs.Counter, len(cfg.Map.Nodes)),
		failover: cfg.Obs.Counter("shard.replica_failover"),
	}
	for i, n := range cfg.Map.Nodes {
		r.reads[i] = cfg.Obs.Counter("shard.node_reads." + n.Name)
		if cfg.BreakerFailures >= 0 {
			b := resilience.NewBreaker(resilience.BreakerConfig{
				FailureThreshold: cfg.BreakerFailures,
				Cooldown:         cfg.BreakerCooldown,
			})
			b.Instrument(cfg.Obs, "node."+n.Name)
			r.breakers[i] = b
		}
	}
	return r, nil
}

// RetryAfter returns the shortest cooldown remaining across the router's
// open node breakers — the soonest a refused read could succeed again — or
// 0 when no breaker is open. The serving tier derives 503 Retry-After
// headers from it.
func (r *Router) RetryAfter() time.Duration {
	var min time.Duration
	for _, b := range r.breakers {
		if b == nil {
			continue
		}
		if d := b.RetryAfter(); d > 0 && (min == 0 || d < min) {
			min = d
		}
	}
	return min
}

// get issues one GET against node n's API and returns the body on 200.
// Non-200 statuses and transport failures map to storage fault classes:
// 400/404/410 wrap storage.ErrPermanent, everything else is transient. The
// caller's trace context propagates as a traceparent header, parented at
// the current span, so the node's span tree hangs off the router's.
func (r *Router) get(ctx context.Context, n Node, path string, query url.Values) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.URL+path+"?"+query.Encode(), nil)
	if err != nil {
		return nil, fmt.Errorf("shard: node %s: %w: %w", n.Name, storage.ErrPermanent, err)
	}
	if tc, ok := obs.TraceFromContext(ctx); ok && tc.Valid() {
		if sp := obs.SpanFromContext(ctx); sp != nil {
			tc.SpanID = sp.HexID()
		}
		req.Header.Set("traceparent", tc.TraceParent())
	}
	resp, err := r.client.Do(req)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, fmt.Errorf("shard: node %s: %w", n.Name, ctxErr)
		}
		return nil, fmt.Errorf("shard: node %s: %w: %w", n.Name, storage.ErrTransient, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// The error body is the node's JSON error document; carry its
		// message so the router's error names the root cause.
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		var ne nodeError
		detail := string(msg)
		if json.Unmarshal(msg, &ne) == nil && ne.Error != "" {
			detail = ne.Error
		}
		class := storage.ErrTransient
		switch resp.StatusCode {
		case http.StatusBadRequest, http.StatusNotFound, http.StatusGone:
			class = storage.ErrPermanent
		}
		return nil, fmt.Errorf("shard: node %s: status %d: %w: %s", n.Name, resp.StatusCode, class, detail)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("shard: node %s: read body: %w: %w", n.Name, storage.ErrTransient, err)
	}
	return body, nil
}

// anyNode runs fn against each node in map order until one succeeds,
// returning the last error when all fail. Discovery calls (field lists,
// headers) use it — placement does not apply to them.
func (r *Router) anyNode(ctx context.Context, fn func(n Node) error) error {
	var last error
	for _, n := range r.m.Nodes {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := fn(n); err != nil {
			last = err
			continue
		}
		return nil
	}
	return last
}

// Fields lists the fields the shard serves, asking each node in map order
// until one answers.
func (r *Router) Fields(ctx context.Context) ([]string, error) {
	var out struct {
		Fields []string `json:"fields"`
	}
	err := r.anyNode(ctx, func(n Node) error {
		body, err := r.get(ctx, n, "/planes/fields", url.Values{})
		if err != nil {
			return err
		}
		return json.Unmarshal(body, &out)
	})
	if err != nil {
		return nil, fmt.Errorf("shard: list fields: %w", err)
	}
	return out.Fields, nil
}

// Header fetches one field's artifact header from the shard, asking each
// node in map order until one answers.
func (r *Router) Header(ctx context.Context, field string) (*core.Header, error) {
	var h core.Header
	err := r.anyNode(ctx, func(n Node) error {
		body, err := r.get(ctx, n, "/planes/header", url.Values{"field": {field}})
		if err != nil {
			return err
		}
		return json.Unmarshal(body, &h)
	})
	if err != nil {
		return nil, fmt.Errorf("shard: header %s: %w", field, err)
	}
	return &h, nil
}

// FieldClient returns the plane source serving field h over the shard. It
// implements servecache.SourceCtx, so it slots into
// core.SharedSource.Planes directly.
func (r *Router) FieldClient(h *core.Header) *FieldClient {
	fc := &FieldClient{r: r, h: h, chains: make([]nodePlaneSource, len(r.m.Nodes))}
	for i, n := range r.m.Nodes {
		base := &httpPlaneSource{r: r, node: n, field: h.FieldName}
		retrying := storage.NewRetryingSource(nil, base, r.pol)
		retrying.Instrument(r.o)
		var src nodePlaneSource = retrying
		if b := r.breakers[i]; b != nil {
			src = resilience.BreakerSource{Src: retrying, Breaker: b}
		}
		fc.chains[i] = src
	}
	return fc
}

// nodePlaneSource is one node's resilient read chain for one field.
type nodePlaneSource interface {
	// SegmentCtx returns the decompressed bitset of plane (level, plane),
	// bounded by ctx.
	SegmentCtx(ctx context.Context, level, plane int) ([]byte, error)
}

// httpPlaneSource reads one field's decompressed planes from one node's
// /planes endpoint. It sits at the bottom of the per-node chain, under the
// retry layer and breaker.
type httpPlaneSource struct {
	r     *Router
	node  Node
	field string
}

// Segment implements storage.PlaneSource.
func (s *httpPlaneSource) Segment(level, plane int) ([]byte, error) {
	return s.SegmentCtx(context.Background(), level, plane)
}

// SegmentCtx fetches one plane bitset over HTTP.
func (s *httpPlaneSource) SegmentCtx(ctx context.Context, level, plane int) ([]byte, error) {
	q := url.Values{
		"field": {s.field},
		"level": {fmt.Sprint(level)},
		"plane": {fmt.Sprint(plane)},
	}
	return s.r.get(ctx, s.node, "/planes", q)
}

// FieldClient serves one field's planes over the shard with replica
// failover. It is safe for concurrent use.
type FieldClient struct {
	r *Router
	h *core.Header
	// chains[i] is node i's resilient read chain (breaker over retries over
	// HTTP) for this field.
	chains []nodePlaneSource
}

// FetchPlane implements servecache.Source.
func (fc *FieldClient) FetchPlane(key servecache.Key) ([]byte, int64, error) {
	return fc.FetchPlaneCtx(context.Background(), key)
}

// FetchPlaneCtx implements servecache.SourceCtx: it walks the key's
// replicas in ring order, returning the first successful read. A replica
// failure with further replicas remaining counts one shard.replica_failover
// and moves on; context cancellation aborts immediately (the caller is
// gone — hammering more replicas helps nobody). When every replica fails,
// a permanent verdict from any of them wins over transient ones, so the
// session degrades around genuinely lost planes instead of erroring on a
// replica that also happened to be down.
//
// The returned payload count is the manifest's compressed size for the
// plane — identical to what a local store fetch would account — and the
// bitset length is validated against the header's RawPlaneSize, so a
// truncated or mislabeled node response surfaces as corruption, never as a
// silently wrong reconstruction.
func (fc *FieldClient) FetchPlaneCtx(ctx context.Context, key servecache.Key) ([]byte, int64, error) {
	sp := obs.SpanFromContext(ctx).Child("shard.fetch")
	defer sp.End()
	sp.SetAttr("level", key.Level)
	sp.SetAttr("plane", key.Plane)
	ctx = obs.ContextWithSpan(ctx, sp)
	replicas := fc.r.m.Replicas(Key{Codec: key.Codec, Field: key.Field, Level: key.Level, Plane: key.Plane})
	var permErr, lastErr error
	for i, n := range replicas {
		raw, err := fc.chains[n].SegmentCtx(ctx, key.Level, key.Plane)
		if err == nil {
			if want := fc.h.Levels[key.Level].RawPlaneSize; len(raw) != want {
				err = fmt.Errorf("shard: node %s plane (%d,%d) bitset is %d bytes, header says %d: %w",
					fc.r.m.Nodes[n].Name, key.Level, key.Plane, len(raw), want, storage.ErrCorrupt)
			} else {
				fc.r.reads[n].Add(1)
				sp.SetAttr("node", fc.r.m.Nodes[n].Name)
				if i > 0 {
					sp.SetAttr("failovers", i)
				}
				return raw, fc.h.Levels[key.Level].PlaneSizes[key.Plane], nil
			}
		}
		if ctx.Err() != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			sp.Fail(err)
			return nil, 0, err
		}
		if storage.Classify(err) == storage.FaultPermanent {
			permErr = err
		} else {
			lastErr = err
		}
		if i < len(replicas)-1 {
			fc.r.failover.Add(1)
		}
	}
	err := lastErr
	if permErr != nil {
		err = permErr
	}
	sp.Fail(err)
	return nil, 0, err
}
