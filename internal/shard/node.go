package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"pmgard/internal/core"
	"pmgard/internal/obs"
	"pmgard/internal/storage"
)

// NodeField is one field exposed through a node's /planes endpoints: the
// artifact header (served JSON-marshaled at /planes/header so routers can
// plan and validate without local artifacts) and the fetch hook that
// materializes decompressed plane bitsets, typically a node-local
// servecache over a core.PlaneStore so node-side /refine traffic and
// router traffic share one cache.
type NodeField struct {
	// Header is the field's artifact header.
	Header *core.Header
	// Fetch materializes the decompressed bitset of one plane. It returns
	// the bitset, the compressed payload bytes the plane's original fetch
	// moved (for the router's per-session byte accounting), and an error.
	// Errors classifying as storage.FaultPermanent surface to routers as
	// 410 so their sessions degrade instead of retrying.
	Fetch func(ctx context.Context, level, plane int) ([]byte, int64, error)
}

// NodeSource resolves the fields a node handler serves; cmd/serve's server
// implements it over its registered field handles.
type NodeSource interface {
	// PlaneField returns the named field's serving hooks; ok is false for
	// fields the node does not serve.
	PlaneField(name string) (f NodeField, ok bool)
	// PlaneFields lists the names of the fields the node serves, in
	// registration order.
	PlaneFields() []string
}

// payloadHeader is the response header carrying the compressed payload
// size a plane's fetch moved, so routers can cross-check their
// manifest-derived accounting against the node's.
const payloadHeader = "X-Shard-Payload"

// NodeHandler is the node-side /planes HTTP surface of the shard tier:
//
//	GET /planes?field=F&level=L&plane=K  — decompressed plane bitset
//	GET /planes/header?field=F           — JSON artifact header
//	GET /planes/fields                   — JSON {"fields": [...]}
//
// Plane responses are raw octet-stream bitsets (no framing — the router
// validates length against the header's RawPlaneSize); errors are the
// serving tier's JSON error document with statuses routers map back onto
// storage fault classes: 400/404/410 are permanent, everything else is
// transient.
type NodeHandler struct {
	src    NodeSource
	o      *obs.Obs
	reads  *obs.Counter
	errors *obs.Counter
}

// NewNodeHandler returns a handler serving src's fields. o records
// shard.node.plane_reads and shard.node.plane_errors; it must be non-nil.
func NewNodeHandler(src NodeSource, o *obs.Obs) *NodeHandler {
	return &NodeHandler{
		src:    src,
		o:      o,
		reads:  o.Counter("shard.node.plane_reads"),
		errors: o.Counter("shard.node.plane_errors"),
	}
}

// nodeError is the JSON error body of the /planes endpoints, mirroring the
// serving tier's errorResponse shape.
type nodeError struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

// failNode writes a JSON error document with the given status.
func (n *NodeHandler) failNode(w http.ResponseWriter, code int, err error) {
	n.errors.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(nodeError{Error: err.Error(), Status: code})
}

// ServeHTTP routes the /planes endpoints.
func (n *NodeHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/planes":
		n.handlePlane(w, r)
	case "/planes/header":
		n.handleHeader(w, r)
	case "/planes/fields":
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"fields": n.src.PlaneFields()})
	default:
		n.failNode(w, http.StatusNotFound, fmt.Errorf("shard: no such endpoint %q", r.URL.Path))
	}
}

// lookupField resolves the field query parameter against the node source.
func (n *NodeHandler) lookupField(w http.ResponseWriter, r *http.Request) (NodeField, bool) {
	name := r.URL.Query().Get("field")
	f, ok := n.src.PlaneField(name)
	if !ok {
		n.failNode(w, http.StatusNotFound, fmt.Errorf("shard: unknown field %q", name))
		return NodeField{}, false
	}
	return f, true
}

func (n *NodeHandler) handleHeader(w http.ResponseWriter, r *http.Request) {
	f, ok := n.lookupField(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(f.Header); err != nil {
		n.errors.Add(1)
	}
}

func (n *NodeHandler) handlePlane(w http.ResponseWriter, r *http.Request) {
	f, ok := n.lookupField(w, r)
	if !ok {
		return
	}
	level, err := strconv.Atoi(r.URL.Query().Get("level"))
	if err != nil {
		n.failNode(w, http.StatusBadRequest, fmt.Errorf("shard: bad level %q", r.URL.Query().Get("level")))
		return
	}
	plane, err := strconv.Atoi(r.URL.Query().Get("plane"))
	if err != nil {
		n.failNode(w, http.StatusBadRequest, fmt.Errorf("shard: bad plane %q", r.URL.Query().Get("plane")))
		return
	}
	if level < 0 || level >= len(f.Header.Levels) || plane < 0 || plane >= f.Header.Planes {
		n.failNode(w, http.StatusBadRequest,
			fmt.Errorf("shard: plane (%d,%d) out of range", level, plane))
		return
	}
	raw, payload, err := f.Fetch(r.Context(), level, plane)
	if err != nil {
		switch {
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			// The router hung up; nobody reads the response, but pick the
			// client-gone convention for the access log's sake.
			n.failNode(w, 499, err)
		case storage.Classify(err) == storage.FaultPermanent:
			// The data is authoritatively gone on this node: 410 tells the
			// router "stop retrying me", and after replica failover also
			// fails, its session degrades exactly as a local session would.
			n.failNode(w, http.StatusGone, err)
		default:
			n.failNode(w, http.StatusBadGateway, err)
		}
		return
	}
	n.reads.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(payloadHeader, strconv.FormatInt(payload, 10))
	w.Write(raw)
}
