package bitplane

import (
	"runtime/debug"
	"testing"
)

// The steady-state hot paths — encode with Release, partial decode into a
// caller buffer — must not allocate once the buffer pools are warm: every
// per-call buffer cycles through bufpool and the encoding shells through
// encPool. GC is paused for the measurement because a collection clears
// sync.Pool contents, which would count the refills as steady-state
// allocations.

// TestEncodeSteadyStateAllocs asserts the encode+Release cycle is
// allocation-free at steady state.
func TestEncodeSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under -race")
	}
	coeffs := benchCoeffs(4096)
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	// Warm the pools.
	for i := 0; i < 3; i++ {
		enc, err := EncodeLevel(coeffs, 32)
		if err != nil {
			t.Fatal(err)
		}
		enc.Release()
	}
	avg := testing.AllocsPerRun(50, func() {
		enc, _ := EncodeLevel(coeffs, 32)
		enc.Release()
	})
	if avg != 0 {
		t.Fatalf("steady-state encode allocates %.2f allocs/op, want 0", avg)
	}
}

// TestDecodePartialSteadyStateAllocs asserts partial decode into a reused
// destination is allocation-free.
func TestDecodePartialSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under -race")
	}
	coeffs := benchCoeffs(4096)
	enc, err := EncodeLevel(coeffs, 32)
	if err != nil {
		t.Fatal(err)
	}
	defer enc.Release()
	dst := make([]float64, len(coeffs))
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	for _, b := range []int{0, 8, 32} {
		b := b
		avg := testing.AllocsPerRun(50, func() {
			enc.DecodePartial(b, dst)
		})
		if avg != 0 {
			t.Fatalf("steady-state DecodePartial(b=%d) allocates %.2f allocs/op, want 0", b, avg)
		}
	}
}
