package bitplane

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// Kernel benchmarks: word-parallel implementation vs the retained scalar
// reference, at the paper's configuration (32 planes). BENCH_kernels.json
// records a sweep of these together with the end-to-end refactor/retrieve
// benchmarks at the repo root.

const benchN = 1 << 15

func benchCoeffs(n int) []float64 {
	rng := rand.New(rand.NewSource(9))
	c := make([]float64, n)
	for i := range c {
		c[i] = math.Ldexp(rng.NormFloat64(), rng.Intn(20)-10)
	}
	return c
}

// BenchmarkEncode measures the word-parallel single-thread encode
// (quantize + plane transpose + incremental error matrix) with pooled
// buffers recycled every iteration.
func BenchmarkEncode(b *testing.B) {
	coeffs := benchCoeffs(benchN)
	b.SetBytes(benchN * 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc, err := EncodeLevel(coeffs, 32)
		if err != nil {
			b.Fatal(err)
		}
		enc.Release()
	}
}

// BenchmarkEncodeScalarRef measures the retained scalar reference encoder
// on the same input — the "before" row of BENCH_kernels.json.
func BenchmarkEncodeScalarRef(b *testing.B) {
	coeffs := benchCoeffs(benchN)
	b.SetBytes(benchN * 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := encodeLevelModeScalar(coeffs, 32, Negabinary); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodePartial measures word-parallel partial decodes at several
// prefix depths, reusing the destination so the steady-state path is
// allocation-free.
func BenchmarkDecodePartial(b *testing.B) {
	coeffs := benchCoeffs(benchN)
	enc, err := EncodeLevel(coeffs, 32)
	if err != nil {
		b.Fatal(err)
	}
	defer enc.Release()
	dst := make([]float64, benchN)
	for _, depth := range []int{4, 8, 16, 32} {
		b.Run(planeDepthName(depth), func(b *testing.B) {
			b.SetBytes(benchN * 8)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				enc.DecodePartial(depth, dst)
			}
		})
	}
}

// BenchmarkDecodePartialScalarRef measures the scalar reference decode at
// the same prefix depths.
func BenchmarkDecodePartialScalarRef(b *testing.B) {
	coeffs := benchCoeffs(benchN)
	enc, err := EncodeLevel(coeffs, 32)
	if err != nil {
		b.Fatal(err)
	}
	defer enc.Release()
	for _, depth := range []int{4, 8, 16, 32} {
		b.Run(planeDepthName(depth), func(b *testing.B) {
			b.SetBytes(benchN * 8)
			for i := 0; i < b.N; i++ {
				decodePartialScalar(enc, depth)
			}
		})
	}
}

// BenchmarkErrMatrix isolates the error-matrix collection: the incremental
// one-pass kernel vs the scalar per-prefix re-decode.
func BenchmarkErrMatrix(b *testing.B) {
	const planes = 32
	coeffs := benchCoeffs(benchN)
	enc, err := EncodeLevel(coeffs, planes)
	if err != nil {
		b.Fatal(err)
	}
	defer enc.Release()
	unit := enc.unitSize()
	words := make([]uint64, benchN)
	quantizeRange(coeffs, words, unit, 1<<(planes-2), planes, Negabinary, 0, benchN)
	out := make([]float64, planes+1)

	b.Run("incremental", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			clear(out)
			errMatrixRange(coeffs, words, unit, planes, Negabinary, 0, benchN, out)
		}
	})
	// The scalar loop mirrors the original implementation exactly,
	// including its per-element non-finite guards.
	b.Run("scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for p := 0; p <= planes; p++ {
				var mask uint64
				if p > 0 {
					mask = ((uint64(1) << uint(p)) - 1) << uint(planes-p)
				}
				maxErr := 0.0
				for j, w := range words {
					if c := coeffs[j]; math.IsNaN(c) || math.IsInf(c, 0) {
						continue
					}
					dec := float64(decodeWord(w&mask, planes, Negabinary)) * unit
					e := math.Abs(coeffs[j] - dec)
					if math.IsInf(e, 0) {
						e = math.MaxFloat64
					}
					if e > maxErr {
						maxErr = e
					}
				}
				out[p] = maxErr
			}
		}
	})
}

func planeDepthName(b int) string {
	return fmt.Sprintf("b=%d", b)
}
