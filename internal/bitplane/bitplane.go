// Package bitplane implements the nega-binary bit-plane encoding of
// coefficient levels used by MGARD's progressive retrieval (§II-B).
//
// Each coefficient level is quantized against its own magnitude exponent and
// the quantized integers are written in base -2 (nega-binary), which encodes
// negative values without a separate sign plane and makes truncation errors
// alternate in sign. The encoding is then sliced into B bit-planes, most
// significant first; retrieving the first b planes and zeroing the rest
// yields a progressively refined approximation of the level.
//
// Alongside the planes, the encoder collects the error matrix
// Err[b] = max_i |c_i - decode_b(c_i)| for b = 0..B — the exact quantity
// MGARD's error estimator consumes to decide how many planes to fetch.
//
// The plane slicing and reassembly run word-parallel: 64 coefficients move
// through a 64×64 bit-matrix transpose per step instead of one bit test
// per coefficient per plane, and the error matrix is collected in one
// incremental pass (see kernels.go and DESIGN.md §10). Encodings draw
// their buffers from shared pools; call Release on encodings you are done
// with to make steady-state encoding allocation-free.
package bitplane

import (
	"fmt"
	"math"
	"sync"

	"pmgard/internal/bufpool"
	"pmgard/internal/obs"
	"pmgard/internal/pool"
)

// negaMask is the alternating-bit mask used by the nega-binary conversion
// identity: nb = (v + negaMask) ^ negaMask and v = (nb ^ negaMask) - negaMask.
const negaMask uint64 = 0xAAAAAAAAAAAAAAAA

// EncodeNegabinary converts a two's-complement integer to its nega-binary
// (base -2) representation.
func EncodeNegabinary(v int64) uint64 {
	return (uint64(v) + negaMask) ^ negaMask
}

// DecodeNegabinary converts a nega-binary representation back to a
// two's-complement integer.
func DecodeNegabinary(nb uint64) int64 {
	return int64((nb ^ negaMask) - negaMask)
}

// Mode selects the bit-plane representation.
type Mode int

const (
	// Negabinary is MGARD's base -2 encoding (the default): no separate
	// sign plane, truncation errors alternate in sign.
	Negabinary Mode = iota
	// SignMagnitude uses one sign plane followed by magnitude planes MSB
	// first — the conventional alternative, used by the encoding ablation.
	SignMagnitude
)

// LevelEncoding is the bit-plane encoding of one coefficient level.
//
// Encodings returned by the EncodeLevel family draw Bits and ErrMatrix
// from shared buffer pools: they are fully owned by the caller until
// Release, after which the encoding and every slice it exposed must not be
// touched again. Callers that retain ErrMatrix (or plane bytes) past the
// encoding's life must copy them before releasing.
type LevelEncoding struct {
	// N is the number of coefficients on the level.
	N int
	// Planes is the number of bit-planes B.
	Planes int
	// Exponent is the power-of-two alignment exponent E: every
	// coefficient magnitude is at most 2^Exponent.
	Exponent int
	// Bits[k] is the k-th bit-plane (k = 0 is the most significant),
	// packed 8 coefficients per byte, LSB-first within a byte.
	Bits [][]byte
	// ErrMatrix[b] is the maximum absolute coefficient error when only the
	// first b planes are retrieved (ErrMatrix[0] is the error of reading
	// nothing; ErrMatrix[Planes] is the residual quantization error).
	ErrMatrix []float64
	// Mode is the plane representation.
	Mode Mode

	// flat is the pooled backing array the Bits slices view; nil for
	// encodings assembled directly from retrieved planes.
	flat []byte
	// pooled marks encodings produced by EncodeLevel*, the only ones
	// Release recycles.
	pooled bool
}

// encPool recycles LevelEncoding shells (the struct and its Bits header
// slice); the plane and error-matrix backing arrays cycle through bufpool.
var encPool = sync.Pool{New: func() any { return new(LevelEncoding) }}

// newLevelEncoding assembles a pooled encoding shell with plane and
// error-matrix buffers sized for (n, planes). Buffer contents are
// undefined; every byte the encoder does not overwrite must be cleared.
func newLevelEncoding(n, planes, planeBytes int, mode Mode) *LevelEncoding {
	e := encPool.Get().(*LevelEncoding)
	e.N, e.Planes, e.Mode, e.Exponent = n, planes, mode, 0
	if cap(e.Bits) < planes {
		e.Bits = make([][]byte, planes)
	} else {
		e.Bits = e.Bits[:planes]
	}
	e.flat = bufpool.Bytes(planes * planeBytes)
	for k := 0; k < planes; k++ {
		e.Bits[k] = e.flat[k*planeBytes : (k+1)*planeBytes : (k+1)*planeBytes]
	}
	e.ErrMatrix = bufpool.Float64s(planes + 1)
	e.pooled = true
	return e
}

// Release returns the encoding's buffers to the shared pools and recycles
// the encoding itself. Only encodings produced by the EncodeLevel family
// are recycled; on any other encoding (for example one assembled from
// retrieved planes) Release is a no-op. After Release the encoding, its
// Bits and its ErrMatrix must not be used.
func (e *LevelEncoding) Release() {
	if e == nil || !e.pooled {
		return
	}
	bufpool.PutBytes(e.flat)
	bufpool.PutFloat64s(e.ErrMatrix)
	e.flat, e.ErrMatrix = nil, nil
	for k := range e.Bits {
		e.Bits[k] = nil
	}
	e.Bits = e.Bits[:0]
	e.pooled = false
	encPool.Put(e)
}

// EncodeLevel encodes coeffs into planes nega-binary bit-planes. planes
// must be in [1, 60]; 32 reproduces the paper's configuration.
func EncodeLevel(coeffs []float64, planes int) (*LevelEncoding, error) {
	return EncodeLevelModeWorkers(coeffs, planes, Negabinary, 1)
}

// EncodeLevelWorkers is EncodeLevel with the quantization, plane-slicing
// and error-matrix loops fanned across at most `workers` goroutines (≤ 0
// means GOMAXPROCS). Every plane byte and every error-matrix entry is
// computed in its own pre-sized slot from the same operands, so the
// encoding is bit-identical for every worker count.
func EncodeLevelWorkers(coeffs []float64, planes, workers int) (*LevelEncoding, error) {
	return EncodeLevelModeWorkers(coeffs, planes, Negabinary, workers)
}

// EncodeLevelMode encodes coeffs under the chosen plane representation.
func EncodeLevelMode(coeffs []float64, planes int, mode Mode) (*LevelEncoding, error) {
	return EncodeLevelModeWorkers(coeffs, planes, mode, 1)
}

// EncodeLevelModeWorkers encodes coeffs under the chosen plane
// representation on a bounded worker pool.
//
// Adversarial inputs are handled deterministically rather than poisoning
// the planes: NaN quantizes to zero, ±Inf saturates to the level's
// quantization limit, and non-finite coefficients are excluded from both
// the alignment exponent and the error matrix (no finite plane prefix can
// bound the error of a non-finite value). A level whose magnitudes all
// underflow the quantization unit (denormals) encodes as all-zero planes
// with the residual max magnitude recorded in every error-matrix entry.
func EncodeLevelModeWorkers(coeffs []float64, planes int, mode Mode, workers int) (*LevelEncoding, error) {
	return encodeLevelMode(coeffs, planes, mode, workers, nil)
}

// encodeLevelMode is the shared encode body; o, when non-nil, routes the
// quantize/slice and error-matrix fan-outs through instrumented pool runs.
func encodeLevelMode(coeffs []float64, planes int, mode Mode, workers int, o *obs.Obs) (*LevelEncoding, error) {
	if planes < 1 || planes > 60 {
		return nil, fmt.Errorf("bitplane: planes %d out of range [1,60]", planes)
	}
	if mode != Negabinary && mode != SignMagnitude {
		return nil, fmt.Errorf("bitplane: unknown mode %d", mode)
	}
	workers = pool.Clamp(workers)
	n := len(coeffs)
	planeBytes := (n + 7) / 8
	enc := newLevelEncoding(n, planes, planeBytes, mode)

	maxAbs := 0.0
	for _, c := range coeffs {
		if a := math.Abs(c); a > maxAbs && !math.IsInf(c, 0) {
			maxAbs = a
		}
	}
	if maxAbs == 0 || n == 0 {
		// All-zero level (or only zeros and non-finite values): planes and
		// errors are zero. Exponent is arbitrary; use a sentinel that
		// dequantizes to zero regardless. Pooled buffers arrive dirty, so
		// zero them explicitly.
		enc.Exponent = math.MinInt16
		clear(enc.flat)
		clear(enc.ErrMatrix)
		return enc, nil
	}
	// Smallest E with maxAbs ≤ 2^E, capped so dequantized values stay
	// finite at the saturation limit.
	enc.Exponent = int(math.Ceil(math.Log2(maxAbs)))
	if math.Ldexp(1, enc.Exponent) < maxAbs {
		enc.Exponent++ // guard against log2 rounding
	}
	if enc.Exponent > 1023 {
		enc.Exponent = 1023
	}

	// Quantize to at most 2^(B-2) so the nega-binary representation fits
	// in B digits.
	unit := math.Ldexp(1, enc.Exponent-(planes-2))
	limit := int64(1) << uint(planes-2)
	if unit == 0 {
		// The quantization unit underflowed (a denormal-only level): no
		// plane can represent anything, so record the residual magnitude
		// as the error of every prefix and keep the zero-sentinel planes.
		enc.Exponent = math.MinInt16
		clear(enc.flat)
		for b := range enc.ErrMatrix {
			enc.ErrMatrix[b] = maxAbs
		}
		return enc, nil
	}

	encodeM := pool.NewMetrics(o, "bitplane.encode")
	words := bufpool.Uint64s(n)
	if workers == 1 && encodeM == nil {
		quantizeRange(coeffs, words, unit, limit, planes, mode, 0, n)
	} else {
		pool.RunChunksMetrics(n, workers, encodeM, func(_, lo, hi int) error {
			quantizeRange(coeffs, words, unit, limit, planes, mode, lo, hi)
			return nil
		})
	}

	// Slice into planes, MSB first (plane 0 is the sign plane in
	// sign-magnitude mode), 64 coefficients per transpose step. Chunking
	// by group keeps each worker's writes on disjoint bytes of every
	// plane, and every plane byte is stored, so the pooled (dirty)
	// backing needs no clearing.
	groups := (n + 63) / 64
	if workers == 1 && encodeM == nil {
		sliceGroups(words, enc.Bits, planes, planeBytes, 0, groups)
	} else {
		pool.RunChunksMetrics(groups, workers, encodeM, func(_, lo, hi int) error {
			sliceGroups(words, enc.Bits, planes, planeBytes, lo, hi)
			return nil
		})
	}

	// Collect the error matrix in one incremental pass per coefficient
	// range: ErrMatrix[b] is the max over all ranges' partial maxima.
	// Merging maxima is exact and order-independent, so the result is
	// identical for every worker count.
	errM := pool.NewMetrics(o, "bitplane.errmatrix")
	if workers == 1 && errM == nil {
		clear(enc.ErrMatrix)
		errMatrixRange(coeffs, words, unit, planes, mode, 0, n, enc.ErrMatrix)
	} else {
		chunks := workers
		if chunks > n {
			chunks = n
		}
		stride := planes + 1
		partial := bufpool.Float64s(chunks * stride)
		clear(partial)
		pool.RunMetrics(chunks, workers, errM, func(_, c int) error {
			lo, hi := c*n/chunks, (c+1)*n/chunks
			errMatrixRange(coeffs, words, unit, planes, mode, lo, hi, partial[c*stride:(c+1)*stride])
			return nil
		})
		for b := 0; b <= planes; b++ {
			m := 0.0
			for c := 0; c < chunks; c++ {
				if v := partial[c*stride+b]; v > m {
					m = v
				}
			}
			enc.ErrMatrix[b] = m
		}
		bufpool.PutFloat64s(partial)
	}
	bufpool.PutUint64s(words)
	return enc, nil
}

// encodeWord packs a quantized coefficient into a plane word under the
// given mode. In sign-magnitude mode the top bit is the sign and the
// remaining planes-1 bits hold |q| (clamped to fit).
func encodeWord(q int64, planes int, mode Mode) uint64 {
	if mode == Negabinary {
		return EncodeNegabinary(q)
	}
	magBits := uint(planes - 1)
	var sign uint64
	mag := q
	if q < 0 {
		sign = 1
		mag = -q
	}
	maxMag := int64(1)<<magBits - 1
	if mag > maxMag {
		mag = maxMag
	}
	return sign<<magBits | uint64(mag)
}

// decodeWord reverses encodeWord on a (possibly truncated) word.
func decodeWord(w uint64, planes int, mode Mode) int64 {
	if mode == Negabinary {
		return DecodeNegabinary(w)
	}
	magBits := uint(planes - 1)
	mag := int64(w & (uint64(1)<<magBits - 1))
	if w>>magBits&1 == 1 {
		return -mag
	}
	return mag
}

// unitSize returns the dequantization unit, or 0 for an all-zero level.
func (e *LevelEncoding) unitSize() float64 {
	if e.Exponent == math.MinInt16 {
		return 0
	}
	return math.Ldexp(1, e.Exponent-(e.Planes-2))
}

// DecodePartial reconstructs the level coefficients from the first b planes
// into dst (allocated if nil) and returns it. b must be in [0, Planes].
// With a caller-provided dst the decode is allocation-free.
func (e *LevelEncoding) DecodePartial(b int, dst []float64) []float64 {
	return e.DecodePartialWorkers(b, dst, 1)
}

// DecodePartialWorkers is DecodePartial fanned across at most `workers`
// goroutines (≤ 0 means GOMAXPROCS). Each coefficient group is
// reconstructed independently from the same plane bytes, so the output is
// bit-identical for every worker count.
func (e *LevelEncoding) DecodePartialWorkers(b int, dst []float64, workers int) []float64 {
	return e.decodePartial(b, dst, workers, nil)
}

// decodePartial is the shared decode body; o, when non-nil, routes the
// reconstruction fan-out through instrumented pool runs.
func (e *LevelEncoding) decodePartial(b int, dst []float64, workers int, o *obs.Obs) []float64 {
	if b < 0 || b > e.Planes {
		panic(fmt.Sprintf("bitplane: DecodePartial b=%d out of range [0,%d]", b, e.Planes))
	}
	if dst == nil {
		dst = make([]float64, e.N)
	}
	if len(dst) != e.N {
		panic(fmt.Sprintf("bitplane: DecodePartial dst length %d, want %d", len(dst), e.N))
	}
	unit := e.unitSize()
	if unit == 0 || b == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return dst
	}
	decodeM := pool.NewMetrics(o, "bitplane.decode")
	workers = pool.Clamp(workers)
	groups := (e.N + 63) / 64
	gather := gatherGroups
	if b <= 8 {
		// Shallow prefixes move through 8×8 tiles instead of the full
		// 64-row transpose; both kernels recover the identical words.
		gather = gatherGroupsSmall
	}
	if workers == 1 && decodeM == nil {
		gather(e.Bits, dst, b, e.Planes, e.Mode, unit, 0, groups)
	} else {
		pool.RunChunksMetrics(groups, workers, decodeM, func(_, lo, hi int) error {
			gather(e.Bits, dst, b, e.Planes, e.Mode, unit, lo, hi)
			return nil
		})
	}
	return dst
}

// Decode reconstructs the level from all planes (residual quantization
// error remains).
func (e *LevelEncoding) Decode(dst []float64) []float64 {
	return e.DecodePartial(e.Planes, dst)
}

// PlaneSizeRaw returns the uncompressed size in bytes of one bit-plane.
func (e *LevelEncoding) PlaneSizeRaw() int { return (e.N + 7) / 8 }
