// Package bitplane implements the nega-binary bit-plane encoding of
// coefficient levels used by MGARD's progressive retrieval (§II-B).
//
// Each coefficient level is quantized against its own magnitude exponent and
// the quantized integers are written in base -2 (nega-binary), which encodes
// negative values without a separate sign plane and makes truncation errors
// alternate in sign. The encoding is then sliced into B bit-planes, most
// significant first; retrieving the first b planes and zeroing the rest
// yields a progressively refined approximation of the level.
//
// Alongside the planes, the encoder collects the error matrix
// Err[b] = max_i |c_i - decode_b(c_i)| for b = 0..B — the exact quantity
// MGARD's error estimator consumes to decide how many planes to fetch.
package bitplane

import (
	"fmt"
	"math"
)

// negaMask is the alternating-bit mask used by the nega-binary conversion
// identity: nb = (v + negaMask) ^ negaMask and v = (nb ^ negaMask) - negaMask.
const negaMask uint64 = 0xAAAAAAAAAAAAAAAA

// EncodeNegabinary converts a two's-complement integer to its nega-binary
// (base -2) representation.
func EncodeNegabinary(v int64) uint64 {
	return (uint64(v) + negaMask) ^ negaMask
}

// DecodeNegabinary converts a nega-binary representation back to a
// two's-complement integer.
func DecodeNegabinary(nb uint64) int64 {
	return int64((nb ^ negaMask) - negaMask)
}

// Mode selects the bit-plane representation.
type Mode int

const (
	// Negabinary is MGARD's base -2 encoding (the default): no separate
	// sign plane, truncation errors alternate in sign.
	Negabinary Mode = iota
	// SignMagnitude uses one sign plane followed by magnitude planes MSB
	// first — the conventional alternative, used by the encoding ablation.
	SignMagnitude
)

// LevelEncoding is the bit-plane encoding of one coefficient level.
type LevelEncoding struct {
	// N is the number of coefficients on the level.
	N int
	// Planes is the number of bit-planes B.
	Planes int
	// Exponent is the power-of-two alignment exponent E: every
	// coefficient magnitude is at most 2^Exponent.
	Exponent int
	// Bits[k] is the k-th bit-plane (k = 0 is the most significant),
	// packed 8 coefficients per byte, LSB-first within a byte.
	Bits [][]byte
	// ErrMatrix[b] is the maximum absolute coefficient error when only the
	// first b planes are retrieved (ErrMatrix[0] is the error of reading
	// nothing; ErrMatrix[Planes] is the residual quantization error).
	ErrMatrix []float64
	// Mode is the plane representation.
	Mode Mode
}

// EncodeLevel encodes coeffs into planes nega-binary bit-planes. planes
// must be in [1, 60]; 32 reproduces the paper's configuration.
func EncodeLevel(coeffs []float64, planes int) (*LevelEncoding, error) {
	return EncodeLevelMode(coeffs, planes, Negabinary)
}

// EncodeLevelMode encodes coeffs under the chosen plane representation.
func EncodeLevelMode(coeffs []float64, planes int, mode Mode) (*LevelEncoding, error) {
	if planes < 1 || planes > 60 {
		return nil, fmt.Errorf("bitplane: planes %d out of range [1,60]", planes)
	}
	if mode != Negabinary && mode != SignMagnitude {
		return nil, fmt.Errorf("bitplane: unknown mode %d", mode)
	}
	n := len(coeffs)
	enc := &LevelEncoding{
		N:         n,
		Planes:    planes,
		Bits:      make([][]byte, planes),
		ErrMatrix: make([]float64, planes+1),
		Mode:      mode,
	}
	planeBytes := (n + 7) / 8
	for k := range enc.Bits {
		enc.Bits[k] = make([]byte, planeBytes)
	}

	maxAbs := 0.0
	for _, c := range coeffs {
		if a := math.Abs(c); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 || n == 0 {
		// All-zero level: planes stay zero, errors stay zero. Exponent is
		// arbitrary; use a sentinel that dequantizes to zero regardless.
		enc.Exponent = math.MinInt16
		return enc, nil
	}
	// Smallest E with maxAbs ≤ 2^E.
	enc.Exponent = int(math.Ceil(math.Log2(maxAbs)))
	if math.Pow(2, float64(enc.Exponent)) < maxAbs {
		enc.Exponent++ // guard against log2 rounding
	}

	// Quantize to at most 2^(B-2) so the nega-binary representation fits
	// in B digits.
	unit := math.Ldexp(1, enc.Exponent-(planes-2))
	limit := int64(1) << uint(planes-2)

	words := make([]uint64, n)
	for i, c := range coeffs {
		q := int64(math.Round(c / unit))
		if q > limit {
			q = limit
		} else if q < -limit {
			q = -limit
		}
		words[i] = encodeWord(q, planes, mode)
	}

	// Slice into planes, MSB first (plane 0 is the sign plane in
	// sign-magnitude mode).
	for i, w := range words {
		byteIx, bitIx := i>>3, uint(i&7)
		for k := 0; k < planes; k++ {
			if w>>(uint(planes-1-k))&1 == 1 {
				enc.Bits[k][byteIx] |= 1 << bitIx
			}
		}
	}

	// Collect the error matrix: for each prefix length b, the max abs
	// difference between the original coefficient and the value decoded
	// from the first b planes.
	for b := 0; b <= planes; b++ {
		var mask uint64
		if b > 0 {
			mask = ((uint64(1) << uint(b)) - 1) << uint(planes-b)
		}
		maxErr := 0.0
		for i, w := range words {
			dec := float64(decodeWord(w&mask, planes, mode)) * unit
			if e := math.Abs(coeffs[i] - dec); e > maxErr {
				maxErr = e
			}
		}
		enc.ErrMatrix[b] = maxErr
	}
	return enc, nil
}

// encodeWord packs a quantized coefficient into a plane word under the
// given mode. In sign-magnitude mode the top bit is the sign and the
// remaining planes-1 bits hold |q| (clamped to fit).
func encodeWord(q int64, planes int, mode Mode) uint64 {
	if mode == Negabinary {
		return EncodeNegabinary(q)
	}
	magBits := uint(planes - 1)
	var sign uint64
	mag := q
	if q < 0 {
		sign = 1
		mag = -q
	}
	maxMag := int64(1)<<magBits - 1
	if mag > maxMag {
		mag = maxMag
	}
	return sign<<magBits | uint64(mag)
}

// decodeWord reverses encodeWord on a (possibly truncated) word.
func decodeWord(w uint64, planes int, mode Mode) int64 {
	if mode == Negabinary {
		return DecodeNegabinary(w)
	}
	magBits := uint(planes - 1)
	mag := int64(w & (uint64(1)<<magBits - 1))
	if w>>magBits&1 == 1 {
		return -mag
	}
	return mag
}

// unitSize returns the dequantization unit, or 0 for an all-zero level.
func (e *LevelEncoding) unitSize() float64 {
	if e.Exponent == math.MinInt16 {
		return 0
	}
	return math.Ldexp(1, e.Exponent-(e.Planes-2))
}

// DecodePartial reconstructs the level coefficients from the first b planes
// into dst (allocated if nil) and returns it. b must be in [0, Planes].
func (e *LevelEncoding) DecodePartial(b int, dst []float64) []float64 {
	if b < 0 || b > e.Planes {
		panic(fmt.Sprintf("bitplane: DecodePartial b=%d out of range [0,%d]", b, e.Planes))
	}
	if dst == nil {
		dst = make([]float64, e.N)
	}
	if len(dst) != e.N {
		panic(fmt.Sprintf("bitplane: DecodePartial dst length %d, want %d", len(dst), e.N))
	}
	unit := e.unitSize()
	if unit == 0 || b == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return dst
	}
	for i := 0; i < e.N; i++ {
		byteIx, bitIx := i>>3, uint(i&7)
		var w uint64
		for k := 0; k < b; k++ {
			if e.Bits[k][byteIx]>>bitIx&1 == 1 {
				w |= 1 << uint(e.Planes-1-k)
			}
		}
		dst[i] = float64(decodeWord(w, e.Planes, e.Mode)) * unit
	}
	return dst
}

// Decode reconstructs the level from all planes (residual quantization
// error remains).
func (e *LevelEncoding) Decode(dst []float64) []float64 {
	return e.DecodePartial(e.Planes, dst)
}

// PlaneSizeRaw returns the uncompressed size in bytes of one bit-plane.
func (e *LevelEncoding) PlaneSizeRaw() int { return (e.N + 7) / 8 }
