//go:build race

package bitplane

// raceEnabled reports whether the race detector is active; allocation-count
// guards skip under it because instrumented sync.Pool operations allocate.
const raceEnabled = true
