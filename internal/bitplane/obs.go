package bitplane

import "pmgard/internal/obs"

// EncodeLevelObs is EncodeLevelWorkers with encode telemetry recorded into
// o: a "bitplane.encode" span, counters bitplane.levels_encoded /
// bitplane.planes_encoded / bitplane.errmatrix_tasks /
// bitplane.coeffs_encoded, and pool task metrics under
// pool.bitplane.encode.* and pool.bitplane.errmatrix.*. A nil o is exactly
// EncodeLevelWorkers.
func EncodeLevelObs(coeffs []float64, planes, workers int, o *obs.Obs) (*LevelEncoding, error) {
	if o == nil {
		return EncodeLevelWorkers(coeffs, planes, workers)
	}
	sp := o.Span("bitplane.encode", nil)
	sp.SetAttr("coeffs", len(coeffs))
	sp.SetAttr("planes", planes)
	enc, err := encodeLevelMode(coeffs, planes, Negabinary, workers, o)
	if err == nil {
		o.Counter("bitplane.levels_encoded").Add(1)
		o.Counter("bitplane.planes_encoded").Add(int64(planes))
		o.Counter("bitplane.errmatrix_tasks").Add(int64(planes) + 1)
		o.Counter("bitplane.coeffs_encoded").Add(int64(len(coeffs)))
	}
	sp.End()
	return enc, err
}

// DecodePartialObs is DecodePartialWorkers with decode telemetry recorded
// into o: a "bitplane.decode" span, counters bitplane.partial_decodes /
// bitplane.planes_decoded, and pool task metrics under
// pool.bitplane.decode.*. A nil o is exactly DecodePartialWorkers.
func (e *LevelEncoding) DecodePartialObs(b int, dst []float64, workers int, o *obs.Obs) []float64 {
	if o == nil {
		return e.DecodePartialWorkers(b, dst, workers)
	}
	sp := o.Span("bitplane.decode", nil)
	sp.SetAttr("planes", b)
	out := e.decodePartial(b, dst, workers, o)
	o.Counter("bitplane.partial_decodes").Add(1)
	o.Counter("bitplane.planes_decoded").Add(int64(b))
	sp.End()
	return out
}
