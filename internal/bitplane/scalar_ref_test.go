package bitplane

import (
	"math"
	"math/rand"
	"testing"
)

// This file retains the pre-kernel scalar implementation verbatim (modulo
// fan-out plumbing) as the reference the word-parallel kernels must match
// byte-for-byte. The property tests below drive both implementations over
// random and adversarial inputs and require identical planes, error
// matrices and partial decodes.

// encodeLevelModeScalar is the original bit-at-a-time encoder.
func encodeLevelModeScalar(coeffs []float64, planes int, mode Mode) (*LevelEncoding, error) {
	if planes < 1 || planes > 60 {
		return nil, nil
	}
	n := len(coeffs)
	enc := &LevelEncoding{
		N:         n,
		Planes:    planes,
		Bits:      make([][]byte, planes),
		ErrMatrix: make([]float64, planes+1),
		Mode:      mode,
	}
	planeBytes := (n + 7) / 8
	for k := range enc.Bits {
		enc.Bits[k] = make([]byte, planeBytes)
	}

	maxAbs := 0.0
	for _, c := range coeffs {
		if a := math.Abs(c); a > maxAbs && !math.IsInf(c, 0) {
			maxAbs = a
		}
	}
	if maxAbs == 0 || n == 0 {
		enc.Exponent = math.MinInt16
		return enc, nil
	}
	enc.Exponent = int(math.Ceil(math.Log2(maxAbs)))
	if math.Pow(2, float64(enc.Exponent)) < maxAbs {
		enc.Exponent++
	}
	if enc.Exponent > 1023 {
		enc.Exponent = 1023
	}

	unit := math.Ldexp(1, enc.Exponent-(planes-2))
	limit := int64(1) << uint(planes-2)
	if unit == 0 {
		enc.Exponent = math.MinInt16
		for b := range enc.ErrMatrix {
			enc.ErrMatrix[b] = maxAbs
		}
		return enc, nil
	}

	words := make([]uint64, n)
	for i, c := range coeffs {
		var q int64
		switch {
		case math.IsNaN(c):
			q = 0
		case math.IsInf(c, 1):
			q = limit
		case math.IsInf(c, -1):
			q = -limit
		default:
			q = int64(math.Round(c / unit))
			if q > limit {
				q = limit
			} else if q < -limit {
				q = -limit
			}
		}
		words[i] = encodeWord(q, planes, mode)
	}

	for i, w := range words {
		byteIx, bitIx := i>>3, uint(i&7)
		for k := 0; k < planes; k++ {
			if w>>(uint(planes-1-k))&1 == 1 {
				enc.Bits[k][byteIx] |= 1 << bitIx
			}
		}
	}

	for b := 0; b <= planes; b++ {
		var mask uint64
		if b > 0 {
			mask = ((uint64(1) << uint(b)) - 1) << uint(planes-b)
		}
		maxErr := 0.0
		for i, w := range words {
			if c := coeffs[i]; math.IsNaN(c) || math.IsInf(c, 0) {
				continue
			}
			dec := float64(decodeWord(w&mask, planes, mode)) * unit
			e := math.Abs(coeffs[i] - dec)
			if math.IsInf(e, 0) {
				e = math.MaxFloat64
			}
			if e > maxErr {
				maxErr = e
			}
		}
		enc.ErrMatrix[b] = maxErr
	}
	return enc, nil
}

// decodePartialScalar is the original bit-at-a-time partial decode.
func decodePartialScalar(e *LevelEncoding, b int) []float64 {
	dst := make([]float64, e.N)
	unit := e.unitSize()
	if unit == 0 || b == 0 {
		return dst
	}
	for i := range dst {
		byteIx, bitIx := i>>3, uint(i&7)
		var w uint64
		for k := 0; k < b; k++ {
			if e.Bits[k][byteIx]>>bitIx&1 == 1 {
				w |= 1 << uint(e.Planes-1-k)
			}
		}
		dst[i] = float64(decodeWord(w, e.Planes, e.Mode)) * unit
	}
	return dst
}

// compareEncodings fails the test unless got matches the scalar reference
// byte-for-byte (planes) and bit-for-bit (error matrix, exponent).
func compareEncodings(t *testing.T, got, want *LevelEncoding, label string) {
	t.Helper()
	if got.N != want.N || got.Planes != want.Planes || got.Exponent != want.Exponent || got.Mode != want.Mode {
		t.Fatalf("%s: header mismatch: got {N:%d P:%d E:%d M:%d} want {N:%d P:%d E:%d M:%d}",
			label, got.N, got.Planes, got.Exponent, got.Mode, want.N, want.Planes, want.Exponent, want.Mode)
	}
	for k := range want.Bits {
		for j := range want.Bits[k] {
			if got.Bits[k][j] != want.Bits[k][j] {
				t.Fatalf("%s: plane %d byte %d: got %08b want %08b", label, k, j, got.Bits[k][j], want.Bits[k][j])
			}
		}
	}
	for b := range want.ErrMatrix {
		g, w := got.ErrMatrix[b], want.ErrMatrix[b]
		if math.Float64bits(g) != math.Float64bits(w) {
			t.Fatalf("%s: ErrMatrix[%d]: got %v want %v", label, b, g, w)
		}
	}
}

// randomCoeffs draws a level with the requested adversarial seasoning.
func randomCoeffs(rng *rand.Rand, n int, adversarial bool) []float64 {
	c := make([]float64, n)
	for i := range c {
		switch {
		case adversarial && rng.Intn(17) == 0:
			switch rng.Intn(4) {
			case 0:
				c[i] = math.NaN()
			case 1:
				c[i] = math.Inf(1)
			case 2:
				c[i] = math.Inf(-1)
			default:
				c[i] = math.Ldexp(rng.Float64(), -1060) // denormal
			}
		default:
			c[i] = math.Ldexp(rng.NormFloat64(), rng.Intn(40)-20)
		}
	}
	return c
}

// TestKernelsMatchScalarReference cross-checks the word-parallel kernels
// against the retained scalar reference over random lengths (including
// n%64 != 0, n < 64, n = 0), the full plane range, both modes, and
// NaN/Inf/denormal inputs.
func TestKernelsMatchScalarReference(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	lengths := []int{0, 1, 7, 63, 64, 65, 100, 128, 129, 640, 1000}
	for trial := 0; trial < 60; trial++ {
		n := lengths[trial%len(lengths)]
		if trial >= len(lengths)*2 {
			n = rng.Intn(600)
		}
		planes := 1 + rng.Intn(60)
		mode := Mode(rng.Intn(2))
		adversarial := trial%3 == 0
		coeffs := randomCoeffs(rng, n, adversarial)

		want, _ := encodeLevelModeScalar(coeffs, planes, mode)
		for _, workers := range []int{1, 4} {
			got, err := EncodeLevelModeWorkers(coeffs, planes, mode, workers)
			if err != nil {
				t.Fatalf("n=%d planes=%d mode=%d workers=%d: %v", n, planes, mode, workers, err)
			}
			compareEncodings(t, got, want, "encode")

			for _, b := range []int{0, 1, planes / 2, planes} {
				wantDec := decodePartialScalar(want, b)
				gotDec := got.DecodePartialWorkers(b, nil, workers)
				for i := range wantDec {
					if math.Float64bits(gotDec[i]) != math.Float64bits(wantDec[i]) {
						t.Fatalf("n=%d planes=%d mode=%d b=%d i=%d: got %v want %v",
							n, planes, mode, b, i, gotDec[i], wantDec[i])
					}
				}
			}
			got.Release()
		}
	}
}

// TestKernelsDenormalLevel pins the denormal-underflow early return: the
// kernels must reproduce the scalar path's all-zero planes and
// maxAbs-filled error matrix.
func TestKernelsDenormalLevel(t *testing.T) {
	coeffs := []float64{math.Ldexp(1, -1070), -math.Ldexp(1, -1071), 0}
	want, _ := encodeLevelModeScalar(coeffs, 32, Negabinary)
	got, err := EncodeLevel(coeffs, 32)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Release()
	compareEncodings(t, got, want, "denormal")
}

// TestTranspose64Involution pins the transpose network's defining
// properties: applying it twice restores the matrix, and a single
// application realizes out[r] bit p = in[63-p] bit (63-r).
func TestTranspose64Involution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var m, orig [64]uint64
	for i := range m {
		m[i] = rng.Uint64()
	}
	orig = m
	transpose64(&m)
	for r := 0; r < 64; r++ {
		for p := 0; p < 64; p++ {
			got := m[r] >> uint(p) & 1
			want := orig[63-p] >> uint(63-r) & 1
			if got != want {
				t.Fatalf("transpose64: out[%d] bit %d = %d, want in[%d] bit %d = %d", r, p, got, 63-p, 63-r, want)
			}
		}
	}
	transpose64(&m)
	if m != orig {
		t.Fatal("transpose64 applied twice did not restore the matrix")
	}
}
