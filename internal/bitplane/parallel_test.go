package bitplane

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// encodingsEqual reports whether two level encodings are byte-for-byte and
// bit-for-bit identical, including the error matrix.
func encodingsEqual(a, b *LevelEncoding) bool {
	if a.N != b.N || a.Planes != b.Planes || a.Exponent != b.Exponent || a.Mode != b.Mode {
		return false
	}
	if len(a.Bits) != len(b.Bits) || len(a.ErrMatrix) != len(b.ErrMatrix) {
		return false
	}
	for k := range a.Bits {
		if !bytes.Equal(a.Bits[k], b.Bits[k]) {
			return false
		}
	}
	for i := range a.ErrMatrix {
		// Compare bit patterns so NaN (never produced, but cheap to rule
		// out) would not compare equal by accident.
		if math.Float64bits(a.ErrMatrix[i]) != math.Float64bits(b.ErrMatrix[i]) {
			return false
		}
	}
	return true
}

// adversarial builds the adversarial input families from the issue: NaN,
// ±Inf, denormals, and all-zero levels, plus mixtures with normal values.
func adversarial(rng *rand.Rand, n int) map[string][]float64 {
	normal := make([]float64, n)
	for i := range normal {
		normal[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(8)-4))
	}
	mixed := make([]float64, n)
	copy(mixed, normal)
	for i := 0; i < n; i += 7 {
		switch (i / 7) % 3 {
		case 0:
			mixed[i] = math.NaN()
		case 1:
			mixed[i] = math.Inf(1)
		case 2:
			mixed[i] = math.Inf(-1)
		}
	}
	denormal := make([]float64, n)
	for i := range denormal {
		denormal[i] = float64(rng.Intn(100)) * 5e-324 // sub-normal magnitudes
	}
	allNaN := make([]float64, n)
	for i := range allNaN {
		allNaN[i] = math.NaN()
	}
	allInf := make([]float64, n)
	for i := range allInf {
		allInf[i] = math.Inf(1 - 2*(i&1))
	}
	return map[string][]float64{
		"normal":   normal,
		"mixed":    mixed,
		"denormal": denormal,
		"zero":     make([]float64, n),
		"allNaN":   allNaN,
		"allInf":   allInf,
	}
}

// TestEncodeWorkersBitIdentical is the property test for the encoder's
// determinism invariant: for random sizes and adversarial inputs, every
// worker count produces a byte-identical encoding, in both plane modes.
func TestEncodeWorkersBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 8; trial++ {
		n := rng.Intn(700) + 1
		planes := []int{4, 17, 32, 60}[rng.Intn(4)]
		for name, coeffs := range adversarial(rng, n) {
			for _, mode := range []Mode{Negabinary, SignMagnitude} {
				ref, err := EncodeLevelModeWorkers(coeffs, planes, mode, 1)
				if err != nil {
					t.Fatalf("%s n=%d planes=%d: %v", name, n, planes, err)
				}
				for _, workers := range []int{2, 8} {
					got, err := EncodeLevelModeWorkers(coeffs, planes, mode, workers)
					if err != nil {
						t.Fatalf("%s workers=%d: %v", name, workers, err)
					}
					if !encodingsEqual(ref, got) {
						t.Fatalf("%s n=%d planes=%d mode=%d workers=%d: encoding differs from sequential",
							name, n, planes, mode, workers)
					}
				}
			}
		}
	}
}

// TestDecodeWorkersBitIdentical asserts parallel partial decode matches the
// sequential decode bit for bit at every prefix length.
func TestDecodeWorkersBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	n := 513
	for name, coeffs := range adversarial(rng, n) {
		enc, err := EncodeLevelWorkers(coeffs, 32, 4)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, b := range []int{0, 1, 7, 16, 32} {
			want := enc.DecodePartialWorkers(b, nil, 1)
			for _, workers := range []int{2, 8} {
				got := enc.DecodePartialWorkers(b, nil, workers)
				for i := range want {
					if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
						t.Fatalf("%s b=%d workers=%d: coeff %d differs (%g vs %g)",
							name, b, workers, i, want[i], got[i])
					}
				}
			}
		}
	}
}

// TestRoundTripErrorBoundedAdversarial checks that for every input family
// the full decode honors the residual error matrix entry on finite
// coefficients, decoded values are always finite, and the error matrix
// itself never contains NaN or Inf.
func TestRoundTripErrorBoundedAdversarial(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	for trial := 0; trial < 6; trial++ {
		n := rng.Intn(300) + 1
		for name, coeffs := range adversarial(rng, n) {
			for _, workers := range []int{1, 2, 8} {
				enc, err := EncodeLevelWorkers(coeffs, 32, workers)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				for b, e := range enc.ErrMatrix {
					if math.IsNaN(e) || math.IsInf(e, 0) {
						t.Fatalf("%s workers=%d: ErrMatrix[%d] = %g", name, workers, b, e)
					}
				}
				dec := enc.DecodePartialWorkers(enc.Planes, nil, workers)
				bound := enc.ErrMatrix[enc.Planes]
				for i, v := range dec {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						t.Fatalf("%s workers=%d: decoded coeff %d = %g", name, workers, i, v)
					}
					c := coeffs[i]
					if math.IsNaN(c) || math.IsInf(c, 0) {
						continue // excluded from the error matrix by contract
					}
					if e := math.Abs(c - v); e > bound {
						t.Fatalf("%s workers=%d: coeff %d error %g exceeds residual bound %g",
							name, workers, i, e, bound)
					}
				}
			}
		}
	}
}

// TestDenormalLevelSentinel pins the denormal-underflow contract: the level
// encodes as the zero sentinel and every error-matrix entry records the
// residual magnitude.
func TestDenormalLevelSentinel(t *testing.T) {
	coeffs := []float64{5e-324, -1.5e-323, 4.9e-322, 0}
	enc, err := EncodeLevelWorkers(coeffs, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	if enc.Exponent != math.MinInt16 {
		t.Fatalf("Exponent = %d, want zero sentinel", enc.Exponent)
	}
	for b, e := range enc.ErrMatrix {
		if e != 4.9e-322 {
			t.Fatalf("ErrMatrix[%d] = %g, want residual magnitude 4.9e-322", b, e)
		}
	}
	for i, v := range enc.Decode(nil) {
		if v != 0 {
			t.Fatalf("decoded coeff %d = %g, want 0", i, v)
		}
	}
}

// TestHugeMagnitudeStaysFinite guards the exponent cap: magnitudes near
// MaxFloat64 must not produce Inf in the dequantized values or the error
// matrix.
func TestHugeMagnitudeStaysFinite(t *testing.T) {
	coeffs := []float64{math.MaxFloat64, -math.MaxFloat64 / 2, 1e300, -3}
	enc, err := EncodeLevelWorkers(coeffs, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	for b, e := range enc.ErrMatrix {
		if math.IsInf(e, 0) || math.IsNaN(e) {
			t.Fatalf("ErrMatrix[%d] = %g", b, e)
		}
	}
	for i, v := range enc.Decode(nil) {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("decoded coeff %d = %g", i, v)
		}
	}
}
