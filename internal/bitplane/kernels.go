package bitplane

import (
	"encoding/binary"
	"math"

	"pmgard/internal/bufpool"
)

// This file holds the word-parallel kernels behind EncodeLevel and
// DecodePartial. The scalar encoder tested one bit per coefficient per
// plane; these kernels instead move 64 coefficients per step through a
// 64×64 bit-matrix transpose, so slicing (and un-slicing) all B planes of
// a 64-coefficient group costs one transpose (~6·64 word operations)
// instead of 64·B dependent bit tests. The error matrix is a single
// incremental pass: each word's decoded value is refined plane by plane
// with one signed digit add, instead of re-decoding every word from
// scratch for every prefix length.
//
// Every kernel is bit-exact with the scalar definition (the retained
// reference in scalar_ref_test.go): the transpose is a pure bit
// permutation, and the incremental error pass accumulates the same int64
// prefix value decodeWord computes from a masked word, so the float
// operations — float64(dec)*unit, the subtraction, Abs, max — see
// identical operands in both implementations.

// transpose64 transposes the 64×64 bit matrix held in a, in place, under
// the convention out[r] bit p = in[63-p] bit (63-r) — the classic
// Hacker's-Delight block-swap network (6 rounds of masked exchanges). The
// operation is an involution, so the same call both slices words into
// plane lanes and reassembles lanes into words; the callers below absorb
// the index reversals.
func transpose64(a *[64]uint64) {
	// Rounds are unrolled with constant shifts and masks so every exchange
	// compiles to straight-line register arithmetic (the variable-shift
	// generic loop defeats bounds-check elimination and keeps the masks in
	// memory).
	const (
		m32 = 0x00000000FFFFFFFF
		m16 = 0x0000FFFF0000FFFF
		m8  = 0x00FF00FF00FF00FF
		m4  = 0x0F0F0F0F0F0F0F0F
		m2  = 0x3333333333333333
		m1  = 0x5555555555555555
	)
	for k := 0; k < 32; k++ {
		t := (a[k] ^ (a[k+32] >> 32)) & m32
		a[k] ^= t
		a[k+32] ^= t << 32
	}
	for b := 0; b < 64; b += 32 {
		for k := b; k < b+16; k++ {
			t := (a[k] ^ (a[k+16] >> 16)) & m16
			a[k] ^= t
			a[k+16] ^= t << 16
		}
	}
	for b := 0; b < 64; b += 16 {
		for k := b; k < b+8; k++ {
			t := (a[k] ^ (a[k+8] >> 8)) & m8
			a[k] ^= t
			a[k+8] ^= t << 8
		}
	}
	for b := 0; b < 64; b += 8 {
		for k := b; k < b+4; k++ {
			t := (a[k] ^ (a[k+4] >> 4)) & m4
			a[k] ^= t
			a[k+4] ^= t << 4
		}
	}
	for b := 0; b < 64; b += 4 {
		for k := b; k < b+2; k++ {
			t := (a[k] ^ (a[k+2] >> 2)) & m2
			a[k] ^= t
			a[k+2] ^= t << 2
		}
	}
	for k := 0; k < 64; k += 2 {
		t := (a[k] ^ (a[k+1] >> 1)) & m1
		a[k] ^= t
		a[k+1] ^= t << 1
	}
}

// quantizeRange fills words[lo:hi] with the plane-word encoding of
// coeffs[lo:hi]: NaN quantizes to zero, ±Inf saturates to ±limit, finite
// values round to the nearest quantization unit and clamp to ±limit.
func quantizeRange(coeffs []float64, words []uint64, unit float64, limit int64, planes int, mode Mode, lo, hi int) {
	for i := lo; i < hi; i++ {
		c := coeffs[i]
		var q int64
		switch {
		case math.IsNaN(c):
			q = 0
		case math.IsInf(c, 1):
			q = limit
		case math.IsInf(c, -1):
			q = -limit
		default:
			q = int64(math.Round(c / unit))
			if q > limit {
				q = limit
			} else if q < -limit {
				q = -limit
			}
		}
		words[i] = encodeWord(q, planes, mode)
	}
}

// sliceGroups slices words into the bit-planes for coefficient groups
// [g0, g1): group g covers coefficients [64g, 64g+64) and plane bytes
// [8g, 8g+8). Each group loads its words into a 64×64 bit matrix (input
// rows reversed to match transpose64's convention), transposes once, and
// stores plane k's 64-bit lane with one little-endian write — which is
// exactly the "8 coefficients per byte, LSB-first" plane layout. Every
// plane byte of the group is overwritten, so destination planes may hold
// garbage (pooled buffers) on entry.
func sliceGroups(words []uint64, bits [][]byte, planes, planeBytes, g0, g1 int) {
	n := len(words)
	var m [64]uint64
	for g := g0; g < g1; g++ {
		base := g * 64
		cnt := n - base
		if cnt > 64 {
			cnt = 64
		}
		// in[63-j] = words[base+j]; rows beyond the tail stay zero.
		for j := 0; j < 64-cnt; j++ {
			m[j] = 0
		}
		for j := 0; j < cnt; j++ {
			m[63-j] = words[base+j]
		}
		transpose64(&m)
		// Plane k reads bit position P = planes-1-k of every word, which
		// the transpose leaves in row 63-P = 64-planes+k.
		byteBase := g * 8
		nb := planeBytes - byteBase
		if nb >= 8 {
			for k := 0; k < planes; k++ {
				binary.LittleEndian.PutUint64(bits[k][byteBase:byteBase+8], m[64-planes+k])
			}
		} else {
			for k := 0; k < planes; k++ {
				lane := m[64-planes+k]
				for b := 0; b < nb; b++ {
					bits[k][byteBase+b] = byte(lane >> (8 * b))
				}
			}
		}
	}
}

// gatherGroups reassembles coefficients [64g0, 64g1) from the first b
// planes into dst: the inverse of sliceGroups. Each group loads the b
// plane lanes into the rows transpose64 maps them from, transposes back
// (the network is an involution), and dequantizes the recovered words.
func gatherGroups(bits [][]byte, dst []float64, b, planes int, mode Mode, unit float64, g0, g1 int) {
	n := len(dst)
	planeBytes := (n + 7) / 8
	// The matrix is NOT re-zeroed between groups: stale rows from the
	// previous transpose only land in word bit positions outside the b-plane
	// prefix (row 63-p feeds exactly bit p of every word, and only rows
	// 64-planes+k, k < b — the ones reloaded each group — feed prefix bits),
	// so masking each recovered word with the prefix mask removes every
	// stale bit. This is also exactly the word the scalar path assembles
	// from b planes.
	var m [64]uint64
	prefixMask := (uint64(1)<<uint(b) - 1) << uint(planes-b)
	for g := g0; g < g1; g++ {
		byteBase := g * 8
		nb := planeBytes - byteBase
		if nb >= 8 {
			for k := 0; k < b; k++ {
				m[64-planes+k] = binary.LittleEndian.Uint64(bits[k][byteBase : byteBase+8])
			}
		} else {
			for k := 0; k < b; k++ {
				var lane uint64
				for j := 0; j < nb; j++ {
					lane |= uint64(bits[k][byteBase+j]) << (8 * j)
				}
				m[64-planes+k] = lane
			}
		}
		transpose64(&m)
		base := g * 64
		cnt := n - base
		if cnt > 64 {
			cnt = 64
		}
		// words[base+j] = m[63-j]; split by mode so the word decode inlines.
		if mode == Negabinary {
			for j := 0; j < cnt; j++ {
				dst[base+j] = float64(DecodeNegabinary(m[63-j]&prefixMask)) * unit
			}
		} else {
			for j := 0; j < cnt; j++ {
				dst[base+j] = float64(decodeWord(m[63-j]&prefixMask, planes, mode)) * unit
			}
		}
	}
}

// transpose8x8 transposes the 8×8 bit matrix packed into x (byte r = row
// r, LSB-first), with out byte j bit i = in byte i bit j — three rounds of
// masked block swaps.
func transpose8x8(x uint64) uint64 {
	t := (x ^ (x >> 7)) & 0x00AA00AA00AA00AA
	x = x ^ t ^ (t << 7)
	t = (x ^ (x >> 14)) & 0x0000CCCC0000CCCC
	x = x ^ t ^ (t << 14)
	t = (x ^ (x >> 28)) & 0x00000000F0F0F0F0
	return x ^ t ^ (t << 28)
}

// gatherGroupsSmall is gatherGroups for shallow prefixes (b ≤ 8): the full
// 64×64 transpose touches all 64 rows no matter how few planes are live, so
// a prefix this thin moves through 8×8 tiles instead — one packed-word
// transpose per 8 coefficients — and a 256-entry table maps each
// coefficient's prefix byte straight to its decoded integer (the exact
// decodeWord value, so the float multiply sees identical operands).
func gatherGroupsSmall(bits [][]byte, dst []float64, b, planes int, mode Mode, unit float64, g0, g1 int) {
	var lut [256]int64
	for v := 1; v < 256; v++ {
		var w uint64
		for k := 0; k < b; k++ {
			if v>>uint(k)&1 == 1 {
				w |= 1 << uint(planes-1-k)
			}
		}
		lut[v] = decodeWord(w, planes, mode)
	}
	n := len(dst)
	planeBytes := (n + 7) / 8
	for g := g0; g < g1; g++ {
		hiByte := (g + 1) * 8
		if hiByte > planeBytes {
			hiByte = planeBytes
		}
		for byteIx := g * 8; byteIx < hiByte; byteIx++ {
			// Tile row k = plane k's byte; rows b..7 stay zero.
			var x uint64
			for k := 0; k < b; k++ {
				x |= uint64(bits[k][byteIx]) << uint(8*k)
			}
			x = transpose8x8(x)
			base := byteIx * 8
			cnt := n - base
			if cnt > 8 {
				cnt = 8
			}
			for j := 0; j < cnt; j++ {
				dst[base+j] = float64(lut[byte(x>>uint(8*j))]) * unit
			}
		}
	}
}

// errMatrixRange folds coefficients [lo, hi) into out, where out[b] is the
// running maximum of |c_i - decode_b(c_i)| over the range (out must hold
// planes+1 entries and start at the caller's running maxima — zero for a
// fresh range). For each word the decoded prefix value is refined
// incrementally: nega-binary is positional with digit weights (-2)^p, and
// sign-magnitude accumulates magnitude bits under a sign read from plane
// 0, so extending the prefix by one plane is one conditional signed add —
// the same int64 decodeWord computes from the masked word, making the
// float comparison operands identical to the scalar pass. Non-finite
// coefficients are excluded, as no finite plane prefix bounds their error.
func errMatrixRange(coeffs []float64, words []uint64, unit float64, planes int, mode Mode, lo, hi int, out []float64) {
	// digit[p] is the value contributed by a set bit at position p. acc
	// holds the running maxima in a fixed-size stack array so the inner
	// loops index it bounds-check-free and out is only touched once at the
	// end (planes ≤ 60, so b ≤ 60 < 61).
	var digit [60]int64
	var acc [61]float64
	for p := 0; p < planes; p++ {
		v := int64(1) << uint(p)
		if mode == Negabinary && p&1 == 1 {
			v = -v
		}
		digit[p] = v
	}
	cs, ws := coeffs[lo:hi], words[lo:hi:hi]
	for _, c := range cs {
		if a := math.Abs(c); a > acc[0] && !math.IsInf(c, 0) {
			acc[0] = a
		}
	}
	if mode == Negabinary {
		// Plane-major: one streaming pass per prefix length, refining each
		// word's decoded prefix value in decs with a branchless signed-digit
		// add (two's-complement arithmetic in uint64 wraps identically, and
		// -(bit)&d selects the digit without a multiply). Iterations are
		// independent, so the max folds in a register at full ILP.
		//
		// Non-finite coefficients are excluded by sanitizing once up front —
		// a zeroed (word, coefficient) pair contributes e = |0 - 0·unit| = 0
		// to every prefix, which can never raise a maximum — so the hot loop
		// carries no NaN/Inf tests.
		n := len(ws)
		decs := bufpool.Uint64s(n)
		clear(decs)
		decs = decs[:n]
		wsc := bufpool.Uint64s(n)[:n]
		csc := bufpool.Float64s(n)[:n]
		for j, c := range cs {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				wsc[j], csc[j] = 0, 0
			} else {
				wsc[j], csc[j] = ws[j], c
			}
		}
		// e can only overflow to Inf when |c| + the largest possible decoded
		// magnitude reaches the float range (an Exponent near 1023); decided
		// once here so the common case skips the per-element Inf saturation
		// test. The saturating path computes e from identical operands, so
		// the two variants are bit-identical wherever both are finite.
		safe := acc[0]+float64(uint64(1)<<uint(planes))*unit < math.MaxFloat64
		for b := 1; b <= planes; b++ {
			p := uint(planes - b)
			d := uint64(digit[p])
			maxErr := acc[b]
			if safe {
				for j, w := range wsc {
					dv := decs[j] + (-(w >> p & 1) & d)
					decs[j] = dv
					e := math.Abs(csc[j] - float64(int64(dv))*unit)
					if e > maxErr {
						maxErr = e
					}
				}
			} else {
				for j, w := range wsc {
					dv := decs[j] + (-(w >> p & 1) & d)
					decs[j] = dv
					e := math.Abs(csc[j] - float64(int64(dv))*unit)
					if math.IsInf(e, 0) {
						// A short nega-binary prefix of a near-MaxFloat64
						// level can dequantize past the float range;
						// saturate the bound.
						e = math.MaxFloat64
					}
					if e > maxErr {
						maxErr = e
					}
				}
			}
			acc[b] = maxErr
		}
		bufpool.PutFloat64s(csc)
		bufpool.PutUint64s(wsc)
		bufpool.PutUint64s(decs)
	} else {
		signBit := uint(planes - 1)
		for j, w := range ws {
			c := cs[j]
			if math.IsNaN(c) || math.IsInf(c, 0) {
				continue
			}
			var dec, mag int64
			neg := false
			for b := 1; b <= planes; b++ {
				p := uint(planes - b)
				if p == signBit {
					neg = w>>p&1 == 1
				} else {
					mag += int64(w>>p&1) * digit[p]
				}
				if neg {
					dec = -mag
				} else {
					dec = mag
				}
				e := math.Abs(c - float64(dec)*unit)
				if math.IsInf(e, 0) {
					e = math.MaxFloat64
				}
				if e > acc[b] {
					acc[b] = e
				}
			}
		}
	}
	for b := 0; b <= planes; b++ {
		if acc[b] > out[b] {
			out[b] = acc[b]
		}
	}
}
