package bitplane

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNegabinaryRoundTripSmall(t *testing.T) {
	for v := int64(-1000); v <= 1000; v++ {
		if got := DecodeNegabinary(EncodeNegabinary(v)); got != v {
			t.Fatalf("round trip %d -> %d", v, got)
		}
	}
}

func TestNegabinaryKnownValues(t *testing.T) {
	// Nega-binary digit expansions: 2 = 110, -1 = 11, -2 = 10, 3 = 111.
	cases := map[int64]uint64{0: 0, 1: 1, 2: 6, 3: 7, -1: 3, -2: 2, 4: 4, -3: 13}
	for v, nb := range cases {
		if got := EncodeNegabinary(v); got != nb {
			t.Errorf("EncodeNegabinary(%d) = %b, want %b", v, got, nb)
		}
	}
}

func TestNegabinaryRoundTripQuick(t *testing.T) {
	f := func(v int32) bool {
		return DecodeNegabinary(EncodeNegabinary(int64(v))) == int64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeLevelValidation(t *testing.T) {
	if _, err := EncodeLevel([]float64{1}, 0); err == nil {
		t.Error("planes=0 accepted")
	}
	if _, err := EncodeLevel([]float64{1}, 61); err == nil {
		t.Error("planes=61 accepted")
	}
}

func TestAllZeroLevel(t *testing.T) {
	enc, err := EncodeLevel(make([]float64, 100), 32)
	if err != nil {
		t.Fatal(err)
	}
	for b, e := range enc.ErrMatrix {
		if e != 0 {
			t.Fatalf("ErrMatrix[%d] = %g, want 0 for zero level", b, e)
		}
	}
	out := enc.DecodePartial(16, nil)
	for i, v := range out {
		if v != 0 {
			t.Fatalf("decoded[%d] = %g, want 0", i, v)
		}
	}
}

func TestEmptyLevel(t *testing.T) {
	enc, err := EncodeLevel(nil, 32)
	if err != nil {
		t.Fatal(err)
	}
	if got := enc.Decode(nil); len(got) != 0 {
		t.Fatalf("decoded %d values from empty level", len(got))
	}
	if enc.PlaneSizeRaw() != 0 {
		t.Fatalf("PlaneSizeRaw = %d, want 0", enc.PlaneSizeRaw())
	}
}

func TestFullDecodeAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	coeffs := make([]float64, 500)
	for i := range coeffs {
		coeffs[i] = rng.NormFloat64() * 1e3
	}
	enc, err := EncodeLevel(coeffs, 32)
	if err != nil {
		t.Fatal(err)
	}
	dec := enc.Decode(nil)
	// Residual error bounded by half a quantization unit.
	unit := math.Ldexp(1, enc.Exponent-30)
	for i := range coeffs {
		if e := math.Abs(coeffs[i] - dec[i]); e > unit {
			t.Fatalf("coeff %d: error %g exceeds unit %g", i, e, unit)
		}
	}
	if enc.ErrMatrix[32] > unit {
		t.Fatalf("ErrMatrix[32] = %g exceeds unit %g", enc.ErrMatrix[32], unit)
	}
}

func TestErrMatrixMatchesDecodePartial(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	coeffs := make([]float64, 300)
	for i := range coeffs {
		coeffs[i] = rng.NormFloat64()
	}
	enc, err := EncodeLevel(coeffs, 24)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b <= 24; b++ {
		dec := enc.DecodePartial(b, nil)
		maxErr := 0.0
		for i := range coeffs {
			if e := math.Abs(coeffs[i] - dec[i]); e > maxErr {
				maxErr = e
			}
		}
		if math.Abs(maxErr-enc.ErrMatrix[b]) > 1e-15 {
			t.Fatalf("b=%d: measured error %g != ErrMatrix %g", b, maxErr, enc.ErrMatrix[b])
		}
	}
}

func TestErrMatrixZeroPlanesIsMaxAbs(t *testing.T) {
	coeffs := []float64{1, -7.5, 3, 0.25}
	enc, err := EncodeLevel(coeffs, 32)
	if err != nil {
		t.Fatal(err)
	}
	if enc.ErrMatrix[0] != 7.5 {
		t.Fatalf("ErrMatrix[0] = %g, want 7.5", enc.ErrMatrix[0])
	}
}

func TestErrMatrixBroadlyDecreasing(t *testing.T) {
	// Truncation error must shrink substantially as planes accumulate;
	// nega-binary prefixes are not strictly monotone plane-by-plane, but
	// every two additional planes can only tighten the bound.
	rng := rand.New(rand.NewSource(3))
	coeffs := make([]float64, 1000)
	for i := range coeffs {
		coeffs[i] = rng.NormFloat64() * math.Pow(10, rng.Float64()*6-3)
	}
	enc, err := EncodeLevel(coeffs, 32)
	if err != nil {
		t.Fatal(err)
	}
	for b := 2; b <= 32; b++ {
		if enc.ErrMatrix[b] > enc.ErrMatrix[b-2]+1e-15 {
			t.Fatalf("ErrMatrix[%d]=%g > ErrMatrix[%d]=%g", b, enc.ErrMatrix[b], b-2, enc.ErrMatrix[b-2])
		}
	}
	if enc.ErrMatrix[32] >= enc.ErrMatrix[0]/1e6 {
		t.Fatalf("full decode error %g did not shrink vs %g", enc.ErrMatrix[32], enc.ErrMatrix[0])
	}
}

func TestDecodePartialPanics(t *testing.T) {
	enc, _ := EncodeLevel([]float64{1, 2}, 8)
	for _, b := range []int{-1, 9} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("DecodePartial(%d) did not panic", b)
				}
			}()
			enc.DecodePartial(b, nil)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("DecodePartial with bad dst did not panic")
			}
		}()
		enc.DecodePartial(4, make([]float64, 5))
	}()
}

func TestExponentCoversMaxAbs(t *testing.T) {
	for _, m := range []float64{0.001, 0.5, 1, 1.5, 1023, 1e9, 1e-9} {
		enc, err := EncodeLevel([]float64{m, -m / 2}, 32)
		if err != nil {
			t.Fatal(err)
		}
		if math.Ldexp(1, enc.Exponent) < m {
			t.Errorf("maxAbs %g: exponent %d gives bound %g", m, enc.Exponent, math.Ldexp(1, enc.Exponent))
		}
	}
}

func TestPlaneSizeRaw(t *testing.T) {
	enc, _ := EncodeLevel(make([]float64, 17), 8)
	if enc.PlaneSizeRaw() != 3 {
		t.Fatalf("PlaneSizeRaw = %d, want 3", enc.PlaneSizeRaw())
	}
}

func TestProgressiveRefinementProperty(t *testing.T) {
	// Property: for random levels, the error with all planes is within the
	// quantization unit and prefix errors never exceed max|c| by more than
	// one quantization step's worth of overshoot.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(400)
		planes := 8 + rng.Intn(40)
		coeffs := make([]float64, n)
		scale := math.Pow(10, rng.Float64()*12-6)
		for i := range coeffs {
			coeffs[i] = rng.NormFloat64() * scale
		}
		enc, err := EncodeLevel(coeffs, planes)
		if err != nil {
			t.Fatal(err)
		}
		maxAbs := 0.0
		for _, c := range coeffs {
			if a := math.Abs(c); a > maxAbs {
				maxAbs = a
			}
		}
		// Nega-binary partial sums can overshoot the target magnitude by a
		// bounded factor; 2x max|c| is a safe sanity envelope.
		for b := 0; b <= planes; b++ {
			if enc.ErrMatrix[b] > 2*maxAbs+1e-12 {
				t.Fatalf("trial %d: ErrMatrix[%d]=%g exceeds envelope %g", trial, b, enc.ErrMatrix[b], 2*maxAbs)
			}
		}
	}
}

func TestBitsDeterministic(t *testing.T) {
	coeffs := []float64{3.14, -2.71, 0.577, -1.618}
	a, _ := EncodeLevel(coeffs, 16)
	b, _ := EncodeLevel(coeffs, 16)
	for k := range a.Bits {
		for i := range a.Bits[k] {
			if a.Bits[k][i] != b.Bits[k][i] {
				t.Fatal("encoding not deterministic")
			}
		}
	}
}

func TestSignMagnitudeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	coeffs := make([]float64, 400)
	for i := range coeffs {
		coeffs[i] = rng.NormFloat64() * 100
	}
	enc, err := EncodeLevelMode(coeffs, 32, SignMagnitude)
	if err != nil {
		t.Fatal(err)
	}
	dec := enc.Decode(nil)
	unit := math.Ldexp(1, enc.Exponent-30)
	for i := range coeffs {
		if e := math.Abs(coeffs[i] - dec[i]); e > unit {
			t.Fatalf("coeff %d: error %g exceeds unit %g", i, e, unit)
		}
	}
}

func TestSignMagnitudeMonotoneErrMatrix(t *testing.T) {
	// Unlike nega-binary, sign-magnitude prefixes never overshoot: the
	// error matrix is monotone non-increasing plane by plane (after the
	// sign plane).
	rng := rand.New(rand.NewSource(6))
	coeffs := make([]float64, 500)
	for i := range coeffs {
		coeffs[i] = rng.NormFloat64()
	}
	enc, err := EncodeLevelMode(coeffs, 24, SignMagnitude)
	if err != nil {
		t.Fatal(err)
	}
	for b := 1; b <= 24; b++ {
		if enc.ErrMatrix[b] > enc.ErrMatrix[b-1]+1e-15 {
			t.Fatalf("ErrMatrix[%d]=%g > ErrMatrix[%d]=%g",
				b, enc.ErrMatrix[b], b-1, enc.ErrMatrix[b-1])
		}
	}
}

func TestEncodeLevelModeValidation(t *testing.T) {
	if _, err := EncodeLevelMode([]float64{1}, 16, Mode(9)); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestModesAgreeAtFullPrecision(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	coeffs := make([]float64, 200)
	for i := range coeffs {
		coeffs[i] = rng.NormFloat64() * 3
	}
	nb, err := EncodeLevelMode(coeffs, 32, Negabinary)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := EncodeLevelMode(coeffs, 32, SignMagnitude)
	if err != nil {
		t.Fatal(err)
	}
	dn, ds := nb.Decode(nil), sm.Decode(nil)
	unit := math.Ldexp(1, nb.Exponent-30)
	for i := range coeffs {
		if math.Abs(dn[i]-ds[i]) > 2*unit {
			t.Fatalf("modes disagree at %d: %g vs %g", i, dn[i], ds[i])
		}
	}
}
