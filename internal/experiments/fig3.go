package experiments

import (
	"fmt"

	"pmgard/internal/core"
	"pmgard/internal/grid"
	"pmgard/internal/sim/warpx"
)

// planesForBound compresses a field and returns the per-level plane counts
// the theory-controlled greedy retriever picks for one relative bound,
// along with the executed plan's byte cost.
func planesForBound(p Params, field *grid.Tensor, name string, t int, rel float64) ([]int, int64, error) {
	c, err := core.Compress(field, p.Compress, name, t)
	if err != nil {
		return nil, 0, err
	}
	h := &c.Header
	tol := h.AbsTolerance(rel)
	if tol <= 0 {
		return make([]int, len(h.Levels)), 0, nil
	}
	_, plan, err := core.RetrieveTolerance(h, c, h.TheoryEstimator(), tol)
	if err != nil {
		return nil, 0, err
	}
	return plan.Planes, plan.Bytes, nil
}

func sumPlanes(planes []int) int {
	s := 0
	for _, b := range planes {
		s += b
	}
	return s
}

// Fig3 reproduces Fig. 3: the total number of bit-planes retrieved as a
// function of (a) simulation timestep, (b) relative error bound, (c) laser
// duration and (d) electron density — the non-linear, high-dimensional
// behaviour that motivates a DNN predictor (Motivation 2).
func Fig3(p Params) ([]*Table, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	base := warpx.DefaultConfig(p.WarpXDims...)
	const refBound = 1e-5

	// (a) versus timestep at a fixed bound, for the three WarpX fields.
	ta := &Table{
		ID:      "fig3a",
		Title:   "Number of bit-planes vs timestep (WarpX, rel bound 1e-5)",
		Columns: []string{"timestep", "Bx_planes", "Ex_planes", "Jx_planes"},
	}
	stride := p.Steps / 8
	if stride == 0 {
		stride = 1
	}
	for t := 0; t < p.Steps; t += stride {
		row := []any{t}
		for _, name := range []string{"Bx", "Ex", "Jx"} {
			field, err := warpxField(base, name, t)
			if err != nil {
				return nil, err
			}
			planes, _, err := planesForBound(p, field, name, t, refBound)
			if err != nil {
				return nil, err
			}
			row = append(row, sumPlanes(planes))
		}
		ta.AddRow(row...)
	}

	// (b) versus relative error bound at a fixed timestep.
	t := midTimestep(p)
	tb := &Table{
		ID:      "fig3b",
		Title:   fmt.Sprintf("Number of bit-planes vs relative error bound (WarpX, t=%d)", t),
		Columns: []string{"rel_bound", "Bx_planes", "Ex_planes", "Jx_planes"},
	}
	for _, rel := range thinBounds(p.Bounds, 9) {
		row := []any{rel}
		for _, name := range []string{"Bx", "Ex", "Jx"} {
			field, err := warpxField(base, name, t)
			if err != nil {
				return nil, err
			}
			planes, _, err := planesForBound(p, field, name, t, rel)
			if err != nil {
				return nil, err
			}
			row = append(row, sumPlanes(planes))
		}
		tb.AddRow(row...)
	}

	// (c) versus laser duration (simulation input parameter).
	tc := &Table{
		ID:      "fig3c",
		Title:   fmt.Sprintf("Number of bit-planes vs laser duration (WarpX Ex, t=%d, rel bound 1e-5)", t),
		Columns: []string{"duration", "Ex_planes", "bytes"},
	}
	for _, dur := range []float64{0.03, 0.05, 0.08, 0.12, 0.18, 0.25} {
		cfg := base
		cfg.Duration = dur
		field, err := warpxField(cfg, "Ex", t)
		if err != nil {
			return nil, err
		}
		planes, bytes, err := planesForBound(p, field, "Ex", t, refBound)
		if err != nil {
			return nil, err
		}
		tc.AddRow(dur, sumPlanes(planes), bytes)
	}

	// (d) versus electron density (simulation input parameter).
	td := &Table{
		ID:      "fig3d",
		Title:   fmt.Sprintf("Number of bit-planes vs electron density (WarpX Jx, t=%d, rel bound 1e-5)", t),
		Columns: []string{"density", "Jx_planes", "bytes"},
	}
	for _, ne := range []float64{0.25, 0.5, 1, 2, 4} {
		cfg := base
		cfg.Density = ne
		field, err := warpxField(cfg, "Jx", t)
		if err != nil {
			return nil, err
		}
		planes, bytes, err := planesForBound(p, field, "Jx", t, refBound)
		if err != nil {
			return nil, err
		}
		td.AddRow(ne, sumPlanes(planes), bytes)
	}
	return []*Table{ta, tb, tc, td}, nil
}
