package experiments

import (
	"fmt"
	"sync"

	"pmgard/internal/core"
	"pmgard/internal/dmgard"
	"pmgard/internal/emgard"
	"pmgard/internal/grid"
	"pmgard/internal/sim/grayscott"
	"pmgard/internal/sim/warpx"
)

// Params scales the experiments. The paper runs 512³ grids over 512
// timesteps on Summit; the defaults here reproduce every figure's shape at
// laptop scale, and every knob can be raised from cmd/bench flags.
type Params struct {
	// WarpXDims are the synthetic WarpX grid dimensions.
	WarpXDims []int
	// GrayScottN is the Gray-Scott grid extent per axis.
	GrayScottN int
	// Steps is the number of output timesteps per field.
	Steps int
	// Bounds is the relative error-bound sweep.
	Bounds []float64
	// Compress configures the compression pipeline.
	Compress core.Config
	// DTrain and ETrain configure model training.
	DTrain dmgard.Config
	ETrain emgard.Config
	// Seed drives all experiment-level randomness.
	Seed int64
}

// Default returns the laptop-scale parameter set used by cmd/bench and the
// recorded EXPERIMENTS.md results.
func Default() Params {
	return Params{
		WarpXDims:  []int{17, 17, 17},
		GrayScottN: 17,
		Steps:      32,
		Bounds:     dmgard.DefaultRelBounds(),
		Compress:   core.DefaultConfig(),
		DTrain:     dmgard.DefaultConfig(),
		ETrain:     emgard.DefaultConfig(),
		Seed:       1,
	}
}

// Quick returns a minimal parameter set for unit tests of the harness
// itself.
func Quick() Params {
	p := Default()
	p.WarpXDims = []int{9, 9, 9}
	// 17 is the smallest box in which the default Gray-Scott regime
	// self-sustains; smaller boxes decay to constant fields.
	p.GrayScottN = 17
	p.Steps = 6
	p.Bounds = []float64{1e-7, 1e-5, 1e-3, 1e-2, 1e-1}
	p.DTrain = dmgard.Config{Hidden: []int{12, 12}, LeakyAlpha: 0.01, Epochs: 20, BatchSize: 16, LR: 3e-3, Seed: 1}
	p.ETrain = emgard.Config{Hidden: []int{12, 8}, Epochs: 20, BatchSize: 16, LR: 3e-3, Seed: 1, Margin: 1}
	return p
}

func (p Params) validate() error {
	if len(p.WarpXDims) != 3 {
		return fmt.Errorf("experiments: WarpXDims must be 3-D, got %v", p.WarpXDims)
	}
	if p.Steps < 2 {
		return fmt.Errorf("experiments: Steps %d < 2", p.Steps)
	}
	if len(p.Bounds) == 0 {
		return fmt.Errorf("experiments: empty bound sweep")
	}
	return nil
}

// datasets caches generated fields so experiments sharing a workload do not
// regenerate it. Keyed per Params value by the dims/steps that matter.
type datasets struct {
	mu sync.Mutex
	// warpx fields keyed by name/timestep/dims/config-variant.
	warpxCache map[string]*grid.Tensor
	// grayScott runs keyed by n; each holds all steps of both fields.
	gsCache map[int]*gsRun
}

type gsRun struct {
	du []*grid.Tensor
	dv []*grid.Tensor
}

var data = &datasets{
	warpxCache: make(map[string]*grid.Tensor),
	gsCache:    make(map[int]*gsRun),
}

// warpxField returns the named synthetic WarpX field at timestep t under
// the given config, cached.
func warpxField(cfg warpx.Config, name string, t int) (*grid.Tensor, error) {
	key := fmt.Sprintf("%s/%d/%v/%g/%g/%g/%d", name, t, cfg.Dims, cfg.A0, cfg.Density, cfg.Duration, cfg.Seed)
	data.mu.Lock()
	if f, ok := data.warpxCache[key]; ok {
		data.mu.Unlock()
		return f, nil
	}
	data.mu.Unlock()
	f, err := cfg.Field(name, t)
	if err != nil {
		return nil, err
	}
	data.mu.Lock()
	data.warpxCache[key] = f
	data.mu.Unlock()
	return f, nil
}

// grayScottField returns the named Gray-Scott field at output step t for an
// n³ run, integrating (and caching) the whole trajectory on first use.
func grayScottField(n, steps int, name string, t int) (*grid.Tensor, error) {
	if t >= steps {
		return nil, fmt.Errorf("experiments: timestep %d ≥ steps %d", t, steps)
	}
	data.mu.Lock()
	run, ok := data.gsCache[n]
	if ok && len(run.du) >= steps {
		defer data.mu.Unlock()
		return pickGS(run, name, t)
	}
	data.mu.Unlock()

	sim, err := grayscott.New(grayscott.DefaultConfig(n))
	if err != nil {
		return nil, err
	}
	fresh := &gsRun{}
	for s := 0; s < steps; s++ {
		sim.Step()
		fresh.du = append(fresh.du, sim.FieldU())
		fresh.dv = append(fresh.dv, sim.FieldV())
	}
	data.mu.Lock()
	data.gsCache[n] = fresh
	data.mu.Unlock()
	return pickGS(fresh, name, t)
}

func pickGS(run *gsRun, name string, t int) (*grid.Tensor, error) {
	switch name {
	case "Du":
		return run.du[t], nil
	case "Dv":
		return run.dv[t], nil
	default:
		return nil, fmt.Errorf("experiments: unknown Gray-Scott field %q", name)
	}
}

// ResetCache drops all cached datasets (used between bench configurations).
func ResetCache() {
	data.mu.Lock()
	data.warpxCache = make(map[string]*grid.Tensor)
	data.gsCache = make(map[int]*gsRun)
	data.mu.Unlock()
}
