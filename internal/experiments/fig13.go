package experiments

import (
	"fmt"

	"pmgard/internal/core"
	"pmgard/internal/dmgard"
	"pmgard/internal/emgard"
	"pmgard/internal/features"
	"pmgard/internal/grid"
	"pmgard/internal/sim/warpx"
)

// trainBothModels harvests the first half of J_x's timesteps and trains
// both prediction models on the same sweep, as the paper's evaluation does.
func trainBothModels(p Params) (*dmgard.Model, *emgard.Model, error) {
	half := p.Steps / 2
	cfg := warpx.DefaultConfig(p.WarpXDims...)
	var drecs []dmgard.Record
	var esamps []emgard.Sample
	for t := 0; t < half; t++ {
		field, err := warpxField(cfg, "Jx", t)
		if err != nil {
			return nil, nil, err
		}
		dr, _, err := dmgard.Harvest(field, "Jx", t, p.Compress, p.Bounds)
		if err != nil {
			return nil, nil, err
		}
		drecs = append(drecs, dr...)
		es, _, err := emgard.Harvest(field, "Jx", t, p.Compress, p.Bounds)
		if err != nil {
			return nil, nil, err
		}
		esamps = append(esamps, es...)
	}
	dm, err := dmgard.Train(drecs, p.Compress.Planes, p.DTrain)
	if err != nil {
		return nil, nil, err
	}
	em, err := emgard.Train(esamps, p.ETrain)
	if err != nil {
		return nil, nil, err
	}
	return dm, em, nil
}

// Fig12 reproduces Fig. 12: the achieved maximum absolute error of E-MGARD
// versus the original MGARD and the requested bound, indexed by the PSNR
// of the original-MGARD reconstruction. E-MGARD's achieved error should
// hug the requested bound while theory control sits far below it.
func Fig12(p Params) ([]*Table, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	_, em, err := trainBothModels(p)
	if err != nil {
		return nil, err
	}
	t := midTimestep(p)
	cfg := warpx.DefaultConfig(p.WarpXDims...)
	field, err := warpxField(cfg, "Jx", t)
	if err != nil {
		return nil, err
	}
	c, err := core.Compress(field, p.Compress, "Jx", t)
	if err != nil {
		return nil, err
	}
	h := &c.Header
	theory := h.TheoryEstimator()
	learned, err := em.Estimator(h.LevelPools)
	if err != nil {
		return nil, err
	}
	table := &Table{
		ID:    "fig12",
		Title: fmt.Sprintf("E-MGARD achieved max error vs original MGARD and requested bound (WarpX Jx, t=%d)", t),
		Note:  "PSNR computed from the original-MGARD reconstruction, as in the paper",
		Columns: []string{
			"rel_bound", "psnr_db", "requested_abs", "mgard_achieved", "emgard_achieved",
		},
	}
	for _, rel := range thinBounds(p.Bounds, 9) {
		tol := h.AbsTolerance(rel)
		if tol <= 0 {
			continue
		}
		recT, _, err := core.RetrieveTolerance(h, c, theory, tol)
		if err != nil {
			return nil, err
		}
		recE, _, err := core.RetrieveTolerance(h, c, learned, tol)
		if err != nil {
			return nil, err
		}
		table.AddRow(rel,
			grid.PSNR(field, recT),
			tol,
			grid.MaxAbsDiff(field, recT),
			grid.MaxAbsDiff(field, recE))
	}
	return []*Table{table}, nil
}

// Fig13 reproduces Fig. 13: the total retrieval size of D-MGARD and
// E-MGARD versus the original MGARD, accumulated over all timesteps, plus
// the Sav percentages of Eq. 8. The headline claim: D-MGARD saves 5–40%,
// E-MGARD 20–80%, with E-MGARD strongest at low PSNR.
func Fig13(p Params) ([]*Table, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	dm, em, err := trainBothModels(p)
	if err != nil {
		return nil, err
	}
	cfg := warpx.DefaultConfig(p.WarpXDims...)
	table := &Table{
		ID:    "fig13",
		Title: "Total retrieval size across timesteps: original vs D-MGARD vs E-MGARD (WarpX Jx)",
		Note:  fmt.Sprintf("accumulated over %d timesteps; Sav per Eq. 8; bound_viol counts timesteps where a model exceeded the requested error", p.Steps),
		Columns: []string{
			"rel_bound", "avg_psnr_db", "mgard_bytes", "dmgard_bytes", "emgard_bytes",
			"sav_d_pct", "sav_e_pct", "d_viol", "e_viol",
		},
	}
	for _, rel := range thinBounds(p.Bounds, 9) {
		var mgardBytes, dBytes, eBytes int64
		var psnrSum float64
		var psnrN int
		dViol, eViol := 0, 0
		for t := 0; t < p.Steps; t++ {
			field, err := warpxField(cfg, "Jx", t)
			if err != nil {
				return nil, err
			}
			c, err := core.Compress(field, p.Compress, "Jx", t)
			if err != nil {
				return nil, err
			}
			h := &c.Header
			tol := h.AbsTolerance(rel)
			if tol <= 0 {
				continue
			}
			recT, planT, err := core.RetrieveTolerance(h, c, h.TheoryEstimator(), tol)
			if err != nil {
				return nil, err
			}
			mgardBytes += planT.Bytes
			if ps := grid.PSNR(field, recT); !isInf(ps) {
				psnrSum += ps
				psnrN++
			}

			// D-MGARD: predict plane counts from features + the relative
			// target error.
			feat := dmgard.CombineFeatures(features.Extract(field, t), h)
			planes, err := dm.Predict(feat, rel)
			if err != nil {
				return nil, err
			}
			recD, planD, err := core.RetrievePlanes(h, c, planes)
			if err != nil {
				return nil, err
			}
			dBytes += planD.Bytes
			if grid.MaxAbsDiff(field, recD) > tol {
				dViol++
			}

			// E-MGARD: learned per-level constants in the greedy loop.
			learned, err := em.Estimator(h.LevelPools)
			if err != nil {
				return nil, err
			}
			recE, planE, err := core.RetrieveTolerance(h, c, learned, tol)
			if err != nil {
				return nil, err
			}
			eBytes += planE.Bytes
			if grid.MaxAbsDiff(field, recE) > tol {
				eViol++
			}
		}
		if mgardBytes == 0 {
			continue
		}
		avgPSNR := 0.0
		if psnrN > 0 {
			avgPSNR = psnrSum / float64(psnrN)
		}
		table.AddRow(rel, avgPSNR, mgardBytes, dBytes, eBytes,
			100*float64(mgardBytes-dBytes)/float64(mgardBytes),
			100*float64(mgardBytes-eBytes)/float64(mgardBytes),
			dViol, eViol)
	}
	return []*Table{table}, nil
}

func isInf(v float64) bool { return v > 1e308 || v < -1e308 }

// Table2 reproduces Table II: the application dataset inventory of this
// reproduction.
func Table2(p Params) ([]*Table, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "tab2",
		Title: "Application datasets (Table II)",
		Note:  "paper scale: 512³ × 512 steps on Summit; reproduction scale shown",
		Columns: []string{
			"application", "fields", "dimensions", "timesteps", "generator",
		},
	}
	t.AddRow("Gray-Scott", "Du, Dv",
		fmt.Sprintf("%d³", p.GrayScottN), p.Steps, "internal/sim/grayscott (full reaction-diffusion integrator)")
	t.AddRow("WarpX", "Bx, Ex, Jx",
		fmt.Sprintf("%v", p.WarpXDims), p.Steps, "internal/sim/warpx (synthetic laser-wakefield substitute)")
	return []*Table{t}, nil
}
