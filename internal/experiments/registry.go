package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Runner is one registered experiment.
type Runner struct {
	// ID is the experiment id used on the cmd/bench command line.
	ID string
	// Paper names the paper artifact the experiment reproduces.
	Paper string
	// Run executes the experiment and returns its tables.
	Run func(Params) ([]*Table, error)
}

// Registry returns every experiment, keyed by id.
func Registry() map[string]Runner {
	runners := []Runner{
		{ID: "fig1", Paper: "Fig. 1 — I/O cost: requested vs theory-controlled", Run: Fig1},
		{ID: "fig2", Paper: "Fig. 2 — requested vs achieved error gap", Run: Fig2},
		{ID: "fig3", Paper: "Fig. 3 — bit-planes vs timestep/bound/duration/density", Run: Fig3},
		{ID: "fig5", Paper: "Fig. 5 — plane-count correlations and level breakdown", Run: Fig5},
		{ID: "fig7", Paper: "Fig. 7 — per-level error vs planes retrieved", Run: Fig7},
		{ID: "fig9", Paper: "Fig. 9 — D-MGARD prediction error, WarpX", Run: Fig9},
		{ID: "fig10", Paper: "Fig. 10 — D-MGARD prediction error, Gray-Scott", Run: Fig10},
		{ID: "fig11", Paper: "Fig. 11 — D-MGARD across resolutions", Run: Fig11},
		{ID: "fig12", Paper: "Fig. 12 — E-MGARD achieved error vs PSNR", Run: Fig12},
		{ID: "fig13", Paper: "Fig. 13 — retrieval-size savings (Eq. 8)", Run: Fig13},
		{ID: "tab2", Paper: "Table II — application datasets", Run: Table2},
		{ID: "ablate-loss", Paper: "ablation — Huber vs MSE vs MAE (§III-C)", Run: AblateLoss},
		{ID: "ablate-chain", Paper: "ablation — CMOR chaining vs independent MLPs", Run: AblateChain},
		{ID: "ablate-update", Paper: "ablation — L2 update lifting step", Run: AblateUpdate},
		{ID: "ablate-greedy", Paper: "ablation — greedy vs level-major order", Run: AblateGreedy},
		{ID: "ablate-codec", Paper: "ablation — lossless codec choice", Run: AblateCodec},
		{ID: "ablate-pool", Paper: "ablation — E-MGARD pooled-input size", Run: AblatePool},
		{ID: "ablate-augment", Paper: "ablation — D-MGARD feature augmentation", Run: AblateAugment},
		{ID: "ablate-session", Paper: "ablation — progressive session vs one-shot", Run: AblateSession},
		{ID: "ablate-constant", Paper: "ablation — naive vs tight vs learned error constants", Run: AblateConstant},
		{ID: "ablate-encoding", Paper: "ablation — nega-binary vs sign-magnitude planes", Run: AblateEncoding},
		{ID: "ablate-levels", Paper: "ablation — hierarchy depth L", Run: AblateLevels},
		{ID: "exp-hybrid", Paper: "extension — combined D+E control (paper §IV-E future work)", Run: ExpHybrid},
		{ID: "exp-multifield", Paper: "extension — per-application (joint) D-MGARD training", Run: ExpMultiField},
		{ID: "exp-baselines", Paper: "extension — one-shot SZ/ZFP archives vs progressive (§I motivation)", Run: ExpBaselines},
		{ID: "exp-shard", Paper: "extension — shard-tier node-count scaling (router over /planes nodes)", Run: ExpShard},
	}
	m := make(map[string]Runner, len(runners))
	for _, r := range runners {
		m[r.ID] = r
	}
	return m
}

// IDs returns the registered experiment ids in stable order.
func IDs() []string {
	reg := Registry()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by id and prints its tables to w.
func Run(id string, p Params, w io.Writer) error {
	r, ok := Registry()[id]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	tables, err := r.Run(p)
	if err != nil {
		return fmt.Errorf("experiments: %s: %w", id, err)
	}
	for _, t := range tables {
		if err := t.Fprint(w); err != nil {
			return err
		}
	}
	return nil
}
