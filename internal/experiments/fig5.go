package experiments

import (
	"fmt"
	"math"

	"pmgard/internal/core"
	"pmgard/internal/sim/warpx"
)

// Fig5 reproduces Fig. 5: (a) the correlation matrix of per-level plane
// counts, (b) the number of planes retrieved from each level across error
// bounds, and (c) the per-level breakdown of retrieval size — the evidence
// behind D-MGARD's chained design and weighted level importance.
func Fig5(p Params) ([]*Table, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	cfg := warpx.DefaultConfig(p.WarpXDims...)
	levels := p.Compress.Decompose.Levels
	if levels == 0 {
		levels = 5
	}

	// Gather plane-count records over timesteps × bounds for (a), and the
	// per-bound detail at the mid timestep for (b)/(c).
	var records [][]int
	stride := p.Steps / 8
	if stride == 0 {
		stride = 1
	}
	for t := 0; t < p.Steps; t += stride {
		field, err := warpxField(cfg, "Jx", t)
		if err != nil {
			return nil, err
		}
		c, err := core.Compress(field, p.Compress, "Jx", t)
		if err != nil {
			return nil, err
		}
		h := &c.Header
		est := h.TheoryEstimator()
		for _, rel := range p.Bounds {
			tol := h.AbsTolerance(rel)
			if tol <= 0 {
				continue
			}
			_, plan, err := core.RetrieveTolerance(h, c, est, tol)
			if err != nil {
				return nil, err
			}
			records = append(records, plan.Planes)
		}
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("experiments: fig5 gathered no records")
	}

	// (a) Pearson correlation matrix of b_l across records.
	ta := &Table{
		ID:    "fig5a",
		Title: "Correlation matrix of the numbers of bit-planes across levels (WarpX Jx)",
		Note:  fmt.Sprintf("%d records (timesteps × bounds)", len(records)),
	}
	ta.Columns = append(ta.Columns, "level")
	for l := 0; l < levels; l++ {
		ta.Columns = append(ta.Columns, fmt.Sprintf("level_%d", l))
	}
	for i := 0; i < levels; i++ {
		row := []any{fmt.Sprintf("level_%d", i)}
		for j := 0; j < levels; j++ {
			row = append(row, pearson(records, i, j))
		}
		ta.AddRow(row...)
	}

	// (b)/(c): per-bound per-level plane counts and size shares at the mid
	// timestep.
	t := midTimestep(p)
	field, err := warpxField(cfg, "Jx", t)
	if err != nil {
		return nil, err
	}
	c, err := core.Compress(field, p.Compress, "Jx", t)
	if err != nil {
		return nil, err
	}
	h := &c.Header
	est := h.TheoryEstimator()

	tb := &Table{
		ID:    "fig5b",
		Title: fmt.Sprintf("Bit-planes retrieved per level across error bounds (WarpX Jx, t=%d)", t),
	}
	tcT := &Table{
		ID:    "fig5c",
		Title: fmt.Sprintf("Retrieval size share (%%) per level across error bounds (WarpX Jx, t=%d)", t),
	}
	tb.Columns = append(tb.Columns, "rel_bound")
	tcT.Columns = append(tcT.Columns, "rel_bound")
	for l := 0; l < levels; l++ {
		tb.Columns = append(tb.Columns, fmt.Sprintf("level_%d", l))
		tcT.Columns = append(tcT.Columns, fmt.Sprintf("level_%d_pct", l))
	}
	for _, rel := range thinBounds(p.Bounds, 9) {
		tol := h.AbsTolerance(rel)
		if tol <= 0 {
			continue
		}
		_, plan, err := core.RetrieveTolerance(h, c, est, tol)
		if err != nil {
			return nil, err
		}
		rowB := []any{rel}
		rowC := []any{rel}
		for l := 0; l < levels; l++ {
			rowB = append(rowB, plan.Planes[l])
			pct := 0.0
			if plan.Bytes > 0 {
				pct = 100 * float64(plan.BytesPerLevel[l]) / float64(plan.Bytes)
			}
			rowC = append(rowC, pct)
		}
		tb.AddRow(rowB...)
		tcT.AddRow(rowC...)
	}
	return []*Table{ta, tb, tcT}, nil
}

// pearson computes the Pearson correlation between plane counts of levels
// i and j across the records. Constant series correlate as 1 with
// themselves and 0 with anything else.
func pearson(records [][]int, i, j int) float64 {
	n := float64(len(records))
	var mi, mj float64
	for _, r := range records {
		mi += float64(r[i])
		mj += float64(r[j])
	}
	mi /= n
	mj /= n
	var cov, vi, vj float64
	for _, r := range records {
		di, dj := float64(r[i])-mi, float64(r[j])-mj
		cov += di * dj
		vi += di * di
		vj += dj * dj
	}
	if vi == 0 && vj == 0 && i == j {
		return 1
	}
	if vi == 0 || vj == 0 {
		return 0
	}
	return cov / math.Sqrt(vi*vj)
}
