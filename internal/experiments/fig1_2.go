package experiments

import (
	"fmt"

	"pmgard/internal/core"
	"pmgard/internal/grid"
	"pmgard/internal/sim/warpx"
)

// midTimestep picks the representative timestep used by the paper's
// single-snapshot figures (t=32, clamped to the configured run length).
func midTimestep(p Params) int {
	t := 32
	if t >= p.Steps {
		t = p.Steps - 1
	}
	return t
}

// compressWarpX generates and compresses one synthetic WarpX field.
func compressWarpX(p Params, name string, t int) (*core.Compressed, error) {
	cfg := warpx.DefaultConfig(p.WarpXDims...)
	field, err := warpxField(cfg, name, t)
	if err != nil {
		return nil, err
	}
	return core.Compress(field, p.Compress, name, t)
}

// Fig1 reproduces Fig. 1: the I/O cost (bytes) a tolerance *should* incur
// (oracle: stop as soon as the measured error clears the tolerance) versus
// the cost the theory-based error control actually incurs, for the B_x and
// E_x WarpX fields.
func Fig1(p Params) ([]*Table, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	t := midTimestep(p)
	cfg := warpx.DefaultConfig(p.WarpXDims...)
	table := &Table{
		ID:    "fig1",
		Title: "I/O cost of requested tolerance vs theory-based error control (WarpX Bx, Ex)",
		Note:  fmt.Sprintf("dims=%v t=%d; oracle = greedy path stopped on measured error", p.WarpXDims, t),
		Columns: []string{
			"field", "rel_bound", "oracle_bytes", "theory_bytes", "extra_io_pct",
		},
	}
	for _, name := range []string{"Bx", "Ex"} {
		field, err := warpxField(cfg, name, t)
		if err != nil {
			return nil, err
		}
		c, err := core.Compress(field, p.Compress, name, t)
		if err != nil {
			return nil, err
		}
		points, err := pathProfile(field, c)
		if err != nil {
			return nil, err
		}
		for _, rel := range thinBounds(p.Bounds, 9) {
			tol := c.Header.AbsTolerance(rel)
			if tol <= 0 {
				continue
			}
			oracle := stopAtOracle(points, tol)
			theory := stopAtTheory(points, tol)
			extra := 0.0
			if oracle.Bytes > 0 {
				extra = 100 * float64(theory.Bytes-oracle.Bytes) / float64(oracle.Bytes)
			} else if theory.Bytes > 0 {
				extra = 100
			}
			table.AddRow(name, rel, oracle.Bytes, theory.Bytes, extra)
		}
	}
	return []*Table{table}, nil
}

// Fig2 reproduces Fig. 2: the requested error tolerance versus the error
// the theory-controlled retrieval actually achieves, for WarpX J_x and
// Gray-Scott D_u. The achieved error sitting orders of magnitude below the
// requested bound is the paper's Motivation 1.
func Fig2(p Params) ([]*Table, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	t := midTimestep(p)
	table := &Table{
		ID:    "fig2",
		Title: "Requested tolerance vs achieved max error under theory control (WarpX Jx, Gray-Scott Du)",
		Note:  fmt.Sprintf("dims=%v gs=%d³ t=%d", p.WarpXDims, p.GrayScottN, t),
		Columns: []string{
			"field", "rel_bound", "requested_abs", "achieved_abs", "requested/achieved",
		},
	}
	type job struct {
		name  string
		field func() (*core.Compressed, error)
	}
	jobs := []job{
		{"Jx", func() (*core.Compressed, error) { return compressWarpX(p, "Jx", t) }},
		{"Du", func() (*core.Compressed, error) {
			f, err := grayScottField(p.GrayScottN, p.Steps, "Du", t)
			if err != nil {
				return nil, err
			}
			return core.Compress(f, p.Compress, "Du", t)
		}},
	}
	for _, j := range jobs {
		c, err := j.field()
		if err != nil {
			return nil, err
		}
		h := &c.Header
		var field = mustField(p, j.name, t)
		points, err := pathProfile(field, c)
		if err != nil {
			return nil, err
		}
		for _, rel := range thinBounds(p.Bounds, 9) {
			tol := h.AbsTolerance(rel)
			if tol <= 0 {
				continue
			}
			stop := stopAtTheory(points, tol)
			ratio := 0.0
			if stop.ActualErr > 0 {
				ratio = tol / stop.ActualErr
			}
			table.AddRow(j.name, rel, tol, stop.ActualErr, ratio)
		}
	}
	return []*Table{table}, nil
}

// mustField fetches a field that earlier code in the same experiment
// already generated successfully; failures here indicate a bug, not input
// error.
func mustField(p Params, name string, t int) (f *grid.Tensor) {
	var err error
	switch name {
	case "Du", "Dv":
		f, err = grayScottField(p.GrayScottN, p.Steps, name, t)
	default:
		f, err = warpxField(warpx.DefaultConfig(p.WarpXDims...), name, t)
	}
	if err != nil {
		panic(fmt.Sprintf("experiments: mustField(%s,%d): %v", name, t, err))
	}
	return f
}

// thinBounds subsamples a bound sweep down to at most n entries, keeping
// the endpoints, so tables stay readable while spanning the full range.
func thinBounds(bounds []float64, n int) []float64 {
	if len(bounds) <= n {
		return bounds
	}
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, bounds[i*(len(bounds)-1)/(n-1)])
	}
	return out
}
