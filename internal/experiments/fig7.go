package experiments

import "fmt"

// Fig7 reproduces Fig. 7: the absolute error of each coefficient level as
// an increasing number of bit-planes is retrieved, for the three WarpX
// fields at the reference timestep. The orders-of-magnitude spread across
// levels is why a single mapping constant C biases the Eq. 6 estimate and
// motivates E-MGARD's per-level constants.
func Fig7(p Params) ([]*Table, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	t := midTimestep(p)
	var tables []*Table
	for _, name := range []string{"Bx", "Ex", "Jx"} {
		c, err := compressWarpX(p, name, t)
		if err != nil {
			return nil, err
		}
		h := &c.Header
		table := &Table{
			ID:    "fig7",
			Title: fmt.Sprintf("Per-level absolute error vs planes retrieved (WarpX %s, t=%d)", name, t),
			Note:  fmt.Sprintf("dims=%v", p.WarpXDims),
		}
		table.Columns = append(table.Columns, "planes")
		for l := range h.Levels {
			table.Columns = append(table.Columns, fmt.Sprintf("level_%d_err", l))
		}
		for b := 0; b <= h.Planes; b += 4 {
			row := []any{b}
			for _, lm := range h.Levels {
				row = append(row, lm.ErrMatrix[b])
			}
			table.AddRow(row...)
		}
		tables = append(tables, table)
	}
	return tables, nil
}
