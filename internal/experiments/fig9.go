package experiments

import (
	"fmt"

	"pmgard/internal/dmgard"
	"pmgard/internal/features"
	"pmgard/internal/grid"
	"pmgard/internal/sim/warpx"
)

// fieldProvider yields a field of one variable at a timestep.
type fieldProvider func(t int) (*grid.Tensor, error)

// warpxProvider binds a synthetic WarpX field name to a provider.
func warpxProvider(p Params, name string) fieldProvider {
	cfg := warpx.DefaultConfig(p.WarpXDims...)
	return func(t int) (*grid.Tensor, error) { return warpxField(cfg, name, t) }
}

// grayScottProvider binds a Gray-Scott field name to a provider.
func grayScottProvider(p Params, name string) fieldProvider {
	return func(t int) (*grid.Tensor, error) { return grayScottField(p.GrayScottN, p.Steps, name, t) }
}

// harvestRange collects D-MGARD training/evaluation records for one field
// over [t0, t1).
func harvestRange(p Params, name string, prov fieldProvider, t0, t1 int) ([]dmgard.Record, error) {
	var records []dmgard.Record
	for t := t0; t < t1; t++ {
		field, err := prov(t)
		if err != nil {
			return nil, err
		}
		recs, _, err := dmgard.Harvest(field, name, t, p.Compress, p.Bounds)
		if err != nil {
			return nil, err
		}
		records = append(records, recs...)
	}
	return records, nil
}

// predictionErrDist evaluates a trained D-MGARD model on records and
// returns, per level, the distribution of (predicted − actual) plane
// counts bucketed into {≤−3, −2, −1, 0, +1, +2, ≥+3}, as percentages.
func predictionErrDist(m *dmgard.Model, records []dmgard.Record) ([][7]float64, error) {
	levels := m.Levels()
	counts := make([][7]int, levels)
	for _, r := range records {
		pred, err := m.Predict(r.Features, r.AchievedErr)
		if err != nil {
			return nil, err
		}
		for l := 0; l < levels; l++ {
			d := pred[l] - r.Planes[l]
			switch {
			case d <= -3:
				counts[l][0]++
			case d >= 3:
				counts[l][6]++
			default:
				counts[l][d+3]++
			}
		}
	}
	out := make([][7]float64, levels)
	n := float64(len(records))
	for l := range counts {
		for b := range counts[l] {
			out[l][b] = 100 * float64(counts[l][b]) / n
		}
	}
	return out, nil
}

var distBuckets = []string{"<=-3", "-2", "-1", "0", "+1", "+2", ">=+3"}

// distTable renders a per-level prediction-error distribution.
func distTable(id, title, note string, dist [][7]float64) *Table {
	t := &Table{ID: id, Title: title, Note: note}
	t.Columns = append(t.Columns, "level")
	t.Columns = append(t.Columns, distBuckets...)
	t.Columns = append(t.Columns, "within1_pct")
	for l, d := range dist {
		row := []any{fmt.Sprintf("level_%d", l)}
		for _, v := range d {
			row = append(row, v)
		}
		row = append(row, d[2]+d[3]+d[4])
		t.AddRow(row...)
	}
	return t
}

// Fig9 reproduces Fig. 9: D-MGARD prediction-error distributions on the
// WarpX application. The model trains on the first half of J_x's timesteps
// and is evaluated on J_x's second half and on all timesteps of B_x and
// E_x.
func Fig9(p Params) ([]*Table, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	half := p.Steps / 2
	train, err := harvestRange(p, "Jx", warpxProvider(p, "Jx"), 0, half)
	if err != nil {
		return nil, err
	}
	model, err := dmgard.Train(train, p.Compress.Planes, p.DTrain)
	if err != nil {
		return nil, err
	}
	var tables []*Table
	evals := []struct {
		name   string
		t0, t1 int
	}{
		{"Jx", half, p.Steps},
		{"Bx", 0, p.Steps},
		{"Ex", 0, p.Steps},
	}
	for _, e := range evals {
		recs, err := harvestRange(p, e.name, warpxProvider(p, e.name), e.t0, e.t1)
		if err != nil {
			return nil, err
		}
		dist, err := predictionErrDist(model, recs)
		if err != nil {
			return nil, err
		}
		tables = append(tables, distTable(
			"fig9",
			fmt.Sprintf("D-MGARD prediction error distribution (%%), WarpX %s", e.name),
			fmt.Sprintf("trained on Jx t∈[0,%d); evaluated on %s t∈[%d,%d); %d records",
				half, e.name, e.t0, e.t1, len(recs)),
			dist))
	}
	return tables, nil
}

// Fig10 reproduces Fig. 10: the same protocol on the Gray-Scott
// application — train on D_u's first half, evaluate on D_u's second half
// and on all of D_v.
func Fig10(p Params) ([]*Table, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	half := p.Steps / 2
	train, err := harvestRange(p, "Du", grayScottProvider(p, "Du"), 0, half)
	if err != nil {
		return nil, err
	}
	model, err := dmgard.Train(train, p.Compress.Planes, p.DTrain)
	if err != nil {
		return nil, err
	}
	var tables []*Table
	evals := []struct {
		name   string
		t0, t1 int
	}{
		{"Du", half, p.Steps},
		{"Dv", 0, p.Steps},
	}
	for _, e := range evals {
		recs, err := harvestRange(p, e.name, grayScottProvider(p, e.name), e.t0, e.t1)
		if err != nil {
			return nil, err
		}
		dist, err := predictionErrDist(model, recs)
		if err != nil {
			return nil, err
		}
		tables = append(tables, distTable(
			"fig10",
			fmt.Sprintf("D-MGARD prediction error distribution (%%), Gray-Scott %s", e.name),
			fmt.Sprintf("trained on Du t∈[0,%d); evaluated on %s t∈[%d,%d); %d records",
				half, e.name, e.t0, e.t1, len(recs)),
			dist))
	}
	return tables, nil
}

// Fig11 reproduces Fig. 11: cross-resolution generalization. The model
// trains on J_x at a low resolution and is evaluated at 2× and 4× that
// resolution (the paper's 64³→128³/256³, scaled to this reproduction's
// grids). Features are resolution-sensitive, so accuracy degrading with
// the resolution gap is the expected (and reported) behaviour.
func Fig11(p Params) ([]*Table, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	baseN := 9
	resolutions := []int{9, 17, 33}
	provAt := func(n int) fieldProvider {
		cfg := warpx.DefaultConfig(n, n, n)
		return func(t int) (*grid.Tensor, error) { return warpxField(cfg, "Jx", t) }
	}
	train, err := harvestRange(p, "Jx", provAt(baseN), 0, p.Steps/2)
	if err != nil {
		return nil, err
	}
	model, err := dmgard.Train(train, p.Compress.Planes, p.DTrain)
	if err != nil {
		return nil, err
	}
	var tables []*Table
	for _, n := range resolutions {
		recs, err := harvestRange(p, "Jx", provAt(n), p.Steps/2, p.Steps)
		if err != nil {
			return nil, err
		}
		dist, err := predictionErrDist(model, recs)
		if err != nil {
			return nil, err
		}
		tables = append(tables, distTable(
			"fig11",
			fmt.Sprintf("D-MGARD cross-resolution prediction error (%%), trained %d³, tested %d³", baseN, n),
			fmt.Sprintf("WarpX Jx; %d records; features: %d", len(recs), features.Count()),
			dist))
	}
	return tables, nil
}
