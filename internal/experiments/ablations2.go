package experiments

import (
	"fmt"

	"pmgard/internal/bitplane"
	"pmgard/internal/core"
	"pmgard/internal/decompose"
	"pmgard/internal/dmgard"
	"pmgard/internal/emgard"
	"pmgard/internal/features"
	"pmgard/internal/grid"
	"pmgard/internal/lossless"
	"pmgard/internal/sim/warpx"
)

// AblatePool studies E-MGARD's pooled-input size: the paper's encoder takes
// the raw coefficient level (2048-wide first layer); this reproduction pools
// levels to a fixed vector first. Larger pools see more structure but cost
// more to store in every header.
func AblatePool(p Params) ([]*Table, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	half := p.Steps / 2
	simCfg := warpx.DefaultConfig(p.WarpXDims...)
	table := &Table{
		ID:      "ablate-pool",
		Title:   "E-MGARD pooled-input size ablation (WarpX Jx)",
		Note:    "held-out timesteps; pred/true is the error-estimate ratio (1 = perfect)",
		Columns: []string{"pool_size", "median_pred_over_true", "within_3x_pct", "overshoot_pct"},
	}
	for _, poolSize := range []int{8, 32, 64, 128} {
		cfg := p.Compress
		cfg.PoolSize = poolSize
		var samples []emgard.Sample
		for t := 0; t < half; t++ {
			field, err := warpxField(simCfg, "Jx", t)
			if err != nil {
				return nil, err
			}
			ss, _, err := emgard.Harvest(field, "Jx", t, cfg, p.Bounds)
			if err != nil {
				return nil, err
			}
			samples = append(samples, ss...)
		}
		m, err := emgard.Train(samples, p.ETrain)
		if err != nil {
			return nil, err
		}
		// Evaluate estimate quality on held-out timesteps.
		var ratios []float64
		within, overshoot, total := 0, 0, 0
		for t := half; t < p.Steps; t++ {
			field, err := warpxField(simCfg, "Jx", t)
			if err != nil {
				return nil, err
			}
			ss, _, err := emgard.Harvest(field, "Jx", t, cfg, thinBounds(p.Bounds, 9))
			if err != nil {
				return nil, err
			}
			for _, s := range ss {
				if s.TrueErr <= 0 {
					continue
				}
				cs, err := m.Constants(s.Pools)
				if err != nil {
					return nil, err
				}
				pred := 0.0
				for l := range cs {
					pred += cs[l] * s.LevelErrs[l]
				}
				r := pred / s.TrueErr
				ratios = append(ratios, r)
				total++
				if r > 1.0/3 && r < 3 {
					within++
				}
				if r < 1 {
					overshoot++ // under-estimate → retrieval would overshoot
				}
			}
		}
		if total == 0 {
			return nil, fmt.Errorf("experiments: pool ablation had no usable samples")
		}
		table.AddRow(poolSize, median(ratios),
			100*float64(within)/float64(total),
			100*float64(overshoot)/float64(total))
	}
	return []*Table{table}, nil
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	// Insertion sort copy — small slices only.
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}

// AblateAugment compares D-MGARD with and without feature-jitter
// augmentation: sweeps yield one feature vector per timestep, and the
// un-augmented model memorizes them, collapsing on held-out timesteps.
func AblateAugment(p Params) ([]*Table, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	half := p.Steps / 2
	train, err := harvestRange(p, "Jx", warpxProvider(p, "Jx"), 0, half)
	if err != nil {
		return nil, err
	}
	test, err := harvestRange(p, "Jx", warpxProvider(p, "Jx"), half, p.Steps)
	if err != nil {
		return nil, err
	}
	table := &Table{
		ID:      "ablate-augment",
		Title:   "D-MGARD feature-jitter augmentation ablation (WarpX Jx, held-out timesteps)",
		Columns: []string{"variant", "exact_pct", "within1_pct", "worst_abs_err"},
	}
	for _, variant := range []struct {
		name    string
		augment int
	}{{"augmented (x3)", 3}, {"no augmentation", 1}} {
		cfg := p.DTrain
		cfg.Augment = variant.augment
		m, err := trainD(train, p, cfg)
		if err != nil {
			return nil, err
		}
		exact, within1, worst, err := evalD(m, test)
		if err != nil {
			return nil, err
		}
		table.AddRow(variant.name, exact, within1, worst)
	}
	return []*Table{table}, nil
}

// AblateSession measures what the progressive Session saves versus
// independent one-shot retrievals when an analyst tightens the tolerance
// stepwise — the workflow the whole bit-plane design exists for.
func AblateSession(p Params) ([]*Table, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	t := midTimestep(p)
	field, err := warpxField(warpx.DefaultConfig(p.WarpXDims...), "Jx", t)
	if err != nil {
		return nil, err
	}
	c, err := core.Compress(field, p.Compress, "Jx", t)
	if err != nil {
		return nil, err
	}
	h := &c.Header
	est := h.TheoryEstimator()
	sess, err := core.NewSession(h, c)
	if err != nil {
		return nil, err
	}
	table := &Table{
		ID:      "ablate-session",
		Title:   fmt.Sprintf("Progressive session vs one-shot retrievals (WarpX Jx, t=%d)", t),
		Note:    "an analyst tightens the tolerance stepwise; the session only reads deltas",
		Columns: []string{"rel_bound", "session_total_bytes", "oneshot_cumulative_bytes", "achieved_err"},
	}
	var oneShotCum int64
	for _, rel := range []float64{1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6} {
		tol := h.AbsTolerance(rel)
		rec, _, _, err := sess.Refine(est, tol)
		if err != nil {
			return nil, err
		}
		_, plan, err := core.RetrieveTolerance(h, c, est, tol)
		if err != nil {
			return nil, err
		}
		oneShotCum += plan.Bytes
		table.AddRow(rel, sess.BytesFetched(), oneShotCum, grid.MaxAbsDiff(field, rec))
	}
	return []*Table{table}, nil
}

// AblateConstant separates the two sources of theory-control overhead: the
// naive compounded constant (Eq. 6 as implemented by the early works) vs
// the tight analytical constant vs E-MGARD's learned per-level constants,
// all driving the same greedy retriever on the same field.
func AblateConstant(p Params) ([]*Table, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	_, em, err := trainBothModels(p)
	if err != nil {
		return nil, err
	}
	t := midTimestep(p)
	field, err := warpxField(warpx.DefaultConfig(p.WarpXDims...), "Jx", t)
	if err != nil {
		return nil, err
	}
	c, err := core.Compress(field, p.Compress, "Jx", t)
	if err != nil {
		return nil, err
	}
	h := &c.Header
	learned, err := em.Estimator(h.LevelPools)
	if err != nil {
		return nil, err
	}
	table := &Table{
		ID:    "ablate-constant",
		Title: fmt.Sprintf("Error-control constant ablation (WarpX Jx, t=%d)", t),
		Note: fmt.Sprintf("naive C=%.4g, tight C=%.4g, E-MGARD constants learned per level",
			h.TheoryEstimator().C, h.TightEstimator().C),
		Columns: []string{"rel_bound", "naive_bytes", "tight_bytes", "emgard_bytes",
			"naive_err", "tight_err", "emgard_err"},
	}
	for _, rel := range thinBounds(p.Bounds, 7) {
		tol := h.AbsTolerance(rel)
		if tol <= 0 {
			continue
		}
		recN, planN, err := core.RetrieveTolerance(h, c, h.TheoryEstimator(), tol)
		if err != nil {
			return nil, err
		}
		recT, planT, err := core.RetrieveTolerance(h, c, h.TightEstimator(), tol)
		if err != nil {
			return nil, err
		}
		recE, planE, err := core.RetrieveTolerance(h, c, learned, tol)
		if err != nil {
			return nil, err
		}
		table.AddRow(rel, planN.Bytes, planT.Bytes, planE.Bytes,
			grid.MaxAbsDiff(field, recN), grid.MaxAbsDiff(field, recT), grid.MaxAbsDiff(field, recE))
	}
	return []*Table{table}, nil
}

// AblateEncoding compares nega-binary (MGARD's choice) against
// sign-magnitude bit-plane encoding on the same coefficient levels: error
// decay per plane and compressed plane footprint.
func AblateEncoding(p Params) ([]*Table, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	t := midTimestep(p)
	field, err := warpxField(warpx.DefaultConfig(p.WarpXDims...), "Jx", t)
	if err != nil {
		return nil, err
	}
	dec, err := decompose.Decompose(field, p.Compress.Decompose)
	if err != nil {
		return nil, err
	}
	// Use the finest level — the one that dominates retrieval size.
	level := dec.Levels() - 1
	coeffs := dec.Coeffs(level)
	codec := lossless.Deflate()

	table := &Table{
		ID:    "ablate-encoding",
		Title: fmt.Sprintf("Nega-binary vs sign-magnitude plane encoding (WarpX Jx, t=%d, level %d)", t, level),
		Note:  "error decay per retrieved plane and deflate-compressed footprint",
		Columns: []string{
			"planes", "negabinary_err", "signmag_err", "negabinary_bytes", "signmag_bytes",
		},
	}
	encN, err := bitplane.EncodeLevelMode(coeffs, 32, bitplane.Negabinary)
	if err != nil {
		return nil, err
	}
	encS, err := bitplane.EncodeLevelMode(coeffs, 32, bitplane.SignMagnitude)
	if err != nil {
		return nil, err
	}
	sizeOf := func(enc *bitplane.LevelEncoding, upTo int) (int64, error) {
		var total int64
		for k := 0; k < upTo; k++ {
			seg, err := codec.Compress(enc.Bits[k])
			if err != nil {
				return 0, err
			}
			total += int64(len(seg))
		}
		return total, nil
	}
	for b := 0; b <= 32; b += 4 {
		sn, err := sizeOf(encN, b)
		if err != nil {
			return nil, err
		}
		ss, err := sizeOf(encS, b)
		if err != nil {
			return nil, err
		}
		table.AddRow(b, encN.ErrMatrix[b], encS.ErrMatrix[b], sn, ss)
	}
	return []*Table{table}, nil
}

// ExpHybrid evaluates the paper's future-work combination of the two
// models: D-MGARD seeds the plan, E-MGARD's learned estimator refines it.
// Compared against each model alone on held-out timesteps: bytes fetched
// and bound violations.
func ExpHybrid(p Params) ([]*Table, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	dm, em, err := trainBothModels(p)
	if err != nil {
		return nil, err
	}
	cfg := warpx.DefaultConfig(p.WarpXDims...)
	half := p.Steps / 2
	table := &Table{
		ID:    "exp-hybrid",
		Title: "Hybrid D+E control vs each model alone (WarpX Jx, held-out timesteps)",
		Note:  "paper §IV-E future work: D-MGARD seeds the plan, E-MGARD verifies and refines",
		Columns: []string{
			"rel_bound", "dmgard_bytes", "emgard_bytes", "hybrid_bytes",
			"d_viol", "e_viol", "h_viol",
		},
	}
	for _, rel := range thinBounds(p.Bounds, 7) {
		var dB, eB, hB int64
		dV, eV, hV := 0, 0, 0
		rows := 0
		for t := half; t < p.Steps; t++ {
			field, err := warpxField(cfg, "Jx", t)
			if err != nil {
				return nil, err
			}
			c, err := core.Compress(field, p.Compress, "Jx", t)
			if err != nil {
				return nil, err
			}
			h := &c.Header
			tol := h.AbsTolerance(rel)
			if tol <= 0 {
				continue
			}
			rows++
			feat := dmgard.CombineFeatures(features.Extract(field, t), h)
			seed, err := dm.Predict(feat, rel)
			if err != nil {
				return nil, err
			}
			recD, planD, err := core.RetrievePlanes(h, c, seed)
			if err != nil {
				return nil, err
			}
			dB += planD.Bytes
			if grid.MaxAbsDiff(field, recD) > tol {
				dV++
			}
			est, err := em.Estimator(h.LevelPools)
			if err != nil {
				return nil, err
			}
			recE, planE, err := core.RetrieveTolerance(h, c, est, tol)
			if err != nil {
				return nil, err
			}
			eB += planE.Bytes
			if grid.MaxAbsDiff(field, recE) > tol {
				eV++
			}
			recH, planH, err := core.RetrieveHybrid(h, c, seed, est, tol)
			if err != nil {
				return nil, err
			}
			hB += planH.Bytes
			if grid.MaxAbsDiff(field, recH) > tol {
				hV++
			}
		}
		if rows == 0 {
			continue
		}
		table.AddRow(rel, dB, eB, hB, dV, eV, hV)
	}
	return []*Table{table}, nil
}

// ExpMultiField trains D-MGARD on the first half of *all* WarpX fields
// jointly — the per-application training the paper describes ("trained on
// each application dataset") — and compares held-out accuracy against the
// single-field (Jx-only) training of Fig. 9.
func ExpMultiField(p Params) ([]*Table, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	half := p.Steps / 2
	fields := []string{"Jx", "Bx", "Ex"}

	// Jx-only model (the Fig. 9 baseline).
	single, err := harvestRange(p, "Jx", warpxProvider(p, "Jx"), 0, half)
	if err != nil {
		return nil, err
	}
	mSingle, err := dmgard.Train(single, p.Compress.Planes, p.DTrain)
	if err != nil {
		return nil, err
	}

	// Joint model over all three fields.
	var joint []dmgard.Record
	for _, name := range fields {
		recs, err := harvestRange(p, name, warpxProvider(p, name), 0, half)
		if err != nil {
			return nil, err
		}
		joint = append(joint, recs...)
	}
	mJoint, err := dmgard.Train(joint, p.Compress.Planes, p.DTrain)
	if err != nil {
		return nil, err
	}

	table := &Table{
		ID:    "exp-multifield",
		Title: "Per-application (joint) vs single-field D-MGARD training (WarpX, held-out timesteps)",
		Note:  fmt.Sprintf("single: Jx t∈[0,%d); joint: Jx+Bx+Ex t∈[0,%d)", half, half),
		Columns: []string{
			"eval_field", "single_exact_pct", "single_within1_pct",
			"joint_exact_pct", "joint_within1_pct",
		},
	}
	for _, name := range fields {
		test, err := harvestRange(p, name, warpxProvider(p, name), half, p.Steps)
		if err != nil {
			return nil, err
		}
		se, s1, _, err := evalD(mSingle, test)
		if err != nil {
			return nil, err
		}
		je, j1, _, err := evalD(mJoint, test)
		if err != nil {
			return nil, err
		}
		table.AddRow(name, se, s1, je, j1)
	}
	return []*Table{table}, nil
}

// AblateLevels sweeps the hierarchy depth L: deeper hierarchies give the
// greedy retriever finer granularity (coarse levels are cheap) but compound
// the naive theory constant, widening the pessimism gap the DNN models
// close. The paper fixes L=5; this shows why the choice matters.
func AblateLevels(p Params) ([]*Table, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	t := midTimestep(p)
	field, err := warpxField(warpx.DefaultConfig(p.WarpXDims...), "Jx", t)
	if err != nil {
		return nil, err
	}
	table := &Table{
		ID:      "ablate-levels",
		Title:   fmt.Sprintf("Hierarchy depth ablation (WarpX Jx, t=%d, rel bound 1e-4)", t),
		Columns: []string{"levels", "theory_C", "stored_bytes", "retrieved_bytes", "achieved_err", "pessimism_x"},
	}
	for _, levels := range []int{2, 3, 5, 7} {
		cfg := p.Compress
		cfg.Decompose = decompose.Options{Levels: levels, Update: true, UpdateWeight: 0.25}
		c, err := core.Compress(field, cfg, "Jx", t)
		if err != nil {
			return nil, err
		}
		h := &c.Header
		tol := h.AbsTolerance(1e-4)
		rec, plan, err := core.RetrieveTolerance(h, c, h.TheoryEstimator(), tol)
		if err != nil {
			return nil, err
		}
		achieved := grid.MaxAbsDiff(field, rec)
		pess := 0.0
		if achieved > 0 {
			pess = tol / achieved
		}
		table.AddRow(levels, h.TheoryEstimator().C, h.TotalBytes(), plan.Bytes, achieved, pess)
	}
	return []*Table{table}, nil
}
