package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// runQuick executes a runner at Quick scale and sanity-checks its tables.
func runQuick(t *testing.T, id string) []*Table {
	t.Helper()
	r, ok := Registry()[id]
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	tables, err := r.Run(Quick())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(tables) == 0 {
		t.Fatalf("%s produced no tables", id)
	}
	for _, tab := range tables {
		if tab.ID == "" || tab.Title == "" {
			t.Fatalf("%s produced a table without id/title", id)
		}
		if len(tab.Rows) == 0 {
			t.Fatalf("%s table %q has no rows", id, tab.Title)
		}
		for i, row := range tab.Rows {
			if len(row) != len(tab.Columns) {
				t.Fatalf("%s table %q row %d has %d cells, want %d",
					id, tab.Title, i, len(row), len(tab.Columns))
			}
		}
	}
	return tables
}

func cellFloat(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", cell, err)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	// Every paper artifact from DESIGN.md §3 must be registered.
	want := []string{
		"fig1", "fig2", "fig3", "fig5", "fig7", "fig9",
		"fig10", "fig11", "fig12", "fig13", "tab2",
		"ablate-loss", "ablate-chain", "ablate-update", "ablate-greedy", "ablate-codec",
		"ablate-pool", "ablate-augment", "ablate-session", "ablate-constant",
		"ablate-encoding", "ablate-levels", "exp-hybrid", "exp-multifield", "exp-baselines",
		"exp-shard",
	}
	reg := Registry()
	for _, id := range want {
		if _, ok := reg[id]; !ok {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(IDs()), len(want))
	}
}

func TestRunUnknownID(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("fig99", Quick(), &buf); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}

func TestFig1TheoryCostsAtLeastOracle(t *testing.T) {
	tables := runQuick(t, "fig1")
	for _, row := range tables[0].Rows {
		oracle := cellFloat(t, row[2])
		theory := cellFloat(t, row[3])
		if theory < oracle {
			t.Fatalf("theory bytes %v below oracle %v for %v", theory, oracle, row)
		}
	}
}

func TestFig2AchievedBelowRequested(t *testing.T) {
	tables := runQuick(t, "fig2")
	pessimistic := 0
	for _, row := range tables[0].Rows {
		rel := cellFloat(t, row[1])
		requested := cellFloat(t, row[2])
		achieved := cellFloat(t, row[3])
		// Below ~2^-30 relative, the 32-plane quantization floor can sit
		// above the requested tolerance; the bound is unreachable there by
		// construction, so only enforce it for attainable bounds.
		if rel >= 1e-6 && achieved > requested {
			t.Fatalf("achieved %v above requested %v for %v", achieved, requested, row)
		}
		if achieved < requested/10 {
			pessimistic++
		}
	}
	if pessimistic == 0 {
		t.Fatal("no bound was pessimistic by ≥10x — Fig. 2's premise not reproduced")
	}
}

func TestFig3TablesCoverFourPanels(t *testing.T) {
	tables := runQuick(t, "fig3")
	if len(tables) != 4 {
		t.Fatalf("fig3 produced %d tables, want 4 panels", len(tables))
	}
	// Panel (b): plane counts must not increase as the bound loosens.
	tb := tables[1]
	for c := 1; c <= 3; c++ {
		prev := 1e18
		for _, row := range tb.Rows {
			v := cellFloat(t, row[c])
			if v > prev {
				t.Fatalf("fig3b: plane count rose from %v to %v as bound loosened", prev, v)
			}
			prev = v
		}
	}
}

func TestFig5CorrelationMatrixValid(t *testing.T) {
	tables := runQuick(t, "fig5")
	ta := tables[0]
	n := len(ta.Rows)
	for i, row := range ta.Rows {
		for j := 1; j <= n; j++ {
			v := cellFloat(t, row[j])
			if v < -1.0000001 || v > 1.0000001 {
				t.Fatalf("correlation out of range: %v", v)
			}
			if j-1 == i && v < 0.999 {
				t.Fatalf("diagonal correlation %v != 1", v)
			}
		}
	}
	// Panel (c): percentages sum to ~100 per row (or 0 if nothing read).
	tc := tables[2]
	for _, row := range tc.Rows {
		sum := 0.0
		for j := 1; j < len(row); j++ {
			sum += cellFloat(t, row[j])
		}
		if sum > 1 && (sum < 99 || sum > 101) {
			t.Fatalf("fig5c row percentages sum to %v", sum)
		}
	}
}

func TestFig7ErrorsShrinkWithPlanes(t *testing.T) {
	tables := runQuick(t, "fig7")
	if len(tables) != 3 {
		t.Fatalf("fig7 produced %d tables, want 3 fields", len(tables))
	}
	for _, tab := range tables {
		first := tab.Rows[0]
		last := tab.Rows[len(tab.Rows)-1]
		for c := 1; c < len(first); c++ {
			f, l := cellFloat(t, first[c]), cellFloat(t, last[c])
			if f > 0 && l > f {
				t.Fatalf("%s: level error grew from %v to %v", tab.Title, f, l)
			}
		}
	}
}

func TestFig9DistributionsSumTo100(t *testing.T) {
	tables := runQuick(t, "fig9")
	if len(tables) != 3 {
		t.Fatalf("fig9 produced %d tables, want 3 (Jx, Bx, Ex)", len(tables))
	}
	for _, tab := range tables {
		for _, row := range tab.Rows {
			sum := 0.0
			for j := 1; j <= 7; j++ {
				sum += cellFloat(t, row[j])
			}
			if sum < 99 || sum > 101 {
				t.Fatalf("%s: distribution sums to %v", tab.Title, sum)
			}
		}
	}
}

func TestFig10Tables(t *testing.T) {
	tables := runQuick(t, "fig10")
	if len(tables) != 2 {
		t.Fatalf("fig10 produced %d tables, want 2 (Du, Dv)", len(tables))
	}
}

func TestFig11ThreeResolutions(t *testing.T) {
	tables := runQuick(t, "fig11")
	if len(tables) != 3 {
		t.Fatalf("fig11 produced %d tables, want 3 resolutions", len(tables))
	}
}

func TestFig12EMGARDTighterThanTheory(t *testing.T) {
	tables := runQuick(t, "fig12")
	closer := 0
	total := 0
	for _, row := range tables[0].Rows {
		requested := cellFloat(t, row[2])
		mgard := cellFloat(t, row[3])
		em := cellFloat(t, row[4])
		if requested <= 0 {
			continue
		}
		total++
		// E-MGARD's achieved error should sit closer to the requested bound
		// (higher) than theory's on most bounds.
		if em >= mgard {
			closer++
		}
	}
	if total > 0 && closer*2 < total {
		t.Fatalf("E-MGARD achieved error closer to bound on only %d/%d rows", closer, total)
	}
}

func TestFig13SavingsPositive(t *testing.T) {
	tables := runQuick(t, "fig13")
	rows := tables[0].Rows
	if len(rows) == 0 {
		t.Fatal("fig13 produced no rows")
	}
	eWins := 0
	for _, row := range rows {
		savE := cellFloat(t, row[6])
		if savE > 0 {
			eWins++
		}
		mgard := cellFloat(t, row[2])
		d := cellFloat(t, row[3])
		e := cellFloat(t, row[4])
		if mgard <= 0 {
			t.Fatalf("fig13: zero baseline bytes in %v", row)
		}
		if d < 0 || e < 0 {
			t.Fatalf("fig13: negative byte counts in %v", row)
		}
	}
	if eWins == 0 {
		t.Fatal("E-MGARD never reduced retrieval size — headline result not reproduced")
	}
}

func TestTable2ListsBothApplications(t *testing.T) {
	tables := runQuick(t, "tab2")
	joined := ""
	for _, row := range tables[0].Rows {
		joined += strings.Join(row, " ") + "\n"
	}
	for _, want := range []string{"Gray-Scott", "WarpX", "Du", "Jx"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("tab2 missing %q:\n%s", want, joined)
		}
	}
}

func TestAblationsRun(t *testing.T) {
	for _, id := range []string{"ablate-update", "ablate-greedy", "ablate-codec", "ablate-session", "ablate-encoding", "ablate-levels"} {
		runQuick(t, id)
	}
}

func TestExpBaselinesBoundsHold(t *testing.T) {
	tables := runQuick(t, "exp-baselines")
	rows := tables[0].Rows
	if len(rows) < 2 {
		t.Fatal("baselines produced too few rows")
	}
	for _, row := range rows[:len(rows)-1] {
		rel := cellFloat(t, row[0])
		for col := 4; col <= 6; col++ {
			err := cellFloat(t, row[col])
			// Each scheme's achieved error must respect its bound; the
			// relative bound times a positive range can be recovered from
			// the progressive column vs the known field, so just assert
			// all errors are finite and non-negative here and rely on the
			// per-package property tests for exact bound checks.
			if err < 0 {
				t.Fatalf("negative error at rel %g col %d", rel, col)
			}
		}
	}
	// The totals row: progressive store-once must be far below the sum of
	// per-bound archives.
	last := rows[len(rows)-1]
	szTotal := cellFloat(t, last[1])
	prog := cellFloat(t, last[3])
	if prog >= szTotal {
		t.Fatalf("progressive store-once %v not below SZ total %v", prog, szTotal)
	}
}

func TestAblateSessionNeverCostsMoreThanOneShot(t *testing.T) {
	tables := runQuick(t, "ablate-session")
	for _, row := range tables[0].Rows {
		session := cellFloat(t, row[1])
		oneShot := cellFloat(t, row[2])
		if session > oneShot {
			t.Fatalf("session %v exceeded cumulative one-shot %v", session, oneShot)
		}
	}
}

func TestAblateGreedyWinsOverallAtScale(t *testing.T) {
	// Greedy is a heuristic, not provably optimal per bound: on degenerate
	// tiny grids it can lose slightly. At a realistic grid it must win in
	// aggregate across the sweep.
	p := Quick()
	p.WarpXDims = []int{17, 17, 17}
	tables, err := AblateGreedy(p)
	if err != nil {
		t.Fatal(err)
	}
	var greedyTotal, lmTotal float64
	for _, row := range tables[0].Rows {
		greedyTotal += cellFloat(t, row[1])
		lmTotal += cellFloat(t, row[2])
	}
	if greedyTotal > lmTotal {
		t.Fatalf("greedy fetched %v bytes total, level-major %v", greedyTotal, lmTotal)
	}
}

func TestAblateCodecDeflateSmallestAtScale(t *testing.T) {
	// Per-segment codec overhead dominates on tiny grids, so this check
	// runs at a grid size where planes are big enough to compress.
	p := Quick()
	p.WarpXDims = []int{17, 17, 17}
	tables, err := AblateCodec(p)
	if err != nil {
		t.Fatal(err)
	}
	sizes := map[string]float64{}
	for _, row := range tables[0].Rows {
		sizes[row[0]] = cellFloat(t, row[1])
	}
	if sizes["deflate"] >= sizes["raw"] {
		t.Fatalf("deflate %v not smaller than raw %v", sizes["deflate"], sizes["raw"])
	}
}

func TestTableFprintFormatting(t *testing.T) {
	tab := &Table{
		ID:      "x",
		Title:   "demo",
		Columns: []string{"a", "b"},
	}
	tab.AddRow("v", 3.14159)
	tab.AddRow(7, 1e-12)
	var buf bytes.Buffer
	if err := tab.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== x: demo ==", "3.1416", "1.000e-12"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestThinBounds(t *testing.T) {
	in := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	out := thinBounds(in, 4)
	if len(out) != 4 {
		t.Fatalf("thinned to %d, want 4", len(out))
	}
	if out[0] != 1 || out[3] != 10 {
		t.Fatalf("endpoints lost: %v", out)
	}
	same := thinBounds(in, 20)
	if len(same) != len(in) {
		t.Fatal("short input should pass through")
	}
}

func TestWriteCSVAndRunCSV(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Columns: []string{"a", "b"}}
	tab.AddRow(1, 2.5)
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# x: demo", "a,b", "1,2.5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("CSV missing %q:\n%s", want, out)
		}
	}
	dir := t.TempDir()
	paths, err := RunCSV("tab2", Quick(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("RunCSV produced %d files", len(paths))
	}
	if _, err := RunCSV("nope", Quick(), dir); err == nil {
		t.Fatal("unknown id accepted")
	}
}

// TestExpShardScalesWithNodes runs the shard-tier sweep at Quick scale and
// pins its scaling contract: the read workload is identical across node
// counts, and the aggregate node-cache hit rate grows with node count
// because each node adds cache bytes (per-node budget is 40% of the
// artifact, so one node cannot hold the working set but three together
// over-provision it). Wall-clock throughput is reported but not asserted —
// it is too noisy on shared CI hosts.
func TestExpShardScalesWithNodes(t *testing.T) {
	tables := runQuick(t, "exp-shard")
	rows := tables[0].Rows
	if len(rows) != 3 {
		t.Fatalf("sweep produced %d rows, want 3 (nodes 1..3)", len(rows))
	}
	prevHit := -1.0
	for i, row := range rows {
		if row[0] != strconv.Itoa(i+1) {
			t.Fatalf("row %d nodes = %q, want %d", i, row[0], i+1)
		}
		if row[1] != rows[0][1] {
			t.Fatalf("row %d reads = %q, want %q (same workload at every node count)", i, row[1], rows[0][1])
		}
		hit := cellFloat(t, row[4])
		if hit < 0 || hit > 1 {
			t.Fatalf("row %d hit rate %v out of [0,1]", i, hit)
		}
		// Placement skew and LRU churn wiggle the exact numbers; the trend
		// must still be monotone within a small tolerance.
		if hit < prevHit-0.05 {
			t.Fatalf("hit rate fell from %.3f to %.3f as nodes grew", prevHit, hit)
		}
		prevHit = hit
	}
	if first := cellFloat(t, rows[0][4]); first > 0.7 {
		t.Fatalf("1-node hit rate %.3f too high: the 40%% budget should not hold the working set", first)
	}
	if last := cellFloat(t, rows[2][4]); last < 0.8 {
		t.Fatalf("3-node hit rate %.3f too low: 120%% aggregate budget should serve mostly warm", last)
	}
}
