package experiments

import (
	"pmgard/internal/core"
	"pmgard/internal/grid"
	"pmgard/internal/retrieval"
)

// pathPoint is one stop along the greedy retrieval path of a compressed
// field, annotated with both the theory estimate and the *measured*
// reconstruction error at that prefix. The oracle cost of a tolerance is
// the bytes at the first point whose measured error clears it; the theory
// cost is the bytes at the first point whose estimate clears it. The gap
// between the two is exactly the overhead of Figs. 1–2.
type pathPoint struct {
	Bytes     int64
	Planes    []int
	TheoryEst float64
	ActualErr float64
}

// pathProfile walks the full greedy path of a compressed field, measuring
// the true reconstruction error at every step. The zeroth point is the
// empty retrieval.
func pathProfile(field *grid.Tensor, c *core.Compressed) ([]pathPoint, error) {
	h := &c.Header
	infos := h.LevelInfos()
	est := h.TheoryEstimator()
	steps, err := retrieval.GreedySequence(infos)
	if err != nil {
		return nil, err
	}
	zeroErrs := make([]float64, len(infos))
	for l, li := range infos {
		zeroErrs[l] = li.ErrMatrix[0]
	}
	points := make([]pathPoint, 0, len(steps)+1)
	zero, err := core.Retrieve(h, c, retrieval.Plan{Planes: make([]int, len(infos))})
	if err != nil {
		return nil, err
	}
	points = append(points, pathPoint{
		Planes:    make([]int, len(infos)),
		TheoryEst: est.Estimate(zeroErrs),
		ActualErr: grid.MaxAbsDiff(field, zero),
	})
	for _, s := range steps {
		rec, err := core.Retrieve(h, c, retrieval.Plan{Planes: s.Planes})
		if err != nil {
			return nil, err
		}
		points = append(points, pathPoint{
			Bytes:     s.Bytes,
			Planes:    s.Planes,
			TheoryEst: est.Estimate(s.LevelErrs),
			ActualErr: grid.MaxAbsDiff(field, rec),
		})
	}
	return points, nil
}

// stopAtTheory returns the first path point whose theory estimate is within
// tol (or the last point if none is).
func stopAtTheory(points []pathPoint, tol float64) pathPoint {
	for _, p := range points {
		if p.TheoryEst <= tol {
			return p
		}
	}
	return points[len(points)-1]
}

// stopAtOracle returns the cheapest path point whose measured error is
// within tol (or the last point if none is). Measured error is not
// monotone along the path, so the scan takes the first clearance.
func stopAtOracle(points []pathPoint, tol float64) pathPoint {
	for _, p := range points {
		if p.ActualErr <= tol {
			return p
		}
	}
	return points[len(points)-1]
}
