package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"pmgard/internal/core"
	"pmgard/internal/obs"
	"pmgard/internal/servecache"
	"pmgard/internal/shard"
)

// shardWorkers is the concurrent reader count of the sweep's timed round.
const shardWorkers = 4

// ShardPoint is one node-count measurement of the shard-tier sweep: a
// router issuing a fixed random plane-read workload against n /planes
// nodes, each holding a servecache whose budget is a fixed fraction of the
// artifact, so aggregate cache bytes — and the warm-read fraction — grow
// with node count.
type ShardPoint struct {
	// Nodes is the node count of this configuration.
	Nodes int `json:"nodes"`
	// Reads is the number of timed plane reads issued through the router.
	Reads int `json:"reads"`
	// Seconds is the wall time of the timed round.
	Seconds float64 `json:"seconds"`
	// ReadsPerSec is Reads / Seconds.
	ReadsPerSec float64 `json:"reads_per_sec"`
	// HitRate is the aggregate node-cache hit fraction over the timed
	// round (hits / (hits+misses) summed across nodes).
	HitRate float64 `json:"hit_rate"`
	// Speedup is ReadsPerSec relative to the sweep's first configuration.
	Speedup float64 `json:"speedup"`
}

// shardBenchSource adapts the shared artifact to shard.NodeSource for one
// bench node: fetches go through the node's own servecache over the shared
// PlaneStore, exactly like cmd/serve's node role.
type shardBenchSource struct {
	h     *core.Header
	cache *servecache.Cache
	store *core.PlaneStore
	key   servecache.Key // Codec/Field template; Level/Plane filled per read
}

func (s *shardBenchSource) PlaneField(name string) (shard.NodeField, bool) {
	if name != s.h.FieldName {
		return shard.NodeField{}, false
	}
	return shard.NodeField{
		Header: s.h,
		Fetch: func(ctx context.Context, level, plane int) ([]byte, int64, error) {
			k := s.key
			k.Level, k.Plane = level, plane
			raw, payload, _, err := s.cache.GetOrFetchFromCtx(ctx, k, s.store)
			return raw, payload, err
		},
	}, true
}

func (s *shardBenchSource) PlaneFields() []string { return []string{s.h.FieldName} }

// shardBenchNode is one running bench node: its HTTP server, listener URL
// and the obs registry its servecache counters live in.
type shardBenchNode struct {
	o   *obs.Obs
	srv *http.Server
	url string
}

// startShardBenchNode serves the artifact's planes on a loopback listener
// through a fresh cache with the given byte budget.
func startShardBenchNode(h *core.Header, store *core.PlaneStore, budget int64, key servecache.Key) (*shardBenchNode, error) {
	o := obs.New()
	cache := servecache.New(budget)
	cache.Instrument(o)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("experiments: shard bench listener: %w", err)
	}
	srv := &http.Server{Handler: shard.NewNodeHandler(&shardBenchSource{h: h, cache: cache, store: store, key: key}, o)}
	go srv.Serve(ln)
	return &shardBenchNode{o: o, srv: srv, url: "http://" + ln.Addr().String()}, nil
}

// cacheCounts sums servecache hits and misses across the nodes' registries.
func cacheCounts(nodes []*shardBenchNode) (hits, misses int64) {
	for _, n := range nodes {
		snap := n.o.Metrics.Snapshot()
		hits += snap.Counters["servecache.hits"]
		misses += snap.Counters["servecache.misses"]
	}
	return hits, misses
}

// ShardSweep measures warm-cache read throughput of the shard tier as the
// node count grows. One WarpX artifact backs every configuration; each node
// gets a servecache budgeted at 40% of the artifact's decompressed bytes,
// so one node cannot hold the working set but three nodes together over-
// provision it. Per node count it starts real HTTP /planes nodes on
// loopback, routes a seeded uniform-random read workload (16 reads per
// plane, 4 concurrent workers, replication 1) through a shard.Router after
// one warming pass, and reports throughput plus the aggregate node-cache
// hit rate of the timed round.
//
// On a single-vCPU host the scaling is pure work elimination — more
// aggregate cache bytes mean fewer store reads and lossless decompressions
// — not CPU parallelism.
func ShardSweep(p Params, nodeCounts []int) ([]ShardPoint, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if len(nodeCounts) == 0 {
		return nil, fmt.Errorf("experiments: shard sweep has no node counts")
	}
	c, err := compressWarpX(p, "Jx", 1)
	if err != nil {
		return nil, err
	}
	// Serve from a store file, as cmd/serve's node role does: a cache miss
	// pays a ranged file read plus lossless decompression, which is the
	// work the growing aggregate cache eliminates.
	dir, err := os.MkdirTemp("", "pmgard-shard-")
	if err != nil {
		return nil, fmt.Errorf("experiments: shard sweep: %w", err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "jx.pmgd")
	if err := c.WriteFile(path); err != nil {
		return nil, err
	}
	h, st, err := core.OpenFile(path)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	store, err := core.NewPlaneStore(h, core.StoreSource{Store: st})
	if err != nil {
		return nil, err
	}
	var totalRaw int64
	for _, lv := range h.Levels {
		totalRaw += int64(lv.RawPlaneSize) * int64(h.Planes)
	}
	budget := totalRaw * 2 / 5
	if budget < 1 {
		budget = 1
	}
	points := make([]ShardPoint, 0, len(nodeCounts))
	for _, n := range nodeCounts {
		pt, err := shardRound(p, h, store, n, budget)
		if err != nil {
			return nil, err
		}
		points = append(points, pt)
	}
	for i := range points {
		points[i].Speedup = points[i].ReadsPerSec / points[0].ReadsPerSec
	}
	return points, nil
}

// shardRound runs one node-count configuration of the sweep.
func shardRound(p Params, h *core.Header, store *core.PlaneStore, n int, budget int64) (ShardPoint, error) {
	tmpl := servecache.Key{Codec: h.Codec(), Field: fmt.Sprintf("%s@%d", h.FieldName, h.Timestep)}
	nodes := make([]*shardBenchNode, 0, n)
	defer func() {
		for _, node := range nodes {
			node.srv.Close()
		}
	}()
	mapJSON := `{"nodes": [`
	for i := 0; i < n; i++ {
		node, err := startShardBenchNode(h, store, budget, tmpl)
		if err != nil {
			return ShardPoint{}, err
		}
		nodes = append(nodes, node)
		if i > 0 {
			mapJSON += ","
		}
		mapJSON += fmt.Sprintf(`{"name": "n%d", "url": %q}`, i, node.url)
	}
	mapJSON += `], "replication": 1}`
	m, err := shard.ParseMap([]byte(mapJSON))
	if err != nil {
		return ShardPoint{}, err
	}
	// Default transports keep only two idle connections per host; with more
	// concurrent workers than that, every extra request pays a TCP dial,
	// which would swamp the cache effect being measured.
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: shardWorkers, MaxIdleConns: n * shardWorkers}}
	defer client.CloseIdleConnections()
	r, err := shard.NewRouter(shard.RouterConfig{Map: m, Client: client, Obs: obs.New()})
	if err != nil {
		return ShardPoint{}, err
	}
	fc := r.FieldClient(h)

	keys := make([]servecache.Key, 0, len(h.Levels)*h.Planes)
	for level := range h.Levels {
		for plane := 0; plane < h.Planes; plane++ {
			k := tmpl
			k.Level, k.Plane = level, plane
			keys = append(keys, k)
		}
	}
	ctx := context.Background()
	// Warming pass: touch every plane once so the timed round measures the
	// steady state (each node's LRU holds whatever fits of its partition).
	for _, k := range keys {
		if _, _, err := fc.FetchPlaneCtx(ctx, k); err != nil {
			return ShardPoint{}, fmt.Errorf("experiments: shard warmup (%d,%d): %w", k.Level, k.Plane, err)
		}
	}
	hits0, misses0 := cacheCounts(nodes)

	rng := rand.New(rand.NewSource(p.Seed*1000 + int64(n)))
	reads := 16 * len(keys)
	workload := make([]servecache.Key, reads)
	for i := range workload {
		workload[i] = keys[rng.Intn(len(keys))]
	}
	errs := make([]error, shardWorkers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < shardWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < reads; i += shardWorkers {
				if _, _, err := fc.FetchPlaneCtx(ctx, workload[i]); err != nil && errs[w] == nil {
					errs[w] = err
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	for _, err := range errs {
		if err != nil {
			return ShardPoint{}, fmt.Errorf("experiments: shard timed round: %w", err)
		}
	}
	hits1, misses1 := cacheCounts(nodes)
	hits, misses := hits1-hits0, misses1-misses0
	var hitRate float64
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	if elapsed <= 0 {
		elapsed = 1e-9
	}
	return ShardPoint{
		Nodes:       n,
		Reads:       reads,
		Seconds:     elapsed,
		ReadsPerSec: float64(reads) / elapsed,
		HitRate:     hitRate,
	}, nil
}

// ExpShard is the exp-shard runner: the node-count sweep at 1, 2 and 3
// nodes, tabulated.
func ExpShard(p Params) ([]*Table, error) {
	points, err := ShardSweep(p, []int{1, 2, 3})
	if err != nil {
		return nil, err
	}
	return []*Table{ShardTable(points)}, nil
}

// ShardTable formats sweep points as the exp-shard table; cmd/bench reuses
// it when recording BENCH_shard.json so the printed table and the JSON
// record come from one run.
func ShardTable(points []ShardPoint) *Table {
	t := &Table{
		ID:    "exp-shard",
		Title: "Shard tier scaling: random plane reads through the router vs node count",
		Note: "One artifact, per-node cache budget 40% of its decompressed bytes, replication 1. " +
			"Throughput grows with node count because aggregate cache bytes grow — misses pay a " +
			"store read plus lossless decompression. On a single-vCPU host the gain is work " +
			"elimination, not parallelism.",
		Columns: []string{"nodes", "reads", "seconds", "reads_per_sec", "hit_rate", "speedup"},
	}
	for _, pt := range points {
		t.AddRow(pt.Nodes, pt.Reads, fmt.Sprintf("%.3f", pt.Seconds),
			fmt.Sprintf("%.0f", pt.ReadsPerSec), fmt.Sprintf("%.3f", pt.HitRate),
			fmt.Sprintf("%.2f", pt.Speedup))
	}
	return t
}
