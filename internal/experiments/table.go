// Package experiments regenerates every table and figure of the paper's
// evaluation section (§IV) from this reproduction's pipeline. Each
// experiment is a named runner that returns one or more printable tables;
// cmd/bench prints them and bench_test.go wraps them in testing.B
// benchmarks. DESIGN.md §3 maps experiment ids to paper artifacts.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Table is a printable experiment result: the series or matrix behind one
// paper figure or table.
type Table struct {
	// ID is the experiment id ("fig2", "tab2", ...).
	ID string
	// Title describes the artifact being reproduced.
	Title string
	// Note carries caveats (scale substitutions, training configs).
	Note string
	// Columns are the column headers.
	Columns []string
	// Rows hold formatted cells; each row has len(Columns) cells.
	Rows [][]string
}

// AddRow appends a row, formatting each value: floats in compact scientific
// notation, everything else via fmt.
func (t *Table) AddRow(vals ...any) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = formatFloat(x)
		case float32:
			row[i] = formatFloat(float64(x))
		case string:
			row[i] = x
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case v == 0:
		return "0"
	case av >= 0.01 && av < 100000:
		s := fmt.Sprintf("%.4f", v)
		s = strings.TrimRight(s, "0")
		return strings.TrimRight(s, ".")
	default:
		return fmt.Sprintf("%.3e", v)
	}
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "   %s\n", t.Note); err != nil {
			return err
		}
	}
	printRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := printRow(t.Columns); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := printRow(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := printRow(row); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV writes the table as CSV to w: a comment line with the title,
// the header row, then the data rows.
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s: %s\n", t.ID, t.Title); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// RunCSV executes one experiment by id and writes each resulting table as a
// CSV file under dir (created if needed), returning the file paths.
func RunCSV(id string, p Params, dir string) ([]string, error) {
	r, ok := Registry()[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	tables, err := r.Run(p)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", id, err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var paths []string
	for i, t := range tables {
		name := t.ID
		if len(tables) > 1 {
			name = fmt.Sprintf("%s_%d", t.ID, i)
		}
		path := filepath.Join(dir, name+".csv")
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		if err := t.WriteCSV(f); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}
