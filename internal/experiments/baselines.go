package experiments

import (
	"fmt"

	"pmgard/internal/core"
	"pmgard/internal/grid"
	"pmgard/internal/sim/warpx"
	"pmgard/internal/sz"
	"pmgard/internal/zfp"
)

// ExpBaselines quantifies the paper's §I motivation against real one-shot
// compressors: SZ-style (prediction-based) and ZFP-style (transform-based)
// bake the error bound in at compression time, so serving K different
// accuracy needs takes K archives, while the progressive store is written
// once and each reader fetches only a prefix. The last row totals the
// storage footprint needed to serve every bound in the sweep.
func ExpBaselines(p Params) ([]*Table, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	t := midTimestep(p)
	field, err := warpxField(warpx.DefaultConfig(p.WarpXDims...), "Jx", t)
	if err != nil {
		return nil, err
	}
	c, err := core.Compress(field, p.Compress, "Jx", t)
	if err != nil {
		return nil, err
	}
	h := &c.Header
	est := h.TheoryEstimator()

	table := &Table{
		ID:    "exp-baselines",
		Title: fmt.Sprintf("One-shot SZ/ZFP archives vs progressive retrieval (WarpX Jx, t=%d)", t),
		Note: fmt.Sprintf("progressive stores %d bytes once; SZ/ZFP need one archive per bound. All schemes verified to satisfy each bound.",
			h.TotalBytes()),
		Columns: []string{
			"rel_bound", "sz_bytes", "zfp_bytes", "prog_retrieved_bytes",
			"sz_err", "zfp_err", "prog_err",
		},
	}
	bounds := thinBounds(p.Bounds, 7)
	var szTotal, zfpTotal int64
	for _, rel := range bounds {
		tol := h.AbsTolerance(rel)
		if tol <= 0 {
			continue
		}
		szBlob, err := sz.Compress(field, tol)
		if err != nil {
			return nil, err
		}
		szRec, _, err := sz.Decompress(szBlob)
		if err != nil {
			return nil, err
		}
		zfpBlob, err := zfp.Compress(field, tol)
		if err != nil {
			return nil, err
		}
		zfpRec, _, err := zfp.Decompress(zfpBlob)
		if err != nil {
			return nil, err
		}
		rec, plan, err := core.RetrieveTolerance(h, c, est, tol)
		if err != nil {
			return nil, err
		}
		szTotal += int64(len(szBlob))
		zfpTotal += int64(len(zfpBlob))
		table.AddRow(rel,
			len(szBlob), len(zfpBlob), plan.Bytes,
			grid.MaxAbsDiff(field, szRec),
			grid.MaxAbsDiff(field, zfpRec),
			grid.MaxAbsDiff(field, rec))
	}
	table.AddRow("TOTAL-to-serve-all", szTotal, zfpTotal, h.TotalBytes(), "", "", "")
	return []*Table{table}, nil
}
