package experiments

import (
	"fmt"

	"pmgard/internal/core"
	"pmgard/internal/decompose"
	"pmgard/internal/dmgard"
	"pmgard/internal/grid"
	"pmgard/internal/lossless"
	"pmgard/internal/nn"
	"pmgard/internal/retrieval"
	"pmgard/internal/sim/warpx"
)

// AblateLoss compares D-MGARD trained under Huber (the paper's choice,
// §III-C), MSE and MAE, reporting the exact-hit and within-one-plane rates
// on held-out timesteps — the empirical argument behind Eq. 5.
func AblateLoss(p Params) ([]*Table, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	half := p.Steps / 2
	train, err := harvestRange(p, "Jx", warpxProvider(p, "Jx"), 0, half)
	if err != nil {
		return nil, err
	}
	test, err := harvestRange(p, "Jx", warpxProvider(p, "Jx"), half, p.Steps)
	if err != nil {
		return nil, err
	}
	table := &Table{
		ID:      "ablate-loss",
		Title:   "D-MGARD loss-function ablation (WarpX Jx, held-out timesteps)",
		Columns: []string{"loss", "exact_pct", "within1_pct", "worst_abs_err"},
	}
	for _, lossName := range []string{"huber", "mse", "mae"} {
		loss, err := nn.LossByName(lossName)
		if err != nil {
			return nil, err
		}
		cfg := p.DTrain
		cfg.Loss = loss
		m, err := trainD(train, p, cfg)
		if err != nil {
			return nil, err
		}
		exact, within1, worst, err := evalD(m, test)
		if err != nil {
			return nil, err
		}
		table.AddRow(lossName, exact, within1, worst)
	}
	return []*Table{table}, nil
}

// AblateChain compares the paper's chained multi-output regression against
// independent per-level MLPs (the baseline [22] argues against).
func AblateChain(p Params) ([]*Table, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	half := p.Steps / 2
	train, err := harvestRange(p, "Jx", warpxProvider(p, "Jx"), 0, half)
	if err != nil {
		return nil, err
	}
	test, err := harvestRange(p, "Jx", warpxProvider(p, "Jx"), half, p.Steps)
	if err != nil {
		return nil, err
	}
	table := &Table{
		ID:      "ablate-chain",
		Title:   "CMOR chaining vs independent per-level MLPs (WarpX Jx)",
		Columns: []string{"variant", "exact_pct", "within1_pct", "worst_abs_err"},
	}
	for _, variant := range []struct {
		name        string
		independent bool
	}{{"chained (CMOR)", false}, {"independent", true}} {
		cfg := p.DTrain
		cfg.Independent = variant.independent
		m, err := trainD(train, p, cfg)
		if err != nil {
			return nil, err
		}
		exact, within1, worst, err := evalD(m, test)
		if err != nil {
			return nil, err
		}
		table.AddRow(variant.name, exact, within1, worst)
	}
	return []*Table{table}, nil
}

// AblateUpdate compares the multilevel transform with and without the
// L2-projection-style update lifting step: coefficient decay, stored size
// and theory-controlled retrieval cost at a fixed tolerance.
func AblateUpdate(p Params) ([]*Table, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	t := midTimestep(p)
	field, err := warpxField(warpx.DefaultConfig(p.WarpXDims...), "Ex", t)
	if err != nil {
		return nil, err
	}
	table := &Table{
		ID:      "ablate-update",
		Title:   fmt.Sprintf("Transform update step ablation (WarpX Ex, t=%d, rel bound 1e-5)", t),
		Columns: []string{"variant", "theory_C", "stored_bytes", "retrieved_bytes", "achieved_err"},
	}
	for _, variant := range []struct {
		name   string
		update bool
	}{{"interpolation-only", false}, {"with L2 update", true}} {
		cfg := p.Compress
		cfg.Decompose = decompose.Options{Levels: cfg.Decompose.Levels, Update: variant.update, UpdateWeight: 0.25}
		if cfg.Decompose.Levels == 0 {
			cfg.Decompose.Levels = 5
		}
		c, err := core.Compress(field, cfg, "Ex", t)
		if err != nil {
			return nil, err
		}
		h := &c.Header
		tol := h.AbsTolerance(1e-5)
		rec, plan, err := core.RetrieveTolerance(h, c, h.TheoryEstimator(), tol)
		if err != nil {
			return nil, err
		}
		table.AddRow(variant.name, h.TheoryEstimator().C, h.TotalBytes(), plan.Bytes,
			grid.MaxAbsDiff(field, rec))
	}
	return []*Table{table}, nil
}

// AblateGreedy compares MGARD's greedy accuracy-efficiency plane order
// against a naive level-major order (fill the coarsest level completely,
// then the next) at equal theory-estimated error.
func AblateGreedy(p Params) ([]*Table, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	t := midTimestep(p)
	c, err := compressWarpX(p, "Jx", t)
	if err != nil {
		return nil, err
	}
	h := &c.Header
	infos := h.LevelInfos()
	est := h.TheoryEstimator()
	table := &Table{
		ID:      "ablate-greedy",
		Title:   fmt.Sprintf("Greedy accuracy-efficiency vs level-major retrieval order (WarpX Jx, t=%d)", t),
		Columns: []string{"rel_bound", "greedy_bytes", "levelmajor_bytes", "greedy_saving_pct"},
	}
	for _, rel := range thinBounds(p.Bounds, 7) {
		tol := h.AbsTolerance(rel)
		if tol <= 0 {
			continue
		}
		greedy, err := retrieval.GreedyPlan(infos, est, tol)
		if err != nil {
			return nil, err
		}
		lm, err := levelMajorPlan(infos, est, tol)
		if err != nil {
			return nil, err
		}
		saving := 0.0
		if lm.Bytes > 0 {
			saving = 100 * float64(lm.Bytes-greedy.Bytes) / float64(lm.Bytes)
		}
		table.AddRow(rel, greedy.Bytes, lm.Bytes, saving)
	}
	return []*Table{table}, nil
}

// levelMajorPlan fills bit-planes strictly level by level, coarsest first,
// until the estimator clears the tolerance.
func levelMajorPlan(infos []retrieval.LevelInfo, est retrieval.ErrorEstimator, tol float64) (retrieval.Plan, error) {
	planes := make([]int, len(infos))
	errs := make([]float64, len(infos))
	for l, li := range infos {
		errs[l] = li.ErrMatrix[0]
	}
	for l := range infos {
		for b := 1; b <= len(infos[l].PlaneSizes); b++ {
			if est.Estimate(errs) <= tol {
				break
			}
			planes[l] = b
			errs[l] = infos[l].ErrMatrix[b]
		}
	}
	plan, err := retrieval.PlanForPlanes(infos, planes)
	if err != nil {
		return retrieval.Plan{}, err
	}
	plan.EstimatedError = est.Estimate(errs)
	return plan, nil
}

// AblateCodec compares the lossless stage choices: stored footprint and
// retrieval cost at a fixed tolerance.
func AblateCodec(p Params) ([]*Table, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	t := midTimestep(p)
	field, err := warpxField(warpx.DefaultConfig(p.WarpXDims...), "Jx", t)
	if err != nil {
		return nil, err
	}
	table := &Table{
		ID:      "ablate-codec",
		Title:   fmt.Sprintf("Lossless codec ablation (WarpX Jx, t=%d, rel bound 1e-5)", t),
		Columns: []string{"codec", "stored_bytes", "retrieved_bytes", "ratio_vs_raw"},
	}
	var rawStored int64
	for _, codec := range []lossless.Codec{lossless.Raw(), lossless.RLE(), lossless.Huffman(), lossless.Deflate()} {
		cfg := p.Compress
		cfg.Codec = codec
		c, err := core.Compress(field, cfg, "Jx", t)
		if err != nil {
			return nil, err
		}
		h := &c.Header
		tol := h.AbsTolerance(1e-5)
		_, plan, err := core.RetrieveTolerance(h, c, h.TheoryEstimator(), tol)
		if err != nil {
			return nil, err
		}
		if codec.Name() == "raw" {
			rawStored = h.TotalBytes()
		}
		ratio := 0.0
		if rawStored > 0 {
			ratio = float64(h.TotalBytes()) / float64(rawStored)
		}
		table.AddRow(codec.Name(), h.TotalBytes(), plan.Bytes, ratio)
	}
	return []*Table{table}, nil
}

// trainD trains a D-MGARD model from harvested records with an
// experiment-specific config.
func trainD(records []dmgard.Record, p Params, cfg dmgard.Config) (*dmgard.Model, error) {
	return dmgard.Train(records, p.Compress.Planes, cfg)
}

// evalD reports the exact-hit %, within-one-plane % and worst absolute
// plane error of a model over records.
func evalD(m *dmgard.Model, records []dmgard.Record) (exact, within1, worst float64, err error) {
	total := 0
	exactN, within1N := 0, 0
	for _, r := range records {
		pred, perr := m.Predict(r.Features, r.AchievedErr)
		if perr != nil {
			return 0, 0, 0, perr
		}
		for l := range pred {
			d := pred[l] - r.Planes[l]
			if d < 0 {
				d = -d
			}
			if d == 0 {
				exactN++
			}
			if d <= 1 {
				within1N++
			}
			if float64(d) > worst {
				worst = float64(d)
			}
			total++
		}
	}
	if total == 0 {
		return 0, 0, 0, fmt.Errorf("experiments: no evaluation records")
	}
	return 100 * float64(exactN) / float64(total), 100 * float64(within1N) / float64(total), worst, nil
}
