package experiments

import (
	"fmt"
	"runtime"
	"time"

	"pmgard/internal/core"
	"pmgard/internal/sim/warpx"
	"pmgard/internal/storage"
)

// ParallelPoint is one GOMAXPROCS measurement of the multi-core sweep:
// the streaming refactor pipeline and the parallel retrieval path timed
// with both the worker count and the scheduler's processor count pinned
// to Procs, so the point measures real parallelism rather than goroutine
// interleaving on one core.
type ParallelPoint struct {
	// Procs is the GOMAXPROCS value and pipeline worker count.
	Procs int `json:"procs"`
	// RefactorNs is the best-of-reps wall time of one full streaming
	// refactor (decompose + encode + deflate + segment write).
	RefactorNs int64 `json:"refactor_ns"`
	// RefactorMBps is the raw field bytes over that wall time.
	RefactorMBps float64 `json:"refactor_mb_per_s"`
	// RefactorSpeedup is relative to the sweep's first point.
	RefactorSpeedup float64 `json:"refactor_speedup"`
	// RetrieveNs is the best-of-reps wall time of a tolerance retrieval.
	RetrieveNs int64 `json:"retrieve_ns"`
	// RetrieveSpeedup is relative to the sweep's first point.
	RetrieveSpeedup float64 `json:"retrieve_speedup"`
}

// discardSink drops segments: the refactor timing measures the pipeline,
// not the disk.
type discardSink struct{}

func (discardSink) WriteSegment(storage.SegmentID, []byte) error { return nil }

// ParallelSweep times the streaming compression pipeline and the parallel
// retrieval path at each GOMAXPROCS setting, best of reps runs per point.
// The caller's GOMAXPROCS is restored before returning. Output bytes are
// bit-identical at every point (the golden equivalence tests enforce it);
// only wall clock moves.
func ParallelSweep(p Params, procs []int, reps int) ([]ParallelPoint, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if len(procs) == 0 {
		return nil, fmt.Errorf("experiments: parallel sweep has no proc counts")
	}
	if reps < 1 {
		reps = 1
	}
	cfg := warpx.DefaultConfig(p.WarpXDims...)
	field, err := warpxField(cfg, "Jx", 1)
	if err != nil {
		return nil, err
	}
	// One reference artifact for the retrieval timings, compressed before
	// any GOMAXPROCS pinning.
	ref, err := core.Compress(field, p.Compress, "Jx", 1)
	if err != nil {
		return nil, err
	}
	tol := ref.Header.AbsTolerance(1e-5)

	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	rawBytes := float64(8 * field.Len())
	var points []ParallelPoint
	for _, pr := range procs {
		if pr < 1 {
			return nil, fmt.Errorf("experiments: parallel sweep proc count %d < 1", pr)
		}
		runtime.GOMAXPROCS(pr)
		ccfg := p.Compress
		ccfg.Parallelism = pr

		bestC := time.Duration(1<<63 - 1)
		for i := 0; i < reps; i++ {
			start := time.Now()
			if _, err := core.CompressTo(field, ccfg, "Jx", 1, discardSink{}); err != nil {
				return nil, err
			}
			if d := time.Since(start); d < bestC {
				bestC = d
			}
		}

		bestR := time.Duration(1<<63 - 1)
		for i := 0; i < reps; i++ {
			start := time.Now()
			if _, _, err := core.RetrieveToleranceWorkers(&ref.Header, ref,
				ref.Header.TheoryEstimator(), tol, pr); err != nil {
				return nil, err
			}
			if d := time.Since(start); d < bestR {
				bestR = d
			}
		}

		pt := ParallelPoint{
			Procs:        pr,
			RefactorNs:   bestC.Nanoseconds(),
			RefactorMBps: rawBytes / 1e6 / bestC.Seconds(),
			RetrieveNs:   bestR.Nanoseconds(),
		}
		if len(points) == 0 {
			pt.RefactorSpeedup, pt.RetrieveSpeedup = 1, 1
		} else {
			pt.RefactorSpeedup = float64(points[0].RefactorNs) / float64(pt.RefactorNs)
			pt.RetrieveSpeedup = float64(points[0].RetrieveNs) / float64(pt.RetrieveNs)
		}
		points = append(points, pt)
	}
	return points, nil
}

// ParallelTable renders the sweep as a printable table.
func ParallelTable(points []ParallelPoint) *Table {
	t := &Table{
		ID:    "exp-parallel",
		Title: "Multi-core scaling: streaming refactor pipeline and parallel retrieval vs GOMAXPROCS",
		Note: "Each point pins GOMAXPROCS and the pipeline worker count together; output bytes are " +
			"bit-identical at every point. On a single-vCPU host every point shares one core and " +
			"speedups hover near 1.",
		Columns: []string{"procs", "refactor_ms", "refactor_mb_per_s", "refactor_speedup", "retrieve_ms", "retrieve_speedup"},
	}
	for _, pt := range points {
		t.AddRow(pt.Procs,
			fmt.Sprintf("%.2f", float64(pt.RefactorNs)/1e6),
			fmt.Sprintf("%.2f", pt.RefactorMBps),
			fmt.Sprintf("%.2f", pt.RefactorSpeedup),
			fmt.Sprintf("%.2f", float64(pt.RetrieveNs)/1e6),
			fmt.Sprintf("%.2f", pt.RetrieveSpeedup))
	}
	return t
}
