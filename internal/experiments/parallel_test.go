package experiments

import (
	"runtime"
	"testing"
)

// TestParallelSweepQuick runs the GOMAXPROCS sweep at smoke scale and
// checks its invariants: GOMAXPROCS is restored, points line up with the
// requested procs, and the first point is the speedup baseline.
func TestParallelSweepQuick(t *testing.T) {
	before := runtime.GOMAXPROCS(0)
	points, err := ParallelSweep(Quick(), []int{1, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if after := runtime.GOMAXPROCS(0); after != before {
		t.Fatalf("GOMAXPROCS left at %d, was %d", after, before)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points, want 2", len(points))
	}
	for i, pr := range []int{1, 2} {
		if points[i].Procs != pr {
			t.Fatalf("point %d has procs %d, want %d", i, points[i].Procs, pr)
		}
		if points[i].RefactorNs <= 0 || points[i].RetrieveNs <= 0 {
			t.Fatalf("point %d has non-positive timings: %+v", i, points[i])
		}
		if points[i].RefactorMBps <= 0 {
			t.Fatalf("point %d has non-positive throughput", i)
		}
	}
	if points[0].RefactorSpeedup != 1 || points[0].RetrieveSpeedup != 1 {
		t.Fatalf("baseline speedups not 1: %+v", points[0])
	}
	if points[1].RefactorSpeedup <= 0 {
		t.Fatalf("point 1 speedup %g", points[1].RefactorSpeedup)
	}
	tab := ParallelTable(points)
	if len(tab.Rows) != 2 || len(tab.Columns) != 6 {
		t.Fatalf("table shape %dx%d", len(tab.Rows), len(tab.Columns))
	}

	if _, err := ParallelSweep(Quick(), nil, 1); err == nil {
		t.Fatal("empty proc list accepted")
	}
	if _, err := ParallelSweep(Quick(), []int{0}, 1); err == nil {
		t.Fatal("proc count 0 accepted")
	}
}
