package emgard

import (
	"fmt"

	"pmgard/internal/core"
	"pmgard/internal/grid"
)

// Harvest runs the theory-controlled pipeline on one field across a sweep
// of relative error bounds and emits one sample per bound: the header's
// pooled level summaries, the per-level truncation errors of the chosen
// plan, and the measured reconstruction error. These are the (input,
// target) pairs E-MGARD trains on.
func Harvest(field *grid.Tensor, fieldName string, timestep int, cfg core.Config, relBounds []float64) ([]Sample, *core.Compressed, error) {
	if len(relBounds) == 0 {
		return nil, nil, fmt.Errorf("emgard: no error bounds to sweep")
	}
	c, err := core.Compress(field, cfg, fieldName, timestep)
	if err != nil {
		return nil, nil, err
	}
	h := &c.Header
	est := h.TheoryEstimator()
	samples := make([]Sample, 0, len(relBounds))
	for _, rel := range relBounds {
		if rel <= 0 {
			return nil, nil, fmt.Errorf("emgard: non-positive relative bound %g", rel)
		}
		tol := h.AbsTolerance(rel)
		if tol <= 0 {
			continue
		}
		rec, plan, err := core.RetrieveTolerance(h, c, est, tol)
		if err != nil {
			return nil, nil, fmt.Errorf("emgard: sweep bound %g: %w", rel, err)
		}
		levelErrs := make([]float64, len(h.Levels))
		for l, lm := range h.Levels {
			levelErrs[l] = lm.ErrMatrix[plan.Planes[l]]
		}
		samples = append(samples, Sample{
			Pools:     h.LevelPools,
			LevelErrs: levelErrs,
			TrueErr:   grid.MaxAbsDiff(field, rec),
		})
	}
	return samples, c, nil
}
