package emgard

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"pmgard/internal/core"
	"pmgard/internal/grid"
	"pmgard/internal/retrieval"
	"pmgard/internal/sim/warpx"
)

// syntheticSamples fabricates samples whose true error is a fixed per-level
// weighted sum of the level errors, so a correct implementation can recover
// the weights.
func syntheticSamples(n int, weights []float64, seed int64) []Sample {
	rng := rand.New(rand.NewSource(seed))
	levels := len(weights)
	const poolSize = 8
	samples := make([]Sample, n)
	for i := range samples {
		pools := make([][]float64, levels)
		errs := make([]float64, levels)
		trueErr := 0.0
		for l := 0; l < levels; l++ {
			pools[l] = make([]float64, poolSize)
			scale := math.Pow(10, -float64(l))
			for j := range pools[l] {
				pools[l][j] = scale * (0.5 + rng.Float64())
			}
			errs[l] = scale * math.Pow(10, -4*rng.Float64())
			trueErr += weights[l] * errs[l]
		}
		samples[i] = Sample{Pools: pools, LevelErrs: errs, TrueErr: trueErr}
	}
	return samples
}

func quickConfig() Config {
	return Config{Hidden: []int{16, 8}, Epochs: 150, BatchSize: 32, LR: 5e-3, Seed: 1, Margin: 1}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, quickConfig()); err == nil {
		t.Fatal("empty samples accepted")
	}
	s := syntheticSamples(10, []float64{0.5, 0.2}, 1)
	bad := quickConfig()
	bad.Epochs = 0
	if _, err := Train(s, bad); err == nil {
		t.Fatal("zero epochs accepted")
	}
	ragged := syntheticSamples(10, []float64{0.5, 0.2}, 1)
	ragged[2].Pools[1] = ragged[2].Pools[1][:3]
	if _, err := Train(ragged, quickConfig()); err == nil {
		t.Fatal("ragged pools accepted")
	}
	allZero := syntheticSamples(5, []float64{0.5}, 1)
	for i := range allZero {
		allZero[i].TrueErr = 0
	}
	if _, err := Train(allZero, quickConfig()); err == nil {
		t.Fatal("all-zero-error samples accepted")
	}
}

func TestTrainRecoversWeights(t *testing.T) {
	weights := []float64{0.8, 0.3, 0.05}
	m, err := Train(syntheticSamples(500, weights, 2), quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate prediction quality on held-out samples: the predicted error
	// Σ C_l·Err_l should track the true error within a small factor.
	test := syntheticSamples(100, weights, 3)
	good := 0
	for _, s := range test {
		cs, err := m.Constants(s.Pools)
		if err != nil {
			t.Fatal(err)
		}
		pred := 0.0
		for l := range cs {
			pred += cs[l] * s.LevelErrs[l]
		}
		ratio := pred / s.TrueErr
		if ratio > 1.0/3 && ratio < 3 {
			good++
		}
	}
	if good < 80 {
		t.Fatalf("only %d/100 predictions within 3x of truth", good)
	}
}

func TestConstantsPositive(t *testing.T) {
	m, err := Train(syntheticSamples(100, []float64{0.5, 0.1}, 4), quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := syntheticSamples(1, []float64{0.5, 0.1}, 5)[0]
	cs, err := m.Constants(s.Pools)
	if err != nil {
		t.Fatal(err)
	}
	for l, c := range cs {
		if c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			t.Fatalf("C[%d] = %g, want positive finite", l, c)
		}
	}
}

func TestConstantsValidation(t *testing.T) {
	m, err := Train(syntheticSamples(50, []float64{0.5, 0.1}, 6), quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Constants([][]float64{{1}}); err == nil {
		t.Fatal("wrong level count accepted")
	}
	if _, err := m.Constants([][]float64{{1, 2}, {3, 4}}); err == nil {
		t.Fatal("wrong pool size accepted")
	}
}

func TestMarginScalesConstants(t *testing.T) {
	samples := syntheticSamples(100, []float64{0.5, 0.1}, 7)
	cfg := quickConfig()
	m1, err := Train(samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Margin = 2
	m2, err := Train(samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := samples[0]
	c1, _ := m1.Constants(s.Pools)
	c2, _ := m2.Constants(s.Pools)
	for l := range c1 {
		if math.Abs(c2[l]-2*c1[l]) > 1e-9*c1[l] {
			t.Fatalf("margin 2 gave C[%d] = %g, want %g", l, c2[l], 2*c1[l])
		}
	}
}

func TestEstimatorIntegratesWithGreedy(t *testing.T) {
	weights := []float64{0.6, 0.2}
	m, err := Train(syntheticSamples(200, weights, 8), quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := syntheticSamples(1, weights, 9)[0]
	est, err := m.Estimator(s.Pools)
	if err != nil {
		t.Fatal(err)
	}
	if got := est.Estimate(s.LevelErrs); got <= 0 {
		t.Fatalf("estimator returned %g", got)
	}
	var _ retrieval.ErrorEstimator = est
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m, err := Train(syntheticSamples(80, []float64{0.5, 0.1}, 10), quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "emgard.gob")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	s := syntheticSamples(1, []float64{0.5, 0.1}, 11)[0]
	want, _ := m.Constants(s.Pools)
	got, err := loaded.Constants(s.Pools)
	if err != nil {
		t.Fatal(err)
	}
	for l := range want {
		if want[l] != got[l] {
			t.Fatalf("level %d: loaded %g, original %g", l, got[l], want[l])
		}
	}
}

func TestHarvestAndTrainOnRealPipeline(t *testing.T) {
	// End-to-end: harvest from a real compression sweep, train, and check
	// that E-MGARD control fetches no more than theory control at equal
	// tolerance while respecting the tolerance reasonably.
	cfg := warpx.DefaultConfig(17, 9, 9)
	field, err := cfg.Field("Ex", 16)
	if err != nil {
		t.Fatal(err)
	}
	bounds := []float64{1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 3e-7, 3e-5, 3e-3, 3e-2, 3e-1}
	samples, c, err := Harvest(field, "Ex", 16, core.DefaultConfig(), bounds)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("no samples harvested")
	}
	m, err := Train(samples, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	h := &c.Header
	est, err := m.Estimator(h.LevelPools)
	if err != nil {
		t.Fatal(err)
	}
	theory := h.TheoryEstimator()
	tol := h.AbsTolerance(1e-4)
	_, planTheory, err := core.RetrieveTolerance(h, c, theory, tol)
	if err != nil {
		t.Fatal(err)
	}
	recE, planE, err := core.RetrieveTolerance(h, c, est, tol)
	if err != nil {
		t.Fatal(err)
	}
	if planE.Bytes > planTheory.Bytes {
		t.Fatalf("E-MGARD fetched %d bytes > theory %d", planE.Bytes, planTheory.Bytes)
	}
	// The achieved error should stay within an order of magnitude of the
	// tolerance (the paper concedes occasional overshoot, §IV-E).
	if achieved := grid.MaxAbsDiff(field, recE); achieved > 10*tol {
		t.Fatalf("E-MGARD achieved %g, tolerance %g", achieved, tol)
	}
}
