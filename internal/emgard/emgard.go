// Package emgard implements E-MGARD (§III-D): per-coefficient-level encoder
// networks that learn the error-mapping constants C_l of Eq. 7,
//
//	err ≤ Σ_l C_l · Err[l][b_l],
//
// replacing the single pessimistic mesh-derived constant of Eq. 6. The
// greedy bit-plane retriever is unchanged — only the estimate it stops on
// becomes far tighter, which is where the 20–80% retrieval-size savings
// come from.
//
// Each level has its own encoder MLP (the paper's Enc block, Fig. 8; ReLU
// activations, funnel-shaped hidden layers). Its input is the pooled
// summary of that level's coefficients recorded in the compression header,
// so prediction needs no payload reads. The scalar output is exponentiated
// to keep C_l positive across orders of magnitude. Training is end-to-end
// through the Eq. 7 sum: the loss compares log(Σ C_l·Err_l) against the
// log of the measured reconstruction error, and the gradient is routed back
// into each encoder through its own C_l term.
package emgard

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"math/rand"
	"os"

	"pmgard/internal/nn"
	"pmgard/internal/obs"
	"pmgard/internal/retrieval"
)

// Sample is one training example: the per-level pooled coefficient
// summaries of a dataset, the per-level truncation errors of one retrieval
// plan, and the measured reconstruction error of that plan.
type Sample struct {
	// Pools[l] is the pooled coefficient summary of level l (from
	// core.Header.LevelPools).
	Pools [][]float64
	// LevelErrs[l] is Err[l][b_l] for the plan.
	LevelErrs []float64
	// TrueErr is the measured max abs reconstruction error of the plan.
	TrueErr float64
}

// Config holds the training hyperparameters.
type Config struct {
	// Hidden lists the encoder's hidden widths. The paper's Enc block is
	// 2048-512-128-8; the default here is the same funnel scaled to the
	// reproduction's pooled input size.
	Hidden []int
	// Epochs, BatchSize and LR configure the optimizer (§IV-A4).
	Epochs    int
	BatchSize int
	LR        float64
	// Seed makes initialization and shuffling reproducible.
	Seed int64
	// Margin scales the learned constants at inference; 1 is the
	// paper-faithful setting, >1 trades some savings for fewer error-bound
	// overshoots.
	Margin float64
	// UnderPenalty multiplies the loss gradient when the model
	// under-estimates the true error (the dangerous direction: an
	// under-estimate makes the retriever stop early and overshoot the
	// user's bound). 1 is symmetric; the default of 2 biases the model
	// mildly conservative, matching the paper's observation that E-MGARD
	// errors land below the bound for most cases (§IV-E).
	UnderPenalty float64
	// Obs records training telemetry (per-epoch log-loss gauge, epoch
	// counters, an emgard.train span) when set; nil disables it and never
	// changes the trained weights.
	Obs *obs.Obs
}

// DefaultConfig returns a CPU-scale version of the paper's E-MGARD
// training setup.
func DefaultConfig() Config {
	return Config{
		Hidden:       []int{64, 32, 8},
		Epochs:       200,
		BatchSize:    64,
		LR:           2e-3,
		Seed:         1,
		Margin:       1,
		UnderPenalty: 2,
	}
}

// Model is a trained E-MGARD estimator factory.
type Model struct {
	levels   int
	poolSize int
	margin   float64
	scalers  []*nn.Scaler
	nets     []*nn.Sequential
	// outLo and outHi bound each level's raw network output to the range
	// seen on the training set, so out-of-distribution pools cannot make
	// exp() extrapolate to absurd constants.
	outLo, outHi []float64
}

// Levels returns the number of coefficient levels the model was trained on.
func (m *Model) Levels() int { return m.levels }

// logPool log-scales a pooled magnitude vector for network input.
func logPool(pool []float64) []float64 {
	out := make([]float64, len(pool))
	for i, v := range pool {
		out[i] = math.Log10(v + 1e-300)
	}
	return out
}

// Train fits per-level encoders to the samples. All samples must agree on
// the level count and pool size.
func Train(samples []Sample, cfg Config) (*Model, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("emgard: no training samples")
	}
	if cfg.Epochs < 1 || cfg.BatchSize < 1 || cfg.LR <= 0 {
		return nil, fmt.Errorf("emgard: invalid training config %+v", cfg)
	}
	if cfg.Margin == 0 {
		cfg.Margin = 1
	}
	if cfg.UnderPenalty == 0 {
		cfg.UnderPenalty = 1
	}
	levels := len(samples[0].Pools)
	if levels == 0 {
		return nil, fmt.Errorf("emgard: samples have no levels")
	}
	poolSize := len(samples[0].Pools[0])
	if poolSize == 0 {
		return nil, fmt.Errorf("emgard: empty pooled summaries")
	}
	// Keep only usable samples and validate shapes.
	var usable []Sample
	for i, s := range samples {
		if len(s.Pools) != levels || len(s.LevelErrs) != levels {
			return nil, fmt.Errorf("emgard: sample %d shape mismatch", i)
		}
		for l := range s.Pools {
			if len(s.Pools[l]) != poolSize {
				return nil, fmt.Errorf("emgard: sample %d level %d pool size %d, want %d",
					i, l, len(s.Pools[l]), poolSize)
			}
		}
		if s.TrueErr <= 0 || math.IsNaN(s.TrueErr) {
			continue // exact reconstructions carry no signal
		}
		sum := 0.0
		for _, e := range s.LevelErrs {
			sum += e
		}
		if sum == 0 {
			continue
		}
		usable = append(usable, s)
	}
	if len(usable) == 0 {
		return nil, fmt.Errorf("emgard: no usable samples (all errors zero)")
	}

	m := &Model{levels: levels, poolSize: poolSize, margin: cfg.Margin}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Per-level input scalers fitted on the log-pooled inputs.
	for l := 0; l < levels; l++ {
		x := nn.NewMat(len(usable), poolSize)
		for i, s := range usable {
			copy(x.Row(i), logPool(s.Pools[l]))
		}
		m.scalers = append(m.scalers, nn.FitScaler(x))
		m.nets = append(m.nets, nn.MLP(poolSize, cfg.Hidden, 1, 0, rng)) // alpha 0 = ReLU
	}

	var params []*nn.Param
	for _, net := range m.nets {
		params = append(params, net.Params()...)
	}
	opt := nn.NewAdam(cfg.LR)
	order := make([]int, len(usable))
	for i := range order {
		order[i] = i
	}

	o := cfg.Obs
	trainSpan := o.Span("emgard.train", nil)
	trainSpan.SetAttr("levels", levels)
	trainSpan.SetAttr("samples", len(usable))
	defer trainSpan.End()
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		epochLoss, nLoss := 0.0, 0
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			batch := order[start:end]
			bs := len(batch)

			// Forward every level's encoder on the batch.
			ins := make([]*nn.Mat, levels)
			outs := make([]*nn.Mat, levels)
			for l := 0; l < levels; l++ {
				x := nn.NewMat(bs, poolSize)
				for i, ix := range batch {
					copy(x.Row(i), logPool(usable[ix].Pools[l]))
				}
				ins[l] = m.scalers[l].Transform(x)
				outs[l] = m.nets[l].Forward(ins[l])
			}

			// pred_i = Σ_l exp(out_il)·Err_il; loss = mean (log pred - log true)².
			grads := make([]*nn.Mat, levels)
			for l := range grads {
				grads[l] = nn.NewMat(bs, 1)
			}
			for i, ix := range batch {
				s := usable[ix]
				pred := 0.0
				cs := make([]float64, levels)
				for l := 0; l < levels; l++ {
					cs[l] = math.Exp(clip(outs[l].At(i, 0), -30, 30))
					pred += cs[l] * s.LevelErrs[l]
				}
				if pred <= 0 {
					continue
				}
				diff := math.Log(pred) - math.Log(s.TrueErr)
				epochLoss += diff * diff
				nLoss++
				dLdPred := 2 * diff / pred / float64(bs)
				if diff < 0 {
					// Under-estimate: penalize harder so the retriever
					// rarely stops before the bound is truly met.
					dLdPred *= cfg.UnderPenalty
				}
				for l := 0; l < levels; l++ {
					grads[l].Set(i, 0, dLdPred*s.LevelErrs[l]*cs[l])
				}
			}
			nn.ZeroGrad(params)
			for l := 0; l < levels; l++ {
				m.nets[l].Backward(grads[l])
			}
			opt.Step(params)
		}
		if o != nil {
			o.Counter("emgard.epochs").Add(1)
			o.Gauge("emgard.epoch").Set(float64(epoch))
			if nLoss > 0 {
				o.Gauge("emgard.train_loss").Set(epochLoss / float64(nLoss))
			}
		}
	}
	// Record the training-set output range per level for inference-time
	// clamping.
	m.outLo = make([]float64, levels)
	m.outHi = make([]float64, levels)
	for l := 0; l < levels; l++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, s := range usable {
			row := logPool(s.Pools[l])
			m.scalers[l].TransformRow(row)
			x := &nn.Mat{Rows: 1, Cols: len(row), Data: row}
			out := m.nets[l].Forward(x).At(0, 0)
			if out < lo {
				lo = out
			}
			if out > hi {
				hi = out
			}
		}
		m.outLo[l], m.outHi[l] = lo, hi
	}
	return m, nil
}

func clip(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Constants predicts the per-level mapping constants for a dataset whose
// header carries the given pooled summaries.
func (m *Model) Constants(pools [][]float64) ([]float64, error) {
	if len(pools) != m.levels {
		return nil, fmt.Errorf("emgard: got %d levels, model trained on %d", len(pools), m.levels)
	}
	cs := make([]float64, m.levels)
	for l, pool := range pools {
		if len(pool) != m.poolSize {
			return nil, fmt.Errorf("emgard: level %d pool size %d, model trained on %d",
				l, len(pool), m.poolSize)
		}
		row := logPool(pool)
		m.scalers[l].TransformRow(row)
		for i, v := range row {
			row[i] = clip(v, -4, 4) // winsorize drifting inputs
		}
		x := &nn.Mat{Rows: 1, Cols: len(row), Data: row}
		out := clip(m.nets[l].Forward(x).At(0, 0), -30, 30)
		if m.outLo != nil {
			out = clip(out, m.outLo[l], m.outHi[l])
		}
		cs[l] = math.Exp(out) * m.margin
	}
	return cs, nil
}

// Estimator builds the Eq. 7 error estimator for a dataset: the drop-in
// replacement for core.Header.TheoryEstimator in the greedy retriever.
func (m *Model) Estimator(pools [][]float64) (retrieval.PerLevelEstimator, error) {
	cs, err := m.Constants(pools)
	if err != nil {
		return retrieval.PerLevelEstimator{}, err
	}
	return retrieval.PerLevelEstimator{C: cs}, nil
}

// modelFile is the gob representation of a trained model.
type modelFile struct {
	Version      int
	Levels       int
	PoolSize     int
	Margin       float64
	OutLo, OutHi []float64
	Means        [][]float64
	Stds         [][]float64
	Nets         [][]byte
}

// Save writes the model to path.
func (m *Model) Save(path string) error {
	mf := modelFile{
		Version:  1,
		Levels:   m.levels,
		PoolSize: m.poolSize,
		Margin:   m.margin,
		OutLo:    m.outLo,
		OutHi:    m.outHi,
	}
	for l := 0; l < m.levels; l++ {
		mf.Means = append(mf.Means, m.scalers[l].Mean)
		mf.Stds = append(mf.Stds, m.scalers[l].Std)
		var buf bytes.Buffer
		if err := nn.Save(&buf, m.nets[l]); err != nil {
			return fmt.Errorf("emgard: save level %d: %w", l, err)
		}
		mf.Nets = append(mf.Nets, buf.Bytes())
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("emgard: create %s: %w", path, err)
	}
	if err := gob.NewEncoder(f).Encode(mf); err != nil {
		f.Close()
		return fmt.Errorf("emgard: encode: %w", err)
	}
	return f.Close()
}

// Load reads a model written by Save.
func Load(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("emgard: open %s: %w", path, err)
	}
	defer f.Close()
	var mf modelFile
	if err := gob.NewDecoder(f).Decode(&mf); err != nil {
		return nil, fmt.Errorf("emgard: decode: %w", err)
	}
	if mf.Version != 1 {
		return nil, fmt.Errorf("emgard: unsupported model version %d", mf.Version)
	}
	if mf.Levels < 1 || len(mf.Nets) != mf.Levels || len(mf.Means) != mf.Levels || len(mf.Stds) != mf.Levels {
		return nil, fmt.Errorf("emgard: corrupt model file")
	}
	m := &Model{
		levels:   mf.Levels,
		poolSize: mf.PoolSize,
		margin:   mf.Margin,
		outLo:    mf.OutLo,
		outHi:    mf.OutHi,
	}
	for l := 0; l < mf.Levels; l++ {
		m.scalers = append(m.scalers, &nn.Scaler{Mean: mf.Means[l], Std: mf.Stds[l]})
		net, err := nn.Load(bytes.NewReader(mf.Nets[l]))
		if err != nil {
			return nil, fmt.Errorf("emgard: load level %d: %w", l, err)
		}
		m.nets = append(m.nets, net)
	}
	return m, nil
}
