package lossless

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

var allCodecs = []Codec{Deflate(), RLE(), Raw(), Huffman()}

func TestByName(t *testing.T) {
	for _, name := range []string{"deflate", "rle", "raw", "huffman"} {
		c, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if c.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, c.Name())
		}
	}
	if _, err := ByName("zstd"); err == nil {
		t.Fatal("ByName(zstd) should fail — substituted by deflate")
	}
}

func TestRoundTripAllCodecs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	inputs := [][]byte{
		nil,
		{},
		{0},
		{255},
		bytes.Repeat([]byte{0xAA}, 1000),
		[]byte("hello progressive retrieval"),
	}
	random := make([]byte, 4096)
	rng.Read(random)
	inputs = append(inputs, random)

	for _, c := range allCodecs {
		for i, in := range inputs {
			enc, err := c.Compress(in)
			if err != nil {
				t.Fatalf("%s compress input %d: %v", c.Name(), i, err)
			}
			dec, err := c.Decompress(enc, len(in))
			if err != nil {
				t.Fatalf("%s decompress input %d: %v", c.Name(), i, err)
			}
			if !bytes.Equal(dec, in) {
				t.Fatalf("%s round trip failed on input %d", c.Name(), i)
			}
		}
	}
}

func TestRoundTripQuick(t *testing.T) {
	for _, c := range allCodecs {
		c := c
		f := func(in []byte) bool {
			enc, err := c.Compress(in)
			if err != nil {
				return false
			}
			dec, err := c.Decompress(enc, len(in))
			return err == nil && bytes.Equal(dec, in)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
	}
}

func TestCompressibleDataShrinks(t *testing.T) {
	in := bytes.Repeat([]byte{0x00}, 8192)
	for _, c := range []Codec{Deflate(), RLE()} {
		enc, err := c.Compress(in)
		if err != nil {
			t.Fatal(err)
		}
		if len(enc) >= len(in)/10 {
			t.Fatalf("%s: constant input compressed to %d of %d bytes", c.Name(), len(enc), len(in))
		}
	}
}

func TestDecompressSizeMismatch(t *testing.T) {
	for _, c := range allCodecs {
		enc, err := c.Compress([]byte{1, 2, 3, 4})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Decompress(enc, 5); err == nil {
			t.Fatalf("%s: size mismatch not detected", c.Name())
		}
	}
}

func TestRLEMalformedStreams(t *testing.T) {
	c := RLE()
	if _, err := c.Decompress([]byte{1}, 1); err == nil {
		t.Fatal("odd-length RLE stream accepted")
	}
	if _, err := c.Decompress([]byte{0, 7}, 0); err == nil {
		t.Fatal("zero-run RLE stream accepted")
	}
}

func TestRLELongRuns(t *testing.T) {
	// Runs longer than 255 must be split and still round trip.
	in := bytes.Repeat([]byte{9}, 1000)
	c := RLE()
	enc, err := c.Compress(in)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := c.Decompress(enc, len(in))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, in) {
		t.Fatal("long-run round trip failed")
	}
}

func TestRawIsIdentityCopy(t *testing.T) {
	in := []byte{1, 2, 3}
	enc, _ := Raw().Compress(in)
	if &enc[0] == &in[0] {
		t.Fatal("Raw.Compress aliases input")
	}
	enc[0] = 42
	if in[0] != 1 {
		t.Fatal("Raw.Compress mutated input")
	}
}

func TestHuffmanRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	inputs := [][]byte{
		nil,
		{},
		{7},
		bytes.Repeat([]byte{3}, 500),      // single symbol
		[]byte("abracadabra abracadabra"), // few symbols
		bytes.Repeat([]byte{0, 0, 0, 1, 0, 2}, 99), // skewed
	}
	random := make([]byte, 2048)
	rng.Read(random)
	inputs = append(inputs, random)
	c := Huffman()
	for i, in := range inputs {
		enc, err := c.Compress(in)
		if err != nil {
			t.Fatalf("input %d: %v", i, err)
		}
		dec, err := c.Decompress(enc, len(in))
		if err != nil {
			t.Fatalf("input %d: %v", i, err)
		}
		if !bytes.Equal(dec, in) {
			t.Fatalf("input %d: round trip mismatch", i)
		}
	}
}

func TestHuffmanCompressesSkewedData(t *testing.T) {
	// 90% zeros: entropy ≈ 0.47 bits/byte, so Huffman should roughly halve
	// the size even with its 260-byte table.
	rng := rand.New(rand.NewSource(12))
	in := make([]byte, 8192)
	for i := range in {
		if rng.Float64() < 0.1 {
			in[i] = byte(rng.Intn(4) + 1)
		}
	}
	enc, err := Huffman().Compress(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) > len(in)/2 {
		t.Fatalf("skewed input compressed to %d of %d bytes", len(enc), len(in))
	}
}

func TestHuffmanQuick(t *testing.T) {
	c := Huffman()
	f := func(in []byte) bool {
		enc, err := c.Compress(in)
		if err != nil {
			return false
		}
		dec, err := c.Decompress(enc, len(in))
		return err == nil && bytes.Equal(dec, in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHuffmanRejectsCorrupt(t *testing.T) {
	c := Huffman()
	if _, err := c.Decompress([]byte{1, 2, 3}, 10); err == nil {
		t.Fatal("short stream accepted")
	}
	enc, _ := c.Compress([]byte("hello world"))
	if _, err := c.Decompress(enc, 5); err == nil {
		t.Fatal("size mismatch accepted")
	}
	// Corrupt a code length beyond the cap.
	bad := append([]byte(nil), enc...)
	bad[4] = 200
	if _, err := c.Decompress(bad, 11); err == nil {
		t.Fatal("corrupt lengths accepted")
	}
}

func TestHuffmanByName(t *testing.T) {
	c, err := ByName("huffman")
	if err != nil || c.Name() != "huffman" {
		t.Fatalf("ByName(huffman) = %v, %v", c, err)
	}
}
