// Package lossless provides the lossless coding stage applied to each
// encoded bit-plane before storage (§II-B). The original MGARD uses ZSTD;
// this reproduction substitutes stdlib DEFLATE, which preserves the
// qualitative per-plane size profile the retrieval-size math depends on
// (sign/high planes compress well, low-order planes look like noise).
//
// Codecs are stateless and safe for concurrent use.
package lossless

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sync"

	"pmgard/internal/bufpool"
	"pmgard/internal/pool"
)

// Codec compresses and decompresses byte segments.
type Codec interface {
	// Name identifies the codec in metadata.
	Name() string
	// Compress returns the encoded form of src.
	Compress(src []byte) ([]byte, error)
	// Decompress reverses Compress. size is the expected decoded length,
	// which codecs use for allocation and validation.
	Decompress(src []byte, size int) ([]byte, error)
}

// ByName returns the codec registered under name: "deflate", "rle",
// "huffman" or "raw".
func ByName(name string) (Codec, error) {
	switch name {
	case "deflate":
		return Deflate(), nil
	case "rle":
		return RLE(), nil
	case "huffman":
		return Huffman(), nil
	case "raw":
		return Raw(), nil
	default:
		return nil, fmt.Errorf("lossless: unknown codec %q", name)
	}
}

// Deflate returns a DEFLATE codec at the default compression level.
func Deflate() Codec { return deflateCodec{} }

type deflateCodec struct{}

func (deflateCodec) Name() string { return "deflate" }

// flateWriters pools encoders: a fresh flate.Writer allocates hundreds of
// kilobytes of window state, and compression runs over thousands of small
// plane segments.
var flateWriters = sync.Pool{
	New: func() any {
		w, err := flate.NewWriter(io.Discard, flate.DefaultCompression)
		if err != nil {
			panic(err) // only possible for invalid level constants
		}
		return w
	},
}

// flateBuffers pools the compression staging buffers; the compressed bytes
// are copied into an exact-size result so the (growing) buffer is reused
// instead of escaping with every call.
var flateBuffers = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func (deflateCodec) Compress(src []byte) ([]byte, error) {
	buf := flateBuffers.Get().(*bytes.Buffer)
	buf.Reset()
	defer flateBuffers.Put(buf)
	w := flateWriters.Get().(*flate.Writer)
	defer flateWriters.Put(w)
	w.Reset(buf)
	if _, err := w.Write(src); err != nil {
		return nil, fmt.Errorf("lossless: deflate write: %w", err)
	}
	if err := w.Close(); err != nil {
		return nil, fmt.Errorf("lossless: deflate close: %w", err)
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out, nil
}

// flateReader bundles a pooled inflater with the bytes.Reader it drains, so
// a decompression resets two reused objects instead of allocating the
// inflater's decompression window per call.
type flateReader struct {
	src bytes.Reader
	r   io.ReadCloser
}

// flateReaders pools inflaters: flate.NewReader allocates the sliding
// window up front, and decompression runs over thousands of small plane
// segments. The stdlib reader implements flate.Resetter, which the New
// path relies on.
var flateReaders = sync.Pool{
	New: func() any {
		fr := &flateReader{}
		fr.r = flate.NewReader(&fr.src)
		return fr
	},
}

func (deflateCodec) Decompress(src []byte, size int) ([]byte, error) {
	fr := flateReaders.Get().(*flateReader)
	fr.src.Reset(src)
	if err := fr.r.(flate.Resetter).Reset(&fr.src, nil); err != nil {
		return nil, fmt.Errorf("lossless: deflate reset: %w", err)
	}
	defer func() {
		fr.src.Reset(nil) // drop the segment reference before pooling
		flateReaders.Put(fr)
	}()
	out := make([]byte, 0, size)
	buf := bufpool.Bytes(32 * 1024)
	defer bufpool.PutBytes(buf)
	for {
		n, err := fr.r.Read(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("lossless: deflate read: %w", err)
		}
	}
	if len(out) != size {
		return nil, fmt.Errorf("lossless: deflate decoded %d bytes, want %d", len(out), size)
	}
	return out, nil
}

// CompressSegments compresses every segment with codec on a bounded worker
// pool (workers ≤ 0 means GOMAXPROCS). Each result lands in the output slot
// matching its input index, so the slice is identical for every worker
// count; on failure the error from the lowest-indexed segment is returned.
func CompressSegments(codec Codec, segments [][]byte, workers int) ([][]byte, error) {
	out := make([][]byte, len(segments))
	err := pool.Run(len(segments), workers, func(_, i int) error {
		enc, err := codec.Compress(segments[i])
		if err != nil {
			return fmt.Errorf("segment %d: %w", i, err)
		}
		out[i] = enc
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// DecompressSegments reverses CompressSegments: segment i decodes to
// sizes[i] bytes. The same slot-per-index determinism contract applies.
func DecompressSegments(codec Codec, segments [][]byte, sizes []int, workers int) ([][]byte, error) {
	if len(segments) != len(sizes) {
		return nil, fmt.Errorf("lossless: %d segments but %d sizes", len(segments), len(sizes))
	}
	out := make([][]byte, len(segments))
	err := pool.Run(len(segments), workers, func(_, i int) error {
		dec, err := codec.Decompress(segments[i], sizes[i])
		if err != nil {
			return fmt.Errorf("segment %d: %w", i, err)
		}
		out[i] = dec
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RLE returns a simple byte-run-length codec, effective on the near-constant
// high-order sign planes.
func RLE() Codec { return rleCodec{} }

type rleCodec struct{}

func (rleCodec) Name() string { return "rle" }

func (rleCodec) Compress(src []byte) ([]byte, error) {
	out := make([]byte, 0, len(src)/4+8)
	for i := 0; i < len(src); {
		b := src[i]
		run := 1
		for i+run < len(src) && src[i+run] == b && run < 255 {
			run++
		}
		out = append(out, byte(run), b)
		i += run
	}
	return out, nil
}

func (rleCodec) Decompress(src []byte, size int) ([]byte, error) {
	if len(src)%2 != 0 {
		return nil, fmt.Errorf("lossless: rle stream has odd length %d", len(src))
	}
	out := make([]byte, 0, size)
	for i := 0; i < len(src); i += 2 {
		run, b := int(src[i]), src[i+1]
		if run == 0 {
			return nil, fmt.Errorf("lossless: rle zero run at offset %d", i)
		}
		for j := 0; j < run; j++ {
			out = append(out, b)
		}
	}
	if len(out) != size {
		return nil, fmt.Errorf("lossless: rle decoded %d bytes, want %d", len(out), size)
	}
	return out, nil
}

// Raw returns an identity codec, useful for measuring the benefit of the
// lossless stage in ablations.
func Raw() Codec { return rawCodec{} }

type rawCodec struct{}

func (rawCodec) Name() string { return "raw" }

func (rawCodec) Compress(src []byte) ([]byte, error) {
	out := make([]byte, len(src))
	copy(out, src)
	return out, nil
}

func (rawCodec) Decompress(src []byte, size int) ([]byte, error) {
	if len(src) != size {
		return nil, fmt.Errorf("lossless: raw segment is %d bytes, want %d", len(src), size)
	}
	out := make([]byte, len(src))
	copy(out, src)
	return out, nil
}
