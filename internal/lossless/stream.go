package lossless

import (
	"bytes"
	"compress/flate"
	"fmt"

	"pmgard/internal/obs"
)

// AppendCompress compresses src with codec and appends the encoded bytes to
// dst, returning the extended slice. It is the streaming pipeline's
// allocation-free variant of Codec.Compress: with a recycled dst of
// adequate capacity the deflate and raw fast paths complete without
// allocating, because the encoded bytes land directly in dst instead of an
// exact-size result copy. The encoded bytes are identical to
// codec.Compress(src) for every codec.
func AppendCompress(codec Codec, dst, src []byte) ([]byte, error) {
	switch codec.(type) {
	case deflateCodec:
		buf := flateBuffers.Get().(*bytes.Buffer)
		buf.Reset()
		defer flateBuffers.Put(buf)
		w := flateWriters.Get().(*flate.Writer)
		defer flateWriters.Put(w)
		w.Reset(buf)
		if _, err := w.Write(src); err != nil {
			return dst, fmt.Errorf("lossless: deflate write: %w", err)
		}
		if err := w.Close(); err != nil {
			return dst, fmt.Errorf("lossless: deflate close: %w", err)
		}
		return append(dst, buf.Bytes()...), nil
	case rawCodec:
		return append(dst, src...), nil
	default:
		enc, err := codec.Compress(src)
		if err != nil {
			return dst, err
		}
		return append(dst, enc...), nil
	}
}

// CompressInstruments carries the per-segment compression telemetry of
// CompressSegmentsObs for callers that compress segments one at a time
// (the streaming pipeline): counters lossless.segments_compressed /
// lossless.compress_bytes_in / lossless.compress_bytes_out and the
// lossless.segment_bytes size histogram. A nil *CompressInstruments
// observes nothing, so the disabled path stays one pointer check.
type CompressInstruments struct {
	segments *obs.Counter
	bytesIn  *obs.Counter
	bytesOut *obs.Counter
	sizes    *obs.Histogram
}

// NewCompressInstruments resolves the compression instruments in o's
// registry; nil (no-op) on a nil or metrics-less o.
func NewCompressInstruments(o *obs.Obs) *CompressInstruments {
	if o == nil || o.Metrics == nil {
		return nil
	}
	return &CompressInstruments{
		segments: o.Counter("lossless.segments_compressed"),
		bytesIn:  o.Counter("lossless.compress_bytes_in"),
		bytesOut: o.Counter("lossless.compress_bytes_out"),
		sizes:    o.Histogram("lossless.segment_bytes", obs.ByteBuckets()),
	}
}

// Observe records one compressed segment of the given raw and encoded
// byte sizes.
func (ci *CompressInstruments) Observe(rawBytes, encodedBytes int) {
	if ci == nil {
		return
	}
	ci.segments.Add(1)
	ci.bytesIn.Add(int64(rawBytes))
	ci.bytesOut.Add(int64(encodedBytes))
	ci.sizes.Observe(float64(encodedBytes))
}
