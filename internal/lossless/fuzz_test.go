package lossless

import (
	"bytes"
	"testing"
)

// FuzzRoundTrip checks compress→decompress identity on arbitrary inputs for
// every codec.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add(bytes.Repeat([]byte{0xAA}, 300))
	f.Add([]byte("the quick brown fox"))
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, c := range []Codec{Deflate(), RLE(), Raw(), Huffman()} {
			enc, err := c.Compress(data)
			if err != nil {
				t.Fatalf("%s: compress: %v", c.Name(), err)
			}
			dec, err := c.Decompress(enc, len(data))
			if err != nil {
				t.Fatalf("%s: decompress: %v", c.Name(), err)
			}
			if !bytes.Equal(dec, data) {
				t.Fatalf("%s: round trip mismatch", c.Name())
			}
		}
	})
}

// FuzzDecompressGarbage ensures decoders never panic on malformed streams.
func FuzzDecompressGarbage(f *testing.F) {
	f.Add([]byte{}, 10)
	f.Add([]byte{1, 2, 3}, 0)
	f.Add([]byte{0, 0, 0, 0}, 100)
	f.Fuzz(func(t *testing.T, data []byte, size int) {
		if size < 0 || size > 1<<20 {
			t.Skip()
		}
		for _, c := range []Codec{Deflate(), RLE(), Raw(), Huffman()} {
			c.Decompress(data, size) // errors fine, panics are not
		}
	})
}
