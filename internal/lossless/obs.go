package lossless

import (
	"fmt"

	"pmgard/internal/obs"
	"pmgard/internal/pool"
)

// CompressSegmentsObs is CompressSegments with codec telemetry recorded
// into o: a "lossless.compress" span, counters
// lossless.segments_compressed / lossless.compress_bytes_in /
// lossless.compress_bytes_out, a byte-size histogram
// lossless.segment_bytes, and pool task metrics under
// pool.lossless.compress.*. A nil o is exactly CompressSegments.
func CompressSegmentsObs(codec Codec, segments [][]byte, workers int, o *obs.Obs) ([][]byte, error) {
	if o == nil {
		return CompressSegments(codec, segments, workers)
	}
	sp := o.Span("lossless.compress", nil)
	sp.SetAttr("segments", len(segments))
	sp.SetAttr("codec", codec.Name())
	defer sp.End()
	sizeHist := o.Histogram("lossless.segment_bytes", obs.ByteBuckets())
	out := make([][]byte, len(segments))
	err := pool.RunMetrics(len(segments), workers, pool.NewMetrics(o, "lossless.compress"), func(_, i int) error {
		enc, err := codec.Compress(segments[i])
		if err != nil {
			return fmt.Errorf("segment %d: %w", i, err)
		}
		out[i] = enc
		return nil
	})
	if err != nil {
		return nil, err
	}
	var in, outBytes int64
	for i := range segments {
		in += int64(len(segments[i]))
		outBytes += int64(len(out[i]))
		sizeHist.Observe(float64(len(out[i])))
	}
	o.Counter("lossless.segments_compressed").Add(int64(len(segments)))
	o.Counter("lossless.compress_bytes_in").Add(in)
	o.Counter("lossless.compress_bytes_out").Add(outBytes)
	return out, nil
}

// DecompressSegmentsObs is DecompressSegments with codec telemetry
// recorded into o: a "lossless.decompress" span, counters
// lossless.segments_decompressed / lossless.decompress_bytes_in /
// lossless.decompress_bytes_out, and pool task metrics under
// pool.lossless.decompress.*. A nil o is exactly DecompressSegments.
func DecompressSegmentsObs(codec Codec, segments [][]byte, sizes []int, workers int, o *obs.Obs) ([][]byte, error) {
	if o == nil {
		return DecompressSegments(codec, segments, sizes, workers)
	}
	if len(segments) != len(sizes) {
		return nil, fmt.Errorf("lossless: %d segments but %d sizes", len(segments), len(sizes))
	}
	sp := o.Span("lossless.decompress", nil)
	sp.SetAttr("segments", len(segments))
	sp.SetAttr("codec", codec.Name())
	defer sp.End()
	out := make([][]byte, len(segments))
	err := pool.RunMetrics(len(segments), workers, pool.NewMetrics(o, "lossless.decompress"), func(_, i int) error {
		dec, err := codec.Decompress(segments[i], sizes[i])
		if err != nil {
			return fmt.Errorf("segment %d: %w", i, err)
		}
		out[i] = dec
		return nil
	})
	if err != nil {
		return nil, err
	}
	var in, outBytes int64
	for i := range segments {
		in += int64(len(segments[i]))
		outBytes += int64(len(out[i]))
	}
	o.Counter("lossless.segments_decompressed").Add(int64(len(segments)))
	o.Counter("lossless.decompress_bytes_in").Add(in)
	o.Counter("lossless.decompress_bytes_out").Add(outBytes)
	return out, nil
}
