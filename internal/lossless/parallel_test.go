package lossless

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestSegmentsRoundTripAllWorkers round-trips random segment batches through
// every codec at several worker counts and asserts byte-identical results.
func TestSegmentsRoundTripAllWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	segments := make([][]byte, 40)
	sizes := make([]int, len(segments))
	for i := range segments {
		seg := make([]byte, rng.Intn(4096))
		if i%3 == 0 {
			rng.Read(seg) // incompressible
		} // else near-constant, compresses well
		segments[i] = seg
		sizes[i] = len(seg)
	}
	for _, name := range []string{"deflate", "rle", "huffman", "raw"} {
		codec, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := CompressSegments(codec, segments, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, workers := range []int{2, 8, 0} {
			enc, err := CompressSegments(codec, segments, workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			for i := range enc {
				if !bytes.Equal(enc[i], ref[i]) {
					t.Fatalf("%s workers=%d: segment %d differs from sequential", name, workers, i)
				}
			}
			dec, err := DecompressSegments(codec, enc, sizes, workers)
			if err != nil {
				t.Fatalf("%s workers=%d decompress: %v", name, workers, err)
			}
			for i := range dec {
				if !bytes.Equal(dec[i], segments[i]) {
					t.Fatalf("%s workers=%d: segment %d did not round-trip", name, workers, i)
				}
			}
		}
	}
}

// TestDecompressSegmentsSizeMismatch pins the lowest-index error contract
// for a corrupt batch.
func TestDecompressSegmentsSizeMismatch(t *testing.T) {
	codec := Raw()
	segs := [][]byte{{1, 2}, {3}, {4, 5, 6}}
	if _, err := DecompressSegments(codec, segs, []int{2, 1}, 4); err == nil {
		t.Fatal("length mismatch not rejected")
	}
	bad := []int{2, 9, 9} // segments 1 and 2 both wrong; expect segment 1 reported
	_, err := DecompressSegments(codec, segs, bad, 4)
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("segment 1")) {
		t.Fatalf("err = %v, want lowest-index segment error", err)
	}
}
