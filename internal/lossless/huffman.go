package lossless

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Huffman returns a canonical byte-level Huffman codec — the entropy coder
// the real SZ uses. The stream stores the 256 code lengths (packed 4 bits
// each... actually one byte each for simplicity), then the bit stream.
// Inputs whose distribution is uniform gain nothing and may grow slightly;
// the plane segments and quantization codes it is used on are heavily
// skewed.
func Huffman() Codec { return huffmanCodec{} }

type huffmanCodec struct{}

func (huffmanCodec) Name() string { return "huffman" }

// maxCodeLen bounds code lengths; with ≤256 symbols depth ≤ 255 is already
// impossible to exceed 56 in practice, but the canonical rebuild guards it.
const maxCodeLen = 56

// buildLengths computes canonical Huffman code lengths from byte counts
// using the standard two-queue method over a sorted leaf list.
func buildLengths(counts [256]int64) ([256]uint8, error) {
	type node struct {
		weight      int64
		left, right int // indices into nodes, -1 for leaves
		symbol      int
	}
	var nodes []node
	var live []int
	for s, c := range counts {
		if c > 0 {
			nodes = append(nodes, node{weight: c, left: -1, right: -1, symbol: s})
			live = append(live, len(nodes)-1)
		}
	}
	var lengths [256]uint8
	switch len(live) {
	case 0:
		return lengths, nil
	case 1:
		lengths[nodes[live[0]].symbol] = 1
		return lengths, nil
	}
	// Simple O(n²) merging is fine for 256 symbols.
	for len(live) > 1 {
		sort.Slice(live, func(a, b int) bool { return nodes[live[a]].weight < nodes[live[b]].weight })
		a, b := live[0], live[1]
		nodes = append(nodes, node{weight: nodes[a].weight + nodes[b].weight, left: a, right: b, symbol: -1})
		live = append([]int{len(nodes) - 1}, live[2:]...)
	}
	// Depth-first walk assigning lengths.
	var walk func(ix int, depth uint8) error
	walk = func(ix int, depth uint8) error {
		n := nodes[ix]
		if n.left < 0 {
			if depth == 0 {
				depth = 1
			}
			if depth > maxCodeLen {
				return fmt.Errorf("lossless: huffman code length %d too deep", depth)
			}
			lengths[n.symbol] = depth
			return nil
		}
		if err := walk(n.left, depth+1); err != nil {
			return err
		}
		return walk(n.right, depth+1)
	}
	if err := walk(live[0], 0); err != nil {
		return lengths, err
	}
	return lengths, nil
}

// canonicalCodes assigns canonical codes from lengths: shorter codes first,
// ties broken by symbol value.
func canonicalCodes(lengths [256]uint8) [256]uint64 {
	type sym struct {
		s int
		l uint8
	}
	var syms []sym
	for s, l := range lengths {
		if l > 0 {
			syms = append(syms, sym{s: s, l: l})
		}
	}
	sort.Slice(syms, func(a, b int) bool {
		if syms[a].l != syms[b].l {
			return syms[a].l < syms[b].l
		}
		return syms[a].s < syms[b].s
	})
	var codes [256]uint64
	code := uint64(0)
	prevLen := uint8(0)
	for _, sm := range syms {
		code <<= (sm.l - prevLen)
		codes[sm.s] = code
		code++
		prevLen = sm.l
	}
	return codes
}

func (huffmanCodec) Compress(src []byte) ([]byte, error) {
	var counts [256]int64
	for _, b := range src {
		counts[b]++
	}
	lengths, err := buildLengths(counts)
	if err != nil {
		return nil, err
	}
	codes := canonicalCodes(lengths)

	out := make([]byte, 0, len(src)/2+300)
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(src)))
	out = append(out, lenBuf[:]...)
	out = append(out, lengths[:]...)

	var acc uint64
	var nbits uint
	for _, b := range src {
		l := uint(lengths[b])
		acc = acc<<l | codes[b]
		nbits += l
		for nbits >= 8 {
			nbits -= 8
			out = append(out, byte(acc>>nbits))
		}
	}
	if nbits > 0 {
		out = append(out, byte(acc<<(8-nbits)))
	}
	return out, nil
}

func (huffmanCodec) Decompress(src []byte, size int) ([]byte, error) {
	if len(src) < 4+256 {
		return nil, fmt.Errorf("lossless: huffman stream too short")
	}
	n := int(binary.LittleEndian.Uint32(src[:4]))
	if n != size {
		return nil, fmt.Errorf("lossless: huffman decoded %d bytes, want %d", n, size)
	}
	var lengths [256]uint8
	copy(lengths[:], src[4:4+256])
	for _, l := range lengths {
		if l > maxCodeLen {
			return nil, fmt.Errorf("lossless: huffman code length %d corrupt", l)
		}
	}
	codes := canonicalCodes(lengths)

	// Build a decode table keyed by (length, code) via per-length maps.
	type key struct {
		l uint8
		c uint64
	}
	table := make(map[key]byte)
	nSyms := 0
	for s, l := range lengths {
		if l > 0 {
			table[key{l: l, c: codes[s]}] = byte(s)
			nSyms++
		}
	}
	if n > 0 && nSyms == 0 {
		return nil, fmt.Errorf("lossless: huffman stream has no symbols")
	}

	out := make([]byte, 0, n)
	payload := src[4+256:]
	var acc uint64
	var accLen uint8
	pos := 0
	for len(out) < n {
		// Extend the accumulator until some code matches.
		matched := false
		for l := uint8(1); l <= maxCodeLen; l++ {
			for accLen < l {
				if pos >= len(payload) {
					if accLen == 0 {
						return nil, fmt.Errorf("lossless: huffman stream truncated")
					}
					// Pad with zeros at stream end (flush bits).
					acc <<= 8
					accLen += 8
					pos++ // virtual
					continue
				}
				acc = acc<<8 | uint64(payload[pos])
				pos++
				accLen += 8
			}
			prefix := acc >> (accLen - l)
			if sym, ok := table[key{l: l, c: prefix}]; ok {
				out = append(out, sym)
				acc &= (uint64(1) << (accLen - l)) - 1
				accLen -= l
				matched = true
				break
			}
		}
		if !matched {
			return nil, fmt.Errorf("lossless: huffman stream corrupt at byte %d", len(out))
		}
	}
	return out, nil
}
