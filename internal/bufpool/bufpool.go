// Package bufpool provides size-classed, sync.Pool-backed reuse of the
// pipeline's scratch and output buffers. The hot kernels — bit-plane
// encode/decode, the lossless stage, the serve-path plane fetches — run at
// a steady state where every call needs the same few buffer shapes; without
// reuse each call pays allocation and GC for memory whose lifetime is one
// call. The pools here make those paths allocation-free once warm.
//
// Slices are grouped into power-of-two capacity classes per element type.
// Get returns a slice of exactly the requested length whose *contents are
// undefined* — callers must fully overwrite (or clear) what they read.
// Put accepts any slice, including ones not allocated here; it files the
// slice under the largest class its capacity covers, so a later Get can
// always rely on the class's capacity floor.
//
// Both operations are allocation-free in steady state: the slice headers
// that sync.Pool boxes are themselves recycled through a side pool of
// containers, so neither Get nor Put heap-allocates once the pools are
// warm. All pools are safe for concurrent use.
package bufpool

import (
	"math/bits"
	"sync"

	"pmgard/internal/obs"
)

// numClasses bounds the capacity classes at 2^(numClasses-1) elements;
// larger requests fall through to plain make and are never pooled.
const numClasses = 31

// slicePool is a size-classed pool of []T. Each class's sync.Pool stores
// *[]T containers; the headers pool recycles empty containers so Put never
// has to allocate one.
type slicePool[T any] struct {
	class   [numClasses]sync.Pool
	headers sync.Pool
}

// classFor returns the smallest class c with 1<<c >= n (n >= 1).
func classFor(n int) int {
	return bits.Len(uint(n - 1))
}

// get returns a length-n slice with undefined contents.
func (p *slicePool[T]) get(n int) []T {
	if n <= 0 {
		return nil
	}
	c := classFor(n)
	if c >= numClasses {
		news.Add(1)
		return make([]T, n)
	}
	if v := p.class[c].Get(); v != nil {
		h := v.(*[]T)
		s := (*h)[:n]
		*h = nil
		p.headers.Put(h)
		hits.Add(1)
		return s
	}
	news.Add(1)
	return make([]T, n, 1<<c)
}

// put files s for reuse. Slices too small for the smallest useful class
// (or too large to class) are dropped.
func (p *slicePool[T]) put(s []T) {
	cp := cap(s)
	if cp == 0 {
		return
	}
	c := bits.Len(uint(cp)) - 1 // largest c with 1<<c <= cp
	if c >= numClasses {
		c = numClasses - 1
	}
	var h *[]T
	if v := p.headers.Get(); v != nil {
		h = v.(*[]T)
	} else {
		h = new([]T)
	}
	*h = s[:0]
	p.class[c].Put(h)
	puts.Add(1)
}

var (
	bytePool    slicePool[byte]
	uint64Pool  slicePool[uint64]
	float64Pool slicePool[float64]
	intPool     slicePool[int]
)

// Bytes returns a length-n byte slice with undefined contents.
func Bytes(n int) []byte { return bytePool.get(n) }

// PutBytes files s for reuse by a later Bytes call.
func PutBytes(s []byte) { bytePool.put(s) }

// Uint64s returns a length-n uint64 slice with undefined contents.
func Uint64s(n int) []uint64 { return uint64Pool.get(n) }

// PutUint64s files s for reuse by a later Uint64s call.
func PutUint64s(s []uint64) { uint64Pool.put(s) }

// Float64s returns a length-n float64 slice with undefined contents.
func Float64s(n int) []float64 { return float64Pool.get(n) }

// PutFloat64s files s for reuse by a later Float64s call.
func PutFloat64s(s []float64) { float64Pool.put(s) }

// Ints returns a length-n int slice with undefined contents.
func Ints(n int) []int { return intPool.get(n) }

// PutInts files s for reuse by a later Ints call.
func PutInts(s []int) { intPool.put(s) }

// Pool counters. Standalone obs instruments count exactly without a
// registry; Instrument rebinds them to shared registry-named instruments,
// mirroring the servecache pattern.
var (
	hits = new(obs.Counter)
	news = new(obs.Counter)
	puts = new(obs.Counter)
)

// Stats is a point-in-time view over the buffer-pool counters.
type Stats struct {
	// Hits counts Get calls served from a pooled buffer.
	Hits int64
	// News counts Get calls that had to allocate a fresh buffer.
	News int64
	// Puts counts buffers filed for reuse.
	Puts int64
}

// Snapshot returns the current pool counters.
func Snapshot() Stats {
	return Stats{Hits: hits.Value(), News: news.Value(), Puts: puts.Value()}
}

// Instrument rebinds the pool counters to shared instruments in o's
// registry under bufpool.*, folding in anything counted so far, so metric
// snapshots report the same numbers Snapshot does. The pools are global, so
// call this once, before heavy traffic; a nil or metrics-less o is a no-op.
func Instrument(o *obs.Obs) {
	if o == nil || o.Metrics == nil {
		return
	}
	bind := func(dst **obs.Counter, name string) {
		ctr := o.Counter("bufpool." + name)
		ctr.Add((*dst).Value())
		*dst = ctr
	}
	bind(&hits, "hits")
	bind(&news, "news")
	bind(&puts, "puts")
}
