package bufpool

import (
	"runtime/debug"
	"testing"
)

func TestClassFor(t *testing.T) {
	cases := []struct{ n, class int }{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {1 << 20, 20},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.class {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.class)
		}
	}
}

// Identity assertions run against a private pool instance: the package
// globals are shared across tests (and warmed by other packages' tests in
// the same binary), so which pooled buffer a global Get returns is not
// deterministic.
func TestGetLengthAndReuse(t *testing.T) {
	var p slicePool[float64]
	s := p.get(100)
	if len(s) != 100 {
		t.Fatalf("len = %d, want 100", len(s))
	}
	if cap(s) < 100 || cap(s) > 128 {
		t.Fatalf("cap = %d, want within [100,128]", cap(s))
	}
	for i := range s {
		s[i] = float64(i)
	}
	p.put(s)
	// A smaller request in the same class must reuse the filed buffer —
	// except under the race detector, where sync.Pool randomly drops puts
	// to shake out lifecycle bugs, so identity is not guaranteed.
	r := p.get(80)
	if !raceEnabled && &r[0] != &s[0] {
		t.Fatal("same-class get did not reuse the pooled buffer")
	}
	p.put(r)
}

func TestZeroAndForeignSlices(t *testing.T) {
	if s := Bytes(0); s != nil {
		t.Fatalf("Bytes(0) = %v, want nil", s)
	}
	PutBytes(nil) // dropped, no panic
	// Foreign slices (not from the pool) are accepted and filed by capacity.
	var p slicePool[uint64]
	foreign := make([]uint64, 33, 100)
	p.put(foreign)
	got := p.get(60) // class 6 floor is 64 ≤ cap 100, so the slice is reusable
	if &got[0] != &foreign[0] {
		t.Fatal("foreign slice was not filed under its capacity floor class")
	}
	p.put(got)
}

func TestSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under -race")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	for i := 0; i < 3; i++ { // warm both the class pool and the header pool
		PutBytes(Bytes(4096))
	}
	avg := testing.AllocsPerRun(100, func() {
		b := Bytes(4096)
		PutBytes(b)
	})
	if avg != 0 {
		t.Fatalf("steady-state Get/Put allocates %.2f allocs/op, want 0", avg)
	}
}

func TestSnapshotCounts(t *testing.T) {
	before := Snapshot()
	b := Bytes(1 << 10)
	PutBytes(b)
	_ = Bytes(1 << 10)
	after := Snapshot()
	if after.Puts <= before.Puts {
		t.Fatalf("puts did not advance: %+v -> %+v", before, after)
	}
	if after.Hits+after.News <= before.Hits+before.News {
		t.Fatalf("gets did not advance: %+v -> %+v", before, after)
	}
}
