package dmgard

import (
	"fmt"
	"math"

	"pmgard/internal/core"
	"pmgard/internal/features"
	"pmgard/internal/grid"
)

// HeaderFeatures derives per-level inputs from the compression header: the
// log-scaled starting error of each level relative to the value range
// (Err[l][0] is the max coefficient magnitude, known before any payload
// read). The number of planes a tolerance needs on level l is roughly
// log2(Err[l][0]/tol), so these features carry most of the signal and are
// what lets a model trained on one field transfer to a sibling field with a
// different spectrum.
func HeaderFeatures(h *core.Header) []float64 {
	out := make([]float64, len(h.Levels))
	rng := h.ValueRange
	if rng <= 0 {
		rng = 1
	}
	for l, lm := range h.Levels {
		out[l] = math.Log10(lm.ErrMatrix[0]/rng + 1e-300)
	}
	return out
}

// CombineFeatures assembles the full D-MGARD input: the field's statistical
// features followed by the header-derived per-level features.
func CombineFeatures(fieldFeatures []float64, h *core.Header) []float64 {
	out := make([]float64, 0, len(fieldFeatures)+len(h.Levels))
	out = append(out, fieldFeatures...)
	out = append(out, HeaderFeatures(h)...)
	return out
}

// Harvest runs the original theory-controlled MGARD pipeline on one field
// across a sweep of relative error bounds and emits one training record per
// bound (§III-C steps 1–2): the field's features, the plane counts the
// greedy retriever chose, and the *achieved* maximum error of the resulting
// reconstruction (the red curves of Fig. 2), which becomes the model input
// in place of the user-requested bound.
//
// The compressed form is returned too so callers can reuse it for
// evaluation without recompressing.
func Harvest(field *grid.Tensor, fieldName string, timestep int, cfg core.Config, relBounds []float64) ([]Record, *core.Compressed, error) {
	if len(relBounds) == 0 {
		return nil, nil, fmt.Errorf("dmgard: no error bounds to sweep")
	}
	c, err := core.Compress(field, cfg, fieldName, timestep)
	if err != nil {
		return nil, nil, err
	}
	h := &c.Header
	est := h.TheoryEstimator()
	feat := CombineFeatures(features.Extract(field, timestep), h)
	records := make([]Record, 0, len(relBounds))
	for _, rel := range relBounds {
		if rel <= 0 {
			return nil, nil, fmt.Errorf("dmgard: non-positive relative bound %g", rel)
		}
		tol := h.AbsTolerance(rel)
		if tol <= 0 {
			// Constant field: nothing to learn from this bound.
			continue
		}
		rec, plan, err := core.RetrieveTolerance(h, c, est, tol)
		if err != nil {
			return nil, nil, fmt.Errorf("dmgard: sweep bound %g: %w", rel, err)
		}
		records = append(records, Record{
			Features:    feat,
			AchievedErr: grid.MaxAbsDiff(field, rec) / h.ValueRange,
			Planes:      append([]int(nil), plan.Planes...),
		})
	}
	return records, c, nil
}

// DefaultRelBounds returns the paper's 81-value relative error-bound sweep:
// {1..9}×10⁻⁹ through {1..9}×10⁻¹ (§IV-A3).
func DefaultRelBounds() []float64 {
	var bounds []float64
	for exp := -9; exp <= -1; exp++ {
		for mant := 1; mant <= 9; mant++ {
			bounds = append(bounds, float64(mant)*pow10(exp))
		}
	}
	return bounds
}

func pow10(exp int) float64 {
	v := 1.0
	for i := 0; i < exp; i++ {
		v *= 10
	}
	for i := 0; i > exp; i-- {
		v /= 10
	}
	return v
}
