package dmgard

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"pmgard/internal/core"
	"pmgard/internal/features"
	"pmgard/internal/sim/warpx"
)

// syntheticRecords fabricates records with a learnable structure: plane
// counts decrease roughly linearly with log error, offset per level.
func syntheticRecords(n int, seed int64) []Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]Record, n)
	for i := range recs {
		feat := make([]float64, 4)
		for j := range feat {
			feat[j] = rng.NormFloat64()
		}
		logE := -8*rng.Float64() - 1 // log10 err in [-9, -1]
		planes := make([]int, 3)
		for l := range planes {
			b := int(math.Round(-2.5*logE - float64(l)*3 + feat[0]))
			if b < 0 {
				b = 0
			}
			if b > 32 {
				b = 32
			}
			planes[l] = b
		}
		recs[i] = Record{Features: feat, AchievedErr: math.Pow(10, logE), Planes: planes}
	}
	return recs
}

func quickConfig() Config {
	return Config{
		Hidden:     []int{24, 24},
		LeakyAlpha: 0.01,
		Epochs:     80,
		BatchSize:  32,
		LR:         3e-3,
		Seed:       1,
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, 32, quickConfig()); err == nil {
		t.Fatal("empty records accepted")
	}
	recs := syntheticRecords(10, 1)
	if _, err := Train(recs, 0, quickConfig()); err == nil {
		t.Fatal("zero planes accepted")
	}
	bad := syntheticRecords(10, 1)
	bad[3].Features = bad[3].Features[:2]
	if _, err := Train(bad, 32, quickConfig()); err == nil {
		t.Fatal("ragged features accepted")
	}
	bad2 := syntheticRecords(10, 1)
	bad2[5].AchievedErr = math.NaN()
	if _, err := Train(bad2, 32, quickConfig()); err == nil {
		t.Fatal("NaN error accepted")
	}
}

func TestTrainLearnsSyntheticMapping(t *testing.T) {
	recs := syntheticRecords(600, 2)
	m, err := Train(recs, 32, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate on held-out synthetic records from the same distribution.
	test := syntheticRecords(200, 3)
	within1 := 0
	total := 0
	for _, r := range test {
		pred, err := m.Predict(r.Features, r.AchievedErr)
		if err != nil {
			t.Fatal(err)
		}
		for l := range pred {
			if abs := pred[l] - r.Planes[l]; abs <= 1 && abs >= -1 {
				within1++
			}
			total++
		}
	}
	frac := float64(within1) / float64(total)
	if frac < 0.7 {
		t.Fatalf("only %.0f%% of predictions within one plane, want ≥70%%", frac*100)
	}
}

func TestPredictValidation(t *testing.T) {
	m, err := Train(syntheticRecords(50, 4), 32, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict([]float64{1}, 0.1); err == nil {
		t.Fatal("wrong feature count accepted")
	}
	if _, err := m.Predict(make([]float64, 4), -1); err == nil {
		t.Fatal("negative error accepted")
	}
	if _, err := m.Predict(make([]float64, 4), math.NaN()); err == nil {
		t.Fatal("NaN error accepted")
	}
}

func TestPredictionsClamped(t *testing.T) {
	m, err := Train(syntheticRecords(100, 5), 16, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Extreme inputs must still produce valid plane counts.
	for _, e := range []float64{1e-30, 1e6} {
		pred, err := m.Predict([]float64{50, -50, 50, -50}, e)
		if err != nil {
			t.Fatal(err)
		}
		for l, b := range pred {
			if b < 0 || b > 16 {
				t.Fatalf("prediction[%d] = %d outside [0,16]", l, b)
			}
		}
	}
}

func TestChainUsesEarlierPredictions(t *testing.T) {
	// The level-1 network input dimension must include level 0's output.
	recs := syntheticRecords(50, 6)
	m, err := Train(recs, 32, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.Levels() != 3 {
		t.Fatalf("Levels = %d, want 3", m.Levels())
	}
	// Feature dim 4 + err → level 0 has 5 inputs, level 2 has 7.
	if got := len(m.scalers[0].Mean); got != 5 {
		t.Fatalf("level 0 input dim = %d, want 5", got)
	}
	if got := len(m.scalers[2].Mean); got != 7 {
		t.Fatalf("level 2 input dim = %d, want 7", got)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m, err := Train(syntheticRecords(80, 7), 32, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "dmgard.gob")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	feat := []float64{0.5, -1, 2, 0}
	want, err := m.PredictFloat(feat, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.PredictFloat(feat, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	for l := range want {
		if want[l] != got[l] {
			t.Fatalf("level %d: loaded model predicts %g, original %g", l, got[l], want[l])
		}
	}
}

func TestLoadRejectsMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.gob")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestHarvestProducesUsableRecords(t *testing.T) {
	cfg := warpx.DefaultConfig(17, 9, 9)
	field, err := cfg.Field("Jx", 5)
	if err != nil {
		t.Fatal(err)
	}
	bounds := []float64{1e-6, 1e-4, 1e-2, 1e-1}
	recs, c, err := Harvest(field, "Jx", 5, core.DefaultConfig(), bounds)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(bounds) {
		t.Fatalf("got %d records, want %d", len(recs), len(bounds))
	}
	for i, r := range recs {
		// Field statistics plus one header feature per level.
		if want := features.Count() + len(c.Header.Levels); len(r.Features) != want {
			t.Fatalf("record %d: %d features, want %d", i, len(r.Features), want)
		}
		if len(r.Planes) != len(c.Header.Levels) {
			t.Fatalf("record %d: %d levels", i, len(r.Planes))
		}
		if r.AchievedErr < 0 {
			t.Fatalf("record %d: negative achieved error", i)
		}
		// The achieved error must satisfy the requested bound.
		if tol := c.Header.AbsTolerance(bounds[i]); r.AchievedErr > tol {
			t.Fatalf("record %d: achieved %g > requested %g", i, r.AchievedErr, tol)
		}
	}
	// Looser bounds need no more planes than tighter ones.
	for l := range recs[0].Planes {
		if recs[0].Planes[l] < recs[len(recs)-1].Planes[l] {
			t.Fatalf("level %d: tighter bound chose fewer planes", l)
		}
	}
}

func TestHarvestValidation(t *testing.T) {
	cfg := warpx.DefaultConfig(9, 9, 9)
	field, _ := cfg.Field("Jx", 0)
	if _, _, err := Harvest(field, "Jx", 0, core.DefaultConfig(), nil); err == nil {
		t.Fatal("empty bounds accepted")
	}
	if _, _, err := Harvest(field, "Jx", 0, core.DefaultConfig(), []float64{-1}); err == nil {
		t.Fatal("negative bound accepted")
	}
}

func TestDefaultRelBounds(t *testing.T) {
	bounds := DefaultRelBounds()
	if len(bounds) != 81 {
		t.Fatalf("got %d bounds, want 81 (paper §IV-A3)", len(bounds))
	}
	if math.Abs(bounds[0]-1e-9) > 1e-24 {
		t.Fatalf("first bound %g, want 1e-9", bounds[0])
	}
	if math.Abs(bounds[80]-9e-1) > 1e-15 {
		t.Fatalf("last bound %g, want 0.9", bounds[80])
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			t.Fatalf("bounds not increasing at %d", i)
		}
	}
}
