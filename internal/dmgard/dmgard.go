// Package dmgard implements D-MGARD (§III-C): a chained multi-output
// regression (CMOR) model that predicts, for each coefficient level, the
// number of bit-planes to retrieve, directly from the target maximum
// absolute error and a set of statistical data features.
//
// One MLP is trained per level. The level-l model sees the shared features
// F, the (log-scaled) target error, and the plane counts of levels 0..l-1 —
// ground-truth counts during training (teacher forcing), its own previous
// predictions at inference — exploiting the strong correlation between
// per-level plane counts (Fig. 5a) that independent per-level regressors
// would waste. Models train with the Huber loss (δ=1, Eq. 5) under Adam.
package dmgard

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"math/rand"
	"os"

	"pmgard/internal/nn"
	"pmgard/internal/obs"
)

// Record is one training sample harvested from a compression sweep: the
// field's features, the achieved maximum absolute error of the
// reconstruction, and the per-level plane counts the original retriever
// chose (§III-C steps 1–2).
type Record struct {
	// Features is the statistical feature vector F of the field.
	Features []float64
	// AchievedErr is the measured max reconstruction error *relative to
	// the field's value range*. Relative errors make the model transfer
	// across fields whose physical units differ by orders of magnitude
	// (the cross-field evaluations of Figs. 9–10) — the same convention
	// the paper's error-bound sweep uses (§IV-A3).
	AchievedErr float64
	// Planes is b_l for each level.
	Planes []int
}

// Config holds the CMOR training hyperparameters.
type Config struct {
	// Hidden lists the hidden-layer widths of each per-level MLP. The
	// paper uses six fully-connected hidden layers (Fig. 6c).
	Hidden []int
	// LeakyAlpha is the negative slope of the leaky-ReLU activations.
	LeakyAlpha float64
	// Epochs, BatchSize and LR configure training (§IV-A4).
	Epochs    int
	BatchSize int
	LR        float64
	// Seed makes initialization and shuffling reproducible.
	Seed int64
	// Loss is the training objective; nil means Huber(δ=1).
	Loss nn.Loss
	// Independent drops the CMOR chaining: each level's model sees only
	// the shared features and the target error, not the earlier levels'
	// plane counts. Used by the chaining ablation; the paper argues (via
	// Fig. 5a) that chaining should win.
	Independent bool
	// Augment replicates each training record this many times with
	// Gaussian jitter on the standardized data features. Compression
	// sweeps yield one distinct feature vector per timestep, so without
	// augmentation the MLP memorizes those few points and extrapolates
	// badly when a test field's statistics drift. 0 uses the default of 3;
	// 1 disables augmentation.
	Augment int
	// JitterStd is the augmentation noise in standardized units (default
	// 0.15).
	JitterStd float64
	// Obs records training telemetry (per-epoch loss gauges, epoch spans,
	// micro-batch counters) when set; nil disables it and never changes the
	// trained weights.
	Obs *obs.Obs
}

// DefaultConfig returns a CPU-friendly version of the paper's training
// setup: six hidden layers, leaky ReLU, Huber loss, Adam. The paper trains
// for 300 epochs at lr=5e-5 on a GPU; this reproduction defaults to fewer,
// larger steps that converge to comparable accuracy at our data scale.
func DefaultConfig() Config {
	return Config{
		Hidden:     []int{32, 32, 32, 32, 32, 32},
		LeakyAlpha: 0.01,
		Epochs:     150,
		BatchSize:  64,
		LR:         2e-3,
		Seed:       1,
	}
}

func (c Config) withDefaults() Config {
	if c.Loss == nil {
		c.Loss = nn.Huber{Delta: 1}
	}
	if c.Augment == 0 {
		c.Augment = 3
	}
	if c.JitterStd == 0 {
		c.JitterStd = 0.15
	}
	return c
}

// Model is a trained D-MGARD predictor.
type Model struct {
	levels      int
	planes      int
	features    int
	independent bool
	scalers     []*nn.Scaler
	nets        []*nn.Sequential
}

// Levels returns the number of per-level models in the chain.
func (m *Model) Levels() int { return m.levels }

// logErr compresses the error's dynamic range for use as a model input.
func logErr(err float64) float64 {
	return math.Log10(err + 1e-300)
}

// inputRow assembles the level-l model input: [F..., log10(err)] plus, when
// chaining, the earlier levels' plane counts b_0..b_{l-1}.
func inputRow(feat []float64, achieved float64, prev []float64, l int, independent bool) []float64 {
	if independent {
		l = 0
	}
	row := make([]float64, 0, len(feat)+1+l)
	row = append(row, feat...)
	row = append(row, logErr(achieved))
	row = append(row, prev[:l]...)
	return row
}

// Train fits the CMOR chain to the records. planes is the bit-plane count B
// used for clamping predictions. All records must agree on feature and
// level counts.
func Train(records []Record, planes int, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	if len(records) == 0 {
		return nil, fmt.Errorf("dmgard: no training records")
	}
	if planes < 1 {
		return nil, fmt.Errorf("dmgard: planes %d < 1", planes)
	}
	nf := len(records[0].Features)
	levels := len(records[0].Planes)
	if levels == 0 {
		return nil, fmt.Errorf("dmgard: records have no levels")
	}
	for i, r := range records {
		if len(r.Features) != nf || len(r.Planes) != levels {
			return nil, fmt.Errorf("dmgard: record %d shape mismatch", i)
		}
		if r.AchievedErr < 0 || math.IsNaN(r.AchievedErr) {
			return nil, fmt.Errorf("dmgard: record %d has invalid error %g", i, r.AchievedErr)
		}
	}

	m := &Model{
		levels:      levels,
		planes:      planes,
		features:    nf,
		independent: cfg.Independent,
		scalers:     make([]*nn.Scaler, levels),
		nets:        make([]*nn.Sequential, levels),
	}
	for l := 0; l < levels; l++ {
		in := nf + 1
		if !cfg.Independent {
			in += l
		}
		x := nn.NewMat(len(records), in)
		y := nn.NewMat(len(records), 1)
		for i, r := range records {
			prev := make([]float64, l)
			for p := 0; p < l; p++ {
				prev[p] = float64(r.Planes[p])
			}
			copy(x.Row(i), inputRow(r.Features, r.AchievedErr, prev, l, cfg.Independent))
			y.Set(i, 0, float64(r.Planes[l]))
		}
		m.scalers[l] = nn.FitScaler(x)
		xs := m.scalers[l].Transform(x)
		rng := rand.New(rand.NewSource(cfg.Seed + int64(l)))
		// Augment: jittered copies of the standardized feature columns
		// (the error and chain inputs stay exact — they are continuous and
		// well covered by the sweep).
		if cfg.Augment > 1 {
			ax := nn.NewMat(xs.Rows*cfg.Augment, xs.Cols)
			ay := nn.NewMat(xs.Rows*cfg.Augment, 1)
			for copyIx := 0; copyIx < cfg.Augment; copyIx++ {
				for i := 0; i < xs.Rows; i++ {
					dst := ax.Row(copyIx*xs.Rows + i)
					copy(dst, xs.Row(i))
					if copyIx > 0 {
						for j := 0; j < nf; j++ {
							dst[j] += rng.NormFloat64() * cfg.JitterStd
						}
					}
					ay.Set(copyIx*xs.Rows+i, 0, y.At(i, 0))
				}
			}
			xs, y = ax, ay
		}
		net := nn.MLP(in, cfg.Hidden, 1, cfg.LeakyAlpha, rng)
		if _, err := nn.Train(net, xs, y, nn.TrainConfig{
			Epochs:    cfg.Epochs,
			BatchSize: cfg.BatchSize,
			Seed:      cfg.Seed + int64(l),
			Loss:      cfg.Loss,
			Optimizer: nn.NewAdam(cfg.LR),
			Obs:       cfg.Obs,
		}); err != nil {
			return nil, fmt.Errorf("dmgard: train level %d: %w", l, err)
		}
		m.nets[l] = net
	}
	return m, nil
}

// winsorize clips standardized inputs to ±4σ so a field whose statistics
// drift outside the training distribution degrades the prediction
// gracefully instead of letting the unbounded MLP extrapolate (training
// sweeps contain one distinct feature vector per timestep, so a modest
// drift can otherwise be tens of σ out).
func winsorize(row []float64) {
	for i, v := range row {
		if v > 4 {
			row[i] = 4
		} else if v < -4 {
			row[i] = -4
		}
	}
}

// PredictFloat runs the chain and returns the unrounded per-level plane
// predictions (Fig. 6b): each level's model consumes the predictions of the
// earlier levels. targetErr is the requested max error relative to the
// field's value range (the same convention as Record.AchievedErr).
func (m *Model) PredictFloat(feat []float64, targetErr float64) ([]float64, error) {
	if len(feat) != m.features {
		return nil, fmt.Errorf("dmgard: got %d features, model trained on %d", len(feat), m.features)
	}
	if targetErr <= 0 || math.IsNaN(targetErr) {
		return nil, fmt.Errorf("dmgard: target error %g must be positive", targetErr)
	}
	out := make([]float64, m.levels)
	for l := 0; l < m.levels; l++ {
		row := inputRow(feat, targetErr, out, l, m.independent)
		m.scalers[l].TransformRow(row)
		winsorize(row)
		x := &nn.Mat{Rows: 1, Cols: len(row), Data: row}
		out[l] = m.nets[l].Forward(x).At(0, 0)
	}
	return out, nil
}

// Predict returns the per-level plane counts for the target relative
// error, rounded and clamped to [0, B] — ready for core.RetrievePlanes.
func (m *Model) Predict(feat []float64, targetErr float64) ([]int, error) {
	raw, err := m.PredictFloat(feat, targetErr)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(raw))
	for l, v := range raw {
		b := int(math.Round(v))
		if b < 0 {
			b = 0
		}
		if b > m.planes {
			b = m.planes
		}
		out[l] = b
	}
	return out, nil
}

// modelFile is the gob representation of a trained model.
type modelFile struct {
	Version     int
	Levels      int
	Planes      int
	Features    int
	Independent bool
	Means       [][]float64
	Stds        [][]float64
	Nets        [][]byte
}

// Save writes the model to path.
func (m *Model) Save(path string) error {
	mf := modelFile{
		Version:     1,
		Levels:      m.levels,
		Planes:      m.planes,
		Features:    m.features,
		Independent: m.independent,
	}
	for l := 0; l < m.levels; l++ {
		mf.Means = append(mf.Means, m.scalers[l].Mean)
		mf.Stds = append(mf.Stds, m.scalers[l].Std)
		var buf bytes.Buffer
		if err := nn.Save(&buf, m.nets[l]); err != nil {
			return fmt.Errorf("dmgard: save level %d: %w", l, err)
		}
		mf.Nets = append(mf.Nets, buf.Bytes())
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dmgard: create %s: %w", path, err)
	}
	if err := gob.NewEncoder(f).Encode(mf); err != nil {
		f.Close()
		return fmt.Errorf("dmgard: encode: %w", err)
	}
	return f.Close()
}

// Load reads a model written by Save.
func Load(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dmgard: open %s: %w", path, err)
	}
	defer f.Close()
	var mf modelFile
	if err := gob.NewDecoder(f).Decode(&mf); err != nil {
		return nil, fmt.Errorf("dmgard: decode: %w", err)
	}
	if mf.Version != 1 {
		return nil, fmt.Errorf("dmgard: unsupported model version %d", mf.Version)
	}
	if mf.Levels < 1 || len(mf.Nets) != mf.Levels || len(mf.Means) != mf.Levels || len(mf.Stds) != mf.Levels {
		return nil, fmt.Errorf("dmgard: corrupt model file")
	}
	m := &Model{
		levels:      mf.Levels,
		planes:      mf.Planes,
		features:    mf.Features,
		independent: mf.Independent,
	}
	for l := 0; l < mf.Levels; l++ {
		m.scalers = append(m.scalers, &nn.Scaler{Mean: mf.Means[l], Std: mf.Stds[l]})
		net, err := nn.Load(bytes.NewReader(mf.Nets[l]))
		if err != nil {
			return nil, fmt.Errorf("dmgard: load level %d: %w", l, err)
		}
		m.nets = append(m.nets, net)
	}
	return m, nil
}
