// Package faults provides deterministic, seedable fault injection for the
// retrieval path: wrappers around a retrieval SegmentSource or a storage
// store that inject transient errors, permanently unavailable planes,
// latency, payload corruption and truncation at configurable rates.
//
// Every decision is a pure function of (seed, level, plane, attempt), so a
// given configuration replays the exact same fault sequence on every run
// regardless of timing — the property the resilience tests in
// internal/storage and internal/core rely on. The injected errors carry
// the storage package's fault-class sentinels (storage.ErrTransient,
// storage.ErrPermanent) so the retry/quarantine classifier sees them the
// same way it sees real tier failures.
package faults

import (
	"fmt"
	"io"
	"sync"
	"time"

	"pmgard/internal/obs"
	"pmgard/internal/storage"
)

// PlaneID names one (level, plane) segment for the permanent-fault set.
type PlaneID struct {
	// Level is the coefficient level.
	Level int
	// Plane is the bit-plane index within the level.
	Plane int
}

// Config selects which faults to inject and how often. Zero values inject
// nothing; the zero Config is a transparent wrapper.
type Config struct {
	// Seed drives every random decision. Two wrappers with equal Seed and
	// rates inject identical fault sequences.
	Seed int64
	// TransientRate is the probability in [0,1] that any single read
	// attempt fails with an error wrapping storage.ErrTransient. Retrying
	// the read redraws the decision.
	TransientRate float64
	// Permanent lists planes that always fail with an error wrapping
	// storage.ErrPermanent — a lost tape segment, a deleted level file.
	Permanent []PlaneID
	// Latency is added to every successful read, modeling a slow tier.
	Latency time.Duration
	// CorruptRate is the probability in [0,1] that a successful read's
	// payload comes back with one byte flipped — silently, the way real
	// bit-rot arrives. Downstream checksums or decoders must catch it.
	CorruptRate float64
	// TruncateRate is the probability in [0,1] that a successful read's
	// payload comes back cut to half its length.
	TruncateRate float64
}

// Stats is a point-in-time view over the injector's counters. The counters
// live in obs instruments (standalone by default, registry-backed after
// Instrument), so a -metrics-out snapshot and this struct agree.
type Stats struct {
	// Reads is the number of reads that reached the injector.
	Reads int64
	// Transient is the number of injected transient errors.
	Transient int64
	// Permanent is the number of reads refused as permanently unavailable.
	Permanent int64
	// Corrupted is the number of payloads returned with a flipped byte.
	Corrupted int64
	// Truncated is the number of payloads returned truncated.
	Truncated int64
}

// Distinct stream constants keep the transient/corrupt/truncate draws
// independent even though they share (seed, level, plane, attempt).
const (
	streamTransient = 0x51ED270B
	streamCorrupt   = 0xB5297A4D
	streamTruncate  = 0x68E31DA4
)

// injector is the shared fault engine behind Source and Store.
type injector struct {
	cfg       Config
	permanent map[PlaneID]bool

	mu       sync.Mutex
	attempts map[PlaneID]int

	// Fault counters: standalone instruments by default, rebound to shared
	// registry-named ones by instrument().
	reads     *obs.Counter
	transient *obs.Counter
	permHits  *obs.Counter
	corrupted *obs.Counter
	truncated *obs.Counter
}

func newInjector(cfg Config) *injector {
	perm := make(map[PlaneID]bool, len(cfg.Permanent))
	for _, id := range cfg.Permanent {
		perm[id] = true
	}
	return &injector{
		cfg:       cfg,
		permanent: perm,
		attempts:  make(map[PlaneID]int),
		reads:     new(obs.Counter),
		transient: new(obs.Counter),
		permHits:  new(obs.Counter),
		corrupted: new(obs.Counter),
		truncated: new(obs.Counter),
	}
}

// instrument rebinds the fault counters to shared instruments in o's
// registry under faults.*, folding in anything counted so far.
func (in *injector) instrument(o *obs.Obs) {
	if o == nil || o.Metrics == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	bind := func(dst **obs.Counter, name string) {
		c := o.Counter("faults." + name)
		c.Add((*dst).Value())
		*dst = c
	}
	bind(&in.reads, "reads")
	bind(&in.transient, "injected.transient")
	bind(&in.permHits, "injected.permanent")
	bind(&in.corrupted, "injected.corrupted")
	bind(&in.truncated, "injected.truncated")
}

// draw returns a deterministic uniform value in [0,1) for one decision,
// mixing the seed, plane coordinates, per-plane attempt number and the
// decision stream through a splitmix64 finalizer.
func draw(seed int64, level, plane, attempt int, stream uint64) float64 {
	x := uint64(seed) ^ stream
	x ^= uint64(level) * 0x9E3779B97F4A7C15
	x ^= uint64(plane) * 0xC2B2AE3D27D4EB4F
	x ^= uint64(attempt) * 0x165667B19E3779F9
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// admit decides the fate of one read attempt before the underlying read
// runs. It returns the attempt number (for the payload mangle draws) and
// an injected error, if any.
func (in *injector) admit(level, plane int) (int, error) {
	id := PlaneID{Level: level, Plane: plane}
	in.mu.Lock()
	attempt := in.attempts[id]
	in.attempts[id] = attempt + 1
	in.mu.Unlock()
	in.reads.Add(1)
	if in.permanent[id] {
		in.permHits.Add(1)
		return attempt, fmt.Errorf("faults: level %d plane %d permanently unavailable: %w",
			level, plane, storage.ErrPermanent)
	}
	if in.cfg.Latency > 0 {
		time.Sleep(in.cfg.Latency)
	}
	if draw(in.cfg.Seed, level, plane, attempt, streamTransient) < in.cfg.TransientRate {
		in.transient.Add(1)
		return attempt, fmt.Errorf("faults: injected transient error on level %d plane %d (attempt %d): %w",
			level, plane, attempt, storage.ErrTransient)
	}
	return attempt, nil
}

// mangle applies the silent payload faults (corruption, truncation) to a
// successful read. The input is copied before modification so cached
// payloads held by the underlying source are never poisoned.
func (in *injector) mangle(level, plane, attempt int, payload []byte) []byte {
	if len(payload) == 0 {
		return payload
	}
	corrupt := draw(in.cfg.Seed, level, plane, attempt, streamCorrupt) < in.cfg.CorruptRate
	truncate := draw(in.cfg.Seed, level, plane, attempt, streamTruncate) < in.cfg.TruncateRate
	if !corrupt && !truncate {
		return payload
	}
	out := append([]byte(nil), payload...)
	if corrupt {
		ix := int(draw(in.cfg.Seed, level, plane, attempt, streamCorrupt^streamTruncate) * float64(len(out)))
		if ix >= len(out) {
			ix = len(out) - 1
		}
		out[ix] ^= 0xFF
		in.corrupted.Add(1)
	}
	if truncate {
		out = out[:len(out)/2]
		in.truncated.Add(1)
	}
	return out
}

func (in *injector) snapshot() Stats {
	return Stats{
		Reads:     in.reads.Value(),
		Transient: in.transient.Value(),
		Permanent: in.permHits.Value(),
		Corrupted: in.corrupted.Value(),
		Truncated: in.truncated.Value(),
	}
}

// SegmentSource yields compressed plane payloads; it is structurally
// identical to core.SegmentSource and storage.PlaneSource, restated so
// this package depends on neither wrapper direction.
type SegmentSource interface {
	// Segment returns the compressed payload of plane k of level l.
	Segment(level, plane int) ([]byte, error)
}

// Source wraps a SegmentSource with fault injection. It is safe for
// concurrent use if the underlying source is.
type Source struct {
	src SegmentSource
	in  *injector
}

// WrapSource wraps src so its reads are filtered through cfg's faults.
func WrapSource(src SegmentSource, cfg Config) *Source {
	return &Source{src: src, in: newInjector(cfg)}
}

// Segment implements SegmentSource with injected faults.
func (s *Source) Segment(level, plane int) ([]byte, error) {
	attempt, err := s.in.admit(level, plane)
	if err != nil {
		return nil, err
	}
	payload, err := s.src.Segment(level, plane)
	if err != nil {
		return nil, err
	}
	return s.in.mangle(level, plane, attempt, payload), nil
}

// Stats returns a snapshot of the injected-fault counters.
func (s *Source) Stats() Stats { return s.in.snapshot() }

// Instrument rebinds the fault counters to shared instruments in o's
// registry under faults.*, folding in anything counted so far. Call before
// the source is shared across goroutines; a nil or metrics-less o is a
// no-op.
func (s *Source) Instrument(o *obs.Obs) { s.in.instrument(o) }

// SegmentReader is the store-level read interface both storage.Store and
// storage.TieredStore satisfy.
type SegmentReader interface {
	// ReadSegment reads one stored plane segment.
	ReadSegment(id storage.SegmentID) ([]byte, error)
}

// Store wraps a storage store with fault injection, for tests that
// exercise the store-facing path rather than the retrieval-facing one.
type Store struct {
	r  SegmentReader
	in *injector
}

// WrapStore wraps r so its reads are filtered through cfg's faults.
func WrapStore(r SegmentReader, cfg Config) *Store {
	return &Store{r: r, in: newInjector(cfg)}
}

// ReadSegment implements SegmentReader with injected faults.
func (s *Store) ReadSegment(id storage.SegmentID) ([]byte, error) {
	attempt, err := s.in.admit(id.Level, id.Plane)
	if err != nil {
		return nil, err
	}
	payload, err := s.r.ReadSegment(id)
	if err != nil {
		return nil, err
	}
	return s.in.mangle(id.Level, id.Plane, attempt, payload), nil
}

// Stats returns a snapshot of the injected-fault counters.
func (s *Store) Stats() Stats { return s.in.snapshot() }

// Instrument rebinds the fault counters to shared instruments in o's
// registry under faults.*, folding in anything counted so far. Call before
// the store is shared across goroutines; a nil or metrics-less o is a
// no-op.
func (s *Store) Instrument(o *obs.Obs) { s.in.instrument(o) }

// ReaderAt wraps an io.ReaderAt with fault injection for the windowed
// field-read path. Decisions are keyed on the 4 KiB block index of the
// read offset (as the "plane", level 0), so the same deterministic
// (seed, block, attempt) replay property holds for byte-ranged reads.
// A truncation fault surfaces as a short read ending in io.EOF — exactly
// how a truncated file looks through a real os.File.
type ReaderAt struct {
	r  io.ReaderAt
	in *injector
}

// faultBlockShift sizes the fault-decision granularity for ranged reads.
const faultBlockShift = 12

// WrapReaderAt wraps r so its ranged reads are filtered through cfg's
// faults. Permanent planes in cfg address block indices at level 0.
func WrapReaderAt(r io.ReaderAt, cfg Config) *ReaderAt {
	return &ReaderAt{r: r, in: newInjector(cfg)}
}

// ReadAt implements io.ReaderAt with injected faults.
func (r *ReaderAt) ReadAt(p []byte, off int64) (int, error) {
	block := int(off >> faultBlockShift)
	attempt, err := r.in.admit(0, block)
	if err != nil {
		return 0, err
	}
	n, err := r.r.ReadAt(p, off)
	if err != nil {
		return n, err
	}
	out := r.in.mangle(0, block, attempt, p[:n])
	copy(p, out)
	if len(out) < n {
		return len(out), io.EOF
	}
	return n, nil
}

// Stats returns a snapshot of the injected-fault counters.
func (r *ReaderAt) Stats() Stats { return r.in.snapshot() }

// Instrument rebinds the fault counters to shared instruments in o's
// registry under faults.*, folding in anything counted so far. Call before
// the reader is shared across goroutines; a nil or metrics-less o is a
// no-op.
func (r *ReaderAt) Instrument(o *obs.Obs) { r.in.instrument(o) }
