package faults

import (
	"bytes"
	"errors"
	"testing"

	"pmgard/internal/storage"
)

// memSource is a deterministic in-memory SegmentSource.
type memSource struct{}

func (memSource) Segment(level, plane int) ([]byte, error) {
	payload := make([]byte, 32)
	for i := range payload {
		payload[i] = byte(level*31 + plane*7 + i)
	}
	return payload, nil
}

func errorSequence(t *testing.T, cfg Config, reads int) []bool {
	t.Helper()
	src := WrapSource(memSource{}, cfg)
	seq := make([]bool, 0, reads)
	for i := 0; i < reads; i++ {
		_, err := src.Segment(i%3, i%5)
		seq = append(seq, err != nil)
	}
	return seq
}

func TestDeterministicReplay(t *testing.T) {
	cfg := Config{Seed: 7, TransientRate: 0.3}
	a := errorSequence(t, cfg, 200)
	b := errorSequence(t, cfg, 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("read %d: fault sequences diverge under equal seeds", i)
		}
	}
	c := errorSequence(t, Config{Seed: 8, TransientRate: 0.3}, 200)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

func TestTransientRateAndClassification(t *testing.T) {
	src := WrapSource(memSource{}, Config{Seed: 1, TransientRate: 0.2})
	const reads = 5000
	var failures int
	for i := 0; i < reads; i++ {
		// Distinct planes so every read is attempt 0 of its plane.
		_, err := src.Segment(0, i)
		if err != nil {
			failures++
			if !errors.Is(err, storage.ErrTransient) {
				t.Fatalf("injected error does not wrap ErrTransient: %v", err)
			}
			if storage.Classify(err) != storage.FaultTransient {
				t.Fatalf("injected transient error classified permanent: %v", err)
			}
		}
	}
	rate := float64(failures) / reads
	if rate < 0.15 || rate > 0.25 {
		t.Fatalf("empirical fault rate %.3f far from configured 0.2", rate)
	}
	st := src.Stats()
	if st.Transient != int64(failures) || st.Reads != reads {
		t.Fatalf("stats %+v disagree with observed %d/%d", st, failures, reads)
	}
}

func TestRetryRedrawsTransientDecision(t *testing.T) {
	// With a 50% rate, 64 attempts on the same plane failing every time
	// (or succeeding every time) would mean the attempt number is not
	// feeding the draw.
	src := WrapSource(memSource{}, Config{Seed: 3, TransientRate: 0.5})
	var ok, fail int
	for i := 0; i < 64; i++ {
		if _, err := src.Segment(0, 0); err != nil {
			fail++
		} else {
			ok++
		}
	}
	if ok == 0 || fail == 0 {
		t.Fatalf("attempt number ignored: %d ok, %d failed on one plane", ok, fail)
	}
}

func TestPermanentPlane(t *testing.T) {
	src := WrapSource(memSource{}, Config{Seed: 1, Permanent: []PlaneID{{Level: 1, Plane: 2}}})
	for i := 0; i < 3; i++ {
		_, err := src.Segment(1, 2)
		if err == nil {
			t.Fatal("permanent plane read succeeded")
		}
		if !errors.Is(err, storage.ErrPermanent) {
			t.Fatalf("permanent fault does not wrap ErrPermanent: %v", err)
		}
		if storage.Classify(err) != storage.FaultPermanent {
			t.Fatalf("permanent fault classified transient: %v", err)
		}
	}
	if _, err := src.Segment(1, 3); err != nil {
		t.Fatalf("neighboring plane affected: %v", err)
	}
	if st := src.Stats(); st.Permanent != 3 {
		t.Fatalf("permanent count %d, want 3", st.Permanent)
	}
}

func TestCorruptionAndTruncation(t *testing.T) {
	clean, _ := memSource{}.Segment(0, 0)
	corrupting := WrapSource(memSource{}, Config{Seed: 5, CorruptRate: 1})
	got, err := corrupting.Segment(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(clean) || bytes.Equal(got, clean) {
		t.Fatalf("corruption did not flip a byte in place: %q vs %q", got, clean)
	}
	truncating := WrapSource(memSource{}, Config{Seed: 5, TruncateRate: 1})
	got, err = truncating.Segment(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(clean)/2 {
		t.Fatalf("truncation returned %d bytes, want %d", len(got), len(clean)/2)
	}
	// The underlying payload must be untouched (mangle copies).
	again, _ := memSource{}.Segment(0, 0)
	if !bytes.Equal(again, clean) {
		t.Fatal("underlying payload mutated")
	}
	if st := corrupting.Stats(); st.Corrupted != 1 {
		t.Fatalf("corrupted count %d, want 1", st.Corrupted)
	}
	if st := truncating.Stats(); st.Truncated != 1 {
		t.Fatalf("truncated count %d, want 1", st.Truncated)
	}
}

func TestZeroConfigIsTransparent(t *testing.T) {
	src := WrapSource(memSource{}, Config{})
	for i := 0; i < 50; i++ {
		got, err := src.Segment(i, i)
		if err != nil {
			t.Fatalf("zero config injected error: %v", err)
		}
		want, _ := memSource{}.Segment(i, i)
		if !bytes.Equal(got, want) {
			t.Fatal("zero config mutated payload")
		}
	}
}

// flatAsReader exposes storage.Store's ReadSegment for the wrapper test.
func TestWrapStore(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/s.pmgd"
	w, err := storage.Create(path, []byte("m"))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteSegment(storage.SegmentID{Level: 0, Plane: 0}, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := storage.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	wrapped := WrapStore(st, Config{Seed: 2, Permanent: []PlaneID{{Level: 0, Plane: 0}}})
	if _, err := wrapped.ReadSegment(storage.SegmentID{Level: 0, Plane: 0}); !errors.Is(err, storage.ErrPermanent) {
		t.Fatalf("store wrapper did not inject permanent fault: %v", err)
	}
	if wrapped.Stats().Permanent != 1 {
		t.Fatal("store wrapper stats not counted")
	}
}

func TestDrawIsUniformEnough(t *testing.T) {
	// Sanity-check the splitmix64 mixer: mean of many draws near 0.5.
	var sum float64
	const n = 10000
	for i := 0; i < n; i++ {
		sum += draw(9, i, i*3, 0, streamTransient)
	}
	if mean := sum / n; mean < 0.45 || mean > 0.55 {
		t.Fatalf("draw mean %.3f far from 0.5", mean)
	}
}
