package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
)

// Defaults for NewTraceStore(0, 0): how many recent request traces are kept
// for per-trace lookup, and how many all-time-slowest requests are pinned
// beyond the recency window.
const (
	DefaultRecentTraces = 256
	DefaultSlowTraces   = 32
)

// RequestRecord is one finished request's trace: identity, outcome, and
// the request-scoped span tree collected while it ran. The serving tier
// adds one per request; /debug/obs/trace?id= serves it back.
type RequestRecord struct {
	// TraceID is the request's 32-hex-digit trace id, as returned in the
	// traceparent response header and logged in the access line.
	TraceID string `json:"trace_id"`
	// Name identifies the operation ("refine", "open", ...).
	Name string `json:"name"`
	// Status is the HTTP status the request finished with.
	Status int `json:"status"`
	// StartNs is the request start as Unix nanoseconds.
	StartNs int64 `json:"start_ns"`
	// DurNs is the full request duration in nanoseconds.
	DurNs int64 `json:"dur_ns"`
	// Attrs carries request-level attributes (field, tolerance, outcome).
	Attrs map[string]any `json:"attrs,omitempty"`
	// Spans is the request's span tree, ordered by start time.
	Spans []SpanRecord `json:"spans"`
}

// RequestSummary is the per-request row of the slowest-requests table: the
// record without its span tree, cheap enough to serve on every /debug/obs
// hit.
type RequestSummary struct {
	TraceID string `json:"trace_id"`
	Name    string `json:"name"`
	Status  int    `json:"status"`
	StartNs int64  `json:"start_ns"`
	DurNs   int64  `json:"dur_ns"`
	// Spans is the number of spans the full record holds.
	Spans int `json:"spans"`
}

func (r RequestRecord) summary() RequestSummary {
	return RequestSummary{
		TraceID: r.TraceID,
		Name:    r.Name,
		Status:  r.Status,
		StartNs: r.StartNs,
		DurNs:   r.DurNs,
		Spans:   len(r.Spans),
	}
}

// TraceStore retains finished request traces under two complementary
// policies: a ring of the most recent requests (so "what just happened to
// trace X" is answerable while the client still holds the id) and a pinned
// set of the slowest requests seen (so the outliers worth debugging survive
// arbitrarily long after busy traffic has rolled the ring over). Both are
// bounded; a nil *TraceStore ignores writes and answers empty, matching the
// package's nil-safety contract.
type TraceStore struct {
	mu          sync.Mutex
	recent      []RequestRecord // ring; next is the slot Add writes
	next        int
	slow        []RequestRecord // sorted by DurNs descending
	recentLimit int
	slowLimit   int
}

// NewTraceStore returns a store keeping the last recent requests and the
// slow slowest ones (values <= 0 take the defaults).
func NewTraceStore(recent, slow int) *TraceStore {
	if recent <= 0 {
		recent = DefaultRecentTraces
	}
	if slow <= 0 {
		slow = DefaultSlowTraces
	}
	return &TraceStore{
		recent:      make([]RequestRecord, 0, recent),
		recentLimit: recent,
		slowLimit:   slow,
	}
}

// Add records one finished request. No-op on a nil store.
func (ts *TraceStore) Add(rec RequestRecord) {
	if ts == nil {
		return
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if len(ts.recent) < ts.recentLimit {
		ts.recent = append(ts.recent, rec)
	} else {
		ts.recent[ts.next] = rec
	}
	ts.next = (ts.next + 1) % ts.recentLimit
	// Pin into the slowest table when it has room or rec beats its floor.
	if len(ts.slow) < ts.slowLimit || rec.DurNs > ts.slow[len(ts.slow)-1].DurNs {
		ts.slow = append(ts.slow, rec)
		sort.SliceStable(ts.slow, func(i, j int) bool { return ts.slow[i].DurNs > ts.slow[j].DurNs })
		if len(ts.slow) > ts.slowLimit {
			ts.slow = ts.slow[:ts.slowLimit]
		}
	}
}

// Get returns the retained record for a trace id, preferring the most
// recently added match. ok=false when the trace was never seen or has aged
// out of both retention policies.
func (ts *TraceStore) Get(traceID string) (RequestRecord, bool) {
	if ts == nil || traceID == "" {
		return RequestRecord{}, false
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	// Walk the ring newest to oldest.
	for i := 0; i < len(ts.recent); i++ {
		ix := ts.next - 1 - i
		for ix < 0 {
			ix += len(ts.recent)
		}
		ix %= len(ts.recent)
		if ts.recent[ix].TraceID == traceID {
			return ts.recent[ix], true
		}
	}
	for _, rec := range ts.slow {
		if rec.TraceID == traceID {
			return rec, true
		}
	}
	return RequestRecord{}, false
}

// Slowest returns the pinned slowest-request summaries, slowest first.
func (ts *TraceStore) Slowest() []RequestSummary {
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]RequestSummary, len(ts.slow))
	for i, rec := range ts.slow {
		out[i] = rec.summary()
	}
	return out
}

// Len returns the number of records currently retained in the ring.
func (ts *TraceStore) Len() int {
	if ts == nil {
		return 0
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.recent)
}

// TraceHandler serves per-trace lookup: GET ?id=<trace-id> answers the
// retained RequestRecord as indented JSON, 404 when the trace is unknown or
// aged out, 400 without an id. Works (always 404) on a nil store.
func TraceHandler(ts *TraceStore) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.URL.Query().Get("id")
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if id == "" {
			w.WriteHeader(http.StatusBadRequest)
			enc.Encode(map[string]string{"error": "id parameter required (a 32-hex trace id)"})
			return
		}
		rec, ok := ts.Get(id)
		if !ok {
			w.WriteHeader(http.StatusNotFound)
			enc.Encode(map[string]string{"error": "trace " + id + " not retained (unknown, or aged out of the ring)"})
			return
		}
		enc.Encode(rec)
	})
}
