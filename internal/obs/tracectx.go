package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"strings"
)

// TraceContext is the request-scoped trace identity carried across process
// boundaries in the W3C `traceparent` header format (version 00):
//
//	traceparent: 00-<32 hex trace-id>-<16 hex parent-span-id>-<2 hex flags>
//
// The serving tier extracts it from inbound requests (or mints a fresh one
// when absent), threads it through context.Context, and injects it into
// the response so clients, access-log lines and the /debug/obs/trace view
// all name the same request by the same trace ID. IDs are lowercase hex
// strings rather than byte arrays because every consumer here — logs,
// JSON span records, HTTP headers — wants the textual form.
type TraceContext struct {
	// TraceID is the 32-hex-digit trace identifier shared by every span of
	// the request, across processes.
	TraceID string
	// SpanID is the 16-hex-digit id of the current (parent) span — for an
	// inbound header, the caller's span the server's root span hangs off.
	SpanID string
	// Sampled is the recorded flag (bit 0 of trace-flags).
	Sampled bool
}

// Valid reports whether the context carries a well-formed, non-zero trace
// and span id.
func (tc TraceContext) Valid() bool {
	return isHexID(tc.TraceID, 32) && isHexID(tc.SpanID, 16)
}

// TraceParent renders the context in traceparent header syntax.
func (tc TraceContext) TraceParent() string {
	flags := "00"
	if tc.Sampled {
		flags = "01"
	}
	return "00-" + tc.TraceID + "-" + tc.SpanID + "-" + flags
}

// NewTraceContext mints a fresh sampled trace context with random IDs.
func NewTraceContext() TraceContext {
	var buf [24]byte
	if _, err := rand.Read(buf[:]); err != nil {
		// crypto/rand never fails on supported platforms; a zero ID would be
		// rejected by Valid, so fall back to a fixed non-zero pattern.
		for i := range buf {
			buf[i] = byte(i + 1)
		}
	}
	return TraceContext{
		TraceID: hex.EncodeToString(buf[:16]),
		SpanID:  hex.EncodeToString(buf[16:]),
		Sampled: true,
	}
}

// ParseTraceParent parses a traceparent header value. It accepts any
// version except the reserved "ff" (per the W3C spec, higher versions are
// treated as version 00), requires non-zero lowercase-hex trace and span
// IDs, and reports ok=false on anything malformed — callers then mint a
// fresh context instead of failing the request.
func ParseTraceParent(h string) (TraceContext, bool) {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) < 4 {
		return TraceContext{}, false
	}
	version, traceID, spanID, flags := parts[0], parts[1], parts[2], parts[3]
	// Version and flags may legitimately be all zeros; only the IDs carry
	// the W3C zero-is-invalid rule.
	if !isHex(version, 2) || version == "ff" || !isHex(flags, 2) {
		return TraceContext{}, false
	}
	if !isHexID(traceID, 32) || !isHexID(spanID, 16) {
		return TraceContext{}, false
	}
	fb, _ := hex.DecodeString(flags)
	return TraceContext{TraceID: traceID, SpanID: spanID, Sampled: fb[0]&1 == 1}, true
}

// isHex reports whether s is exactly n lowercase hex digits.
func isHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < n; i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// isHexID reports whether s is exactly n lowercase hex digits and not all
// zeros (the W3C invalid-ID sentinel).
func isHexID(s string, n int) bool {
	if !isHex(s, n) {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return true
		}
	}
	return false
}

// StatusFromErr maps an operation error to a span status: "" (ok) for nil,
// "cancelled" for context.Canceled, "deadline" for DeadlineExceeded, and
// "error" for everything else.
func StatusFromErr(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, context.Canceled):
		return StatusCancelled
	case errors.Is(err, context.DeadlineExceeded):
		return StatusDeadline
	default:
		return StatusError
	}
}

// Span status values. The empty string means ok and is omitted from JSON.
const (
	// StatusCancelled marks a span ended because its caller's context was
	// cancelled (client disconnect, a singleflight waiter detaching).
	StatusCancelled = "cancelled"
	// StatusDeadline marks a span ended because its deadline expired.
	StatusDeadline = "deadline"
	// StatusError marks a span ended by a non-context failure.
	StatusError = "error"
)

// ctxKey is the private type for this package's context keys.
type ctxKey int

const (
	traceCtxKey ctxKey = iota
	spanCtxKey
)

// ContextWithTrace returns a context carrying tc, retrievable with
// TraceFromContext.
func ContextWithTrace(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey, tc)
}

// TraceFromContext returns the trace context carried by ctx, if any.
func TraceFromContext(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(traceCtxKey).(TraceContext)
	return tc, ok
}

// ContextWithSpan returns a context carrying sp as the current span, the
// parent that child spans started deeper in the call tree attach to.
// Carrying a nil span is allowed and equivalent to not carrying one.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey, sp)
}

// SpanFromContext returns the current span carried by ctx, or nil. A nil
// result chains safely into Child/SetAttr/End, so instrumented code needs
// no tracing-enabled branch — on a context without a span (tracing off,
// a library caller with context.Background()) the cost is one Value lookup.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanCtxKey).(*Span)
	return sp
}
