package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// DebugSnapshot is the JSON document served at /debug/obs: the live
// metrics snapshot plus the trace stage table (the full span timeline is
// written by -trace-out, not served, to keep the endpoint cheap).
type DebugSnapshot struct {
	// Metrics is the registry snapshot.
	Metrics Snapshot `json:"metrics"`
	// Stages is the aggregated per-stage duration table.
	Stages []StageStat `json:"stages"`
	// TraceDropped counts spans lost to the trace buffer bound.
	TraceDropped int64 `json:"trace_dropped"`
	// Slowest lists the pinned slowest-request summaries, slowest first
	// (full span trees via /debug/obs/trace?id=).
	Slowest []RequestSummary `json:"slowest,omitempty"`
}

// Handler returns an http.Handler serving the DebugSnapshot of o as
// indented JSON. Works (serving empty documents) on a nil Obs.
func Handler(o *Obs) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		var snap DebugSnapshot
		if o != nil {
			snap.Metrics = o.Metrics.Snapshot()
			snap.Stages = o.Trace.Stages()
			snap.TraceDropped = o.Trace.Dropped()
			snap.Slowest = o.Requests.Slowest()
		}
		if snap.Stages == nil {
			snap.Stages = []StageStat{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(snap)
	})
}

// NewDebugMux returns a mux exposing the standard debug surface for o:
//
//	/debug/vars       — expvar (including the registry if published there)
//	/debug/pprof      — net/http/pprof profiles
//	/debug/obs        — the DebugSnapshot JSON
//	/debug/obs/trace  — per-trace span tree lookup (?id=<trace-id>)
//
// A dedicated mux (rather than http.DefaultServeMux) keeps the endpoint
// from leaking into any other server the process runs.
func NewDebugMux(o *Obs) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/obs", Handler(o))
	var reqs *TraceStore
	if o != nil {
		reqs = o.Requests
	}
	mux.Handle("/debug/obs/trace", TraceHandler(reqs))
	return mux
}

// ServeDebug starts the debug endpoint on addr in a background goroutine
// and returns the server plus the bound address (useful with ":0"). The
// caller owns shutdown via srv.Close. The registry is also published to
// expvar under "pmgard" so /debug/vars carries it.
func ServeDebug(addr string, o *Obs) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("obs: debug listen %s: %w", addr, err)
	}
	if o != nil {
		o.Metrics.PublishExpvar("pmgard")
	}
	srv := &http.Server{Handler: NewDebugMux(o)}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}
