package obs

// Obs bundles the two observability facilities a pipeline stage may use: a
// metrics registry and a span tracer. A nil *Obs (the default everywhere)
// disables both at the cost of one nil check per instrumented operation,
// which is what keeps the instrumented hot paths within benchmark noise
// when observability is off.
type Obs struct {
	// Metrics is the metrics registry; nil disables metrics.
	Metrics *Registry
	// Trace is the span tracer; nil disables tracing.
	Trace *Tracer
	// Requests retains finished request traces for /debug/obs (slowest
	// table and per-trace lookup); nil disables retention.
	Requests *TraceStore
}

// New returns an Obs with a fresh registry, a default-bounded tracer whose
// drops surface as the obs.spans_dropped counter, and a default-bounded
// request trace store.
func New() *Obs {
	o := &Obs{Metrics: NewRegistry(), Trace: NewTracer(0), Requests: NewTraceStore(0, 0)}
	o.Trace.BindDroppedCounter(o.Metrics.Counter("obs.spans_dropped"))
	return o
}

// Counter is a nil-safe shorthand for o.Metrics.Counter(name).
func (o *Obs) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	return o.Metrics.Counter(name)
}

// Gauge is a nil-safe shorthand for o.Metrics.Gauge(name).
func (o *Obs) Gauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	return o.Metrics.Gauge(name)
}

// Histogram is a nil-safe shorthand for o.Metrics.Histogram(name, bounds).
func (o *Obs) Histogram(name string, bounds []float64) *Histogram {
	if o == nil {
		return nil
	}
	return o.Metrics.Histogram(name, bounds)
}

// Span is a nil-safe shorthand for o.Trace.Start(name, parent).
func (o *Obs) Span(name string, parent *Span) *Span {
	if o == nil {
		return nil
	}
	return o.Trace.Start(name, parent)
}
