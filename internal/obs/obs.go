package obs

// Obs bundles the two observability facilities a pipeline stage may use: a
// metrics registry and a span tracer. A nil *Obs (the default everywhere)
// disables both at the cost of one nil check per instrumented operation,
// which is what keeps the instrumented hot paths within benchmark noise
// when observability is off.
type Obs struct {
	// Metrics is the metrics registry; nil disables metrics.
	Metrics *Registry
	// Trace is the span tracer; nil disables tracing.
	Trace *Tracer
}

// New returns an Obs with a fresh registry and a default-bounded tracer.
func New() *Obs {
	return &Obs{Metrics: NewRegistry(), Trace: NewTracer(0)}
}

// Counter is a nil-safe shorthand for o.Metrics.Counter(name).
func (o *Obs) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	return o.Metrics.Counter(name)
}

// Gauge is a nil-safe shorthand for o.Metrics.Gauge(name).
func (o *Obs) Gauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	return o.Metrics.Gauge(name)
}

// Histogram is a nil-safe shorthand for o.Metrics.Histogram(name, bounds).
func (o *Obs) Histogram(name string, bounds []float64) *Histogram {
	if o == nil {
		return nil
	}
	return o.Metrics.Histogram(name, bounds)
}

// Span is a nil-safe shorthand for o.Trace.Start(name, parent).
func (o *Obs) Span(name string, parent *Span) *Span {
	if o == nil {
		return nil
	}
	return o.Trace.Start(name, parent)
}
