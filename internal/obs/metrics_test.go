package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestCounterConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test.concurrent")
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	// Get-or-create must return the same instrument.
	if r.Counter("test.concurrent") != c {
		t.Fatal("Counter returned a different instance for the same name")
	}
}

func TestGaugeAddAndSet(t *testing.T) {
	g := &Gauge{}
	g.Set(2.5)
	g.Add(0.5)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %g, want 2", got)
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	g := &Gauge{}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				g.Add(0.25)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 8*500*0.25 {
		t.Fatalf("gauge = %g, want %g", got, 8*500*0.25)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	// Exactly on a bound lands in that bound's bucket (first bound >= v).
	cases := []struct {
		v      float64
		bucket int
	}{
		{0.5, 0},
		{1, 0}, // == first bound
		{1.001, 1},
		{10, 1}, // == second bound
		{99, 2},
		{100, 2},   // == last bound
		{100.5, 3}, // overflow
		{math.Inf(1), 3},
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	snap := h.snapshot()
	want := []int64{2, 2, 2, 2}
	for i, w := range want {
		if snap.Counts[i] != w {
			t.Fatalf("bucket %d count = %d, want %d (counts %v)", i, snap.Counts[i], w, snap.Counts)
		}
	}
	if snap.Count != int64(len(cases)) {
		t.Fatalf("count = %d, want %d", snap.Count, len(cases))
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(ExpBuckets(1, 2, 10))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				h.Observe(float64(g*250 + i))
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != 2000 {
		t.Fatalf("count = %d, want 2000", h.Count())
	}
	snap := h.snapshot()
	var total int64
	for _, c := range snap.Counts {
		total += c
	}
	if total != 2000 {
		t.Fatalf("bucket counts sum to %d, want 2000", total)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1e-6, 4, 4)
	want := []float64{1e-6, 4e-6, 16e-6, 64e-6}
	if len(b) != len(want) {
		t.Fatalf("got %d buckets, want %d", len(b), len(want))
	}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-18 {
			t.Fatalf("bucket %d = %g, want %g", i, b[i], want[i])
		}
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("buckets not increasing at %d: %v", i, b)
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.count").Add(7)
	r.Gauge("a.gauge").Set(1.5)
	r.Histogram("a.hist", []float64{1, 2}).Observe(1.5)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot does not round-trip: %v", err)
	}
	if snap.Counters["a.count"] != 7 {
		t.Fatalf("counter = %d, want 7", snap.Counters["a.count"])
	}
	if snap.Gauges["a.gauge"] != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", snap.Gauges["a.gauge"])
	}
	hs, ok := snap.Histograms["a.hist"]
	if !ok || hs.Count != 1 || hs.Counts[1] != 1 {
		t.Fatalf("histogram snapshot wrong: %+v", hs)
	}
	for _, name := range []string{"a.count", "a.gauge", "a.hist"} {
		if !snap.Has(name) {
			t.Fatalf("Has(%q) = false", name)
		}
	}
	if snap.Has("missing") {
		t.Fatal("Has(missing) = true")
	}
}

func TestNilRegistryAndInstrumentsAreInert(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(1)
	r.Gauge("x").Set(1)
	r.Histogram("x", ByteBuckets()).Observe(1)
	if s := r.Snapshot(); len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	var o *Obs
	o.Counter("x").Add(1)
	o.Gauge("x").Add(1)
	o.Histogram("x", nil).Observe(1)
	o.Span("x", nil).Child("y").End()
	var c *Counter
	if c.Value() != 0 {
		t.Fatal("nil counter reads nonzero")
	}
	var g *Gauge
	if g.Value() != 0 {
		t.Fatal("nil gauge reads nonzero")
	}
	var h *Histogram
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram reads nonzero")
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	r := NewRegistry()
	r.Counter("pub.count").Add(3)
	r.PublishExpvar("obs-test-registry")
	r.PublishExpvar("obs-test-registry") // must not panic
	other := NewRegistry()
	other.PublishExpvar("obs-test-registry") // first registry wins
}
