package obs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestSpanNestingAndOrderingInDump(t *testing.T) {
	tr := NewTracer(0)
	root := tr.Start("run", nil)
	a := root.Child("stage.a")
	aa := a.Child("stage.a.inner")
	time.Sleep(time.Millisecond)
	aa.End()
	a.End()
	b := root.Child("stage.b")
	b.SetAttr("level", 3)
	b.SetAttr("what", "fetch")
	b.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var dump TraceDump
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("trace dump does not round-trip: %v", err)
	}
	if len(dump.Spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(dump.Spans))
	}
	byName := make(map[string]SpanRecord)
	for _, s := range dump.Spans {
		byName[s.Name] = s
	}
	// Parent links: run is the root; a and b hang off run; inner off a.
	if byName["run"].Parent != 0 {
		t.Fatalf("root has parent %d", byName["run"].Parent)
	}
	if byName["stage.a"].Parent != byName["run"].ID {
		t.Fatal("stage.a not parented to run")
	}
	if byName["stage.a.inner"].Parent != byName["stage.a"].ID {
		t.Fatal("inner not parented to stage.a")
	}
	if byName["stage.b"].Parent != byName["run"].ID {
		t.Fatal("stage.b not parented to run")
	}
	// Attributes survive the dump.
	if got := byName["stage.b"].Attrs["level"]; got != float64(3) {
		t.Fatalf("attr level = %v, want 3", got)
	}
	if got := byName["stage.b"].Attrs["what"]; got != "fetch" {
		t.Fatalf("attr what = %v, want fetch", got)
	}
	// Timeline ordering: starts are non-decreasing.
	for i := 1; i < len(dump.Spans); i++ {
		if dump.Spans[i].StartNs < dump.Spans[i-1].StartNs {
			t.Fatalf("timeline out of order at %d", i)
		}
	}
	// A child's interval nests inside its parent's.
	par, ch := byName["stage.a"], byName["stage.a.inner"]
	if ch.StartNs < par.StartNs || ch.StartNs+ch.DurNs > par.StartNs+par.DurNs+int64(time.Millisecond) {
		t.Fatalf("child interval escapes parent: parent [%d,+%d], child [%d,+%d]",
			par.StartNs, par.DurNs, ch.StartNs, ch.DurNs)
	}
	// Stage table aggregates by name.
	stages := make(map[string]StageStat)
	for _, s := range dump.Stages {
		stages[s.Name] = s
	}
	if stages["stage.a.inner"].Count != 1 || stages["stage.a.inner"].TotalNs < int64(time.Millisecond) {
		t.Fatalf("stage table wrong for inner: %+v", stages["stage.a.inner"])
	}
}

func TestTracerBoundDropsBeyondLimit(t *testing.T) {
	tr := NewTracer(2)
	for i := 0; i < 5; i++ {
		tr.Start("s", nil).End()
	}
	if got := len(tr.Timeline()); got != 2 {
		t.Fatalf("retained %d spans, want 2", got)
	}
	if got := tr.Dropped(); got != 3 {
		t.Fatalf("dropped = %d, want 3", got)
	}
}

func TestSpanDoubleEndRecordsOnce(t *testing.T) {
	tr := NewTracer(0)
	s := tr.Start("once", nil)
	s.End()
	s.End()
	if got := len(tr.Timeline()); got != 1 {
		t.Fatalf("recorded %d spans, want 1", got)
	}
}

func TestNilTracerInert(t *testing.T) {
	var tr *Tracer
	s := tr.Start("x", nil)
	s.SetAttr("k", 1)
	s.Child("y").End()
	s.End()
	if tr.Timeline() != nil || tr.Stages() != nil || tr.Dropped() != 0 {
		t.Fatal("nil tracer not inert")
	}
}

func TestDebugEndpointServesSnapshot(t *testing.T) {
	o := New()
	o.Counter("debug.count").Add(5)
	sp := o.Span("debug.stage", nil)
	sp.End()
	srv := httptest.NewServer(NewDebugMux(o))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/obs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap DebugSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Metrics.Counters["debug.count"] != 5 {
		t.Fatalf("served counter = %d, want 5", snap.Metrics.Counters["debug.count"])
	}
	if len(snap.Stages) != 1 || snap.Stages[0].Name != "debug.stage" {
		t.Fatalf("served stages = %+v", snap.Stages)
	}

	// The pprof and expvar mounts answer too.
	for _, path := range []string{"/debug/pprof/", "/debug/vars"} {
		r2, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
		if r2.StatusCode != http.StatusOK {
			t.Fatalf("%s returned %d", path, r2.StatusCode)
		}
	}
}

func TestServeDebugBindsAndCloses(t *testing.T) {
	o := New()
	srv, addr, err := ServeDebug("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr + "/debug/obs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}
