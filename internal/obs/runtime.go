package obs

import "runtime"

// EnableRuntimeMetrics makes every Snapshot of the registry sample process
// health first: goroutine count and runtime.MemStats heap/GC gauges land
// under runtime.*, so /metrics (JSON or Prometheus) covers the serving
// process itself without cgo or external dependencies. Opt-in because
// ReadMemStats briefly stops the world — batch pipelines snapshotting
// per-iteration should not pay it implicitly. No-op on a nil registry.
func (r *Registry) EnableRuntimeMetrics() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.runtimeMetrics = true
	r.mu.Unlock()
}

// sampleRuntime refreshes the runtime.* gauges. Called outside r.mu so the
// stop-the-world pause in ReadMemStats never extends a registry lock hold.
func (r *Registry) sampleRuntime() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.Gauge("runtime.goroutines").Set(float64(runtime.NumGoroutine()))
	r.Gauge("runtime.heap_alloc_bytes").Set(float64(ms.HeapAlloc))
	r.Gauge("runtime.heap_sys_bytes").Set(float64(ms.HeapSys))
	r.Gauge("runtime.heap_objects").Set(float64(ms.HeapObjects))
	r.Gauge("runtime.gc_cycles").Set(float64(ms.NumGC))
	r.Gauge("runtime.gc_pause_total_seconds").Set(float64(ms.PauseTotalNs) / 1e9)
	r.Gauge("runtime.next_gc_bytes").Set(float64(ms.NextGC))
}
