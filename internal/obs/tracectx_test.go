package obs

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestParseTraceParentRoundTrip(t *testing.T) {
	tc := NewTraceContext()
	if !tc.Valid() {
		t.Fatalf("minted trace context invalid: %+v", tc)
	}
	got, ok := ParseTraceParent(tc.TraceParent())
	if !ok {
		t.Fatalf("ParseTraceParent rejected own output %q", tc.TraceParent())
	}
	if got != tc {
		t.Fatalf("round trip changed context: %+v -> %+v", tc, got)
	}
}

func TestParseTraceParentValid(t *testing.T) {
	h := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	tc, ok := ParseTraceParent(h)
	if !ok {
		t.Fatalf("rejected valid header %q", h)
	}
	if tc.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" || tc.SpanID != "00f067aa0ba902b7" || !tc.Sampled {
		t.Fatalf("parsed wrong: %+v", tc)
	}
	// Unsampled flag.
	tc, ok = ParseTraceParent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00")
	if !ok || tc.Sampled {
		t.Fatalf("flags 00 should parse unsampled, got ok=%v %+v", ok, tc)
	}
	// Higher versions are treated as version 00 (may carry extra fields).
	if _, ok := ParseTraceParent("42-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"); !ok {
		t.Fatal("future version with trailing fields should parse")
	}
}

func TestParseTraceParentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-short-00f067aa0ba902b7-01",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-short-01",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span id
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // reserved version
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", // uppercase
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",    // missing flags
		"garbage",
	}
	for _, h := range bad {
		if tc, ok := ParseTraceParent(h); ok {
			t.Errorf("accepted malformed %q as %+v", h, tc)
		}
	}
}

func TestNewTraceContextUnique(t *testing.T) {
	a, b := NewTraceContext(), NewTraceContext()
	if a.TraceID == b.TraceID {
		t.Fatalf("two minted contexts share trace id %s", a.TraceID)
	}
}

func TestContextCarriesTraceAndSpan(t *testing.T) {
	ctx := context.Background()
	if _, ok := TraceFromContext(ctx); ok {
		t.Fatal("empty context reports a trace")
	}
	if sp := SpanFromContext(ctx); sp != nil {
		t.Fatal("empty context reports a span")
	}
	tc := NewTraceContext()
	ctx = ContextWithTrace(ctx, tc)
	got, ok := TraceFromContext(ctx)
	if !ok || got != tc {
		t.Fatalf("trace round trip: ok=%v got=%+v", ok, got)
	}

	tr := NewTracer(0)
	sp := tr.StartTrace("root", tc.TraceID)
	ctx = ContextWithSpan(ctx, sp)
	if SpanFromContext(ctx) != sp {
		t.Fatal("span round trip failed")
	}
	// Nil span leaves the context unchanged, and chained child calls on the
	// absent span stay inert.
	base := context.Background()
	if ContextWithSpan(base, nil) != base {
		t.Fatal("ContextWithSpan(nil) should return ctx unchanged")
	}
	child := SpanFromContext(base).Child("x")
	if child != nil {
		t.Fatal("child of absent span should be nil")
	}
	child.SetAttr("k", 1)
	child.End() // must not panic
}

func TestStatusFromErr(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, ""},
		{context.Canceled, StatusCancelled},
		{context.DeadlineExceeded, StatusDeadline},
		{fmt.Errorf("wrapped: %w", context.Canceled), StatusCancelled},
		{fmt.Errorf("wrapped: %w", context.DeadlineExceeded), StatusDeadline},
		{errors.New("boom"), StatusError},
	}
	for _, c := range cases {
		if got := StatusFromErr(c.err); got != c.want {
			t.Errorf("StatusFromErr(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

func TestSpanTraceIDInheritanceAndStatus(t *testing.T) {
	tr := NewTracer(0)
	root := tr.StartTrace("root", "0123456789abcdef0123456789abcdef")
	child := root.Child("child")
	grand := child.Child("grand")
	if got := grand.TraceID(); got != "0123456789abcdef0123456789abcdef" {
		t.Fatalf("grandchild trace id %q not inherited", got)
	}
	if root.HexID() == "" || len(root.HexID()) != 16 {
		t.Fatalf("root HexID %q not 16 hex digits", root.HexID())
	}
	grand.Fail(context.Canceled)
	grand.End()
	child.Fail(nil) // nil err must not clobber status
	child.SetStatus(StatusError)
	child.End()
	root.End()
	tl := tr.Timeline()
	if len(tl) != 3 {
		t.Fatalf("timeline has %d spans, want 3", len(tl))
	}
	byName := map[string]SpanRecord{}
	for _, rec := range tl {
		byName[rec.Name] = rec
		if rec.TraceID != "0123456789abcdef0123456789abcdef" {
			t.Errorf("span %s trace id %q", rec.Name, rec.TraceID)
		}
	}
	if byName["grand"].Status != StatusCancelled {
		t.Errorf("grand status %q, want cancelled", byName["grand"].Status)
	}
	if byName["child"].Status != StatusError {
		t.Errorf("child status %q, want error", byName["child"].Status)
	}
	if byName["root"].Status != "" {
		t.Errorf("root status %q, want ok", byName["root"].Status)
	}
	if byName["grand"].Parent != byName["child"].ID || byName["child"].Parent != byName["root"].ID {
		t.Error("parent links broken across the tree")
	}
}

func TestAbsorbMergesSpansAcrossTracers(t *testing.T) {
	reqTracer := NewTracer(0)
	root := reqTracer.StartTrace("http.refine", "aaaabbbbccccddddaaaabbbbccccdddd")
	root.Child("stage").End()
	root.End()

	proc := NewTracer(0)
	proc.Start("local", nil).End()
	proc.Absorb(reqTracer.Timeline())
	tl := proc.Timeline()
	if len(tl) != 3 {
		t.Fatalf("absorbed timeline has %d spans, want 3", len(tl))
	}
	ids := map[int64]bool{}
	for _, rec := range tl {
		if ids[rec.ID] {
			t.Fatalf("span id %d collides after absorb", rec.ID)
		}
		ids[rec.ID] = true
	}
}

func TestSpansDroppedCounter(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(2)
	tr.Start("pre-bind-kept", nil).End()
	tr.Start("pre-bind-kept2", nil).End()
	tr.Start("pre-bind-dropped", nil).End() // dropped before binding
	c := r.Counter("obs.spans_dropped")
	tr.BindDroppedCounter(c)
	if c.Value() != 1 {
		t.Fatalf("bind should fold in prior drops: counter = %d, want 1", c.Value())
	}
	tr.Start("post-bind-dropped", nil).End()
	if c.Value() != 2 {
		t.Fatalf("post-bind drop not mirrored: counter = %d, want 2", c.Value())
	}
	if tr.Dropped() != 2 {
		t.Fatalf("tracer dropped = %d, want 2", tr.Dropped())
	}
	snap := r.Snapshot()
	if snap.Counters["obs.spans_dropped"] != 2 {
		t.Fatalf("snapshot obs.spans_dropped = %d, want 2", snap.Counters["obs.spans_dropped"])
	}
}

func TestNewObsWiresDropCounterAndRequests(t *testing.T) {
	o := New()
	if o.Requests == nil {
		t.Fatal("New() should attach a request trace store")
	}
	// Saturate the default tracer and confirm the drop lands in the registry.
	for i := 0; i < DefaultTraceLimit+3; i++ {
		o.Trace.Start("s", nil).End()
	}
	if got := o.Metrics.Snapshot().Counters["obs.spans_dropped"]; got != 3 {
		t.Fatalf("obs.spans_dropped = %d, want 3", got)
	}
}
