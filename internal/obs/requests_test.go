package obs

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"
)

func reqRec(id string, dur int64) RequestRecord {
	return RequestRecord{
		TraceID: id,
		Name:    "refine",
		Status:  200,
		StartNs: 1,
		DurNs:   dur,
		Spans:   []SpanRecord{{ID: 1, Name: "http.refine", TraceID: id, DurNs: dur}},
	}
}

func TestTraceStoreRingEviction(t *testing.T) {
	ts := NewTraceStore(3, 2)
	for i := 0; i < 5; i++ {
		ts.Add(reqRec(fmt.Sprintf("trace-%d", i), int64(10)))
	}
	if ts.Len() != 3 {
		t.Fatalf("ring holds %d, want 3", ts.Len())
	}
	// Oldest two rolled out (and were never slow enough to pin beyond the
	// first two slots); newest three are retrievable.
	for i := 2; i < 5; i++ {
		if _, ok := ts.Get(fmt.Sprintf("trace-%d", i)); !ok {
			t.Errorf("trace-%d missing from ring", i)
		}
	}
}

func TestTraceStoreSlowestRetention(t *testing.T) {
	ts := NewTraceStore(2, 2)
	ts.Add(reqRec("slow-a", 1000))
	ts.Add(reqRec("slow-b", 2000))
	// Flood with fast requests: the ring rolls over, but the slow pair stays
	// pinned.
	for i := 0; i < 10; i++ {
		ts.Add(reqRec(fmt.Sprintf("fast-%d", i), 1))
	}
	slow := ts.Slowest()
	if len(slow) != 2 || slow[0].TraceID != "slow-b" || slow[1].TraceID != "slow-a" {
		t.Fatalf("slowest = %+v, want [slow-b slow-a]", slow)
	}
	if slow[0].Spans != 1 {
		t.Fatalf("summary span count = %d, want 1", slow[0].Spans)
	}
	// Get still resolves a pinned trace that aged out of the ring.
	if rec, ok := ts.Get("slow-a"); !ok || len(rec.Spans) != 1 {
		t.Fatalf("pinned slow trace not retrievable: ok=%v rec=%+v", ok, rec)
	}
}

func TestTraceStoreGetPrefersNewest(t *testing.T) {
	ts := NewTraceStore(4, 4)
	ts.Add(RequestRecord{TraceID: "dup", Status: 200, DurNs: 1})
	ts.Add(RequestRecord{TraceID: "dup", Status: 503, DurNs: 2})
	rec, ok := ts.Get("dup")
	if !ok || rec.Status != 503 {
		t.Fatalf("Get returned %+v, want the newest (503)", rec)
	}
}

func TestTraceStoreNilSafe(t *testing.T) {
	var ts *TraceStore
	ts.Add(reqRec("x", 1))
	if _, ok := ts.Get("x"); ok {
		t.Fatal("nil store returned a record")
	}
	if ts.Slowest() != nil || ts.Len() != 0 {
		t.Fatal("nil store not empty")
	}
}

func TestTraceHandler(t *testing.T) {
	ts := NewTraceStore(4, 4)
	ts.Add(reqRec("findme", 42))
	h := TraceHandler(ts)

	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/debug/obs/trace?id=findme", nil))
	if w.Code != 200 {
		t.Fatalf("known trace: status %d", w.Code)
	}
	var rec RequestRecord
	if err := json.Unmarshal(w.Body.Bytes(), &rec); err != nil {
		t.Fatalf("bad JSON body: %v", err)
	}
	if rec.TraceID != "findme" || len(rec.Spans) != 1 {
		t.Fatalf("served %+v", rec)
	}

	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/debug/obs/trace?id=unknown", nil))
	if w.Code != 404 {
		t.Fatalf("unknown trace: status %d, want 404", w.Code)
	}

	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/debug/obs/trace", nil))
	if w.Code != 400 {
		t.Fatalf("missing id: status %d, want 400", w.Code)
	}

	w = httptest.NewRecorder()
	TraceHandler(nil).ServeHTTP(w, httptest.NewRequest("GET", "/debug/obs/trace?id=x", nil))
	if w.Code != 404 {
		t.Fatalf("nil store: status %d, want 404", w.Code)
	}
}
