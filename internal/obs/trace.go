package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTraceLimit bounds the in-memory span buffer of a tracer created
// with limit <= 0. 4096 spans comfortably covers a full compress or
// retrieve run at the paper's 5-level × 32-plane configuration.
const DefaultTraceLimit = 4096

// nextSpanID issues span IDs unique across every tracer in the process, so
// span records from per-request tracers can be absorbed into a process-wide
// timeline without parent links colliding.
var nextSpanID atomic.Int64

// Tracer records a bounded in-memory trace of spans. Spans beyond the
// limit are counted as dropped rather than grown — a trace is a debugging
// artifact, not an unbounded log. A nil *Tracer hands out nil spans and
// every span operation on a nil *Span is a no-op.
type Tracer struct {
	limit int
	// droppedC, when bound, mirrors the dropped count into a registry
	// counter (obs.spans_dropped) so buffer saturation is visible in
	// metrics snapshots, not only in the trace dump.
	droppedC *Counter

	mu      sync.Mutex
	spans   []SpanRecord
	dropped int64
}

// NewTracer returns a tracer that retains at most limit finished spans
// (limit <= 0 means DefaultTraceLimit).
func NewTracer(limit int) *Tracer {
	if limit <= 0 {
		limit = DefaultTraceLimit
	}
	return &Tracer{limit: limit}
}

// BindDroppedCounter mirrors future span drops into c (and folds in any
// drops counted so far), so a registry snapshot carries tracer saturation
// as obs.spans_dropped. No-op on a nil tracer or counter.
func (t *Tracer) BindDroppedCounter(c *Counter) {
	if t == nil || c == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	c.Add(t.dropped)
	t.droppedC = c
}

// Span is one in-flight traced operation. Create with Tracer.Start (or
// Span.Child), attach attributes, then End it exactly once. A nil *Span
// is inert, so callers never need to guard on tracing being enabled.
type Span struct {
	t       *Tracer
	id      int64
	parent  int64
	traceID string
	name    string
	start   time.Time

	mu     sync.Mutex
	attrs  map[string]any
	status string
	ended  bool
}

// Start begins a span under the given parent (nil parent means a root
// span). The span inherits the parent's trace ID. Returns nil on a nil
// tracer.
func (t *Tracer) Start(name string, parent *Span) *Span {
	if t == nil {
		return nil
	}
	var pid int64
	var traceID string
	if parent != nil {
		pid = parent.id
		traceID = parent.traceID
	}
	return &Span{
		t:       t,
		id:      nextSpanID.Add(1),
		parent:  pid,
		traceID: traceID,
		name:    name,
		start:   time.Now(),
	}
}

// StartTrace begins a root span stamped with the given trace ID; every
// descendant started via Child inherits it, forming one request-scoped
// span tree identifiable across logs, metrics exemplars and the
// /debug/obs/trace view. Returns nil on a nil tracer.
func (t *Tracer) StartTrace(name, traceID string) *Span {
	sp := t.Start(name, nil)
	if sp != nil {
		sp.traceID = traceID
	}
	return sp
}

// Child starts a sub-span of s. Returns nil on a nil span, so span trees
// degrade gracefully when tracing is off.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.t.Start(name, s)
}

// HexID returns the span's id as 16 hex digits — the W3C span-id form used
// in traceparent headers. Empty on a nil span.
func (s *Span) HexID() string {
	if s == nil {
		return ""
	}
	return fmt.Sprintf("%016x", uint64(s.id))
}

// TraceID returns the trace id the span belongs to (empty on a nil span or
// outside any trace).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.traceID
}

// SetStatus records the span's terminal status ("" means ok; the
// StatusCancelled/StatusDeadline/StatusError constants cover the failure
// modes). No-op on a nil or ended span.
func (s *Span) SetStatus(status string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	s.status = status
}

// Fail stamps the span with the status StatusFromErr derives from err; a
// nil err leaves the status untouched, so Fail(err) before End() is safe on
// every return path.
func (s *Span) Fail(err error) {
	if err != nil {
		s.SetStatus(StatusFromErr(err))
	}
}

// SetAttr attaches one key/value attribute to the span. Values should be
// JSON-marshalable (numbers, strings, bools). No-op on a nil or ended
// span.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]any)
	}
	s.attrs[key] = value
}

// End finishes the span and commits it to the tracer's buffer. Ending a
// span twice records it once; ending a nil span is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs, status := s.attrs, s.status
	s.mu.Unlock()
	rec := SpanRecord{
		ID:      s.id,
		Parent:  s.parent,
		TraceID: s.traceID,
		Name:    s.name,
		Status:  status,
		StartNs: s.start.UnixNano(),
		DurNs:   end.Sub(s.start).Nanoseconds(),
		Attrs:   attrs,
	}
	s.t.record(rec)
}

// record commits one finished span, counting it as dropped at capacity.
func (t *Tracer) record(rec SpanRecord) {
	t.mu.Lock()
	var droppedC *Counter
	if len(t.spans) < t.limit {
		t.spans = append(t.spans, rec)
	} else {
		t.dropped++
		droppedC = t.droppedC
	}
	t.mu.Unlock()
	droppedC.Add(1)
}

// Absorb copies finished span records — typically a per-request tracer's
// timeline — into this tracer's buffer, subject to the same capacity bound
// as locally recorded spans. Span IDs are process-unique, so parent links
// survive the merge. No-op on a nil tracer.
func (t *Tracer) Absorb(spans []SpanRecord) {
	if t == nil {
		return
	}
	for _, rec := range spans {
		t.record(rec)
	}
}

// SpanRecord is one finished span in the JSON timeline.
type SpanRecord struct {
	// ID is the span's process-unique id.
	ID int64 `json:"id"`
	// Parent is the id of the enclosing span, 0 for roots.
	Parent int64 `json:"parent"`
	// TraceID is the request trace the span belongs to; empty for spans
	// recorded outside any request (batch pipeline stages).
	TraceID string `json:"trace_id,omitempty"`
	// Name is the stage name ("decompose.pass", "storage.segment", ...).
	Name string `json:"name"`
	// Status is the terminal status: empty means ok, otherwise one of the
	// Status* constants ("cancelled", "deadline", "error").
	Status string `json:"status,omitempty"`
	// StartNs is the span start as Unix nanoseconds.
	StartNs int64 `json:"start_ns"`
	// DurNs is the span duration in nanoseconds.
	DurNs int64 `json:"dur_ns"`
	// Attrs carries the per-span attributes, if any.
	Attrs map[string]any `json:"attrs,omitempty"`
}

// Timeline returns the finished spans ordered by start time (ties broken
// by id, so the order is deterministic).
func (t *Tracer) Timeline() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]SpanRecord(nil), t.spans...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartNs != out[j].StartNs {
			return out[i].StartNs < out[j].StartNs
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Dropped returns the number of spans discarded because the buffer was
// full.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// StageStat is one row of the flat per-stage duration table: every span
// sharing a name aggregated into count/total/min/max durations.
type StageStat struct {
	// Name is the shared span name.
	Name string `json:"name"`
	// Count is the number of spans with this name.
	Count int64 `json:"count"`
	// TotalNs, MinNs and MaxNs aggregate the span durations.
	TotalNs int64 `json:"total_ns"`
	MinNs   int64 `json:"min_ns"`
	MaxNs   int64 `json:"max_ns"`
}

// Stages aggregates the timeline by span name, sorted by descending total
// duration (ties by name for determinism).
func (t *Tracer) Stages() []StageStat {
	if t == nil {
		return nil
	}
	byName := make(map[string]*StageStat)
	for _, s := range t.Timeline() {
		st, ok := byName[s.Name]
		if !ok {
			st = &StageStat{Name: s.Name, MinNs: s.DurNs, MaxNs: s.DurNs}
			byName[s.Name] = st
		}
		st.Count++
		st.TotalNs += s.DurNs
		if s.DurNs < st.MinNs {
			st.MinNs = s.DurNs
		}
		if s.DurNs > st.MaxNs {
			st.MaxNs = s.DurNs
		}
	}
	out := make([]StageStat, 0, len(byName))
	for _, st := range byName {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalNs != out[j].TotalNs {
			return out[i].TotalNs > out[j].TotalNs
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// TraceDump is the JSON document written by Tracer.WriteJSON: the full
// span timeline plus the aggregated per-stage duration table.
type TraceDump struct {
	// Spans is the timeline ordered by start time.
	Spans []SpanRecord `json:"spans"`
	// Stages is the flat per-stage duration table.
	Stages []StageStat `json:"stages"`
	// Dropped counts spans lost to the buffer bound.
	Dropped int64 `json:"dropped"`
}

// WriteJSON writes the trace dump (timeline + stage table) as indented
// JSON.
func (t *Tracer) WriteJSON(w io.Writer) error {
	dump := TraceDump{Spans: t.Timeline(), Stages: t.Stages(), Dropped: t.Dropped()}
	if dump.Spans == nil {
		dump.Spans = []SpanRecord{}
	}
	if dump.Stages == nil {
		dump.Stages = []StageStat{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(dump)
}

// WriteFile writes the trace dump to path, truncating any existing file.
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: create %s: %w", path, err)
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: write %s: %w", path, err)
	}
	return f.Close()
}
