package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTraceLimit bounds the in-memory span buffer of a tracer created
// with limit <= 0. 4096 spans comfortably covers a full compress or
// retrieve run at the paper's 5-level × 32-plane configuration.
const DefaultTraceLimit = 4096

// Tracer records a bounded in-memory trace of spans. Spans beyond the
// limit are counted as dropped rather than grown — a trace is a debugging
// artifact, not an unbounded log. A nil *Tracer hands out nil spans and
// every span operation on a nil *Span is a no-op.
type Tracer struct {
	limit  int
	nextID atomic.Int64

	mu      sync.Mutex
	spans   []SpanRecord
	dropped int64
}

// NewTracer returns a tracer that retains at most limit finished spans
// (limit <= 0 means DefaultTraceLimit).
func NewTracer(limit int) *Tracer {
	if limit <= 0 {
		limit = DefaultTraceLimit
	}
	return &Tracer{limit: limit}
}

// Span is one in-flight traced operation. Create with Tracer.Start (or
// Span.Child), attach attributes, then End it exactly once. A nil *Span
// is inert, so callers never need to guard on tracing being enabled.
type Span struct {
	t      *Tracer
	id     int64
	parent int64
	name   string
	start  time.Time

	mu    sync.Mutex
	attrs map[string]any
	ended bool
}

// Start begins a span under the given parent (nil parent means a root
// span). Returns nil on a nil tracer.
func (t *Tracer) Start(name string, parent *Span) *Span {
	if t == nil {
		return nil
	}
	var pid int64
	if parent != nil {
		pid = parent.id
	}
	return &Span{
		t:      t,
		id:     t.nextID.Add(1),
		parent: pid,
		name:   name,
		start:  time.Now(),
	}
}

// Child starts a sub-span of s. Returns nil on a nil span, so span trees
// degrade gracefully when tracing is off.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.t.Start(name, s)
}

// SetAttr attaches one key/value attribute to the span. Values should be
// JSON-marshalable (numbers, strings, bools). No-op on a nil or ended
// span.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]any)
	}
	s.attrs[key] = value
}

// End finishes the span and commits it to the tracer's buffer. Ending a
// span twice records it once; ending a nil span is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()
	rec := SpanRecord{
		ID:      s.id,
		Parent:  s.parent,
		Name:    s.name,
		StartNs: s.start.UnixNano(),
		DurNs:   end.Sub(s.start).Nanoseconds(),
		Attrs:   attrs,
	}
	t := s.t
	t.mu.Lock()
	if len(t.spans) < t.limit {
		t.spans = append(t.spans, rec)
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// SpanRecord is one finished span in the JSON timeline.
type SpanRecord struct {
	// ID is the span's unique id within its tracer (1-based).
	ID int64 `json:"id"`
	// Parent is the id of the enclosing span, 0 for roots.
	Parent int64 `json:"parent"`
	// Name is the stage name ("decompose.pass", "storage.segment", ...).
	Name string `json:"name"`
	// StartNs is the span start as Unix nanoseconds.
	StartNs int64 `json:"start_ns"`
	// DurNs is the span duration in nanoseconds.
	DurNs int64 `json:"dur_ns"`
	// Attrs carries the per-span attributes, if any.
	Attrs map[string]any `json:"attrs,omitempty"`
}

// Timeline returns the finished spans ordered by start time (ties broken
// by id, so the order is deterministic).
func (t *Tracer) Timeline() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]SpanRecord(nil), t.spans...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartNs != out[j].StartNs {
			return out[i].StartNs < out[j].StartNs
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Dropped returns the number of spans discarded because the buffer was
// full.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// StageStat is one row of the flat per-stage duration table: every span
// sharing a name aggregated into count/total/min/max durations.
type StageStat struct {
	// Name is the shared span name.
	Name string `json:"name"`
	// Count is the number of spans with this name.
	Count int64 `json:"count"`
	// TotalNs, MinNs and MaxNs aggregate the span durations.
	TotalNs int64 `json:"total_ns"`
	MinNs   int64 `json:"min_ns"`
	MaxNs   int64 `json:"max_ns"`
}

// Stages aggregates the timeline by span name, sorted by descending total
// duration (ties by name for determinism).
func (t *Tracer) Stages() []StageStat {
	if t == nil {
		return nil
	}
	byName := make(map[string]*StageStat)
	for _, s := range t.Timeline() {
		st, ok := byName[s.Name]
		if !ok {
			st = &StageStat{Name: s.Name, MinNs: s.DurNs, MaxNs: s.DurNs}
			byName[s.Name] = st
		}
		st.Count++
		st.TotalNs += s.DurNs
		if s.DurNs < st.MinNs {
			st.MinNs = s.DurNs
		}
		if s.DurNs > st.MaxNs {
			st.MaxNs = s.DurNs
		}
	}
	out := make([]StageStat, 0, len(byName))
	for _, st := range byName {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalNs != out[j].TotalNs {
			return out[i].TotalNs > out[j].TotalNs
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// TraceDump is the JSON document written by Tracer.WriteJSON: the full
// span timeline plus the aggregated per-stage duration table.
type TraceDump struct {
	// Spans is the timeline ordered by start time.
	Spans []SpanRecord `json:"spans"`
	// Stages is the flat per-stage duration table.
	Stages []StageStat `json:"stages"`
	// Dropped counts spans lost to the buffer bound.
	Dropped int64 `json:"dropped"`
}

// WriteJSON writes the trace dump (timeline + stage table) as indented
// JSON.
func (t *Tracer) WriteJSON(w io.Writer) error {
	dump := TraceDump{Spans: t.Timeline(), Stages: t.Stages(), Dropped: t.Dropped()}
	if dump.Spans == nil {
		dump.Spans = []SpanRecord{}
	}
	if dump.Stages == nil {
		dump.Stages = []StageStat{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(dump)
}

// WriteFile writes the trace dump to path, truncating any existing file.
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: create %s: %w", path, err)
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: write %s: %w", path, err)
	}
	return f.Close()
}
