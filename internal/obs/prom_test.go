package obs

import (
	"runtime"
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"serve.refine_seconds":    "serve_refine_seconds",
		"core.session.level0.b":   "core_session_level0_b",
		"already_clean":           "already_clean",
		"9starts.with.digit":      "_9starts_with_digit",
		"weird-chars/and spaces!": "weird_chars_and_spaces_",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve.refines").Add(7)
	r.Gauge("servecache.bytes").Set(1234.5)
	h := r.Histogram("serve.refine_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.ObserveExemplar(0.5, "deadbeefdeadbeefdeadbeefdeadbeef")
	h.Observe(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE serve_refines counter\nserve_refines 7\n",
		"# TYPE servecache_bytes gauge\nservecache_bytes 1234.5\n",
		"# TYPE serve_refine_seconds histogram\n",
		`serve_refine_seconds_bucket{le="0.1"} 1`,
		`serve_refine_seconds_bucket{le="1"} 2 # {trace_id="deadbeefdeadbeefdeadbeefdeadbeef"} 0.5`,
		`serve_refine_seconds_bucket{le="+Inf"} 3`,
		"serve_refine_seconds_sum 5.55\n",
		"serve_refine_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(1)
	r.Counter("a").Add(2)
	r.Gauge("z").Set(1)
	var first, second strings.Builder
	r.WritePrometheus(&first)
	r.WritePrometheus(&second)
	if first.String() != second.String() {
		t.Fatal("two writes of the same registry differ")
	}
	if strings.Index(first.String(), "# TYPE a ") > strings.Index(first.String(), "# TYPE b ") {
		t.Fatal("counters not emitted in sorted order")
	}
}

func TestSnapshotExemplarShape(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1})
	h.Observe(0.5)
	snap := r.Snapshot()
	if snap.Histograms["lat"].Exemplars != nil {
		t.Fatal("untraced histogram should omit exemplars")
	}
	h.ObserveExemplar(2, "aa11aa11aa11aa11aa11aa11aa11aa11")
	snap = r.Snapshot()
	ex := snap.Histograms["lat"].Exemplars
	if ex == nil || len(ex) != 2 {
		t.Fatalf("exemplars = %v, want bucket-aligned slice of 2", ex)
	}
	if ex[0] != nil {
		t.Fatal("bucket 0 should have no exemplar")
	}
	if ex[1] == nil || ex[1].TraceID != "aa11aa11aa11aa11aa11aa11aa11aa11" || ex[1].Value != 2 {
		t.Fatalf("overflow bucket exemplar = %+v", ex[1])
	}
}

func TestRuntimeMetricsSampling(t *testing.T) {
	r := NewRegistry()
	if _, ok := r.Snapshot().Gauges["runtime.goroutines"]; ok {
		t.Fatal("runtime gauges sampled without opt-in")
	}
	r.EnableRuntimeMetrics()
	snap := r.Snapshot()
	if g := snap.Gauges["runtime.goroutines"]; g < 1 {
		t.Fatalf("runtime.goroutines = %g, want >= 1", g)
	}
	if snap.Gauges["runtime.heap_alloc_bytes"] <= 0 {
		t.Fatal("runtime.heap_alloc_bytes not sampled")
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if snap.Gauges["runtime.heap_sys_bytes"] > float64(ms.HeapSys)*2 {
		t.Fatal("heap_sys gauge implausibly large")
	}
	// Nil registry stays inert.
	var nilReg *Registry
	nilReg.EnableRuntimeMetrics()
}
