package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PromContentType is the Content-Type of the text exposition WritePrometheus
// emits (the classic Prometheus format, plus OpenMetrics-style exemplar
// suffixes on histogram bucket lines).
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromName sanitizes a registry metric name into the Prometheus name
// charset [a-zA-Z0-9_:]: every other rune (the registry's dots, mostly)
// becomes '_', and a leading digit gains a '_' prefix. "serve.refine_seconds"
// → "serve_refine_seconds".
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus writes the snapshot in Prometheus text exposition format:
// counters and gauges as single samples, histograms as cumulative
// le-labelled bucket series with _sum and _count. Buckets that carry an
// exemplar append it in OpenMetrics syntax (`# {trace_id="..."} value`) so
// a latency bucket links back to a sample request trace. Output is
// deterministic: names are emitted sorted within each kind.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	for _, name := range sortedKeys(s.Counters) {
		pn := PromName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		pn := PromName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", pn, pn, promFloat(s.Gauges[name])); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		if err := writePromHistogram(w, PromName(name), s.Histograms[name]); err != nil {
			return err
		}
	}
	return nil
}

// WritePrometheus writes the live registry state in Prometheus text
// exposition format (see Snapshot.WritePrometheus).
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.Snapshot().WritePrometheus(w)
}

func writePromHistogram(w io.Writer, pn string, h HistogramSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
		return err
	}
	var cum int64
	for i, c := range h.Counts {
		cum += c
		le := "+Inf"
		if i < len(h.Bounds) {
			le = promFloat(h.Bounds[i])
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d", pn, le, cum); err != nil {
			return err
		}
		if i < len(h.Exemplars) && h.Exemplars[i] != nil {
			ex := h.Exemplars[i]
			if _, err := fmt.Fprintf(w, " # {trace_id=%q} %s", ex.TraceID, promFloat(ex.Value)); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", pn, promFloat(h.Sum), pn, h.Count)
	return err
}

// promFloat renders a float the way Prometheus text format expects.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
