package obs

import (
	"flag"
	"fmt"
	"io"
)

// Flags bundles the standard observability CLI flags (-metrics-out,
// -trace-out, -debug-addr) so every command wires them identically: call
// Register on the command's FlagSet, Start after parsing to obtain the Obs
// to thread through the pipeline, and Finish on exit to write the
// requested snapshot files.
type Flags struct {
	// MetricsOut is the path the metrics snapshot JSON is written to on
	// exit; empty disables the sink.
	MetricsOut string
	// TraceOut is the path the span timeline JSON is written to on exit;
	// empty disables the sink.
	TraceOut string
	// DebugAddr is the listen address of the live debug HTTP endpoint
	// (expvar, pprof, /debug/obs); empty disables the server.
	DebugAddr string
}

// Register installs the three observability flags on fs.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.MetricsOut, "metrics-out", "", "write a JSON metrics snapshot to this file on exit")
	fs.StringVar(&f.TraceOut, "trace-out", "", "write the JSON span timeline to this file on exit")
	fs.StringVar(&f.DebugAddr, "debug-addr", "", "serve expvar, pprof and /debug/obs on this address (e.g. localhost:8080)")
}

// Enabled reports whether any observability sink was requested.
func (f *Flags) Enabled() bool {
	return f.MetricsOut != "" || f.TraceOut != "" || f.DebugAddr != ""
}

// Start returns the Obs to thread through the pipeline — nil when no sink
// was requested, so instrumented code stays on its zero-overhead path —
// and starts the debug endpoint when -debug-addr is set, logging the bound
// address to w.
func (f *Flags) Start(w io.Writer) (*Obs, error) {
	if !f.Enabled() {
		return nil, nil
	}
	o := New()
	if f.DebugAddr != "" {
		_, addr, err := ServeDebug(f.DebugAddr, o)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "debug endpoint: http://%s/debug/obs\n", addr)
	}
	return o, nil
}

// Finish writes the requested snapshot files. Safe on a nil o (no sink
// requested), so commands can call it unconditionally.
func (f *Flags) Finish(o *Obs) error {
	if o == nil {
		return nil
	}
	if f.MetricsOut != "" {
		if err := o.Metrics.WriteFile(f.MetricsOut); err != nil {
			return err
		}
	}
	if f.TraceOut != "" {
		if err := o.Trace.WriteFile(f.TraceOut); err != nil {
			return err
		}
	}
	return nil
}
