// Package obs is the stdlib-only observability layer of the pipeline: a
// concurrency-safe metrics registry (counters, gauges, fixed-bucket
// histograms) snapshottable to JSON and publishable through expvar, plus a
// bounded in-memory span tracer that records one timeline per
// Refactor/Retrieve/Train run.
//
// The paper's claims are quantitative — bit-planes fetched, bytes
// transferred, retrieval time per tier (§V) — so every layer of the
// pipeline reports what it actually did through this package: decompose
// passes, bit-plane encode/decode, the lossless segment codec, the worker
// pool, the storage retry/quarantine path, retrieval sessions and NN
// training.
//
// Everything is nil-safe: a nil *Registry, *Tracer, *Obs or any nil
// instrument is a no-op, so instrumented hot paths cost a single nil check
// when observability is disabled. Instruments are also usable standalone
// (zero values count correctly) so long-lived structs like
// storage.RetryingSource can keep exact counts even when no registry is
// attached, and later surface those counts as registry views.
package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric. The zero value is
// ready to use; a nil Counter ignores Add and reads as 0.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can move in both directions (queue depth,
// last epoch loss, accumulated seconds). The zero value is ready to use; a
// nil Gauge ignores writes and reads as 0.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by delta with a CAS loop. No-op on nil.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram. Bounds are upper bucket edges in
// increasing order; an observation lands in the first bucket whose bound
// is >= the value, or in the implicit +Inf overflow bucket. A nil
// Histogram ignores observations.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	count  atomic.Int64
	sum    Gauge
	// exemplars[i] is the most recent traced observation that landed in
	// bucket i, nil until one arrives (see ObserveExemplar).
	exemplars []atomic.Pointer[Exemplar]
}

// Exemplar links one histogram observation back to the request trace that
// produced it, so a latency bucket on a dashboard can answer "show me one
// request that took this long" (the OpenMetrics exemplar concept, stdlib
// only).
type Exemplar struct {
	// TraceID is the trace id of the sampled request.
	TraceID string `json:"trace_id"`
	// Value is the sampled observation.
	Value float64 `json:"value"`
}

// NewHistogram returns a histogram over the given upper bucket bounds,
// which must be strictly increasing. The bounds slice is copied.
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds:    append([]float64(nil), bounds...),
		counts:    make([]atomic.Int64, len(bounds)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(bounds)+1),
	}
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v.
	ix := sort.SearchFloat64s(h.bounds, v)
	h.counts[ix].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveExemplar records one value and, when traceID is non-empty, keeps
// it as the bucket's exemplar — the trace id of a sample request whose
// latency landed there, replacing the previous sample. No-op on a nil
// receiver.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if h == nil {
		return
	}
	ix := sort.SearchFloat64s(h.bounds, v)
	h.counts[ix].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	if traceID != "" {
		h.exemplars[ix].Store(&Exemplar{TraceID: traceID, Value: v})
	}
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// snapshot captures the histogram state.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.sum.Value(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	for i := range h.exemplars {
		if ex := h.exemplars[i].Load(); ex != nil {
			if s.Exemplars == nil {
				s.Exemplars = make([]*Exemplar, len(h.counts))
			}
			s.Exemplars[i] = ex
		}
	}
	return s
}

// ExpBuckets returns n exponentially spaced bucket bounds starting at
// start, each factor times the previous. start must be positive and
// factor > 1; n is clamped to at least 1.
func ExpBuckets(start, factor float64, n int) []float64 {
	if n < 1 {
		n = 1
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// ByteBuckets returns the standard exponential byte-size buckets used for
// payload histograms: 64 B up to 1 GiB, quadrupling.
func ByteBuckets() []float64 { return ExpBuckets(64, 4, 13) }

// LatencyBuckets returns the standard exponential latency buckets in
// seconds: 1 µs up to ~268 s, quadrupling.
func LatencyBuckets() []float64 { return ExpBuckets(1e-6, 4, 15) }

// HistogramSnapshot is the JSON form of a histogram: counts per bucket
// (the last count is the overflow bucket above the final bound), the total
// observation count and the value sum.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	// Exemplars, when present, is bucket-aligned with Counts: entry i is
	// the latest traced observation that landed in bucket i (nil for
	// buckets without one). Omitted entirely when no observation carried a
	// trace id, so untraced snapshots keep their pre-exemplar shape.
	Exemplars []*Exemplar `json:"exemplars,omitempty"`
}

// Snapshot is a point-in-time JSON-marshalable copy of a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Has reports whether the snapshot contains a metric with the given name,
// in any of the three kinds.
func (s Snapshot) Has(name string) bool {
	if _, ok := s.Counters[name]; ok {
		return true
	}
	if _, ok := s.Gauges[name]; ok {
		return true
	}
	_, ok := s.Histograms[name]
	return ok
}

// Registry is a concurrency-safe, get-or-create metrics namespace. The
// zero value is not usable; call NewRegistry. A nil *Registry hands out
// nil instruments, so a disabled registry costs one nil check per
// operation on the instrumented path.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	// runtimeMetrics, when set via EnableRuntimeMetrics, makes Snapshot
	// sample the runtime.* process-health gauges first.
	runtimeMetrics bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on first
// use. Returns nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
// Returns nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bounds on first use. An existing histogram keeps its original
// bounds. Returns nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Snapshot copies the current value of every registered metric. With
// EnableRuntimeMetrics set, the runtime.* process-health gauges are
// refreshed first so every snapshot carries current goroutine and heap
// numbers.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	sample := r.runtimeMetrics
	r.mu.Unlock()
	if sample {
		r.sampleRuntime()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// WriteJSON writes an indented JSON snapshot of the registry to w (map
// keys are emitted sorted, so output is deterministic for fixed values).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteFile writes the JSON snapshot to path, truncating any existing
// file.
func (r *Registry) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: create %s: %w", path, err)
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: write %s: %w", path, err)
	}
	return f.Close()
}

// PublishExpvar publishes the registry under the given expvar name as a
// Func returning the live snapshot. Publishing the same name twice is a
// no-op (expvar itself panics on duplicates), so the registry bound to a
// name is the one published first. No-op on a nil registry.
func (r *Registry) PublishExpvar(name string) {
	if r == nil || expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
