// The registry tests live in an external test package so they can link the
// real backends (which import codec) without an import cycle.
package codec_test

import (
	"strings"
	"testing"

	"pmgard/internal/bitplane"
	"pmgard/internal/codec"
	"pmgard/internal/grid"
	"pmgard/internal/obs"

	_ "pmgard/internal/codec/interp"
	_ "pmgard/internal/codec/mgard"
)

// fakeCodec is a minimal registrable backend for registry tests.
type fakeCodec struct {
	codec.BitplaneCoder
	id string
}

func (f fakeCodec) ID() string { return f.id }
func (fakeCodec) Decompose(*grid.Tensor, codec.Options, int, *obs.Obs) (codec.Decomposition, error) {
	return nil, nil
}
func (fakeCodec) NewZero([]int, codec.Options, int) (codec.Decomposition, error) { return nil, nil }
func (fakeCodec) NaiveAmplification(codec.Options, int) float64                  { return 1 }
func (fakeCodec) TightAmplification(codec.Options, int) float64                  { return 1 }

func TestByIDEmptyResolvesDefault(t *testing.T) {
	c, err := codec.ByID("")
	if err != nil {
		t.Fatalf("ByID(\"\"): %v", err)
	}
	if c.ID() != codec.DefaultID {
		t.Fatalf("ByID(\"\") = %q, want %q", c.ID(), codec.DefaultID)
	}
}

func TestByIDUnknown(t *testing.T) {
	_, err := codec.ByID("no-such-backend")
	if err == nil {
		t.Fatal("unknown backend resolved")
	}
	if !strings.Contains(err.Error(), "no-such-backend") {
		t.Fatalf("error %q does not name the missing backend", err)
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	codec.Register(fakeCodec{id: "codec-test-dup"})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	codec.Register(fakeCodec{id: "codec-test-dup"})
}

func TestRegisterEmptyIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty-ID Register did not panic")
		}
	}()
	codec.Register(fakeCodec{id: ""})
}

func TestIDsSortedAndComplete(t *testing.T) {
	codec.Register(fakeCodec{id: "aaa-codec-test"})
	ids := codec.IDs()
	seen := map[string]bool{}
	for i, id := range ids {
		if i > 0 && ids[i-1] >= id {
			t.Fatalf("IDs() not strictly sorted: %v", ids)
		}
		seen[id] = true
	}
	for _, want := range []string{"aaa-codec-test", "mgard", "interp"} {
		if !seen[want] {
			t.Fatalf("backend %q missing from IDs(): %v", want, ids)
		}
	}
}

// TestBitplaneCoderMatchesBitplane pins the embeddable coder to the shared
// kernels: same planes, same error matrix, same partial decode.
func TestBitplaneCoderMatchesBitplane(t *testing.T) {
	coeffs := []float64{1.5, -2.25, 0.125, 3.75, -0.5, 0}
	var bc codec.BitplaneCoder
	got, err := bc.EncodeLevel(coeffs, 16, 1, nil)
	if err != nil {
		t.Fatalf("EncodeLevel: %v", err)
	}
	want, err := bitplane.EncodeLevelWorkers(coeffs, 16, 1)
	if err != nil {
		t.Fatalf("bitplane.EncodeLevelWorkers: %v", err)
	}
	for k := range want.Bits {
		if string(got.Bits[k]) != string(want.Bits[k]) {
			t.Fatalf("plane %d differs from bitplane kernels", k)
		}
	}
	dstGot := make([]float64, len(coeffs))
	dstWant := make([]float64, len(coeffs))
	bc.DecodeLevel(got, 8, dstGot, 1, nil)
	want.DecodePartial(8, dstWant)
	for i := range dstGot {
		if dstGot[i] != dstWant[i] {
			t.Fatalf("decode[%d] = %g, want %g", i, dstGot[i], dstWant[i])
		}
	}
}
