package codectest

import (
	"math"
	"math/rand"
	"testing"

	"pmgard/internal/codec"
	"pmgard/internal/core"
	"pmgard/internal/grid"
)

// FuzzCodecRoundtrip drives every registered backend with randomized small
// fields and tolerance schedules derived from the fuzz input, asserting the
// two invariants the whole framework rests on: no panics anywhere in the
// pipeline, and every error-controlled retrieval's achieved error within
// the requested absolute bound.
func FuzzCodecRoundtrip(f *testing.F) {
	f.Add(int64(1), uint8(9), uint8(2), uint8(3), float64(1e-3), false)
	f.Add(int64(42), uint8(17), uint8(1), uint8(5), float64(1e-6), true)
	f.Add(int64(-7), uint8(5), uint8(3), uint8(2), float64(0.5), false)
	f.Add(int64(1234), uint8(33), uint8(2), uint8(4), float64(1e-1), true)
	f.Fuzz(func(t *testing.T, seed int64, sizeRaw, rankRaw, levelsRaw uint8, rel float64, rough bool) {
		rank := 1 + int(rankRaw)%3
		levels := 1 + int(levelsRaw)%5
		// Grid side must satisfy (n-1) % 2^(levels-1) == 0 for the level
		// hierarchy; snap the fuzzed size onto the nearest valid side.
		step := 1 << (levels - 1)
		side := step*(1+int(sizeRaw)%3) + 1
		if !(rel > 1e-12 && rel < 10) || math.IsNaN(rel) {
			rel = 1e-3
		}
		dims := make([]int, rank)
		n := 1
		for d := range dims {
			dims[d] = side
			n *= side
		}
		if n > 1<<16 {
			t.Skip("field too large for a fuzz iteration")
		}
		rng := rand.New(rand.NewSource(seed))
		field := grid.New(dims...)
		data := field.Data()
		for i := range data {
			if rough {
				data[i] = rng.NormFloat64() * math.Ldexp(1, rng.Intn(20)-10)
			} else {
				data[i] = math.Sin(float64(i)*0.05) + 0.1*rng.Float64()
			}
		}
		for _, id := range codec.IDs() {
			cfg := core.DefaultConfig()
			cfg.Backend = id
			cfg.Decompose.Levels = levels
			cfg.Parallelism = 1 + int(seed&3)
			comp, err := core.Compress(field, cfg, "fuzz", 0)
			if err != nil {
				t.Fatalf("%s: Compress(dims=%v levels=%d): %v", id, dims, levels, err)
			}
			h := &comp.Header
			if h.Codec() != id {
				t.Fatalf("%s: header codec = %q", id, h.Codec())
			}
			tol := h.AbsTolerance(rel)
			if tol <= 0 {
				// A constant field has zero range; any plan satisfies it.
				continue
			}
			est := h.TheoryEstimator()
			// Tolerance schedule: a loose pass, then the fuzzed tolerance —
			// the progressive-session shape with a shared plane decode path.
			s, err := core.NewSession(h, comp)
			if err != nil {
				t.Fatalf("%s: NewSession: %v", id, err)
			}
			for _, scale := range []float64{100, 1} {
				stepTol := tol * scale
				rec, _, deg, err := s.Refine(est, stepTol)
				if err != nil {
					t.Fatalf("%s: Refine(%g): %v", id, stepTol, err)
				}
				if deg != nil {
					t.Fatalf("%s: lossless source reported degradation: %+v", id, deg)
				}
				if got := grid.MaxAbsDiff(field, rec); got > stepTol {
					t.Fatalf("%s: achieved error %g exceeds tolerance %g (dims=%v levels=%d rel=%g rough=%v)",
						id, got, stepTol, dims, levels, rel, rough)
				}
			}
		}
	})
}
