package codectest

import (
	"testing"

	"pmgard/internal/codec"
	"pmgard/internal/codec/interp"
	"pmgard/internal/codec/mgard"
)

// TestConformanceMGARD runs the full suite against the default lifting
// backend.
func TestConformanceMGARD(t *testing.T) {
	Run(t, mgard.Codec{})
}

// TestConformanceInterp runs the full suite against the interpolation
// backend.
func TestConformanceInterp(t *testing.T) {
	Run(t, interp.Codec{})
}

// TestEveryRegisteredBackendIsConformant closes the gap between "the suite
// ran on the backends we remembered" and "every backend linked into this
// binary passed": a backend registered but not exercised above fails here.
func TestEveryRegisteredBackendIsConformant(t *testing.T) {
	covered := map[string]bool{mgard.ID: true, interp.ID: true}
	for _, id := range codec.IDs() {
		if !covered[id] {
			t.Errorf("backend %q is registered but has no conformance run; add Run(t, ...) for it", id)
		}
	}
}
