// Package codectest is the conformance suite every progressive-codec
// backend must pass (run under -race in CI for both in-tree backends). A
// backend package registers its codec and calls Run from a test:
//
//	func TestConformance(t *testing.T) { codectest.Run(t, mybackend.Codec{}) }
//
// The suite checks the whole ProgressiveCodec contract, not just the happy
// path:
//
//   - transform roundtrip identity (Decompose then Recompose is bit-exact)
//   - serialization roundtrip through the full core pipeline and the
//     on-disk segment store, with the backend ID surviving the header
//   - monotone reconstruction-error decay over uniform plane prefixes,
//     down to a noise floor far below the first prefix's error
//   - tolerance-bound satisfaction: achieved error ≤ requested absolute
//     tolerance for every planned retrieval, using the backend's own
//     NaiveAmplification constant
//   - byte identity across worker counts 1/2/4/8 on both the compress and
//     the retrieve path
//   - hardening against adversarial inputs (NaN, ±Inf, denormal-only
//     fields): no panics, reconstructions stay finite
//   - degraded-prefix behavior: a permanently lost plane degrades a
//     session to the deepest consistent prefix with a truthful residual
//     error bound, instead of failing the refinement
//
// The suite exercises backends through core.Compress/core.Retrieve where
// the contract spans layers, so a backend that passes is known to work
// behind every entry point (library facade, commands, serving tier), not
// just in isolation.
package codectest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"pmgard/internal/bitplane"
	"pmgard/internal/codec"
	"pmgard/internal/core"
	"pmgard/internal/grid"
	"pmgard/internal/retrieval"
	"pmgard/internal/storage"
)

// conformancePlanes is the bit-plane count the suite encodes with — the
// paper's configuration.
const conformancePlanes = 32

// options returns the transform options the suite runs under: the default
// five-level hierarchy with the mgard update step enabled (backends that
// have no update step ignore those fields by contract).
func options() codec.Options {
	return codec.Options{Levels: 5, Update: true, UpdateWeight: 0.25}
}

// config returns the core pipeline configuration pinned to backend c.
func config(c codec.ProgressiveCodec) core.Config {
	cfg := core.DefaultConfig()
	cfg.Backend = c.ID()
	return cfg
}

// smoothField builds a smooth 2-D test field: a product of low-frequency
// waves, the shape multilevel predictors are designed for.
func smoothField(n int) *grid.Tensor {
	f := grid.New(n, n)
	data := f.Data()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			x := float64(i) / float64(n-1)
			y := float64(j) / float64(n-1)
			data[i*n+j] = math.Sin(3*x)*math.Cos(2*y) + 0.5*math.Sin(7*x*y)
		}
	}
	return f
}

// roughField builds a turbulent 2-D test field: smooth base plus
// deterministic high-amplitude noise, the shape that defeats interpolation.
func roughField(n int, seed int64) *grid.Tensor {
	f := smoothField(n)
	rng := rand.New(rand.NewSource(seed))
	data := f.Data()
	for i := range data {
		data[i] += rng.NormFloat64()
	}
	return f
}

// smallField3D builds a smooth 17³ field for the 3-D coverage of the suite.
func smallField3D() *grid.Tensor {
	n := 17
	f := grid.New(n, n, n)
	data := f.Data()
	ix := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				x := float64(i) / float64(n-1)
				y := float64(j) / float64(n-1)
				z := float64(k) / float64(n-1)
				data[ix] = math.Sin(3*x) * math.Cos(2*y) * math.Sin(x+z)
				ix++
			}
		}
	}
	return f
}

// Run executes the full conformance suite against backend c. Every backend
// registered with the codec registry must pass it; run it under -race so
// the worker-identity subtests double as data-race probes.
func Run(t *testing.T, c codec.ProgressiveCodec) {
	t.Helper()
	if c.ID() == "" {
		t.Fatal("backend has an empty ID")
	}
	t.Run("TransformRoundtrip", func(t *testing.T) { testTransformRoundtrip(t, c) })
	t.Run("StoreRoundtrip", func(t *testing.T) { testStoreRoundtrip(t, c) })
	t.Run("MonotoneErrorDecay", func(t *testing.T) { testMonotoneErrorDecay(t, c) })
	t.Run("ToleranceBound", func(t *testing.T) { testToleranceBound(t, c) })
	t.Run("WorkerByteIdentity", func(t *testing.T) { testWorkerByteIdentity(t, c) })
	t.Run("Hardening", func(t *testing.T) { testHardening(t, c) })
	t.Run("DegradedPrefix", func(t *testing.T) { testDegradedPrefix(t, c) })
}

// testTransformRoundtrip checks that Decompose followed by Recompose is the
// identity up to floating-point rounding, before any quantization enters
// the picture. Exact bit identity is unattainable — fl(fl(a−b)+b) ≠ a in
// general, so even a perfectly inverted transform re-rounds — but the
// residual must stay within a few ulps of the field's magnitude; everything
// beyond that is transform error the Err matrices would silently miss.
func testTransformRoundtrip(t *testing.T, c codec.ProgressiveCodec) {
	fields := map[string]*grid.Tensor{
		"smooth2d": smoothField(33),
		"rough2d":  roughField(33, 42),
		"smooth3d": smallField3D(),
	}
	for name, f := range fields {
		for _, workers := range []int{1, 4} {
			dec, err := c.Decompose(f, options(), workers, nil)
			if err != nil {
				t.Fatalf("%s: Decompose(workers=%d): %v", name, workers, err)
			}
			if got, want := dec.Levels(), options().Levels; got != want {
				t.Fatalf("%s: Levels() = %d, want %d", name, got, want)
			}
			var n int
			for l := 0; l < dec.Levels(); l++ {
				n += len(dec.Coeffs(l))
			}
			if n != len(f.Data()) {
				t.Fatalf("%s: coefficient count %d != field size %d", name, n, len(f.Data()))
			}
			rec := dec.Recompose()
			maxAbs := 0.0
			for _, v := range f.Data() {
				if a := math.Abs(v); a > maxAbs {
					maxAbs = a
				}
			}
			if got, lim := grid.MaxAbsDiff(f, rec), 1e-12*maxAbs; got > lim {
				t.Fatalf("%s: Decompose→Recompose (workers=%d) L∞ residual %g exceeds rounding budget %g",
					name, workers, got, lim)
			}
		}
	}
}

// testStoreRoundtrip pushes a field through the full pipeline — compress,
// serialize to the segment-store file format, reopen, retrieve — and checks
// the backend identity survives the header while the full-plane
// reconstruction lands within the residual quantization error.
func testStoreRoundtrip(t *testing.T, c codec.ProgressiveCodec) {
	field := smoothField(33)
	comp, err := core.Compress(field, config(c), "conformance", 3)
	if err != nil {
		t.Fatalf("Compress: %v", err)
	}
	if got := comp.Header.Codec(); got != c.ID() {
		t.Fatalf("Header.Codec() = %q, want %q", got, c.ID())
	}
	path := filepath.Join(t.TempDir(), "conformance.pmg")
	if err := comp.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	h, st, err := core.OpenFile(path)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	defer st.Close()
	if got := h.Codec(); got != c.ID() {
		t.Fatalf("reopened Header.Codec() = %q, want %q", got, c.ID())
	}
	full := make([]int, len(h.Levels))
	for l := range full {
		full[l] = h.Planes
	}
	rec, _, err := core.RetrievePlanes(h, core.StoreSource{Store: st}, full)
	if err != nil {
		t.Fatalf("RetrievePlanes: %v", err)
	}
	// With every plane fetched the only residual is the quantization floor:
	// the backend's amplification constant times the per-level residuals.
	var bound float64
	for _, lm := range h.Levels {
		bound += lm.ErrMatrix[h.Planes]
	}
	bound *= c.NaiveAmplification(h.CodecOptions(), len(h.Dims))
	if got := grid.MaxAbsDiff(field, rec); got > bound {
		t.Fatalf("full-plane store roundtrip error %g exceeds residual bound %g", got, bound)
	}
	// The in-memory and reopened artifacts must retrieve identically.
	memRec, _, err := core.RetrievePlanes(&comp.Header, comp, full)
	if err != nil {
		t.Fatalf("in-memory RetrievePlanes: %v", err)
	}
	if !bitsEqual(rec.Data(), memRec.Data()) {
		t.Fatal("store retrieval differs from in-memory retrieval")
	}
}

// testMonotoneErrorDecay decodes uniform plane prefixes b = 4, 8, ..., 32
// and checks the reconstruction error never increases with more planes and
// collapses by orders of magnitude across the sweep. Prefixes stride by 4
// because a single extra nega-binary digit may transiently overshoot; a
// 4-plane stride shrinks the truncation bound 16-fold, which every sane
// backend must convert into monotone progress.
func testMonotoneErrorDecay(t *testing.T, c codec.ProgressiveCodec) {
	field := smoothField(33)
	dec, err := c.Decompose(field, options(), 1, nil)
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	// Pooled encodings stay alive (never Released) across all prefix decodes.
	encs := make([]*bitplane.LevelEncoding, dec.Levels())
	for l := range encs {
		e, err := c.EncodeLevel(dec.Coeffs(l), conformancePlanes, 1, nil)
		if err != nil {
			t.Fatalf("EncodeLevel(%d): %v", l, err)
		}
		encs[l] = e
		// Nega-binary prefixes may overshoot plane to plane, but a 4-plane
		// stride shrinks the truncation bound 16-fold, which must dominate
		// any overshoot.
		for b := 8; b <= conformancePlanes; b += 4 {
			if e.ErrMatrix[b] > e.ErrMatrix[b-4]*(1+1e-12) {
				t.Fatalf("level %d ErrMatrix increases over planes %d→%d: %g → %g",
					l, b-4, b, e.ErrMatrix[b-4], e.ErrMatrix[b])
			}
		}
	}
	var errs []float64
	for b := 4; b <= conformancePlanes; b += 4 {
		z, err := c.NewZero(field.Dims(), options(), 1)
		if err != nil {
			t.Fatalf("NewZero: %v", err)
		}
		for l := 0; l < z.Levels(); l++ {
			c.DecodeLevel(encs[l], b, z.Coeffs(l), 1, nil)
		}
		errs = append(errs, grid.MaxAbsDiff(field, z.Recompose()))
	}
	for i := 1; i < len(errs); i++ {
		if errs[i] > errs[i-1]+1e-15 {
			t.Fatalf("reconstruction error increased with more planes: b=%d err %g → b=%d err %g (sweep %v)",
				4*i, errs[i-1], 4*(i+1), errs[i], errs)
		}
	}
	first, last := errs[0], errs[len(errs)-1]
	if first == 0 {
		t.Fatal("4-plane reconstruction already exact; the decay sweep is vacuous")
	}
	if last > first*1e-6 {
		t.Fatalf("error decayed only %g → %g over %d planes; want ≥ 10^6 overall decay",
			first, last, conformancePlanes)
	}
}

// testToleranceBound compresses both a smooth and a rough field and checks
// that every planned retrieval under the backend's own naive amplification
// constant lands within the requested absolute tolerance — the contract the
// whole error-controlled retrieval mode rests on.
func testToleranceBound(t *testing.T, c codec.ProgressiveCodec) {
	for name, field := range map[string]*grid.Tensor{
		"smooth": smoothField(33),
		"rough":  roughField(33, 7),
	} {
		comp, err := core.Compress(field, config(c), name, 0)
		if err != nil {
			t.Fatalf("%s: Compress: %v", name, err)
		}
		h := &comp.Header
		est := h.TheoryEstimator()
		for _, rel := range []float64{1e-1, 1e-2, 1e-4, 1e-6} {
			tol := h.AbsTolerance(rel)
			rec, plan, err := core.RetrieveTolerance(h, comp, est, tol)
			if err != nil {
				t.Fatalf("%s: RetrieveTolerance(%g): %v", name, rel, err)
			}
			if got := grid.MaxAbsDiff(field, rec); got > tol {
				t.Fatalf("%s: achieved error %g exceeds tolerance %g (rel %g, plan %v)",
					name, got, tol, rel, plan.Planes)
			}
		}
	}
}

// testWorkerByteIdentity compresses with 1/2/4/8 workers and checks headers
// and every segment are byte-identical, then retrieves with 1/2/4/8 workers
// and checks the reconstructions are bit-identical. Under -race this
// subtest doubles as the data-race probe for the backend's fan-out.
func testWorkerByteIdentity(t *testing.T, c codec.ProgressiveCodec) {
	field := roughField(33, 11)
	var refHeader []byte
	var ref *core.Compressed
	for _, workers := range []int{1, 2, 4, 8} {
		cfg := config(c)
		cfg.Parallelism = workers
		comp, err := core.Compress(field, cfg, "workers", 0)
		if err != nil {
			t.Fatalf("Compress(workers=%d): %v", workers, err)
		}
		hdr, err := json.Marshal(&comp.Header)
		if err != nil {
			t.Fatalf("marshal header: %v", err)
		}
		if ref == nil {
			ref, refHeader = comp, hdr
			continue
		}
		if !bytes.Equal(hdr, refHeader) {
			t.Fatalf("header bytes differ between workers=1 and workers=%d", workers)
		}
		for l := range ref.Header.Levels {
			for k := 0; k < ref.Header.Planes; k++ {
				a, err := ref.Segment(l, k)
				if err != nil {
					t.Fatalf("ref segment (%d,%d): %v", l, k, err)
				}
				b, err := comp.Segment(l, k)
				if err != nil {
					t.Fatalf("segment (%d,%d): %v", l, k, err)
				}
				if !bytes.Equal(a, b) {
					t.Fatalf("segment (%d,%d) differs between workers=1 and workers=%d", l, k, workers)
				}
			}
		}
	}
	h := &ref.Header
	plan, err := retrieval.PlanForPlanes(h.LevelInfos(), []int{12, 10, 8, 6, 4})
	if err != nil {
		t.Fatalf("PlanForPlanes: %v", err)
	}
	var refRec *grid.Tensor
	for _, workers := range []int{1, 2, 4, 8} {
		rec, err := core.RetrieveWorkers(h, ref, plan, workers)
		if err != nil {
			t.Fatalf("RetrieveWorkers(%d): %v", workers, err)
		}
		if refRec == nil {
			refRec = rec
			continue
		}
		if !bitsEqual(refRec.Data(), rec.Data()) {
			t.Fatalf("reconstruction differs between workers=1 and workers=%d", workers)
		}
	}
}

// testHardening feeds adversarial fields — NaN, ±Inf, denormal-only —
// through the full pipeline and requires the backend to stay deterministic
// and finite: no panics, compression succeeds, and the full-plane
// reconstruction contains no NaN or Inf (non-finite inputs cannot be
// represented by finite planes; the contract is containment, not recovery).
func testHardening(t *testing.T, c codec.ProgressiveCodec) {
	nan := smoothField(33)
	nan.Data()[5*33+7] = math.NaN()
	inf := smoothField(33)
	inf.Data()[3] = math.Inf(1)
	inf.Data()[17*33+2] = math.Inf(-1)
	denormal := grid.New(33, 33)
	for i := range denormal.Data() {
		denormal.Data()[i] = math.Ldexp(1, -1060) * float64(1+i%7)
	}
	for name, field := range map[string]*grid.Tensor{
		"nan":      nan,
		"inf":      inf,
		"denormal": denormal,
	} {
		comp, err := core.Compress(field, config(c), name, 0)
		if err != nil {
			t.Fatalf("%s: Compress: %v", name, err)
		}
		h := &comp.Header
		full := make([]int, len(h.Levels))
		for l := range full {
			full[l] = h.Planes
		}
		rec, _, err := core.RetrievePlanes(h, comp, full)
		if err != nil {
			t.Fatalf("%s: RetrievePlanes: %v", name, err)
		}
		for i, v := range rec.Data() {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: reconstruction[%d] = %g is not finite", name, i, v)
			}
		}
		if name == "denormal" {
			if got := grid.MaxAbsDiff(field, rec); got > 1e-300 {
				t.Fatalf("denormal field error %g; want below 1e-300", got)
			}
		}
	}
}

// lossySource drops every plane of one level at or beyond a cut index with
// a permanent-corruption error, the storage layer's "this plane is gone"
// signal.
type lossySource struct {
	src   core.SegmentSource
	level int
	plane int
}

// Segment implements core.SegmentSource.
func (s lossySource) Segment(level, plane int) ([]byte, error) {
	if level == s.level && plane >= s.plane {
		return nil, fmt.Errorf("codectest: injected plane loss at (%d,%d): %w",
			level, plane, storage.ErrCorrupt)
	}
	return s.src.Segment(level, plane)
}

// testDegradedPrefix permanently loses a plane mid-level and checks a
// session refinement degrades instead of failing: the reconstruction falls
// back to the deepest consistent prefix of the lossy level, the Degradation
// report names the first lost plane, and the re-derived error bound is
// still truthful for the degraded reconstruction.
func testDegradedPrefix(t *testing.T, c codec.ProgressiveCodec) {
	field := smoothField(33)
	comp, err := core.Compress(field, config(c), "degraded", 0)
	if err != nil {
		t.Fatalf("Compress: %v", err)
	}
	h := &comp.Header
	const lossLevel, lossPlane = 2, 3
	s, err := core.NewSession(h, lossySource{src: comp, level: lossLevel, plane: lossPlane})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	est := h.TheoryEstimator()
	tol := h.AbsTolerance(1e-9)
	rec, plan, deg, err := s.Refine(est, tol)
	if err != nil {
		t.Fatalf("Refine over lossy source: %v", err)
	}
	if deg == nil {
		t.Fatal("refinement over a lost plane reported no degradation")
	}
	found := false
	for _, id := range deg.Dropped {
		if id.Level == lossLevel && id.Plane == lossPlane {
			found = true
		}
	}
	if !found {
		t.Fatalf("Degradation.Dropped = %v does not name the lost plane (%d,%d)",
			deg.Dropped, lossLevel, lossPlane)
	}
	if got := deg.Got[lossLevel]; got != lossPlane {
		t.Fatalf("degraded level decoded %d planes, want the %d-plane prefix", got, lossPlane)
	}
	if deg.Requested[lossLevel] <= lossPlane {
		t.Fatalf("test plan requested only %d planes on the lossy level; the loss was never exercised",
			deg.Requested[lossLevel])
	}
	if got := grid.MaxAbsDiff(field, rec); got > deg.AchievedBound {
		t.Fatalf("degraded reconstruction error %g exceeds the reported achieved bound %g",
			got, deg.AchievedBound)
	}
	if deg.AchievedBound <= tol {
		t.Fatalf("achieved bound %g claims the lost plane did not matter (tol %g)", deg.AchievedBound, tol)
	}
	if plan.Planes[lossLevel] != lossPlane {
		t.Fatalf("executed plan records %d planes on the lossy level, want %d",
			plan.Planes[lossLevel], lossPlane)
	}
	// The session must remain usable: a later refinement over a healed
	// source resumes from the degraded prefix and reaches the tolerance.
	s2, err := core.NewSession(h, comp)
	if err != nil {
		t.Fatalf("NewSession(healed): %v", err)
	}
	recHealed, _, degHealed, err := s2.Refine(est, tol)
	if err != nil {
		t.Fatalf("Refine(healed): %v", err)
	}
	if degHealed != nil {
		t.Fatalf("healed refinement still degraded: %+v", degHealed)
	}
	if got := grid.MaxAbsDiff(field, recHealed); got > tol {
		t.Fatalf("healed refinement error %g exceeds tolerance %g", got, tol)
	}
}

// bitsEqual reports whether two float64 slices are identical bit for bit
// (NaNs equal themselves, +0 differs from -0 — the strictest equality).
func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}
