package mgard

import (
	"math"
	"testing"

	"pmgard/internal/codec"
	"pmgard/internal/decompose"
	"pmgard/internal/grid"
)

// TestAdapterDelegatesToDecompose pins the adapter to the lifting pipeline:
// coefficients and amplification constants must match internal/decompose
// exactly, which is what keeps pre-interface artifacts byte-identical.
func TestAdapterDelegatesToDecompose(t *testing.T) {
	n := 17
	f := grid.New(n, n)
	for i := range f.Data() {
		f.Data()[i] = math.Sin(float64(i) * 0.31)
	}
	opts := codec.Options{Levels: 4, Update: true, UpdateWeight: 0.25}
	dopts := decompose.Options{Levels: 4, Update: true, UpdateWeight: 0.25}
	got, err := Codec{}.Decompose(f, opts, 1, nil)
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	want, err := decompose.Decompose(f, dopts)
	if err != nil {
		t.Fatalf("decompose.Decompose: %v", err)
	}
	for l := 0; l < want.Levels(); l++ {
		a, b := got.Coeffs(l), want.Coeffs(l)
		if len(a) != len(b) {
			t.Fatalf("level %d length %d != %d", l, len(a), len(b))
		}
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				t.Fatalf("level %d coeff %d differs from decompose pipeline", l, i)
			}
		}
	}
	for rank := 1; rank <= 4; rank++ {
		if got, want := (Codec{}).NaiveAmplification(opts, rank), dopts.NaiveErrorAmplification(rank); got != want {
			t.Fatalf("NaiveAmplification(rank=%d) = %g, want %g", rank, got, want)
		}
		if got, want := (Codec{}).TightAmplification(opts, rank), dopts.ErrorAmplification(rank); got != want {
			t.Fatalf("TightAmplification(rank=%d) = %g, want %g", rank, got, want)
		}
	}
}

// TestIDIsDefault pins the backend to the registry default: headers without
// a codec tag must decode through this backend.
func TestIDIsDefault(t *testing.T) {
	if ID != codec.DefaultID {
		t.Fatalf("mgard.ID = %q, codec.DefaultID = %q", ID, codec.DefaultID)
	}
	c, err := codec.ByID("")
	if err != nil {
		t.Fatalf("ByID(\"\"): %v", err)
	}
	if c.ID() != ID {
		t.Fatalf("default backend is %q, want %q", c.ID(), ID)
	}
}
