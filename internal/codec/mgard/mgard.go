// Package mgard registers the paper's MGARD-style lifting decomposition as
// the "mgard" progressive-codec backend. It is a thin adapter over
// internal/decompose: the transform, its worker fan-out, and the
// error-amplification constants are exactly the pre-interface pipeline's,
// so artifacts produced through this backend are byte-identical to those
// the pipeline wrote before the codec abstraction existed (pinned by
// core's TestStoredFormatStability and the codectest worker-identity
// suite).
package mgard

import (
	"pmgard/internal/codec"
	"pmgard/internal/decompose"
	"pmgard/internal/grid"
	"pmgard/internal/obs"
)

// ID is the backend identifier; it is also codec.DefaultID, the codec every
// pre-interface artifact belongs to.
const ID = "mgard"

func init() { codec.Register(Codec{}) }

// Codec is the MGARD-style backend: multilinear lifting prediction with the
// optional L2-projection-like update step, nega-binary bit-plane streams.
type Codec struct {
	codec.BitplaneCoder
}

// ID implements codec.ProgressiveCodec.
func (Codec) ID() string { return ID }

// options converts the backend-agnostic options into the decompose form.
func options(opts codec.Options) decompose.Options {
	return decompose.Options{
		Levels:       opts.Levels,
		Update:       opts.Update,
		UpdateWeight: opts.UpdateWeight,
	}
}

// Decompose implements codec.ProgressiveCodec via the lifting transform.
func (Codec) Decompose(t *grid.Tensor, opts codec.Options, workers int, o *obs.Obs) (codec.Decomposition, error) {
	return decompose.DecomposeObs(t, options(opts), workers, o)
}

// NewZero implements codec.ProgressiveCodec.
func (Codec) NewZero(dims []int, opts codec.Options, workers int) (codec.Decomposition, error) {
	return decompose.NewZeroWorkers(dims, options(opts), workers)
}

// NaiveAmplification implements codec.ProgressiveCodec: the compounded
// absolute-row-sum constant of the original error-control theory ([19],
// Eq. 6), wildly pessimistic by design.
func (Codec) NaiveAmplification(opts codec.Options, rank int) float64 {
	return options(opts).NaiveErrorAmplification(rank)
}

// TightAmplification implements codec.ProgressiveCodec: per-level
// amplification without cross-step compounding.
func (Codec) TightAmplification(opts codec.Options, rank int) float64 {
	return options(opts).ErrorAmplification(rank)
}
