// Package codec defines the pluggable progressive-codec contract behind the
// retrieval pipeline (ROADMAP item 3). A ProgressiveCodec owns the two
// transforms that differ between progressive compression schemes — how a
// field is refactored into multilevel coefficient streams, and how decoded
// streams are recomposed into a field — plus the per-plane progressive
// encode/decode of those streams and the error-amplification constants that
// map per-level coefficient errors Err[l][b] to a reconstruction bound.
//
// Everything else in the pipeline is backend-agnostic and stays in
// internal/core: the lossless stage, the segment store layout, the greedy
// planner, sessions, and the serving tier all operate on (level, plane)
// segments plus the Err matrix, whichever backend produced them. A new
// backend therefore plugs in by implementing this interface and registering
// itself; it inherits serialization (core.Header with a CodecID tag),
// tiered storage, caching, retry/breaker resilience, and the serving API
// for free — and must pass the conformance suite in codectest.
//
// Two backends ship in-tree:
//
//   - "mgard" (internal/codec/mgard): the paper's MGARD-style lifting
//     decomposition with the optional L2 update step, wrapped unchanged
//     from internal/decompose. Its artifacts are byte-identical to the
//     pre-interface pipeline.
//   - "interp" (internal/codec/interp): an IPComp/SZ3-style open-loop
//     multilinear-interpolation predictor hierarchy (arXiv:2502.04093),
//     whose per-level error amplification constant is exactly 1.
package codec

import (
	"fmt"
	"sort"
	"sync"

	"pmgard/internal/bitplane"
	"pmgard/internal/grid"
	"pmgard/internal/obs"
)

// DefaultID is the codec every pre-interface artifact was produced by; a
// header without an explicit CodecID belongs to it.
const DefaultID = "mgard"

// Options configures a backend's multilevel transform. The fields mirror
// the retained header metadata, so any backend's options survive a
// serialization roundtrip; backends ignore fields that do not apply to
// them (the interpolation backend ignores the lifting update).
type Options struct {
	// Levels is the number of coefficient levels L (≥ 1); level 0 is the
	// coarsest.
	Levels int
	// Update enables the MGARD backend's L2-projection-like lifting update
	// step. Interpolation-style backends ignore it.
	Update bool
	// UpdateWeight is the lifting update weight (mgard only).
	UpdateWeight float64
}

// Decomposition is one field's multilevel coefficient representation: the
// writable per-level streams a partial decode fills, and the recomposition
// that turns them back into a spatial field. Implementations are produced
// by a ProgressiveCodec and are not safe for concurrent mutation.
type Decomposition interface {
	// Levels returns the number of coefficient levels L.
	Levels() int
	// Coeffs returns the level-l coefficient stream. The slice is the
	// decomposition's own storage: mutating it changes what Recompose
	// reconstructs (this is how truncated retrieval is modelled).
	Coeffs(l int) []float64
	// Recompose reconstructs the spatial field from the current streams.
	Recompose() *grid.Tensor
	// RecomposeObs is Recompose with telemetry recorded into o; a nil o is
	// exactly Recompose.
	RecomposeObs(o *obs.Obs) *grid.Tensor
	// RecomposeLevel reconstructs the approximation spanned by levels
	// 0..upTo on the coarser grid those levels cover — the reduced
	// degrees-of-freedom retrieval mode.
	RecomposeLevel(upTo int) (*grid.Tensor, error)
}

// ProgressiveCodec is the pluggable backend contract: refactor, per-plane
// progressive encode, partial decode, and the error-control constants. All
// methods must be deterministic — bit-identical output for every worker
// count — and safe for concurrent use.
type ProgressiveCodec interface {
	// ID returns the stable backend identifier recorded in headers and
	// cache keys ("mgard", "interp").
	ID() string
	// Decompose refactors a field into multilevel coefficient streams,
	// fanning independent work across at most `workers` goroutines (≤ 0
	// means GOMAXPROCS) and recording telemetry into o when non-nil.
	Decompose(t *grid.Tensor, opts Options, workers int, o *obs.Obs) (Decomposition, error)
	// NewZero returns an all-zero decomposition for the given grid shape —
	// the starting point when reassembling a partial retrieval.
	NewZero(dims []int, opts Options, workers int) (Decomposition, error)
	// EncodeLevel slices one coefficient stream into `planes` progressive
	// bit-planes and collects the error matrix Err[b] = max abs coefficient
	// error with only the first b planes (len planes+1).
	EncodeLevel(coeffs []float64, planes, workers int, o *obs.Obs) (*bitplane.LevelEncoding, error)
	// DecodeLevel reconstructs a coefficient stream from the first b planes
	// of enc into dst.
	DecodeLevel(enc *bitplane.LevelEncoding, b int, dst []float64, workers int, o *obs.Obs)
	// NaiveAmplification returns the conservative constant C such that a
	// reconstruction from streams perturbed by at most Err_l per level is
	// perturbed by at most C·Σ_l Err_l in the max norm — the bound the
	// original error-control theory would use (the paper's Eq. 6).
	NaiveAmplification(opts Options, rank int) float64
	// TightAmplification returns the sharper per-level analytical constant
	// (still a true bound), used by the constant ablation.
	TightAmplification(opts Options, rank int) float64
}

// BitplaneCoder provides the shared per-plane progressive encode/decode
// implementation — nega-binary bit-plane slicing with the incremental error
// matrix from internal/bitplane. Backends embed it so their coefficient
// streams all serialize to the same (level, plane) segment shape, which is
// what keeps storage, caching and the planner backend-agnostic.
type BitplaneCoder struct{}

// EncodeLevel implements ProgressiveCodec.EncodeLevel via the word-parallel
// nega-binary kernels.
func (BitplaneCoder) EncodeLevel(coeffs []float64, planes, workers int, o *obs.Obs) (*bitplane.LevelEncoding, error) {
	return bitplane.EncodeLevelObs(coeffs, planes, workers, o)
}

// DecodeLevel implements ProgressiveCodec.DecodeLevel via the word-parallel
// partial-decode kernels.
func (BitplaneCoder) DecodeLevel(enc *bitplane.LevelEncoding, b int, dst []float64, workers int, o *obs.Obs) {
	enc.DecodePartialObs(b, dst, workers, o)
}

// registry holds the process-wide backend set; backends self-register from
// init, so lookups after package initialization need only a read lock.
var registry = struct {
	sync.RWMutex
	byID map[string]ProgressiveCodec
}{byID: map[string]ProgressiveCodec{}}

// Register adds a backend to the process-wide registry. It panics on a
// duplicate or empty ID — backend identity is part of the on-disk format,
// so a collision is a programming error, not a runtime condition.
func Register(c ProgressiveCodec) {
	id := c.ID()
	if id == "" {
		panic("codec: Register with empty ID")
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.byID[id]; dup {
		panic(fmt.Sprintf("codec: duplicate backend %q", id))
	}
	registry.byID[id] = c
}

// ByID resolves a backend; the empty string resolves to DefaultID so
// pre-interface headers and zero-valued configs keep working.
func ByID(id string) (ProgressiveCodec, error) {
	if id == "" {
		id = DefaultID
	}
	registry.RLock()
	c, ok := registry.byID[id]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("codec: unknown backend %q (registered: %v)", id, IDs())
	}
	return c, nil
}

// IDs returns the registered backend identifiers, sorted.
func IDs() []string {
	registry.RLock()
	ids := make([]string, 0, len(registry.byID))
	for id := range registry.byID {
		ids = append(ids, id)
	}
	registry.RUnlock()
	sort.Strings(ids)
	return ids
}
