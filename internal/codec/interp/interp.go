// Package interp registers the "interp" progressive-codec backend: an
// IPComp/SZ3-style interpolation-based refactoring (Liu et al.,
// arXiv:2502.04093) behind the same ProgressiveCodec interface as the
// MGARD-style lifting backend.
//
// The transform shares the MGARD level structure (interleave.Plan assigns
// every grid node to one of L levels, level 0 being the coarsest grid) but
// predicts instead of lifting: a level-l node's coefficient is its residual
// against the multilinear interpolation of the surrounding coarser-grid
// nodes. Prediction is open-loop — the encoder predicts from the exact
// field values at the coarser nodes, not from their quantized
// reconstructions — which keeps Decompose a pure field→coefficients map
// (bit-identical for every worker count, independent of the plane budget)
// at the cost of a slightly looser residual floor.
//
// Error control: multilinear interpolation with boundary clamping is a
// convex combination, hence non-expansive in the max norm. A level-l node
// decoded from perturbed coarser values inherits at most their maximum
// error plus its own truncation error Err[l][b_l], so by induction the
// reconstruction error is bounded by Σ_l Err[l][b_l] — the amplification
// constant is exactly 1, naive and tight alike. This is the backend's
// structural advantage over the lifting scheme on smooth fields: no update
// step means no (1+2w)^rank amplification, so the planner's bound is sharp
// and fewer planes clear a given tolerance.
package interp

import (
	"fmt"

	"pmgard/internal/codec"
	"pmgard/internal/grid"
	"pmgard/internal/interleave"
	"pmgard/internal/obs"
	"pmgard/internal/pool"
)

// ID is the backend identifier recorded in headers and cache keys.
const ID = "interp"

func init() { codec.Register(Codec{}) }

// Codec is the interpolation-based backend: open-loop multilinear
// prediction residuals per level, nega-binary bit-plane streams.
type Codec struct {
	codec.BitplaneCoder
}

// ID implements codec.ProgressiveCodec.
func (Codec) ID() string { return ID }

// validate checks the option subset the backend honors. Update fields are
// ignored (prediction has no lifting update), not rejected, so options
// roundtripped through a header never fail retroactively.
func validate(opts codec.Options) error {
	if opts.Levels < 1 || opts.Levels > 30 {
		return fmt.Errorf("interp: Levels %d out of range [1,30]", opts.Levels)
	}
	return nil
}

// Decompose implements codec.ProgressiveCodec: level-by-level open-loop
// interpolation residuals, coarsest first.
func (Codec) Decompose(t *grid.Tensor, opts codec.Options, workers int, o *obs.Obs) (codec.Decomposition, error) {
	if err := validate(opts); err != nil {
		return nil, err
	}
	plan, err := interleave.NewPlan(t.Dims(), opts.Levels)
	if err != nil {
		return nil, err
	}
	workers = pool.Clamp(workers)
	sp := o.Span("interp.decompose", nil)
	sp.SetAttr("levels", opts.Levels)
	sp.SetAttr("rank", t.NDim())
	defer sp.End()
	d := &decomposition{plan: plan, workers: workers, coeffs: make([][]float64, opts.Levels)}
	data := t.Data()
	// Level 0 stores the coarsest-grid values verbatim (zero prediction);
	// finer levels store residuals against interpolation from the exact
	// values of all coarser nodes. Each level's residuals depend only on
	// data, never on other residuals, so levels and chunks are independent.
	for l := 0; l < opts.Levels; l++ {
		ix := plan.Indices(l)
		cs := make([]float64, len(ix))
		d.coeffs[l] = cs
		if l == 0 {
			plan.Extract(data, 0, cs)
			continue
		}
		predictLevel(plan, data, l, cs, nil, workers)
	}
	if o != nil {
		o.Counter("interp.decompositions").Add(1)
		o.Counter("interp.nodes").Add(int64(len(data)))
	}
	return d, nil
}

// NewZero implements codec.ProgressiveCodec.
func (Codec) NewZero(dims []int, opts codec.Options, workers int) (codec.Decomposition, error) {
	if err := validate(opts); err != nil {
		return nil, err
	}
	plan, err := interleave.NewPlan(dims, opts.Levels)
	if err != nil {
		return nil, err
	}
	d := &decomposition{plan: plan, workers: pool.Clamp(workers), coeffs: make([][]float64, opts.Levels)}
	for l, n := range plan.LevelSizes() {
		d.coeffs[l] = make([]float64, n)
	}
	return d, nil
}

// NaiveAmplification implements codec.ProgressiveCodec: interpolation is
// max-norm non-expansive, so even the naive compounded bound is 1.
func (Codec) NaiveAmplification(codec.Options, int) float64 { return 1 }

// TightAmplification implements codec.ProgressiveCodec.
func (Codec) TightAmplification(codec.Options, int) float64 { return 1 }

// decomposition carries the per-level residual streams and the interleave
// plan that localizes them on the grid.
type decomposition struct {
	plan    *interleave.Plan
	coeffs  [][]float64
	workers int
}

// Levels implements codec.Decomposition.
func (d *decomposition) Levels() int { return len(d.coeffs) }

// Coeffs implements codec.Decomposition.
func (d *decomposition) Coeffs(l int) []float64 { return d.coeffs[l] }

// Recompose implements codec.Decomposition: scatter level 0, then add each
// finer level's residuals to the interpolation of the already-reconstructed
// coarser grid. The decoder predicts from decoded values where the encoder
// predicted from exact ones; the difference is what the Err matrix bounds.
func (d *decomposition) Recompose() *grid.Tensor {
	return d.RecomposeObs(nil)
}

// RecomposeObs implements codec.Decomposition.
func (d *decomposition) RecomposeObs(o *obs.Obs) *grid.Tensor {
	sp := o.Span("interp.recompose", nil)
	sp.SetAttr("levels", len(d.coeffs))
	defer sp.End()
	out := grid.New(d.plan.Dims()...)
	data := out.Data()
	d.plan.Inject(data, 0, d.coeffs[0])
	for l := 1; l < len(d.coeffs); l++ {
		predictLevel(d.plan, data, l, nil, d.coeffs[l], d.workers)
	}
	if o != nil {
		o.Counter("interp.recompositions").Add(1)
	}
	return out
}

// RecomposeLevel implements codec.Decomposition: decode levels 0..upTo and
// gather the stride-2^(Levels-1-upTo) sub-grid they span.
func (d *decomposition) RecomposeLevel(upTo int) (*grid.Tensor, error) {
	L := len(d.coeffs)
	if upTo < 0 || upTo >= L {
		return nil, fmt.Errorf("interp: RecomposeLevel upTo %d out of [0,%d)", upTo, L)
	}
	dims := d.plan.Dims()
	work := make([]float64, tensorLen(dims))
	d.plan.Inject(work, 0, d.coeffs[0])
	for l := 1; l <= upTo; l++ {
		predictLevel(d.plan, work, l, nil, d.coeffs[l], d.workers)
	}
	step := 1 << (L - 1 - upTo)
	outDims := make([]int, len(dims))
	for i, n := range dims {
		outDims[i] = (n-1)/step + 1
	}
	out := grid.New(outDims...)
	gatherStride(work, dims, step, out.Data(), outDims)
	return out, nil
}

// tensorLen returns the flat length of a grid with the given dims.
func tensorLen(dims []int) int {
	n := 1
	for _, d := range dims {
		n *= d
	}
	return n
}

// gatherStride copies the stride-step sub-grid of src (shape dims) into dst
// (shape outDims), row-major.
func gatherStride(src []float64, dims []int, step int, dst []float64, outDims []int) {
	rank := len(dims)
	strides := make([]int, rank)
	s := 1
	for d := rank - 1; d >= 0; d-- {
		strides[d] = s
		s *= dims[d]
	}
	idx := make([]int, rank)
	for i := range dst {
		flat := 0
		for d := 0; d < rank; d++ {
			flat += idx[d] * step * strides[d]
		}
		dst[i] = src[flat]
		for d := rank - 1; d >= 0; d-- {
			idx[d]++
			if idx[d] < outDims[d] {
				break
			}
			idx[d] = 0
		}
	}
}

// predictLevel evaluates the multilinear prediction of every level-l node
// from the coarser grid in data, in the level's deterministic stream order.
// Exactly one of residuals/add is non-nil:
//
//   - encode: residuals[i] = data[node_i] - prediction_i
//   - decode: data[node_i] = prediction_i + add[i]
//
// Writes touch only level-l nodes and reads only coarser-grid nodes, which
// are disjoint sets, so chunking the node list across workers is
// deterministic and race-free.
func predictLevel(plan *interleave.Plan, data []float64, l int, residuals, add []float64, workers int) {
	ix := plan.Indices(l)
	if len(ix) == 0 {
		return
	}
	dims := plan.Dims()
	rank := len(dims)
	strides := make([]int, rank)
	s := 1
	for d := rank - 1; d >= 0; d-- {
		strides[d] = s
		s *= dims[d]
	}
	// Nodes of level l sit on the stride-h grid but off the stride-2h
	// (coarser) grid, h = 2^(L-1-l): along each axis the index is a
	// multiple of h, and on at least one axis an odd multiple.
	h := 1 << (plan.Levels() - 1 - l)
	run := func(lo, hi int) {
		coords := make([]int, rank)
		for i := lo; i < hi; i++ {
			flat := ix[i]
			rem := flat
			for d := 0; d < rank; d++ {
				coords[d] = rem / strides[d]
				rem %= strides[d]
			}
			pred := predict(data, dims, strides, coords, h)
			if residuals != nil {
				residuals[i] = data[flat] - pred
			} else {
				data[flat] = pred + add[i]
			}
		}
	}
	if workers <= 1 {
		run(0, len(ix))
		return
	}
	pool.RunChunks(len(ix), workers, func(_, lo, hi int) error {
		run(lo, hi)
		return nil
	})
}

// predict evaluates the multilinear interpolation of the coarser (stride
// 2h) grid at the node with the given coords: the equal-weight average over
// the 2^k corner nodes obtained by rounding every odd axis down and up to
// the coarser stride. A corner beyond the grid boundary is dropped, which
// clamps the interpolation to the surviving corners — still a convex
// combination, so the predictor stays max-norm non-expansive.
func predict(data []float64, dims, strides, coords []int, h int) float64 {
	// Collect the odd axes: coords[d] is an odd multiple of h on them.
	var oddAxes [8]int
	var oddCount int
	base := 0
	for d := range dims {
		c := coords[d]
		if (c/h)&1 == 1 {
			if oddCount < len(oddAxes) {
				oddAxes[oddCount] = d
			}
			oddCount++
			base += (c - h) * strides[d]
		} else {
			base += c * strides[d]
		}
	}
	if oddCount > len(oddAxes) {
		// Ranks above 8 fall back to the lower corner alone (still convex);
		// the pipeline never builds grids of rank > 8.
		return data[base]
	}
	sum := 0.0
	count := 0
	for mask := 0; mask < 1<<oddCount; mask++ {
		flat := base
		ok := true
		for b := 0; b < oddCount; b++ {
			if mask>>b&1 == 1 {
				d := oddAxes[b]
				up := coords[d] + h
				if up >= dims[d] {
					ok = false
					break
				}
				flat += 2 * h * strides[d]
			}
		}
		if !ok {
			continue
		}
		sum += data[flat]
		count++
	}
	return sum / float64(count)
}
