package interp

import (
	"math"
	"testing"

	"pmgard/internal/codec"
	"pmgard/internal/grid"
)

// linearField builds an affine 2-D field a + b·x + c·y — exactly
// reproducible by multilinear interpolation.
func linearField(n int) *grid.Tensor {
	f := grid.New(n, n)
	data := f.Data()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			data[i*n+j] = 0.25 + 1.5*float64(i) - 0.75*float64(j)
		}
	}
	return f
}

// TestLinearFieldsHaveVanishingResiduals checks the core property of the
// predictor: an affine field is reproduced exactly by multilinear
// interpolation, so every level above the coarsest stores (near-)zero
// residuals and the stream compresses to almost nothing.
func TestLinearFieldsHaveVanishingResiduals(t *testing.T) {
	opts := codec.Options{Levels: 4}
	dec, err := Codec{}.Decompose(linearField(17), opts, 1, nil)
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	for l := 1; l < dec.Levels(); l++ {
		for i, r := range dec.Coeffs(l) {
			if math.Abs(r) > 1e-10 {
				t.Fatalf("level %d residual[%d] = %g; affine fields must predict exactly", l, i, r)
			}
		}
	}
}

// TestRecomposeLevelSubsamples checks the reduced-resolution mode: decoding
// levels 0..upTo must reproduce the original field on the stride-2^(L-1-upTo)
// sub-grid (the nodes those levels own), at the matching coarse dims.
func TestRecomposeLevelSubsamples(t *testing.T) {
	n := 17
	f := grid.New(n, n)
	for i := range f.Data() {
		f.Data()[i] = math.Sin(float64(i) * 0.13)
	}
	opts := codec.Options{Levels: 4}
	dec, err := Codec{}.Decompose(f, opts, 1, nil)
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	for upTo := 0; upTo < opts.Levels; upTo++ {
		coarse, err := dec.RecomposeLevel(upTo)
		if err != nil {
			t.Fatalf("RecomposeLevel(%d): %v", upTo, err)
		}
		step := 1 << (opts.Levels - 1 - upTo)
		wantSide := (n-1)/step + 1
		dims := coarse.Dims()
		if len(dims) != 2 || dims[0] != wantSide || dims[1] != wantSide {
			t.Fatalf("RecomposeLevel(%d) dims = %v, want [%d %d]", upTo, dims, wantSide, wantSide)
		}
		for i := 0; i < wantSide; i++ {
			for j := 0; j < wantSide; j++ {
				got := coarse.Data()[i*wantSide+j]
				want := f.Data()[(i*step)*n+j*step]
				if math.Abs(got-want) > 1e-12 {
					t.Fatalf("RecomposeLevel(%d)[%d,%d] = %g, want %g", upTo, i, j, got, want)
				}
			}
		}
	}
	if _, err := dec.RecomposeLevel(-1); err == nil {
		t.Fatal("RecomposeLevel(-1) accepted")
	}
	if _, err := dec.RecomposeLevel(opts.Levels); err == nil {
		t.Fatal("RecomposeLevel(L) accepted")
	}
}

// TestValidateRejectsBadLevels checks option validation on both transform
// entry points.
func TestValidateRejectsBadLevels(t *testing.T) {
	f := grid.New(9, 9)
	for _, levels := range []int{0, -1, 31} {
		if _, err := (Codec{}).Decompose(f, codec.Options{Levels: levels}, 1, nil); err == nil {
			t.Fatalf("Decompose accepted Levels=%d", levels)
		}
		if _, err := (Codec{}).NewZero([]int{9, 9}, codec.Options{Levels: levels}, 1); err == nil {
			t.Fatalf("NewZero accepted Levels=%d", levels)
		}
	}
}

// TestAmplificationIsOne pins the backend's structural property: prediction
// is a convex combination, so the error amplification constant is exactly 1
// for every rank, naive and tight alike.
func TestAmplificationIsOne(t *testing.T) {
	opts := codec.Options{Levels: 5, Update: true, UpdateWeight: 0.25}
	for rank := 1; rank <= 4; rank++ {
		if c := (Codec{}).NaiveAmplification(opts, rank); c != 1 {
			t.Fatalf("NaiveAmplification(rank=%d) = %g, want 1", rank, c)
		}
		if c := (Codec{}).TightAmplification(opts, rank); c != 1 {
			t.Fatalf("TightAmplification(rank=%d) = %g, want 1", rank, c)
		}
	}
}

// TestWorkerDeterminism checks the fan-out writes residuals into disjoint
// pre-sized slots: every worker count yields bit-identical streams.
func TestWorkerDeterminism(t *testing.T) {
	n := 33
	f := grid.New(n, n)
	for i := range f.Data() {
		f.Data()[i] = math.Cos(float64(i)*0.21) * float64(i%13)
	}
	opts := codec.Options{Levels: 5}
	ref, err := Codec{}.Decompose(f, opts, 1, nil)
	if err != nil {
		t.Fatalf("Decompose(workers=1): %v", err)
	}
	for _, workers := range []int{2, 4, 8} {
		dec, err := Codec{}.Decompose(f, opts, workers, nil)
		if err != nil {
			t.Fatalf("Decompose(workers=%d): %v", workers, err)
		}
		for l := 0; l < ref.Levels(); l++ {
			a, b := ref.Coeffs(l), dec.Coeffs(l)
			for i := range a {
				if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
					t.Fatalf("level %d coeff %d differs at workers=%d", l, i, workers)
				}
			}
		}
	}
}
