package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"pmgard/internal/obs"
)

func TestAdmissionNilAdmitsEverything(t *testing.T) {
	var a *Admission
	for i := 0; i < 100; i++ {
		release, err := a.Acquire(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		release()
	}
	if s := a.Stats(); s != (AdmissionStats{}) {
		t.Fatalf("nil admission stats = %+v, want zeros", s)
	}
	if NewAdmission(0, 10) != nil {
		t.Fatal("NewAdmission(0, _) should return nil (unlimited)")
	}
}

func TestAdmissionBoundsInflightAndSheds(t *testing.T) {
	a := NewAdmission(2, 0)
	r1, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Full, no queue: the third caller is shed immediately.
	if _, err := a.Acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("overflow Acquire err = %v, want ErrShed", err)
	}
	s := a.Stats()
	if s.Inflight != 2 || s.Shed != 1 || s.Admitted != 2 {
		t.Fatalf("stats = %+v, want inflight 2, shed 1, admitted 2", s)
	}
	r1()
	r2()
	if got := a.Stats().Inflight; got != 0 {
		t.Fatalf("inflight after release = %d, want 0", got)
	}
	// Slots free again: the next caller is admitted.
	r3, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r3()
}

func TestAdmissionQueueAdmitsWhenSlotFrees(t *testing.T) {
	a := NewAdmission(1, 1)
	r1, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		release, err := a.Acquire(context.Background())
		if err == nil {
			release()
		}
		got <- err
	}()
	// Wait for the goroutine to actually enter the queue, then free the
	// slot it is waiting for.
	deadline := time.After(5 * time.Second)
	for a.Stats().Queued == 0 {
		select {
		case <-deadline:
			t.Fatal("waiter never entered the queue")
		case <-time.After(time.Millisecond):
		}
	}
	// The queue (cap 1) is full: a third caller sheds.
	if _, err := a.Acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("queue-overflow Acquire err = %v, want ErrShed", err)
	}
	r1()
	if err := <-got; err != nil {
		t.Fatalf("queued Acquire err = %v, want admitted", err)
	}
}

func TestAdmissionQueuedCallerHonorsContext(t *testing.T) {
	a := NewAdmission(1, 4)
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := a.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued Acquire err = %v, want DeadlineExceeded", err)
	}
	if got := a.Stats().Queued; got != 0 {
		t.Fatalf("queued after context expiry = %d, want 0", got)
	}
}

func TestAdmissionConcurrentNeverExceedsBounds(t *testing.T) {
	const inflightCap, queueCap, callers = 3, 2, 32
	a := NewAdmission(inflightCap, queueCap)
	o := obs.New()
	a.Instrument(o, "serve")
	var wg sync.WaitGroup
	var admitted, shed sync.Map
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			release, err := a.Acquire(context.Background())
			if errors.Is(err, ErrShed) {
				shed.Store(i, true)
				return
			}
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			if got := a.Stats().Inflight; got > inflightCap {
				t.Errorf("inflight %d exceeds cap %d", got, inflightCap)
			}
			admitted.Store(i, true)
			time.Sleep(time.Millisecond)
			release()
		}(i)
	}
	wg.Wait()
	s := a.Stats()
	if s.Inflight != 0 || s.Queued != 0 {
		t.Fatalf("after drain: %+v, want zero inflight and queued", s)
	}
	if s.Admitted+s.Shed != callers {
		t.Fatalf("admitted %d + shed %d != callers %d", s.Admitted, s.Shed, callers)
	}
	snap := o.Metrics.Snapshot()
	if snap.Counters["serve.admitted"] != s.Admitted || snap.Counters["serve.shed"] != s.Shed {
		t.Fatalf("registry counters %v disagree with stats %+v", snap.Counters, s)
	}
}
