package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"pmgard/internal/obs"
	"pmgard/internal/storage"
)

// State is a circuit breaker's position.
type State int32

// Breaker states, in gauge order: the storage.breaker_state gauge reports
// the numeric value, so dashboards read 0 = closed, 1 = open, 2 = half-open.
const (
	// StateClosed passes every read through; consecutive failures are
	// counted toward the trip threshold.
	StateClosed State = iota
	// StateOpen fails every read fast with ErrOpen until the cooldown
	// expires.
	StateOpen
	// StateHalfOpen lets a bounded number of probe reads through; a probe
	// failure re-opens, enough probe successes close.
	StateHalfOpen
)

// String returns the lowercase state name.
func (s State) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// BreakerConfig tunes a Breaker. The zero value uses the documented
// defaults.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive failed reads that trips
	// the breaker open. Values below 1 mean the default of 5.
	FailureThreshold int
	// Cooldown is how long an open breaker refuses reads before letting
	// half-open probes through. 0 means the default of 2s.
	Cooldown time.Duration
	// HalfOpenProbes is both the number of concurrent probe reads a
	// half-open breaker admits and the successes required to close. Values
	// below 1 mean the default of 1.
	HalfOpenProbes int
	// Now replaces time.Now for the cooldown clock; tests use it to step
	// time deterministically. nil means time.Now.
	Now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold < 1 {
		c.FailureThreshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Second
	}
	if c.HalfOpenProbes < 1 {
		c.HalfOpenProbes = 1
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is a consecutive-failure circuit breaker over a segment source.
// Closed, it passes reads through and counts consecutive failures (any
// fault class — a dead tier surfaces as either retry exhaustion or
// permanent errors; successes reset the count, so an isolated lost plane
// among healthy reads never trips it). At the threshold it opens: every
// read fails fast with ErrOpen instead of burning the per-request retry
// budget against a dead tier. After the cooldown it half-opens, letting a
// bounded number of probe reads through — a probe failure re-opens, enough
// successes close.
//
// Context cancellation errors (context.Canceled, context.DeadlineExceeded)
// are the caller's fault, not the tier's: Record ignores them, so client
// timeouts can never trip a breaker on a healthy source.
//
// A Breaker is safe for concurrent use. Every Allow that returns nil must
// be followed by exactly one Record with the read's outcome.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    State
	failures int       // consecutive failures while closed
	openedAt time.Time // trip time of the current open period
	probes   int       // in-flight probe reads while half-open
	probeOK  int       // successful probes this half-open period

	stateG    *obs.Gauge
	opened    *obs.Counter
	halfOpens *obs.Counter
	closedC   *obs.Counter
	fastFails *obs.Counter
}

// NewBreaker returns a closed breaker under cfg (zero fields take the
// BreakerConfig defaults).
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{
		cfg:       cfg.withDefaults(),
		stateG:    new(obs.Gauge),
		opened:    new(obs.Counter),
		halfOpens: new(obs.Counter),
		closedC:   new(obs.Counter),
		fastFails: new(obs.Counter),
	}
}

// Instrument rebinds the breaker instruments to shared, registry-named ones
// in o. The state gauge is "storage.breaker_state" (suffixed ".<source>"
// when source is non-empty, so multi-field servers get one gauge per tier);
// the transition counters live under "resilience.breaker[.<source>].":
// opened, half_opens, closed, fast_fails. Call before the breaker is shared
// across goroutines; a nil or metrics-less o is a no-op.
func (b *Breaker) Instrument(o *obs.Obs, source string) {
	if o == nil || o.Metrics == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	gaugeName := "storage.breaker_state"
	prefix := "resilience.breaker"
	if source != "" {
		gaugeName += "." + source
		prefix += "." + source
	}
	g := o.Gauge(gaugeName)
	g.Set(float64(b.state))
	b.stateG = g
	bind := func(dst **obs.Counter, name string) {
		c := o.Counter(prefix + "." + name)
		c.Add((*dst).Value())
		*dst = c
	}
	bind(&b.opened, "opened")
	bind(&b.halfOpens, "half_opens")
	bind(&b.closedC, "closed")
	bind(&b.fastFails, "fast_fails")
}

// State returns the breaker's current position, advancing an expired open
// period to half-open first so callers never observe a stale open.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advanceLocked()
	return b.state
}

// RetryAfter returns how long the breaker will keep refusing reads — the
// cooldown remaining on the current open period — and 0 when the breaker
// is not open. Serving layers derive 503 Retry-After headers from it, so a
// well-behaved client backs off for exactly as long as the breaker will
// reject it rather than a hardcoded constant.
func (b *Breaker) RetryAfter() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advanceLocked()
	if b.state != StateOpen {
		return 0
	}
	d := b.cfg.Cooldown - b.cfg.Now().Sub(b.openedAt)
	if d < 0 {
		d = 0
	}
	return d
}

// advanceLocked moves an open breaker whose cooldown has expired to
// half-open. b.mu must be held.
func (b *Breaker) advanceLocked() {
	if b.state == StateOpen && b.cfg.Now().Sub(b.openedAt) >= b.cfg.Cooldown {
		b.setStateLocked(StateHalfOpen)
		b.halfOpens.Add(1)
		b.probes, b.probeOK = 0, 0
	}
}

// setStateLocked records a state transition. b.mu must be held.
func (b *Breaker) setStateLocked(s State) {
	b.state = s
	b.stateG.Set(float64(s))
}

// tripLocked opens the breaker and starts its cooldown. b.mu must be held.
func (b *Breaker) tripLocked() {
	b.setStateLocked(StateOpen)
	b.openedAt = b.cfg.Now()
	b.failures = 0
	b.probes, b.probeOK = 0, 0
	b.opened.Add(1)
}

// Allow asks whether a read may proceed. nil means yes — the caller must
// Record the outcome; ErrOpen means the breaker refused (fail fast, do not
// Record).
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advanceLocked()
	switch b.state {
	case StateClosed:
		return nil
	case StateHalfOpen:
		if b.probes < b.cfg.HalfOpenProbes {
			b.probes++
			return nil
		}
	}
	b.fastFails.Add(1)
	return ErrOpen
}

// Record reports the outcome of a read Allow admitted. A nil err is a
// success; two classes of error count as neither success nor failure:
// context cancellation (attributed to the caller, not the store) and
// permanent data faults (a lost or quarantined plane is the store answering
// authoritatively — the tier is up, the data is gone, and the session's
// degraded-serving path handles it; opening the breaker would turn graceful
// degradation into blanket unavailability).
func (b *Breaker) Record(err error) {
	callerFault := err != nil &&
		(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
			storage.Classify(err) == storage.FaultPermanent)
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateHalfOpen:
		if b.probes > 0 {
			b.probes--
		}
		if callerFault {
			return
		}
		if err != nil {
			b.tripLocked()
			return
		}
		b.probeOK++
		if b.probeOK >= b.cfg.HalfOpenProbes {
			b.setStateLocked(StateClosed)
			b.failures = 0
			b.closedC.Add(1)
		}
	case StateClosed:
		if callerFault {
			return
		}
		if err == nil {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.tripLocked()
		}
	case StateOpen:
		// A straggler read admitted before the trip landed; the open period
		// already superseded whatever it observed.
	}
}

// BreakerStats is a point-in-time view over the breaker counters.
type BreakerStats struct {
	// State is the current breaker position.
	State State
	// Opened is the number of closed/half-open → open transitions.
	Opened int64
	// HalfOpens is the number of open → half-open transitions.
	HalfOpens int64
	// Closed is the number of half-open → closed transitions.
	Closed int64
	// FastFails is the number of reads refused with ErrOpen.
	FastFails int64
}

// Stats returns a snapshot of the breaker counters.
func (b *Breaker) Stats() BreakerStats {
	return BreakerStats{
		State:     b.State(),
		Opened:    b.opened.Value(),
		HalfOpens: b.halfOpens.Value(),
		Closed:    b.closedC.Value(),
		FastFails: b.fastFails.Value(),
	}
}

// PlaneSource yields compressed plane payloads; structurally identical to
// core.SegmentSource and storage.PlaneSource, restated so this package
// wraps either without importing them.
type PlaneSource interface {
	// Segment returns the compressed payload of plane k of level l.
	Segment(level, plane int) ([]byte, error)
}

// PlaneSourceCtx is the context-aware extension of PlaneSource, matching
// core.ContextSource; sources that support it get per-read cancellation
// through the breaker.
type PlaneSourceCtx interface {
	// SegmentCtx is Segment bounded by ctx.
	SegmentCtx(ctx context.Context, level, plane int) ([]byte, error)
}

// BreakerSource gates a segment source behind a Breaker: reads ask Allow
// first (failing fast with ErrOpen while the breaker is open) and report
// their outcome to Record. Layer it *above* the retry layer — the breaker's
// unit of failure is "the whole retry budget burned", so one dead-tier
// request costs one failure, and once open, later requests skip the budget
// entirely.
type BreakerSource struct {
	// Src is the wrapped source.
	Src PlaneSource
	// Breaker gates the reads; must be non-nil.
	Breaker *Breaker
}

// Segment implements PlaneSource (and core.SegmentSource) through the
// breaker.
func (b BreakerSource) Segment(level, plane int) ([]byte, error) {
	return b.SegmentCtx(context.Background(), level, plane)
}

// SegmentCtx implements PlaneSourceCtx (and core.ContextSource) through the
// breaker, forwarding ctx to the wrapped source when it is context-aware.
func (b BreakerSource) SegmentCtx(ctx context.Context, level, plane int) ([]byte, error) {
	if err := b.Breaker.Allow(); err != nil {
		// A span only on rejection: a pass-through read is fully described
		// by the storage.read span underneath, but a breaker-open fast-fail
		// never reaches storage and would otherwise vanish from the trace.
		sp := obs.SpanFromContext(ctx).Child("breaker.reject")
		sp.SetAttr("level", level)
		sp.SetAttr("plane", plane)
		sp.SetStatus(obs.StatusError)
		sp.End()
		return nil, fmt.Errorf("resilience: read level %d plane %d: %w", level, plane, err)
	}
	var payload []byte
	var err error
	switch {
	case ctx.Err() != nil:
		err = ctx.Err()
	default:
		if cs, ok := b.Src.(PlaneSourceCtx); ok {
			payload, err = cs.SegmentCtx(ctx, level, plane)
		} else {
			payload, err = b.Src.Segment(level, plane)
		}
	}
	b.Breaker.Record(err)
	return payload, err
}
