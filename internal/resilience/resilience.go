// Package resilience provides the serving tier's overload- and
// failure-containment primitives: an admission controller that bounds
// in-flight work with a bounded wait queue (overflow is shed instead of
// degrading everyone), and a circuit breaker that stops hammering a dead
// storage tier with per-request retry budgets (closed → open → half-open
// over the storage package's fault classification).
//
// Both primitives are transport-agnostic: the admission controller admits
// any unit of work behind a context, and the breaker wraps any segment
// source (core.SegmentSource, storage.PlaneSource — structurally the same
// interface, restated here so this package imports neither). cmd/serve
// composes them around /refine; DESIGN.md §11 documents the policy.
package resilience

import (
	"context"
	"errors"
	"sync/atomic"

	"pmgard/internal/obs"
)

// Shed/fast-fail sentinels. Handlers map these to HTTP statuses: ErrShed
// and ErrOpen are retryable server conditions (503 + Retry-After), distinct
// from upstream faults (502) and deadline expiry (504).
var (
	// ErrShed marks a request rejected by admission control because the
	// in-flight limit and the wait queue were both full.
	ErrShed = errors.New("resilience: request shed, admission queue full")
	// ErrOpen marks a read refused because the source's circuit breaker is
	// open — the tier has failed enough consecutive reads that further
	// attempts are pointless until the cooldown expires.
	ErrOpen = errors.New("resilience: circuit breaker open")
)

// Admission is a two-stage admission controller: up to maxInflight units of
// work run concurrently, up to maxQueue more wait for a slot, and anything
// beyond that is shed immediately with ErrShed. Waiters are bounded by
// their context, so a queued request whose deadline expires leaves the
// queue instead of occupying it. A nil *Admission admits everything —
// callers need no branch for the "unlimited" configuration.
type Admission struct {
	sem      chan struct{}
	maxQueue int64
	// queued is the authoritative wait-queue occupancy: the bound check is
	// an atomic add-then-compare, so the queue can never exceed maxQueue
	// even under concurrent Acquire storms. queueDepth mirrors it for
	// metrics snapshots.
	queued atomic.Int64

	admitted   *obs.Counter
	shed       *obs.Counter
	inflight   *obs.Gauge
	queueDepth *obs.Gauge
}

// NewAdmission returns an admission controller bounding concurrency to
// maxInflight with a wait queue of maxQueue. maxInflight <= 0 returns nil
// (admit everything); maxQueue < 0 is treated as 0 (no queue: a full server
// sheds instantly).
func NewAdmission(maxInflight, maxQueue int) *Admission {
	if maxInflight <= 0 {
		return nil
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Admission{
		sem:        make(chan struct{}, maxInflight),
		maxQueue:   int64(maxQueue),
		admitted:   new(obs.Counter),
		shed:       new(obs.Counter),
		inflight:   new(obs.Gauge),
		queueDepth: new(obs.Gauge),
	}
}

// Instrument rebinds the admission instruments to shared, registry-named
// ones in o under <prefix>.: <prefix>.admitted and <prefix>.shed counters,
// <prefix>.inflight and <prefix>.queue_depth gauges. Call before the
// controller is shared across goroutines; a nil receiver or a nil or
// metrics-less o is a no-op.
func (a *Admission) Instrument(o *obs.Obs, prefix string) {
	if a == nil || o == nil || o.Metrics == nil {
		return
	}
	bindC := func(dst **obs.Counter, name string) {
		c := o.Counter(prefix + "." + name)
		c.Add((*dst).Value())
		*dst = c
	}
	bindC(&a.admitted, "admitted")
	bindC(&a.shed, "shed")
	bindG := func(dst **obs.Gauge, name string) {
		g := o.Gauge(prefix + "." + name)
		g.Add((*dst).Value())
		*dst = g
	}
	bindG(&a.inflight, "inflight")
	bindG(&a.queueDepth, "queue_depth")
}

// Acquire admits one unit of work, blocking in the wait queue when the
// in-flight limit is reached. On success it returns a release function that
// must be called exactly once when the work finishes. It returns ErrShed
// when the queue is full, and ctx's error when the caller's context ends
// while queued. A nil receiver admits immediately.
func (a *Admission) Acquire(ctx context.Context) (release func(), err error) {
	if a == nil {
		return func() {}, nil
	}
	select {
	case a.sem <- struct{}{}:
		a.admitted.Add(1)
		a.inflight.Add(1)
		return a.release, nil
	default:
	}
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		a.shed.Add(1)
		return nil, ErrShed
	}
	a.queueDepth.Add(1)
	defer func() {
		a.queued.Add(-1)
		a.queueDepth.Add(-1)
	}()
	select {
	case a.sem <- struct{}{}:
		a.admitted.Add(1)
		a.inflight.Add(1)
		return a.release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// release returns one in-flight slot; it is the function Acquire hands out.
func (a *Admission) release() {
	<-a.sem
	a.inflight.Add(-1)
}

// AdmissionStats is a point-in-time view over the admission instruments,
// for tests and CLI reporting.
type AdmissionStats struct {
	// Admitted is the number of Acquire calls that obtained a slot.
	Admitted int64
	// Shed is the number of Acquire calls rejected with ErrShed.
	Shed int64
	// Inflight is the number of admitted units not yet released.
	Inflight int64
	// Queued is the number of callers currently waiting for a slot.
	Queued int64
}

// Stats returns a snapshot of the admission counters. A nil receiver
// returns zeros.
func (a *Admission) Stats() AdmissionStats {
	if a == nil {
		return AdmissionStats{}
	}
	return AdmissionStats{
		Admitted: a.admitted.Value(),
		Shed:     a.shed.Value(),
		Inflight: int64(a.inflight.Value()),
		Queued:   a.queued.Load(),
	}
}
