package resilience

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"pmgard/internal/obs"
	"pmgard/internal/storage"
)

// fakeClock is a hand-stepped clock for deterministic cooldown tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func testBreaker(clk *fakeClock, thr int, cooldown time.Duration) *Breaker {
	return NewBreaker(BreakerConfig{
		FailureThreshold: thr,
		Cooldown:         cooldown,
		Now:              clk.now,
	})
}

var errTier = errors.New("tier exploded")

// record drives one allowed read outcome through the breaker, failing the
// test if Allow refuses.
func record(t *testing.T, b *Breaker, err error) {
	t.Helper()
	if aerr := b.Allow(); aerr != nil {
		t.Fatalf("Allow refused in state %v: %v", b.State(), aerr)
	}
	b.Record(err)
}

func TestBreakerOpensOnConsecutiveFailures(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk, 3, time.Second)
	record(t, b, errTier)
	record(t, b, errTier)
	// A success resets the consecutive count: an isolated lost plane among
	// healthy reads never trips the breaker.
	record(t, b, nil)
	record(t, b, errTier)
	record(t, b, errTier)
	if b.State() != StateClosed {
		t.Fatalf("state after 2 consecutive failures = %v, want closed", b.State())
	}
	record(t, b, errTier)
	if b.State() != StateOpen {
		t.Fatalf("state after 3 consecutive failures = %v, want open", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("Allow while open = %v, want ErrOpen", err)
	}
	s := b.Stats()
	if s.Opened != 1 || s.FastFails != 1 {
		t.Fatalf("stats = %+v, want 1 opened, 1 fast fail", s)
	}
}

func TestBreakerHalfOpensAfterCooldownAndCloses(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk, 2, time.Second)
	record(t, b, errTier)
	record(t, b, errTier)
	if b.State() != StateOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
	// Before the cooldown: still failing fast.
	clk.advance(999 * time.Millisecond)
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("Allow 1ms before cooldown = %v, want ErrOpen", err)
	}
	// At the cooldown: one probe is admitted, concurrent reads still fail
	// fast.
	clk.advance(time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe Allow after cooldown = %v, want nil", err)
	}
	if b.State() != StateHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("second concurrent probe = %v, want ErrOpen", err)
	}
	b.Record(nil)
	if b.State() != StateClosed {
		t.Fatalf("state after successful probe = %v, want closed", b.State())
	}
	s := b.Stats()
	if s.HalfOpens != 1 || s.Closed != 1 {
		t.Fatalf("stats = %+v, want 1 half-open, 1 closed", s)
	}
	// Closed again: failures must start from zero.
	record(t, b, errTier)
	if b.State() != StateClosed {
		t.Fatalf("one failure after close reopened the breaker")
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk, 1, time.Second)
	record(t, b, errTier)
	clk.advance(time.Second)
	record(t, b, errTier) // failed probe
	if b.State() != StateOpen {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	// The failed probe restarts the cooldown from its failure time.
	clk.advance(999 * time.Millisecond)
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("Allow before restarted cooldown = %v, want ErrOpen", err)
	}
	clk.advance(time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe after restarted cooldown = %v, want nil", err)
	}
	b.Record(nil)
	if b.State() != StateClosed {
		t.Fatalf("state = %v, want closed", b.State())
	}
}

func TestBreakerIgnoresCallerCancellation(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk, 1, time.Second)
	for i := 0; i < 10; i++ {
		record(t, b, fmt.Errorf("read: %w", context.DeadlineExceeded))
		record(t, b, fmt.Errorf("read: %w", context.Canceled))
	}
	if b.State() != StateClosed {
		t.Fatalf("client timeouts tripped the breaker: state %v", b.State())
	}
	// In half-open, a cancelled probe returns the slot without a verdict.
	record(t, b, errTier)
	clk.advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(context.Canceled)
	if b.State() != StateHalfOpen {
		t.Fatalf("cancelled probe moved state to %v, want half-open", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("probe slot not returned after cancelled probe: %v", err)
	}
	b.Record(nil)
	if b.State() != StateClosed {
		t.Fatalf("state = %v, want closed", b.State())
	}
}

func TestBreakerStateGauge(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk, 1, time.Second)
	o := obs.New()
	b.Instrument(o, "Jx")
	gauge := func() float64 {
		return o.Metrics.Snapshot().Gauges["storage.breaker_state.Jx"]
	}
	if gauge() != float64(StateClosed) {
		t.Fatalf("initial gauge = %v, want closed (0)", gauge())
	}
	record(t, b, errTier)
	if gauge() != float64(StateOpen) {
		t.Fatalf("gauge after trip = %v, want open (1)", gauge())
	}
	clk.advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	if gauge() != float64(StateHalfOpen) {
		t.Fatalf("gauge after cooldown = %v, want half-open (2)", gauge())
	}
	b.Record(nil)
	if gauge() != float64(StateClosed) {
		t.Fatalf("gauge after close = %v, want closed (0)", gauge())
	}
	snap := o.Metrics.Snapshot()
	if snap.Counters["resilience.breaker.Jx.opened"] != 1 ||
		snap.Counters["resilience.breaker.Jx.closed"] != 1 {
		t.Fatalf("transition counters missing: %v", snap.Counters)
	}
}

// flakySegments is a PlaneSource whose failure mode is toggled by tests.
type flakySegments struct{ fail bool }

func (f *flakySegments) Segment(level, plane int) ([]byte, error) {
	if f.fail {
		return nil, errTier
	}
	return []byte{byte(level), byte(plane)}, nil
}

func TestBreakerSourceGatesReads(t *testing.T) {
	clk := newFakeClock()
	br := testBreaker(clk, 2, time.Second)
	src := &flakySegments{fail: true}
	bs := BreakerSource{Src: src, Breaker: br}

	for i := 0; i < 2; i++ {
		if _, err := bs.Segment(0, i); !errors.Is(err, errTier) {
			t.Fatalf("read %d err = %v, want tier error", i, err)
		}
	}
	// Open: fails fast without touching the source.
	if _, err := bs.Segment(0, 9); !errors.Is(err, ErrOpen) {
		t.Fatalf("read while open = %v, want ErrOpen", err)
	}
	// Recovery: after the cooldown the probe read goes through and closes.
	src.fail = false
	clk.advance(time.Second)
	payload, err := bs.SegmentCtx(context.Background(), 1, 2)
	if err != nil {
		t.Fatalf("probe read: %v", err)
	}
	if len(payload) != 2 || payload[0] != 1 || payload[1] != 2 {
		t.Fatalf("probe payload = %v", payload)
	}
	if br.State() != StateClosed {
		t.Fatalf("state after probe success = %v, want closed", br.State())
	}
	// A pre-cancelled context never reaches the source and never counts
	// against the breaker.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := bs.SegmentCtx(ctx, 0, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled read = %v, want context.Canceled", err)
	}
	if br.State() != StateClosed {
		t.Fatalf("cancelled read changed breaker state to %v", br.State())
	}
}

func TestRecordIgnoresPermanentDataFaults(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 2})
	// A lost plane answered authoritatively by an up store must never open
	// the breaker, no matter how many refines trip over it.
	for i := 0; i < 10; i++ {
		b.Record(fmt.Errorf("plane lost: %w", storage.ErrPermanent))
	}
	if got := b.State(); got != StateClosed {
		t.Fatalf("state after permanent data faults = %v, want closed", got)
	}
	// Transient tier faults still count.
	b.Record(fmt.Errorf("tier down: %w", storage.ErrTransient))
	b.Record(fmt.Errorf("tier down: %w", storage.ErrTransient))
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after transient faults = %v, want open", got)
	}
}
