package pool

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"pmgard/internal/obs"
)

// Metrics instruments one named fan-out site ("decompose", "fetch", ...)
// of the pool. All instruments are nil-safe, so a Metrics built over a
// disabled registry observes nothing; a nil *Metrics short-circuits to the
// uninstrumented Run/RunChunks path entirely.
//
// Metric names under NewMetrics(o, name):
//
//	pool.<name>.submitted            counter — tasks handed to the pool
//	pool.<name>.completed            counter — tasks that ran to completion
//	pool.<name>.queue_depth          gauge   — tasks submitted but not yet started
//	pool.<name>.wait_seconds         histogram — fan-out entry → task start
//	pool.<name>.task_seconds         histogram — task execution time
//	pool.<name>.worker<i>.tasks      counter — tasks executed by worker i
//	pool.<name>.worker<i>.busy_seconds gauge — execution time accumulated by worker i
type Metrics struct {
	o    *obs.Obs
	name string

	// Submitted counts tasks handed to the pool across all RunMetrics
	// calls on this site.
	Submitted *obs.Counter
	// Completed counts tasks that ran to completion (error or not).
	Completed *obs.Counter
	// QueueDepth tracks tasks submitted but not yet started.
	QueueDepth *obs.Gauge
	// Wait is the fan-out-entry → task-start latency histogram.
	Wait *obs.Histogram
	// Task is the task execution-time histogram.
	Task *obs.Histogram
}

// NewMetrics builds (or rebinds to) the pool instruments of one fan-out
// site in o's registry. Returns nil on a nil or metrics-less o, which
// makes RunMetrics fall through to the uninstrumented path.
func NewMetrics(o *obs.Obs, name string) *Metrics {
	if o == nil || o.Metrics == nil {
		return nil
	}
	prefix := "pool." + name
	return &Metrics{
		o:          o,
		name:       name,
		Submitted:  o.Counter(prefix + ".submitted"),
		Completed:  o.Counter(prefix + ".completed"),
		QueueDepth: o.Gauge(prefix + ".queue_depth"),
		Wait:       o.Histogram(prefix+".wait_seconds", obs.LatencyBuckets()),
		Task:       o.Histogram(prefix+".task_seconds", obs.LatencyBuckets()),
	}
}

// worker returns the per-worker instruments, creating them on
// first use. Worker counts are small (≤ GOMAXPROCS), so the Sprintf per
// task is the dominant cost and only paid when metrics are enabled.
func (m *Metrics) worker(w int) (*obs.Counter, *obs.Gauge) {
	prefix := fmt.Sprintf("pool.%s.worker%d", m.name, w)
	return m.o.Counter(prefix + ".tasks"), m.o.Gauge(prefix + ".busy_seconds")
}

// RunMetrics is Run with per-task pool telemetry recorded into m: queue
// depth, wait time from fan-out entry to task start, task duration overall
// and per worker, and submitted/completed counts. A nil m is exactly Run.
// The determinism contract of Run is unchanged — instruments only observe,
// they never influence scheduling or results.
func RunMetrics(n, workers int, m *Metrics, fn func(worker, i int) error) error {
	if m == nil {
		return Run(n, workers, fn)
	}
	if n > 0 {
		m.Submitted.Add(int64(n))
		m.QueueDepth.Add(float64(n))
	}
	entry := time.Now()
	return Run(n, workers, func(worker, i int) error {
		start := time.Now()
		m.QueueDepth.Add(-1)
		m.Wait.Observe(start.Sub(entry).Seconds())
		err := fn(worker, i)
		dur := time.Since(start).Seconds()
		m.Task.Observe(dur)
		tasks, busy := m.worker(worker)
		tasks.Add(1)
		busy.Add(dur)
		m.Completed.Add(1)
		return err
	})
}

// RunMetricsCtx is RunCtx with RunMetrics' telemetry. Tasks skipped because
// ctx ended are drained from the queue-depth gauge when the fan-out
// returns, so a cancelled run never leaves the gauge stuck above zero. A
// nil m is exactly RunCtx.
func RunMetricsCtx(ctx context.Context, n, workers int, m *Metrics, fn func(worker, i int) error) error {
	if m == nil {
		return RunCtx(ctx, n, workers, fn)
	}
	if n > 0 {
		m.Submitted.Add(int64(n))
		m.QueueDepth.Add(float64(n))
	}
	var started atomic.Int64
	entry := time.Now()
	err := RunCtx(ctx, n, workers, func(worker, i int) error {
		start := time.Now()
		started.Add(1)
		m.QueueDepth.Add(-1)
		m.Wait.Observe(start.Sub(entry).Seconds())
		ferr := fn(worker, i)
		dur := time.Since(start).Seconds()
		m.Task.Observe(dur)
		tasks, busy := m.worker(worker)
		tasks.Add(1)
		busy.Add(dur)
		m.Completed.Add(1)
		return ferr
	})
	if skipped := int64(n) - started.Load(); skipped > 0 {
		m.QueueDepth.Add(-float64(skipped))
	}
	return err
}

// RunChunksMetrics is RunChunks with the same telemetry as RunMetrics;
// each contiguous chunk counts as one task. A nil m is exactly RunChunks.
func RunChunksMetrics(n, workers int, m *Metrics, fn func(worker, lo, hi int) error) error {
	if m == nil {
		return RunChunks(n, workers, fn)
	}
	if n <= 0 {
		return nil
	}
	workers = Clamp(workers)
	chunks := workers
	if chunks > n {
		chunks = n
	}
	return RunMetrics(chunks, workers, m, func(worker, c int) error {
		lo := c * n / chunks
		hi := (c + 1) * n / chunks
		return fn(worker, lo, hi)
	})
}
