package pool

import (
	"errors"
	"fmt"
	"testing"

	"pmgard/internal/obs"
)

func TestRunMetricsCompletedEqualsSubmitted(t *testing.T) {
	const tasks = 97
	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			o := obs.New()
			m := NewMetrics(o, "test")
			hits := make([]int, tasks)
			if err := RunMetrics(tasks, workers, m, func(_, i int) error {
				hits[i]++
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("index %d ran %d times", i, h)
				}
			}
			snap := o.Metrics.Snapshot()
			if got := snap.Counters["pool.test.submitted"]; got != tasks {
				t.Fatalf("submitted = %d, want %d", got, tasks)
			}
			if got := snap.Counters["pool.test.completed"]; got != tasks {
				t.Fatalf("completed = %d, want submitted = %d", got, tasks)
			}
			if got := snap.Gauges["pool.test.queue_depth"]; got != 0 {
				t.Fatalf("queue depth = %g after drain, want 0", got)
			}
			for _, h := range []string{"pool.test.wait_seconds", "pool.test.task_seconds"} {
				hs, ok := snap.Histograms[h]
				if !ok || hs.Count != tasks {
					t.Fatalf("%s count = %+v, want %d observations", h, hs, tasks)
				}
			}
			// Per-worker task counters account for every task exactly once.
			var perWorker int64
			for w := 0; w < workers; w++ {
				perWorker += snap.Counters[fmt.Sprintf("pool.test.worker%d.tasks", w)]
			}
			if perWorker != tasks {
				t.Fatalf("per-worker tasks sum to %d, want %d", perWorker, tasks)
			}
		})
	}
}

func TestRunMetricsNilFallsThrough(t *testing.T) {
	hits := make([]int, 10)
	if err := RunMetrics(len(hits), 4, nil, func(_, i int) error {
		hits[i]++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d ran %d times", i, h)
		}
	}
	if m := NewMetrics(nil, "x"); m != nil {
		t.Fatal("NewMetrics(nil) should return nil")
	}
	if m := NewMetrics(&obs.Obs{}, "x"); m != nil {
		t.Fatal("NewMetrics over a metrics-less Obs should return nil")
	}
}

func TestRunMetricsPreservesLowestIndexError(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for _, workers := range []int{1, 2, 8} {
		o := obs.New()
		m := NewMetrics(o, "err")
		err := RunMetrics(50, workers, m, func(_, i int) error {
			switch i {
			case 7:
				return errLow
			case 31:
				return errHigh
			default:
				return nil
			}
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("workers=%d: err = %v, want lowest-index error", workers, err)
		}
		// Every task still completes under the determinism contract.
		if got := o.Metrics.Snapshot().Counters["pool.err.completed"]; got != 50 {
			t.Fatalf("workers=%d: completed = %d, want 50", workers, got)
		}
	}
}

func TestRunChunksMetricsCoversRange(t *testing.T) {
	const n = 103
	for _, workers := range []int{1, 2, 8} {
		o := obs.New()
		m := NewMetrics(o, "chunks")
		covered := make([]int, n)
		if err := RunChunksMetrics(n, workers, m, func(_, lo, hi int) error {
			for i := lo; i < hi; i++ {
				covered[i]++
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("workers=%d: index %d covered %d times", workers, i, c)
			}
		}
		snap := o.Metrics.Snapshot()
		sub, comp := snap.Counters["pool.chunks.submitted"], snap.Counters["pool.chunks.completed"]
		if sub == 0 || sub != comp {
			t.Fatalf("workers=%d: submitted=%d completed=%d", workers, sub, comp)
		}
	}
}
