package pool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"pmgard/internal/obs"
)

func TestClamp(t *testing.T) {
	if got := Clamp(4); got != 4 {
		t.Fatalf("Clamp(4) = %d", got)
	}
	if got := Clamp(1); got != 1 {
		t.Fatalf("Clamp(1) = %d", got)
	}
	for _, w := range []int{0, -1, -100} {
		if got := Clamp(w); got != runtime.GOMAXPROCS(0) {
			t.Fatalf("Clamp(%d) = %d, want GOMAXPROCS %d", w, got, runtime.GOMAXPROCS(0))
		}
	}
}

func TestRunVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 0} {
		for _, n := range []int{0, 1, 2, 7, 100, 1000} {
			visits := make([]int32, n)
			if err := Run(n, workers, func(_, i int) error {
				atomic.AddInt32(&visits[i], 1)
				return nil
			}); err != nil {
				t.Fatalf("workers=%d n=%d: %v", workers, n, err)
			}
			for i, v := range visits {
				if v != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, v)
				}
			}
		}
	}
}

func TestRunWorkerIDsBounded(t *testing.T) {
	const n, workers = 64, 4
	var bad int32
	if err := Run(n, workers, func(worker, _ int) error {
		if worker < 0 || worker >= workers {
			atomic.AddInt32(&bad, 1)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if bad != 0 {
		t.Fatalf("%d calls saw an out-of-range worker id", bad)
	}
}

func TestRunReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		var ran int32
		err := Run(100, workers, func(_, i int) error {
			atomic.AddInt32(&ran, 1)
			if i == 13 || i == 77 {
				return fmt.Errorf("index %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "index 13 failed" {
			t.Fatalf("workers=%d: err = %v, want lowest-index error", workers, err)
		}
		// Every index runs even after a failure, matching sequential slots.
		if ran != 100 {
			t.Fatalf("workers=%d: ran %d of 100 indices", workers, ran)
		}
	}
}

func TestRunChunksCoverExactly(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16} {
		for _, n := range []int{0, 1, 5, 16, 1001} {
			visits := make([]int32, n)
			if err := RunChunks(n, workers, func(_, lo, hi int) error {
				if lo > hi || lo < 0 || hi > n {
					return fmt.Errorf("bad chunk [%d,%d)", lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&visits[i], 1)
				}
				return nil
			}); err != nil {
				t.Fatalf("workers=%d n=%d: %v", workers, n, err)
			}
			for i, v := range visits {
				if v != 1 {
					t.Fatalf("workers=%d n=%d: index %d covered %d times", workers, n, i, v)
				}
			}
		}
	}
}

func TestRunChunksPropagatesError(t *testing.T) {
	want := errors.New("chunk failed")
	err := RunChunks(100, 4, func(_, lo, _ int) error {
		if lo > 0 {
			return want
		}
		return nil
	})
	if !errors.Is(err, want) {
		t.Fatalf("err = %v, want %v", err, want)
	}
}

// TestRunDeterministicSlots is the contract test for the determinism
// invariant: workers writing to pre-sized slots produce identical output
// for every worker count.
func TestRunDeterministicSlots(t *testing.T) {
	const n = 4096
	ref := make([]float64, n)
	for i := range ref {
		ref[i] = float64(i*i%977) / 3.0
	}
	var want []float64
	for _, workers := range []int{1, 2, 4, 8} {
		got := make([]float64, n)
		if err := Run(n, workers, func(_, i int) error {
			got[i] = ref[i] * ref[i]
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d differs", workers, i)
			}
		}
	}
}

func TestRunCtxBackgroundMatchesRun(t *testing.T) {
	for _, workers := range []int{1, 4} {
		n := 64
		got := make([]int, n)
		if err := RunCtx(context.Background(), n, workers, func(_, i int) error {
			got[i] = i + 1
			return nil
		}); err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		for i, v := range got {
			if v != i+1 {
				t.Fatalf("workers %d: index %d not executed", workers, i)
			}
		}
	}
}

func TestRunCtxLowestErrorWinsOverCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errBoom := errors.New("boom")
	err := RunCtx(ctx, 8, 4, func(_, i int) error {
		if i == 2 {
			cancel()
			return errBoom
		}
		return nil
	})
	if !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want the index error, not the cancellation", err)
	}
}

func TestRunCtxStopsDispatchOnCancel(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		const n = 1 << 20
		err := RunCtx(ctx, n, workers, func(_, i int) error {
			if ran.Add(1) == 8 {
				cancel()
			}
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers %d: err = %v, want context.Canceled", workers, err)
		}
		if got := ran.Load(); got >= n {
			t.Fatalf("workers %d: cancellation did not stop dispatch (%d ran)", workers, got)
		}
		cancel()
	}
}

func TestRunCtxCompletedRunIgnoresLateCancel(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		const n = 16
		err := RunCtx(ctx, n, workers, func(_, i int) error {
			if ran.Add(1) == n {
				cancel() // lands after the last index has run
			}
			return nil
		})
		if err != nil && ran.Load() == n {
			t.Fatalf("workers %d: all %d indices ran but err = %v", workers, n, err)
		}
		cancel()
	}
}

func TestRunMetricsCtxDrainsQueueDepthOnCancel(t *testing.T) {
	o := obs.New()
	m := NewMetrics(o, "ctxtest")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := RunMetricsCtx(ctx, 100, 4, m, func(_, i int) error { return nil }); err == nil {
		t.Fatal("pre-cancelled RunMetricsCtx returned nil")
	}
	if depth := o.Metrics.Snapshot().Gauges["pool.ctxtest.queue_depth"]; depth != 0 {
		t.Fatalf("queue depth after cancelled fan-out = %v, want 0", depth)
	}
}
