// Package pool is the deterministic worker-pool substrate behind every
// parallel stage of the pipeline (decomposition passes, bit-plane encoding,
// lossless coding, segment retrieval, minibatch gradient accumulation).
//
// The pool enforces the repository's determinism invariant: fan-out never
// changes results. Workers are handed pre-assigned index ranges and must
// write into pre-sized slots owned exclusively by their index — never
// append to a shared slice — so the bytes produced are identical for every
// worker count, including 1. Scheduling freedom only moves *when* a slot is
// filled, not *what* is written into it.
//
// Error handling is deterministic too: every index runs to completion
// regardless of other indices' failures (matching what a sequential loop
// over independent slots would compute), and the error reported is always
// the one with the lowest index, independent of scheduling order.
package pool

import (
	"context"
	"runtime"
	"sync"
)

// Clamp resolves a worker-count option to an effective pool size: values
// below 1 mean "use the hardware", i.e. runtime.GOMAXPROCS(0).
func Clamp(workers int) int {
	if workers < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// Run invokes fn(worker, i) exactly once for every i in [0, n), fanning out
// across at most `workers` goroutines (clamped to GOMAXPROCS when < 1, and
// to n). worker identifies the executing goroutine in [0, effective
// workers) so callers can maintain per-worker scratch state; with workers
// == 1 every call runs on the caller's goroutine with worker == 0.
//
// All indices run even if some fail, and the returned error is the one
// raised by the lowest index — both independent of worker count, so an
// erroring fan-out is as reproducible as a successful one.
func Run(n, workers int, fn func(worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Clamp(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		var firstErr error
		for i := 0; i < n; i++ {
			if err := fn(0, i); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	var (
		mu     sync.Mutex
		errIdx = -1
		lowErr error
		next   int
		wg     sync.WaitGroup
	)
	record := func(i int, err error) {
		mu.Lock()
		if errIdx == -1 || i < errIdx {
			errIdx, lowErr = i, err
		}
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				if err := fn(worker, i); err != nil {
					record(i, err)
				}
			}
		}(w)
	}
	wg.Wait()
	return lowErr
}

// RunCtx is Run with cooperative cancellation: once ctx ends, no new index
// is dispatched — indices already running complete, so slots are never left
// half-written. Cancellation relaxes Run's every-index guarantee by design
// (stopping early is the point); determinism of what *did* run is
// preserved, and a fn error from the lowest index still takes precedence
// over ctx's error in the return value. A ctx that cannot be cancelled
// (ctx.Done() == nil, e.g. context.Background()) is exactly Run.
func RunCtx(ctx context.Context, n, workers int, fn func(worker, i int) error) error {
	if ctx.Done() == nil {
		return Run(n, workers, fn)
	}
	if n <= 0 {
		return nil
	}
	workers = Clamp(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		var firstErr error
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				break
			}
			if err := fn(0, i); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	var (
		mu        sync.Mutex
		errIdx    = -1
		lowErr    error
		next      int
		completed int
		wg        sync.WaitGroup
	)
	record := func(i int, err error) {
		mu.Lock()
		if errIdx == -1 || i < errIdx {
			errIdx, lowErr = i, err
		}
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				if err := fn(worker, i); err != nil {
					record(i, err)
				}
				mu.Lock()
				completed++
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if lowErr != nil {
		return lowErr
	}
	if completed < n {
		// Only cancellation stops dispatch early, so an incomplete fan-out
		// without a fn error reports ctx's error; a cancellation that lands
		// after every index already ran is not an error.
		return ctx.Err()
	}
	return nil
}

// RunChunks splits [0, n) into at most `workers` contiguous chunks and
// invokes fn(worker, lo, hi) for each. It is the bulk-work variant of Run
// for loops whose per-index cost is too small to schedule individually;
// the same determinism contract applies because chunk boundaries only
// change which goroutine computes a slot, never its value.
func RunChunks(n, workers int, fn func(worker, lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Clamp(workers)
	chunks := workers
	if chunks > n {
		chunks = n
	}
	return Run(chunks, workers, func(worker, c int) error {
		lo := c * n / chunks
		hi := (c + 1) * n / chunks
		return fn(worker, lo, hi)
	})
}
