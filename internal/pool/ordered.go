package pool

import (
	"sync"
	"time"
)

// Ordered is the bounded-channel pipeline primitive behind the streaming
// compression path: a single driver goroutine submits payload-producing jobs
// in index order, up to `workers` goroutines run them concurrently, and one
// consumer callback receives the produced payloads in exactly submission
// order — an ordered fan-in merge. At most `window` jobs are in flight
// (submitted but not yet consumed) at any moment, so the pipeline holds a
// bounded number of payloads regardless of how many jobs flow through it.
//
// The determinism contract extends pool.Run's slot-writer guarantee to
// streaming sinks: consume(i, payload) is invoked in strictly increasing i
// with payloads that depend only on the job closures, never on scheduling,
// so a sink that appends bytes in consume order produces identical output
// at every worker count — including 1, where Submit runs the job and the
// consumer inline on the driver goroutine with no goroutines at all.
//
// Error handling is deterministic too: the error reported by Wait is the
// one raised at the lowest submitted index (produce or consume), matching
// what the sequential path would hit first. After an error no further
// payloads are consumed and subsequently submitted jobs are dropped without
// running, but jobs already dispatched drain cleanly.
type Ordered struct {
	workers int
	window  int
	consume func(i int, payload []byte) error
	m       *Metrics

	// Sequential (workers == 1) state: everything runs inline on Submit.
	seq     bool
	seqNext int
	seqErr  error

	// Concurrent state.
	jobs    chan orderedJob
	results chan orderedResult
	slots   chan struct{}
	wg      sync.WaitGroup // producer workers
	done    chan struct{}  // consumer exit
	next    int            // next index to assign (driver goroutine only)

	mu  sync.Mutex
	err error // error at the lowest index seen so far
	at  int   // index err was raised at
}

type orderedJob struct {
	i  int
	fn func(worker int) ([]byte, error)
}

type orderedResult struct {
	i       int
	payload []byte
	err     error
}

// NewOrdered builds an ordered pipeline delivering payloads to consume.
// workers follows the Clamp convention (≤ 0 means GOMAXPROCS); window is
// clamped to at least workers so the fan-out can keep every worker busy.
// m, when non-nil, records the pool's standard per-task telemetry
// (submitted/completed counts, queue depth, wait and task histograms) for
// the pipeline's produce stage.
//
// The consume callback runs on a single goroutine (the driver itself when
// workers == 1) and must not call Submit or Wait.
func NewOrdered(workers, window int, m *Metrics, consume func(i int, payload []byte) error) *Ordered {
	workers = Clamp(workers)
	if window < workers {
		window = workers
	}
	p := &Ordered{workers: workers, window: window, consume: consume, m: m}
	if workers == 1 {
		p.seq = true
		return p
	}
	p.jobs = make(chan orderedJob, window)
	p.results = make(chan orderedResult, window)
	p.slots = make(chan struct{}, window)
	p.done = make(chan struct{})
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go p.worker(w)
	}
	go p.consumer()
	return p
}

// record notes an error at index i, keeping the lowest-index one.
func (p *Ordered) record(i int, err error) {
	p.mu.Lock()
	if p.err == nil || i < p.at {
		p.err, p.at = err, i
	}
	p.mu.Unlock()
}

// failed reports whether any error has been recorded.
func (p *Ordered) failed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err != nil
}

// Submit schedules the next job in index order. It blocks while the window
// is full — this back-pressure is what bounds the driver's read-ahead and
// hence the pipeline's memory. After an error has been recorded the job is
// dropped without running; Wait reports the error.
func (p *Ordered) Submit(produce func(worker int) ([]byte, error)) {
	if p.seq {
		i := p.seqNext
		p.seqNext++
		if p.seqErr != nil {
			return
		}
		start := time.Now()
		if p.m != nil {
			p.m.Submitted.Add(1)
		}
		payload, err := produce(0)
		if p.m != nil {
			p.m.Task.Observe(time.Since(start).Seconds())
			p.m.Completed.Add(1)
		}
		if err == nil {
			err = p.consume(i, payload)
		}
		if err != nil {
			p.seqErr = err
		}
		return
	}
	i := p.next
	p.next++
	if p.failed() {
		return
	}
	p.slots <- struct{}{}
	if p.m != nil {
		p.m.Submitted.Add(1)
		p.m.QueueDepth.Add(1)
	}
	p.jobs <- orderedJob{i: i, fn: produce}
}

// worker drains the job queue, forwarding every job's outcome to the
// consumer so slot accounting stays exact even on failure.
func (p *Ordered) worker(w int) {
	defer p.wg.Done()
	for j := range p.jobs {
		start := time.Now()
		if p.m != nil {
			p.m.QueueDepth.Add(-1)
		}
		var payload []byte
		var err error
		if p.failed() {
			// A recorded error stops downstream consumption anyway; skip the
			// work but still emit a result to release the window slot.
			payload, err = nil, nil
		} else {
			payload, err = j.fn(w)
		}
		if p.m != nil {
			dur := time.Since(start).Seconds()
			p.m.Task.Observe(dur)
			tasks, busy := p.m.worker(w)
			tasks.Add(1)
			busy.Add(dur)
			p.m.Completed.Add(1)
		}
		p.results <- orderedResult{i: j.i, payload: payload, err: err}
	}
}

// consumer merges results back into submission order and applies consume.
func (p *Ordered) consumer() {
	defer close(p.done)
	pending := make(map[int]orderedResult, p.window)
	nextOut := 0
	for r := range p.results {
		pending[r.i] = r
		for {
			cur, ok := pending[nextOut]
			if !ok {
				break
			}
			delete(pending, nextOut)
			switch {
			case cur.err != nil:
				p.record(cur.i, cur.err)
			case !p.failed():
				if err := p.consume(cur.i, cur.payload); err != nil {
					p.record(cur.i, err)
				}
			}
			nextOut++
			<-p.slots
		}
	}
}

// Wait drains the pipeline: it blocks until every submitted job has been
// produced and consumed (or dropped after an error), releases the worker
// goroutines, and returns the lowest-index error, if any. The pipeline
// must not be used after Wait.
func (p *Ordered) Wait() error {
	if p.seq {
		return p.seqErr
	}
	close(p.jobs)
	p.wg.Wait()
	close(p.results)
	<-p.done
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}
