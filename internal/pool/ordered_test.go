package pool

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pmgard/internal/obs"
)

// runOrdered pushes n jobs through a pipeline at the given worker count and
// returns the concatenated consume-order output.
func runOrdered(t *testing.T, n, workers, window int, payload func(i int) []byte) []byte {
	t.Helper()
	var out bytes.Buffer
	wantNext := 0
	p := NewOrdered(workers, window, nil, func(i int, b []byte) error {
		if i != wantNext {
			t.Errorf("consume order: got index %d, want %d", i, wantNext)
		}
		wantNext++
		out.Write(b)
		return nil
	})
	for i := 0; i < n; i++ {
		i := i
		p.Submit(func(worker int) ([]byte, error) {
			// Jitter completion order so the merge actually reorders.
			time.Sleep(time.Duration(rand.Intn(200)) * time.Microsecond)
			return payload(i), nil
		})
	}
	if err := p.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if wantNext != n {
		t.Fatalf("consumed %d payloads, want %d", wantNext, n)
	}
	return out.Bytes()
}

// TestOrderedByteIdentical is the pipeline's core contract: the consumed
// byte stream is identical at every worker count.
func TestOrderedByteIdentical(t *testing.T) {
	payload := func(i int) []byte {
		return []byte(fmt.Sprintf("seg-%04d|", i*i+3))
	}
	const n = 64
	want := runOrdered(t, n, 1, 4, payload)
	for _, workers := range []int{2, 4, 8} {
		for _, window := range []int{1, 2, 8} {
			got := runOrdered(t, n, workers, window, payload)
			if !bytes.Equal(got, want) {
				t.Errorf("workers=%d window=%d: output differs from sequential", workers, window)
			}
		}
	}
}

// TestOrderedWindowBound asserts back-pressure: the number of payloads
// produced but not yet consumed never exceeds the window.
func TestOrderedWindowBound(t *testing.T) {
	const n, workers, window = 48, 4, 6
	var produced, consumed atomic.Int64
	var maxInFlight atomic.Int64
	p := NewOrdered(workers, window, nil, func(i int, b []byte) error {
		// Slow consumer: forces producers to fill the window and block.
		time.Sleep(500 * time.Microsecond)
		consumed.Add(1)
		return nil
	})
	for i := 0; i < n; i++ {
		p.Submit(func(worker int) ([]byte, error) {
			in := produced.Add(1) - consumed.Load()
			for {
				cur := maxInFlight.Load()
				if in <= cur || maxInFlight.CompareAndSwap(cur, in) {
					break
				}
			}
			return nil, nil
		})
	}
	if err := p.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	// Allow one extra slot of slack for the produced/consumed read skew.
	if got := maxInFlight.Load(); got > window+1 {
		t.Errorf("max in-flight payloads = %d, want <= window %d", got, window)
	}
}

// TestOrderedLowestIndexError pins the deterministic error contract: the
// error surfaced by Wait is the lowest-index failure, not the first one
// scheduled, at any worker count.
func TestOrderedLowestIndexError(t *testing.T) {
	errAt := func(i int) error { return fmt.Errorf("produce %d failed", i) }
	for _, workers := range []int{1, 2, 4, 8} {
		p := NewOrdered(workers, 8, nil, func(i int, b []byte) error { return nil })
		for i := 0; i < 32; i++ {
			i := i
			p.Submit(func(worker int) ([]byte, error) {
				if i == 7 || i == 3 || i == 21 {
					return nil, errAt(i)
				}
				return nil, nil
			})
		}
		err := p.Wait()
		if err == nil || err.Error() != errAt(3).Error() {
			t.Errorf("workers=%d: Wait = %v, want %v", workers, err, errAt(3))
		}
	}
}

// TestOrderedConsumeError checks that a consume-side failure surfaces and
// stops further consumption.
func TestOrderedConsumeError(t *testing.T) {
	sentinel := errors.New("sink full")
	for _, workers := range []int{1, 4} {
		var after atomic.Int64
		p := NewOrdered(workers, 4, nil, func(i int, b []byte) error {
			if i == 5 {
				return sentinel
			}
			if i > 5 {
				after.Add(1)
			}
			return nil
		})
		for i := 0; i < 24; i++ {
			p.Submit(func(worker int) ([]byte, error) { return nil, nil })
		}
		if err := p.Wait(); !errors.Is(err, sentinel) {
			t.Errorf("workers=%d: Wait = %v, want %v", workers, err, sentinel)
		}
		if n := after.Load(); n != 0 {
			t.Errorf("workers=%d: %d payloads consumed after the failing index", workers, n)
		}
	}
}

// TestOrderedErrorStopsProduce checks that jobs submitted after an error
// has been recorded are dropped without running.
func TestOrderedErrorStopsProduce(t *testing.T) {
	sentinel := errors.New("boom")
	p := NewOrdered(2, 2, nil, func(i int, b []byte) error { return nil })
	var ran atomic.Int64
	p.Submit(func(worker int) ([]byte, error) { return nil, sentinel })
	if err := p.Wait(); !errors.Is(err, sentinel) {
		t.Fatalf("Wait = %v, want %v", err, sentinel)
	}
	// A fresh pipeline observes the same short-circuit per Submit once an
	// error is recorded mid-stream.
	p = NewOrdered(2, 2, nil, func(i int, b []byte) error { return nil })
	var wg sync.WaitGroup
	wg.Add(1)
	p.Submit(func(worker int) ([]byte, error) {
		defer wg.Done()
		return nil, sentinel
	})
	wg.Wait() // error produced; consumer records it shortly after
	for i := 0; i < 100; i++ {
		p.Submit(func(worker int) ([]byte, error) {
			ran.Add(1)
			return nil, nil
		})
	}
	if err := p.Wait(); !errors.Is(err, sentinel) {
		t.Fatalf("Wait = %v, want %v", err, sentinel)
	}
	if n := ran.Load(); n == 100 {
		t.Errorf("all %d post-error jobs ran; expected the pipeline to short-circuit", n)
	}
}

// TestOrderedEmpty checks Wait on a pipeline with no submissions.
func TestOrderedEmpty(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := NewOrdered(workers, 2, nil, func(i int, b []byte) error {
			t.Fatal("consume called with no submissions")
			return nil
		})
		if err := p.Wait(); err != nil {
			t.Errorf("workers=%d: Wait = %v, want nil", workers, err)
		}
	}
}

// TestOrderedMetrics checks the telemetry wiring: submitted/completed
// counters advance and queue depth returns to zero.
func TestOrderedMetrics(t *testing.T) {
	for _, workers := range []int{1, 4} {
		o := obs.New()
		m := NewMetrics(o, "ordered.test")
		p := NewOrdered(workers, 4, m, func(i int, b []byte) error { return nil })
		const n = 16
		for i := 0; i < n; i++ {
			p.Submit(func(worker int) ([]byte, error) { return nil, nil })
		}
		if err := p.Wait(); err != nil {
			t.Fatalf("Wait: %v", err)
		}
		snap := o.Metrics.Snapshot()
		if got := snap.Counters["pool.ordered.test.submitted"]; got != n {
			t.Errorf("workers=%d: submitted = %d, want %d", workers, got, n)
		}
		if got := snap.Counters["pool.ordered.test.completed"]; got != n {
			t.Errorf("workers=%d: completed = %d, want %d", workers, got, n)
		}
		if got := snap.Gauges["pool.ordered.test.queue_depth"]; got != 0 {
			t.Errorf("workers=%d: queue_depth = %v, want 0", workers, got)
		}
	}
}

// TestClampTracksGOMAXPROCS pins the satellite behavior: the default worker
// count follows runtime.GOMAXPROCS(0), and explicit counts pass through.
func TestClampTracksGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	runtime.GOMAXPROCS(1)
	if got := Clamp(0); got != 1 {
		t.Errorf("GOMAXPROCS=1: Clamp(0) = %d, want 1", got)
	}
	if got := Clamp(-3); got != 1 {
		t.Errorf("GOMAXPROCS=1: Clamp(-3) = %d, want 1", got)
	}

	runtime.GOMAXPROCS(4)
	if got := Clamp(0); got != 4 {
		t.Errorf("GOMAXPROCS=4: Clamp(0) = %d, want 4", got)
	}
	if got := Clamp(-1); got != 4 {
		t.Errorf("GOMAXPROCS=4: Clamp(-1) = %d, want 4", got)
	}
	// Explicit worker counts are never overridden by the hardware default.
	if got := Clamp(2); got != 2 {
		t.Errorf("GOMAXPROCS=4: Clamp(2) = %d, want 2", got)
	}
	if got := Clamp(9); got != 9 {
		t.Errorf("GOMAXPROCS=4: Clamp(9) = %d, want 9", got)
	}
}
