package fieldio

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sync"

	"pmgard/internal/bufpool"
	"pmgard/internal/grid"
	"pmgard/internal/storage"
)

// Reader reads rectangular windows (tiles) of a field file through an
// io.ReaderAt, never materializing the whole payload: the out-of-core
// compression path reads one slab at a time from fields far larger than
// RAM. Reads of a window issue one ranged read per contiguous row run, so
// slab-shaped windows (full extent in every trailing dimension) cost a
// single ranged read.
//
// Reader is safe for concurrent ReadTile calls when the underlying
// io.ReaderAt is (os.File is).
type Reader struct {
	r       io.ReaderAt
	meta    Meta
	dataOff int64
	strides []int
	closer  io.Closer
}

// maxHeaderBytes bounds the JSON header line of a field file.
const maxHeaderBytes = 1 << 20

// OpenReader opens a field file for windowed reads.
func OpenReader(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("fieldio: open %s: %w", path, err)
	}
	r, err := NewWindowReader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	r.closer = f
	return r, nil
}

// NewWindowReader builds a windowed reader over any io.ReaderAt holding a
// field file — a mmap region, a fault-injection wrapper, a remote blob
// adapter. The header is parsed eagerly; Close is a no-op for readers
// built this way (the caller owns r's lifetime).
func NewWindowReader(r io.ReaderAt) (*Reader, error) {
	header, dataOff, err := readHeaderAt(r)
	if err != nil {
		return nil, err
	}
	var meta Meta
	if err := json.Unmarshal(header, &meta); err != nil {
		return nil, fmt.Errorf("fieldio: parse header: %w", err)
	}
	if len(meta.Dims) == 0 {
		return nil, fmt.Errorf("fieldio: header has no dims")
	}
	n := 1
	for _, d := range meta.Dims {
		if d <= 0 {
			return nil, fmt.Errorf("fieldio: invalid dimension %d", d)
		}
		if n > (1<<28)/d {
			return nil, fmt.Errorf("fieldio: implausible element count for dims %v", meta.Dims)
		}
		n *= d
	}
	strides := make([]int, len(meta.Dims))
	s := 1
	for d := len(meta.Dims) - 1; d >= 0; d-- {
		strides[d] = s
		s *= meta.Dims[d]
	}
	return &Reader{r: r, meta: meta, dataOff: dataOff, strides: strides}, nil
}

// readHeaderAt reads the one-line JSON header through ranged reads and
// returns it with the payload's byte offset.
func readHeaderAt(r io.ReaderAt) ([]byte, int64, error) {
	var header []byte
	buf := make([]byte, 512)
	for off := int64(0); off < maxHeaderBytes; {
		n, err := r.ReadAt(buf, off)
		if i := bytes.IndexByte(buf[:n], '\n'); i >= 0 {
			header = append(header, buf[:i+1]...)
			return header, off + int64(i) + 1, nil
		}
		header = append(header, buf[:n]...)
		off += int64(n)
		if err == io.EOF {
			return nil, 0, fmt.Errorf("fieldio: read header: unterminated header line: %w", storage.ErrCorrupt)
		}
		if err != nil {
			return nil, 0, fmt.Errorf("fieldio: read header: %w", err)
		}
	}
	return nil, 0, fmt.Errorf("fieldio: header exceeds %d bytes", maxHeaderBytes)
}

// Meta returns the parsed file header.
func (r *Reader) Meta() Meta { return r.meta }

// Close releases the file when the reader was built by OpenReader; a no-op
// for NewWindowReader readers.
func (r *Reader) Close() error {
	if r.closer == nil {
		return nil
	}
	return r.closer.Close()
}

// checkWindow validates a tile window against the field dims and returns
// the element count.
func checkWindow(dims, lo, shape []int) (int, error) {
	if len(lo) != len(dims) || len(shape) != len(dims) {
		return 0, fmt.Errorf("fieldio: window rank %d/%d does not match field rank %d", len(lo), len(shape), len(dims))
	}
	n := 1
	for d := range dims {
		if lo[d] < 0 || shape[d] < 1 || lo[d]+shape[d] > dims[d] {
			return 0, fmt.Errorf("fieldio: window [%d,%d) out of range on dim %d (extent %d)",
				lo[d], lo[d]+shape[d], d, dims[d])
		}
		n *= shape[d]
	}
	return n, nil
}

// contiguousRun returns the length in elements of the longest contiguous
// row-major run of the window and the index of the slowest dimension that
// varies across runs (-1 when the whole window is one run).
func contiguousRun(dims, lo, shape []int) (run, outer int) {
	run = 1
	d := len(dims) - 1
	for d >= 0 && lo[d] == 0 && shape[d] == dims[d] {
		run *= dims[d]
		d--
	}
	if d < 0 {
		return run, -1
	}
	return run * shape[d], d - 1
}

// ReadTile reads the window [lo, lo+shape) into dst, which must hold
// exactly the window's element count, in the window's own row-major order.
// A read that comes up short — the file is truncated mid-window — fails
// with an error wrapping storage.ErrCorrupt, the permanent fault class:
// re-reading a truncated file cannot recover the bytes. Transient errors
// from the underlying reader pass through unchanged, so retry/quarantine
// classifiers see them as usual.
func (r *Reader) ReadTile(lo, shape []int, dst []float64) error {
	dims := r.meta.Dims
	n, err := checkWindow(dims, lo, shape)
	if err != nil {
		return err
	}
	if len(dst) != n {
		return fmt.Errorf("fieldio: dst holds %d values, window has %d", len(dst), n)
	}
	run, outer := contiguousRun(dims, lo, shape)
	buf := bufpool.Bytes(8 * run)
	defer bufpool.PutBytes(buf)

	// idx iterates the window coordinates of dims [0, outer]; inner dims are
	// covered by each contiguous run.
	idx := make([]int, outer+1)
	for out := 0; out < n; out += run {
		off := int64(0)
		for d := 0; d <= outer; d++ {
			off += int64((lo[d] + idx[d]) * r.strides[d])
		}
		if outer+1 < len(dims) {
			d := outer + 1
			off += int64(lo[d] * r.strides[d])
		}
		if err := r.readRun(off, buf); err != nil {
			return err
		}
		for i := 0; i < run; i++ {
			dst[out+i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
		}
		for d := outer; d >= 0; d-- {
			idx[d]++
			if idx[d] < shape[d] {
				break
			}
			idx[d] = 0
		}
	}
	return nil
}

// readRun performs one ranged read of len(buf) payload bytes at element
// offset elemOff, classifying short reads as corruption.
func (r *Reader) readRun(elemOff int64, buf []byte) error {
	byteOff := r.dataOff + 8*elemOff
	n, err := r.r.ReadAt(buf, byteOff)
	if n == len(buf) {
		return nil
	}
	if err == nil || err == io.EOF || err == io.ErrUnexpectedEOF {
		return fmt.Errorf("fieldio: short read at offset %d (%d of %d bytes, truncated field file): %w",
			byteOff, n, len(buf), storage.ErrCorrupt)
	}
	return fmt.Errorf("fieldio: read %d bytes at offset %d: %w", len(buf), byteOff, err)
}

// ReadTileTensor is ReadTile into a fresh tensor of the window's shape.
func (r *Reader) ReadTileTensor(lo, shape []int) (*grid.Tensor, error) {
	n, err := checkWindow(r.meta.Dims, lo, shape)
	if err != nil {
		return nil, err
	}
	data := make([]float64, n)
	if err := r.ReadTile(lo, shape, data); err != nil {
		return nil, err
	}
	return grid.FromSlice(data, shape...), nil
}

// TileWriter writes a field file tile by tile: CreateSized lays out the
// header and reserves the full payload extent, WriteTile fills windows in
// any order, Close finalizes. The streaming retrieve path uses it to emit
// reconstructions larger than RAM.
type TileWriter struct {
	f       *os.File
	meta    Meta
	dataOff int64
	strides []int
	closed  bool
}

// CreateSized starts a tile-writable field file at path with the given
// metadata; meta.Dims must be set.
func CreateSized(path string, meta Meta) (*TileWriter, error) {
	if len(meta.Dims) == 0 {
		return nil, fmt.Errorf("fieldio: CreateSized needs dims")
	}
	n := 1
	for _, d := range meta.Dims {
		if d <= 0 {
			return nil, fmt.Errorf("fieldio: invalid dimension %d", d)
		}
		n *= d
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("fieldio: create %s: %w", path, err)
	}
	header, err := json.Marshal(meta)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("fieldio: marshal header: %w", err)
	}
	header = append(header, '\n')
	if _, err := f.Write(header); err != nil {
		f.Close()
		return nil, fmt.Errorf("fieldio: write header: %w", err)
	}
	dataOff := int64(len(header))
	if err := f.Truncate(dataOff + 8*int64(n)); err != nil {
		f.Close()
		return nil, fmt.Errorf("fieldio: reserve payload: %w", err)
	}
	strides := make([]int, len(meta.Dims))
	s := 1
	for d := len(meta.Dims) - 1; d >= 0; d-- {
		strides[d] = s
		s *= meta.Dims[d]
	}
	return &TileWriter{f: f, meta: meta, dataOff: dataOff, strides: strides}, nil
}

// WriteTile stores src — the window's values in its own row-major order —
// at the window [lo, lo+shape).
func (w *TileWriter) WriteTile(lo, shape []int, src []float64) error {
	if w.closed {
		return fmt.Errorf("fieldio: write to closed tile writer")
	}
	dims := w.meta.Dims
	n, err := checkWindow(dims, lo, shape)
	if err != nil {
		return err
	}
	if len(src) != n {
		return fmt.Errorf("fieldio: src holds %d values, window has %d", len(src), n)
	}
	run, outer := contiguousRun(dims, lo, shape)
	buf := bufpool.Bytes(8 * run)
	defer bufpool.PutBytes(buf)
	idx := make([]int, outer+1)
	for out := 0; out < n; out += run {
		off := int64(0)
		for d := 0; d <= outer; d++ {
			off += int64((lo[d] + idx[d]) * w.strides[d])
		}
		if outer+1 < len(dims) {
			d := outer + 1
			off += int64(lo[d] * w.strides[d])
		}
		for i := 0; i < run; i++ {
			binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(src[out+i]))
		}
		if _, err := w.f.WriteAt(buf, w.dataOff+8*off); err != nil {
			return fmt.Errorf("fieldio: write tile at element %d: %w", off, err)
		}
		for d := outer; d >= 0; d-- {
			idx[d]++
			if idx[d] < shape[d] {
				break
			}
			idx[d] = 0
		}
	}
	return nil
}

// Close finalizes the file.
func (w *TileWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	return w.f.Close()
}

// TileAlloc hands out tile buffers from the shared float64 pool while
// accounting live and peak bytes — the peak-accounting hook the
// memory-budget tests assert against (a process-RSS assertion would be
// hostage to GC timing). A nil *TileAlloc allocates from the pool without
// accounting. Safe for concurrent use.
type TileAlloc struct {
	mu   sync.Mutex
	live int64
	peak int64
}

// Get returns a buffer of n float64s, counting its 8·n bytes live until
// the matching Put.
func (a *TileAlloc) Get(n int) []float64 {
	if a == nil {
		return bufpool.Float64s(n)
	}
	a.mu.Lock()
	a.live += 8 * int64(n)
	if a.live > a.peak {
		a.peak = a.live
	}
	a.mu.Unlock()
	return bufpool.Float64s(n)
}

// Put recycles a buffer obtained from Get. The accounting uses the
// buffer's length, so callers must return the slice as sized by Get.
func (a *TileAlloc) Put(s []float64) {
	if a == nil {
		bufpool.PutFloat64s(s)
		return
	}
	a.mu.Lock()
	a.live -= 8 * int64(len(s))
	a.mu.Unlock()
	bufpool.PutFloat64s(s)
}

// LiveBytes returns the currently outstanding tile bytes.
func (a *TileAlloc) LiveBytes() int64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.live
}

// PeakBytes returns the high-water mark of outstanding tile bytes.
func (a *TileAlloc) PeakBytes() int64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.peak
}
