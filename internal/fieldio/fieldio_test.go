package fieldio

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"pmgard/internal/grid"
)

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := grid.New(4, 5, 3)
	for i := range f.Data() {
		f.Data()[i] = rng.NormFloat64()
	}
	path := filepath.Join(t.TempDir(), "jx.field")
	meta := Meta{Field: "Jx", Timestep: 7}
	if err := Write(path, meta, f); err != nil {
		t.Fatal(err)
	}
	got, loaded, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Field != "Jx" || got.Timestep != 7 {
		t.Fatalf("meta = %+v", got)
	}
	if grid.MaxAbsDiff(f, loaded) != 0 {
		t.Fatal("payload mismatch")
	}
}

func TestSpecialValuesPreserved(t *testing.T) {
	f := grid.FromSlice([]float64{0, -0.0, math.Inf(1), math.MaxFloat64, 5e-324}, 5)
	path := filepath.Join(t.TempDir(), "x.field")
	if err := Write(path, Meta{Field: "x"}, f); err != nil {
		t.Fatal(err)
	}
	_, loaded, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range f.Data() {
		if math.Float64bits(loaded.Data()[i]) != math.Float64bits(v) {
			t.Fatalf("value %d not bit-identical", i)
		}
	}
}

func TestWriteDimsMismatch(t *testing.T) {
	f := grid.New(2, 2)
	err := Write(filepath.Join(t.TempDir(), "x.field"), Meta{Field: "x", Dims: []int{3}}, f)
	if err == nil {
		t.Fatal("dims mismatch accepted")
	}
}

func TestReadRejectsCorrupt(t *testing.T) {
	dir := t.TempDir()
	cases := map[string][]byte{
		"nojson.field": []byte("not json\n"),
		"nodims.field": []byte(`{"field":"x"}` + "\n"),
		"baddim.field": []byte(`{"field":"x","dims":[0]}` + "\n"),
		"short.field":  []byte(`{"field":"x","dims":[4]}` + "\n\x00\x00"),
		"noheader.bin": {},
	}
	for name, content := range cases {
		path := filepath.Join(dir, name)
		os.WriteFile(path, content, 0o644)
		if _, _, err := Read(path); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if _, _, err := Read(filepath.Join(dir, "missing.field")); err == nil {
		t.Error("missing file accepted")
	}
}
