package fieldio

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"pmgard/internal/faults"
	"pmgard/internal/grid"
	"pmgard/internal/storage"
)

// writeTestField writes a deterministic field file and returns its path
// and tensor.
func writeTestField(t *testing.T, dims ...int) (string, *grid.Tensor) {
	t.Helper()
	n := 1
	for _, d := range dims {
		n *= d
	}
	data := make([]float64, n)
	for i := range data {
		data[i] = float64(i*i%911) / 911.0
	}
	f := grid.FromSlice(data, dims...)
	path := filepath.Join(t.TempDir(), "field.bin")
	if err := Write(path, Meta{Field: "w", Timestep: 2}, f); err != nil {
		t.Fatal(err)
	}
	return path, f
}

func TestWindowReaderMeta(t *testing.T) {
	path, _ := writeTestField(t, 5, 6, 7)
	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	m := r.Meta()
	if m.Field != "w" || m.Timestep != 2 {
		t.Fatalf("meta = %+v", m)
	}
	if len(m.Dims) != 3 || m.Dims[0] != 5 || m.Dims[1] != 6 || m.Dims[2] != 7 {
		t.Fatalf("dims = %v", m.Dims)
	}
}

// TestReadTileWindows reads a sweep of window shapes — slabs, pencils,
// interior bricks, single cells, the full field — and checks every value
// against the in-memory tensor.
func TestReadTileWindows(t *testing.T) {
	path, f := writeTestField(t, 5, 6, 7)
	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	cases := []struct{ lo, shape []int }{
		{[]int{0, 0, 0}, []int{5, 6, 7}}, // whole field, one run
		{[]int{2, 0, 0}, []int{2, 6, 7}}, // slab: contiguous suffix
		{[]int{1, 2, 0}, []int{3, 3, 7}}, // rows contiguous
		{[]int{1, 2, 3}, []int{2, 2, 2}}, // interior brick
		{[]int{4, 5, 6}, []int{1, 1, 1}}, // single cell
		{[]int{0, 0, 3}, []int{5, 6, 4}}, // trailing partial rows
	}
	for _, c := range cases {
		n := 1
		for _, s := range c.shape {
			n *= s
		}
		dst := make([]float64, n)
		if err := r.ReadTile(c.lo, c.shape, dst); err != nil {
			t.Fatalf("lo=%v shape=%v: %v", c.lo, c.shape, err)
		}
		want := f.Slice(c.lo, addShape(c.lo, c.shape))
		if got := grid.MaxAbsDiff(grid.FromSlice(dst, c.shape...), want); got != 0 {
			t.Fatalf("lo=%v shape=%v: max diff %g", c.lo, c.shape, got)
		}
	}
}

func addShape(lo, shape []int) []int {
	hi := make([]int, len(lo))
	for d := range lo {
		hi[d] = lo[d] + shape[d]
	}
	return hi
}

func TestReadTileValidation(t *testing.T) {
	path, _ := writeTestField(t, 4, 4)
	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	dst := make([]float64, 4)
	for _, c := range []struct{ lo, shape []int }{
		{[]int{0}, []int{4}},        // wrong rank
		{[]int{3, 0}, []int{2, 2}},  // overruns dim 0
		{[]int{0, 0}, []int{0, 4}},  // empty extent
		{[]int{-1, 0}, []int{2, 2}}, // negative origin
	} {
		if err := r.ReadTile(c.lo, c.shape, dst); err == nil {
			t.Errorf("lo=%v shape=%v: accepted invalid window", c.lo, c.shape)
		}
	}
	if err := r.ReadTile([]int{0, 0}, []int{2, 2}, make([]float64, 3)); err == nil {
		t.Error("accepted mis-sized dst")
	}
}

// TestReadTileTruncatedFile is the satellite-#3 core case: a field file
// cut off mid-payload must fail window reads that touch the missing tail
// with an error wrapping storage.ErrCorrupt, while windows entirely
// inside the surviving prefix still succeed.
func TestReadTileTruncatedFile(t *testing.T) {
	path, f := writeTestField(t, 4, 4, 4)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop the last 1.5 slabs' worth of payload.
	if err := os.Truncate(path, fi.Size()-8*24); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	dst := make([]float64, 16)
	err = r.ReadTile([]int{3, 0, 0}, []int{1, 4, 4}, dst)
	if err == nil {
		t.Fatal("read of truncated slab succeeded")
	}
	if !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("truncated read error %v does not wrap storage.ErrCorrupt", err)
	}
	if errors.Is(err, storage.ErrTransient) {
		t.Fatalf("truncation misclassified as transient: %v", err)
	}
	// The surviving prefix reads clean.
	if err := r.ReadTile([]int{0, 0, 0}, []int{2, 4, 4}, make([]float64, 32)); err != nil {
		t.Fatalf("prefix slab: %v", err)
	}
	got := make([]float64, 16)
	if err := r.ReadTile([]int{1, 0, 0}, []int{1, 4, 4}, got); err != nil {
		t.Fatal(err)
	}
	want := f.Slice([]int{1, 0, 0}, []int{2, 4, 4})
	if d := grid.MaxAbsDiff(grid.FromSlice(got, 1, 4, 4), want); d != 0 {
		t.Fatalf("prefix slab differs by %g", d)
	}
}

func TestReadTileTruncatedHeader(t *testing.T) {
	path, _ := writeTestField(t, 4, 4)
	// Cut inside the header line itself.
	if err := os.Truncate(path, 10); err != nil {
		t.Fatal(err)
	}
	_, err := OpenReader(path)
	if err == nil {
		t.Fatal("opened file with truncated header")
	}
	if !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("header truncation error %v does not wrap storage.ErrCorrupt", err)
	}
}

// TestReadTileFaultInjection drives the windowed reader through
// faults.WrapReaderAt: injected truncation becomes a short read the
// reader classifies as corruption; injected transient errors pass
// through with their storage.ErrTransient class intact.
func TestReadTileFaultInjection(t *testing.T) {
	path, _ := writeTestField(t, 8, 8, 8)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	t.Run("truncate", func(t *testing.T) {
		far := faults.WrapReaderAt(f, faults.Config{Seed: 11, TruncateRate: 1})
		r, err := NewWindowReader(f) // parse header clean, then swap in faults
		if err != nil {
			t.Fatal(err)
		}
		r.r = far
		err = r.ReadTile([]int{0, 0, 0}, []int{2, 8, 8}, make([]float64, 128))
		if err == nil {
			t.Fatal("read through always-truncating reader succeeded")
		}
		if !errors.Is(err, storage.ErrCorrupt) {
			t.Fatalf("injected truncation error %v does not wrap storage.ErrCorrupt", err)
		}
		if far.Stats().Truncated == 0 {
			t.Fatal("injector recorded no truncations")
		}
	})

	t.Run("transient", func(t *testing.T) {
		far := faults.WrapReaderAt(f, faults.Config{Seed: 7, TransientRate: 1})
		r, err := NewWindowReader(f)
		if err != nil {
			t.Fatal(err)
		}
		r.r = far
		err = r.ReadTile([]int{0, 0, 0}, []int{1, 8, 8}, make([]float64, 64))
		if err == nil {
			t.Fatal("read through always-failing reader succeeded")
		}
		if !errors.Is(err, storage.ErrTransient) {
			t.Fatalf("injected transient error %v does not wrap storage.ErrTransient", err)
		}
		if errors.Is(err, storage.ErrCorrupt) {
			t.Fatalf("transient misclassified as corrupt: %v", err)
		}
		// Deterministic replay: a second wrapper with the same seed injects
		// the identical sequence.
		first := err
		far2 := faults.WrapReaderAt(f, faults.Config{Seed: 7, TransientRate: 1})
		r2, err := NewWindowReader(f)
		if err != nil {
			t.Fatal(err)
		}
		r2.r = far2
		err2 := r2.ReadTile([]int{0, 0, 0}, []int{1, 8, 8}, make([]float64, 64))
		if fmt.Sprint(first) != fmt.Sprint(err2) {
			t.Fatalf("fault sequence not deterministic:\n  %v\n  %v", first, err2)
		}
	})
}

// TestTileWriterRoundTrip writes a field tile by tile — out of order —
// and checks the result is byte-identical to the batch Write path.
func TestTileWriterRoundTrip(t *testing.T) {
	refPath, f := writeTestField(t, 6, 5, 4)
	dir := t.TempDir()
	path := filepath.Join(dir, "tiled.bin")
	w, err := CreateSized(path, Meta{Field: "w", Timestep: 2, Dims: []int{6, 5, 4}})
	if err != nil {
		t.Fatal(err)
	}
	// Out-of-order slabs plus an interior brick overlap-free partition.
	tiles := []struct{ lo, shape []int }{
		{[]int{4, 0, 0}, []int{2, 5, 4}},
		{[]int{0, 0, 0}, []int{2, 5, 4}},
		{[]int{2, 0, 0}, []int{2, 5, 4}},
	}
	for _, c := range tiles {
		src := f.Slice(c.lo, addShape(c.lo, c.shape))
		if err := w.WriteTile(c.lo, c.shape, src.Data()); err != nil {
			t.Fatalf("lo=%v: %v", c.lo, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || string(got) != string(want) {
		t.Fatalf("tiled file differs from batch file (%d vs %d bytes)", len(got), len(want))
	}
	// And it reads back through the normal reader.
	_, rec, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if d := grid.MaxAbsDiff(f, rec); d != 0 {
		t.Fatalf("round trip differs by %g", d)
	}
}

// TestTileAllocAccounting checks the live/peak byte accounting the
// memory-budget assertions key off.
func TestTileAllocAccounting(t *testing.T) {
	var a TileAlloc
	b1 := a.Get(100)
	b2 := a.Get(50)
	if got := a.LiveBytes(); got != 8*150 {
		t.Fatalf("live = %d, want %d", got, 8*150)
	}
	a.Put(b1)
	if got := a.LiveBytes(); got != 8*50 {
		t.Fatalf("live after put = %d, want %d", got, 8*50)
	}
	b3 := a.Get(200)
	a.Put(b2)
	a.Put(b3)
	if got := a.LiveBytes(); got != 0 {
		t.Fatalf("live after all puts = %d, want 0", got)
	}
	if got := a.PeakBytes(); got != 8*250 {
		t.Fatalf("peak = %d, want %d", got, 8*250)
	}
	// nil allocator still vends buffers.
	var nilA *TileAlloc
	b := nilA.Get(10)
	if len(b) != 10 {
		t.Fatalf("nil alloc returned %d values", len(b))
	}
	nilA.Put(b)
	if nilA.PeakBytes() != 0 || nilA.LiveBytes() != 0 {
		t.Fatal("nil alloc accounted bytes")
	}
}
