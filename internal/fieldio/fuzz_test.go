package fieldio

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzRead ensures arbitrary bytes never panic the field-file parser.
func FuzzRead(f *testing.F) {
	f.Add([]byte(`{"field":"x","dims":[2]}` + "\n" + "0123456789abcdef"))
	f.Add([]byte("not json\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		p := filepath.Join(t.TempDir(), "fuzz.field")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Skip()
		}
		Read(p) // must not panic
	})
}
