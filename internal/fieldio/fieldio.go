// Package fieldio reads and writes raw field files: a one-line JSON header
// (field name, timestep, dimensions) followed by the little-endian float64
// payload in row-major order. cmd/gendata writes these files and cmd/mgard
// and cmd/train consume them, mirroring how simulation dumps flow into the
// compression pipeline on a real system.
package fieldio

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"pmgard/internal/grid"
)

// Meta is the JSON header of a field file.
type Meta struct {
	// Field names the variable ("Jx", "Du", ...).
	Field string `json:"field"`
	// Timestep is the simulation output step.
	Timestep int `json:"timestep"`
	// Dims are the grid dimensions, row-major.
	Dims []int `json:"dims"`
}

// Write stores a field to path.
func Write(path string, meta Meta, t *grid.Tensor) error {
	if len(meta.Dims) == 0 {
		meta.Dims = t.Dims()
	}
	if !sameDims(meta.Dims, t.Dims()) {
		return fmt.Errorf("fieldio: meta dims %v do not match tensor dims %v", meta.Dims, t.Dims())
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("fieldio: create %s: %w", path, err)
	}
	w := bufio.NewWriter(f)
	header, err := json.Marshal(meta)
	if err != nil {
		f.Close()
		return fmt.Errorf("fieldio: marshal header: %w", err)
	}
	if _, err := w.Write(append(header, '\n')); err != nil {
		f.Close()
		return fmt.Errorf("fieldio: write header: %w", err)
	}
	buf := make([]byte, 8)
	for _, v := range t.Data() {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
		if _, err := w.Write(buf); err != nil {
			f.Close()
			return fmt.Errorf("fieldio: write payload: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("fieldio: flush: %w", err)
	}
	return f.Close()
}

// Read loads a field file.
func Read(path string) (Meta, *grid.Tensor, error) {
	f, err := os.Open(path)
	if err != nil {
		return Meta{}, nil, fmt.Errorf("fieldio: open %s: %w", path, err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	line, err := r.ReadBytes('\n')
	if err != nil {
		return Meta{}, nil, fmt.Errorf("fieldio: read header: %w", err)
	}
	var meta Meta
	if err := json.Unmarshal(line, &meta); err != nil {
		return Meta{}, nil, fmt.Errorf("fieldio: parse header: %w", err)
	}
	if len(meta.Dims) == 0 {
		return Meta{}, nil, fmt.Errorf("fieldio: header has no dims")
	}
	n := 1
	for _, d := range meta.Dims {
		if d <= 0 {
			return Meta{}, nil, fmt.Errorf("fieldio: invalid dimension %d", d)
		}
		if n > (1<<28)/d {
			return Meta{}, nil, fmt.Errorf("fieldio: implausible element count for dims %v", meta.Dims)
		}
		n *= d
	}
	payload := make([]byte, 8*n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Meta{}, nil, fmt.Errorf("fieldio: read payload (%d values): %w", n, err)
	}
	data := make([]float64, n)
	for i := range data {
		data[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
	}
	return meta, grid.FromSlice(data, meta.Dims...), nil
}

func sameDims(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
