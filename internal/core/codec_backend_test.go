package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"pmgard/internal/codec"
	"pmgard/internal/grid"
	"pmgard/internal/retrieval"
	"pmgard/internal/servecache"
)

// TestBackendConfigSelectsCodec pins backend selection end to end: the
// config's Backend lands in the header, survives serialization, and the
// default keeps an untagged header.
func TestBackendConfigSelectsCodec(t *testing.T) {
	f := testField(t)
	cfg := DefaultConfig()
	cfg.Backend = "interp"
	c, err := Compress(f, cfg, "Ex", 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Header.CodecID != "interp" || c.Header.Codec() != "interp" {
		t.Fatalf("interp artifact header codec = (%q, %q)", c.Header.CodecID, c.Header.Codec())
	}
	raw, err := json.Marshal(&c.Header)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte(`"CodecID":"interp"`)) {
		t.Fatalf("interp header JSON does not carry the codec tag: %s", raw[:80])
	}

	cDefault, err := Compress(f, DefaultConfig(), "Ex", 0)
	if err != nil {
		t.Fatal(err)
	}
	if cDefault.Header.CodecID != "" || cDefault.Header.Codec() != codec.DefaultID {
		t.Fatalf("default artifact header codec = (%q, %q)", cDefault.Header.CodecID, cDefault.Header.Codec())
	}
	rawDefault, err := json.Marshal(&cDefault.Header)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(rawDefault, []byte("CodecID")) {
		t.Fatal("default header JSON mentions CodecID; mgard artifacts must stay byte-identical to pre-interface output")
	}
}

// TestUnknownBackendFails checks both ends reject unregistered codecs with
// an error that names the offender.
func TestUnknownBackendFails(t *testing.T) {
	f := testField(t)
	cfg := DefaultConfig()
	cfg.Backend = "bogus"
	if _, err := Compress(f, cfg, "Ex", 0); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("Compress with unknown backend: %v", err)
	}
	c, err := Compress(f, DefaultConfig(), "Ex", 0)
	if err != nil {
		t.Fatal(err)
	}
	h := c.Header
	h.CodecID = "bogus"
	plan, err := retrieval.PlanForPlanes(h.LevelInfos(), []int{4, 4, 4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Retrieve(&h, c, plan); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("Retrieve with unknown backend: %v", err)
	}
	if _, err := NewSession(&h, c); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("NewSession with unknown backend: %v", err)
	}
}

// TestSharedCacheKeysAreCodecNamespaced is the collision regression test:
// two sessions over the *same field name and timestep* but different
// backends share one cache, and each must still reconstruct its own field
// correctly. Without the codec component in servecache.Key, the second
// session would decode the first backend's cached planes.
func TestSharedCacheKeysAreCodecNamespaced(t *testing.T) {
	f := testField(t)
	cfgM := DefaultConfig()
	cfgI := DefaultConfig()
	cfgI.Backend = "interp"
	// Same field name + timestep → identical SharedSource FieldID for both.
	cm, err := Compress(f, cfgM, "Ex", 7)
	if err != nil {
		t.Fatal(err)
	}
	ci, err := Compress(f, cfgI, "Ex", 7)
	if err != nil {
		t.Fatal(err)
	}
	cache := servecache.New(0)
	sm, err := NewSharedSession(&cm.Header, SharedSource{Src: cm, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	si, err := NewSharedSession(&ci.Header, SharedSource{Src: ci, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	tol := cm.Header.AbsTolerance(1e-5)
	recM, _, _, err := sm.Refine(cm.Header.TheoryEstimator(), tol)
	if err != nil {
		t.Fatal(err)
	}
	recI, _, _, err := si.Refine(ci.Header.TheoryEstimator(), tol)
	if err != nil {
		t.Fatal(err)
	}
	if got := grid.MaxAbsDiff(f, recM); got > tol {
		t.Fatalf("mgard session error %g exceeds %g under a shared cache", got, tol)
	}
	if got := grid.MaxAbsDiff(f, recI); got > tol {
		t.Fatalf("interp session error %g exceeds %g under a shared cache", got, tol)
	}
	// Direct key check: the cache holds both codecs' planes side by side.
	a := servecache.Key{Codec: "mgard", Field: "Ex@7", Level: 0, Plane: 0}
	b := servecache.Key{Codec: "interp", Field: "Ex@7", Level: 0, Plane: 0}
	if a == b {
		t.Fatal("keys differing only in Codec compare equal")
	}
}
