package core

import (
	"encoding/json"
	"fmt"

	"pmgard/internal/bitplane"
	"pmgard/internal/bufpool"
	"pmgard/internal/codec"
	"pmgard/internal/features"
	"pmgard/internal/grid"
	"pmgard/internal/lossless"
	"pmgard/internal/pool"
	"pmgard/internal/storage"
)

// SegmentSink consumes compressed plane segments in strictly increasing
// (level, plane) order — the on-disk layout order. The payload buffer is
// only valid for the duration of the call (the pipeline recycles it), so a
// sink that retains bytes must copy. storage.StreamWriter, storage.Writer
// and storage.TieredWriter all satisfy the interface.
type SegmentSink interface {
	WriteSegment(id storage.SegmentID, payload []byte) error
}

// CompressTo is the streaming compression pipeline: it refactors t and
// hands each compressed (level, plane) segment to sink the moment it is
// ready, instead of accumulating the artifact in memory. Stages overlap —
// while workers deflate the planes of level l, the driver encodes level
// l+1's bit-planes — through a bounded ordered pipeline (pool.Ordered), so
// segments reach the sink in exactly the deterministic (level, plane)
// order and the bytes are identical to the in-memory Compress path at
// every worker count.
//
// Peak payload memory is the pipeline window (≈ 2 × workers segments) plus
// at most two level encodings; segment buffers are recycled through
// bufpool. The returned header is complete (plane sizes filled in) only
// after CompressTo returns.
func CompressTo(t *grid.Tensor, cfg Config, fieldName string, timestep int, sink SegmentSink) (*Header, error) {
	cfg = cfg.withDefaults()
	workers := pool.Clamp(cfg.Parallelism)
	o := cfg.Obs
	root := o.Span("compress", nil)
	root.SetAttr("field", fieldName)
	defer root.End()
	backend, err := codec.ByID(cfg.Backend)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	dec, err := backend.Decompose(t, codecOptions(cfg.Decompose), workers, o)
	if err != nil {
		return nil, fmt.Errorf("core: decompose: %w", err)
	}
	h := &Header{
		FieldName:       fieldName,
		Timestep:        timestep,
		Dims:            append([]int(nil), t.Dims()...),
		Planes:          cfg.Planes,
		CodecName:       cfg.Codec.Name(),
		DecomposeLevels: cfg.Decompose.Levels,
		Update:          cfg.Decompose.Update,
		UpdateWeight:    cfg.Decompose.UpdateWeight,
		ValueRange:      t.Range(),
	}
	// Pre-interface headers carry no codec tag; keeping the default
	// backend's tag empty keeps its JSON — and hence its artifacts —
	// byte-identical to theirs.
	if id := backend.ID(); id != codec.DefaultID {
		h.CodecID = id
	}
	L := dec.Levels()
	for l := 0; l < L; l++ {
		h.LevelPools = append(h.LevelPools, features.PoolLevel(dec.Coeffs(l), cfg.PoolSize))
	}
	// Levels and each level's PlaneSizes are pre-sized by the driver before
	// any plane of that level is submitted, so the consumer goroutine only
	// ever writes into slots it owns — no slice growth races.
	h.Levels = make([]LevelMeta, L)

	planes := cfg.Planes
	encs := make([]*bitplane.LevelEncoding, L)
	released := make([]bool, L)
	var bytesOut int64
	ci := lossless.NewCompressInstruments(o)
	sp := o.Span("lossless.compress", nil)
	sp.SetAttr("codec", cfg.Codec.Name())
	pipe := pool.NewOrdered(workers, 2*workers, pool.NewMetrics(o, "lossless.compress"), func(i int, payload []byte) error {
		l, k := i/planes, i%planes
		err := sink.WriteSegment(storage.SegmentID{Level: l, Plane: k}, payload)
		if err == nil {
			h.Levels[l].PlaneSizes[k] = int64(len(payload))
			bytesOut += int64(len(payload))
		}
		bufpool.PutBytes(payload)
		if k == planes-1 {
			// The level's last plane consumed in order means every plane of
			// the level has been produced; its encoding can go back to the
			// pools while later levels are still in flight.
			encs[l].Release()
			released[l] = true
		}
		return err
	})
	var encErr error
	for l := 0; l < L; l++ {
		enc, err := backend.EncodeLevel(dec.Coeffs(l), planes, workers, o)
		if err != nil {
			encErr = fmt.Errorf("core: encode level %d: %w", l, err)
			break
		}
		encs[l] = enc
		h.Levels[l] = LevelMeta{
			N:        enc.N,
			Exponent: enc.Exponent,
			// The header outlives the pooled encoding, so it takes a copy.
			ErrMatrix:    append([]float64(nil), enc.ErrMatrix...),
			PlaneSizes:   make([]int64, planes),
			RawPlaneSize: enc.PlaneSizeRaw(),
		}
		for k := 0; k < planes; k++ {
			bits := enc.Bits[k]
			raw := enc.PlaneSizeRaw()
			pipe.Submit(func(worker int) ([]byte, error) {
				// Capacity covers deflate's worst case (stored blocks) so the
				// steady-state append never grows the pooled buffer.
				dst := bufpool.Bytes(raw + raw/8 + 64)[:0]
				out, err := lossless.AppendCompress(cfg.Codec, dst, bits)
				if err != nil {
					bufpool.PutBytes(dst)
					return nil, err
				}
				ci.Observe(len(bits), len(out))
				return out, nil
			})
		}
	}
	werr := pipe.Wait()
	sp.End()
	for l, enc := range encs {
		if enc != nil && !released[l] {
			enc.Release()
		}
	}
	if werr != nil {
		return nil, fmt.Errorf("core: compress: %w", werr)
	}
	if encErr != nil {
		return nil, encErr
	}
	if o != nil {
		o.Counter("core.compress.fields").Add(1)
		o.Counter("core.compress.bytes_out").Add(bytesOut)
	}
	return h, nil
}

// CompressToFile streams the full compression pipeline straight into a
// segment-store file: segments spill to disk as they are produced, and the
// header — complete only once compression finishes — is prepended at
// commit. The file is byte-identical to Compress + WriteFile at every
// worker count, without ever materializing the artifact in memory.
func CompressToFile(t *grid.Tensor, cfg Config, fieldName string, timestep int, path string) (*Header, error) {
	sw, err := storage.CreateStream(path)
	if err != nil {
		return nil, err
	}
	defer sw.Abort()
	h, err := CompressTo(t, cfg, fieldName, timestep, sw)
	if err != nil {
		return nil, err
	}
	meta, err := json.Marshal(h)
	if err != nil {
		return nil, fmt.Errorf("core: marshal header: %w", err)
	}
	if err := sw.Commit(meta); err != nil {
		return nil, err
	}
	return h, nil
}

// CompressToTiered streams the compression pipeline into a tiered store:
// each level's segments land in its tier's level file as they are
// produced. Equivalent to Compress + WriteTiered without the in-memory
// artifact.
func CompressToTiered(t *grid.Tensor, cfg Config, fieldName string, timestep int, dir string, hier storage.Hierarchy) (*Header, error) {
	w, err := storage.CreateTiered(dir, hier, nil)
	if err != nil {
		return nil, err
	}
	defer w.Abort()
	h, err := CompressTo(t, cfg, fieldName, timestep, w)
	if err != nil {
		return nil, err
	}
	if len(hier.Placement) != len(h.Levels) {
		return nil, fmt.Errorf("core: hierarchy places %d levels, field has %d",
			len(hier.Placement), len(h.Levels))
	}
	meta, err := json.Marshal(h)
	if err != nil {
		return nil, fmt.Errorf("core: marshal header: %w", err)
	}
	if err := w.SetMeta(meta); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return h, nil
}

// memorySink accumulates segments into a Compressed, copying each recycled
// pipeline buffer into an exact-size allocation — the same per-segment
// allocation profile the pre-streaming Compress had.
type memorySink struct {
	segments [][][]byte
	planes   int
}

func (s *memorySink) WriteSegment(id storage.SegmentID, payload []byte) error {
	for len(s.segments) <= id.Level {
		s.segments = append(s.segments, make([][]byte, s.planes))
	}
	seg := make([]byte, len(payload))
	copy(seg, payload)
	s.segments[id.Level][id.Plane] = seg
	return nil
}
