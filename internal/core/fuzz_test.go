package core

import (
	"math"
	"sync"
	"testing"
	"time"

	"pmgard/internal/faults"
	"pmgard/internal/grid"
	"pmgard/internal/retrieval"
	"pmgard/internal/storage"
)

// fuzzFixture is the one-time compressed field the fuzz target retrieves
// from; building it per input would drown the fuzzer in compression work.
var fuzzFixture struct {
	once sync.Once
	c    *Compressed
	plan retrieval.Plan
	want *grid.Tensor
}

func fuzzSetup(t testing.TB) {
	fuzzFixture.once.Do(func() {
		f := seededField(5, 9, 9, 9)
		cfg := DefaultConfig()
		cfg.Decompose.Levels = 3
		c, err := Compress(f, cfg, "fuzz", 0)
		if err != nil {
			panic(err)
		}
		h := &c.Header
		plan, err := retrieval.GreedyPlan(h.LevelInfos(), h.TheoryEstimator(), h.AbsTolerance(1e-4))
		if err != nil {
			panic(err)
		}
		want, err := RetrieveWorkers(h, c, plan, 1)
		if err != nil {
			panic(err)
		}
		fuzzFixture.c, fuzzFixture.plan, fuzzFixture.want = c, plan, want
	})
}

// FuzzConcurrentRetrieve drives several concurrent parallel retrievals over
// one shared fault-injecting source behind the retry layer. The property
// under test: for any fault seed, fault rate and worker count, every
// retrieval either fails with a clean error or reconstructs the exact
// reference bytes — and the race detector sees no unsynchronized access
// anywhere in the fetch/decode/recompose fan-out.
func FuzzConcurrentRetrieve(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(2))
	f.Add(int64(7), uint8(20), uint8(4))
	f.Add(int64(42), uint8(45), uint8(8))
	f.Add(int64(-3), uint8(49), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, ratePct, workers uint8) {
		fuzzSetup(t)
		h := &fuzzFixture.c.Header
		rate := float64(ratePct%50) / 100 // [0, 0.49]: retries can win
		flaky := faults.WrapSource(fuzzFixture.c, faults.Config{Seed: seed, TransientRate: rate})
		pol := storage.DefaultRetryPolicy()
		pol.Sleep = func(time.Duration) {} // keep the fuzzer fast
		src := storage.NewRetryingSource(nil, flaky, pol)

		const retrievers = 3
		var wg sync.WaitGroup
		for g := 0; g < retrievers; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				got, err := RetrieveWorkers(h, src, fuzzFixture.plan, int(workers%9))
				if err != nil {
					return // exhausted retries are a legitimate outcome
				}
				for i, v := range got.Data() {
					if math.Float64bits(v) != math.Float64bits(fuzzFixture.want.Data()[i]) {
						t.Errorf("sample %d differs after faulty retrieval", i)
						return
					}
				}
			}()
		}
		wg.Wait()
	})
}
