package core

import (
	"path/filepath"
	"testing"

	"pmgard/internal/grid"
)

func TestSessionRefineMatchesOneShot(t *testing.T) {
	f := testField(t)
	c, err := Compress(f, DefaultConfig(), "Ex", 0)
	if err != nil {
		t.Fatal(err)
	}
	h := &c.Header
	s, err := NewSession(h, c)
	if err != nil {
		t.Fatal(err)
	}
	est := h.TheoryEstimator()
	for _, rel := range []float64{1e-1, 1e-3, 1e-5} {
		tol := h.AbsTolerance(rel)
		recS, _, err := s.Refine(est, tol)
		if err != nil {
			t.Fatal(err)
		}
		recO, _, err := RetrieveTolerance(h, c, est, tol)
		if err != nil {
			t.Fatal(err)
		}
		if grid.MaxAbsDiff(recS, recO) != 0 {
			t.Fatalf("rel %g: session reconstruction differs from one-shot", rel)
		}
	}
}

func TestSessionFetchesOnlyDeltas(t *testing.T) {
	f := testField(t)
	c, err := Compress(f, DefaultConfig(), "Ex", 0)
	if err != nil {
		t.Fatal(err)
	}
	h := &c.Header
	path := filepath.Join(t.TempDir(), "x.pmgd")
	if err := c.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	h2, st, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s, err := NewSession(h2, StoreSource{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	est := h.TheoryEstimator()

	// Coarse first.
	if _, _, err := s.Refine(est, h.AbsTolerance(1e-1)); err != nil {
		t.Fatal(err)
	}
	coarseBytes := st.BytesRead()
	coarseFetched := s.Fetched()

	// Tighten: the session must only read the delta.
	if _, _, err := s.Refine(est, h.AbsTolerance(1e-5)); err != nil {
		t.Fatal(err)
	}
	totalBytes := st.BytesRead()
	if totalBytes <= coarseBytes {
		t.Fatal("refinement read nothing new")
	}
	// One-shot at the tight tolerance from a fresh store must cost at
	// least as much as the session's delta-only total.
	st.ResetCounters()
	if _, _, err := RetrieveTolerance(h2, StoreSource{Store: st}, est, h.AbsTolerance(1e-5)); err != nil {
		t.Fatal(err)
	}
	oneShot := st.BytesRead()
	if totalBytes > oneShot {
		t.Fatalf("session total %d exceeds one-shot %d — earlier reads were wasted", totalBytes, oneShot)
	}
	for l, have := range s.Fetched() {
		if have < coarseFetched[l] {
			t.Fatalf("level %d plane count went backwards", l)
		}
	}
	if s.BytesFetched() != totalBytes {
		t.Fatalf("session accounting %d != store accounting %d", s.BytesFetched(), totalBytes)
	}
}

func TestSessionLooseningIsFree(t *testing.T) {
	f := testField(t)
	c, err := Compress(f, DefaultConfig(), "Ex", 0)
	if err != nil {
		t.Fatal(err)
	}
	h := &c.Header
	s, err := NewSession(h, c)
	if err != nil {
		t.Fatal(err)
	}
	est := h.TheoryEstimator()
	if _, _, err := s.Refine(est, h.AbsTolerance(1e-5)); err != nil {
		t.Fatal(err)
	}
	before := s.BytesFetched()
	// Asking for a looser tolerance afterwards reads nothing.
	rec, _, err := s.Refine(est, h.AbsTolerance(1e-1))
	if err != nil {
		t.Fatal(err)
	}
	if s.BytesFetched() != before {
		t.Fatal("loosening the tolerance fetched data")
	}
	// And the reconstruction is still the tight one (never degrade).
	tol := h.AbsTolerance(1e-5)
	if achieved := grid.MaxAbsDiff(f, rec); achieved > tol {
		t.Fatalf("reconstruction degraded after loosening: %g > %g", achieved, tol)
	}
}

func TestSessionRefineToValidation(t *testing.T) {
	f := testField(t)
	c, err := Compress(f, DefaultConfig(), "Ex", 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(&c.Header, c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RefineTo([]int{1}); err == nil {
		t.Fatal("short target accepted")
	}
	if _, err := s.RefineTo([]int{99, 0, 0, 0, 0}); err == nil {
		t.Fatal("out-of-range target accepted")
	}
	if _, err := s.RefineTo([]int{-1, 0, 0, 0, 0}); err == nil {
		t.Fatal("negative target accepted")
	}
}

func TestSessionZeroTargetGivesZeroField(t *testing.T) {
	f := testField(t)
	c, err := Compress(f, DefaultConfig(), "Ex", 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(&c.Header, c)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := s.RefineTo(make([]int, 5))
	if err != nil {
		t.Fatal(err)
	}
	if rec.LinfNorm() != 0 || s.BytesFetched() != 0 {
		t.Fatal("empty refinement not free and zero")
	}
}
