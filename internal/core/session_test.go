package core

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pmgard/internal/faults"
	"pmgard/internal/grid"
	"pmgard/internal/storage"
)

// gatedSource makes selected planes fail with a transient error until
// healed — the minimal model of a tier that comes back.
type gatedSource struct {
	src    SegmentSource
	broken map[[2]int]bool
}

func (g *gatedSource) Segment(level, plane int) ([]byte, error) {
	if g.broken[[2]int{level, plane}] {
		return nil, fmt.Errorf("gated: level %d plane %d unavailable: %w", level, plane, storage.ErrTransient)
	}
	return g.src.Segment(level, plane)
}

// sessionBytes recomputes the payload bytes implied by the session's
// fetched plane counts, to cross-check its internal accounting.
func sessionBytes(h *Header, fetched []int) int64 {
	var total int64
	for l, b := range fetched {
		for k := 0; k < b; k++ {
			total += h.Levels[l].PlaneSizes[k]
		}
	}
	return total
}

func TestSessionRefineMatchesOneShot(t *testing.T) {
	f := testField(t)
	c, err := Compress(f, DefaultConfig(), "Ex", 0)
	if err != nil {
		t.Fatal(err)
	}
	h := &c.Header
	s, err := NewSession(h, c)
	if err != nil {
		t.Fatal(err)
	}
	est := h.TheoryEstimator()
	for _, rel := range []float64{1e-1, 1e-3, 1e-5} {
		tol := h.AbsTolerance(rel)
		recS, _, _, err := s.Refine(est, tol)
		if err != nil {
			t.Fatal(err)
		}
		recO, _, err := RetrieveTolerance(h, c, est, tol)
		if err != nil {
			t.Fatal(err)
		}
		if grid.MaxAbsDiff(recS, recO) != 0 {
			t.Fatalf("rel %g: session reconstruction differs from one-shot", rel)
		}
	}
}

func TestSessionFetchesOnlyDeltas(t *testing.T) {
	f := testField(t)
	c, err := Compress(f, DefaultConfig(), "Ex", 0)
	if err != nil {
		t.Fatal(err)
	}
	h := &c.Header
	path := filepath.Join(t.TempDir(), "x.pmgd")
	if err := c.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	h2, st, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s, err := NewSession(h2, StoreSource{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	est := h.TheoryEstimator()

	// Coarse first.
	if _, _, _, err := s.Refine(est, h.AbsTolerance(1e-1)); err != nil {
		t.Fatal(err)
	}
	coarseBytes := st.BytesRead()
	coarseFetched := s.Fetched()

	// Tighten: the session must only read the delta.
	if _, _, _, err := s.Refine(est, h.AbsTolerance(1e-5)); err != nil {
		t.Fatal(err)
	}
	totalBytes := st.BytesRead()
	if totalBytes <= coarseBytes {
		t.Fatal("refinement read nothing new")
	}
	// One-shot at the tight tolerance from a fresh store must cost at
	// least as much as the session's delta-only total.
	st.ResetCounters()
	if _, _, err := RetrieveTolerance(h2, StoreSource{Store: st}, est, h.AbsTolerance(1e-5)); err != nil {
		t.Fatal(err)
	}
	oneShot := st.BytesRead()
	if totalBytes > oneShot {
		t.Fatalf("session total %d exceeds one-shot %d — earlier reads were wasted", totalBytes, oneShot)
	}
	for l, have := range s.Fetched() {
		if have < coarseFetched[l] {
			t.Fatalf("level %d plane count went backwards", l)
		}
	}
	if s.BytesFetched() != totalBytes {
		t.Fatalf("session accounting %d != store accounting %d", s.BytesFetched(), totalBytes)
	}
}

func TestSessionLooseningIsFree(t *testing.T) {
	f := testField(t)
	c, err := Compress(f, DefaultConfig(), "Ex", 0)
	if err != nil {
		t.Fatal(err)
	}
	h := &c.Header
	s, err := NewSession(h, c)
	if err != nil {
		t.Fatal(err)
	}
	est := h.TheoryEstimator()
	if _, _, _, err := s.Refine(est, h.AbsTolerance(1e-5)); err != nil {
		t.Fatal(err)
	}
	before := s.BytesFetched()
	// Asking for a looser tolerance afterwards reads nothing.
	rec, _, _, err := s.Refine(est, h.AbsTolerance(1e-1))
	if err != nil {
		t.Fatal(err)
	}
	if s.BytesFetched() != before {
		t.Fatal("loosening the tolerance fetched data")
	}
	// And the reconstruction is still the tight one (never degrade).
	tol := h.AbsTolerance(1e-5)
	if achieved := grid.MaxAbsDiff(f, rec); achieved > tol {
		t.Fatalf("reconstruction degraded after loosening: %g > %g", achieved, tol)
	}
}

func TestSessionRefineToValidation(t *testing.T) {
	f := testField(t)
	c, err := Compress(f, DefaultConfig(), "Ex", 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(&c.Header, c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RefineTo([]int{1}); err == nil {
		t.Fatal("short target accepted")
	}
	if _, err := s.RefineTo([]int{99, 0, 0, 0, 0}); err == nil {
		t.Fatal("out-of-range target accepted")
	}
	if _, err := s.RefineTo([]int{-1, 0, 0, 0, 0}); err == nil {
		t.Fatal("negative target accepted")
	}
}

func TestSessionZeroTargetGivesZeroField(t *testing.T) {
	f := testField(t)
	c, err := Compress(f, DefaultConfig(), "Ex", 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(&c.Header, c)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := s.RefineTo(make([]int, 5))
	if err != nil {
		t.Fatal(err)
	}
	if rec.LinfNorm() != 0 || s.BytesFetched() != 0 {
		t.Fatal("empty refinement not free and zero")
	}
}

func TestSessionMidRefineFailureLeavesConsistentState(t *testing.T) {
	f := testField(t)
	c, err := Compress(f, DefaultConfig(), "Ex", 0)
	if err != nil {
		t.Fatal(err)
	}
	h := &c.Header
	gate := &gatedSource{src: c, broken: map[[2]int]bool{{2, 1}: true}}
	s, err := NewSession(h, gate)
	if err != nil {
		t.Fatal(err)
	}
	est := h.TheoryEstimator()
	tol := h.AbsTolerance(1e-5)
	// The transient failure on (2,1) must abort Refine with an error...
	if _, _, deg, err := s.Refine(est, tol); err == nil || deg != nil {
		t.Fatalf("transient failure did not abort: deg=%v err=%v", deg, err)
	}
	// ...leaving fetched/planes/bytes in agreement: every fetched plane is
	// cached, every non-fetched plane is not, and the byte count matches.
	for l, b := range s.fetched {
		for k := 0; k < h.Planes; k++ {
			if (s.planes[l][k] != nil) != (k < b) {
				t.Fatalf("level %d plane %d cache disagrees with fetched=%d", l, k, b)
			}
		}
	}
	if s.fetched[2] != 1 {
		t.Fatalf("level 2 fetched %d planes, want the 1 before the failure", s.fetched[2])
	}
	if got, want := s.BytesFetched(), sessionBytes(h, s.fetched); got != want {
		t.Fatalf("session accounting %d != %d implied by fetched planes", got, want)
	}
	// A second attempt while still broken must fail again, not corrupt state.
	if _, _, _, err := s.Refine(est, tol); err == nil {
		t.Fatal("still-broken source refined successfully")
	}
	// Once the source recovers, the same session completes and matches a
	// clean one-shot bit for bit, with no double-counted bytes.
	delete(gate.broken, [2]int{2, 1})
	rec, _, deg, err := s.Refine(est, tol)
	if err != nil {
		t.Fatal(err)
	}
	if deg != nil {
		t.Fatalf("recovered refinement reported degradation %+v", deg)
	}
	clean, _, err := RetrieveTolerance(h, c, est, tol)
	if err != nil {
		t.Fatal(err)
	}
	if grid.MaxAbsDiff(rec, clean) != 0 {
		t.Fatal("post-recovery reconstruction differs from clean retrieval")
	}
	if got, want := s.BytesFetched(), sessionBytes(h, s.fetched); got != want {
		t.Fatalf("post-recovery accounting %d != %d (bytes double-counted?)", got, want)
	}
}

func TestSessionDegradedRefine(t *testing.T) {
	f := testField(t)
	c, err := Compress(f, DefaultConfig(), "Ex", 0)
	if err != nil {
		t.Fatal(err)
	}
	h := &c.Header
	est := h.TheoryEstimator()
	tol := h.AbsTolerance(1e-5)
	// Level 2 permanently loses every plane from 1 up.
	flaky := faults.WrapSource(c, faults.Config{Permanent: []faults.PlaneID{{Level: 2, Plane: 1}}})
	s, err := NewSession(h, flaky)
	if err != nil {
		t.Fatal(err)
	}
	rec, plan, deg, err := s.Refine(est, tol)
	if err != nil {
		t.Fatalf("permanent loss was a hard failure: %v", err)
	}
	if deg == nil {
		t.Fatal("no degradation reported")
	}
	if len(deg.Dropped) != 1 || deg.Dropped[0] != (storage.SegmentID{Level: 2, Plane: 1}) {
		t.Fatalf("dropped %v, want [(2,1)]", deg.Dropped)
	}
	if deg.Got[2] != 1 {
		t.Fatalf("level 2 decoded %d planes, want the deepest consistent prefix of 1", deg.Got[2])
	}
	if deg.RequestedTol != tol {
		t.Fatalf("requested tol %g, want %g", deg.RequestedTol, tol)
	}
	for l, b := range deg.Got {
		if l != 2 && b != deg.Requested[l] {
			t.Fatalf("unaffected level %d degraded from %d to %d planes", l, deg.Requested[l], b)
		}
		if plan.Planes[l] != b {
			t.Fatalf("executed plan %v disagrees with Got %v", plan.Planes, deg.Got)
		}
	}
	// The reported bound is the estimator at the decoded plane counts and
	// the measured error respects it.
	levelErrs := make([]float64, len(h.Levels))
	for l := range levelErrs {
		levelErrs[l] = h.Levels[l].ErrMatrix[deg.Got[l]]
	}
	if want := est.Estimate(levelErrs); deg.AchievedBound != want {
		t.Fatalf("achieved bound %g, want estimator value %g", deg.AchievedBound, want)
	}
	if measured := grid.MaxAbsDiff(f, rec); measured > deg.AchievedBound {
		t.Fatalf("measured error %g exceeds reported degraded bound %g", measured, deg.AchievedBound)
	}
	// The degraded bound cannot beat the requested tolerance (planes were
	// lost, not gained).
	if deg.AchievedBound <= tol {
		t.Fatalf("degraded bound %g unexpectedly within tol %g", deg.AchievedBound, tol)
	}
	// A whole level lost from plane 0 still degrades, not fails.
	flaky0 := faults.WrapSource(c, faults.Config{Permanent: []faults.PlaneID{{Level: 0, Plane: 0}}})
	s0, err := NewSession(h, flaky0)
	if err != nil {
		t.Fatal(err)
	}
	_, _, deg0, err := s0.Refine(est, tol)
	if err != nil || deg0 == nil || deg0.Got[0] != 0 {
		t.Fatalf("whole-level loss: deg=%+v err=%v", deg0, err)
	}
}

func TestSessionRefineThroughRetryingSourceByteIdentical(t *testing.T) {
	// Acceptance criterion: at a 20% transient fault rate with a fixed
	// seed, the RetryingSource-backed retrieval is byte-identical to the
	// fault-free run.
	f := testField(t)
	c, err := Compress(f, DefaultConfig(), "Ex", 0)
	if err != nil {
		t.Fatal(err)
	}
	h := &c.Header
	est := h.TheoryEstimator()
	pol := storage.DefaultRetryPolicy()
	pol.Sleep = func(time.Duration) {}
	for _, rel := range []float64{1e-2, 1e-4, 1e-6} {
		tol := h.AbsTolerance(rel)
		clean, _, err := RetrieveTolerance(h, c, est, tol)
		if err != nil {
			t.Fatal(err)
		}
		flaky := faults.WrapSource(c, faults.Config{Seed: 1234, TransientRate: 0.20})
		r := storage.NewRetryingSource(nil, flaky, pol)
		rec, _, err := RetrieveTolerance(h, r, est, tol)
		if err != nil {
			t.Fatalf("rel %g: flaky retrieval failed: %v", rel, err)
		}
		if grid.MaxAbsDiff(clean, rec) != 0 {
			t.Fatalf("rel %g: flaky reconstruction differs from fault-free run", rel)
		}
		if flaky.Stats().Transient == 0 {
			t.Fatalf("rel %g: no faults were actually injected", rel)
		}
	}
}

func TestSessionPermanentErrorWithoutSentinelStillDegrades(t *testing.T) {
	// A source returning os.ErrNotExist-wrapped errors (a deleted level
	// file) must classify permanent and degrade, even though it never
	// heard of the faults package.
	f := testField(t)
	c, err := Compress(f, DefaultConfig(), "Ex", 0)
	if err != nil {
		t.Fatal(err)
	}
	h := &c.Header
	s, err := NewSession(h, notExistSource{c})
	if err != nil {
		t.Fatal(err)
	}
	_, _, deg, err := s.Refine(h.TheoryEstimator(), h.AbsTolerance(1e-4))
	if err != nil {
		t.Fatalf("missing-file error was a hard failure: %v", err)
	}
	if deg == nil || deg.Got[1] != 0 {
		t.Fatalf("deg = %+v", deg)
	}
}

// notExistSource fails level 1 as if its tier file were deleted.
type notExistSource struct{ src SegmentSource }

func (n notExistSource) Segment(level, plane int) ([]byte, error) {
	if level == 1 {
		return nil, fmt.Errorf("open level_1.seg: %w", os.ErrNotExist)
	}
	return n.src.Segment(level, plane)
}
