// Out-of-core tiled compression: a field too large for RAM is split into
// slabs along its slowest axis, each slab streamed from disk through the
// windowed fieldio reader, compressed independently through the streaming
// pipeline, and written as its own progressive artifact next to a
// tiles.json manifest. Peak memory is bounded by the slab size — derived
// from an explicit byte budget — not by the field size, and a depth-1
// readahead goroutine keeps the pipeline fed while the next slab loads.
package core

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"pmgard/internal/fieldio"
	"pmgard/internal/grid"
	"pmgard/internal/retrieval"
)

// tileManifestName is the per-directory manifest file of a tiled artifact.
const tileManifestName = "tiles.json"

// pipelineFactor is the memory head-room multiplier between the slab size
// and the byte budget: at any instant up to two slab buffers are live
// (one compressing, one in readahead) plus roughly one slab's worth of
// decomposition coefficients and bounded encoder scratch.
const pipelineFactor = 4

// minSlabThickness keeps slabs thick enough that the multilevel transform
// has structure to work with even under tiny budgets.
const minSlabThickness = 4

// TileOptions configures out-of-core tiled compression.
type TileOptions struct {
	// MemBudget caps the pipeline's working-set bytes; the slab thickness
	// is derived from it. 0 means no budget: the whole field becomes one
	// tile.
	MemBudget int64
	// SlabThickness, when > 0, fixes the slab extent along axis 0
	// directly and overrides MemBudget's derivation.
	SlabThickness int
	// Alloc accounts tile-buffer bytes; its peak is the hook budget tests
	// assert against. Nil allocates without accounting.
	Alloc *fieldio.TileAlloc
}

// TileInfo describes one stored tile of a tiled artifact.
type TileInfo struct {
	// Lo is the tile's origin in the field's index space.
	Lo []int `json:"lo"`
	// Shape is the tile's extent per dimension.
	Shape []int `json:"shape"`
	// File is the tile's artifact file name, relative to the manifest.
	File string `json:"file"`
	// Bytes is the tile's stored payload size.
	Bytes int64 `json:"bytes"`
}

// TileSet is the manifest of a tiled artifact.
type TileSet struct {
	// Field and Timestep identify the source field.
	Field    string `json:"field"`
	Timestep int    `json:"timestep"`
	// Dims is the full field's extent.
	Dims []int `json:"dims"`
	// ValueRange is the global max-min across the whole field — not any
	// single tile's — so relative error bounds convert to one absolute
	// tolerance shared by every tile.
	ValueRange float64 `json:"value_range"`
	// Tiles lists the slabs in ascending axis-0 order.
	Tiles []TileInfo `json:"tiles"`
}

// TotalBytes returns the stored payload bytes across all tiles.
func (ts *TileSet) TotalBytes() int64 {
	var total int64
	for _, ti := range ts.Tiles {
		total += ti.Bytes
	}
	return total
}

// slabPlan derives the slab thickness along axis 0 from the options.
func slabPlan(dims []int, opts TileOptions) (int, error) {
	if opts.SlabThickness > 0 {
		return min(opts.SlabThickness, dims[0]), nil
	}
	if opts.MemBudget <= 0 {
		return dims[0], nil
	}
	rowArea := int64(1)
	for _, d := range dims[1:] {
		rowArea *= int64(d)
	}
	thickness := opts.MemBudget / (pipelineFactor * 8 * rowArea)
	if thickness < minSlabThickness {
		thickness = minSlabThickness
	}
	if need := pipelineFactor * 8 * rowArea * thickness; need > opts.MemBudget && thickness == minSlabThickness {
		// The budget cannot hold even the thinnest slab's working set;
		// refuse rather than silently overshoot.
		if 2*8*rowArea*minSlabThickness > opts.MemBudget {
			return 0, fmt.Errorf("core: mem budget %d bytes cannot hold two %d-row slabs (%d bytes each)",
				opts.MemBudget, minSlabThickness, 8*rowArea*minSlabThickness)
		}
	}
	return min(int(thickness), dims[0]), nil
}

// loadedSlab is one slab read ahead of the compressor.
type loadedSlab struct {
	lo    []int
	shape []int
	data  []float64
	err   error
}

// CompressTiled compresses the field behind r into a tiled artifact at
// dir: one progressive .pmgd file per slab plus a tiles.json manifest.
// The field is never materialized; peak tile-buffer bytes stay within
// opts.MemBudget (observable through opts.Alloc). Each tile compresses
// through the same streaming pipeline as CompressToFile, so per-tile
// artifacts are byte-identical to compressing that slab alone.
func CompressTiled(r *fieldio.Reader, cfg Config, dir string, opts TileOptions) (*TileSet, error) {
	meta := r.Meta()
	dims := meta.Dims
	if len(dims) == 0 {
		return nil, fmt.Errorf("core: tiled compress needs dims in the field header")
	}
	thickness, err := slabPlan(dims, opts)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: create tile dir: %w", err)
	}
	alloc := opts.Alloc

	// Depth-1 readahead: the loader reads slab t+1 from disk while the
	// pipeline compresses slab t. The unbuffered channel caps live slab
	// buffers at two — the loader blocks holding the next slab until the
	// compressor takes it.
	slabs := make(chan loadedSlab)
	stop := make(chan struct{})
	go func() {
		defer close(slabs)
		for z := 0; z < dims[0]; z += thickness {
			sh := append([]int(nil), dims...)
			sh[0] = min(thickness, dims[0]-z)
			lo := make([]int, len(dims))
			lo[0] = z
			n := 1
			for _, s := range sh {
				n *= s
			}
			buf := alloc.Get(n)
			err := r.ReadTile(lo, sh, buf)
			s := loadedSlab{lo: lo, shape: sh, data: buf, err: err}
			select {
			case slabs <- s:
			case <-stop:
				alloc.Put(buf)
				return
			}
			if err != nil {
				return
			}
		}
	}()
	drain := func() {
		close(stop)
		for s := range slabs {
			alloc.Put(s.data)
		}
	}

	ts := &TileSet{
		Field:    meta.Field,
		Timestep: meta.Timestep,
		Dims:     append([]int(nil), dims...),
		Tiles:    []TileInfo{},
	}
	mn, mx := math.Inf(1), math.Inf(-1)
	idx := 0
	for s := range slabs {
		if s.err != nil {
			alloc.Put(s.data)
			drain()
			return nil, s.err
		}
		for _, v := range s.data {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		name := fmt.Sprintf("tile_%04d.pmgd", idx)
		h, err := CompressToFile(grid.FromSlice(s.data, s.shape...), cfg, meta.Field, meta.Timestep,
			filepath.Join(dir, name))
		alloc.Put(s.data)
		if err != nil {
			drain()
			return nil, fmt.Errorf("core: tile %d: %w", idx, err)
		}
		ts.Tiles = append(ts.Tiles, TileInfo{
			Lo:    s.lo,
			Shape: s.shape,
			File:  name,
			Bytes: h.TotalBytes(),
		})
		idx++
	}
	if len(ts.Tiles) == 0 {
		return nil, fmt.Errorf("core: field has no slabs")
	}
	ts.ValueRange = mx - mn

	man, err := json.MarshalIndent(ts, "", "  ")
	if err != nil {
		return nil, err
	}
	tmp := filepath.Join(dir, tileManifestName+".tmp")
	if err := os.WriteFile(tmp, append(man, '\n'), 0o644); err != nil {
		return nil, err
	}
	if err := os.Rename(tmp, filepath.Join(dir, tileManifestName)); err != nil {
		return nil, err
	}
	return ts, nil
}

// OpenTileSet reads the manifest of a tiled artifact directory.
func OpenTileSet(dir string) (*TileSet, error) {
	raw, err := os.ReadFile(filepath.Join(dir, tileManifestName))
	if err != nil {
		return nil, fmt.Errorf("core: open tile manifest: %w", err)
	}
	var ts TileSet
	if err := json.Unmarshal(raw, &ts); err != nil {
		return nil, fmt.Errorf("core: parse tile manifest: %w", err)
	}
	if len(ts.Tiles) == 0 || len(ts.Dims) == 0 {
		return nil, fmt.Errorf("core: tile manifest is empty")
	}
	return &ts, nil
}

// TiledRetrievalStats summarizes one tiled retrieval.
type TiledRetrievalStats struct {
	// BytesFetched is the payload fetched across tiles; BytesStored the
	// total stored, so their ratio is the progressive saving.
	BytesFetched int64
	BytesStored  int64
	// Planes[t] is tile t's per-level plane plan.
	Planes []retrieval.Plan
}

// RetrieveTiledRel streams a tiled artifact back to a field file at
// outPath, tile by tile, honoring a relative error bound against the
// manifest's global value range. Peak memory is one reconstructed slab,
// not the field; the output file is laid down through the tile writer as
// slabs complete.
func RetrieveTiledRel(dir string, rel float64, outPath string, workers int) (*TileSet, *TiledRetrievalStats, error) {
	ts, err := OpenTileSet(dir)
	if err != nil {
		return nil, nil, err
	}
	tol := rel * ts.ValueRange
	w, err := fieldio.CreateSized(outPath, fieldio.Meta{Field: ts.Field, Timestep: ts.Timestep, Dims: ts.Dims})
	if err != nil {
		return nil, nil, err
	}
	stats := &TiledRetrievalStats{BytesStored: ts.TotalBytes()}
	for i, ti := range ts.Tiles {
		h, st, err := OpenFile(filepath.Join(dir, ti.File))
		if err != nil {
			w.Close()
			return nil, nil, fmt.Errorf("core: tile %d: %w", i, err)
		}
		rec, plan, err := RetrieveToleranceWorkers(h, StoreSource{Store: st}, h.TheoryEstimator(), tol, workers)
		st.Close()
		if err != nil {
			w.Close()
			return nil, nil, fmt.Errorf("core: tile %d: %w", i, err)
		}
		for _, b := range plan.BytesPerLevel {
			stats.BytesFetched += b
		}
		stats.Planes = append(stats.Planes, plan)
		if err := w.WriteTile(ti.Lo, ti.Shape, rec.Data()); err != nil {
			w.Close()
			return nil, nil, err
		}
	}
	if err := w.Close(); err != nil {
		return nil, nil, err
	}
	return ts, stats, nil
}
