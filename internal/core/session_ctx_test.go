package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"pmgard/internal/grid"
	"pmgard/internal/servecache"
)

// blockingSource wraps a SegmentSource and blocks reads at or beyond a
// trigger count until the gate closes or ctx ends.
type blockingSource struct {
	inner   SegmentSource
	gate    chan struct{}
	after   int64
	reads   atomic.Int64
	started chan struct{} // closed once a read blocks on the gate
	once    atomic.Bool
}

func (b *blockingSource) Segment(level, plane int) ([]byte, error) {
	return b.SegmentCtx(context.Background(), level, plane)
}

func (b *blockingSource) SegmentCtx(ctx context.Context, level, plane int) ([]byte, error) {
	if b.reads.Add(1) > b.after {
		if b.once.CompareAndSwap(false, true) {
			close(b.started)
		}
		select {
		case <-b.gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return b.inner.Segment(level, plane)
}

func sessionField(t *testing.T) (*Header, *Compressed) {
	t.Helper()
	tensor := grid.New(17, 13)
	data := tensor.Data()
	for i := range data {
		data[i] = float64(i%19) - 9.5
	}
	cfg := DefaultConfig()
	cfg.Decompose.Levels = 2
	c, err := Compress(tensor, cfg, "ctxfield", 0)
	if err != nil {
		t.Fatal(err)
	}
	return &c.Header, c
}

func TestRefineCtxCancellationLeavesSessionResumable(t *testing.T) {
	h, c := sessionField(t)
	src := &blockingSource{inner: c, gate: make(chan struct{}), after: 3, started: make(chan struct{})}
	sess, err := NewSession(h, src)
	if err != nil {
		t.Fatal(err)
	}
	est := h.TheoryEstimator()
	tol := h.AbsTolerance(1e-4)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, _, err := sess.RefineCtx(ctx, est, tol)
		done <- err
	}()
	<-src.started
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled refine err = %v, want Canceled", err)
	}
	// The session retained the planes fetched before cancellation...
	fetched := sess.Fetched()
	var kept int
	for _, n := range fetched {
		kept += n
	}
	if kept == 0 {
		t.Fatal("cancelled refine retained no fetched planes")
	}
	readsBefore := src.reads.Load()

	// ...and a later refine resumes, paying only for the remainder.
	close(src.gate)
	rec, plan, deg, err := sess.Refine(est, tol)
	if err != nil {
		t.Fatalf("resumed refine: %v", err)
	}
	if deg != nil {
		t.Fatalf("resumed refine degraded: %+v", deg)
	}
	if rec == nil || plan.EstimatedError > tol {
		t.Fatalf("resumed refine: est err %g > tol %g", plan.EstimatedError, tol)
	}
	var want int
	for _, n := range plan.Planes {
		want += n
	}
	resumedReads := src.reads.Load() - readsBefore
	if resumedReads >= int64(want) {
		t.Fatalf("resume re-read everything: %d reads for a %d-plane plan with %d planes kept",
			resumedReads, want, kept)
	}

	// The reconstruction matches a fresh uncancelled session's.
	fresh, err := NewSession(h, c)
	if err != nil {
		t.Fatal(err)
	}
	ref, _, _, err := fresh.Refine(est, tol)
	if err != nil {
		t.Fatal(err)
	}
	a, b := rec.Data(), ref.Data()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("resumed reconstruction diverges at %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestRefineCtxSharedSessionCancellation(t *testing.T) {
	h, c := sessionField(t)
	src := &blockingSource{inner: c, gate: make(chan struct{}), after: 2, started: make(chan struct{})}
	cache := servecache.New(0)
	sess, err := NewSharedSession(h, SharedSource{Src: src, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	est := h.TheoryEstimator()
	tol := h.AbsTolerance(1e-4)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, _, err := sess.RefineCtx(ctx, est, tol)
		done <- err
	}()
	<-src.started
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled shared refine err = %v, want Canceled", err)
	}

	// A second session over the same cache completes after the stall clears.
	close(src.gate)
	other, err := NewSharedSession(h, SharedSource{Src: src, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, deg, err := other.Refine(est, tol); err != nil || deg != nil {
		t.Fatalf("sibling session after cancellation: deg=%v err=%v", deg, err)
	}
}
