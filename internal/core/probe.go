package core

import (
	"fmt"
	"sort"

	"pmgard/internal/codec"
	"pmgard/internal/grid"
	"pmgard/internal/retrieval"
)

// ProbePoint is one tolerance of a backend probe: the smallest greedy plane
// prefix whose *measured* reconstruction error meets the tolerance, and what
// it costs. Probing measures oracle bytes rather than estimator-planned
// bytes on purpose — planned bytes would mostly rank the backends'
// amplification constants, while the serving question is which refactoring
// actually reaches an accuracy cheapest on this field.
type ProbePoint struct {
	// RelBound is the relative error bound the point targets.
	RelBound float64 `json:"rel_bound"`
	// Tolerance is the absolute tolerance (RelBound × value range).
	Tolerance float64 `json:"tolerance"`
	// Bytes is the payload cost of the smallest achieving prefix.
	Bytes int64 `json:"bytes"`
	// Planes is that prefix's per-level plane assignment.
	Planes []int `json:"planes"`
	// AchievedErr is the measured L∞ reconstruction error at Planes.
	AchievedErr float64 `json:"achieved_err"`
}

// ProbeResult is one backend's probe over a field: the artifact size, the
// per-tolerance oracle costs, and the aggregate score the selection ranks.
type ProbeResult struct {
	// Backend is the progressive-codec ID.
	Backend string `json:"backend"`
	// StoredBytes is the total compressed payload of the backend's artifact.
	StoredBytes int64 `json:"stored_bytes"`
	// Points holds one entry per probed tolerance, loosest first.
	Points []ProbePoint `json:"points"`
	// Score is the sum of Bytes over Points — lower retrieves cheaper.
	Score int64 `json:"score"`
}

// ProbeComparison is a per-field backend comparison, the record
// BENCH_codec.json stores and cmd/serve's startup probe acts on.
type ProbeComparison struct {
	// Field names the probed field.
	Field string `json:"field"`
	// Winner is the selected backend: the lowest Score, ties resolved to
	// the default backend, then lexicographically — fully deterministic.
	Winner string `json:"winner"`
	// Results holds one entry per probed backend, sorted by ID.
	Results []ProbeResult `json:"results"`
}

// DefaultProbeBounds returns the relative error bounds a probe sweeps:
// coarse exploration through tight retrieval, loosest first.
func DefaultProbeBounds() []float64 {
	return []float64{1e-2, 1e-3, 1e-4, 1e-5, 1e-6}
}

// ProbeBackends compresses the field once per backend and walks each
// artifact's greedy retrieval sequence, measuring at every tolerance the
// smallest prefix whose reconstruction error actually meets it. backends
// nil probes every registered backend; rels nil uses DefaultProbeBounds.
// The walk is deterministic: same field, same config, same result.
func ProbeBackends(f *grid.Tensor, cfg Config, fieldName string, rels []float64, backends []string) (*ProbeComparison, error) {
	if backends == nil {
		backends = codec.IDs()
	}
	if rels == nil {
		rels = DefaultProbeBounds()
	}
	rels = append([]float64(nil), rels...)
	sort.Sort(sort.Reverse(sort.Float64Slice(rels))) // loosest first
	backends = append([]string(nil), backends...)
	sort.Strings(backends)
	cmp := &ProbeComparison{Field: fieldName}
	for _, id := range backends {
		cfgB := cfg
		cfgB.Backend = id
		res, err := probeBackend(f, cfgB, fieldName, rels)
		if err != nil {
			return nil, fmt.Errorf("core: probe %s with %s: %w", fieldName, id, err)
		}
		cmp.Results = append(cmp.Results, res)
	}
	cmp.Winner = pickWinner(cmp.Results)
	return cmp, nil
}

// probeBackend walks one backend's greedy sequence over all tolerances.
// Tolerances arrive loosest first, so the walk never rewinds: each point
// resumes from the previous point's prefix.
func probeBackend(f *grid.Tensor, cfg Config, fieldName string, rels []float64) (ProbeResult, error) {
	comp, err := Compress(f, cfg, fieldName, 0)
	if err != nil {
		return ProbeResult{}, err
	}
	h := &comp.Header
	infos := h.LevelInfos()
	steps, err := retrieval.GreedySequence(infos)
	if err != nil {
		return ProbeResult{}, err
	}
	res := ProbeResult{Backend: h.Codec(), StoredBytes: h.TotalBytes()}
	// measure reconstructs at a plane assignment and returns the L∞ error.
	measure := func(planes []int) (float64, retrieval.Plan, error) {
		plan, err := retrieval.PlanForPlanes(infos, planes)
		if err != nil {
			return 0, retrieval.Plan{}, err
		}
		rec, err := Retrieve(h, comp, plan)
		if err != nil {
			return 0, retrieval.Plan{}, err
		}
		return grid.MaxAbsDiff(f, rec), plan, nil
	}
	step := 0
	planes := make([]int, len(h.Levels))
	achieved, plan, err := measure(planes)
	if err != nil {
		return ProbeResult{}, err
	}
	for _, rel := range rels {
		tol := h.AbsTolerance(rel)
		for achieved > tol && step < len(steps) {
			planes = steps[step].Planes
			step++
			achieved, plan, err = measure(planes)
			if err != nil {
				return ProbeResult{}, err
			}
		}
		res.Points = append(res.Points, ProbePoint{
			RelBound:    rel,
			Tolerance:   tol,
			Bytes:       plan.Bytes,
			Planes:      append([]int(nil), plan.Planes...),
			AchievedErr: achieved,
		})
		res.Score += plan.Bytes
	}
	return res, nil
}

// pickWinner selects the lowest-score backend; ties prefer the default
// backend, then the lexicographically first ID (results arrive sorted).
func pickWinner(results []ProbeResult) string {
	winner := ""
	var best int64
	for _, r := range results {
		switch {
		case winner == "" || r.Score < best:
			winner, best = r.Backend, r.Score
		case r.Score == best && r.Backend == codec.DefaultID:
			winner = r.Backend
		}
	}
	return winner
}
