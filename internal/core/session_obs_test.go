package core

import (
	"bytes"
	"fmt"
	"testing"

	"pmgard/internal/obs"
	"pmgard/internal/storage"
)

// scriptedSource replays a per-(level, plane) script: each read pops the
// next step — a verbatim payload (possibly corrupt), an error, or a
// fall-through to the real source.
type scriptedSource struct {
	src     SegmentSource
	scripts map[[2]int][]scriptStep
}

type scriptStep struct {
	payload []byte
	err     error
}

func (s *scriptedSource) Segment(level, plane int) ([]byte, error) {
	key := [2]int{level, plane}
	if steps := s.scripts[key]; len(steps) > 0 {
		s.scripts[key] = steps[1:]
		return steps[0].payload, steps[0].err
	}
	return s.src.Segment(level, plane)
}

// TestSessionBytesFetchedCountsFailedFetches is the regression test for the
// BytesFetched undercount: payload delivered by a read whose plane
// ultimately failed to decode (corrupt segment) must still count as
// fetched bytes — it crossed the wire even though the refinement aborted.
func TestSessionBytesFetchedCountsFailedFetches(t *testing.T) {
	f := testField(t)
	c, err := Compress(f, DefaultConfig(), "Ex", 0)
	if err != nil {
		t.Fatal(err)
	}
	h := &c.Header

	// Script plane (0, 1): first read returns a corrupt payload (valid
	// transfer, fails decompression), the retry delivers the real bytes.
	good, err := c.Segment(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := bytes.Repeat([]byte{0xFF}, len(good))
	flaky := &scriptedSource{
		src: c,
		scripts: map[[2]int][]scriptStep{
			{0, 1}: {{payload: corrupt}},
		},
	}
	s, err := NewSession(h, flaky)
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New()
	s.Instrument(o)

	target := make([]int, len(h.Levels))
	target[0] = 2
	if _, err := s.RefineTo(target); err == nil {
		t.Fatal("expected the corrupt plane to abort the refinement")
	}
	afterFailure := s.BytesFetched()
	// Plane (0,0) decoded, plane (0,1)'s corrupt payload was transferred:
	// both must be counted.
	wantMin := h.Levels[0].PlaneSizes[0] + int64(len(corrupt))
	if afterFailure < wantMin {
		t.Fatalf("BytesFetched after failed fetch = %d, want >= %d (failed transfer must count)",
			afterFailure, wantMin)
	}
	if got := o.Metrics.Snapshot().Counters["core.session.bytes_wasted"]; got != int64(len(corrupt)) {
		t.Fatalf("bytes_wasted = %d, want %d", got, len(corrupt))
	}

	// The retry succeeds; the session resumes from plane (0,1) and its
	// total now includes the wasted transfer plus every decoded plane.
	if _, err := s.RefineTo(target); err != nil {
		t.Fatal(err)
	}
	want := sessionBytes(h, s.Fetched()) + int64(len(corrupt))
	if got := s.BytesFetched(); got != want {
		t.Fatalf("BytesFetched = %d, want %d (decoded planes + wasted transfer)", got, want)
	}
}

// TestSessionBytesFetchedCountsErrorPayloads covers the second undercount
// shape: a source that returns a partial payload alongside its error.
func TestSessionBytesFetchedCountsErrorPayloads(t *testing.T) {
	f := testField(t)
	c, err := Compress(f, DefaultConfig(), "Ex", 0)
	if err != nil {
		t.Fatal(err)
	}
	h := &c.Header
	partial := []byte{1, 2, 3, 4, 5}
	flaky := &scriptedSource{
		src: c,
		scripts: map[[2]int][]scriptStep{
			{0, 0}: {{payload: partial, err: fmt.Errorf("mid-read failure: %w", storage.ErrTransient)}},
		},
	}
	s, err := NewSession(h, flaky)
	if err != nil {
		t.Fatal(err)
	}
	target := make([]int, len(h.Levels))
	target[0] = 1
	if _, err := s.RefineTo(target); err == nil {
		t.Fatal("expected the scripted error to abort the refinement")
	}
	if got := s.BytesFetched(); got != int64(len(partial)) {
		t.Fatalf("BytesFetched = %d, want %d (partial payload delivered with the error)", got, len(partial))
	}
}

// TestSessionInstrumentPerLevelCounters checks the per-level fetch counters
// a -metrics-out snapshot reports for a refined session.
func TestSessionInstrumentPerLevelCounters(t *testing.T) {
	f := testField(t)
	c, err := Compress(f, DefaultConfig(), "Ex", 0)
	if err != nil {
		t.Fatal(err)
	}
	h := &c.Header
	s, err := NewSession(h, c)
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New()
	s.Instrument(o)
	if _, _, _, err := s.Refine(h.TheoryEstimator(), h.AbsTolerance(1e-3)); err != nil {
		t.Fatal(err)
	}
	snap := o.Metrics.Snapshot()
	var perLevelBytes, perLevelPlanes int64
	for l, b := range s.Fetched() {
		gotPlanes := snap.Counters[fmt.Sprintf("core.session.level%d.planes_fetched", l)]
		if gotPlanes != int64(b) {
			t.Fatalf("level %d planes_fetched = %d, want %d", l, gotPlanes, b)
		}
		perLevelBytes += snap.Counters[fmt.Sprintf("core.session.level%d.bytes_fetched", l)]
		perLevelPlanes += gotPlanes
	}
	if perLevelBytes != s.BytesFetched() {
		t.Fatalf("per-level byte counters sum to %d, BytesFetched = %d", perLevelBytes, s.BytesFetched())
	}
	if got := snap.Counters["core.session.bytes_fetched"]; got != s.BytesFetched() {
		t.Fatalf("total bytes counter = %d, BytesFetched = %d", got, s.BytesFetched())
	}
	if snap.Counters["retrieval.greedy.estimator_calls"] == 0 {
		t.Fatal("estimator iterations not counted")
	}
	// The refinement span made it into the trace.
	var names []string
	for _, st := range o.Trace.Stages() {
		names = append(names, st.Name)
	}
	found := false
	for _, n := range names {
		if n == "session.refine" {
			found = true
		}
	}
	if !found {
		t.Fatalf("trace stages %v missing session.refine", names)
	}
}
