package core

import (
	"context"
	"encoding/json"
	"fmt"

	"pmgard/internal/storage"
)

// WriteTiered persists the compressed field across a storage hierarchy:
// each coefficient level's plane segments land in the directory of the tier
// the hierarchy assigns it to (§II-A — hot coarse levels on fast tiers,
// cold fine levels on slow ones).
func (c *Compressed) WriteTiered(dir string, h storage.Hierarchy) error {
	if len(h.Placement) != len(c.Header.Levels) {
		return fmt.Errorf("core: hierarchy places %d levels, field has %d",
			len(h.Placement), len(c.Header.Levels))
	}
	meta, err := json.Marshal(&c.Header)
	if err != nil {
		return fmt.Errorf("core: marshal header: %w", err)
	}
	w, err := storage.CreateTiered(dir, h, meta)
	if err != nil {
		return err
	}
	for l := range c.segments {
		for k, seg := range c.segments[l] {
			if err := w.WriteSegment(storage.SegmentID{Level: l, Plane: k}, seg); err != nil {
				w.Close()
				return err
			}
		}
	}
	return w.Close()
}

// OpenTiered opens a tiered store directory written by WriteTiered and
// parses its header.
func OpenTiered(dir string) (*Header, *storage.TieredStore, error) {
	st, err := storage.OpenTiered(dir)
	if err != nil {
		return nil, nil, err
	}
	var h Header
	if err := json.Unmarshal(st.Meta(), &h); err != nil {
		st.Close()
		return nil, nil, fmt.Errorf("core: parse header: %w", err)
	}
	return &h, st, nil
}

// TieredSource adapts a TieredStore as a SegmentSource.
type TieredSource struct {
	Store *storage.TieredStore
}

// Segment implements SegmentSource.
func (s TieredSource) Segment(level, plane int) ([]byte, error) {
	return s.Store.ReadSegment(storage.SegmentID{Level: level, Plane: plane})
}

// SegmentCtx implements ContextSource. Tier reads are local file I/O that
// cannot be interrupted mid-syscall, so cancellation is checked at entry.
func (s TieredSource) SegmentCtx(ctx context.Context, level, plane int) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.Segment(level, plane)
}
