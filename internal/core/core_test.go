package core

import (
	"encoding/json"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"pmgard/internal/grid"
	"pmgard/internal/lossless"
	"pmgard/internal/sim/warpx"
)

// testField builds a realistic WarpX-like field for pipeline tests.
func testField(t *testing.T) *grid.Tensor {
	t.Helper()
	cfg := warpx.DefaultConfig(17, 9, 9)
	f, err := cfg.Field("Ex", 32)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestCompressRetrieveWithinTolerance(t *testing.T) {
	f := testField(t)
	c, err := Compress(f, DefaultConfig(), "Ex", 32)
	if err != nil {
		t.Fatal(err)
	}
	h := &c.Header
	est := h.TheoryEstimator()
	for _, rel := range []float64{1e-1, 1e-2, 1e-4, 1e-6} {
		tol := h.AbsTolerance(rel)
		rec, plan, err := RetrieveTolerance(h, c, est, tol)
		if err != nil {
			t.Fatal(err)
		}
		achieved := grid.MaxAbsDiff(f, rec)
		if achieved > tol {
			t.Fatalf("rel %g: achieved error %g exceeds tolerance %g (plan %v)",
				rel, achieved, tol, plan.Planes)
		}
	}
}

func TestTheoryControlIsPessimistic(t *testing.T) {
	// The paper's premise (Fig. 2): achieved error is far below requested.
	f := testField(t)
	c, err := Compress(f, DefaultConfig(), "Ex", 32)
	if err != nil {
		t.Fatal(err)
	}
	h := &c.Header
	logGapSum, n := 0.0, 0
	for _, rel := range []float64{1e-2, 1e-3, 1e-4, 1e-5, 1e-6} {
		tol := h.AbsTolerance(rel)
		rec, _, err := RetrieveTolerance(h, c, h.TheoryEstimator(), tol)
		if err != nil {
			t.Fatal(err)
		}
		achieved := grid.MaxAbsDiff(f, rec)
		if achieved == 0 {
			continue
		}
		logGapSum += math.Log(tol / achieved)
		n++
	}
	if n == 0 {
		t.Fatal("no bounds produced a nonzero achieved error")
	}
	if gap := math.Exp(logGapSum / float64(n)); gap < 3 {
		t.Fatalf("geometric-mean requested/achieved gap %.2f, want ≥3 (Fig. 2 premise)", gap)
	}
}

func TestTighterToleranceCostsMoreBytes(t *testing.T) {
	f := testField(t)
	c, err := Compress(f, DefaultConfig(), "Ex", 32)
	if err != nil {
		t.Fatal(err)
	}
	h := &c.Header
	est := h.TheoryEstimator()
	prev := int64(-1)
	for _, rel := range []float64{1e-1, 1e-3, 1e-5, 1e-7} {
		_, plan, err := RetrieveTolerance(h, c, est, h.AbsTolerance(rel))
		if err != nil {
			t.Fatal(err)
		}
		if plan.Bytes < prev {
			t.Fatalf("rel %g fetched %d bytes < previous %d", rel, plan.Bytes, prev)
		}
		prev = plan.Bytes
	}
	if prev > h.TotalBytes() {
		t.Fatalf("plan bytes %d exceed stored total %d", prev, h.TotalBytes())
	}
}

func TestFileRoundTrip(t *testing.T) {
	f := testField(t)
	c, err := Compress(f, DefaultConfig(), "Ex", 32)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ex.pmgd")
	if err := c.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	h, st, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if h.FieldName != "Ex" || h.Timestep != 32 {
		t.Fatalf("header = %q t=%d", h.FieldName, h.Timestep)
	}
	src := StoreSource{Store: st}
	tol := h.AbsTolerance(1e-4)
	rec, plan, err := RetrieveTolerance(h, src, h.TheoryEstimator(), tol)
	if err != nil {
		t.Fatal(err)
	}
	if achieved := grid.MaxAbsDiff(f, rec); achieved > tol {
		t.Fatalf("achieved %g > tol %g after file round trip", achieved, tol)
	}
	// The store must have read exactly the planned bytes.
	if st.BytesRead() != plan.Bytes {
		t.Fatalf("store read %d bytes, plan says %d", st.BytesRead(), plan.Bytes)
	}
}

func TestRetrievePlanesDirect(t *testing.T) {
	f := testField(t)
	c, err := Compress(f, DefaultConfig(), "Ex", 32)
	if err != nil {
		t.Fatal(err)
	}
	h := &c.Header
	planes := []int{10, 8, 6, 4, 2}
	rec, plan, err := RetrievePlanes(h, c, planes)
	if err != nil {
		t.Fatal(err)
	}
	for l, b := range plan.Planes {
		if b != planes[l] {
			t.Fatalf("plan.Planes[%d] = %d, want %d", l, b, planes[l])
		}
	}
	if rec.Len() != f.Len() {
		t.Fatal("reconstruction has wrong size")
	}
	// More planes must not increase the error.
	recMore, _, err := RetrievePlanes(h, c, []int{20, 16, 12, 10, 8})
	if err != nil {
		t.Fatal(err)
	}
	if grid.MaxAbsDiff(f, recMore) > grid.MaxAbsDiff(f, rec)*1.5 {
		t.Fatal("more planes produced a substantially worse reconstruction")
	}
}

func TestRetrieveAllPlanesNearLossless(t *testing.T) {
	f := testField(t)
	c, err := Compress(f, DefaultConfig(), "Ex", 32)
	if err != nil {
		t.Fatal(err)
	}
	h := &c.Header
	all := make([]int, len(h.Levels))
	for l := range all {
		all[l] = h.Planes
	}
	rec, _, err := RetrievePlanes(h, c, all)
	if err != nil {
		t.Fatal(err)
	}
	// Residual bounded by the quantization floor amplified by Eq. 6.
	bound := 0.0
	for _, lm := range h.Levels {
		bound += lm.ErrMatrix[h.Planes]
	}
	bound *= h.TheoryEstimator().C
	if achieved := grid.MaxAbsDiff(f, rec); achieved > bound {
		t.Fatalf("full retrieval error %g exceeds quantization bound %g", achieved, bound)
	}
}

func TestZeroPlanesGiveZeroField(t *testing.T) {
	f := testField(t)
	c, err := Compress(f, DefaultConfig(), "Ex", 32)
	if err != nil {
		t.Fatal(err)
	}
	rec, plan, err := RetrievePlanes(&c.Header, c, make([]int, len(c.Header.Levels)))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Bytes != 0 {
		t.Fatalf("zero planes cost %d bytes", plan.Bytes)
	}
	if rec.LinfNorm() != 0 {
		t.Fatal("zero planes did not reconstruct the zero field")
	}
}

func TestCodecsInteroperate(t *testing.T) {
	f := testField(t)
	for _, codec := range []lossless.Codec{lossless.Deflate(), lossless.RLE(), lossless.Raw()} {
		cfg := DefaultConfig()
		cfg.Codec = codec
		c, err := Compress(f, cfg, "Ex", 0)
		if err != nil {
			t.Fatalf("%s: %v", codec.Name(), err)
		}
		h := &c.Header
		tol := h.AbsTolerance(1e-3)
		rec, _, err := RetrieveTolerance(h, c, h.TheoryEstimator(), tol)
		if err != nil {
			t.Fatalf("%s: %v", codec.Name(), err)
		}
		if achieved := grid.MaxAbsDiff(f, rec); achieved > tol {
			t.Fatalf("%s: achieved %g > tol %g", codec.Name(), achieved, tol)
		}
	}
}

func TestDeflateBeatsRawOnStoredSize(t *testing.T) {
	// Needs a field large enough that plane payloads dwarf the per-segment
	// codec overhead.
	f, err := warpx.DefaultConfig(17, 17, 17).Field("Ex", 32)
	if err != nil {
		t.Fatal(err)
	}
	cfgD := DefaultConfig()
	cfgR := DefaultConfig()
	cfgR.Codec = lossless.Raw()
	cd, err := Compress(f, cfgD, "Ex", 0)
	if err != nil {
		t.Fatal(err)
	}
	cr, err := Compress(f, cfgR, "Ex", 0)
	if err != nil {
		t.Fatal(err)
	}
	if cd.Header.TotalBytes() >= cr.Header.TotalBytes() {
		t.Fatalf("deflate total %d not smaller than raw %d",
			cd.Header.TotalBytes(), cr.Header.TotalBytes())
	}
}

func TestHeaderConversions(t *testing.T) {
	f := testField(t)
	c, err := Compress(f, DefaultConfig(), "Ex", 0)
	if err != nil {
		t.Fatal(err)
	}
	h := &c.Header
	if got := h.AbsTolerance(0.5); math.Abs(got-0.5*f.Range()) > 1e-12 {
		t.Fatalf("AbsTolerance = %g, want %g", got, 0.5*f.Range())
	}
	infos := h.LevelInfos()
	if len(infos) != 5 {
		t.Fatalf("LevelInfos count = %d", len(infos))
	}
	for l, li := range infos {
		if len(li.ErrMatrix) != h.Planes+1 || len(li.PlaneSizes) != h.Planes {
			t.Fatalf("level %d info malformed", l)
		}
	}
	if c := h.TheoryEstimator().C; c < 1 {
		t.Fatalf("theory constant %g < 1", c)
	}
}

func TestRetrieveValidation(t *testing.T) {
	f := testField(t)
	c, err := Compress(f, DefaultConfig(), "Ex", 0)
	if err != nil {
		t.Fatal(err)
	}
	h := &c.Header
	if _, _, err := RetrievePlanes(h, c, []int{1}); err == nil {
		t.Fatal("short plane slice accepted")
	}
	if _, _, err := RetrievePlanes(h, c, []int{99, 0, 0, 0, 0}); err == nil {
		t.Fatal("out-of-range plane count accepted")
	}
	if _, err := c.Segment(9, 0); err == nil {
		t.Fatal("bad level accepted")
	}
	if _, err := c.Segment(0, 99); err == nil {
		t.Fatal("bad plane accepted")
	}
}

func TestCompressConstantField(t *testing.T) {
	f := grid.New(9, 9, 9)
	f.Fill(5)
	c, err := Compress(f, DefaultConfig(), "const", 0)
	if err != nil {
		t.Fatal(err)
	}
	h := &c.Header
	// A constant field has zero range; retrieval at any positive absolute
	// tolerance must succeed.
	rec, plan, err := RetrieveTolerance(h, c, h.TheoryEstimator(), 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if achieved := grid.MaxAbsDiff(f, rec); achieved > 1e-9 {
		t.Fatalf("constant field achieved error %g", achieved)
	}
	// Detail levels of a constant field are all zero, so nearly nothing
	// should be fetched beyond the coarse level.
	if plan.Bytes > h.TotalBytes()/2 {
		t.Fatalf("constant field fetched %d of %d bytes", plan.Bytes, h.TotalBytes())
	}
}

func TestCompressRetrieve1D2D(t *testing.T) {
	// The pipeline must handle low-rank fields, not just 3-D volumes.
	cases := []*grid.Tensor{grid.New(257), grid.New(33, 33)}
	for _, f := range cases {
		for i := range f.Data() {
			f.Data()[i] = math.Sin(float64(i)/7) * 100
		}
		c, err := Compress(f, DefaultConfig(), "lowrank", 0)
		if err != nil {
			t.Fatalf("rank %d: %v", f.NDim(), err)
		}
		h := &c.Header
		tol := h.AbsTolerance(1e-5)
		rec, _, err := RetrieveTolerance(h, c, h.TheoryEstimator(), tol)
		if err != nil {
			t.Fatalf("rank %d: %v", f.NDim(), err)
		}
		if achieved := grid.MaxAbsDiff(f, rec); achieved > tol {
			t.Fatalf("rank %d: achieved %g > tol %g", f.NDim(), achieved, tol)
		}
	}
}

func TestHeaderJSONRoundTrip(t *testing.T) {
	f := testField(t)
	c, err := Compress(f, DefaultConfig(), "Ex", 3)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(&c.Header)
	if err != nil {
		t.Fatal(err)
	}
	var h2 Header
	if err := json.Unmarshal(blob, &h2); err != nil {
		t.Fatal(err)
	}
	if h2.FieldName != "Ex" || h2.Timestep != 3 || len(h2.Levels) != 5 {
		t.Fatalf("header lost fields: %+v", h2)
	}
	if len(h2.LevelPools) != 5 || len(h2.LevelPools[0]) != 64 {
		t.Fatalf("level pools lost: %d×%d", len(h2.LevelPools), len(h2.LevelPools[0]))
	}
	// The all-zero-level sentinel exponent must survive JSON.
	zero := grid.New(9, 9)
	cz, err := Compress(zero, DefaultConfig(), "zero", 0)
	if err != nil {
		t.Fatal(err)
	}
	blob, _ = json.Marshal(&cz.Header)
	var hz Header
	if err := json.Unmarshal(blob, &hz); err != nil {
		t.Fatal(err)
	}
	rec, _, err := RetrievePlanes(&hz, cz, []int{32, 32, 32, 32, 32})
	if err != nil {
		t.Fatal(err)
	}
	if rec.LinfNorm() != 0 {
		t.Fatal("zero field reconstruction not zero after JSON round trip")
	}
}

func TestStoreReadsOnlyPlannedSegments(t *testing.T) {
	// The retriever must never touch planes beyond the plan — this is the
	// entire point of progressive retrieval.
	f := testField(t)
	c, err := Compress(f, DefaultConfig(), "Ex", 0)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "x.pmgd")
	if err := c.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	h, st, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	planes := []int{3, 2, 1, 0, 0}
	_, plan, err := RetrievePlanes(h, StoreSource{Store: st}, planes)
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests() != 6 {
		t.Fatalf("issued %d ranged reads, want exactly 6 (3+2+1)", st.Requests())
	}
	if st.BytesRead() != plan.Bytes {
		t.Fatalf("read %d bytes, plan says %d", st.BytesRead(), plan.Bytes)
	}
}

func TestRetrieveResolution(t *testing.T) {
	f, err := warpx.DefaultConfig(17, 17, 17).Field("Ex", 8)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compress(f, DefaultConfig(), "Ex", 8)
	if err != nil {
		t.Fatal(err)
	}
	h := &c.Header
	// Fetch levels 0..2 fully, nothing above.
	planes := []int{32, 32, 32, 0, 0}
	coarse, plan, err := RetrieveResolution(h, c, planes, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := coarse.Dims(); got[0] != 5 || got[1] != 5 || got[2] != 5 {
		t.Fatalf("coarse dims = %v, want 5³", got)
	}
	// The coarse view must track the downsampled original.
	down := f.Resample(5, 5, 5)
	if diff := grid.MaxAbsDiff(coarse, down); diff > f.Range() {
		t.Fatalf("coarse view deviates from downsample by %g (range %g)", diff, f.Range())
	}
	// The plan must cost only the fetched levels.
	var want int64
	for l := 0; l <= 2; l++ {
		for _, s := range h.Levels[l].PlaneSizes {
			want += s
		}
	}
	if plan.Bytes != want {
		t.Fatalf("plan bytes %d, want %d (levels 0-2 only)", plan.Bytes, want)
	}
	// Validation: nonzero planes above the cut, bad upTo.
	if _, _, err := RetrieveResolution(h, c, []int{32, 32, 32, 1, 0}, 2); err == nil {
		t.Fatal("planes above cut accepted")
	}
	if _, _, err := RetrieveResolution(h, c, planes, 9); err == nil {
		t.Fatal("bad upTo accepted")
	}
}

func TestRetrieveDetectsCorruptSegments(t *testing.T) {
	f := testField(t)
	c, err := Compress(f, DefaultConfig(), "Ex", 0)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "x.pmgd")
	if err := c.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	// Flip bytes in the payload region (after the header/table).
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := len(blob) - 500; i < len(blob)-400; i++ {
		blob[i] ^= 0xFF
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	h, st, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	all := make([]int, len(h.Levels))
	for l := range all {
		all[l] = h.Planes
	}
	// The deflate stage must notice the corruption (invalid stream or
	// wrong decoded length) rather than silently reconstructing garbage.
	if _, _, err := RetrievePlanes(h, StoreSource{Store: st}, all); err == nil {
		t.Fatal("corrupted payload retrieved without error")
	}
}

func TestPropertyToleranceAlwaysRespected(t *testing.T) {
	// The central invariant of the whole pipeline: for any field shape and
	// any attainable tolerance, theory-controlled retrieval achieves an
	// error within the requested bound.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		rank := 1 + rng.Intn(3)
		dims := make([]int, rank)
		for i := range dims {
			dims[i] = 5 + rng.Intn(12)
		}
		f := grid.New(dims...)
		kind := rng.Intn(3)
		for i := range f.Data() {
			switch kind {
			case 0: // smooth
				f.Data()[i] = math.Sin(float64(i) / 17)
			case 1: // noisy
				f.Data()[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(8)-4))
			default: // mixed, offset
				f.Data()[i] = 100 + math.Sin(float64(i)/9) + 0.01*rng.NormFloat64()
			}
		}
		c, err := Compress(f, DefaultConfig(), "prop", trial)
		if err != nil {
			t.Fatal(err)
		}
		h := &c.Header
		rel := math.Pow(10, -1-6*rng.Float64()) // 1e-1 .. 1e-7
		tol := h.AbsTolerance(rel)
		if tol <= 0 {
			continue
		}
		rec, plan, err := RetrieveTolerance(h, c, h.TheoryEstimator(), tol)
		if err != nil {
			t.Fatal(err)
		}
		achieved := grid.MaxAbsDiff(f, rec)
		exhausted := true
		for l, b := range plan.Planes {
			if b < len(h.Levels[l].PlaneSizes) {
				exhausted = false
			}
		}
		if achieved > tol && !exhausted {
			t.Fatalf("trial %d (dims %v kind %d rel %.2e): achieved %g > tol %g with planes left",
				trial, dims, kind, rel, achieved, tol)
		}
	}
}

func TestTightEstimatorSharperThanTheory(t *testing.T) {
	f := testField(t)
	c, err := Compress(f, DefaultConfig(), "Ex", 0)
	if err != nil {
		t.Fatal(err)
	}
	h := &c.Header
	naive := h.TheoryEstimator()
	tight := h.TightEstimator()
	if tight.C >= naive.C {
		t.Fatalf("tight constant %g not below naive %g", tight.C, naive.C)
	}
	// Both are true bounds: retrieval under either stays within tolerance.
	tol := h.AbsTolerance(1e-4)
	recT, planT, err := RetrieveTolerance(h, c, tight, tol)
	if err != nil {
		t.Fatal(err)
	}
	if achieved := grid.MaxAbsDiff(f, recT); achieved > tol {
		t.Fatalf("tight bound violated tolerance: %g > %g", achieved, tol)
	}
	_, planN, err := RetrieveTolerance(h, c, naive, tol)
	if err != nil {
		t.Fatal(err)
	}
	if planT.Bytes > planN.Bytes {
		t.Fatalf("tight bound fetched more (%d) than naive (%d)", planT.Bytes, planN.Bytes)
	}
}

func TestRetrieveHybridRepairsBadSeed(t *testing.T) {
	f := testField(t)
	c, err := Compress(f, DefaultConfig(), "Ex", 0)
	if err != nil {
		t.Fatal(err)
	}
	h := &c.Header
	tol := h.AbsTolerance(1e-5)
	// A hopeless seed (nothing fetched): the hybrid must extend it until
	// the estimator is satisfied.
	seed := make([]int, len(h.Levels))
	rec, plan, err := RetrieveHybrid(h, c, seed, h.TightEstimator(), tol)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Bytes == 0 {
		t.Fatal("hybrid accepted an empty plan for a tight tolerance")
	}
	if achieved := grid.MaxAbsDiff(f, rec); achieved > tol {
		t.Fatalf("hybrid violated tolerance: %g > %g", achieved, tol)
	}
	// Validation propagates.
	if _, _, err := RetrieveHybrid(h, c, []int{1}, h.TightEstimator(), tol); err == nil {
		t.Fatal("short seed accepted")
	}
}

func TestOpenFileRejectsNonStore(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.pmgd")
	os.WriteFile(bad, []byte("not a store"), 0o644)
	if _, _, err := OpenFile(bad); err == nil {
		t.Fatal("garbage file accepted")
	}
	if _, _, err := OpenFile(filepath.Join(dir, "missing.pmgd")); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, _, err := OpenTiered(dir); err == nil {
		t.Fatal("empty tiered dir accepted")
	}
	if err := (&Compressed{}).WriteFile(filepath.Join(dir, "no", "such", "dir", "x.pmgd")); err == nil {
		t.Fatal("unwritable path accepted")
	}
}

func TestCompressAllMatchesSequential(t *testing.T) {
	cfg := warpx.DefaultConfig(9, 9, 9)
	fields := make(map[string]*grid.Tensor)
	for _, name := range []string{"Jx", "Bx", "Ex"} {
		f, err := cfg.Field(name, 4)
		if err != nil {
			t.Fatal(err)
		}
		fields[name] = f
	}
	batch, err := CompressAll(fields, DefaultConfig(), 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 3 {
		t.Fatalf("compressed %d fields, want 3", len(batch))
	}
	for name, f := range fields {
		seq, err := Compress(f, DefaultConfig(), name, 4)
		if err != nil {
			t.Fatal(err)
		}
		if batch[name].Header.TotalBytes() != seq.Header.TotalBytes() {
			t.Fatalf("%s: concurrent result differs from sequential", name)
		}
		if batch[name].Header.FieldName != name {
			t.Fatalf("%s: header name %q", name, batch[name].Header.FieldName)
		}
	}
	// Default worker count path.
	if _, err := CompressAll(fields, DefaultConfig(), 4, 0); err != nil {
		t.Fatal(err)
	}
}

func TestCompressAllPropagatesErrors(t *testing.T) {
	bad := DefaultConfig()
	bad.Decompose.Levels = -1
	fields := map[string]*grid.Tensor{"x": grid.New(4, 4)}
	if _, err := CompressAll(fields, bad, 0, 2); err == nil {
		t.Fatal("invalid config accepted")
	}
}
