//go:build race

package core

// raceEnabled reports whether the race detector is active; allocation-count
// guards skip under it because instrumented sync.Pool operations allocate.
const raceEnabled = true
