package core

import (
	"path/filepath"
	"testing"

	"pmgard/internal/grid"
	"pmgard/internal/storage"
)

func TestTieredWorkflow(t *testing.T) {
	f := testField(t)
	c, err := Compress(f, DefaultConfig(), "Ex", 4)
	if err != nil {
		t.Fatal(err)
	}
	hier, err := storage.DefaultHierarchy(len(c.Header.Levels))
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "tiered")
	if err := c.WriteTiered(dir, hier); err != nil {
		t.Fatal(err)
	}
	h, st, err := OpenTiered(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if h.FieldName != "Ex" || h.Timestep != 4 {
		t.Fatalf("header lost: %+v", h)
	}
	tol := h.AbsTolerance(1e-4)
	rec, plan, err := RetrieveTolerance(h, TieredSource{Store: st}, h.TheoryEstimator(), tol)
	if err != nil {
		t.Fatal(err)
	}
	if achieved := grid.MaxAbsDiff(f, rec); achieved > tol {
		t.Fatalf("achieved %g > tol %g through tiered store", achieved, tol)
	}
	// Accounting must cover exactly the planned bytes, attributed to tiers.
	var total int64
	for _, b := range st.TierBytes() {
		total += b
	}
	if total != plan.Bytes {
		t.Fatalf("tier bytes %d != plan bytes %d", total, plan.Bytes)
	}
	// Coarse level's tier must have been touched.
	fastTier := hier.Tiers[hier.Placement[0]].Name
	if st.TierBytes()[fastTier] == 0 {
		t.Fatalf("fast tier %s saw no reads", fastTier)
	}
}

func TestWriteTieredPlacementMismatch(t *testing.T) {
	f := testField(t)
	c, err := Compress(f, DefaultConfig(), "Ex", 0)
	if err != nil {
		t.Fatal(err)
	}
	hier, _ := storage.DefaultHierarchy(3) // field has 5 levels
	if err := c.WriteTiered(filepath.Join(t.TempDir(), "x"), hier); err == nil {
		t.Fatal("placement/level mismatch accepted")
	}
}
