package core

import (
	"context"
	"fmt"

	"pmgard/internal/lossless"
	"pmgard/internal/servecache"
	"pmgard/internal/storage"
)

// PlaneStore materializes decompressed plane bitsets from a segment source
// with full serve-path validation: coordinates are bounds-checked against
// the header, the compressed payload length is cross-checked against the
// manifest (a wrong-size segment is data corruption, not a plausible
// plane), and the lossless stage is resolved once at construction. It is
// the store-facing half of a shared session's fetch path, exported so
// servers that need servecache.Source semantics without a Session — the
// shard tier's node-side /planes endpoint — reuse exactly the session's
// read discipline. It is safe for concurrent use when src is.
type PlaneStore struct {
	h     *Header
	src   SegmentSource
	codec lossless.Codec
}

// NewPlaneStore returns a plane store over h and src. src may be nil for a
// store that is never fetched from (a remote-only session); Fetch then
// fails cleanly instead of panicking.
func NewPlaneStore(h *Header, src SegmentSource) (*PlaneStore, error) {
	lc, err := lossless.ByName(h.CodecName)
	if err != nil {
		return nil, err
	}
	return &PlaneStore{h: h, src: src, codec: lc}, nil
}

// FetchPlane implements servecache.Source by reading and decompressing the
// keyed plane from the store.
func (p *PlaneStore) FetchPlane(key servecache.Key) ([]byte, int64, error) {
	return p.Fetch(context.Background(), key.Level, key.Plane)
}

// FetchPlaneCtx implements servecache.SourceCtx; ctx is typically the
// cache's flight context, alive as long as any waiter wants the plane.
func (p *PlaneStore) FetchPlaneCtx(ctx context.Context, key servecache.Key) ([]byte, int64, error) {
	return p.Fetch(ctx, key.Level, key.Plane)
}

// Fetch reads plane (level, plane) from the store and decompresses it. It
// returns the plane bitset and the compressed payload bytes the fetch
// moved; on error the payload is the bytes a failed transfer still
// delivered (callers account them as wasted). Out-of-range coordinates
// fail before any I/O.
func (p *PlaneStore) Fetch(ctx context.Context, level, plane int) ([]byte, int64, error) {
	if p.src == nil {
		return nil, 0, fmt.Errorf("core: plane store has no segment source")
	}
	if level < 0 || level >= len(p.h.Levels) {
		return nil, 0, fmt.Errorf("core: level %d out of [0,%d)", level, len(p.h.Levels))
	}
	if plane < 0 || plane >= p.h.Planes {
		return nil, 0, fmt.Errorf("core: plane %d out of [0,%d) on level %d", plane, p.h.Planes, level)
	}
	seg, err := readSegment(ctx, p.src, level, plane)
	if err != nil {
		return nil, int64(len(seg)), err
	}
	if want := p.h.Levels[level].PlaneSizes[plane]; int64(len(seg)) != want {
		return nil, int64(len(seg)), fmt.Errorf("core: level %d plane %d payload is %d bytes, manifest says %d: %w",
			level, plane, len(seg), want, storage.ErrCorrupt)
	}
	raw, err := p.codec.Decompress(seg, p.h.Levels[level].RawPlaneSize)
	if err != nil {
		return nil, int64(len(seg)), fmt.Errorf("core: level %d plane %d: %w", level, plane, err)
	}
	return raw, int64(len(seg)), nil
}
