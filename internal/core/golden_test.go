package core

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"pmgard/internal/grid"
	"pmgard/internal/lossless"
)

// TestStoredFormatStability pins the on-disk representation: a fixed field
// compressed with the raw codec (DEFLATE output may legitimately change
// between Go releases) must produce byte-identical segments and header
// metadata forever. If this test fails, the format version must be bumped
// and a migration documented — silent format drift corrupts archives.
func TestStoredFormatStability(t *testing.T) {
	f := grid.New(9, 9, 9)
	for i := range f.Data() {
		// Deterministic, irrational-step pattern exercising signs and scales.
		f.Data()[i] = float64((i*2654435761)%1000-500) / 37.0
	}
	cfg := DefaultConfig()
	cfg.Codec = lossless.Raw()
	c, err := Compress(f, cfg, "golden", 0)
	if err != nil {
		t.Fatal(err)
	}
	hash := sha256.New()
	h := &c.Header
	for l := range h.Levels {
		for k := 0; k < h.Planes; k++ {
			seg, err := c.Segment(l, k)
			if err != nil {
				t.Fatal(err)
			}
			hash.Write(seg)
		}
	}
	const want = "c041723842deafb9f3d937e7bfcd0757f259a60efc395274b4944130611b7706"
	if got := hex.EncodeToString(hash.Sum(nil)); got != want {
		t.Fatalf("stored plane bytes changed: digest %s, want %s\n"+
			"If this change is intentional, bump the format version and update the digest.", got, want)
	}
	// Header invariants that downstream readers rely on.
	if h.Planes != 32 || len(h.Levels) != 5 || h.CodecName != "raw" {
		t.Fatalf("header shape drifted: %+v", h)
	}
}
