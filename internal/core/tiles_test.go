package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"pmgard/internal/fieldio"
	"pmgard/internal/grid"
)

// writeSeededFieldFile stores a seeded field for the out-of-core tests.
func writeSeededFieldFile(t *testing.T, seed int64, dims ...int) (string, *grid.Tensor) {
	t.Helper()
	f := seededField(seed, dims...)
	path := filepath.Join(t.TempDir(), "field.bin")
	if err := fieldio.Write(path, fieldio.Meta{Field: "tiled", Timestep: 4}, f); err != nil {
		t.Fatal(err)
	}
	return path, f
}

// TestCompressTiledUnderBudget is the acceptance check for the out-of-core
// path: a field refactors under a memory budget far below its
// materialized size, with the peak asserted through the tile allocator's
// accounting hook, and the result round-trips within the requested
// relative bound.
func TestCompressTiledUnderBudget(t *testing.T) {
	dims := []int{48, 24, 24}
	path, f := writeSeededFieldFile(t, 9, dims...)
	fieldBytes := int64(8 * f.Len())
	budget := fieldBytes / 4

	r, err := fieldio.OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	cfg := DefaultConfig()
	cfg.Decompose.Levels = 3
	var alloc fieldio.TileAlloc
	dir := filepath.Join(t.TempDir(), "tiles")
	ts, err := CompressTiled(r, cfg, dir, TileOptions{MemBudget: budget, Alloc: &alloc})
	if err != nil {
		t.Fatal(err)
	}
	if peak := alloc.PeakBytes(); peak > budget {
		t.Fatalf("peak tile bytes %d exceed budget %d", peak, budget)
	}
	if peak := alloc.PeakBytes(); peak >= fieldBytes/2 {
		t.Fatalf("peak tile bytes %d not far below materialized size %d", peak, fieldBytes)
	}
	if live := alloc.LiveBytes(); live != 0 {
		t.Fatalf("%d tile bytes leaked", live)
	}
	if len(ts.Tiles) < 2 {
		t.Fatalf("budget produced %d tiles, want several", len(ts.Tiles))
	}
	if ts.ValueRange != f.Range() {
		t.Fatalf("manifest range %g, want global %g", ts.ValueRange, f.Range())
	}

	// Manifest re-opens and the tiles partition the field.
	ts2, err := OpenTileSet(dir)
	if err != nil {
		t.Fatal(err)
	}
	covered := 0
	for _, ti := range ts2.Tiles {
		n := 1
		for _, s := range ti.Shape {
			n *= s
		}
		covered += n
	}
	if covered != f.Len() {
		t.Fatalf("tiles cover %d of %d cells", covered, f.Len())
	}

	// Streaming retrieval honors the relative bound against the original.
	rel := 1e-4
	out := filepath.Join(t.TempDir(), "recon.bin")
	_, stats, err := RetrieveTiledRel(dir, rel, out, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.BytesFetched <= 0 || stats.BytesFetched > stats.BytesStored {
		t.Fatalf("fetched %d of %d stored bytes", stats.BytesFetched, stats.BytesStored)
	}
	_, rec, err := fieldio.Read(out)
	if err != nil {
		t.Fatal(err)
	}
	tol := rel * ts.ValueRange
	if got := grid.MaxAbsDiff(f, rec); got > tol {
		t.Fatalf("tiled round trip error %g exceeds tolerance %g", got, tol)
	}
}

// TestCompressTiledTileBytesMatchStandalone checks a tile's artifact is
// byte-identical to compressing that slab alone through CompressToFile —
// the tiled path adds orchestration, not a new format.
func TestCompressTiledTileBytesMatchStandalone(t *testing.T) {
	dims := []int{12, 9, 9}
	path, f := writeSeededFieldFile(t, 21, dims...)
	r, err := fieldio.OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	cfg := DefaultConfig()
	cfg.Decompose.Levels = 2
	dir := filepath.Join(t.TempDir(), "tiles")
	ts, err := CompressTiled(r, cfg, dir, TileOptions{SlabThickness: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.Tiles) != 2 {
		t.Fatalf("got %d tiles, want 2", len(ts.Tiles))
	}
	slab := f.Slice([]int{6, 0, 0}, []int{12, 9, 9})
	ref := filepath.Join(t.TempDir(), "ref.pmgd")
	if _, err := CompressToFile(slab, cfg, "tiled", 4, ref); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dir, ts.Tiles[1].File))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("tile artifact differs from standalone compression (%d vs %d bytes)", len(got), len(want))
	}
}

// TestCompressTiledBudgetTooSmall checks an impossible budget is refused
// up front rather than silently overshot.
func TestCompressTiledBudgetTooSmall(t *testing.T) {
	path, _ := writeSeededFieldFile(t, 3, 16, 32, 32)
	r, err := fieldio.OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	_, err = CompressTiled(r, DefaultConfig(), t.TempDir(), TileOptions{MemBudget: 1024})
	if err == nil {
		t.Fatal("accepted a budget smaller than two minimal slabs")
	}
}

// TestCompressTiledReadError checks a truncated source fails cleanly and
// returns every tile buffer to the allocator.
func TestCompressTiledReadError(t *testing.T) {
	path, _ := writeSeededFieldFile(t, 5, 16, 8, 8)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-8*100); err != nil {
		t.Fatal(err)
	}
	r, err := fieldio.OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var alloc fieldio.TileAlloc
	cfg := DefaultConfig()
	cfg.Decompose.Levels = 2
	_, err = CompressTiled(r, cfg, t.TempDir(), TileOptions{SlabThickness: 4, Alloc: &alloc})
	if err == nil {
		t.Fatal("compressing a truncated field succeeded")
	}
	if live := alloc.LiveBytes(); live != 0 {
		t.Fatalf("%d tile bytes leaked on the error path", live)
	}
}
