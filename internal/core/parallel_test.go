package core

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"pmgard/internal/grid"
	"pmgard/internal/retrieval"
)

// seededField builds a deterministic smooth-plus-noise field.
func seededField(seed int64, dims ...int) *grid.Tensor {
	rng := rand.New(rand.NewSource(seed))
	f := grid.New(dims...)
	data := f.Data()
	for i := range data {
		data[i] = math.Sin(float64(i)/17.0) + 0.05*rng.NormFloat64()
	}
	return f
}

// TestCompressParallelGoldenEquivalence is the golden equivalence test of
// the concurrency work: the full refactored artifact — every compressed
// (level, plane) segment, the per-level error matrices, and the marshaled
// header (manifest) bytes — must be byte-for-byte identical at every worker
// count.
func TestCompressParallelGoldenEquivalence(t *testing.T) {
	f := seededField(77, 17, 17, 17)
	mkCfg := func(workers int) Config {
		cfg := DefaultConfig()
		cfg.Parallelism = workers
		return cfg
	}
	ref, err := Compress(f, mkCfg(1), "golden-par", 3)
	if err != nil {
		t.Fatal(err)
	}
	refManifest, err := json.Marshal(&ref.Header)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		c, err := Compress(f, mkCfg(workers), "golden-par", 3)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		manifest, err := json.Marshal(&c.Header)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(manifest, refManifest) {
			t.Fatalf("workers=%d: manifest bytes differ from sequential", workers)
		}
		for l, lm := range c.Header.Levels {
			for b, e := range lm.ErrMatrix {
				if math.Float64bits(e) != math.Float64bits(ref.Header.Levels[l].ErrMatrix[b]) {
					t.Fatalf("workers=%d: ErrMatrix[%d][%d] differs", workers, l, b)
				}
			}
			for k := 0; k < c.Header.Planes; k++ {
				seg, err := c.Segment(l, k)
				if err != nil {
					t.Fatal(err)
				}
				want, err := ref.Segment(l, k)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(seg, want) {
					t.Fatalf("workers=%d: segment (%d,%d) differs from sequential", workers, l, k)
				}
			}
		}
	}
}

// TestRetrieveParallelGoldenEquivalence asserts the read path's determinism:
// reconstructions are bit-identical at every worker count, through both the
// plain and the reduced-resolution retrieval.
func TestRetrieveParallelGoldenEquivalence(t *testing.T) {
	f := seededField(78, 17, 17, 17)
	c, err := Compress(f, DefaultConfig(), "golden-par", 0)
	if err != nil {
		t.Fatal(err)
	}
	h := &c.Header
	plan, err := retrieval.GreedyPlan(h.LevelInfos(), h.TheoryEstimator(), h.AbsTolerance(1e-4))
	if err != nil {
		t.Fatal(err)
	}
	want, err := RetrieveWorkers(h, c, plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	resPlanes := make([]int, len(h.Levels))
	for l := 0; l < 3; l++ {
		resPlanes[l] = 12
	}
	wantCoarse, _, err := RetrieveResolution(h, c, resPlanes, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		got, err := RetrieveWorkers(h, c, plan, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got.Data() {
			if math.Float64bits(v) != math.Float64bits(want.Data()[i]) {
				t.Fatalf("workers=%d: sample %d differs", workers, i)
			}
		}
		gotCoarse, _, err := RetrieveResolution(h, c, resPlanes, 2)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range gotCoarse.Data() {
			if math.Float64bits(v) != math.Float64bits(wantCoarse.Data()[i]) {
				t.Fatalf("workers=%d: coarse sample %d differs", workers, i)
			}
		}
	}
}
