package core

import (
	"context"
	"testing"

	"pmgard/internal/obs"
	"pmgard/internal/servecache"
)

// TestSessionRefineSpanTree verifies the request-scoped span tree a shared
// refine records: session stages parent under the request root carried by
// ctx, cache and plane fetch spans nest below the fetch level, and every
// span carries the request's trace id.
func TestSessionRefineSpanTree(t *testing.T) {
	f := testField(t)
	c, err := Compress(f, DefaultConfig(), "Ex", 0)
	if err != nil {
		t.Fatal(err)
	}
	h := &c.Header
	cache := servecache.New(0)

	const traceID = "abcdabcdabcdabcdabcdabcdabcdabcd"
	tr := obs.NewTracer(0)
	root := tr.StartTrace("http.refine", traceID)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ctx = obs.ContextWithSpan(ctx, root)

	s, err := NewSharedSession(h, SharedSource{Src: c, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := s.RefineCtx(ctx, h.TheoryEstimator(), h.AbsTolerance(1e-3)); err != nil {
		t.Fatal(err)
	}
	root.End()

	spans := tr.Timeline()
	byID := make(map[int64]obs.SpanRecord, len(spans))
	counts := map[string]int{}
	for _, rec := range spans {
		byID[rec.ID] = rec
		counts[rec.Name]++
		if rec.TraceID != traceID {
			t.Errorf("span %s trace id %q, want %q", rec.Name, rec.TraceID, traceID)
		}
	}
	for _, name := range []string{"session.refine", "session.fetch_level", "servecache.get", "session.fetch_plane", "session.decode", "session.recompose"} {
		if counts[name] == 0 {
			t.Errorf("no %q span recorded (have %v)", name, counts)
		}
	}
	// Parent links: refine under the request root, fetch levels under
	// refine, cache gets under a fetch level, plane fetches under a cache
	// get (the flight context), decode/recompose under refine.
	for _, rec := range spans {
		parent, ok := byID[rec.Parent]
		switch rec.Name {
		case "session.refine":
			if !ok || parent.Name != "http.refine" {
				t.Errorf("session.refine parent = %+v, want http.refine", parent)
			}
		case "session.fetch_level", "session.decode", "session.recompose":
			if !ok || parent.Name != "session.refine" {
				t.Errorf("%s parent = %+v, want session.refine", rec.Name, parent)
			}
		case "servecache.get":
			if !ok || parent.Name != "session.fetch_level" {
				t.Errorf("servecache.get parent = %+v, want session.fetch_level", parent)
			}
		case "session.fetch_plane":
			if !ok || parent.Name != "servecache.get" {
				t.Errorf("session.fetch_plane parent = %+v, want servecache.get", parent)
			}
		}
	}
	// Stage spans must fit inside the request span.
	rootRec := byID[findRoot(t, spans)]
	for _, rec := range spans {
		if rec.ID == rootRec.ID {
			continue
		}
		if rec.StartNs < rootRec.StartNs || rec.StartNs+rec.DurNs > rootRec.StartNs+rootRec.DurNs {
			t.Errorf("span %s [%d +%d] escapes root [%d +%d]", rec.Name, rec.StartNs, rec.DurNs, rootRec.StartNs, rootRec.DurNs)
		}
	}
}

func findRoot(t *testing.T, spans []obs.SpanRecord) int64 {
	t.Helper()
	for _, rec := range spans {
		if rec.Parent == 0 {
			return rec.ID
		}
	}
	t.Fatal("no root span")
	return 0
}

// TestSessionCacheHits pins the CacheHits accessor: a second session over
// the same warm cache obtains every plane as a hit.
func TestSessionCacheHits(t *testing.T) {
	f := testField(t)
	c, err := Compress(f, DefaultConfig(), "Ex", 0)
	if err != nil {
		t.Fatal(err)
	}
	h := &c.Header
	cache := servecache.New(0)
	tol := h.AbsTolerance(1e-3)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	first, err := NewSharedSession(h, SharedSource{Src: c, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := first.RefineCtx(ctx, h.TheoryEstimator(), tol); err != nil {
		t.Fatal(err)
	}
	if first.CacheHits() != 0 {
		t.Fatalf("cold session reports %d cache hits", first.CacheHits())
	}

	second, err := NewSharedSession(h, SharedSource{Src: c, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := second.RefineCtx(ctx, h.TheoryEstimator(), tol); err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, n := range second.Fetched() {
		want += int64(n)
	}
	if got := second.CacheHits(); got != want {
		t.Fatalf("warm session cache hits = %d, want %d (all fetched planes)", got, want)
	}
}
