package core

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime/debug"
	"testing"

	"pmgard/internal/bitplane"
	"pmgard/internal/bufpool"
	"pmgard/internal/grid"
	"pmgard/internal/lossless"
	"pmgard/internal/storage"
)

// TestCompressToFileGoldenEquivalence extends the golden equivalence
// contract to the streaming path: the file CompressToFile streams to disk
// must be byte-for-byte the file the in-memory Compress + WriteFile path
// produces, at workers 1, 2, 4 and 8.
func TestCompressToFileGoldenEquivalence(t *testing.T) {
	f := seededField(77, 17, 17, 17)
	dir := t.TempDir()

	cfg := DefaultConfig()
	cfg.Parallelism = 1
	ref, err := Compress(f, cfg, "golden-stream", 3)
	if err != nil {
		t.Fatal(err)
	}
	refPath := filepath.Join(dir, "ref.pmgd")
	if err := ref.WriteFile(refPath); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 4, 8} {
		cfg := DefaultConfig()
		cfg.Parallelism = workers
		path := filepath.Join(dir, "stream.pmgd")
		h, err := CompressToFile(f, cfg, "golden-stream", 3, path)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: streamed file differs from in-memory path (%d vs %d bytes)",
				workers, len(got), len(want))
		}
		if h.TotalBytes() != ref.Header.TotalBytes() {
			t.Fatalf("workers=%d: header TotalBytes %d, want %d", workers, h.TotalBytes(), ref.Header.TotalBytes())
		}
		// The streamed artifact round-trips through the normal reader.
		h2, st, err := OpenFile(path)
		if err != nil {
			t.Fatal(err)
		}
		rec, _, err := RetrieveTolerance(h2, StoreSource{Store: st}, h2.TheoryEstimator(), h2.AbsTolerance(1e-4))
		st.Close()
		if err != nil {
			t.Fatalf("workers=%d: retrieve from streamed file: %v", workers, err)
		}
		if got := grid.MaxAbsDiff(f, rec); got > h2.AbsTolerance(1e-4) {
			t.Fatalf("workers=%d: error %g exceeds tolerance", workers, got)
		}
	}
}

// TestCompressToTieredGoldenEquivalence checks the streaming tiered path
// against Compress + WriteTiered: identical level files and identical
// manifest bytes.
func TestCompressToTieredGoldenEquivalence(t *testing.T) {
	f := seededField(31, 17, 17, 17)
	cfg := DefaultConfig()
	cfg.Parallelism = 1
	c, err := Compress(f, cfg, "golden-tier", 0)
	if err != nil {
		t.Fatal(err)
	}
	hier, err := storage.DefaultHierarchy(len(c.Header.Levels))
	if err != nil {
		t.Fatal(err)
	}
	refDir := filepath.Join(t.TempDir(), "ref")
	if err := c.WriteTiered(refDir, hier); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4} {
		cfg := DefaultConfig()
		cfg.Parallelism = workers
		dir := filepath.Join(t.TempDir(), "stream")
		if _, err := CompressToTiered(f, cfg, "golden-tier", 0, dir, hier); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		compareTrees(t, refDir, dir, workers)
	}
}

// compareTrees asserts two directory trees hold identical files.
func compareTrees(t *testing.T, wantRoot, gotRoot string, workers int) {
	t.Helper()
	err := filepath.Walk(wantRoot, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		rel, err := filepath.Rel(wantRoot, path)
		if err != nil {
			return err
		}
		want, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		got, err := os.ReadFile(filepath.Join(gotRoot, rel))
		if err != nil {
			t.Errorf("workers=%d: %s: %v", workers, rel, err)
			return nil
		}
		if !bytes.Equal(got, want) {
			t.Errorf("workers=%d: %s differs (%d vs %d bytes)", workers, rel, len(got), len(want))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCompressToSinkError checks that a failing sink aborts the pipeline
// with its error and leaves no committed file behind.
func TestCompressToSinkError(t *testing.T) {
	f := seededField(5, 9, 9, 9)
	cfg := DefaultConfig()
	cfg.Decompose.Levels = 2
	for _, workers := range []int{1, 4} {
		cfg.Parallelism = workers
		path := filepath.Join(t.TempDir(), "out.pmgd")
		// A sink that fails on a mid-stream segment.
		sink := &failingSink{failAt: storage.SegmentID{Level: 1, Plane: 3}}
		_, err := CompressTo(f, cfg, "f", 0, sink)
		if err == nil {
			t.Fatalf("workers=%d: sink error not surfaced", workers)
		}
		// CompressToFile with a failing segment write leaves no artifact.
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("workers=%d: artifact exists after failure", workers)
		}
	}
}

type failingSink struct {
	failAt storage.SegmentID
}

func (s *failingSink) WriteSegment(id storage.SegmentID, payload []byte) error {
	if id == s.failAt {
		return os.ErrInvalid
	}
	return nil
}

// TestStreamingEncodeSteadyStateAllocs is the CI allocation guard for the
// streaming encode path: one steady-state pipeline cycle — encode a
// level's bit-planes, deflate each into a recycled buffer, account it, and
// release everything back to the pools — must not allocate.
func TestStreamingEncodeSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under -race")
	}
	coeffs := make([]float64, 4096)
	for i := range coeffs {
		coeffs[i] = float64(i%97) / 97.0
	}
	codec := lossless.Deflate()
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	cycle := func() {
		enc, err := bitplane.EncodeLevel(coeffs, 32)
		if err != nil {
			panic(err)
		}
		raw := enc.PlaneSizeRaw()
		for k := 0; k < 32; k++ {
			dst := bufpool.Bytes(raw + raw/8 + 64)[:0]
			out, err := lossless.AppendCompress(codec, dst, enc.Bits[k])
			if err != nil {
				panic(err)
			}
			bufpool.PutBytes(out)
		}
		enc.Release()
	}
	// Warm the pools.
	for i := 0; i < 3; i++ {
		cycle()
	}
	if avg := testing.AllocsPerRun(20, cycle); avg != 0 {
		t.Fatalf("steady-state streaming encode allocates %.2f allocs/op, want 0", avg)
	}
}
