package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"pmgard/internal/grid"
	"pmgard/internal/obs"
	"pmgard/internal/servecache"
	"pmgard/internal/storage"
)

// countingSource counts raw store reads, the quantity the singleflight
// dedup contract bounds.
type countingSource struct {
	src   SegmentSource
	reads atomic.Int64
}

func (c *countingSource) Segment(level, plane int) ([]byte, error) {
	c.reads.Add(1)
	return c.src.Segment(level, plane)
}

// sharedFixture compresses the test field once for the shared-cache tests.
func sharedFixture(t *testing.T) (*Header, *Compressed) {
	t.Helper()
	f := testField(t)
	c, err := Compress(f, DefaultConfig(), "Ex", 0)
	if err != nil {
		t.Fatal(err)
	}
	return &c.Header, c
}

// TestSharedSessionByteIdentity is the correctness core of the cache: for
// 1, 2 and 8 concurrent sessions sharing one cache, every reconstruction
// is byte-identical to an uncached session's.
func TestSharedSessionByteIdentity(t *testing.T) {
	h, c := sharedFixture(t)
	est := h.TheoryEstimator()
	tol := h.AbsTolerance(1e-4)

	plain, err := NewSession(h, c)
	if err != nil {
		t.Fatal(err)
	}
	want, _, _, err := plain.Refine(est, tol)
	if err != nil {
		t.Fatal(err)
	}

	for _, sessions := range []int{1, 2, 8} {
		cache := servecache.New(0)
		recs := make([]*grid.Tensor, sessions)
		bytesFetched := make([]int64, sessions)
		errs := make([]error, sessions)
		var wg sync.WaitGroup
		for i := 0; i < sessions; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				s, err := NewSharedSession(h, SharedSource{Src: c, Cache: cache})
				if err != nil {
					errs[i] = err
					return
				}
				recs[i], _, _, errs[i] = s.Refine(est, tol)
				bytesFetched[i] = s.BytesFetched()
			}(i)
		}
		wg.Wait()
		for i := 0; i < sessions; i++ {
			if errs[i] != nil {
				t.Fatalf("sessions=%d: session %d: %v", sessions, i, errs[i])
			}
			if grid.MaxAbsDiff(recs[i], want) != 0 {
				t.Fatalf("sessions=%d: session %d reconstruction differs from uncached", sessions, i)
			}
			if bytesFetched[i] != plain.BytesFetched() {
				t.Fatalf("sessions=%d: session %d BytesFetched = %d, uncached session = %d (cache must not change per-session accounting)",
					sessions, i, bytesFetched[i], plain.BytesFetched())
			}
		}
	}
}

// TestSharedSessionDeduplicatesStoreReads is the acceptance assertion: two
// sessions refining the same field to the same tolerance through the shared
// cache cost at most one single-session plane count in store reads.
func TestSharedSessionDeduplicatesStoreReads(t *testing.T) {
	h, c := sharedFixture(t)
	est := h.TheoryEstimator()
	tol := h.AbsTolerance(1e-4)

	// Plane count one uncached session fetches at this tolerance.
	solo, err := NewSession(h, c)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := solo.Refine(est, tol); err != nil {
		t.Fatal(err)
	}
	var soloPlanes int64
	for _, b := range solo.Fetched() {
		soloPlanes += int64(b)
	}

	cache := servecache.New(0)
	counted := &countingSource{src: c}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := NewSharedSession(h, SharedSource{Src: counted, Cache: cache})
			if err != nil {
				errs[i] = err
				return
			}
			_, _, _, errs[i] = s.Refine(est, tol)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
	if got := counted.reads.Load(); got > soloPlanes {
		t.Fatalf("2 shared sessions issued %d store reads, want <= %d (single-session plane count)", got, soloPlanes)
	}
	st := cache.Stats()
	if st.Hits+st.Coalesced == 0 {
		t.Fatalf("cache recorded no sharing (stats %+v) across two identical refinements", st)
	}
	if st.Misses != soloPlanes {
		t.Fatalf("cache misses = %d, want %d (one per plane)", st.Misses, soloPlanes)
	}
}

// TestSharedSessionEvictionRefetch forces eviction churn with a budget that
// holds only a fraction of the working set: reconstructions must still be
// byte-identical, at the cost of extra (correct) refetches.
func TestSharedSessionEvictionRefetch(t *testing.T) {
	h, c := sharedFixture(t)
	est := h.TheoryEstimator()
	tol := h.AbsTolerance(1e-4)

	plain, err := NewSession(h, c)
	if err != nil {
		t.Fatal(err)
	}
	want, _, _, err := plain.Refine(est, tol)
	if err != nil {
		t.Fatal(err)
	}

	// Budget of three raw planes: every level's RawPlaneSize is the same
	// order, so the cache thrashes and refetches constantly.
	budget := int64(3 * h.Levels[0].RawPlaneSize)
	cache := servecache.New(budget)
	for i := 0; i < 2; i++ {
		s, err := NewSharedSession(h, SharedSource{Src: c, Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		rec, _, _, err := s.Refine(est, tol)
		if err != nil {
			t.Fatal(err)
		}
		if grid.MaxAbsDiff(rec, want) != 0 {
			t.Fatalf("pass %d: reconstruction through a thrashing cache differs", i)
		}
		if s.BytesFetched() != plain.BytesFetched() {
			t.Fatalf("pass %d: BytesFetched = %d, want %d", i, s.BytesFetched(), plain.BytesFetched())
		}
	}
	st := cache.Stats()
	if st.Evictions == 0 {
		t.Fatalf("budget %d produced no evictions (stats %+v); test is not exercising the LRU", budget, st)
	}
	if cache.Bytes() > budget {
		t.Fatalf("cache holds %d bytes over budget %d", cache.Bytes(), budget)
	}
}

// TestSessionConcurrentRefineTo drives one session from many goroutines —
// the serving-layer hazard — and checks the state converges exactly as a
// sequential refinement would. Run under -race in CI.
func TestSessionConcurrentRefineTo(t *testing.T) {
	h, c := sharedFixture(t)
	s, err := NewSession(h, c)
	if err != nil {
		t.Fatal(err)
	}
	targets := make([][]int, 8)
	for i := range targets {
		tg := make([]int, len(h.Levels))
		for l := range tg {
			tg[l] = (i + l) % (h.Planes + 1)
		}
		targets[i] = tg
	}
	var wg sync.WaitGroup
	errs := make([]error, len(targets))
	for i, tg := range targets {
		wg.Add(1)
		go func(i int, tg []int) {
			defer wg.Done()
			_, errs[i] = s.RefineTo(tg)
		}(i, tg)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
	// The session holds the per-level max of every target (it never
	// un-reads), and its byte accounting matches the manifest exactly.
	wantFetched := make([]int, len(h.Levels))
	for _, tg := range targets {
		for l, b := range tg {
			if b > wantFetched[l] {
				wantFetched[l] = b
			}
		}
	}
	got := s.Fetched()
	for l := range wantFetched {
		if got[l] != wantFetched[l] {
			t.Fatalf("level %d fetched %d planes, want %d", l, got[l], wantFetched[l])
		}
	}
	if want := sessionBytes(h, got); s.BytesFetched() != want {
		t.Fatalf("BytesFetched = %d, want %d", s.BytesFetched(), want)
	}
}

// TestSessionRejectsPayloadSizeMismatch is the accounting regression test:
// a store returning a payload whose length disagrees with the manifest must
// error (classified permanent — it is corruption), and BytesFetched must
// count the bytes actually delivered, not the manifest's claim.
func TestSessionRejectsPayloadSizeMismatch(t *testing.T) {
	h, c := sharedFixture(t)
	good, err := c.Segment(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	oversized := append(append([]byte(nil), good...), 0xAA, 0xBB, 0xCC)
	lying := &scriptedSource{
		src: c,
		scripts: map[[2]int][]scriptStep{
			{0, 0}: {{payload: oversized}},
		},
	}
	s, err := NewSession(h, lying)
	if err != nil {
		t.Fatal(err)
	}
	target := make([]int, len(h.Levels))
	target[0] = 1
	_, err = s.RefineTo(target)
	if err == nil {
		t.Fatal("session accepted a payload longer than the manifest's plane size")
	}
	if !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("size mismatch error = %v, want it to wrap storage.ErrCorrupt", err)
	}
	if storage.Classify(err) != storage.FaultPermanent {
		t.Fatalf("size mismatch classifies as transient; retrying a lying store is useless")
	}
	if got := s.BytesFetched(); got != int64(len(oversized)) {
		t.Fatalf("BytesFetched = %d, want %d (the bytes actually delivered)", got, len(oversized))
	}
}

// TestSharedSessionCountersMatchUncached pins the metric names the serving
// layer exports and their agreement between cached and uncached paths.
func TestSharedSessionCountersMatchUncached(t *testing.T) {
	h, c := sharedFixture(t)
	est := h.TheoryEstimator()
	tol := h.AbsTolerance(1e-3)

	oPlain := obs.New()
	plain, err := NewSession(h, c)
	if err != nil {
		t.Fatal(err)
	}
	plain.Instrument(oPlain)
	if _, _, _, err := plain.Refine(est, tol); err != nil {
		t.Fatal(err)
	}

	oShared := obs.New()
	cache := servecache.New(0)
	cache.Instrument(oShared)
	// Warm pass then a second session: the second is served from cache.
	for i := 0; i < 2; i++ {
		s, err := NewSharedSession(h, SharedSource{Src: c, Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		s.Instrument(oShared)
		if _, _, _, err := s.Refine(est, tol); err != nil {
			t.Fatal(err)
		}
	}
	plainSnap := oPlain.Metrics.Snapshot()
	sharedSnap := oShared.Metrics.Snapshot()
	// Two sessions fetched twice the planes and bytes of one...
	if got, want := sharedSnap.Counters["core.session.bytes_fetched"], 2*plainSnap.Counters["core.session.bytes_fetched"]; got != want {
		t.Fatalf("shared bytes_fetched = %d, want %d", got, want)
	}
	if got, want := sharedSnap.Counters["core.session.planes_fetched"], 2*plainSnap.Counters["core.session.planes_fetched"]; got != want {
		t.Fatalf("shared planes_fetched = %d, want %d", got, want)
	}
	// ...but the cache served the second session's planes without misses.
	if got, want := sharedSnap.Counters["servecache.misses"], plainSnap.Counters["core.session.planes_fetched"]; got != want {
		t.Fatalf("servecache.misses = %d, want %d", got, want)
	}
	if got, want := sharedSnap.Counters["servecache.hits"], plainSnap.Counters["core.session.planes_fetched"]; got != want {
		t.Fatalf("servecache.hits = %d, want %d", got, want)
	}
	if sharedSnap.Gauges["servecache.bytes"] <= 0 {
		t.Fatal("servecache.bytes gauge not exported")
	}
}
