package core

import (
	"fmt"

	"pmgard/internal/bitplane"
	"pmgard/internal/decompose"
	"pmgard/internal/grid"
	"pmgard/internal/lossless"
	"pmgard/internal/retrieval"
)

// Session is a stateful progressive retrieval: it remembers which planes
// have already been fetched and, on each Refine call, reads only the delta
// needed to reach the new (tighter) tolerance. This is the paper's core
// usage pattern — an analyst starts with a coarse view and progressively
// augments accuracy (§II-A) — and the reason bit-plane encodings are used
// at all: earlier reads are never wasted.
type Session struct {
	header *Header
	src    SegmentSource
	codec  lossless.Codec
	dec    *decompose.Decomposition
	// fetched[l] is how many planes of level l have been read so far.
	fetched []int
	// planes[l][k] caches the decompressed plane bitsets.
	planes [][][]byte
	// bytes is the cumulative payload fetched.
	bytes int64
}

// NewSession opens a progressive retrieval session over a compressed field.
func NewSession(h *Header, src SegmentSource) (*Session, error) {
	codec, err := lossless.ByName(h.CodecName)
	if err != nil {
		return nil, err
	}
	dec, err := decompose.NewZero(h.Dims, h.DecomposeOptions())
	if err != nil {
		return nil, err
	}
	planes := make([][][]byte, len(h.Levels))
	for l := range planes {
		planes[l] = make([][]byte, h.Planes)
	}
	return &Session{
		header:  h,
		src:     src,
		codec:   codec,
		dec:     dec,
		fetched: make([]int, len(h.Levels)),
		planes:  planes,
	}, nil
}

// Fetched returns the per-level plane counts read so far.
func (s *Session) Fetched() []int {
	return append([]int(nil), s.fetched...)
}

// BytesFetched returns the cumulative payload bytes read by this session.
func (s *Session) BytesFetched() int64 { return s.bytes }

// RefineTo extends the session to at least the given per-level plane
// counts, fetching only planes not yet read, and returns the
// reconstruction. Plane counts below what is already fetched are kept (a
// session never un-reads data).
func (s *Session) RefineTo(target []int) (*grid.Tensor, error) {
	if len(target) != len(s.header.Levels) {
		return nil, fmt.Errorf("core: session target has %d levels, header %d", len(target), len(s.header.Levels))
	}
	for l, want := range target {
		if want < 0 || want > s.header.Planes {
			return nil, fmt.Errorf("core: session target level %d plane count %d out of range", l, want)
		}
		for k := s.fetched[l]; k < want; k++ {
			seg, err := s.src.Segment(l, k)
			if err != nil {
				return nil, err
			}
			raw, err := s.codec.Decompress(seg, s.header.Levels[l].RawPlaneSize)
			if err != nil {
				return nil, fmt.Errorf("core: session level %d plane %d: %w", l, k, err)
			}
			s.planes[l][k] = raw
			s.bytes += s.header.Levels[l].PlaneSizes[k]
		}
		if want > s.fetched[l] {
			s.fetched[l] = want
		}
	}
	return s.reconstruct()
}

// Refine plans greedily under est at an absolute tolerance, never dropping
// below the already-fetched planes, fetches the delta and reconstructs.
// It returns the reconstruction and the plan actually executed.
func (s *Session) Refine(est retrieval.ErrorEstimator, tol float64) (*grid.Tensor, retrieval.Plan, error) {
	plan, err := retrieval.GreedyPlan(s.header.LevelInfos(), est, tol)
	if err != nil {
		return nil, retrieval.Plan{}, err
	}
	target := plan.Planes
	for l, have := range s.fetched {
		if have > target[l] {
			target[l] = have
		}
	}
	rec, err := s.RefineTo(target)
	if err != nil {
		return nil, retrieval.Plan{}, err
	}
	exec, err := retrieval.PlanForPlanes(s.header.LevelInfos(), target)
	if err != nil {
		return nil, retrieval.Plan{}, err
	}
	return rec, exec, nil
}

// reconstruct decodes the fetched planes and recomposes the field.
func (s *Session) reconstruct() (*grid.Tensor, error) {
	for l, lm := range s.header.Levels {
		enc := &bitplane.LevelEncoding{
			N:        lm.N,
			Planes:   s.header.Planes,
			Exponent: lm.Exponent,
			Bits:     s.planes[l],
		}
		enc.DecodePartial(s.fetched[l], s.dec.Coeffs(l))
	}
	return s.dec.Recompose(), nil
}
