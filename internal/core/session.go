package core

import (
	"context"
	"fmt"
	"sync"

	"pmgard/internal/bitplane"
	"pmgard/internal/codec"
	"pmgard/internal/grid"
	"pmgard/internal/obs"
	"pmgard/internal/retrieval"
	"pmgard/internal/servecache"
	"pmgard/internal/storage"
)

// Session is a stateful progressive retrieval: it remembers which planes
// have already been fetched and, on each Refine call, reads only the delta
// needed to reach the new (tighter) tolerance. This is the paper's core
// usage pattern — an analyst starts with a coarse view and progressively
// augments accuracy (§II-A) — and the reason bit-plane encodings are used
// at all: earlier reads are never wasted.
//
// A Session is safe for concurrent use: a mutex guards the fetch state, so
// a serving layer may hand one session to multiple handler goroutines.
// Refinements are serialized against each other — cross-request sharing of
// fetch and decompression work belongs in a servecache.Cache shared by many
// sessions (NewSharedSession), not in concurrent refinements of one.
type Session struct {
	header *Header
	src    SegmentSource
	// store is the validating fetch path over src (manifest length check +
	// lossless decompression), shared with the node-side serving tier.
	store *PlaneStore
	// backend is the progressive codec named by the header; dec is its
	// zero-initialized decomposition the fetched planes decode into.
	backend codec.ProgressiveCodec
	dec     codec.Decomposition
	// cache, when non-nil, is consulted before src for decompressed planes;
	// shareID namespaces this session's planes within it.
	cache   *servecache.Cache
	shareID string
	// remote, when non-nil, replaces the store fetch on cache misses: the
	// shard router's sessions materialize planes from remote nodes through
	// it instead of a local segment source.
	remote servecache.SourceCtx
	// mu guards everything below it.
	mu sync.Mutex
	// fetched[l] is how many planes of level l have been read so far.
	fetched []int
	// planes[l][k] caches the decompressed plane bitsets.
	planes [][][]byte
	// bytes is the cumulative payload fetched, including payloads delivered
	// by reads that later failed to decode.
	bytes int64
	// cacheHits counts planes this session obtained from the shared cache
	// without a store fetch (always 0 without a cache).
	cacheHits int64
	// encScratch holds one reusable LevelEncoding shell per level, so
	// reconstruct does not allocate encoding headers on every refinement.
	encScratch []bitplane.LevelEncoding
	// o records session telemetry when set via Instrument; nil disables it.
	o *obs.Obs
}

// Instrument records session telemetry — per-level bytes/planes fetched,
// wasted fetch bytes, refinement spans, degraded-mode counters — into o.
// Call before the first RefineTo/Refine; a nil o (the default) disables
// all of it.
func (s *Session) Instrument(o *obs.Obs) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.o = o
}

// NewSession opens a progressive retrieval session over a compressed field.
func NewSession(h *Header, src SegmentSource) (*Session, error) {
	store, err := NewPlaneStore(h, src)
	if err != nil {
		return nil, err
	}
	backend, err := h.backend()
	if err != nil {
		return nil, err
	}
	dec, err := backend.NewZero(h.Dims, h.CodecOptions(), 0)
	if err != nil {
		return nil, err
	}
	planes := make([][][]byte, len(h.Levels))
	for l := range planes {
		planes[l] = make([][]byte, h.Planes)
	}
	return &Session{
		header:     h,
		src:        src,
		store:      store,
		backend:    backend,
		dec:        dec,
		fetched:    make([]int, len(h.Levels)),
		planes:     planes,
		encScratch: make([]bitplane.LevelEncoding, len(h.Levels)),
	}, nil
}

// SharedSource couples a segment source with a shared decompressed-plane
// cache, the multi-session serving shape: N sessions over the same field
// share fetch and decompression work through the cache, and concurrent
// first readers of a plane coalesce onto a single store read (singleflight).
type SharedSource struct {
	// Src is the underlying segment source. Layer the cache *above* the
	// resilience stack: when Src is a storage.RetryingSource, the retry
	// loop and fault classification for a contended plane also run once
	// per flight instead of once per session.
	Src SegmentSource
	// Cache is the shared plane cache.
	Cache *servecache.Cache
	// FieldID namespaces this field's planes in the cache. Empty derives
	// "<field>@<timestep>" from the header — sufficient unless two distinct
	// stores serve fields with colliding names and timesteps.
	FieldID string
	// Planes, when non-nil, replaces the Src fetch path entirely: cache
	// misses are filled by Planes instead of reading segments from Src (Src
	// may then be nil). This is the shard router's hook — its Planes
	// implementation fans cache misses out to remote node /planes endpoints,
	// and the cache's singleflight collapses concurrent sessions' misses
	// into one network fetch per plane.
	Planes servecache.SourceCtx
}

// NewSharedSession opens a progressive retrieval session whose fetch path
// consults ss.Cache before ss.Src. Per-session semantics are preserved
// exactly: Fetched and BytesFetched report the same values whether a plane
// came from the cache or the store, because cache entries replay the
// compressed payload size their original fetch moved.
func NewSharedSession(h *Header, ss SharedSource) (*Session, error) {
	if ss.Cache == nil {
		return nil, fmt.Errorf("core: shared session needs a cache")
	}
	s, err := NewSession(h, ss.Src)
	if err != nil {
		return nil, err
	}
	s.cache = ss.Cache
	s.shareID = ss.FieldID
	if s.shareID == "" {
		s.shareID = fmt.Sprintf("%s@%d", h.FieldName, h.Timestep)
	}
	s.remote = ss.Planes
	return s, nil
}

// Fetched returns the per-level plane counts read so far.
func (s *Session) Fetched() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int(nil), s.fetched...)
}

// BytesFetched returns the cumulative payload bytes read by this session.
func (s *Session) BytesFetched() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// CacheHits returns how many planes this session obtained from the shared
// cache without a store fetch (always 0 for an unshared session).
func (s *Session) CacheHits() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cacheHits
}

// Degradation reports a degraded-mode refinement: planes the plan wanted
// but could not have because the store lost them permanently. The session
// falls back to the deepest consistent plane prefix per level — planes are
// decoded in order, so everything below the first missing plane is still
// usable — and re-derives the error bound actually achievable from what
// was decoded.
type Degradation struct {
	// Dropped lists the first permanently unavailable plane of each
	// affected level; all deeper planes of that level are dropped with it.
	Dropped []storage.SegmentID
	// Requested[l] is the plane count the plan asked for on level l.
	Requested []int
	// Got[l] is the plane count actually decoded on level l.
	Got []int
	// RequestedTol is the absolute tolerance the refinement targeted.
	RequestedTol float64
	// AchievedBound is the estimator's error bound at the decoded plane
	// counts — the guarantee the degraded reconstruction still carries.
	AchievedBound float64
}

// RefineTo extends the session to at least the given per-level plane
// counts, fetching only planes not yet read, and returns the
// reconstruction. Plane counts below what is already fetched are kept (a
// session never un-reads data). A fetch failure aborts the refinement but
// leaves the session consistent: every plane fetched before the failure
// is retained and accounted, so a later RefineTo resumes from exactly
// where the failure struck.
func (s *Session) RefineTo(target []int) (*grid.Tensor, error) {
	return s.RefineToCtx(context.Background(), target)
}

// RefineToCtx is RefineTo bounded by ctx. Cancellation aborts the
// refinement with ctx's error, but the session stays consistent and
// resumable: every plane fetched before cancellation is retained and
// accounted, so a later refinement pays only for the remainder. A ctx that
// cannot be cancelled is exactly RefineTo.
func (s *Session) RefineToCtx(ctx context.Context, target []int) (*grid.Tensor, error) {
	if len(target) != len(s.header.Levels) {
		return nil, fmt.Errorf("core: session target has %d levels, header %d", len(target), len(s.header.Levels))
	}
	for l, want := range target {
		if want < 0 || want > s.header.Planes {
			return nil, fmt.Errorf("core: session target level %d plane count %d out of range", l, want)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sp := s.startSpan(ctx, "session.refine_to")
	defer sp.End()
	ctx = obs.ContextWithSpan(ctx, sp)
	for l, want := range target {
		if err := s.fetchLevel(ctx, l, want); err != nil {
			sp.Fail(err)
			return nil, err
		}
	}
	return s.reconstruct(ctx)
}

// startSpan opens a session-stage span: a child of the request span carried
// by ctx when there is one (the serving tier's per-request trace), otherwise
// a root span in the instrumented tracer (batch pipelines with -trace-out).
// Nil when neither applies, so the uninstrumented path pays one ctx lookup.
func (s *Session) startSpan(ctx context.Context, name string) *obs.Span {
	if parent := obs.SpanFromContext(ctx); parent != nil {
		return parent.Child(name)
	}
	return s.o.Span(name, nil)
}

// fetchLevel extends level l's fetched plane prefix to want planes,
// advancing the session state plane by plane so a mid-level failure never
// desynchronizes fetched/planes/bytes. s.mu must be held.
//
// Failed fetches still count toward BytesFetched when payload was actually
// delivered: a segment that arrives but fails to decompress (corruption,
// truncation), or a partial payload returned alongside an error, moved real
// bytes off the store even though the plane was never decoded.
func (s *Session) fetchLevel(ctx context.Context, l, want int) error {
	if want <= s.fetched[l] {
		return nil
	}
	sp := obs.SpanFromContext(ctx).Child("session.fetch_level")
	defer sp.End()
	ctx = obs.ContextWithSpan(ctx, sp)
	sp.SetAttr("level", l)
	var levelBytes, levelHits int64
	planesFetched := 0
	defer func() {
		sp.SetAttr("planes", planesFetched)
		sp.SetAttr("bytes", levelBytes)
		sp.SetAttr("cache_hits", levelHits)
	}()
	for k := s.fetched[l]; k < want; k++ {
		raw, payload, hit, err := s.fetchPlane(ctx, l, k)
		if err != nil {
			s.bytes += payload
			levelBytes += payload
			s.o.Counter("core.session.bytes_wasted").Add(payload)
			sp.Fail(err)
			return err
		}
		s.planes[l][k] = raw
		s.bytes += payload
		s.fetched[l] = k + 1
		levelBytes += payload
		planesFetched++
		if hit {
			s.cacheHits++
			levelHits++
		}
		if s.o != nil {
			s.o.Counter(fmt.Sprintf("core.session.level%d.bytes_fetched", l)).Add(payload)
			s.o.Counter(fmt.Sprintf("core.session.level%d.planes_fetched", l)).Add(1)
			s.o.Counter("core.session.bytes_fetched").Add(payload)
			s.o.Counter("core.session.planes_fetched").Add(1)
		}
	}
	return nil
}

// fetchPlane materializes one decompressed plane, through the shared cache
// when the session has one. It returns the plane bitset, the compressed
// payload bytes the plane's fetch moved, and whether the plane came out of
// the shared cache without a fetch; on error the payload is the bytes a
// failed transfer still delivered (counted as wasted by the caller).
func (s *Session) fetchPlane(ctx context.Context, l, k int) ([]byte, int64, bool, error) {
	if s.cache == nil {
		raw, payload, err := s.fetchPlaneStore(ctx, l, k)
		return raw, payload, false, err
	}
	key := servecache.Key{Codec: s.header.Codec(), Field: s.shareID, Level: l, Plane: k}
	if s.remote != nil {
		return s.cache.GetOrFetchFromCtx(ctx, key, s.remote)
	}
	if ctx.Done() == nil {
		return s.cache.GetOrFetchFrom(key, (*planeFetcher)(s))
	}
	return s.cache.GetOrFetchFromCtx(ctx, key, (*planeFetcher)(s))
}

// planeFetcher adapts a Session to servecache.Source: a pointer conversion
// instead of a per-call closure, which keeps the cache-hit fast path
// allocation-free.
type planeFetcher Session

// FetchPlane implements servecache.Source by reading and decompressing the
// keyed plane from the session's store.
func (p *planeFetcher) FetchPlane(key servecache.Key) ([]byte, int64, error) {
	return (*Session)(p).fetchPlaneStore(context.Background(), key.Level, key.Plane)
}

// FetchPlaneCtx implements servecache.SourceCtx; ctx is the cache's flight
// context, alive as long as any waiter still wants the plane.
func (p *planeFetcher) FetchPlaneCtx(ctx context.Context, key servecache.Key) ([]byte, int64, error) {
	return (*Session)(p).fetchPlaneStore(ctx, key.Level, key.Plane)
}

// fetchPlaneStore reads plane (l, k) through the session's PlaneStore,
// which validates the payload length against the manifest before the
// decoder sees it, and wraps the read in a session.fetch_plane span.
func (s *Session) fetchPlaneStore(ctx context.Context, l, k int) ([]byte, int64, error) {
	sp := obs.SpanFromContext(ctx).Child("session.fetch_plane")
	defer sp.End()
	sp.SetAttr("level", l)
	sp.SetAttr("plane", k)
	raw, payload, err := s.store.Fetch(ctx, l, k)
	sp.SetAttr("bytes", payload)
	if err != nil {
		sp.Fail(err)
	}
	return raw, payload, err
}

// Refine plans greedily under est at an absolute tolerance, never dropping
// below the already-fetched planes, fetches the delta and reconstructs.
// It returns the reconstruction and the plan actually executed.
//
// Refine fails soft on data loss: when a plane is permanently unavailable
// (the read error classifies as storage.FaultPermanent — a quarantined
// plane, a missing level file, a checksum mismatch), the affected level
// falls back to its deepest consistent plane prefix, the achievable error
// bound is recomputed from the per-level Err matrices, and the
// reconstruction is returned together with a non-nil Degradation report
// instead of an error. Transient failures (including retry exhaustion in
// a storage.RetryingSource) still abort with an error, with the session
// state left consistent for a later retry.
func (s *Session) Refine(est retrieval.ErrorEstimator, tol float64) (*grid.Tensor, retrieval.Plan, *Degradation, error) {
	return s.RefineCtx(context.Background(), est, tol)
}

// RefineCtx is Refine bounded by ctx. Cancellation — the caller's deadline
// expiring, the client disconnecting — aborts with ctx's error (it never
// degrades: only permanent data loss does), and the session remains
// consistent and resumable exactly as under a transient fetch failure. A
// ctx that cannot be cancelled is exactly Refine.
func (s *Session) RefineCtx(ctx context.Context, est retrieval.ErrorEstimator, tol float64) (*grid.Tensor, retrieval.Plan, *Degradation, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sp := s.startSpan(ctx, "session.refine")
	sp.SetAttr("tol", tol)
	defer sp.End()
	ctx = obs.ContextWithSpan(ctx, sp)
	plan, err := retrieval.GreedyPlanObs(s.header.LevelInfos(), est, tol, s.o)
	if err != nil {
		sp.Fail(err)
		return nil, retrieval.Plan{}, nil, err
	}
	target := plan.Planes
	for l, have := range s.fetched {
		if have > target[l] {
			target[l] = have
		}
	}
	requested := append([]int(nil), target...)
	var dropped []storage.SegmentID
	for l, want := range target {
		if err := s.fetchLevel(ctx, l, want); err != nil {
			if storage.Classify(err) != storage.FaultPermanent {
				sp.Fail(err)
				return nil, retrieval.Plan{}, nil, err
			}
			// fetchLevel stopped at the first unavailable plane; the level's
			// usable prefix is exactly what has been fetched.
			dropped = append(dropped, storage.SegmentID{Level: l, Plane: s.fetched[l]})
			target[l] = s.fetched[l]
		}
	}
	exec, err := retrieval.PlanForPlanes(s.header.LevelInfos(), target)
	if err != nil {
		return nil, retrieval.Plan{}, nil, err
	}
	levelErrs := make([]float64, len(s.header.Levels))
	for l, lm := range s.header.Levels {
		levelErrs[l] = lm.ErrMatrix[target[l]]
	}
	exec.EstimatedError = est.Estimate(levelErrs)
	rec, err := s.reconstruct(ctx)
	if err != nil {
		sp.Fail(err)
		return nil, retrieval.Plan{}, nil, err
	}
	var deg *Degradation
	if len(dropped) > 0 {
		deg = &Degradation{
			Dropped:       dropped,
			Requested:     requested,
			Got:           append([]int(nil), target...),
			RequestedTol:  tol,
			AchievedBound: exec.EstimatedError,
		}
		// Fold the degradation report into the registry so a -metrics-out
		// snapshot carries the same story the Degradation struct tells.
		if s.o != nil {
			s.o.Counter("core.session.degraded_refines").Add(1)
			var missing int64
			for l := range requested {
				missing += int64(requested[l] - deg.Got[l])
			}
			s.o.Counter("core.session.planes_dropped").Add(missing)
			s.o.Counter("core.session.levels_degraded").Add(int64(len(dropped)))
			s.o.Gauge("core.session.achieved_bound").Set(exec.EstimatedError)
			s.o.Gauge("core.session.requested_tol").Set(tol)
			sp.SetAttr("degraded", true)
		}
	}
	return rec, exec, deg, nil
}

// reconstruct decodes the fetched planes and recomposes the field. s.mu
// must be held.
func (s *Session) reconstruct(ctx context.Context) (*grid.Tensor, error) {
	parent := obs.SpanFromContext(ctx)
	dsp := parent.Child("session.decode")
	for l, lm := range s.header.Levels {
		enc := &s.encScratch[l]
		enc.N, enc.Planes, enc.Exponent, enc.Bits = lm.N, s.header.Planes, lm.Exponent, s.planes[l]
		s.backend.DecodeLevel(enc, s.fetched[l], s.dec.Coeffs(l), 1, s.o)
	}
	dsp.End()
	rsp := parent.Child("session.recompose")
	out := s.dec.Recompose()
	rsp.End()
	return out, nil
}
