// Package core is the public face of the progressive retrieval framework
// (Fig. 4 of the paper). It wires together the substrates:
//
//	codec      → pluggable refactor/recompose backends (mgard, interp)
//	bitplane   → nega-binary planes + error matrix
//	lossless   → per-plane compressed segments
//	storage    → tiered, ranged-read segment files
//	retrieval  → error-controlled plane selection
//
// and exposes three retrieval modes: the original theory-based error
// control, D-MGARD plane-count prediction, and E-MGARD learned per-level
// error estimation (the latter two live in internal/dmgard and
// internal/emgard and plug in through the retrieval.ErrorEstimator and
// fixed-plane interfaces defined here).
//
// The multilevel transform is dispatched through the codec registry: the
// Config.Backend / Header.CodecID codec ID selects which ProgressiveCodec
// refactors a field and recomposes its retrievals. The zero value selects
// the MGARD-style backend, whose artifacts (headers, segments, manifests)
// are byte-identical to the pre-interface pipeline's.
package core

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sync"

	"pmgard/internal/bitplane"
	"pmgard/internal/codec"
	"pmgard/internal/decompose"
	"pmgard/internal/grid"
	"pmgard/internal/lossless"
	"pmgard/internal/obs"
	"pmgard/internal/pool"
	"pmgard/internal/retrieval"
	"pmgard/internal/storage"

	// The in-tree backends register themselves with the codec registry;
	// core links them so every entry point (library, commands, tests) sees
	// the same backend set.
	_ "pmgard/internal/codec/interp"
	_ "pmgard/internal/codec/mgard"
)

// Config configures compression.
type Config struct {
	// Backend is the progressive-codec ID ("mgard", "interp"); empty
	// selects codec.DefaultID, the MGARD-style pipeline.
	Backend string
	// Decompose controls the multilevel transform.
	Decompose decompose.Options
	// Planes is the number of bit-planes per coefficient level (the paper
	// uses 32).
	Planes int
	// Codec is the lossless stage; nil means DEFLATE.
	Codec lossless.Codec
	// PoolSize is the length of the per-level pooled coefficient summary
	// stored in the header for E-MGARD's encoder input (§III-D). 0 uses
	// the default of 64.
	PoolSize int
	// Parallelism is the worker count used by every stage of the pipeline
	// (decomposition passes, bit-plane encoding, lossless coding). 0 (the
	// default) uses one worker per CPU; 1 forces the sequential path. The
	// produced bytes are identical for every value — fan-out writes into
	// pre-sized (level, plane) slots, never appends.
	Parallelism int
	// Obs records pipeline telemetry (metrics and spans) when set. nil (the
	// default) disables observability at the cost of one nil check per
	// instrumented operation; it never changes the produced bytes.
	Obs *obs.Obs
}

// DefaultConfig mirrors the paper's setup: a five-level hierarchy with 32
// bit-planes per level and lossless coding of each plane.
func DefaultConfig() Config {
	return Config{
		Decompose: decompose.DefaultOptions(),
		Planes:    32,
		Codec:     lossless.Deflate(),
	}
}

func (c Config) withDefaults() Config {
	if c.Codec == nil {
		c.Codec = lossless.Deflate()
	}
	if c.Planes == 0 {
		c.Planes = 32
	}
	if c.PoolSize == 0 {
		c.PoolSize = 64
	}
	return c
}

// LevelMeta is the retained per-level metadata: everything the retriever
// needs without touching the payload segments.
type LevelMeta struct {
	// N is the number of coefficients on the level.
	N int
	// Exponent is the bit-plane alignment exponent.
	Exponent int
	// ErrMatrix[b] is the max abs coefficient error with b planes.
	ErrMatrix []float64
	// PlaneSizes[k] is the compressed size of plane k in bytes.
	PlaneSizes []int64
	// RawPlaneSize is the uncompressed size of each plane in bytes.
	RawPlaneSize int
}

// Header is the compression metadata written alongside the segments.
type Header struct {
	// CodecID names the progressive-codec backend that produced the
	// artifact. It is omitted (empty) for the default MGARD backend so
	// pre-interface files parse identically and mgard artifacts stay
	// byte-identical; Codec() resolves the effective ID.
	CodecID string `json:",omitempty"`
	// FieldName labels the variable ("Jx", "Du", ...).
	FieldName string
	// Timestep is the simulation output step the field came from.
	Timestep int
	// Dims are the grid dimensions.
	Dims []int
	// Levels is the per-level metadata, coarsest first.
	Levels []LevelMeta
	// Planes is the bit-plane count per level.
	Planes int
	// CodecName names the lossless codec.
	CodecName string
	// DecomposeLevels, Update and UpdateWeight echo the transform options.
	DecomposeLevels int
	Update          bool
	UpdateWeight    float64
	// ValueRange is max-min of the original field, used to convert
	// relative error bounds to absolute tolerances.
	ValueRange float64
	// LevelPools[l] is a fixed-size pooled summary of level l's
	// coefficient magnitudes, recorded at compression time so E-MGARD can
	// predict per-level mapping constants without fetching any payload.
	LevelPools [][]float64
}

// DecomposeOptions reconstructs the transform options from the header.
func (h *Header) DecomposeOptions() decompose.Options {
	return decompose.Options{
		Levels:       h.DecomposeLevels,
		Update:       h.Update,
		UpdateWeight: h.UpdateWeight,
	}
}

// Codec returns the effective progressive-codec ID of the artifact; an
// empty CodecID means the default MGARD backend.
func (h *Header) Codec() string {
	if h.CodecID == "" {
		return codec.DefaultID
	}
	return h.CodecID
}

// CodecOptions reconstructs the backend-agnostic transform options from the
// header.
func (h *Header) CodecOptions() codec.Options {
	return codec.Options{
		Levels:       h.DecomposeLevels,
		Update:       h.Update,
		UpdateWeight: h.UpdateWeight,
	}
}

// backend resolves the header's progressive-codec backend.
func (h *Header) backend() (codec.ProgressiveCodec, error) {
	c, err := codec.ByID(h.Codec())
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return c, nil
}

// codecOptions converts compression config into the backend-agnostic
// transform options.
func codecOptions(o decompose.Options) codec.Options {
	return codec.Options{Levels: o.Levels, Update: o.Update, UpdateWeight: o.UpdateWeight}
}

// LevelInfos adapts the header for the retrieval planner.
func (h *Header) LevelInfos() []retrieval.LevelInfo {
	infos := make([]retrieval.LevelInfo, len(h.Levels))
	for l, lm := range h.Levels {
		infos[l] = retrieval.LevelInfo{ErrMatrix: lm.ErrMatrix, PlaneSizes: lm.PlaneSizes}
	}
	return infos
}

// TheoryEstimator returns the original MGARD error estimator (Eq. 6): the
// absolute-row-sum bound with the naive compounded mesh constant of the
// early error-control theory [19]. Its pessimism — achieved errors orders
// of magnitude below the requested bound — is the overhead the paper's
// models remove.
func (h *Header) TheoryEstimator() retrieval.TheoryEstimator {
	b, err := h.backend()
	if err != nil {
		// An unknown backend cannot be decoded anyway; fall back to the
		// lifting math so the estimator itself never fails.
		return retrieval.TheoryEstimator{C: h.DecomposeOptions().NaiveErrorAmplification(len(h.Dims))}
	}
	return retrieval.TheoryEstimator{C: b.NaiveAmplification(h.CodecOptions(), len(h.Dims))}
}

// TightEstimator returns the sharper analytical bound (per-level
// amplification without cross-step compounding) — still a true bound, used
// by the constant ablation to separate "better constant" gains from
// "learned per-level constants" gains.
func (h *Header) TightEstimator() retrieval.TheoryEstimator {
	b, err := h.backend()
	if err != nil {
		return retrieval.TheoryEstimator{C: h.DecomposeOptions().ErrorAmplification(len(h.Dims))}
	}
	return retrieval.TheoryEstimator{C: b.TightAmplification(h.CodecOptions(), len(h.Dims))}
}

// AbsTolerance converts a relative error bound to an absolute tolerance
// using the recorded value range, the convention of the paper's evaluation
// (§IV-A3).
func (h *Header) AbsTolerance(relBound float64) float64 {
	return relBound * h.ValueRange
}

// TotalBytes returns the total stored payload size across all levels and
// planes.
func (h *Header) TotalBytes() int64 {
	var total int64
	for _, lm := range h.Levels {
		for _, s := range lm.PlaneSizes {
			total += s
		}
	}
	return total
}

// Compressed is an in-memory compressed field: header plus the compressed
// plane segments.
type Compressed struct {
	Header Header
	// segments[l][k] is the compressed payload of plane k of level l.
	segments [][][]byte
}

// Compress runs the full compression pipeline on a field, fanning each
// stage across cfg.Parallelism workers. The output is byte-identical for
// every worker count.
//
// Compress is the in-memory façade over the streaming pipeline: it drives
// CompressTo into a memory sink, so the stage overlap (deflate of level
// l's planes while level l+1 encodes) applies here too. For artifacts that
// go to disk anyway, CompressToFile and CompressToTiered skip the
// in-memory accumulation entirely.
func Compress(t *grid.Tensor, cfg Config, fieldName string, timestep int) (*Compressed, error) {
	cfg = cfg.withDefaults()
	sink := &memorySink{planes: cfg.Planes}
	h, err := CompressTo(t, cfg, fieldName, timestep, sink)
	if err != nil {
		return nil, err
	}
	return &Compressed{Header: *h, segments: sink.segments}, nil
}

// SegmentSource yields compressed plane payloads during retrieval.
// Implementations must be safe for concurrent Segment calls: the parallel
// retrieval path fetches independent (level, plane) segments from multiple
// goroutines. Every built-in source (Compressed, StoreSource, the faults
// and storage wrappers) satisfies this.
type SegmentSource interface {
	// Segment returns the compressed payload of plane k of level l.
	Segment(level, plane int) ([]byte, error)
}

// ContextSource is a SegmentSource whose reads honor cancellation. Sources
// backed by blocking or retrying I/O (storage.RetryingSource, remote tiers)
// implement it so a caller's deadline propagates into the read instead of
// abandoning a goroutine inside it; purely in-memory sources implement it as
// a cancellation check plus the plain read.
type ContextSource interface {
	SegmentSource
	// SegmentCtx is Segment bounded by ctx: it returns early with ctx's
	// error once ctx ends.
	SegmentCtx(ctx context.Context, level, plane int) ([]byte, error)
}

// readSegment reads one segment from src, routing through the source's
// context-aware read when it has one and ctx is cancellable. A
// non-cancellable ctx takes exactly the plain Segment path.
func readSegment(ctx context.Context, src SegmentSource, level, plane int) ([]byte, error) {
	if ctx.Done() != nil {
		if cs, ok := src.(ContextSource); ok {
			return cs.SegmentCtx(ctx, level, plane)
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	return src.Segment(level, plane)
}

// Segment implements SegmentSource for in-memory compressed data.
func (c *Compressed) Segment(level, plane int) ([]byte, error) {
	if level < 0 || level >= len(c.segments) {
		return nil, fmt.Errorf("core: level %d out of range", level)
	}
	if plane < 0 || plane >= len(c.segments[level]) {
		return nil, fmt.Errorf("core: plane %d out of range on level %d", plane, level)
	}
	return c.segments[level][plane], nil
}

// SegmentCtx implements ContextSource; the in-memory read is instantaneous,
// so this is a cancellation check plus Segment.
func (c *Compressed) SegmentCtx(ctx context.Context, level, plane int) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return c.Segment(level, plane)
}

// WriteFile persists the compressed field as a segment-store file.
func (c *Compressed) WriteFile(path string) error {
	meta, err := json.Marshal(&c.Header)
	if err != nil {
		return fmt.Errorf("core: marshal header: %w", err)
	}
	w, err := storage.Create(path, meta)
	if err != nil {
		return err
	}
	for l := range c.segments {
		for k, seg := range c.segments[l] {
			if err := w.WriteSegment(storage.SegmentID{Level: l, Plane: k}, seg); err != nil {
				w.Close()
				return err
			}
		}
	}
	return w.Close()
}

// StoreSource adapts a storage.Store as a SegmentSource with exact I/O
// accounting.
type StoreSource struct {
	Store *storage.Store
}

// Segment implements SegmentSource.
func (s StoreSource) Segment(level, plane int) ([]byte, error) {
	return s.Store.ReadSegment(storage.SegmentID{Level: level, Plane: plane})
}

// SegmentCtx implements ContextSource. Local file reads cannot be
// interrupted mid-syscall, so cancellation is checked at read entry.
func (s StoreSource) SegmentCtx(ctx context.Context, level, plane int) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.Segment(level, plane)
}

// OpenFile opens a compressed field file and parses its header.
func OpenFile(path string) (*Header, *storage.Store, error) {
	st, err := storage.Open(path)
	if err != nil {
		return nil, nil, err
	}
	var h Header
	if err := json.Unmarshal(st.Meta(), &h); err != nil {
		st.Close()
		return nil, nil, fmt.Errorf("core: parse header: %w", err)
	}
	return &h, st, nil
}

// Retrieve fetches the planes named by plan from src, decodes them and
// recomposes the approximate field, using one worker per CPU.
func Retrieve(h *Header, src SegmentSource, plan retrieval.Plan) (*grid.Tensor, error) {
	return RetrieveWorkers(h, src, plan, 0)
}

// planeJob names one (level, plane) segment a retrieval must fetch.
type planeJob struct{ level, plane int }

// fetchLevels fetches and decodes the planes selected by plan for levels
// 0..upTo from src into dec's coefficient levels, fanning segment fetch and
// decompression across the worker pool. Every segment lands in the
// pre-sized slot for its (level, plane), and on failure the error of the
// lowest (level, plane) in fetch order is returned, so behavior is
// identical for every worker count.
func fetchLevels(h *Header, src SegmentSource, plan retrieval.Plan, dec codec.Decomposition, upTo, workers int) error {
	return fetchLevelsCtx(context.Background(), h, src, plan, dec, upTo, workers, nil)
}

// fetchLevelsObs is fetchLevels with telemetry recorded into o: a
// "storage.fetch" span over the fan-out with per-job "storage.read" and
// "lossless.decompress" child spans, per-level core.fetch.level<l>.bytes /
// .planes counters (plus totals), and pool task metrics under
// pool.fetch.*. A nil o is exactly fetchLevels.
func fetchLevelsObs(h *Header, src SegmentSource, plan retrieval.Plan, dec codec.Decomposition, upTo, workers int, o *obs.Obs) error {
	return fetchLevelsCtx(context.Background(), h, src, plan, dec, upTo, workers, o)
}

// fetchLevelsCtx is fetchLevelsObs bounded by ctx: once ctx ends, no new
// plane fetch is dispatched and in-flight reads are cancelled through the
// source's ContextSource hook when it has one. A non-cancellable ctx is
// exactly fetchLevelsObs.
func fetchLevelsCtx(ctx context.Context, h *Header, src SegmentSource, plan retrieval.Plan, dec codec.Decomposition, upTo, workers int, o *obs.Obs) error {
	lc, err := lossless.ByName(h.CodecName)
	if err != nil {
		return err
	}
	backend, err := h.backend()
	if err != nil {
		return err
	}
	encs := make([]*bitplane.LevelEncoding, upTo+1)
	var jobs []planeJob
	// Per-level fetch counters are resolved before the fan-out so the hot
	// loop never touches the registry lock.
	var lvlBytes, lvlPlanes []*obs.Counter
	var totBytes, totPlanes *obs.Counter
	if o != nil {
		lvlBytes = make([]*obs.Counter, upTo+1)
		lvlPlanes = make([]*obs.Counter, upTo+1)
		totBytes = o.Counter("core.fetch.bytes")
		totPlanes = o.Counter("core.fetch.planes")
	}
	for l := 0; l <= upTo; l++ {
		lm := h.Levels[l]
		b := plan.Planes[l]
		if b < 0 || b > h.Planes {
			return fmt.Errorf("core: level %d plane count %d out of range", l, b)
		}
		encs[l] = &bitplane.LevelEncoding{
			N:        lm.N,
			Planes:   h.Planes,
			Exponent: lm.Exponent,
			Bits:     make([][]byte, h.Planes),
		}
		if o != nil {
			lvlBytes[l] = o.Counter(fmt.Sprintf("core.fetch.level%d.bytes", l))
			lvlPlanes[l] = o.Counter(fmt.Sprintf("core.fetch.level%d.planes", l))
		}
		for k := 0; k < b; k++ {
			jobs = append(jobs, planeJob{level: l, plane: k})
		}
	}
	fetchSpan := o.Span("storage.fetch", nil)
	fetchSpan.SetAttr("jobs", len(jobs))
	err = pool.RunMetricsCtx(ctx, len(jobs), workers, pool.NewMetrics(o, "fetch"), func(_, i int) error {
		j := jobs[i]
		read := o.Span("storage.read", fetchSpan)
		seg, err := readSegment(ctx, src, j.level, j.plane)
		read.SetAttr("level", j.level)
		read.SetAttr("plane", j.plane)
		read.End()
		if err != nil {
			return err
		}
		dsp := o.Span("lossless.decompress", fetchSpan)
		raw, err := lc.Decompress(seg, h.Levels[j.level].RawPlaneSize)
		dsp.End()
		if err != nil {
			return fmt.Errorf("core: level %d plane %d: %w", j.level, j.plane, err)
		}
		encs[j.level].Bits[j.plane] = raw
		if o != nil {
			lvlBytes[j.level].Add(int64(len(seg)))
			lvlPlanes[j.level].Add(1)
			totBytes.Add(int64(len(seg)))
			totPlanes.Add(1)
		}
		return nil
	})
	fetchSpan.End()
	if err != nil {
		return err
	}
	for l := 0; l <= upTo; l++ {
		backend.DecodeLevel(encs[l], plan.Planes[l], dec.Coeffs(l), workers, o)
	}
	return nil
}

// RetrieveWorkers is Retrieve with an explicit worker count for the fetch,
// decompress, decode and recompose stages (≤ 0 means one worker per CPU;
// 1 forces the sequential path). The reconstruction is bit-identical for
// every worker count.
func RetrieveWorkers(h *Header, src SegmentSource, plan retrieval.Plan, workers int) (*grid.Tensor, error) {
	return RetrieveWorkersObs(h, src, plan, workers, nil)
}

// RetrieveWorkersObs is RetrieveWorkers with retrieval telemetry recorded
// into o: a "session" root span spanning the whole retrieval, stage spans
// for storage reads, lossless decompression, bit-plane decode and
// recomposition, per-level core.fetch.* counters and pool.fetch.* task
// metrics. A nil o is exactly RetrieveWorkers.
func RetrieveWorkersObs(h *Header, src SegmentSource, plan retrieval.Plan, workers int, o *obs.Obs) (*grid.Tensor, error) {
	return RetrieveWorkersCtx(context.Background(), h, src, plan, workers, o)
}

// RetrieveCtx is Retrieve bounded by ctx: once ctx ends, no further plane is
// fetched and the retrieval returns ctx's error. Planes already decoded are
// discarded — for resumable cancellation use a Session with RefineCtx.
func RetrieveCtx(ctx context.Context, h *Header, src SegmentSource, plan retrieval.Plan) (*grid.Tensor, error) {
	return RetrieveWorkersCtx(ctx, h, src, plan, 0, nil)
}

// RetrieveWorkersCtx is RetrieveWorkersObs bounded by ctx. A ctx that
// cannot be cancelled is exactly RetrieveWorkersObs.
func RetrieveWorkersCtx(ctx context.Context, h *Header, src SegmentSource, plan retrieval.Plan, workers int, o *obs.Obs) (*grid.Tensor, error) {
	if len(plan.Planes) != len(h.Levels) {
		return nil, fmt.Errorf("core: plan has %d levels, header %d", len(plan.Planes), len(h.Levels))
	}
	root := o.Span("session", nil)
	root.SetAttr("bytes_planned", plan.Bytes)
	defer root.End()
	workers = pool.Clamp(workers)
	backend, err := h.backend()
	if err != nil {
		return nil, err
	}
	dec, err := backend.NewZero(h.Dims, h.CodecOptions(), workers)
	if err != nil {
		return nil, err
	}
	if err := fetchLevelsCtx(ctx, h, src, plan, dec, len(h.Levels)-1, workers, o); err != nil {
		return nil, err
	}
	return dec.RecomposeObs(o), nil
}

// RetrieveTolerance plans with the given estimator at an absolute tolerance
// and retrieves. It returns the reconstruction and the executed plan.
func RetrieveTolerance(h *Header, src SegmentSource, est retrieval.ErrorEstimator, tol float64) (*grid.Tensor, retrieval.Plan, error) {
	return RetrieveToleranceWorkers(h, src, est, tol, 0)
}

// RetrieveToleranceWorkers is RetrieveTolerance with an explicit worker
// count for the retrieval stages.
func RetrieveToleranceWorkers(h *Header, src SegmentSource, est retrieval.ErrorEstimator, tol float64, workers int) (*grid.Tensor, retrieval.Plan, error) {
	return RetrieveToleranceObs(h, src, est, tol, workers, nil)
}

// RetrieveToleranceObs is RetrieveToleranceWorkers with planner and
// retrieval telemetry recorded into o (see GreedyPlanObs and
// RetrieveWorkersObs for the metric names). A nil o is exactly
// RetrieveToleranceWorkers.
func RetrieveToleranceObs(h *Header, src SegmentSource, est retrieval.ErrorEstimator, tol float64, workers int, o *obs.Obs) (*grid.Tensor, retrieval.Plan, error) {
	plan, err := retrieval.GreedyPlanObs(h.LevelInfos(), est, tol, o)
	if err != nil {
		return nil, retrieval.Plan{}, err
	}
	rec, err := RetrieveWorkersObs(h, src, plan, workers, o)
	return rec, plan, err
}

// RetrievePlanes retrieves with an externally supplied per-level plane
// assignment — the D-MGARD integration point.
func RetrievePlanes(h *Header, src SegmentSource, planes []int) (*grid.Tensor, retrieval.Plan, error) {
	return RetrievePlanesWorkers(h, src, planes, 0)
}

// RetrievePlanesWorkers is RetrievePlanes with an explicit worker count for
// the retrieval stages.
func RetrievePlanesWorkers(h *Header, src SegmentSource, planes []int, workers int) (*grid.Tensor, retrieval.Plan, error) {
	return RetrievePlanesObs(h, src, planes, workers, nil)
}

// RetrievePlanesObs is RetrievePlanesWorkers with retrieval telemetry
// recorded into o (see RetrieveWorkersObs for the metric names). A nil o
// is exactly RetrievePlanesWorkers.
func RetrievePlanesObs(h *Header, src SegmentSource, planes []int, workers int, o *obs.Obs) (*grid.Tensor, retrieval.Plan, error) {
	plan, err := retrieval.PlanForPlanes(h.LevelInfos(), planes)
	if err != nil {
		return nil, retrieval.Plan{}, err
	}
	rec, err := RetrieveWorkersObs(h, src, plan, workers, o)
	return rec, plan, err
}

// RetrieveResolution fetches only coefficient levels 0..upTo and
// reconstructs the approximation on the coarser grid those levels span —
// the reduced-degrees-of-freedom mode where an analysis skips both the I/O
// and the compute of the finer levels. planes must assign 0 planes to every
// level above upTo.
func RetrieveResolution(h *Header, src SegmentSource, planes []int, upTo int) (*grid.Tensor, retrieval.Plan, error) {
	if upTo < 0 || upTo >= len(h.Levels) {
		return nil, retrieval.Plan{}, fmt.Errorf("core: upTo %d out of [0,%d)", upTo, len(h.Levels))
	}
	for l := upTo + 1; l < len(planes); l++ {
		if planes[l] != 0 {
			return nil, retrieval.Plan{}, fmt.Errorf("core: level %d above resolution cut must have 0 planes", l)
		}
	}
	plan, err := retrieval.PlanForPlanes(h.LevelInfos(), planes)
	if err != nil {
		return nil, retrieval.Plan{}, err
	}
	workers := pool.Clamp(0)
	backend, err := h.backend()
	if err != nil {
		return nil, retrieval.Plan{}, err
	}
	dec, err := backend.NewZero(h.Dims, h.CodecOptions(), workers)
	if err != nil {
		return nil, retrieval.Plan{}, err
	}
	if err := fetchLevels(h, src, plan, dec, upTo, workers); err != nil {
		return nil, retrieval.Plan{}, err
	}
	coarse, err := dec.RecomposeLevel(upTo)
	if err != nil {
		return nil, retrieval.Plan{}, err
	}
	return coarse, plan, nil
}

// RetrieveHybrid combines the two models as the paper's future work
// sketches (§IV-E): a D-MGARD plane prediction seeds the plan and an
// (E-MGARD) error estimator verifies and refines it — extending when the
// estimate misses the tolerance, shedding planes when it is comfortably
// inside.
func RetrieveHybrid(h *Header, src SegmentSource, seedPlanes []int, est retrieval.ErrorEstimator, tol float64) (*grid.Tensor, retrieval.Plan, error) {
	// Extend-only (shrink slack 0): the learned estimator is calibrated on
	// greedy-shaped plans, so estimates for shrunk plan shapes are
	// unreliable and shedding planes re-introduces bound violations. The
	// hybrid's job is to repair D-MGARD's under-predictions — the
	// dangerous direction — not to squeeze bytes below E-MGARD.
	plan, err := retrieval.RefinePlan(h.LevelInfos(), seedPlanes, est, tol, 0)
	if err != nil {
		return nil, retrieval.Plan{}, err
	}
	rec, err := Retrieve(h, src, plan)
	return rec, plan, err
}

// CompressAll compresses several named fields concurrently — the write-side
// pattern of a simulation dump, where every variable of a timestep is
// compressed before the next step runs. workers ≤ 0 uses GOMAXPROCS.
func CompressAll(fields map[string]*grid.Tensor, cfg Config, timestep int, workers int) (map[string]*Compressed, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type job struct {
		name  string
		field *grid.Tensor
	}
	type result struct {
		name string
		c    *Compressed
		err  error
	}
	jobs := make(chan job)
	results := make(chan result)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				c, err := Compress(j.field, cfg, j.name, timestep)
				results <- result{name: j.name, c: c, err: err}
			}
		}()
	}
	go func() {
		for name, field := range fields {
			jobs <- job{name: name, field: field}
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()
	out := make(map[string]*Compressed, len(fields))
	var firstErr error
	for r := range results {
		if r.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("core: compress %s: %w", r.name, r.err)
			continue
		}
		if r.err == nil {
			out[r.name] = r.c
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
