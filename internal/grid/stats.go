package grid

import "math"

// MinMax returns the minimum and maximum element values. It panics on an
// empty tensor (which cannot be constructed through this package).
func (t *Tensor) MinMax() (min, max float64) {
	min, max = t.data[0], t.data[0]
	for _, v := range t.data[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// Range returns max - min of the element values.
func (t *Tensor) Range() float64 {
	mn, mx := t.MinMax()
	return mx - mn
}

// Mean returns the arithmetic mean of the elements.
func (t *Tensor) Mean() float64 {
	sum := 0.0
	for _, v := range t.data {
		sum += v
	}
	return sum / float64(len(t.data))
}

// Std returns the population standard deviation of the elements.
func (t *Tensor) Std() float64 {
	return math.Sqrt(t.Variance())
}

// Variance returns the population variance of the elements.
func (t *Tensor) Variance() float64 {
	mean := t.Mean()
	sum := 0.0
	for _, v := range t.data {
		d := v - mean
		sum += d * d
	}
	return sum / float64(len(t.data))
}

// Skewness returns the population skewness (third standardized moment).
// It returns 0 for constant data.
func (t *Tensor) Skewness() float64 {
	mean := t.Mean()
	m2, m3 := 0.0, 0.0
	for _, v := range t.data {
		d := v - mean
		m2 += d * d
		m3 += d * d * d
	}
	n := float64(len(t.data))
	m2 /= n
	m3 /= n
	if m2 == 0 {
		return 0
	}
	return m3 / math.Pow(m2, 1.5)
}

// Kurtosis returns the population excess kurtosis (fourth standardized
// moment minus 3). It returns 0 for constant data.
func (t *Tensor) Kurtosis() float64 {
	mean := t.Mean()
	m2, m4 := 0.0, 0.0
	for _, v := range t.data {
		d := v - mean
		d2 := d * d
		m2 += d2
		m4 += d2 * d2
	}
	n := float64(len(t.data))
	m2 /= n
	m4 /= n
	if m2 == 0 {
		return 0
	}
	return m4/(m2*m2) - 3
}

// L2Norm returns the Euclidean norm of the elements.
func (t *Tensor) L2Norm() float64 {
	sum := 0.0
	for _, v := range t.data {
		sum += v * v
	}
	return math.Sqrt(sum)
}

// LinfNorm returns the maximum absolute element value.
func (t *Tensor) LinfNorm() float64 {
	max := 0.0
	for _, v := range t.data {
		a := math.Abs(v)
		if a > max {
			max = a
		}
	}
	return max
}

// GradientEnergy returns the mean squared first difference along every axis,
// a cheap smoothness measure: smooth fields score low, noisy fields high.
func (t *Tensor) GradientEnergy() float64 {
	sum := 0.0
	count := 0
	for axis := 0; axis < len(t.dims); axis++ {
		if t.dims[axis] < 2 {
			continue
		}
		stride := t.strides[axis]
		// Iterate over all elements that have a successor along axis.
		n := len(t.data)
		dimLen := t.dims[axis]
		// Outer size = product of dims before axis; inner = stride.
		outer := n / (dimLen * stride)
		for o := 0; o < outer; o++ {
			base := o * dimLen * stride
			for j := 0; j < (dimLen-1)*stride; j++ {
				d := t.data[base+j+stride] - t.data[base+j]
				sum += d * d
				count++
			}
		}
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// QuantileSketch returns approximate q-quantiles of the absolute values of
// the elements, computed from a fixed-size histogram. qs values must be in
// [0, 1]. It is used by the feature extractor, where exact quantiles are
// unnecessary.
func (t *Tensor) QuantileSketch(qs []float64) []float64 {
	const bins = 1024
	mn, mx := math.Inf(1), math.Inf(-1)
	for _, v := range t.data {
		a := math.Abs(v)
		if a < mn {
			mn = a
		}
		if a > mx {
			mx = a
		}
	}
	out := make([]float64, len(qs))
	if mx <= mn {
		for i := range out {
			out[i] = mn
		}
		return out
	}
	var hist [bins]int
	scale := float64(bins-1) / (mx - mn)
	for _, v := range t.data {
		b := int((math.Abs(v) - mn) * scale)
		hist[b]++
	}
	total := len(t.data)
	for i, q := range qs {
		target := int(q * float64(total))
		cum := 0
		out[i] = mx
		for b := 0; b < bins; b++ {
			cum += hist[b]
			if cum >= target {
				out[i] = mn + float64(b)/scale
				break
			}
		}
	}
	return out
}
