// Package grid provides dense N-dimensional float64 tensors used throughout
// the progressive-retrieval pipeline: simulation fields, coefficient levels,
// and feature extraction all operate on grid.Tensor values.
//
// Tensors use row-major (C) layout: the last dimension varies fastest. The
// package is deliberately small — just the operations the decomposer,
// simulators and feature extractor need — and allocates predictably so the
// hot paths in decomposition can reuse buffers.
package grid

import (
	"fmt"
	"math"
)

// Tensor is a dense N-dimensional array of float64 in row-major order.
// The zero value is not usable; construct with New or FromSlice.
type Tensor struct {
	dims    []int
	strides []int
	data    []float64
}

// New allocates a zero-filled tensor with the given dimensions.
// It panics if any dimension is non-positive or if dims is empty.
func New(dims ...int) *Tensor {
	if len(dims) == 0 {
		panic("grid: New requires at least one dimension")
	}
	n := 1
	for _, d := range dims {
		if d <= 0 {
			panic(fmt.Sprintf("grid: non-positive dimension %d", d))
		}
		n *= d
	}
	t := &Tensor{
		dims: append([]int(nil), dims...),
		data: make([]float64, n),
	}
	t.strides = computeStrides(t.dims)
	return t
}

// FromSlice wraps an existing flat slice as a tensor with the given
// dimensions. The slice is used directly, not copied. It panics if the
// element count does not match the product of dims.
func FromSlice(data []float64, dims ...int) *Tensor {
	n := 1
	for _, d := range dims {
		if d <= 0 {
			panic(fmt.Sprintf("grid: non-positive dimension %d", d))
		}
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("grid: data length %d does not match dims %v (want %d)", len(data), dims, n))
	}
	t := &Tensor{
		dims: append([]int(nil), dims...),
		data: data,
	}
	t.strides = computeStrides(t.dims)
	return t
}

func computeStrides(dims []int) []int {
	strides := make([]int, len(dims))
	s := 1
	for i := len(dims) - 1; i >= 0; i-- {
		strides[i] = s
		s *= dims[i]
	}
	return strides
}

// Dims returns the tensor's dimensions. The slice must not be modified.
func (t *Tensor) Dims() []int { return t.dims }

// NDim returns the number of dimensions.
func (t *Tensor) NDim() int { return len(t.dims) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the underlying flat storage in row-major order.
// Mutations are visible to the tensor.
func (t *Tensor) Data() []float64 { return t.data }

// Offset converts a multi-index to the flat offset. It panics if the number
// of indices does not match the tensor rank or an index is out of range.
func (t *Tensor) Offset(idx ...int) int {
	if len(idx) != len(t.dims) {
		panic(fmt.Sprintf("grid: index rank %d does not match tensor rank %d", len(idx), len(t.dims)))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.dims[i] {
			panic(fmt.Sprintf("grid: index %d out of range [0,%d) in dimension %d", ix, t.dims[i], i))
		}
		off += ix * t.strides[i]
	}
	return off
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.Offset(idx...)] }

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.Offset(idx...)] = v }

// Clone returns a deep copy of the tensor.
func (t *Tensor) Clone() *Tensor {
	c := New(t.dims...)
	copy(c.data, t.data)
	return c
}

// CopyFrom copies src's contents into t. The tensors must have identical
// dimensions.
func (t *Tensor) CopyFrom(src *Tensor) {
	if !SameDims(t, src) {
		panic(fmt.Sprintf("grid: CopyFrom dims mismatch %v vs %v", t.dims, src.dims))
	}
	copy(t.data, src.data)
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Apply replaces every element x with f(x).
func (t *Tensor) Apply(f func(float64) float64) {
	for i, v := range t.data {
		t.data[i] = f(v)
	}
}

// SameDims reports whether a and b have identical dimensions.
func SameDims(a, b *Tensor) bool {
	if len(a.dims) != len(b.dims) {
		return false
	}
	for i := range a.dims {
		if a.dims[i] != b.dims[i] {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the L-infinity distance between a and b, which must
// have identical dimensions.
func MaxAbsDiff(a, b *Tensor) float64 {
	if !SameDims(a, b) {
		panic(fmt.Sprintf("grid: MaxAbsDiff dims mismatch %v vs %v", a.dims, b.dims))
	}
	max := 0.0
	for i := range a.data {
		d := math.Abs(a.data[i] - b.data[i])
		if d > max {
			max = d
		}
	}
	return max
}

// RMSE returns the root-mean-square error between a and b.
func RMSE(a, b *Tensor) float64 {
	if !SameDims(a, b) {
		panic(fmt.Sprintf("grid: RMSE dims mismatch %v vs %v", a.dims, b.dims))
	}
	if a.Len() == 0 {
		return 0
	}
	sum := 0.0
	for i := range a.data {
		d := a.data[i] - b.data[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(a.data)))
}

// PSNR returns the peak signal-to-noise ratio of the reconstruction b of
// original a, in decibels, using a's value range as the peak. It returns
// +Inf for an exact reconstruction.
func PSNR(a, b *Tensor) float64 {
	rmse := RMSE(a, b)
	if rmse == 0 {
		return math.Inf(1)
	}
	mn, mx := a.MinMax()
	rng := mx - mn
	if rng == 0 {
		rng = math.Abs(mx)
		if rng == 0 {
			rng = 1
		}
	}
	return 20 * math.Log10(rng/rmse)
}

// String returns a short diagnostic description of the tensor.
func (t *Tensor) String() string {
	mn, mx := t.MinMax()
	return fmt.Sprintf("Tensor(dims=%v, min=%.4g, max=%.4g)", t.dims, mn, mx)
}

// Slice returns a copy of the sub-volume [lo, hi) — hi exclusive per axis.
// It panics on rank mismatch or out-of-range bounds. Analyses that only
// need a region of interest slice the reconstruction rather than paying to
// process the full grid.
func (t *Tensor) Slice(lo, hi []int) *Tensor {
	if len(lo) != len(t.dims) || len(hi) != len(t.dims) {
		panic(fmt.Sprintf("grid: Slice rank mismatch: lo %d, hi %d, tensor %d", len(lo), len(hi), len(t.dims)))
	}
	outDims := make([]int, len(t.dims))
	for d := range t.dims {
		if lo[d] < 0 || hi[d] > t.dims[d] || lo[d] >= hi[d] {
			panic(fmt.Sprintf("grid: Slice bounds [%d,%d) invalid for dimension %d of size %d", lo[d], hi[d], d, t.dims[d]))
		}
		outDims[d] = hi[d] - lo[d]
	}
	out := New(outDims...)
	src := make([]int, len(t.dims))
	dst := make([]int, len(t.dims))
	var walk func(d int)
	walk = func(d int) {
		if d == len(t.dims) {
			out.Set(t.At(src...), dst...)
			return
		}
		for i := lo[d]; i < hi[d]; i++ {
			src[d] = i
			dst[d] = i - lo[d]
			walk(d + 1)
		}
	}
	walk(0)
	return out
}
