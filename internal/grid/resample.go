package grid

import "fmt"

// Resample returns a new tensor with the given dimensions whose values are
// multilinear interpolations of t. It supports any rank up to 4 and is used
// to derive lower- or higher-resolution variants of a field for the
// cross-resolution experiments (Fig. 11 in the paper).
func (t *Tensor) Resample(dims ...int) *Tensor {
	if len(dims) != len(t.dims) {
		panic(fmt.Sprintf("grid: Resample rank %d does not match tensor rank %d", len(dims), len(t.dims)))
	}
	if len(dims) > 4 {
		panic("grid: Resample supports at most rank 4")
	}
	out := New(dims...)
	rank := len(dims)

	// Map output index i in [0,dims[d]) to source coordinate in
	// [0, t.dims[d]-1], aligning the endpoints of both grids.
	scale := make([]float64, rank)
	for d := 0; d < rank; d++ {
		if dims[d] > 1 && t.dims[d] > 1 {
			scale[d] = float64(t.dims[d]-1) / float64(dims[d]-1)
		}
	}

	idx := make([]int, rank)
	lo := make([]int, rank)
	frac := make([]float64, rank)
	var walk func(d int)
	walk = func(d int) {
		if d == rank {
			out.data[out.Offset(idx...)] = t.interp(lo, frac)
			return
		}
		for i := 0; i < dims[d]; i++ {
			idx[d] = i
			src := float64(i) * scale[d]
			l := int(src)
			if l >= t.dims[d]-1 {
				l = t.dims[d] - 1
				frac[d] = 0
			} else {
				frac[d] = src - float64(l)
			}
			lo[d] = l
			walk(d + 1)
		}
	}
	walk(0)
	return out
}

// interp evaluates the multilinear interpolant at the cell anchored at lo
// with fractional offsets frac along each axis.
func (t *Tensor) interp(lo []int, frac []float64) float64 {
	rank := len(t.dims)
	// Sum over the 2^rank cell corners.
	corners := 1 << rank
	val := 0.0
	for c := 0; c < corners; c++ {
		w := 1.0
		off := 0
		for d := 0; d < rank; d++ {
			if c&(1<<d) != 0 {
				if lo[d]+1 >= t.dims[d] {
					w = 0
					break
				}
				w *= frac[d]
				off += (lo[d] + 1) * t.strides[d]
			} else {
				w *= 1 - frac[d]
				off += lo[d] * t.strides[d]
			}
		}
		if w != 0 {
			val += w * t.data[off]
		}
	}
	return val
}
