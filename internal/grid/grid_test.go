package grid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	g := New(3, 4, 5)
	if g.Len() != 60 {
		t.Fatalf("Len = %d, want 60", g.Len())
	}
	for i, v := range g.Data() {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
	if g.NDim() != 3 {
		t.Fatalf("NDim = %d, want 3", g.NDim())
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	for _, dims := range [][]int{{}, {0}, {-1, 3}, {3, 0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", dims)
				}
			}()
			New(dims...)
		}()
	}
}

func TestFromSliceSharesStorage(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6}
	g := FromSlice(data, 2, 3)
	g.Set(42, 1, 2)
	if data[5] != 42 {
		t.Fatalf("FromSlice did not share storage: data[5]=%v", data[5])
	}
}

func TestFromSlicePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with wrong length did not panic")
		}
	}()
	FromSlice(make([]float64, 5), 2, 3)
}

func TestRowMajorLayout(t *testing.T) {
	g := New(2, 3, 4)
	g.Set(7, 1, 2, 3)
	// Row-major: offset = 1*12 + 2*4 + 3 = 23.
	if g.Data()[23] != 7 {
		t.Fatalf("row-major layout violated: Data()[23]=%v", g.Data()[23])
	}
	if g.At(1, 2, 3) != 7 {
		t.Fatalf("At(1,2,3)=%v, want 7", g.At(1, 2, 3))
	}
}

func TestOffsetPanicsOutOfRange(t *testing.T) {
	g := New(2, 2)
	for _, idx := range [][]int{{2, 0}, {0, -1}, {0}, {0, 0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Offset(%v) did not panic", idx)
				}
			}()
			g.Offset(idx...)
		}()
	}
}

func TestCloneIndependent(t *testing.T) {
	g := New(4)
	g.Fill(3)
	c := g.Clone()
	c.Set(9, 0)
	if g.At(0) != 3 {
		t.Fatal("Clone shares storage with original")
	}
	if c.At(1) != 3 {
		t.Fatal("Clone did not copy values")
	}
}

func TestCopyFrom(t *testing.T) {
	a := New(2, 2)
	b := New(2, 2)
	b.Fill(5)
	a.CopyFrom(b)
	if a.At(1, 1) != 5 {
		t.Fatal("CopyFrom did not copy")
	}
	c := New(3)
	defer func() {
		if recover() == nil {
			t.Fatal("CopyFrom with mismatched dims did not panic")
		}
	}()
	a.CopyFrom(c)
}

func TestApply(t *testing.T) {
	g := FromSlice([]float64{1, 2, 3}, 3)
	g.Apply(func(x float64) float64 { return x * x })
	want := []float64{1, 4, 9}
	for i, v := range g.Data() {
		if v != want[i] {
			t.Fatalf("Apply: element %d = %v, want %v", i, v, want[i])
		}
	}
}

func TestMinMaxRange(t *testing.T) {
	g := FromSlice([]float64{3, -1, 4, 1, 5, -9}, 6)
	mn, mx := g.MinMax()
	if mn != -9 || mx != 5 {
		t.Fatalf("MinMax = (%v, %v), want (-9, 5)", mn, mx)
	}
	if g.Range() != 14 {
		t.Fatalf("Range = %v, want 14", g.Range())
	}
}

func TestMeanStdVariance(t *testing.T) {
	g := FromSlice([]float64{2, 4, 4, 4, 5, 5, 7, 9}, 8)
	if got := g.Mean(); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	if got := g.Variance(); got != 4 {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := g.Std(); got != 2 {
		t.Fatalf("Std = %v, want 2", got)
	}
}

func TestSkewnessKurtosisConstant(t *testing.T) {
	g := New(10)
	g.Fill(3)
	if g.Skewness() != 0 || g.Kurtosis() != 0 {
		t.Fatal("constant data should have zero skewness and kurtosis")
	}
}

func TestSkewnessSign(t *testing.T) {
	// Right-skewed data has positive skewness.
	g := FromSlice([]float64{1, 1, 1, 1, 1, 1, 1, 1, 10}, 9)
	if g.Skewness() <= 0 {
		t.Fatalf("Skewness = %v, want > 0", g.Skewness())
	}
}

func TestKurtosisGaussianNearZero(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 200000
	data := make([]float64, n)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	g := FromSlice(data, n)
	if k := g.Kurtosis(); math.Abs(k) > 0.1 {
		t.Fatalf("Gaussian excess kurtosis = %v, want ~0", k)
	}
}

func TestNorms(t *testing.T) {
	g := FromSlice([]float64{3, -4}, 2)
	if g.L2Norm() != 5 {
		t.Fatalf("L2Norm = %v, want 5", g.L2Norm())
	}
	if g.LinfNorm() != 4 {
		t.Fatalf("LinfNorm = %v, want 4", g.LinfNorm())
	}
}

func TestMaxAbsDiffAndRMSE(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 4)
	b := FromSlice([]float64{1, 2, 3, 8}, 4)
	if d := MaxAbsDiff(a, b); d != 4 {
		t.Fatalf("MaxAbsDiff = %v, want 4", d)
	}
	if r := RMSE(a, b); r != 2 {
		t.Fatalf("RMSE = %v, want 2", r)
	}
}

func TestPSNR(t *testing.T) {
	a := FromSlice([]float64{0, 10}, 2)
	if !math.IsInf(PSNR(a, a), 1) {
		t.Fatal("PSNR of identical tensors should be +Inf")
	}
	b := FromSlice([]float64{0, 9}, 2)
	// rmse = 1/sqrt(2), range = 10 → psnr = 20*log10(10*sqrt(2)).
	want := 20 * math.Log10(10*math.Sqrt2)
	if got := PSNR(a, b); math.Abs(got-want) > 1e-12 {
		t.Fatalf("PSNR = %v, want %v", got, want)
	}
}

func TestGradientEnergySmoothVsNoisy(t *testing.T) {
	n := 32
	smooth := New(n, n)
	noisy := New(n, n)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			smooth.Set(float64(i+j)/float64(2*n), i, j)
			noisy.Set(rng.Float64(), i, j)
		}
	}
	if smooth.GradientEnergy() >= noisy.GradientEnergy() {
		t.Fatalf("smooth gradient energy %v should be below noisy %v",
			smooth.GradientEnergy(), noisy.GradientEnergy())
	}
}

func TestGradientEnergyConstantZero(t *testing.T) {
	g := New(4, 4, 4)
	g.Fill(7)
	if e := g.GradientEnergy(); e != 0 {
		t.Fatalf("constant field gradient energy = %v, want 0", e)
	}
}

func TestQuantileSketchMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := make([]float64, 10000)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	g := FromSlice(data, len(data))
	qs := g.QuantileSketch([]float64{0.1, 0.5, 0.9, 0.99})
	for i := 1; i < len(qs); i++ {
		if qs[i] < qs[i-1] {
			t.Fatalf("quantiles not monotone: %v", qs)
		}
	}
	// Median of |N(0,1)| is ~0.674.
	if qs[1] < 0.4 || qs[1] > 0.95 {
		t.Fatalf("median of |N(0,1)| = %v, want ~0.674", qs[1])
	}
}

func TestQuantileSketchConstant(t *testing.T) {
	g := New(100)
	g.Fill(-2)
	qs := g.QuantileSketch([]float64{0.5})
	if qs[0] != 2 {
		t.Fatalf("quantile of constant |-2| = %v, want 2", qs[0])
	}
}

func TestResampleIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := New(5, 7, 3)
	for i := range g.Data() {
		g.Data()[i] = rng.Float64()
	}
	r := g.Resample(5, 7, 3)
	if MaxAbsDiff(g, r) > 1e-12 {
		t.Fatalf("identity resample changed values by %v", MaxAbsDiff(g, r))
	}
}

func TestResampleLinearExact(t *testing.T) {
	// Multilinear resampling reproduces a linear field exactly at any size.
	g := New(9, 9)
	for i := 0; i < 9; i++ {
		for j := 0; j < 9; j++ {
			g.Set(2*float64(i)+3*float64(j), i, j)
		}
	}
	r := g.Resample(17, 5)
	for i := 0; i < 17; i++ {
		for j := 0; j < 5; j++ {
			x := float64(i) * 8.0 / 16.0
			y := float64(j) * 8.0 / 4.0
			want := 2*x + 3*y
			if math.Abs(r.At(i, j)-want) > 1e-9 {
				t.Fatalf("Resample(%d,%d) = %v, want %v", i, j, r.At(i, j), want)
			}
		}
	}
}

func TestResampleEndpointsPreserved(t *testing.T) {
	g := FromSlice([]float64{1, 5, 2, 8}, 4)
	r := g.Resample(7)
	if r.At(0) != 1 || math.Abs(r.At(6)-8) > 1e-12 {
		t.Fatalf("endpoints not preserved: got %v and %v", r.At(0), r.At(6))
	}
}

func TestResampleRankMismatchPanics(t *testing.T) {
	g := New(4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("Resample with wrong rank did not panic")
		}
	}()
	g.Resample(4)
}

// Property: for any data, min <= mean <= max.
func TestQuickMeanBetweenMinMax(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true // skip pathological inputs
			}
		}
		g := FromSlice(raw, len(raw))
		mn, mx := g.MinMax()
		m := g.Mean()
		return m >= mn-1e-9*math.Abs(mn)-1e-300 && m <= mx+1e-9*math.Abs(mx)+1e-300
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: resampling a tensor to a coarser grid and back never produces
// values outside the original min/max (multilinear interpolation is a
// convex combination).
func TestQuickResampleConvexHull(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(12)
		g := New(n, n)
		for i := range g.Data() {
			g.Data()[i] = rng.NormFloat64() * 100
		}
		mn, mx := g.MinMax()
		m := 2 + rng.Intn(20)
		r := g.Resample(m, m)
		rmn, rmx := r.MinMax()
		if rmn < mn-1e-9 || rmx > mx+1e-9 {
			t.Fatalf("resampled values [%v,%v] escape original hull [%v,%v]", rmn, rmx, mn, mx)
		}
	}
}

func TestSlice(t *testing.T) {
	g := New(4, 5)
	for i := 0; i < 4; i++ {
		for j := 0; j < 5; j++ {
			g.Set(float64(10*i+j), i, j)
		}
	}
	s := g.Slice([]int{1, 2}, []int{3, 5})
	if d := s.Dims(); d[0] != 2 || d[1] != 3 {
		t.Fatalf("slice dims %v", d)
	}
	if s.At(0, 0) != 12 || s.At(1, 2) != 24 {
		t.Fatalf("slice values wrong: %v %v", s.At(0, 0), s.At(1, 2))
	}
	// The slice is a copy.
	s.Set(99, 0, 0)
	if g.At(1, 2) == 99 {
		t.Fatal("Slice aliased the original")
	}
}

func TestSlicePanics(t *testing.T) {
	g := New(4, 4)
	cases := [][2][]int{
		{{0}, {2, 2}},
		{{-1, 0}, {2, 2}},
		{{0, 0}, {5, 2}},
		{{2, 0}, {2, 2}},
	}
	for i, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			g.Slice(c[0], c[1])
		}()
	}
}
