package retrieval

import (
	"math"
	"math/rand"
	"testing"

	"pmgard/internal/bitplane"
)

// syntheticLevel builds a LevelInfo from random coefficients via the real
// bit-plane encoder so the error matrices have realistic shapes.
func syntheticLevel(t *testing.T, rng *rand.Rand, n int, scale float64, planes int) LevelInfo {
	t.Helper()
	coeffs := make([]float64, n)
	for i := range coeffs {
		coeffs[i] = rng.NormFloat64() * scale
	}
	enc, err := bitplane.EncodeLevel(coeffs, planes)
	if err != nil {
		t.Fatal(err)
	}
	sizes := make([]int64, planes)
	for k := range sizes {
		sizes[k] = int64(enc.PlaneSizeRaw())
	}
	return LevelInfo{ErrMatrix: enc.ErrMatrix, PlaneSizes: sizes}
}

func TestTheoryEstimator(t *testing.T) {
	e := TheoryEstimator{C: 2}
	if got := e.Estimate([]float64{1, 2, 3}); got != 12 {
		t.Fatalf("Estimate = %v, want 12", got)
	}
}

func TestPerLevelEstimator(t *testing.T) {
	e := PerLevelEstimator{C: []float64{1, 0.5, 2}}
	if got := e.Estimate([]float64{2, 4, 1}); got != 6 {
		t.Fatalf("Estimate = %v, want 6", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	e.Estimate([]float64{1})
}

func TestPlanForPlanesSizes(t *testing.T) {
	levels := []LevelInfo{
		{ErrMatrix: []float64{4, 2, 1}, PlaneSizes: []int64{10, 20}},
		{ErrMatrix: []float64{8, 4, 2}, PlaneSizes: []int64{30, 40}},
	}
	p, err := PlanForPlanes(levels, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if p.BytesPerLevel[0] != 10 || p.BytesPerLevel[1] != 70 {
		t.Fatalf("BytesPerLevel = %v", p.BytesPerLevel)
	}
	if p.Bytes != 80 {
		t.Fatalf("Bytes = %d, want 80", p.Bytes)
	}
}

func TestPlanForPlanesValidation(t *testing.T) {
	levels := []LevelInfo{{ErrMatrix: []float64{1, 0}, PlaneSizes: []int64{5}}}
	if _, err := PlanForPlanes(levels, []int{2}); err == nil {
		t.Fatal("out-of-range plane count accepted")
	}
	if _, err := PlanForPlanes(levels, []int{-1}); err == nil {
		t.Fatal("negative plane count accepted")
	}
	if _, err := PlanForPlanes(levels, []int{0, 0}); err == nil {
		t.Fatal("mismatched plane slice accepted")
	}
	bad := []LevelInfo{{ErrMatrix: []float64{1}, PlaneSizes: []int64{5}}}
	if _, err := PlanForPlanes(bad, []int{0}); err == nil {
		t.Fatal("inconsistent LevelInfo accepted")
	}
}

func TestGreedyPlanReachesTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	levels := []LevelInfo{
		syntheticLevel(t, rng, 8, 100, 32),
		syntheticLevel(t, rng, 64, 10, 32),
		syntheticLevel(t, rng, 512, 1, 32),
	}
	est := TheoryEstimator{C: 1.5}
	for _, tol := range []float64{100, 1, 1e-3, 1e-6} {
		p, err := GreedyPlan(levels, est, tol)
		if err != nil {
			t.Fatal(err)
		}
		if p.EstimatedError > tol {
			// Only acceptable if every plane was exhausted.
			for l, li := range levels {
				if p.Planes[l] < li.planes() {
					t.Fatalf("tol %g: estimate %g above tolerance with planes remaining", tol, p.EstimatedError)
				}
			}
		}
	}
}

func TestGreedyPlanMonotoneInTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	levels := []LevelInfo{
		syntheticLevel(t, rng, 16, 50, 24),
		syntheticLevel(t, rng, 128, 5, 24),
	}
	est := TheoryEstimator{C: 2}
	prevBytes := int64(-1)
	for _, tol := range []float64{10, 1, 0.1, 0.01, 0.001} {
		p, err := GreedyPlan(levels, est, tol)
		if err != nil {
			t.Fatal(err)
		}
		if p.Bytes < prevBytes {
			t.Fatalf("tighter tolerance %g fetched fewer bytes (%d < %d)", tol, p.Bytes, prevBytes)
		}
		prevBytes = p.Bytes
	}
}

func TestGreedyPlanLooseToleranceReadsNothing(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	levels := []LevelInfo{syntheticLevel(t, rng, 32, 1, 16)}
	// Tolerance above C·Err[0] requires no planes at all.
	tol := 1.5*levels[0].ErrMatrix[0] + 1
	p, err := GreedyPlan(levels, TheoryEstimator{C: 1.5}, tol)
	if err != nil {
		t.Fatal(err)
	}
	if p.Bytes != 0 || p.Planes[0] != 0 {
		t.Fatalf("loose tolerance fetched %d bytes, %v planes", p.Bytes, p.Planes)
	}
}

func TestGreedyPlanRejectsBadTolerance(t *testing.T) {
	levels := []LevelInfo{{ErrMatrix: []float64{1, 0}, PlaneSizes: []int64{1}}}
	for _, tol := range []float64{0, -1, math.NaN()} {
		if _, err := GreedyPlan(levels, TheoryEstimator{C: 1}, tol); err == nil {
			t.Fatalf("tolerance %v accepted", tol)
		}
	}
}

func TestGreedyPrefersCheapEfficientLevels(t *testing.T) {
	// Coarse level: huge error, tiny planes. Fine level: small error, huge
	// planes. Greedy must drain the coarse level first (Fig. 5b behaviour).
	coarse := LevelInfo{
		ErrMatrix:  []float64{100, 10, 1, 0.1, 0.01},
		PlaneSizes: []int64{4, 4, 4, 4},
	}
	fine := LevelInfo{
		ErrMatrix:  []float64{1, 0.1, 0.01, 0.001, 0.0001},
		PlaneSizes: []int64{4096, 4096, 4096, 4096},
	}
	p, err := GreedyPlan([]LevelInfo{coarse, fine}, TheoryEstimator{C: 1}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if p.Planes[0] < 3 {
		t.Fatalf("coarse level got %d planes, want ≥3 before touching fine level", p.Planes[0])
	}
	if p.Planes[1] > 1 {
		t.Fatalf("fine level got %d planes, want ≤1", p.Planes[1])
	}
}

func TestGreedyHandlesNonMonotoneErrMatrix(t *testing.T) {
	// A plane whose retrieval *increases* the max error (possible with
	// nega-binary prefixes) must not wedge the loop.
	level := LevelInfo{
		ErrMatrix:  []float64{10, 12, 1, 0.5, 0},
		PlaneSizes: []int64{8, 8, 8, 8},
	}
	p, err := GreedyPlan([]LevelInfo{level}, TheoryEstimator{C: 1}, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if p.EstimatedError > 0.6 {
		t.Fatalf("estimate %g above tolerance", p.EstimatedError)
	}
	if p.Planes[0] < 3 {
		t.Fatalf("planes = %v, want ≥3 to pass the non-monotone step", p.Planes)
	}
}

func TestGreedyExhaustsPlanesWhenToleranceUnreachable(t *testing.T) {
	level := LevelInfo{
		ErrMatrix:  []float64{10, 5, 2}, // residual error 2 > tol
		PlaneSizes: []int64{8, 8},
	}
	p, err := GreedyPlan([]LevelInfo{level}, TheoryEstimator{C: 1}, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if p.Planes[0] != 2 {
		t.Fatalf("planes = %v, want all 2 retrieved", p.Planes)
	}
	if p.EstimatedError != 2 {
		t.Fatalf("EstimatedError = %g, want residual 2", p.EstimatedError)
	}
}

func TestPerLevelEstimatorNeedsFewerBytesThanTheory(t *testing.T) {
	// With tight per-level constants the same tolerance should be met with
	// no more bytes than the pessimistic single-constant bound — the core
	// mechanism behind E-MGARD's savings.
	rng := rand.New(rand.NewSource(4))
	levels := []LevelInfo{
		syntheticLevel(t, rng, 8, 100, 32),
		syntheticLevel(t, rng, 64, 20, 32),
		syntheticLevel(t, rng, 512, 4, 32),
	}
	theory := TheoryEstimator{C: 3.375}
	learned := PerLevelEstimator{C: []float64{1.0, 0.8, 0.6}}
	for _, tol := range []float64{1, 0.01, 1e-4} {
		pt, err := GreedyPlan(levels, theory, tol)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := GreedyPlan(levels, learned, tol)
		if err != nil {
			t.Fatal(err)
		}
		if pl.Bytes > pt.Bytes {
			t.Fatalf("tol %g: learned bound fetched %d bytes > theory %d", tol, pl.Bytes, pt.Bytes)
		}
	}
}

func TestGreedyZeroSizePlanesInfiniteEfficiency(t *testing.T) {
	// Zero-byte planes (fully compressed-away) are free and must be taken
	// eagerly without dividing by zero.
	level := LevelInfo{
		ErrMatrix:  []float64{4, 2, 1},
		PlaneSizes: []int64{0, 16},
	}
	p, err := GreedyPlan([]LevelInfo{level}, TheoryEstimator{C: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.Planes[0] != 1 || p.Bytes != 0 {
		t.Fatalf("plan = %+v, want the free plane only", p)
	}
}

func TestGreedySequenceProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	levels := []LevelInfo{
		syntheticLevel(t, rng, 8, 100, 16),
		syntheticLevel(t, rng, 64, 10, 16),
	}
	steps, err := GreedySequence(levels)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 {
		t.Fatal("empty greedy sequence")
	}
	// Bytes are non-decreasing; plane counts only grow; the last step has
	// every plane retrieved.
	prevBytes := int64(-1)
	prevPlanes := []int{0, 0}
	for i, s := range steps {
		if s.Bytes < prevBytes {
			t.Fatalf("step %d: bytes decreased", i)
		}
		for l := range s.Planes {
			if s.Planes[l] < prevPlanes[l] {
				t.Fatalf("step %d: level %d plane count decreased", i, l)
			}
		}
		prevBytes, prevPlanes = s.Bytes, s.Planes
	}
	last := steps[len(steps)-1]
	for l, li := range levels {
		if last.Planes[l] != len(li.PlaneSizes) {
			t.Fatalf("sequence ended with level %d at %d planes, want %d",
				l, last.Planes[l], len(li.PlaneSizes))
		}
	}
}

func TestGreedyPlanConsistentWithSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	levels := []LevelInfo{
		syntheticLevel(t, rng, 16, 50, 24),
		syntheticLevel(t, rng, 128, 5, 24),
	}
	est := TheoryEstimator{C: 2}
	steps, err := GreedySequence(levels)
	if err != nil {
		t.Fatal(err)
	}
	tol := 0.01
	plan, err := GreedyPlan(levels, est, tol)
	if err != nil {
		t.Fatal(err)
	}
	// The plan must be a prefix point of the sequence: find it.
	found := plan.Bytes == 0
	for _, s := range steps {
		if s.Bytes == plan.Bytes {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("plan bytes %d not on the greedy path", plan.Bytes)
	}
}

func TestRefinePlanExtendsToTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	levels := []LevelInfo{
		syntheticLevel(t, rng, 16, 100, 24),
		syntheticLevel(t, rng, 128, 10, 24),
	}
	est := TheoryEstimator{C: 2}
	// Start far below what the tolerance needs.
	p, err := RefinePlan(levels, []int{1, 1}, est, 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.EstimatedError > 0.01 {
		t.Fatalf("estimate %g above tolerance after refine", p.EstimatedError)
	}
}

func TestRefinePlanShrinksOverProvisioned(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	levels := []LevelInfo{
		syntheticLevel(t, rng, 16, 100, 24),
		syntheticLevel(t, rng, 128, 10, 24),
	}
	est := TheoryEstimator{C: 2}
	// Start with everything and a loose tolerance: refine must shed planes.
	full := []int{24, 24}
	p, err := RefinePlan(levels, full, est, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Planes[0] == 24 && p.Planes[1] == 24 {
		t.Fatal("refine kept the full over-provisioned plan")
	}
	if p.EstimatedError > 10 {
		t.Fatalf("shrink broke the tolerance: %g", p.EstimatedError)
	}
	// The shrunk plan should cost no more than GreedyPlan from scratch
	// within a small slack (both are heuristics).
	g, err := GreedyPlan(levels, est, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p.Bytes > 2*g.Bytes+64 {
		t.Fatalf("refined plan %d bytes far above greedy %d", p.Bytes, g.Bytes)
	}
}

func TestRefinePlanValidation(t *testing.T) {
	levels := []LevelInfo{{ErrMatrix: []float64{1, 0}, PlaneSizes: []int64{4}}}
	if _, err := RefinePlan(levels, []int{0, 0}, TheoryEstimator{C: 1}, 1, 1); err == nil {
		t.Fatal("mismatched start accepted")
	}
	if _, err := RefinePlan(levels, []int{5}, TheoryEstimator{C: 1}, 1, 1); err == nil {
		t.Fatal("out-of-range start accepted")
	}
	if _, err := RefinePlan(levels, []int{0}, TheoryEstimator{C: 1}, -1, 1); err == nil {
		t.Fatal("negative tolerance accepted")
	}
	if _, err := RefinePlan(levels, []int{0}, TheoryEstimator{C: 1}, 1, 2); err == nil {
		t.Fatal("shrinkSlack > 1 accepted")
	}
}

func TestRefinePlanIdempotentAtOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	levels := []LevelInfo{
		syntheticLevel(t, rng, 16, 100, 24),
		syntheticLevel(t, rng, 128, 10, 24),
	}
	est := TheoryEstimator{C: 2}
	g, err := GreedyPlan(levels, est, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	p, err := RefinePlan(levels, g.Planes, est, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Refining an already-good plan must not blow the cost up.
	if p.Bytes > g.Bytes {
		t.Fatalf("refine inflated the plan: %d > %d", p.Bytes, g.Bytes)
	}
	if p.EstimatedError > 0.05 {
		t.Fatalf("refine broke the tolerance: %g", p.EstimatedError)
	}
}
