package retrieval

import "pmgard/internal/obs"

// countingEstimator wraps an ErrorEstimator and counts Estimate calls, the
// planner's unit of search work.
type countingEstimator struct {
	est ErrorEstimator
	n   int64
}

// Estimate implements ErrorEstimator.
func (c *countingEstimator) Estimate(levelErrs []float64) float64 {
	c.n++
	return c.est.Estimate(levelErrs)
}

// GreedyPlanObs is GreedyPlan with planner telemetry recorded into o:
//
//	retrieval.greedy.plans           counter — GreedyPlanObs invocations
//	retrieval.greedy.estimator_calls counter — estimator iterations walked
//	retrieval.plan span              — one per invocation, attrs tol/bytes
//
// A nil o is exactly GreedyPlan.
func GreedyPlanObs(levels []LevelInfo, est ErrorEstimator, tol float64, o *obs.Obs) (Plan, error) {
	if o == nil {
		return GreedyPlan(levels, est, tol)
	}
	sp := o.Span("retrieval.plan", nil)
	sp.SetAttr("tol", tol)
	counting := &countingEstimator{est: est}
	plan, err := GreedyPlan(levels, counting, tol)
	o.Counter("retrieval.greedy.plans").Add(1)
	o.Counter("retrieval.greedy.estimator_calls").Add(counting.n)
	if err == nil {
		sp.SetAttr("bytes", plan.Bytes)
	}
	sp.End()
	return plan, err
}
