// Package retrieval implements the progressive retrieval planner: given the
// per-level error matrices and compressed bit-plane sizes collected at
// compression time, it decides how many bit-planes to fetch from each
// coefficient level to satisfy an error tolerance (§II-C, §III-A).
//
// The planner is the integration point for the paper's contribution: the
// error estimator is pluggable, so the original theory bound (Eq. 6), the
// E-MGARD learned per-level bound (Eq. 7), or a fixed plane assignment from
// D-MGARD can all drive the same size interpreter.
package retrieval

import (
	"fmt"
	"math"
)

// LevelInfo describes one encoded coefficient level to the planner.
type LevelInfo struct {
	// ErrMatrix[b] is the max abs coefficient error after retrieving the
	// first b planes (len = planes+1).
	ErrMatrix []float64
	// PlaneSizes[k] is the stored (compressed) size in bytes of plane k
	// (len = planes).
	PlaneSizes []int64
}

func (li LevelInfo) planes() int { return len(li.PlaneSizes) }

func (li LevelInfo) validate() error {
	if len(li.ErrMatrix) != len(li.PlaneSizes)+1 {
		return fmt.Errorf("retrieval: ErrMatrix length %d does not match %d planes",
			len(li.ErrMatrix), len(li.PlaneSizes))
	}
	for k, s := range li.PlaneSizes {
		if s < 0 {
			return fmt.Errorf("retrieval: negative plane size at plane %d", k)
		}
	}
	return nil
}

// ErrorEstimator maps the per-level truncation errors Err[l][b_l] to an
// estimate of (an upper bound on) the reconstruction max error.
type ErrorEstimator interface {
	// Estimate returns the estimated max reconstruction error when level l
	// is truncated with max coefficient error levelErrs[l].
	Estimate(levelErrs []float64) float64
}

// TheoryEstimator is the original MGARD bound of Eq. 6: err ≤ C·Σ_l Err_l,
// with a single mesh-derived constant C applied to every level. It ignores
// sign cancellation between coefficient errors, which is exactly the
// over-pessimism the paper attacks.
type TheoryEstimator struct {
	// C is the mesh-derived mapping constant.
	C float64
}

// Estimate implements ErrorEstimator.
func (t TheoryEstimator) Estimate(levelErrs []float64) float64 {
	sum := 0.0
	for _, e := range levelErrs {
		sum += e
	}
	return t.C * sum
}

// PerLevelEstimator is the E-MGARD bound of Eq. 7: err ≤ Σ_l C_l·Err_l with
// a learned constant per level.
type PerLevelEstimator struct {
	// C[l] is the learned mapping constant for level l.
	C []float64
}

// Estimate implements ErrorEstimator.
func (p PerLevelEstimator) Estimate(levelErrs []float64) float64 {
	if len(levelErrs) != len(p.C) {
		panic(fmt.Sprintf("retrieval: estimator has %d constants, got %d levels", len(p.C), len(levelErrs)))
	}
	sum := 0.0
	for l, e := range levelErrs {
		sum += p.C[l] * e
	}
	return sum
}

// Plan is a retrieval decision: how many planes to fetch per level and what
// it costs.
type Plan struct {
	// Planes[l] is b_l, the number of bit-planes to retrieve from level l.
	Planes []int
	// BytesPerLevel[l] is the retrieval size contributed by level l.
	BytesPerLevel []int64
	// Bytes is the total retrieval size D of Eq. 1.
	Bytes int64
	// EstimatedError is the estimator's bound at the chosen plane counts.
	EstimatedError float64
}

// PlanForPlanes runs the size interpreter for a fixed plane assignment —
// the D-MGARD path, where a model predicts b_l directly.
func PlanForPlanes(levels []LevelInfo, planes []int) (Plan, error) {
	if len(planes) != len(levels) {
		return Plan{}, fmt.Errorf("retrieval: %d plane counts for %d levels", len(planes), len(levels))
	}
	p := Plan{
		Planes:        append([]int(nil), planes...),
		BytesPerLevel: make([]int64, len(levels)),
	}
	for l, li := range levels {
		if err := li.validate(); err != nil {
			return Plan{}, err
		}
		b := planes[l]
		if b < 0 || b > li.planes() {
			return Plan{}, fmt.Errorf("retrieval: level %d plane count %d out of range [0,%d]", l, b, li.planes())
		}
		for k := 0; k < b; k++ {
			p.BytesPerLevel[l] += li.PlaneSizes[k]
		}
		p.Bytes += p.BytesPerLevel[l]
	}
	return p, nil
}

// Step is one extension of the greedy search path: the state after
// fetching one more plane prefix.
type Step struct {
	// Level is the level that was extended.
	Level int
	// Planes is the per-level plane-count snapshot after the extension.
	Planes []int
	// Bytes is the cumulative retrieval size after the extension.
	Bytes int64
	// LevelErrs[l] is Err[l][b_l] after the extension.
	LevelErrs []float64
}

// GreedySequence returns the complete greedy accuracy-efficiency extension
// path, from zero planes to exhaustion, independent of any tolerance or
// estimator. The path is what MGARD's retriever walks; planners stop along
// it when their error estimate clears the tolerance, and the experiments
// use the full path to compute oracle (ideal) retrieval costs.
func GreedySequence(levels []LevelInfo) ([]Step, error) {
	L := len(levels)
	for _, li := range levels {
		if err := li.validate(); err != nil {
			return nil, err
		}
	}
	planes := make([]int, L)
	errs := make([]float64, L)
	var bytes int64
	for l, li := range levels {
		errs[l] = li.ErrMatrix[0]
	}
	// Nega-binary prefixes overshoot before they converge: decoding only
	// the top plane of a large coefficient yields a huge value, so
	// Err[b] can exceed Err[0] for b up to ~3 (the partial sums of a
	// base -2 expansion oscillate within (2/3)·2^(E+2-b) of the target).
	// A four-plane lookahead always sees past the overshoot window, so a
	// level with real error left is never starved.
	const lookahead = 4
	var steps []Step
	for {
		// Candidate extensions: add 1..lookahead planes on one level and
		// keep the best error-reduction-per-byte.
		bestLevel, bestStep := -1, 0
		bestEff := 0.0
		for l, li := range levels {
			for step := 1; step <= lookahead; step++ {
				b := planes[l] + step
				if b > li.planes() {
					continue
				}
				reduction := errs[l] - li.ErrMatrix[b]
				if reduction <= 0 {
					continue
				}
				size := int64(0)
				for k := planes[l]; k < b; k++ {
					size += li.PlaneSizes[k]
				}
				var eff float64
				if size == 0 {
					eff = math.Inf(1)
				} else {
					eff = reduction / float64(size)
				}
				if eff > bestEff {
					bestEff, bestLevel, bestStep = eff, l, step
				}
			}
		}
		if bestLevel < 0 {
			// No extension reduces error: fall back to refining the level
			// with the largest residual so the path always progresses.
			maxErr := 0.0
			for l, li := range levels {
				if planes[l] < li.planes() && errs[l] > maxErr {
					maxErr, bestLevel, bestStep = errs[l], l, 1
				}
			}
			if bestLevel < 0 {
				return steps, nil // everything exhausted
			}
		}
		for k := planes[bestLevel]; k < planes[bestLevel]+bestStep; k++ {
			bytes += levels[bestLevel].PlaneSizes[k]
		}
		planes[bestLevel] += bestStep
		errs[bestLevel] = levels[bestLevel].ErrMatrix[planes[bestLevel]]
		steps = append(steps, Step{
			Level:     bestLevel,
			Planes:    append([]int(nil), planes...),
			Bytes:     bytes,
			LevelErrs: append([]float64(nil), errs...),
		})
	}
}

// RefinePlan starts from an initial plane assignment (typically a D-MGARD
// prediction) and adjusts it until the estimator's bound sits at the
// tolerance: greedy accuracy-efficiency extensions while the estimate is
// above tol, then a cheap-first shrink pass that drops planes as long as
// the estimate stays within shrinkSlack·tol. This realizes the paper's
// future-work combination of the two models (§IV-E): D-MGARD proposes,
// E-MGARD's learned estimator verifies and corrects.
//
// shrinkSlack in (0,1] trades savings against bound violations: a learned
// estimator is unbiased rather than conservative, so shrinking all the way
// to the tolerance (slack 1) violates the bound about half the time;
// slack ~0.5 sheds only clearly-unneeded planes. 0 disables shrinking.
func RefinePlan(levels []LevelInfo, start []int, est ErrorEstimator, tol, shrinkSlack float64) (Plan, error) {
	if tol <= 0 || math.IsNaN(tol) {
		return Plan{}, fmt.Errorf("retrieval: tolerance %g must be positive", tol)
	}
	if shrinkSlack < 0 || shrinkSlack > 1 || math.IsNaN(shrinkSlack) {
		return Plan{}, fmt.Errorf("retrieval: shrinkSlack %g out of [0,1]", shrinkSlack)
	}
	if len(start) != len(levels) {
		return Plan{}, fmt.Errorf("retrieval: start has %d levels, want %d", len(start), len(levels))
	}
	planes := make([]int, len(levels))
	errs := make([]float64, len(levels))
	for l, li := range levels {
		if err := li.validate(); err != nil {
			return Plan{}, err
		}
		b := start[l]
		if b < 0 || b > li.planes() {
			return Plan{}, fmt.Errorf("retrieval: start level %d plane count %d out of range", l, b)
		}
		planes[l] = b
		errs[l] = li.ErrMatrix[b]
	}

	// Extend while the estimate misses the tolerance.
	const lookahead = 4
	for est.Estimate(errs) > tol {
		bestLevel, bestStep := -1, 0
		bestEff := 0.0
		for l, li := range levels {
			for step := 1; step <= lookahead; step++ {
				b := planes[l] + step
				if b > li.planes() {
					continue
				}
				reduction := errs[l] - li.ErrMatrix[b]
				if reduction <= 0 {
					continue
				}
				size := int64(0)
				for k := planes[l]; k < b; k++ {
					size += li.PlaneSizes[k]
				}
				var eff float64
				if size == 0 {
					eff = math.Inf(1)
				} else {
					eff = reduction / float64(size)
				}
				if eff > bestEff {
					bestEff, bestLevel, bestStep = eff, l, step
				}
			}
		}
		if bestLevel < 0 {
			maxErr := 0.0
			for l, li := range levels {
				if planes[l] < li.planes() && errs[l] > maxErr {
					maxErr, bestLevel, bestStep = errs[l], l, 1
				}
			}
			if bestLevel < 0 {
				break
			}
		}
		planes[bestLevel] += bestStep
		errs[bestLevel] = levels[bestLevel].ErrMatrix[planes[bestLevel]]
	}

	// Shrink: drop the plane freeing the most bytes while the estimate
	// stays safely inside the tolerance.
	shrinkTol := tol * shrinkSlack
	for shrinkSlack > 0 {
		bestLevel := -1
		var bestSave int64 = -1
		for l, li := range levels {
			if planes[l] == 0 {
				continue
			}
			old := errs[l]
			errs[l] = li.ErrMatrix[planes[l]-1]
			if est.Estimate(errs) <= shrinkTol {
				if save := li.PlaneSizes[planes[l]-1]; save > bestSave {
					bestSave, bestLevel = save, l
				}
			}
			errs[l] = old
		}
		if bestLevel < 0 {
			break
		}
		planes[bestLevel]--
		errs[bestLevel] = levels[bestLevel].ErrMatrix[planes[bestLevel]]
	}

	plan, err := PlanForPlanes(levels, planes)
	if err != nil {
		return Plan{}, err
	}
	plan.EstimatedError = est.Estimate(errs)
	return plan, nil
}

// GreedyPlan chooses plane counts by MGARD's greedy accuracy-efficiency
// search: starting from zero planes everywhere, it repeatedly fetches the
// plane prefix with the best error-reduction-per-byte until the estimator's
// bound drops to the tolerance (§II-C, Fig. 5 discussion). tol must be
// positive.
func GreedyPlan(levels []LevelInfo, est ErrorEstimator, tol float64) (Plan, error) {
	if tol <= 0 || math.IsNaN(tol) {
		return Plan{}, fmt.Errorf("retrieval: tolerance %g must be positive", tol)
	}
	steps, err := GreedySequence(levels)
	if err != nil {
		return Plan{}, err
	}
	planes := make([]int, len(levels))
	errs := make([]float64, len(levels))
	for l, li := range levels {
		errs[l] = li.ErrMatrix[0]
	}
	for _, s := range steps {
		if est.Estimate(errs) <= tol {
			break
		}
		planes = s.Planes
		errs = s.LevelErrs
	}
	plan, err := PlanForPlanes(levels, planes)
	if err != nil {
		return Plan{}, err
	}
	plan.EstimatedError = est.Estimate(errs)
	return plan, nil
}
