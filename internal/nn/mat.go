// Package nn is a from-scratch neural-network stack sufficient to train the
// paper's two models on CPU: dense matrices, fully-connected layers, ReLU
// and leaky-ReLU activations, MSE/MAE/Huber losses, SGD and Adam optimizers,
// a mini-batch trainer, and gob serialization of trained models.
//
// The implementation is deliberately small and deterministic: all random
// initialization and shuffling is driven by caller-provided seeds so that
// experiments are reproducible run-to-run.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Mat is a dense row-major matrix. Rows correspond to batch samples
// throughout the package.
type Mat struct {
	Rows, Cols int
	Data       []float64
}

// NewMat allocates a zero matrix.
func NewMat(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("nn: negative matrix shape %dx%d", rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// MatFromRows builds a matrix from row slices, which must all share a length.
func MatFromRows(rows [][]float64) *Mat {
	if len(rows) == 0 {
		return NewMat(0, 0)
	}
	cols := len(rows[0])
	m := NewMat(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("nn: ragged rows: row %d has %d cols, want %d", i, len(r), cols))
		}
		copy(m.Row(i), r)
	}
	return m
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a mutable view of row i.
func (m *Mat) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	c := NewMat(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MatMul returns a·b. Shapes must agree.
func MatMul(a, b *Mat) *Mat {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("nn: matmul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMat(a.Rows, b.Cols)
	// ikj loop order keeps the inner loop streaming over contiguous rows.
	// Training batches are dense, so no zero-skip: the branch would be pure
	// misprediction cost on the hot path.
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k := 0; k < a.Cols; k++ {
			av := arow[k]
			brow := b.Row(k)
			for j := range brow {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// MatMulATB returns aᵀ·b without materializing the transpose.
func MatMulATB(a, b *Mat) *Mat {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("nn: matmulATB shape mismatch %dx%d ᵀ· %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMat(a.Cols, b.Cols)
	for r := 0; r < a.Rows; r++ {
		arow := a.Row(r)
		brow := b.Row(r)
		for i, av := range arow {
			orow := out.Row(i)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulABT returns a·bᵀ without materializing the transpose.
func MatMulABT(a, b *Mat) *Mat {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("nn: matmulABT shape mismatch %dx%d · %dx%dᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMat(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			sum := 0.0
			for k := range arow {
				sum += arow[k] * brow[k]
			}
			orow[j] = sum
		}
	}
	return out
}

// heInit fills w with He-normal initialization for a layer with fanIn
// inputs, appropriate for (leaky-)ReLU networks.
func heInit(w []float64, fanIn int, rng *rand.Rand) {
	std := math.Sqrt(2.0 / float64(fanIn))
	for i := range w {
		w[i] = rng.NormFloat64() * std
	}
}
