package nn

import (
	"math/rand"
	"testing"
)

// randMat fills a matrix with dense (no zeros) normal values, the shape of
// a real training batch.
func randMat(rng *rand.Rand, rows, cols int) *Mat {
	m := NewMat(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() + 3 // keep away from zero
	}
	return m
}

// BenchmarkMatMul measures the dense a·b product on a training-shaped
// batch (64×64 · 64×64). The inner loop carries no zero-skip branch: on
// dense batches it was pure misprediction cost.
func BenchmarkMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randMat(rng, 64, 64)
	y := randMat(rng, 64, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MatMul(x, y)
	}
}

// BenchmarkMatMulATB measures the aᵀ·b product used by the backward pass.
func BenchmarkMatMulATB(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := randMat(rng, 64, 64)
	y := randMat(rng, 64, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MatMulATB(x, y)
	}
}
