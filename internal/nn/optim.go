package nn

import (
	"fmt"
	"math"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update to every parameter and leaves the gradients
	// untouched (callers ZeroGrad between batches).
	Step(params []*Param)
}

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64

	velocity map[*Param][]float64
}

// NewSGD returns an SGD optimizer. lr must be positive.
func NewSGD(lr, momentum float64) *SGD {
	if lr <= 0 {
		panic(fmt.Sprintf("nn: SGD learning rate %g must be positive", lr))
	}
	return &SGD{LR: lr, Momentum: momentum, velocity: make(map[*Param][]float64)}
}

// Step implements Optimizer.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		if s.Momentum == 0 {
			for i := range p.Value {
				p.Value[i] -= s.LR * p.Grad[i]
			}
			continue
		}
		v := s.velocity[p]
		if v == nil {
			v = make([]float64, len(p.Value))
			s.velocity[p] = v
		}
		for i := range p.Value {
			v[i] = s.Momentum*v[i] - s.LR*p.Grad[i]
			p.Value[i] += v[i]
		}
	}
}

// Adam is the Adam optimizer (Kingma & Ba) with bias correction, the
// training configuration used for both D-MGARD and E-MGARD.
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	t int
	m map[*Param][]float64
	v map[*Param][]float64
}

// NewAdam returns an Adam optimizer with standard defaults for the moment
// decays (0.9, 0.999) and epsilon (1e-8).
func NewAdam(lr float64) *Adam {
	if lr <= 0 {
		panic(fmt.Sprintf("nn: Adam learning rate %g must be positive", lr))
	}
	return &Adam{
		LR:    lr,
		Beta1: 0.9,
		Beta2: 0.999,
		Eps:   1e-8,
		m:     make(map[*Param][]float64),
		v:     make(map[*Param][]float64),
	}
}

// Step implements Optimizer.
func (a *Adam) Step(params []*Param) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m := a.m[p]
		if m == nil {
			m = make([]float64, len(p.Value))
			a.m[p] = m
		}
		v := a.v[p]
		if v == nil {
			v = make([]float64, len(p.Value))
			a.v[p] = v
		}
		for i := range p.Value {
			g := p.Grad[i]
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			mhat := m[i] / c1
			vhat := v[i] / c2
			p.Value[i] -= a.LR * mhat / (math.Sqrt(vhat) + a.Eps)
		}
	}
}
