package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func TestMatMulKnown(t *testing.T) {
	a := MatFromRows([][]float64{{1, 2}, {3, 4}})
	b := MatFromRows([][]float64{{5, 6}, {7, 8}})
	c := MatMul(a, b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("MatMul[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMatMulVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	randMat := func(r, c int) *Mat {
		m := NewMat(r, c)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		return m
	}
	a := randMat(4, 6)
	b := randMat(4, 3)
	// aᵀ·b via MatMulATB must equal explicit transpose product.
	at := NewMat(a.Cols, a.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	want := MatMul(at, b)
	got := MatMulATB(a, b)
	for i := range want.Data {
		if math.Abs(want.Data[i]-got.Data[i]) > 1e-12 {
			t.Fatal("MatMulATB disagrees with explicit transpose")
		}
	}
	// a·bᵀ via MatMulABT.
	c := randMat(5, 6)
	bt := NewMat(c.Cols, c.Rows)
	for i := 0; i < c.Rows; i++ {
		for j := 0; j < c.Cols; j++ {
			bt.Set(j, i, c.At(i, j))
		}
	}
	want2 := MatMul(a, bt)
	got2 := MatMulABT(a, c)
	for i := range want2.Data {
		if math.Abs(want2.Data[i]-got2.Data[i]) > 1e-12 {
			t.Fatal("MatMulABT disagrees with explicit transpose")
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	MatMul(NewMat(2, 3), NewMat(2, 3))
}

func TestMatFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged rows did not panic")
		}
	}()
	MatFromRows([][]float64{{1, 2}, {3}})
}

// numericalGradient estimates d(loss)/d(param) by central differences.
func numericalGradient(model *Sequential, loss Loss, x, y *Mat, p *Param, i int) float64 {
	const h = 1e-6
	orig := p.Value[i]
	p.Value[i] = orig + h
	lp := loss.Forward(model.Forward(x), y)
	p.Value[i] = orig - h
	lm := loss.Forward(model.Forward(x), y)
	p.Value[i] = orig
	return (lp - lm) / (2 * h)
}

func TestGradientCheckAllLosses(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	model := MLP(3, []int{5, 4}, 2, 0.1, rng)
	x := NewMat(7, 3)
	y := NewMat(7, 2)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for i := range y.Data {
		y.Data[i] = rng.NormFloat64() * 2
	}
	for _, loss := range []Loss{MSE{}, Huber{Delta: 1}, MAE{}} {
		params := model.Params()
		ZeroGrad(params)
		pred := model.Forward(x)
		model.Backward(loss.Backward(pred, y))
		checked := 0
		for _, p := range params {
			step := len(p.Value)/5 + 1
			for i := 0; i < len(p.Value); i += step {
				num := numericalGradient(model, loss, x, y, p, i)
				ana := p.Grad[i]
				scale := math.Max(math.Abs(num)+math.Abs(ana), 1e-4)
				if math.Abs(num-ana)/scale > 1e-4 {
					t.Fatalf("%s: gradient mismatch: analytic %g vs numeric %g", loss.Name(), ana, num)
				}
				checked++
			}
		}
		if checked < 10 {
			t.Fatalf("only checked %d gradients", checked)
		}
	}
}

func TestLeakyReLUForwardBackward(t *testing.T) {
	r := NewLeakyReLU(0.1)
	x := MatFromRows([][]float64{{-2, 0, 3}})
	out := r.Forward(x)
	want := []float64{-0.2, 0, 3}
	for i, w := range want {
		if math.Abs(out.Data[i]-w) > 1e-15 {
			t.Fatalf("forward[%d] = %v, want %v", i, out.Data[i], w)
		}
	}
	g := r.Backward(MatFromRows([][]float64{{1, 1, 1}}))
	wantG := []float64{0.1, 1, 1}
	for i, w := range wantG {
		if g.Data[i] != w {
			t.Fatalf("backward[%d] = %v, want %v", i, g.Data[i], w)
		}
	}
}

func TestHuberMatchesPaperEquation(t *testing.T) {
	h := Huber{Delta: 1}
	pred := MatFromRows([][]float64{{0.5}})
	target := MatFromRows([][]float64{{0}})
	// |e| = 0.5 < 1: quadratic branch, 0.5·0.25 = 0.125.
	if got := h.Forward(pred, target); math.Abs(got-0.125) > 1e-15 {
		t.Fatalf("quadratic branch = %v, want 0.125", got)
	}
	pred2 := MatFromRows([][]float64{{3}})
	// |e| = 3 ≥ 1: linear branch, 3 - 0.5 = 2.5.
	if got := h.Forward(pred2, target); math.Abs(got-2.5) > 1e-15 {
		t.Fatalf("linear branch = %v, want 2.5", got)
	}
}

func TestHuberBetweenMAEAndMSEGradients(t *testing.T) {
	// For large errors Huber's gradient saturates like MAE, unlike MSE.
	pred := MatFromRows([][]float64{{100}})
	target := MatFromRows([][]float64{{0}})
	gh := Huber{Delta: 1}.Backward(pred, target).Data[0]
	gm := MSE{}.Backward(pred, target).Data[0]
	if gh != 1 {
		t.Fatalf("Huber gradient at large error = %v, want saturated 1", gh)
	}
	if gm != 200 {
		t.Fatalf("MSE gradient = %v, want 200", gm)
	}
}

func TestLossByName(t *testing.T) {
	for _, name := range []string{"mse", "mae", "huber"} {
		l, err := LossByName(name)
		if err != nil || l.Name() != name {
			t.Fatalf("LossByName(%q) = %v, %v", name, l, err)
		}
	}
	if _, err := LossByName("hinge"); err == nil {
		t.Fatal("unknown loss accepted")
	}
}

func TestTrainLearnsLinearMap(t *testing.T) {
	// y = 2x₀ - x₁ + 0.5 learned by a small MLP to low error.
	rng := rand.New(rand.NewSource(3))
	n := 256
	x := NewMat(n, 2)
	y := NewMat(n, 1)
	for i := 0; i < n; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		y.Set(i, 0, 2*a-b+0.5)
	}
	model := MLP(2, []int{16, 16}, 1, 0.01, rng)
	hist, err := Train(model, x, y, TrainConfig{
		Epochs: 200, BatchSize: 32, Seed: 1,
		Loss: MSE{}, Optimizer: NewAdam(0.01),
	})
	if err != nil {
		t.Fatal(err)
	}
	if hist[len(hist)-1] > 1e-3 {
		t.Fatalf("final training loss %g, want < 1e-3 (first %g)", hist[len(hist)-1], hist[0])
	}
	// Check generalization on fresh points.
	test := MatFromRows([][]float64{{1, 1}, {-0.5, 0.3}})
	pred := Predict(model, test)
	wants := []float64{1.5, -0.8}
	for i, w := range wants {
		if math.Abs(pred.At(i, 0)-w) > 0.15 {
			t.Fatalf("pred[%d] = %v, want ≈%v", i, pred.At(i, 0), w)
		}
	}
}

func TestTrainDeterministicAcrossRuns(t *testing.T) {
	build := func() (*Sequential, *Mat, *Mat) {
		rng := rand.New(rand.NewSource(4))
		x := NewMat(64, 3)
		y := NewMat(64, 1)
		for i := range x.Data {
			x.Data[i] = rng.NormFloat64()
		}
		for i := range y.Data {
			y.Data[i] = rng.NormFloat64()
		}
		return MLP(3, []int{8}, 1, 0.01, rng), x, y
	}
	m1, x1, y1 := build()
	m2, x2, y2 := build()
	cfg := TrainConfig{Epochs: 5, BatchSize: 16, Seed: 9, Loss: Huber{Delta: 1}, Optimizer: NewAdam(0.001)}
	h1, err := Train(m1, x1, y1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Optimizer = NewAdam(0.001)
	h2, err := Train(m2, x2, y2, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatalf("training not deterministic: epoch %d losses %g vs %g", i, h1[i], h2[i])
		}
	}
}

func TestTrainConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := MLP(1, nil, 1, 0, rng)
	x, y := NewMat(4, 1), NewMat(4, 1)
	bad := []TrainConfig{
		{Epochs: 0, BatchSize: 1, Loss: MSE{}, Optimizer: NewSGD(0.1, 0)},
		{Epochs: 1, BatchSize: 0, Loss: MSE{}, Optimizer: NewSGD(0.1, 0)},
		{Epochs: 1, BatchSize: 1, Optimizer: NewSGD(0.1, 0)},
		{Epochs: 1, BatchSize: 1, Loss: MSE{}},
	}
	for i, cfg := range bad {
		if _, err := Train(m, x, y, cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	if _, err := Train(m, NewMat(3, 1), NewMat(4, 1), bad[0]); err == nil {
		t.Error("mismatched sample counts accepted")
	}
}

func TestSGDMomentumConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 128
	x := NewMat(n, 1)
	y := NewMat(n, 1)
	for i := 0; i < n; i++ {
		v := rng.NormFloat64()
		x.Set(i, 0, v)
		y.Set(i, 0, 3*v)
	}
	model := MLP(1, []int{8}, 1, 0.01, rng)
	hist, err := Train(model, x, y, TrainConfig{
		Epochs: 100, BatchSize: 32, Seed: 2, Loss: MSE{}, Optimizer: NewSGD(0.01, 0.9),
	})
	if err != nil {
		t.Fatal(err)
	}
	if hist[len(hist)-1] > hist[0]/10 {
		t.Fatalf("SGD+momentum did not converge: %g → %g", hist[0], hist[len(hist)-1])
	}
}

func TestScalerRoundTrip(t *testing.T) {
	x := MatFromRows([][]float64{{1, 100, 5}, {2, 200, 5}, {3, 300, 5}})
	s := FitScaler(x)
	tx := s.Transform(x)
	// Columns 0 and 1 standardized; column 2 constant → unit scale.
	for j := 0; j < 2; j++ {
		mean, variance := 0.0, 0.0
		for i := 0; i < 3; i++ {
			mean += tx.At(i, j)
		}
		mean /= 3
		for i := 0; i < 3; i++ {
			d := tx.At(i, j) - mean
			variance += d * d
		}
		variance /= 3
		if math.Abs(mean) > 1e-12 || math.Abs(variance-1) > 1e-9 {
			t.Fatalf("col %d: mean %g var %g after standardize", j, mean, variance)
		}
	}
	if tx.At(0, 2) != 0 {
		t.Fatalf("constant column transformed to %g, want 0", tx.At(0, 2))
	}
	row := []float64{2, 200, 5}
	s.TransformRow(row)
	for j, v := range row {
		if math.Abs(v-tx.At(1, j)) > 1e-12 {
			t.Fatalf("TransformRow disagrees with Transform at col %d", j)
		}
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	model := MLP(4, []int{8, 6}, 2, 0.01, rng)
	x := NewMat(3, 4)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	want := model.Forward(x)

	var buf bytes.Buffer
	if err := Save(&buf, model); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := loaded.Forward(x)
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatal("loaded model predicts differently")
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestMLPArchitecture(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	// Six hidden layers, as in the paper's D-MGARD MLP (Fig. 6c).
	m := MLP(10, []int{64, 64, 64, 64, 64, 64}, 1, 0.01, rng)
	// 6 linear+act pairs plus output linear = 13 layers.
	if len(m.Layers) != 13 {
		t.Fatalf("layer count = %d, want 13", len(m.Layers))
	}
	out := m.Forward(NewMat(2, 10))
	if out.Rows != 2 || out.Cols != 1 {
		t.Fatalf("output shape %dx%d, want 2x1", out.Rows, out.Cols)
	}
}

func TestTrainValidationSplitConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	m := MLP(1, nil, 1, 0, rng)
	x, y := NewMat(10, 1), NewMat(10, 1)
	base := TrainConfig{Epochs: 2, BatchSize: 2, Loss: MSE{}, Optimizer: NewSGD(0.01, 0)}
	bad := base
	bad.ValFrac = -0.1
	if _, err := Train(m, x, y, bad); err == nil {
		t.Error("negative ValFrac accepted")
	}
	bad = base
	bad.ValFrac = 1
	if _, err := Train(m, x, y, bad); err == nil {
		t.Error("ValFrac=1 accepted")
	}
	bad = base
	bad.Patience = 3
	if _, err := Train(m, x, y, bad); err == nil {
		t.Error("Patience without ValFrac accepted")
	}
	bad = base
	bad.ValFrac = 0.01 // empty split on 10 samples
	if _, err := Train(m, x, y, bad); err == nil {
		t.Error("empty validation split accepted")
	}
}

func TestTrainEarlyStopping(t *testing.T) {
	// A trivially learnable constant target converges immediately, so
	// patience should halt training well before the epoch budget.
	rng := rand.New(rand.NewSource(21))
	n := 128
	x := NewMat(n, 2)
	y := NewMat(n, 1)
	for i := 0; i < n; i++ {
		x.Set(i, 0, rng.NormFloat64())
		x.Set(i, 1, rng.NormFloat64())
		// Pure noise target: validation loss cannot keep improving.
		y.Set(i, 0, rng.NormFloat64())
	}
	m := MLP(2, []int{8}, 1, 0.01, rng)
	hist, err := Train(m, x, y, TrainConfig{
		Epochs: 500, BatchSize: 32, Seed: 3,
		Loss: MSE{}, Optimizer: NewAdam(0.01),
		ValFrac: 0.25, Patience: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) >= 500 {
		t.Fatalf("early stopping never triggered (%d epochs)", len(hist))
	}
}
