package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// layerSpec is the gob-serializable description of one layer.
type layerSpec struct {
	Kind    string // "linear" or "leakyrelu"
	In, Out int
	Alpha   float64
	W, B    []float64
}

// modelFile is the on-disk representation of a Sequential model.
type modelFile struct {
	Version int
	Specs   []layerSpec
}

// Save writes a Sequential model to w in gob format.
func Save(w io.Writer, m *Sequential) error {
	mf := modelFile{Version: 1}
	for _, l := range m.Layers {
		switch t := l.(type) {
		case *Linear:
			mf.Specs = append(mf.Specs, layerSpec{
				Kind: "linear", In: t.In, Out: t.Out,
				W: t.W.Value, B: t.B.Value,
			})
		case *LeakyReLU:
			mf.Specs = append(mf.Specs, layerSpec{Kind: "leakyrelu", Alpha: t.Alpha})
		default:
			return fmt.Errorf("nn: cannot serialize layer of type %T", l)
		}
	}
	if err := gob.NewEncoder(w).Encode(mf); err != nil {
		return fmt.Errorf("nn: encode model: %w", err)
	}
	return nil
}

// Load reads a Sequential model written by Save.
func Load(r io.Reader) (*Sequential, error) {
	var mf modelFile
	if err := gob.NewDecoder(r).Decode(&mf); err != nil {
		return nil, fmt.Errorf("nn: decode model: %w", err)
	}
	if mf.Version != 1 {
		return nil, fmt.Errorf("nn: unsupported model version %d", mf.Version)
	}
	var layers []Layer
	for i, sp := range mf.Specs {
		switch sp.Kind {
		case "linear":
			if sp.In <= 0 || sp.Out <= 0 || len(sp.W) != sp.In*sp.Out || len(sp.B) != sp.Out {
				return nil, fmt.Errorf("nn: corrupt linear spec at layer %d", i)
			}
			l := &Linear{
				In: sp.In, Out: sp.Out,
				W: &Param{Value: sp.W, Grad: make([]float64, len(sp.W))},
				B: &Param{Value: sp.B, Grad: make([]float64, len(sp.B))},
			}
			layers = append(layers, l)
		case "leakyrelu":
			layers = append(layers, NewLeakyReLU(sp.Alpha))
		default:
			return nil, fmt.Errorf("nn: unknown layer kind %q at layer %d", sp.Kind, i)
		}
	}
	return NewSequential(layers...), nil
}

// SaveFile writes the model to a file path.
func SaveFile(path string, m *Sequential) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("nn: create %s: %w", path, err)
	}
	if err := Save(f, m); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("nn: close %s: %w", path, err)
	}
	return nil
}

// LoadFile reads a model from a file path.
func LoadFile(path string) (*Sequential, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("nn: open %s: %w", path, err)
	}
	defer f.Close()
	return Load(f)
}
