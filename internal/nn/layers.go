package nn

import (
	"fmt"
	"math/rand"
)

// Param is one trainable parameter tensor with its gradient accumulator.
type Param struct {
	Value []float64
	Grad  []float64
}

// Layer is one differentiable stage of a network. Forward must be called
// before Backward; layers cache whatever they need for the backward pass and
// are therefore not safe for concurrent use.
type Layer interface {
	// Forward computes the layer output for a batch.
	Forward(x *Mat) *Mat
	// Backward receives ∂L/∂output and returns ∂L/∂input, accumulating
	// parameter gradients along the way.
	Backward(grad *Mat) *Mat
	// Params returns the trainable parameters (nil for activations).
	Params() []*Param
}

// Linear is a fully-connected layer: y = x·Wᵀ + b, with W of shape out×in.
type Linear struct {
	In, Out int
	W       *Param // len Out·In, row-major out×in
	B       *Param // len Out

	x *Mat // cached input
}

// NewLinear builds a Linear layer with He-normal weights drawn from rng and
// zero biases.
func NewLinear(in, out int, rng *rand.Rand) *Linear {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: invalid Linear shape %d→%d", in, out))
	}
	l := &Linear{
		In:  in,
		Out: out,
		W:   &Param{Value: make([]float64, out*in), Grad: make([]float64, out*in)},
		B:   &Param{Value: make([]float64, out), Grad: make([]float64, out)},
	}
	heInit(l.W.Value, in, rng)
	return l
}

// Forward implements Layer.
func (l *Linear) Forward(x *Mat) *Mat {
	if x.Cols != l.In {
		panic(fmt.Sprintf("nn: Linear expects %d inputs, got %d", l.In, x.Cols))
	}
	l.x = x
	w := &Mat{Rows: l.Out, Cols: l.In, Data: l.W.Value}
	out := MatMulABT(x, w)
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		for j := range row {
			row[j] += l.B.Value[j]
		}
	}
	return out
}

// Backward implements Layer.
func (l *Linear) Backward(grad *Mat) *Mat {
	if l.x == nil {
		panic("nn: Linear.Backward before Forward")
	}
	if grad.Cols != l.Out || grad.Rows != l.x.Rows {
		panic(fmt.Sprintf("nn: Linear.Backward got %dx%d, want %dx%d", grad.Rows, grad.Cols, l.x.Rows, l.Out))
	}
	// dW = gradᵀ·x ; db = column sums of grad ; dx = grad·W.
	dw := MatMulATB(grad, l.x)
	for i, g := range dw.Data {
		l.W.Grad[i] += g
	}
	for i := 0; i < grad.Rows; i++ {
		row := grad.Row(i)
		for j, g := range row {
			l.B.Grad[j] += g
		}
	}
	w := &Mat{Rows: l.Out, Cols: l.In, Data: l.W.Value}
	return MatMul(grad, w)
}

// Params implements Layer.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// Replica implements Replicable: the copy shares the weight and bias values
// with the original but owns fresh gradient accumulators and an independent
// activation cache.
func (l *Linear) Replica() Layer {
	return &Linear{
		In:  l.In,
		Out: l.Out,
		W:   &Param{Value: l.W.Value, Grad: make([]float64, len(l.W.Grad))},
		B:   &Param{Value: l.B.Value, Grad: make([]float64, len(l.B.Grad))},
	}
}

// LeakyReLU applies max(x, alpha·x) elementwise. The paper's D-MGARD MLPs
// use alpha-leaky rectifiers between the hidden layers.
type LeakyReLU struct {
	Alpha float64
	x     *Mat
}

// NewLeakyReLU returns a leaky rectifier with the given negative slope.
func NewLeakyReLU(alpha float64) *LeakyReLU { return &LeakyReLU{Alpha: alpha} }

// NewReLU returns a standard rectifier (alpha = 0), used by E-MGARD's
// encoder network.
func NewReLU() *LeakyReLU { return &LeakyReLU{} }

// Forward implements Layer.
func (r *LeakyReLU) Forward(x *Mat) *Mat {
	r.x = x
	out := x.Clone()
	for i, v := range out.Data {
		if v < 0 {
			out.Data[i] = r.Alpha * v
		}
	}
	return out
}

// Backward implements Layer.
func (r *LeakyReLU) Backward(grad *Mat) *Mat {
	if r.x == nil {
		panic("nn: LeakyReLU.Backward before Forward")
	}
	out := grad.Clone()
	for i, v := range r.x.Data {
		if v < 0 {
			out.Data[i] *= r.Alpha
		}
	}
	return out
}

// Params implements Layer.
func (r *LeakyReLU) Params() []*Param { return nil }

// Replica implements Replicable.
func (r *LeakyReLU) Replica() Layer { return &LeakyReLU{Alpha: r.Alpha} }

// Sequential chains layers.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a network from the given layers.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Forward implements Layer.
func (s *Sequential) Forward(x *Mat) *Mat {
	for _, l := range s.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward implements Layer.
func (s *Sequential) Backward(grad *Mat) *Mat {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params implements Layer.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Replicable is implemented by layers that can produce a data-parallel
// replica: a copy whose Forward/Backward caches and gradient accumulators
// are private, while parameter values stay shared with the original so an
// optimizer step on the original is immediately visible to every replica.
type Replicable interface {
	// Replica returns the shared-value, private-state copy.
	Replica() Layer
}

// Replica builds a data-parallel replica of the whole network. It fails if
// any layer does not implement Replicable.
func (s *Sequential) Replica() (*Sequential, error) {
	layers := make([]Layer, len(s.Layers))
	for i, l := range s.Layers {
		r, ok := l.(Replicable)
		if !ok {
			return nil, fmt.Errorf("nn: layer %d (%T) is not replicable", i, l)
		}
		layers[i] = r.Replica()
	}
	return NewSequential(layers...), nil
}

// ZeroGrad clears all parameter gradients.
func ZeroGrad(params []*Param) {
	for _, p := range params {
		for i := range p.Grad {
			p.Grad[i] = 0
		}
	}
}

// MLP builds the fully-connected architecture used throughout the paper: an
// input layer, len(hidden) hidden layers with the given activation slope
// between them, and a linear output layer.
func MLP(in int, hidden []int, out int, leakyAlpha float64, rng *rand.Rand) *Sequential {
	var layers []Layer
	prev := in
	for _, h := range hidden {
		layers = append(layers, NewLinear(prev, h, rng), NewLeakyReLU(leakyAlpha))
		prev = h
	}
	layers = append(layers, NewLinear(prev, out, rng))
	return NewSequential(layers...)
}
