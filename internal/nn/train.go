package nn

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"pmgard/internal/obs"
	"pmgard/internal/pool"
)

// microBatchRows is the fixed micro-batch size the data-parallel trainer
// chunks each mini-batch into. The chunk size is deliberately independent of
// the worker count: chunk boundaries (and therefore every floating-point
// summation order) depend only on the batch, so gradients are bit-identical
// whether 2 or 32 workers execute the chunks.
const microBatchRows = 64

// TrainConfig configures a mini-batch training run.
type TrainConfig struct {
	// Epochs is the number of passes over the training set.
	Epochs int
	// BatchSize is the mini-batch size; batches are drawn without
	// replacement from a fresh shuffle each epoch.
	BatchSize int
	// Seed drives the shuffle so runs are reproducible.
	Seed int64
	// Loss is the training objective.
	Loss Loss
	// Optimizer applies the updates.
	Optimizer Optimizer
	// Progress, if non-nil, is invoked after every epoch with the mean
	// training loss.
	Progress func(epoch int, loss float64)
	// ValFrac, if positive, holds out that fraction of the samples as a
	// validation split (taken from the end of the shuffled order once, so
	// the split is stable across epochs).
	ValFrac float64
	// Patience, if positive, stops training once the validation loss has
	// not improved for that many consecutive epochs. Requires ValFrac > 0.
	Patience int
	// Workers, when > 1, computes each mini-batch's gradient data-parallel:
	// the batch is cut into fixed-size micro-batches, each replica computes
	// its chunk's gradient into a private snapshot, and the snapshots are
	// summed in chunk order weighted by chunk size. The result is
	// bit-identical for every Workers > 1 value; it differs from the
	// sequential path (Workers ≤ 1, the default) only by floating-point
	// summation order, exactly as a different batch size would.
	Workers int
	// Obs records training telemetry — per-epoch loss/grad-norm gauges,
	// micro-batch counters and throughput, epoch spans — when set. nil (the
	// default) disables it and never changes the trained weights.
	Obs *obs.Obs
}

func (c TrainConfig) validate(n int) error {
	if c.Epochs < 1 {
		return fmt.Errorf("nn: Epochs %d < 1", c.Epochs)
	}
	if c.BatchSize < 1 {
		return fmt.Errorf("nn: BatchSize %d < 1", c.BatchSize)
	}
	if c.Loss == nil {
		return fmt.Errorf("nn: Loss not set")
	}
	if c.Optimizer == nil {
		return fmt.Errorf("nn: Optimizer not set")
	}
	if n == 0 {
		return fmt.Errorf("nn: empty training set")
	}
	if c.ValFrac < 0 || c.ValFrac >= 1 {
		return fmt.Errorf("nn: ValFrac %g out of [0,1)", c.ValFrac)
	}
	if c.Patience > 0 && c.ValFrac == 0 {
		return fmt.Errorf("nn: Patience requires ValFrac > 0")
	}
	if c.ValFrac > 0 && int(c.ValFrac*float64(n)) == 0 {
		return fmt.Errorf("nn: ValFrac %g leaves an empty validation split for %d samples", c.ValFrac, n)
	}
	return nil
}

// Train fits model to (x, y) and returns the per-epoch mean training loss.
// x and y must have the same number of rows.
func Train(model *Sequential, x, y *Mat, cfg TrainConfig) ([]float64, error) {
	if x.Rows != y.Rows {
		return nil, fmt.Errorf("nn: %d samples vs %d targets", x.Rows, y.Rows)
	}
	if err := cfg.validate(x.Rows); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	params := model.Params()
	var replicas []*Sequential
	if cfg.Workers > 1 {
		replicas = make([]*Sequential, cfg.Workers)
		for w := range replicas {
			rep, err := model.Replica()
			if err != nil {
				return nil, err
			}
			replicas[w] = rep
		}
	}
	order := make([]int, x.Rows)
	for i := range order {
		order[i] = i
	}
	// Carve a stable validation split off a one-time shuffle.
	var valIdx []int
	if cfg.ValFrac > 0 {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		nVal := int(cfg.ValFrac * float64(len(order)))
		valIdx = append([]int(nil), order[len(order)-nVal:]...)
		order = order[:len(order)-nVal]
	}

	evalVal := func() float64 {
		bx := NewMat(len(valIdx), x.Cols)
		by := NewMat(len(valIdx), y.Cols)
		for i, ix := range valIdx {
			copy(bx.Row(i), x.Row(ix))
			copy(by.Row(i), y.Row(ix))
		}
		return cfg.Loss.Forward(model.Forward(bx), by)
	}

	o := cfg.Obs
	trainSpan := o.Span("nn.train", nil)
	trainSpan.SetAttr("samples", len(order))
	defer trainSpan.End()
	microM := pool.NewMetrics(o, "nn.microbatch")
	history := make([]float64, 0, cfg.Epochs)
	bestVal := math.Inf(1)
	stale := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		epochSpan := o.Span("nn.epoch", trainSpan)
		epochSpan.SetAttr("epoch", epoch)
		epochStart := time.Now()
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		epochLoss, batches := 0.0, 0
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			var loss float64
			if replicas != nil {
				loss = parallelBatch(replicas, x, y, order[start:end], cfg.Loss, params, microM)
			} else {
				bx := NewMat(end-start, x.Cols)
				by := NewMat(end-start, y.Cols)
				for i, ix := range order[start:end] {
					copy(bx.Row(i), x.Row(ix))
					copy(by.Row(i), y.Row(ix))
				}
				pred := model.Forward(bx)
				loss = cfg.Loss.Forward(pred, by)
				ZeroGrad(params)
				model.Backward(cfg.Loss.Backward(pred, by))
			}
			if math.IsNaN(loss) || math.IsInf(loss, 0) {
				return history, fmt.Errorf("nn: loss diverged to %v at epoch %d", loss, epoch)
			}
			cfg.Optimizer.Step(params)
			epochLoss += loss
			batches++
		}
		epochLoss /= float64(batches)
		history = append(history, epochLoss)
		if o != nil {
			o.Counter("nn.epochs").Add(1)
			o.Counter("nn.batches").Add(int64(batches))
			o.Counter("nn.rows_processed").Add(int64(len(order)))
			o.Gauge("nn.epoch").Set(float64(epoch))
			o.Gauge("nn.train_loss").Set(epochLoss)
			o.Gauge("nn.grad_norm").Set(gradNorm(params))
			if dt := time.Since(epochStart).Seconds(); dt > 0 {
				o.Gauge("nn.rows_per_second").Set(float64(len(order)) / dt)
			}
			epochSpan.SetAttr("loss", epochLoss)
		}
		epochSpan.End()
		if cfg.Progress != nil {
			cfg.Progress(epoch, epochLoss)
		}
		if cfg.Patience > 0 {
			v := evalVal()
			o.Gauge("nn.val_loss").Set(v)
			if v < bestVal-1e-12 {
				bestVal = v
				stale = 0
			} else {
				stale++
				if stale >= cfg.Patience {
					break
				}
			}
		}
	}
	return history, nil
}

// gradNorm returns the L2 norm of the parameter gradients left by the last
// optimizer step's batch — a cheap divergence signal for dashboards.
func gradNorm(params []*Param) float64 {
	var sum float64
	for _, p := range params {
		for _, g := range p.Grad {
			sum += g * g
		}
	}
	return math.Sqrt(sum)
}

// parallelBatch computes the loss and parameter gradients for the batch
// rows idx by fanning fixed-size micro-batches across the replicas. Each
// chunk's loss and gradient land in a snapshot slot indexed by chunk, and
// the snapshots are combined sequentially in chunk order weighted by chunk
// size, so the accumulated gradient in params is independent of the number
// of replicas. The batch loss is left for the caller to check and the
// optimizer step is the caller's too — during the fan-out, parameter values
// are strictly read-only. m, when non-nil, records per-micro-batch pool
// telemetry (queue depth, wait and task time) under pool.nn.microbatch.*;
// telemetry never alters chunking or summation order.
func parallelBatch(replicas []*Sequential, x, y *Mat, idx []int, loss Loss, params []*Param, m *pool.Metrics) float64 {
	nChunks := (len(idx) + microBatchRows - 1) / microBatchRows
	type snapshot struct {
		rows  int
		loss  float64
		grads [][]float64
	}
	snaps := make([]snapshot, nChunks)
	pool.RunMetrics(nChunks, len(replicas), m, func(worker, c int) error {
		rep := replicas[worker]
		repParams := rep.Params()
		lo := c * microBatchRows
		hi := lo + microBatchRows
		if hi > len(idx) {
			hi = len(idx)
		}
		bx := NewMat(hi-lo, x.Cols)
		by := NewMat(hi-lo, y.Cols)
		for i, ix := range idx[lo:hi] {
			copy(bx.Row(i), x.Row(ix))
			copy(by.Row(i), y.Row(ix))
		}
		pred := rep.Forward(bx)
		ZeroGrad(repParams)
		rep.Backward(loss.Backward(pred, by))
		grads := make([][]float64, len(repParams))
		for p, rp := range repParams {
			grads[p] = append([]float64(nil), rp.Grad...)
		}
		snaps[c] = snapshot{rows: hi - lo, loss: loss.Forward(pred, by), grads: grads}
		return nil
	})
	total := float64(len(idx))
	ZeroGrad(params)
	batchLoss := 0.0
	for _, s := range snaps {
		wgt := float64(s.rows) / total
		batchLoss += s.loss * wgt
		for p, g := range s.grads {
			dst := params[p].Grad
			for i, v := range g {
				dst[i] += v * wgt
			}
		}
	}
	return batchLoss
}

// Predict runs the model over x in inference mode and returns the outputs.
func Predict(model *Sequential, x *Mat) *Mat { return model.Forward(x) }

// Scaler standardizes features column-wise to zero mean and unit variance —
// fitted on the training split only, then applied to both splits.
type Scaler struct {
	Mean []float64
	Std  []float64
}

// FitScaler computes column statistics of x. Constant columns get unit
// scale so transformed values stay finite.
func FitScaler(x *Mat) *Scaler {
	s := &Scaler{Mean: make([]float64, x.Cols), Std: make([]float64, x.Cols)}
	if x.Rows == 0 {
		for j := range s.Std {
			s.Std[j] = 1
		}
		return s
	}
	for i := 0; i < x.Rows; i++ {
		for j, v := range x.Row(i) {
			s.Mean[j] += v
		}
	}
	n := float64(x.Rows)
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for i := 0; i < x.Rows; i++ {
		for j, v := range x.Row(i) {
			d := v - s.Mean[j]
			s.Std[j] += d * d
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / n)
		if s.Std[j] < 1e-12 {
			s.Std[j] = 1
		}
	}
	return s
}

// Transform returns a standardized copy of x.
func (s *Scaler) Transform(x *Mat) *Mat {
	if x.Cols != len(s.Mean) {
		panic(fmt.Sprintf("nn: scaler fitted on %d cols, got %d", len(s.Mean), x.Cols))
	}
	out := x.Clone()
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		for j := range row {
			row[j] = (row[j] - s.Mean[j]) / s.Std[j]
		}
	}
	return out
}

// TransformRow standardizes a single feature vector in place.
func (s *Scaler) TransformRow(row []float64) {
	if len(row) != len(s.Mean) {
		panic(fmt.Sprintf("nn: scaler fitted on %d cols, got %d", len(s.Mean), len(row)))
	}
	for j := range row {
		row[j] = (row[j] - s.Mean[j]) / s.Std[j]
	}
}
