package nn

import (
	"fmt"
	"math"
)

// Loss measures prediction error over a batch and provides its gradient.
// Losses report the mean over all elements so batch size does not change the
// gradient scale.
type Loss interface {
	// Name identifies the loss in logs and ablation tables.
	Name() string
	// Forward returns the scalar loss for predictions pred against target.
	Forward(pred, target *Mat) float64
	// Backward returns ∂loss/∂pred.
	Backward(pred, target *Mat) *Mat
}

func checkShapes(pred, target *Mat) {
	if pred.Rows != target.Rows || pred.Cols != target.Cols {
		panic(fmt.Sprintf("nn: loss shape mismatch %dx%d vs %dx%d",
			pred.Rows, pred.Cols, target.Rows, target.Cols))
	}
}

// MSE is the mean squared error.
type MSE struct{}

// Name implements Loss.
func (MSE) Name() string { return "mse" }

// Forward implements Loss.
func (MSE) Forward(pred, target *Mat) float64 {
	checkShapes(pred, target)
	sum := 0.0
	for i := range pred.Data {
		d := pred.Data[i] - target.Data[i]
		sum += d * d
	}
	return sum / float64(len(pred.Data))
}

// Backward implements Loss.
func (MSE) Backward(pred, target *Mat) *Mat {
	checkShapes(pred, target)
	g := NewMat(pred.Rows, pred.Cols)
	n := float64(len(pred.Data))
	for i := range pred.Data {
		g.Data[i] = 2 * (pred.Data[i] - target.Data[i]) / n
	}
	return g
}

// MAE is the mean absolute error.
type MAE struct{}

// Name implements Loss.
func (MAE) Name() string { return "mae" }

// Forward implements Loss.
func (MAE) Forward(pred, target *Mat) float64 {
	checkShapes(pred, target)
	sum := 0.0
	for i := range pred.Data {
		sum += math.Abs(pred.Data[i] - target.Data[i])
	}
	return sum / float64(len(pred.Data))
}

// Backward implements Loss.
func (MAE) Backward(pred, target *Mat) *Mat {
	checkShapes(pred, target)
	g := NewMat(pred.Rows, pred.Cols)
	n := float64(len(pred.Data))
	for i := range pred.Data {
		switch d := pred.Data[i] - target.Data[i]; {
		case d > 0:
			g.Data[i] = 1 / n
		case d < 0:
			g.Data[i] = -1 / n
		}
	}
	return g
}

// Huber is the Huber loss of Eq. 4: quadratic within Delta of the target and
// linear beyond, combining MSE's outlier sensitivity with MAE's robustness.
// The paper uses Delta = 1 (Eq. 5).
type Huber struct {
	Delta float64
}

// Name implements Loss.
func (h Huber) Name() string { return "huber" }

func (h Huber) delta() float64 {
	if h.Delta <= 0 {
		return 1
	}
	return h.Delta
}

// Forward implements Loss.
func (h Huber) Forward(pred, target *Mat) float64 {
	checkShapes(pred, target)
	d := h.delta()
	sum := 0.0
	for i := range pred.Data {
		e := math.Abs(pred.Data[i] - target.Data[i])
		if e < d {
			sum += 0.5 * e * e
		} else {
			sum += d * (e - 0.5*d)
		}
	}
	return sum / float64(len(pred.Data))
}

// Backward implements Loss.
func (h Huber) Backward(pred, target *Mat) *Mat {
	checkShapes(pred, target)
	d := h.delta()
	g := NewMat(pred.Rows, pred.Cols)
	n := float64(len(pred.Data))
	for i := range pred.Data {
		e := pred.Data[i] - target.Data[i]
		switch {
		case e >= d:
			g.Data[i] = d / n
		case e <= -d:
			g.Data[i] = -d / n
		default:
			g.Data[i] = e / n
		}
	}
	return g
}

// LossByName returns the loss registered under name: "mse", "mae" or
// "huber" (δ=1). Used by the loss-ablation bench.
func LossByName(name string) (Loss, error) {
	switch name {
	case "mse":
		return MSE{}, nil
	case "mae":
		return MAE{}, nil
	case "huber":
		return Huber{Delta: 1}, nil
	default:
		return nil, fmt.Errorf("nn: unknown loss %q", name)
	}
}
