package nn

import (
	"math"
	"math/rand"
	"testing"
)

// trainFixture builds a small regression problem and a fresh MLP with a
// fixed seed so two training runs start from identical weights.
func trainFixture(seed int64) (*Sequential, *Mat, *Mat) {
	rng := rand.New(rand.NewSource(seed))
	const n, in = 300, 4
	x := NewMat(n, in)
	y := NewMat(n, 1)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		y.Row(i)[0] = math.Sin(row[0]) + 0.5*row[1]*row[2] - row[3]
	}
	model := MLP(in, []int{16, 16}, 1, 0.01, rand.New(rand.NewSource(seed+1)))
	return model, x, y
}

func runTrain(t *testing.T, workers int) ([]float64, []float64) {
	t.Helper()
	model, x, y := trainFixture(9)
	hist, err := Train(model, x, y, TrainConfig{
		Epochs:    4,
		BatchSize: 150,
		Seed:      123,
		Loss:      Huber{Delta: 1},
		Optimizer: NewAdam(1e-3),
		Workers:   workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	var weights []float64
	for _, p := range model.Params() {
		weights = append(weights, p.Value...)
	}
	return hist, weights
}

// TestTrainWorkersBitIdentical asserts the data-parallel trainer's
// determinism invariant: every worker count > 1 yields bit-identical loss
// history and final weights, because chunk boundaries and summation order
// are worker-count independent.
func TestTrainWorkersBitIdentical(t *testing.T) {
	refHist, refW := runTrain(t, 2)
	for _, workers := range []int{3, 8} {
		hist, w := runTrain(t, workers)
		for i := range refHist {
			if math.Float64bits(hist[i]) != math.Float64bits(refHist[i]) {
				t.Fatalf("workers=%d: epoch %d loss %g != %g", workers, i, hist[i], refHist[i])
			}
		}
		for i := range refW {
			if math.Float64bits(w[i]) != math.Float64bits(refW[i]) {
				t.Fatalf("workers=%d: weight %d differs (%g vs %g)", workers, i, w[i], refW[i])
			}
		}
	}
}

// TestTrainWorkersMatchesSequentialClosely checks the parallel gradient is
// the same mathematical quantity as the sequential one: after identical
// short runs the loss trajectories agree to rounding-level tolerance (the
// chunked summation order is the only difference).
func TestTrainWorkersMatchesSequentialClosely(t *testing.T) {
	seqHist, seqW := runTrain(t, 1)
	parHist, parW := runTrain(t, 4)
	for i := range seqHist {
		if d := math.Abs(seqHist[i] - parHist[i]); d > 1e-9*(1+math.Abs(seqHist[i])) {
			t.Fatalf("epoch %d: sequential loss %g vs parallel %g", i, seqHist[i], parHist[i])
		}
	}
	for i := range seqW {
		if d := math.Abs(seqW[i] - parW[i]); d > 1e-6*(1+math.Abs(seqW[i])) {
			t.Fatalf("weight %d: sequential %g vs parallel %g", i, seqW[i], parW[i])
		}
	}
}

// TestReplicaSharesValuesOwnsGrads pins the replica aliasing contract.
func TestReplicaSharesValuesOwnsGrads(t *testing.T) {
	model := MLP(3, []int{5}, 1, 0.01, rand.New(rand.NewSource(1)))
	rep, err := model.Replica()
	if err != nil {
		t.Fatal(err)
	}
	mp, rp := model.Params(), rep.Params()
	if len(mp) != len(rp) {
		t.Fatalf("replica has %d params, want %d", len(rp), len(mp))
	}
	for i := range mp {
		if &mp[i].Value[0] != &rp[i].Value[0] {
			t.Fatalf("param %d: replica does not share values", i)
		}
		if &mp[i].Grad[0] == &rp[i].Grad[0] {
			t.Fatalf("param %d: replica shares gradients", i)
		}
	}
}
