// Package leakcheck is a dependency-free goroutine-leak assertion for
// tests: capture a baseline count before the work under test, then verify
// the count settles back to it afterwards. Settling is polled with a
// deadline because goroutine teardown is asynchronous — an exiting worker
// is still counted for a moment after its job is done.
//
// The check is count-based, not identity-based, so it cannot attribute a
// leak to a specific goroutine; on failure it dumps all stacks, which in
// practice pinpoints the leaked one immediately. Tests that share process
// state (http clients with idle connections, timers) should close those
// before the check runs.
package leakcheck

import (
	"runtime"
	"time"
)

// TB is the subset of testing.TB the checker needs, restated so this
// package does not import testing into non-test builds.
type TB interface {
	// Helper marks the calling function as a test helper.
	Helper()
	// Errorf records a test failure.
	Errorf(format string, args ...any)
}

// Baseline returns the current goroutine count. Capture it before starting
// the work under test.
func Baseline() int {
	return runtime.NumGoroutine()
}

// Check polls until the goroutine count is back at or below baseline, or
// within seconds of waiting fail the test with a full stack dump. A zero
// or negative timeout uses 5 seconds.
func Check(t TB, baseline int, timeout time.Duration) {
	t.Helper()
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	deadline := time.Now().Add(timeout)
	n := runtime.NumGoroutine()
	for time.Now().Before(deadline) {
		if n <= baseline {
			return
		}
		time.Sleep(5 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	t.Errorf("goroutine leak: %d alive after %v, baseline %d\n%s", n, timeout, baseline, buf)
}
