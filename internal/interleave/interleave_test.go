package interleave

import (
	"math/rand"
	"testing"
)

func TestNewPlanValidation(t *testing.T) {
	cases := []struct {
		dims   []int
		levels int
	}{
		{nil, 3},
		{[]int{4, 0}, 3},
		{[]int{4}, 0},
		{[]int{4}, 31},
		{[]int{-2}, 2},
	}
	for _, c := range cases {
		if _, err := NewPlan(c.dims, c.levels); err == nil {
			t.Errorf("NewPlan(%v, %d) succeeded, want error", c.dims, c.levels)
		}
	}
}

func TestLevelSizesSumToTotal(t *testing.T) {
	for _, dims := range [][]int{{17}, {9, 9}, {5, 9, 17}, {8, 8}, {33, 7}} {
		p, err := NewPlan(dims, 4)
		if err != nil {
			t.Fatal(err)
		}
		total := 1
		for _, d := range dims {
			total *= d
		}
		sum := 0
		for _, s := range p.LevelSizes() {
			sum += s
		}
		if sum != total {
			t.Errorf("dims %v: level sizes sum %d, want %d", dims, sum, total)
		}
	}
}

func TestSingleLevelIsEverything(t *testing.T) {
	p, err := NewPlan([]int{4, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.LevelSizes()[0]; got != 16 {
		t.Fatalf("single-level size = %d, want 16", got)
	}
}

func TestLevelOfIndex1D(t *testing.T) {
	// 1D grid of 9 nodes, 3 levels: coarsest grid step 4.
	// Nodes 0,4,8 → level 0; nodes 2,6 → level 1; odd nodes → level 2.
	p, err := NewPlan([]int{9}, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 2, 1, 2, 0, 2, 1, 2, 0}
	for i, w := range want {
		if got := p.LevelOf(i); got != w {
			t.Errorf("LevelOf(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestLevelOfIndex2D(t *testing.T) {
	// 2D: level is determined by the *least* divisible axis.
	p, err := NewPlan([]int{5, 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Node (4,2): min(v2)=1 → level 3-1-1 = 1.
	if got := p.LevelOf(4*5 + 2); got != 1 {
		t.Errorf("LevelOf(4,2) = %d, want 1", got)
	}
	// Node (4,4): both multiples of 4 → level 0.
	if got := p.LevelOf(4*5 + 4); got != 0 {
		t.Errorf("LevelOf(4,4) = %d, want 0", got)
	}
	// Node (3,4): v2(3)=0 → level 2.
	if got := p.LevelOf(3*5 + 4); got != 2 {
		t.Errorf("LevelOf(3,4) = %d, want 2", got)
	}
}

func TestCoarseLevelSize3D(t *testing.T) {
	// 9³ grid, 4 levels: coarsest step 8 → coarse grid is 2³ = 8 nodes.
	p, err := NewPlan([]int{9, 9, 9}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.LevelSizes()[0]; got != 8 {
		t.Fatalf("coarse level size = %d, want 8", got)
	}
}

func TestIndicesDisjointAndOrdered(t *testing.T) {
	p, err := NewPlan([]int{9, 9}, 4)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for l := 0; l < p.Levels(); l++ {
		prev := -1
		for _, off := range p.Indices(l) {
			if seen[off] {
				t.Fatalf("offset %d appears in multiple levels", off)
			}
			seen[off] = true
			if off <= prev {
				t.Fatalf("level %d indices not strictly increasing", l)
			}
			prev = off
		}
	}
	if len(seen) != 81 {
		t.Fatalf("covered %d offsets, want 81", len(seen))
	}
}

func TestExtractInjectRoundTrip(t *testing.T) {
	p, err := NewPlan([]int{9, 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	data := make([]float64, 45)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	orig := append([]float64(nil), data...)

	streams := make([][]float64, p.Levels())
	for l := range streams {
		streams[l] = p.Extract(data, l, nil)
	}
	// Zero everything, then inject back.
	for i := range data {
		data[i] = 0
	}
	for l, s := range streams {
		p.Inject(data, l, s)
	}
	for i := range data {
		if data[i] != orig[i] {
			t.Fatalf("round trip mismatch at %d: %v != %v", i, data[i], orig[i])
		}
	}
}

func TestExtractIntoProvidedBuffer(t *testing.T) {
	p, err := NewPlan([]int{5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := []float64{10, 11, 12, 13, 14}
	buf := make([]float64, p.LevelSizes()[0])
	got := p.Extract(data, 0, buf)
	if &got[0] != &buf[0] {
		t.Fatal("Extract did not use provided buffer")
	}
	// Level 0 of 5 nodes, 2 levels: step 2 → nodes 0,2,4.
	want := []float64{10, 12, 14}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Extract[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestExtractInjectLengthPanics(t *testing.T) {
	p, _ := NewPlan([]int{5}, 2)
	data := make([]float64, 5)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Extract with wrong dst length did not panic")
			}
		}()
		p.Extract(data, 0, make([]float64, 1))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Inject with wrong src length did not panic")
			}
		}()
		p.Inject(data, 0, make([]float64, 1))
	}()
}

func TestLevelSizesDecreaseTowardCoarse(t *testing.T) {
	// On a large grid, finer levels hold more nodes.
	p, err := NewPlan([]int{33, 33}, 5)
	if err != nil {
		t.Fatal(err)
	}
	sizes := p.LevelSizes()
	for l := 1; l < len(sizes); l++ {
		if sizes[l] <= sizes[l-1] {
			t.Fatalf("level %d size %d not greater than level %d size %d",
				l, sizes[l], l-1, sizes[l-1])
		}
	}
}
