// Package interleave owns the index bookkeeping between an N-dimensional
// grid and the linearized per-level coefficient streams used by the
// bit-plane encoder (the paper's "interleaver", §II-B).
//
// A decomposition with L coefficient levels assigns every grid node to
// exactly one level:
//
//   - level 0 (the "highest" level in the paper's terminology, with the
//     lowest resolution) holds the nodes of the coarsest grid — those whose
//     index is a multiple of 2^(L-1) along every axis;
//   - level l (1 ≤ l < L) holds the detail nodes introduced when refining
//     from step L-l to step L-l-1 — nodes active on the 2^(L-1-l) grid that
//     are not on the 2^(L-l) grid.
//
// Within a level, nodes are ordered by row-major scan of the full grid, so
// the mapping is deterministic and reproducible across processes.
package interleave

import "fmt"

// Plan holds the precomputed grid↔level index maps for one (dims, levels)
// configuration. Plans are immutable after construction and safe for
// concurrent use.
type Plan struct {
	dims   []int
	levels int
	// levelOf[flat] is the level of each grid node.
	levelOf []uint8
	// indices[l] lists the flat grid offsets of level l's nodes in
	// row-major scan order.
	indices [][]int
}

// NewPlan builds the index maps for a grid with the given dimensions and
// number of coefficient levels. levels must be in [1, 30] and dims non-empty
// with positive extents.
func NewPlan(dims []int, levels int) (*Plan, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("interleave: empty dims")
	}
	if levels < 1 || levels > 30 {
		return nil, fmt.Errorf("interleave: levels %d out of range [1,30]", levels)
	}
	n := 1
	for _, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("interleave: non-positive dimension %d", d)
		}
		n *= d
	}
	p := &Plan{
		dims:    append([]int(nil), dims...),
		levels:  levels,
		levelOf: make([]uint8, n),
		indices: make([][]int, levels),
	}
	idx := make([]int, len(dims))
	for flat := 0; flat < n; flat++ {
		l := levelOfIndex(idx, levels)
		p.levelOf[flat] = uint8(l)
		p.indices[l] = append(p.indices[l], flat)
		// Advance row-major multi-index.
		for d := len(idx) - 1; d >= 0; d-- {
			idx[d]++
			if idx[d] < dims[d] {
				break
			}
			idx[d] = 0
		}
	}
	return p, nil
}

// levelOfIndex computes the coefficient level of a node. A node is active at
// refinement step s iff every axis index is a multiple of 2^s. The node's
// introduction step is the largest such s (capped at levels-1), and the
// level is levels-1-s, so that level 0 is the coarsest grid.
func levelOfIndex(idx []int, levels int) int {
	s := levels - 1
	for _, i := range idx {
		v := trailingDivisibility(i, levels-1)
		if v < s {
			s = v
		}
	}
	return levels - 1 - s
}

// trailingDivisibility returns the largest s ≤ cap such that i is a multiple
// of 2^s. For i == 0 it returns cap (zero is on every grid).
func trailingDivisibility(i, max int) int {
	if i == 0 {
		return max
	}
	s := 0
	for i&1 == 0 && s < max {
		i >>= 1
		s++
	}
	return s
}

// Dims returns the grid dimensions of the plan.
func (p *Plan) Dims() []int { return p.dims }

// Levels returns the number of coefficient levels L.
func (p *Plan) Levels() int { return p.levels }

// LevelSizes returns the number of nodes on each level.
func (p *Plan) LevelSizes() []int {
	sizes := make([]int, p.levels)
	for l, ix := range p.indices {
		sizes[l] = len(ix)
	}
	return sizes
}

// LevelOf returns the level of the grid node at the given flat offset.
func (p *Plan) LevelOf(flat int) int { return int(p.levelOf[flat]) }

// Indices returns the flat grid offsets of level l's nodes, in the
// deterministic stream order. The returned slice must not be modified.
func (p *Plan) Indices(l int) []int { return p.indices[l] }

// Extract gathers the level-l coefficients from the in-place transformed
// grid data into dst, which must have length LevelSizes()[l]. It returns dst
// for convenience; if dst is nil a new slice is allocated.
func (p *Plan) Extract(data []float64, l int, dst []float64) []float64 {
	ix := p.indices[l]
	if dst == nil {
		dst = make([]float64, len(ix))
	}
	if len(dst) != len(ix) {
		panic(fmt.Sprintf("interleave: Extract dst length %d, want %d", len(dst), len(ix)))
	}
	for i, off := range ix {
		dst[i] = data[off]
	}
	return dst
}

// Inject scatters the level-l coefficient stream src back into the grid
// data at the level's node positions. src must have length LevelSizes()[l].
func (p *Plan) Inject(data []float64, l int, src []float64) {
	ix := p.indices[l]
	if len(src) != len(ix) {
		panic(fmt.Sprintf("interleave: Inject src length %d, want %d", len(src), len(ix)))
	}
	for i, off := range ix {
		data[off] = src[i]
	}
}
