package dataset

import (
	"path/filepath"
	"testing"

	"pmgard/internal/core"
	"pmgard/internal/dmgard"
	"pmgard/internal/emgard"
	"pmgard/internal/grid"
	"pmgard/internal/sim/warpx"
)

func buildDataset(t *testing.T) (string, map[string]*grid.Tensor) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "ds")
	w, err := Create(dir, "warpx-run", core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := warpx.DefaultConfig(9, 9, 9)
	fields := make(map[string]*grid.Tensor)
	for _, name := range []string{"Jx", "Ex"} {
		for ts := 0; ts < 3; ts++ {
			f, err := cfg.Field(name, ts)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Add(f, name, ts); err != nil {
				t.Fatal(err)
			}
			fields[key(name, ts)] = f
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, fields
}

func key(name string, ts int) string { return name + "@" + string(rune('0'+ts)) }

func TestDatasetCatalog(t *testing.T) {
	dir, _ := buildDataset(t)
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Name() != "warpx-run" {
		t.Fatalf("Name = %q", r.Name())
	}
	if got := r.Fields(); len(got) != 2 || got[0] != "Ex" || got[1] != "Jx" {
		t.Fatalf("Fields = %v", got)
	}
	if got := r.Timesteps("Jx"); len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("Timesteps = %v", got)
	}
	if r.StoredBytes() <= 0 {
		t.Fatal("StoredBytes not recorded")
	}
}

func TestDatasetRetrieveWithinTolerance(t *testing.T) {
	dir, fields := buildDataset(t)
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	orig := fields[key("Jx", 1)]
	rec, plan, err := r.Retrieve("Jx", 1, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	tol := 1e-4 * orig.Range()
	if achieved := grid.MaxAbsDiff(orig, rec); achieved > tol {
		t.Fatalf("achieved %g > tol %g", achieved, tol)
	}
	if plan.Bytes <= 0 || r.BytesRead() < plan.Bytes {
		t.Fatalf("accounting: plan %d, dataset %d", plan.Bytes, r.BytesRead())
	}
}

func TestDatasetMissingEntry(t *testing.T) {
	dir, _ := buildDataset(t)
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, _, err := r.Retrieve("Bz", 0, 1e-3); err == nil {
		t.Fatal("missing field accepted")
	}
	if _, _, err := r.Retrieve("Jx", 99, 1e-3); err == nil {
		t.Fatal("missing timestep accepted")
	}
}

func TestDatasetModelsRequireAttachment(t *testing.T) {
	dir, _ := buildDataset(t)
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, _, err := r.RetrieveDMGARD("Jx", 0, 1e-3); err == nil {
		t.Fatal("D-MGARD retrieval without model accepted")
	}
	if _, _, err := r.RetrieveEMGARD("Jx", 0, 1e-3); err == nil {
		t.Fatal("E-MGARD retrieval without model accepted")
	}
}

func TestDatasetModelRetrieval(t *testing.T) {
	dir, fields := buildDataset(t)
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Train tiny models from the same data.
	bounds := []float64{1e-5, 1e-3, 1e-1}
	cfg := core.DefaultConfig()
	var drecs []dmgard.Record
	var esamps []emgard.Sample
	for ts := 0; ts < 3; ts++ {
		f := fields[key("Jx", ts)]
		dr, _, err := dmgard.Harvest(f, "Jx", ts, cfg, bounds)
		if err != nil {
			t.Fatal(err)
		}
		drecs = append(drecs, dr...)
		es, _, err := emgard.Harvest(f, "Jx", ts, cfg, bounds)
		if err != nil {
			t.Fatal(err)
		}
		esamps = append(esamps, es...)
	}
	dm, err := dmgard.Train(drecs, cfg.Planes, dmgard.Config{
		Hidden: []int{8}, LeakyAlpha: 0.01, Epochs: 10, BatchSize: 4, LR: 1e-3, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	em, err := emgard.Train(esamps, emgard.Config{
		Hidden: []int{8}, Epochs: 10, BatchSize: 4, LR: 1e-3, Seed: 1, Margin: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.AttachDMGARD(dm)
	r.AttachEMGARD(em)

	if _, plan, err := r.RetrieveDMGARD("Jx", 2, 1e-3); err != nil {
		t.Fatal(err)
	} else if len(plan.Planes) != 5 {
		t.Fatalf("D-MGARD plan has %d levels", len(plan.Planes))
	}
	if _, plan, err := r.RetrieveEMGARD("Jx", 2, 1e-3); err != nil {
		t.Fatal(err)
	} else if plan.Bytes < 0 {
		t.Fatal("negative plan bytes")
	}
}

func TestDatasetRejectsDuplicatesAndReopens(t *testing.T) {
	dir, _ := buildDataset(t)
	// A second Create over the same directory must refuse.
	if _, err := Create(dir, "x", core.DefaultConfig()); err == nil {
		t.Fatal("Create over existing catalog accepted")
	}
	// Duplicate Add within one writer must refuse.
	dir2 := filepath.Join(t.TempDir(), "d2")
	w, err := Create(dir2, "x", core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	f, _ := warpx.DefaultConfig(9, 9, 9).Field("Jx", 0)
	if err := w.Add(f, "Jx", 0); err != nil {
		t.Fatal(err)
	}
	if err := w.Add(f, "Jx", 0); err == nil {
		t.Fatal("duplicate Add accepted")
	}
}

func TestOpenRejectsMissingCatalog(t *testing.T) {
	if _, err := Open(t.TempDir()); err == nil {
		t.Fatal("missing catalog accepted")
	}
}

func TestRetrieveSeries(t *testing.T) {
	dir, fields := buildDataset(t)
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	series, err := r.RetrieveSeries("Jx", 0, 3, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("series has %d steps, want 3", len(series))
	}
	for i, s := range series {
		if s.Timestep != i {
			t.Fatalf("series out of order: %d at position %d", s.Timestep, i)
		}
		orig := fields[key("Jx", s.Timestep)]
		if grid.MaxAbsDiff(orig, s.Field) > 1e-3*orig.Range() {
			t.Fatalf("step %d violated tolerance", s.Timestep)
		}
		if s.Bytes <= 0 {
			t.Fatalf("step %d has no cost", s.Timestep)
		}
	}
	// Partial window.
	part, err := r.RetrieveSeries("Jx", 1, 2, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if len(part) != 1 || part[0].Timestep != 1 {
		t.Fatalf("partial window wrong: %+v", part)
	}
	// Empty windows fail loudly.
	if _, err := r.RetrieveSeries("Jx", 5, 9, 1e-3); err == nil {
		t.Fatal("empty window accepted")
	}
	if _, err := r.RetrieveSeries("Jx", 2, 2, 1e-3); err == nil {
		t.Fatal("degenerate range accepted")
	}
}
