// Package dataset manages collections of compressed fields — the unit a
// simulation campaign actually produces: several variables dumped over many
// timesteps. A dataset is a directory of segment-store files plus a JSON
// catalog; readers open it once and progressively retrieve any (field,
// timestep) at any tolerance, optionally under a trained D-MGARD or
// E-MGARD model, with I/O accounted across the whole collection.
package dataset

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"pmgard/internal/core"
	"pmgard/internal/dmgard"
	"pmgard/internal/emgard"
	"pmgard/internal/features"
	"pmgard/internal/grid"
	"pmgard/internal/retrieval"
	"pmgard/internal/storage"
)

// catalogEntry records one stored field dump.
type catalogEntry struct {
	Field    string `json:"field"`
	Timestep int    `json:"timestep"`
	File     string `json:"file"`
	Bytes    int64  `json:"bytes"`
}

// catalog is the dataset manifest.
type catalog struct {
	Version int            `json:"version"`
	Name    string         `json:"name"`
	Entries []catalogEntry `json:"entries"`
}

const catalogFile = "catalog.json"

// Writer builds a dataset directory.
type Writer struct {
	dir string
	cat catalog
	cfg core.Config
}

// Create starts a new dataset at dir. The directory is created if needed;
// an existing catalog is an error (datasets are immutable once finalized).
func Create(dir, name string, cfg core.Config) (*Writer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dataset: create %s: %w", dir, err)
	}
	if _, err := os.Stat(filepath.Join(dir, catalogFile)); err == nil {
		return nil, fmt.Errorf("dataset: %s already contains a catalog", dir)
	}
	return &Writer{dir: dir, cat: catalog{Version: 1, Name: name}, cfg: cfg}, nil
}

// Add compresses and stores one field dump.
func (w *Writer) Add(field *grid.Tensor, name string, timestep int) error {
	for _, e := range w.cat.Entries {
		if e.Field == name && e.Timestep == timestep {
			return fmt.Errorf("dataset: %s@%d already stored", name, timestep)
		}
	}
	c, err := core.Compress(field, w.cfg, name, timestep)
	if err != nil {
		return err
	}
	file := fmt.Sprintf("%s_t%06d.pmgd", name, timestep)
	if err := c.WriteFile(filepath.Join(w.dir, file)); err != nil {
		return err
	}
	w.cat.Entries = append(w.cat.Entries, catalogEntry{
		Field:    name,
		Timestep: timestep,
		File:     file,
		Bytes:    c.Header.TotalBytes(),
	})
	return nil
}

// Close writes the catalog.
func (w *Writer) Close() error {
	sort.Slice(w.cat.Entries, func(i, j int) bool {
		a, b := w.cat.Entries[i], w.cat.Entries[j]
		if a.Field != b.Field {
			return a.Field < b.Field
		}
		return a.Timestep < b.Timestep
	})
	blob, err := json.MarshalIndent(&w.cat, "", "  ")
	if err != nil {
		return fmt.Errorf("dataset: marshal catalog: %w", err)
	}
	if err := os.WriteFile(filepath.Join(w.dir, catalogFile), blob, 0o644); err != nil {
		return fmt.Errorf("dataset: write catalog: %w", err)
	}
	return nil
}

// Reader provides progressive retrieval over a dataset with optional model
// attachment and collection-wide I/O accounting.
type Reader struct {
	dir string
	cat catalog

	mu     sync.Mutex
	stores map[string]*storage.Store
	dModel *dmgard.Model
	eModel *emgard.Model
	// featureCache caches extracted features per (field, timestep) after a
	// D-MGARD retrieval reconstructs the field once.
	featureCache map[string][]float64
}

// Open opens a dataset directory.
func Open(dir string) (*Reader, error) {
	blob, err := os.ReadFile(filepath.Join(dir, catalogFile))
	if err != nil {
		return nil, fmt.Errorf("dataset: read catalog: %w", err)
	}
	var cat catalog
	if err := json.Unmarshal(blob, &cat); err != nil {
		return nil, fmt.Errorf("dataset: parse catalog: %w", err)
	}
	if cat.Version != 1 {
		return nil, fmt.Errorf("dataset: unsupported catalog version %d", cat.Version)
	}
	return &Reader{
		dir:          dir,
		cat:          cat,
		stores:       make(map[string]*storage.Store),
		featureCache: make(map[string][]float64),
	}, nil
}

// Name returns the dataset name.
func (r *Reader) Name() string { return r.cat.Name }

// Fields returns the distinct field names, sorted.
func (r *Reader) Fields() []string {
	seen := map[string]bool{}
	var out []string
	for _, e := range r.cat.Entries {
		if !seen[e.Field] {
			seen[e.Field] = true
			out = append(out, e.Field)
		}
	}
	sort.Strings(out)
	return out
}

// Timesteps returns the stored timesteps of a field, sorted.
func (r *Reader) Timesteps(field string) []int {
	var out []int
	for _, e := range r.cat.Entries {
		if e.Field == field {
			out = append(out, e.Timestep)
		}
	}
	sort.Ints(out)
	return out
}

// StoredBytes returns the total stored payload across the collection.
func (r *Reader) StoredBytes() int64 {
	var total int64
	for _, e := range r.cat.Entries {
		total += e.Bytes
	}
	return total
}

// AttachDMGARD sets the D-MGARD model used by RetrieveDMGARD.
func (r *Reader) AttachDMGARD(m *dmgard.Model) {
	r.mu.Lock()
	r.dModel = m
	r.mu.Unlock()
}

// AttachEMGARD sets the E-MGARD model used by RetrieveEMGARD.
func (r *Reader) AttachEMGARD(m *emgard.Model) {
	r.mu.Lock()
	r.eModel = m
	r.mu.Unlock()
}

// open returns the header and store of one entry, opening lazily.
func (r *Reader) open(field string, timestep int) (*core.Header, *storage.Store, error) {
	var entry *catalogEntry
	for i := range r.cat.Entries {
		if r.cat.Entries[i].Field == field && r.cat.Entries[i].Timestep == timestep {
			entry = &r.cat.Entries[i]
			break
		}
	}
	if entry == nil {
		return nil, nil, fmt.Errorf("dataset: no entry for %s@%d", field, timestep)
	}
	r.mu.Lock()
	st, ok := r.stores[entry.File]
	r.mu.Unlock()
	if ok {
		var h core.Header
		if err := json.Unmarshal(st.Meta(), &h); err != nil {
			return nil, nil, fmt.Errorf("dataset: parse header: %w", err)
		}
		return &h, st, nil
	}
	h, st, err := core.OpenFile(filepath.Join(r.dir, entry.File))
	if err != nil {
		return nil, nil, err
	}
	r.mu.Lock()
	r.stores[entry.File] = st
	r.mu.Unlock()
	return h, st, nil
}

// Retrieve fetches (field, timestep) at a relative error bound under the
// original theory-based control.
func (r *Reader) Retrieve(field string, timestep int, relBound float64) (*grid.Tensor, retrieval.Plan, error) {
	h, st, err := r.open(field, timestep)
	if err != nil {
		return nil, retrieval.Plan{}, err
	}
	tol := h.AbsTolerance(relBound)
	if tol <= 0 {
		return nil, retrieval.Plan{}, fmt.Errorf("dataset: non-positive tolerance for %s@%d", field, timestep)
	}
	return core.RetrieveTolerance(h, core.StoreSource{Store: st}, h.TheoryEstimator(), tol)
}

// RetrieveEMGARD fetches under the attached E-MGARD model's learned
// per-level error constants.
func (r *Reader) RetrieveEMGARD(field string, timestep int, relBound float64) (*grid.Tensor, retrieval.Plan, error) {
	r.mu.Lock()
	m := r.eModel
	r.mu.Unlock()
	if m == nil {
		return nil, retrieval.Plan{}, fmt.Errorf("dataset: no E-MGARD model attached")
	}
	h, st, err := r.open(field, timestep)
	if err != nil {
		return nil, retrieval.Plan{}, err
	}
	est, err := m.Estimator(h.LevelPools)
	if err != nil {
		return nil, retrieval.Plan{}, err
	}
	tol := h.AbsTolerance(relBound)
	if tol <= 0 {
		return nil, retrieval.Plan{}, fmt.Errorf("dataset: non-positive tolerance for %s@%d", field, timestep)
	}
	return core.RetrieveTolerance(h, core.StoreSource{Store: st}, est, tol)
}

// RetrieveDMGARD fetches under the attached D-MGARD model's plane-count
// prediction. The model needs the field's statistical features; they are
// computed from a one-time coarse reconstruction and cached (in production
// they would be recorded at compression time alongside the header).
func (r *Reader) RetrieveDMGARD(field string, timestep int, relBound float64) (*grid.Tensor, retrieval.Plan, error) {
	r.mu.Lock()
	m := r.dModel
	r.mu.Unlock()
	if m == nil {
		return nil, retrieval.Plan{}, fmt.Errorf("dataset: no D-MGARD model attached")
	}
	h, st, err := r.open(field, timestep)
	if err != nil {
		return nil, retrieval.Plan{}, err
	}
	tol := h.AbsTolerance(relBound)
	if tol <= 0 {
		return nil, retrieval.Plan{}, fmt.Errorf("dataset: non-positive tolerance for %s@%d", field, timestep)
	}
	feat, err := r.fieldFeatures(h, st, field, timestep)
	if err != nil {
		return nil, retrieval.Plan{}, err
	}
	planes, err := m.Predict(feat, relBound)
	if err != nil {
		return nil, retrieval.Plan{}, err
	}
	return core.RetrievePlanes(h, core.StoreSource{Store: st}, planes)
}

// fieldFeatures returns cached features or derives them from a one-time
// full-precision reconstruction.
func (r *Reader) fieldFeatures(h *core.Header, st *storage.Store, field string, timestep int) ([]float64, error) {
	key := fmt.Sprintf("%s@%d", field, timestep)
	r.mu.Lock()
	feat, ok := r.featureCache[key]
	r.mu.Unlock()
	if ok {
		return feat, nil
	}
	all := make([]int, len(h.Levels))
	for l := range all {
		all[l] = h.Planes
	}
	rec, _, err := core.RetrievePlanes(h, core.StoreSource{Store: st}, all)
	if err != nil {
		return nil, err
	}
	feat = dmgard.CombineFeatures(features.Extract(rec, timestep), h)
	r.mu.Lock()
	r.featureCache[key] = feat
	r.mu.Unlock()
	return feat, nil
}

// BytesRead returns payload bytes fetched across all opened stores.
func (r *Reader) BytesRead() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var total int64
	for _, st := range r.stores {
		total += st.BytesRead()
	}
	return total
}

// Close releases all opened stores.
func (r *Reader) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var first error
	for _, st := range r.stores {
		if err := st.Close(); err != nil && first == nil {
			first = err
		}
	}
	r.stores = make(map[string]*storage.Store)
	return first
}

// Series is one timestep of a time-series retrieval.
type Series struct {
	// Timestep is the simulation output step.
	Timestep int
	// Field is the reconstruction at that step.
	Field *grid.Tensor
	// Bytes is the retrieval cost of this step.
	Bytes int64
}

// RetrieveSeries fetches a field over the timestep range [t0, t1) at a
// relative error bound under theory control — the time-evolution query that
// dominates post-hoc analysis. Timesteps not present in the catalog are
// skipped; the result is ordered by timestep.
func (r *Reader) RetrieveSeries(field string, t0, t1 int, relBound float64) ([]Series, error) {
	if t1 <= t0 {
		return nil, fmt.Errorf("dataset: empty timestep range [%d,%d)", t0, t1)
	}
	var out []Series
	for _, ts := range r.Timesteps(field) {
		if ts < t0 || ts >= t1 {
			continue
		}
		rec, plan, err := r.Retrieve(field, ts, relBound)
		if err != nil {
			return nil, fmt.Errorf("dataset: series %s@%d: %w", field, ts, err)
		}
		out = append(out, Series{Timestep: ts, Field: rec, Bytes: plan.Bytes})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("dataset: no %s timesteps in [%d,%d)", field, t0, t1)
	}
	return out, nil
}
