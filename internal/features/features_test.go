package features

import (
	"math"
	"math/rand"
	"testing"

	"pmgard/internal/grid"
)

func TestNamesMatchVectorLength(t *testing.T) {
	f := grid.New(4, 4)
	f.Fill(1)
	v := Extract(f, 3)
	if len(v) != Count() {
		t.Fatalf("vector length %d != Count() %d", len(v), Count())
	}
	if len(Names()) != Count() {
		t.Fatalf("Names length %d != Count %d", len(Names()), Count())
	}
}

func TestExtractKnownValues(t *testing.T) {
	f := grid.FromSlice([]float64{0, 10}, 2)
	v := Extract(f, 7)
	byName := make(map[string]float64)
	for i, n := range Names() {
		byName[n] = v[i]
	}
	if math.Abs(byName["log_range"]-1) > 1e-12 {
		t.Fatalf("log_range = %v, want 1", byName["log_range"])
	}
	if byName["mean_rel"] != 0.5 {
		t.Fatalf("mean_rel = %v, want 0.5", byName["mean_rel"])
	}
	if byName["std_rel"] != 0.5 {
		t.Fatalf("std_rel = %v, want 0.5", byName["std_rel"])
	}
	if byName["timestep"] != 7 {
		t.Fatalf("timestep = %v, want 7", byName["timestep"])
	}
	if byName["zero_fraction"] != 0.5 {
		t.Fatalf("zero_fraction = %v, want 0.5", byName["zero_fraction"])
	}
}

func TestExtractScaleInvariance(t *testing.T) {
	// Scaling a field by 1000 must change only the log_range feature.
	rng := rand.New(rand.NewSource(9))
	a := grid.New(12, 12)
	for i := range a.Data() {
		a.Data()[i] = rng.NormFloat64()
	}
	b := a.Clone()
	b.Apply(func(x float64) float64 { return 1000 * x })
	va, vb := Extract(a, 3), Extract(b, 3)
	for i, name := range Names() {
		if name == "log_range" {
			if math.Abs(vb[i]-va[i]-3) > 1e-9 {
				t.Fatalf("log_range shift = %v, want 3", vb[i]-va[i])
			}
			continue
		}
		if math.Abs(va[i]-vb[i]) > 1e-9 {
			t.Fatalf("feature %q not scale-invariant: %v vs %v", name, va[i], vb[i])
		}
	}
}

func TestExtractConstantFieldFinite(t *testing.T) {
	f := grid.New(8, 8)
	f.Fill(3)
	for i, v := range Extract(f, 0) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("feature %q = %v for constant field", Names()[i], v)
		}
	}
}

func TestFeaturesDistinguishFields(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	smooth := grid.New(16, 16)
	noisy := grid.New(16, 16)
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			smooth.Set(math.Sin(float64(i+j)/8), i, j)
			noisy.Set(rng.NormFloat64(), i, j)
		}
	}
	vs, vn := Extract(smooth, 0), Extract(noisy, 0)
	same := true
	for i := range vs {
		if vs[i] != vn[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("identical features for very different fields")
	}
}

func TestPoolLevelExactSize(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64, 1000} {
		coeffs := make([]float64, n)
		for i := range coeffs {
			coeffs[i] = float64(i) - float64(n)/2
		}
		out := PoolLevel(coeffs, 32)
		if len(out) != 32 {
			t.Fatalf("n=%d: pooled length %d, want 32", n, len(out))
		}
		for i, v := range out {
			if math.IsNaN(v) || v < 0 {
				t.Fatalf("n=%d: pooled[%d] = %v", n, i, v)
			}
		}
	}
}

func TestPoolLevelPreservesMagnitudeOrdering(t *testing.T) {
	small := make([]float64, 256)
	large := make([]float64, 256)
	for i := range small {
		small[i] = 0.01
		large[i] = 100
	}
	ps, pl := PoolLevel(small, 16), PoolLevel(large, 16)
	for i := range ps {
		if ps[i] >= pl[i] {
			t.Fatalf("pooling lost magnitude ordering at %d: %v vs %v", i, ps[i], pl[i])
		}
	}
}

func TestPoolLevelShortStreamCycles(t *testing.T) {
	out := PoolLevel([]float64{-2, 3}, 5)
	want := []float64{2, 3, 2, 3, 2}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("pooled[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestPoolLevelZeroSize(t *testing.T) {
	if out := PoolLevel([]float64{1, 2}, 0); len(out) != 0 {
		t.Fatalf("size 0 pooled to %d values", len(out))
	}
}
