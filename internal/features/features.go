// Package features extracts the statistical data features F fed to D-MGARD
// alongside the target error (§III-C): summary statistics, smoothness
// measures and magnitude quantiles that characterize how compressible a
// field is and therefore how many bit-planes a given tolerance will need.
//
// The features are deliberately scale-invariant where possible (moments
// normalized by the value range, quantile *shape* rather than magnitudes,
// log-scaled absolute scale) so that a model trained on one field transfers
// to sibling fields with different physical units — the cross-field
// evaluations of Figs. 9 and 10.
package features

import (
	"math"

	"pmgard/internal/grid"
)

// Names lists the extracted features in vector order. The final entry is
// the timestep, which lets the model track temporal drift.
func Names() []string {
	return []string{
		"log_range",      // absolute scale, log10
		"mean_rel",       // mean / range
		"std_rel",        // std / range
		"skewness",       // scale-invariant
		"kurtosis",       // scale-invariant
		"smoothness",     // log10(grad energy / variance)
		"l2_density_rel", // RMS value / range
		"q50_over_linf",  // magnitude distribution shape
		"q90_over_linf",
		"q99_over_linf",
		"zero_fraction", // fraction of near-zero values
		"timestep",
	}
}

// Count is the feature vector length.
func Count() int { return len(Names()) }

// Extract computes the feature vector of a field at the given timestep.
// Constant fields produce finite (mostly zero) features.
func Extract(t *grid.Tensor, timestep int) []float64 {
	mn, mx := t.MinMax()
	rng := mx - mn
	linf := t.LinfNorm()
	variance := t.Variance()
	qs := t.QuantileSketch([]float64{0.5, 0.9, 0.99})

	logRange := -300.0
	if rng > 0 {
		logRange = math.Log10(rng)
	}
	// rel maps a location statistic into [0,1] via (v - min)/range;
	// relSpread maps a spread statistic (already offset-free) by 1/range.
	rel := func(v float64) float64 {
		if rng == 0 {
			return 0
		}
		return (v - mn) / rng
	}
	relSpread := func(v float64) float64 {
		if rng == 0 {
			return 0
		}
		return v / rng
	}
	overLinf := func(v float64) float64 {
		if linf == 0 {
			return 0
		}
		return v / linf
	}
	smooth := 0.0
	if ge := t.GradientEnergy(); ge > 0 && variance > 0 {
		smooth = math.Log10(ge / variance)
	}
	nearZero := 0
	thresh := linf * 1e-3
	for _, v := range t.Data() {
		if math.Abs(v) <= thresh {
			nearZero++
		}
	}
	return []float64{
		logRange,
		rel(t.Mean()),
		relSpread(t.Std()),
		t.Skewness(),
		t.Kurtosis(),
		smooth,
		rel(t.L2Norm() / math.Sqrt(float64(t.Len()))),
		overLinf(qs[0]),
		overLinf(qs[1]),
		overLinf(qs[2]),
		float64(nearZero) / float64(t.Len()),
		float64(timestep),
	}
}

// PoolLevel condenses an arbitrary-length coefficient stream into a
// fixed-size vector for E-MGARD's encoder network: the stream is split into
// size equal chunks and each chunk contributes its mean absolute value.
// Streams shorter than size are cycled; empty streams yield zeros.
func PoolLevel(coeffs []float64, size int) []float64 {
	out := make([]float64, size)
	if len(coeffs) == 0 || size == 0 {
		return out
	}
	if len(coeffs) <= size {
		for i := range out {
			out[i] = math.Abs(coeffs[i%len(coeffs)])
		}
		return out
	}
	chunk := float64(len(coeffs)) / float64(size)
	for i := 0; i < size; i++ {
		lo := int(float64(i) * chunk)
		hi := int(float64(i+1) * chunk)
		if hi > len(coeffs) {
			hi = len(coeffs)
		}
		if hi <= lo {
			hi = lo + 1
		}
		sum := 0.0
		for _, c := range coeffs[lo:hi] {
			sum += math.Abs(c)
		}
		out[i] = sum / float64(hi-lo)
	}
	return out
}
