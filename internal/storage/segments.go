package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
)

// File format of a segment store:
//
//	magic    [4]byte  "PMGD"
//	version  uint32   (2)
//	metaLen  uint32
//	meta     [metaLen]byte        opaque, owned by the caller
//	segCount uint32
//	table    segCount × {level uint32, plane uint32, offset uint64,
//	                     size uint64, crc32 uint32 (IEEE, of the payload)}
//	data     concatenated segment payloads
//
// Offsets in the table are absolute file offsets, so segments can be read
// with a single ranged read each — the store never loads the whole file.
// Every ranged read is verified against the table's CRC before it reaches
// the decoder.
const (
	magic          = "PMGD"
	formatVersion  = 2
	tableEntrySize = 4 + 4 + 8 + 8 + 4
)

// SegmentID addresses one stored bit-plane segment.
type SegmentID struct {
	Level int
	Plane int
}

// Writer builds a segment store file. Segments may be added in any order;
// Close writes the table and finalizes the file.
type Writer struct {
	f        *os.File
	meta     []byte
	segs     []segEntry
	payloads [][]byte
	closed   bool
}

type segEntry struct {
	id     SegmentID
	offset uint64
	size   uint64
	crc    uint32
}

// Create starts a new segment store at path with the given opaque metadata
// blob (typically the gob/JSON-encoded compression header).
func Create(path string, meta []byte) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("storage: create %s: %w", path, err)
	}
	return &Writer{f: f, meta: meta}, nil
}

// WriteSegment records the payload for one (level, plane) segment. The
// payload is retained until Close; duplicate IDs are rejected.
func (w *Writer) WriteSegment(id SegmentID, payload []byte) error {
	if w.closed {
		return fmt.Errorf("storage: write to closed writer")
	}
	if id.Level < 0 || id.Plane < 0 {
		return fmt.Errorf("storage: invalid segment id %+v", id)
	}
	for _, s := range w.segs {
		if s.id == id {
			return fmt.Errorf("storage: duplicate segment %+v", id)
		}
	}
	w.segs = append(w.segs, segEntry{
		id:   id,
		size: uint64(len(payload)),
		crc:  crc32.ChecksumIEEE(payload),
	})
	w.payloads = append(w.payloads, payload)
	return nil
}

// Close writes the header, table and payloads and closes the file.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	// Deterministic layout: sort by (level, plane) so that the progressive
	// read pattern (coarse level first, high planes first) is sequential.
	order := make([]int, len(w.segs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		sa, sb := w.segs[order[a]].id, w.segs[order[b]].id
		if sa.Level != sb.Level {
			return sa.Level < sb.Level
		}
		return sa.Plane < sb.Plane
	})

	offset := headerSize(len(w.meta), len(w.segs))
	ordered := make([]segEntry, len(order))
	for o, i := range order {
		w.segs[i].offset = offset
		offset += w.segs[i].size
		ordered[o] = w.segs[i]
	}

	if _, err := w.f.Write(buildHeader(w.meta, ordered)); err != nil {
		w.f.Close()
		return fmt.Errorf("storage: write header: %w", err)
	}
	for _, i := range order {
		if _, err := w.f.Write(w.payloads[i]); err != nil {
			w.f.Close()
			return fmt.Errorf("storage: write segment %+v: %w", w.segs[i].id, err)
		}
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("storage: close: %w", err)
	}
	return nil
}

// Store reads segments from a store file using ranged reads. It tracks the
// number of payload bytes and requests issued, which the experiments use as
// the exact measure of I/O cost. Store is safe for concurrent reads.
type Store struct {
	f    *os.File
	meta []byte
	segs map[SegmentID]segEntry

	mu        sync.Mutex
	bytesRead int64
	requests  int64
}

// Open opens a segment store file and parses its header and table.
func Open(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	st := &Store{f: f, segs: make(map[SegmentID]segEntry)}
	if err := st.readHeader(); err != nil {
		f.Close()
		return nil, err
	}
	return st, nil
}

func (s *Store) readHeader() error {
	fi, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("storage: stat: %w", err)
	}
	fileSize := uint64(fi.Size())
	var fixed [12]byte
	if _, err := io.ReadFull(s.f, fixed[:]); err != nil {
		return fmt.Errorf("storage: read header: %w", err)
	}
	if string(fixed[:4]) != magic {
		return fmt.Errorf("storage: bad magic %q", fixed[:4])
	}
	if v := binary.LittleEndian.Uint32(fixed[4:8]); v != formatVersion {
		return fmt.Errorf("storage: unsupported format version %d", v)
	}
	metaLen := binary.LittleEndian.Uint32(fixed[8:12])
	if uint64(metaLen) > fileSize || metaLen > 1<<24 {
		return fmt.Errorf("storage: implausible metadata length %d", metaLen)
	}
	s.meta = make([]byte, metaLen)
	if _, err := io.ReadFull(s.f, s.meta); err != nil {
		return fmt.Errorf("storage: read metadata: %w", err)
	}
	var cntBuf [4]byte
	if _, err := io.ReadFull(s.f, cntBuf[:]); err != nil {
		return fmt.Errorf("storage: read table size: %w", err)
	}
	count := binary.LittleEndian.Uint32(cntBuf[:])
	if uint64(count)*tableEntrySize > fileSize {
		return fmt.Errorf("storage: implausible segment count %d", count)
	}
	table := make([]byte, int(count)*tableEntrySize)
	if _, err := io.ReadFull(s.f, table); err != nil {
		return fmt.Errorf("storage: read table: %w", err)
	}
	for i := 0; i < int(count); i++ {
		e := table[i*tableEntrySize:]
		id := SegmentID{
			Level: int(binary.LittleEndian.Uint32(e[0:4])),
			Plane: int(binary.LittleEndian.Uint32(e[4:8])),
		}
		entry := segEntry{
			id:     id,
			offset: binary.LittleEndian.Uint64(e[8:16]),
			size:   binary.LittleEndian.Uint64(e[16:24]),
			crc:    binary.LittleEndian.Uint32(e[24:28]),
		}
		// Reject entries pointing outside the file before anything can
		// allocate or read based on them.
		if entry.offset > fileSize || entry.size > fileSize-entry.offset {
			return fmt.Errorf("storage: segment %+v extends past end of file", id)
		}
		s.segs[id] = entry
	}
	return nil
}

// Meta returns the opaque metadata blob stored at creation.
func (s *Store) Meta() []byte { return s.meta }

// Segments returns the IDs of all stored segments (unordered).
func (s *Store) Segments() []SegmentID {
	out := make([]SegmentID, 0, len(s.segs))
	for id := range s.segs {
		out = append(out, id)
	}
	return out
}

// SegmentSize returns the stored (compressed) size of a segment.
func (s *Store) SegmentSize(id SegmentID) (int64, error) {
	e, ok := s.segs[id]
	if !ok {
		return 0, fmt.Errorf("storage: segment %+v not found", id)
	}
	return int64(e.size), nil
}

// ReadSegment performs one ranged read of a segment's payload.
func (s *Store) ReadSegment(id SegmentID) ([]byte, error) {
	e, ok := s.segs[id]
	if !ok {
		return nil, fmt.Errorf("storage: segment %+v not found", id)
	}
	buf := make([]byte, e.size)
	if _, err := s.f.ReadAt(buf, int64(e.offset)); err != nil {
		return nil, fmt.Errorf("storage: read segment %+v: %w", id, err)
	}
	if got := crc32.ChecksumIEEE(buf); got != e.crc {
		return nil, fmt.Errorf("storage: segment %+v checksum mismatch (got %08x, want %08x)", id, got, e.crc)
	}
	s.mu.Lock()
	s.bytesRead += int64(e.size)
	s.requests++
	s.mu.Unlock()
	return buf, nil
}

// BytesRead returns the total payload bytes fetched so far.
func (s *Store) BytesRead() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytesRead
}

// Requests returns the number of ranged reads issued so far.
func (s *Store) Requests() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.requests
}

// ResetCounters zeroes the I/O accounting counters.
func (s *Store) ResetCounters() {
	s.mu.Lock()
	s.bytesRead, s.requests = 0, 0
	s.mu.Unlock()
}

// Close releases the underlying file.
func (s *Store) Close() error { return s.f.Close() }
