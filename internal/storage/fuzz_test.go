package storage

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzOpen ensures arbitrary bytes never panic the store parser: any input
// either opens cleanly (and all advertised segments read back without
// panicking) or is rejected with an error.
func FuzzOpen(f *testing.F) {
	// Seed with a valid store and a few mutations.
	dir := f.TempDir()
	path := filepath.Join(dir, "seed.pmgd")
	w, err := Create(path, []byte(`{"f":"x"}`))
	if err != nil {
		f.Fatal(err)
	}
	w.WriteSegment(SegmentID{Level: 0, Plane: 0}, []byte("hello"))
	w.WriteSegment(SegmentID{Level: 1, Plane: 3}, []byte{1, 2, 3})
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte("PMGD"))
	f.Add([]byte{})
	truncated := append([]byte(nil), valid[:len(valid)/2]...)
	f.Add(truncated)
	flipped := append([]byte(nil), valid...)
	flipped[8] ^= 0xFF
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		p := filepath.Join(t.TempDir(), "fuzz.pmgd")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Skip()
		}
		st, err := Open(p)
		if err != nil {
			return // rejected cleanly
		}
		defer st.Close()
		for _, id := range st.Segments() {
			st.ReadSegment(id) // must not panic; errors are fine
		}
	})
}
