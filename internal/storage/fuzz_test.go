package storage

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// FuzzOpen ensures arbitrary bytes never panic the store parser: any input
// either opens cleanly (and all advertised segments read back without
// panicking) or is rejected with an error.
func FuzzOpen(f *testing.F) {
	// Seed with a valid store and a few mutations.
	dir := f.TempDir()
	path := filepath.Join(dir, "seed.pmgd")
	w, err := Create(path, []byte(`{"f":"x"}`))
	if err != nil {
		f.Fatal(err)
	}
	w.WriteSegment(SegmentID{Level: 0, Plane: 0}, []byte("hello"))
	w.WriteSegment(SegmentID{Level: 1, Plane: 3}, []byte{1, 2, 3})
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte("PMGD"))
	f.Add([]byte{})
	truncated := append([]byte(nil), valid[:len(valid)/2]...)
	f.Add(truncated)
	flipped := append([]byte(nil), valid...)
	flipped[8] ^= 0xFF
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		p := filepath.Join(t.TempDir(), "fuzz.pmgd")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Skip()
		}
		st, err := Open(p)
		if err != nil {
			return // rejected cleanly
		}
		defer st.Close()
		for _, id := range st.Segments() {
			st.ReadSegment(id) // must not panic; errors are fine
		}
	})
}

// FuzzOpenTiered is the tiered-store mirror of FuzzOpen: arbitrary bytes
// as manifest.json must either open cleanly or be rejected with an error,
// never panic — and whatever opens must survive reads of every advertised
// plane (against level files that may be missing entirely).
func FuzzOpenTiered(f *testing.F) {
	// Seed with a real manifest written by the current writer...
	dir := f.TempDir()
	h, err := DefaultHierarchy(2)
	if err != nil {
		f.Fatal(err)
	}
	w, err := CreateTiered(filepath.Join(dir, "seed"), h, []byte(`{"f":"x"}`))
	if err != nil {
		f.Fatal(err)
	}
	w.WriteSegment(SegmentID{Level: 0, Plane: 0}, []byte("hello"))
	w.WriteSegment(SegmentID{Level: 1, Plane: 2}, []byte{1, 2, 3})
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(filepath.Join(dir, "seed", "manifest.json"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	// ...a hand-rolled version-1 manifest...
	v1, err := json.Marshal(tieredManifest{
		Version:   1,
		TierNames: []string{"nvme", "hdd"},
		Placement: []int{0, 1},
		Levels:    [][]int64{{5}, {0, 0, 3}},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(v1)
	// ...and hostile mutations: truncation, version confusion, negative and
	// overflowing sizes, mismatched checksum shapes.
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":2}`))
	f.Add([]byte(`{"version":2,"placement":[0],"levels":[[-1]],"checksums":[[0]]}`))
	f.Add([]byte(`{"version":1,"placement":[0],"levels":[[1125899906842624,1125899906842624]]}`))
	f.Add([]byte(`{"version":2,"placement":[0,0],"levels":[[1]],"checksums":[[1],[2]]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		root := t.TempDir()
		if err := os.WriteFile(filepath.Join(root, "manifest.json"), data, 0o644); err != nil {
			t.Skip()
		}
		st, err := OpenTiered(root)
		if err != nil {
			return // rejected cleanly
		}
		defer st.Close()
		for l := range st.man.Levels {
			st.TierOf(l) // must not panic
			for k := range st.man.Levels[l] {
				st.ReadSegment(SegmentID{Level: l, Plane: k}) // errors fine, panics not
			}
		}
	})
}
