package storage

import (
	"runtime"
	"testing"
	"time"
)

// blockingSource blocks every Segment call until release is closed.
type blockingSource struct {
	release chan struct{}
}

func (b *blockingSource) Segment(level, plane int) ([]byte, error) {
	<-b.release
	return []byte{1}, nil
}

// TestReadOnceTimeoutDoesNotLeakGoroutines drives many timed-out reads
// against a hung source and asserts the abandoned reader goroutines all
// exit once the source unblocks — the regression test for the per-read
// timeout leaking a goroutine per attempt.
func TestReadOnceTimeoutDoesNotLeakGoroutines(t *testing.T) {
	src := &blockingSource{release: make(chan struct{})}
	pol := DefaultRetryPolicy()
	pol.Timeout = time.Millisecond
	pol.MaxAttempts = 4
	pol.Sleep = func(time.Duration) {}
	r := NewRetryingSource(nil, src, pol)

	before := runtime.NumGoroutine()
	const reads = 16
	for i := 0; i < reads; i++ {
		if _, err := r.Segment(0, i); err == nil {
			t.Fatal("read against a hung source succeeded")
		}
	}
	// Every attempt parked one reader on the source; unblock them all and
	// they must drain — the non-blocking result send cannot pin them.
	close(src.release)
	deadline := time.After(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("%d goroutines still alive after unblocking (baseline %d)",
				runtime.NumGoroutine(), before)
		case <-time.After(10 * time.Millisecond):
		}
	}
	if got := r.Stats().Exhausted; got != reads {
		t.Fatalf("Exhausted = %d, want %d", got, reads)
	}
}
