package storage

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func TestDefaultHierarchyPlacement(t *testing.T) {
	h, err := DefaultHierarchy(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.Placement[0] != 0 {
		t.Fatalf("level 0 placed on tier %d, want fastest tier 0", h.Placement[0])
	}
	if got, want := h.Placement[4], len(h.Tiers)-1; got != want {
		t.Fatalf("finest level placed on tier %d, want slowest tier %d", got, want)
	}
	for l := 1; l < len(h.Placement); l++ {
		if h.Placement[l] < h.Placement[l-1] {
			t.Fatalf("placement not monotone: %v", h.Placement)
		}
	}
}

func TestDefaultHierarchySingleLevel(t *testing.T) {
	h, err := DefaultHierarchy(1)
	if err != nil {
		t.Fatal(err)
	}
	if h.Placement[0] != 0 {
		t.Fatal("single level should sit on the fastest tier")
	}
	if _, err := DefaultHierarchy(0); err == nil {
		t.Fatal("DefaultHierarchy(0) should fail")
	}
}

func TestHierarchyValidate(t *testing.T) {
	bad := []Hierarchy{
		{},
		{Tiers: []Tier{{Name: "x", Bandwidth: 0}}},
		{Tiers: []Tier{{Name: "x", Bandwidth: 1, Latency: -1}}},
		{Tiers: []Tier{{Name: "x", Bandwidth: 1}}, Placement: []int{1}},
	}
	for i, h := range bad {
		if err := h.Validate(); err == nil {
			t.Errorf("case %d: Validate passed, want error", i)
		}
	}
}

func TestReadTimeModel(t *testing.T) {
	h := Hierarchy{
		Tiers:     []Tier{{Name: "t", Latency: 2, Bandwidth: 100}},
		Placement: []int{0},
	}
	got, err := h.ReadTime(0, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	if want := 3*2.0 + 5.0; got != want {
		t.Fatalf("ReadTime = %v, want %v", got, want)
	}
	// Zero work costs nothing.
	if z, _ := h.ReadTime(0, 0, 0); z != 0 {
		t.Fatalf("zero plan time = %v", z)
	}
	// Bytes with no explicit request count pays one latency.
	if one, _ := h.ReadTime(0, 100, 0); one != 2+1 {
		t.Fatalf("implicit single request time = %v, want 3", one)
	}
	if _, err := h.ReadTime(5, 1, 1); err == nil {
		t.Fatal("out-of-range level accepted")
	}
}

func TestPlanTime(t *testing.T) {
	h, _ := DefaultHierarchy(3)
	total, err := h.PlanTime([]int64{1000, 2000, 3000}, []int{1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for l, b := range []int64{1000, 2000, 3000} {
		tl, _ := h.ReadTime(l, b, []int{1, 1, 2}[l])
		sum += tl
	}
	if total != sum {
		t.Fatalf("PlanTime = %v, want %v", total, sum)
	}
	if _, err := h.PlanTime([]int64{1}, []int{1, 2}); err == nil {
		t.Fatal("mismatched plan arrays accepted")
	}
}

func TestSlowerTiersCostMore(t *testing.T) {
	h, _ := DefaultHierarchy(4)
	fast, _ := h.ReadTime(0, 1<<20, 1)
	slow, _ := h.ReadTime(3, 1<<20, 1)
	if slow <= fast {
		t.Fatalf("slow tier read (%v) not slower than fast tier (%v)", slow, fast)
	}
}

func writeTestStore(t *testing.T, meta []byte, segs map[SegmentID][]byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "field.pmgd")
	w, err := Create(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	for id, payload := range segs {
		if err := w.WriteSegment(id, payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSegmentStoreRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	meta := []byte(`{"field":"Jx"}`)
	segs := make(map[SegmentID][]byte)
	for l := 0; l < 3; l++ {
		for p := 0; p < 4; p++ {
			payload := make([]byte, 10+rng.Intn(100))
			rng.Read(payload)
			segs[SegmentID{Level: l, Plane: p}] = payload
		}
	}
	path := writeTestStore(t, meta, segs)

	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if !bytes.Equal(st.Meta(), meta) {
		t.Fatal("metadata mismatch")
	}
	if len(st.Segments()) != len(segs) {
		t.Fatalf("segment count %d, want %d", len(st.Segments()), len(segs))
	}
	for id, want := range segs {
		got, err := st.ReadSegment(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("segment %+v payload mismatch", id)
		}
		sz, err := st.SegmentSize(id)
		if err != nil {
			t.Fatal(err)
		}
		if sz != int64(len(want)) {
			t.Fatalf("segment %+v size %d, want %d", id, sz, len(want))
		}
	}
}

func TestSegmentStoreAccounting(t *testing.T) {
	segs := map[SegmentID][]byte{
		{Level: 0, Plane: 0}: make([]byte, 100),
		{Level: 0, Plane: 1}: make([]byte, 50),
	}
	st, err := Open(writeTestStore(t, nil, segs))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.BytesRead() != 0 || st.Requests() != 0 {
		t.Fatal("fresh store has non-zero counters")
	}
	st.ReadSegment(SegmentID{Level: 0, Plane: 0})
	st.ReadSegment(SegmentID{Level: 0, Plane: 1})
	if st.BytesRead() != 150 || st.Requests() != 2 {
		t.Fatalf("counters = (%d bytes, %d reqs), want (150, 2)", st.BytesRead(), st.Requests())
	}
	st.ResetCounters()
	if st.BytesRead() != 0 || st.Requests() != 0 {
		t.Fatal("ResetCounters did not reset")
	}
}

func TestSegmentStoreMissingSegment(t *testing.T) {
	st, err := Open(writeTestStore(t, nil, map[SegmentID][]byte{{Level: 0, Plane: 0}: {1}}))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.ReadSegment(SegmentID{Level: 9, Plane: 9}); err == nil {
		t.Fatal("missing segment read succeeded")
	}
	if _, err := st.SegmentSize(SegmentID{Level: 9, Plane: 9}); err == nil {
		t.Fatal("missing segment size succeeded")
	}
}

func TestWriterRejectsDuplicatesAndBadIDs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dup.pmgd")
	w, err := Create(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	id := SegmentID{Level: 1, Plane: 2}
	if err := w.WriteSegment(id, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteSegment(id, []byte{2}); err == nil {
		t.Fatal("duplicate segment accepted")
	}
	if err := w.WriteSegment(SegmentID{Level: -1}, nil); err == nil {
		t.Fatal("negative level accepted")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteSegment(SegmentID{Level: 2, Plane: 0}, nil); err == nil {
		t.Fatal("write after close accepted")
	}
}

func TestOpenRejectsCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	// Truncated file.
	short := filepath.Join(dir, "short.pmgd")
	os.WriteFile(short, []byte("PM"), 0o644)
	if _, err := Open(short); err == nil {
		t.Fatal("truncated file accepted")
	}
	// Wrong magic.
	bad := filepath.Join(dir, "bad.pmgd")
	os.WriteFile(bad, append([]byte("XXXX"), make([]byte, 16)...), 0o644)
	if _, err := Open(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Nonexistent file.
	if _, err := Open(filepath.Join(dir, "missing.pmgd")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestSegmentsLaidOutSequentially(t *testing.T) {
	// (level, plane) order in the file should match the progressive read
	// pattern: verify offsets grow with (level, plane).
	segs := map[SegmentID][]byte{
		{Level: 1, Plane: 0}: make([]byte, 10),
		{Level: 0, Plane: 1}: make([]byte, 20),
		{Level: 0, Plane: 0}: make([]byte, 30),
		{Level: 1, Plane: 1}: make([]byte, 40),
	}
	st, err := Open(writeTestStore(t, nil, segs))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	order := []SegmentID{
		{Level: 0, Plane: 0}, {Level: 0, Plane: 1},
		{Level: 1, Plane: 0}, {Level: 1, Plane: 1},
	}
	prevEnd := int64(-1)
	for _, id := range order {
		e := st.segs[id]
		if int64(e.offset) <= prevEnd {
			t.Fatalf("segment %+v at offset %d not after previous end %d", id, e.offset, prevEnd)
		}
		prevEnd = int64(e.offset)
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	segs := map[SegmentID][]byte{
		{Level: 0, Plane: 0}: []byte("payload-zero"),
		{Level: 0, Plane: 1}: []byte("payload-one!"),
	}
	path := writeTestStore(t, nil, segs)
	// Flip one byte inside the last segment's payload region.
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-3] ^= 0x01
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// One of the two segments must fail its CRC.
	_, err0 := st.ReadSegment(SegmentID{Level: 0, Plane: 0})
	_, err1 := st.ReadSegment(SegmentID{Level: 0, Plane: 1})
	if err0 == nil && err1 == nil {
		t.Fatal("payload corruption not detected by checksums")
	}
}
