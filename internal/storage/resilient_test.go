package storage

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"
)

// scriptedSource fails reads according to a per-call script, then serves a
// deterministic payload.
type scriptedSource struct {
	mu    sync.Mutex
	calls map[SegmentID]int
	// failures[id] is the number of leading attempts that fail transiently.
	failures map[SegmentID]int
	// permanent planes always fail with ErrPermanent.
	permanent map[SegmentID]bool
	// delay stalls every read, for the timeout test.
	delay time.Duration
}

func (s *scriptedSource) Segment(level, plane int) ([]byte, error) {
	id := SegmentID{Level: level, Plane: plane}
	s.mu.Lock()
	n := s.calls[id]
	s.calls[id] = n + 1
	s.mu.Unlock()
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	if s.permanent[id] {
		return nil, fmt.Errorf("scripted: %+v lost: %w", id, ErrPermanent)
	}
	if n < s.failures[id] {
		return nil, fmt.Errorf("scripted: %+v attempt %d: %w", id, n, ErrTransient)
	}
	return []byte(fmt.Sprintf("payload-%d-%d", level, plane)), nil
}

func (s *scriptedSource) callCount(id SegmentID) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls[id]
}

func newScripted() *scriptedSource {
	return &scriptedSource{
		calls:     make(map[SegmentID]int),
		failures:  make(map[SegmentID]int),
		permanent: make(map[SegmentID]bool),
	}
}

// fastPolicy retries without real sleeping.
func fastPolicy() RetryPolicy {
	p := DefaultRetryPolicy()
	p.Sleep = func(time.Duration) {}
	return p
}

func TestRetryingSourceRecoversTransient(t *testing.T) {
	src := newScripted()
	src.failures[SegmentID{Level: 0, Plane: 0}] = 3
	r := NewRetryingSource(nil, src, fastPolicy())
	got, err := r.Segment(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("payload-0-0")) {
		t.Fatalf("wrong payload %q", got)
	}
	st := r.Stats()
	if st.Retries != 3 || st.Recovered != 1 || st.Exhausted != 0 || st.Quarantined != 0 {
		t.Fatalf("stats %+v, want 3 retries / 1 recovered", st)
	}
}

func TestRetryingSourceExhaustsRetries(t *testing.T) {
	src := newScripted()
	src.failures[SegmentID{Level: 1, Plane: 2}] = 1 << 30
	pol := fastPolicy()
	pol.MaxAttempts = 4
	r := NewRetryingSource(nil, src, pol)
	_, err := r.Segment(1, 2)
	if err == nil {
		t.Fatal("exhausted read succeeded")
	}
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("exhaustion error lost the transient cause: %v", err)
	}
	if got := src.callCount(SegmentID{Level: 1, Plane: 2}); got != 4 {
		t.Fatalf("underlying called %d times, want 4", got)
	}
	if st := r.Stats(); st.Exhausted != 1 {
		t.Fatalf("stats %+v, want 1 exhausted", st)
	}
	// Exhaustion is not quarantine: the next read tries again.
	src.failures[SegmentID{Level: 1, Plane: 2}] = 0
	src.mu.Lock()
	src.calls[SegmentID{Level: 1, Plane: 2}] = 0
	src.mu.Unlock()
	if _, err := r.Segment(1, 2); err != nil {
		t.Fatalf("recovered source still failing: %v", err)
	}
}

func TestRetryingSourceQuarantinesPermanent(t *testing.T) {
	src := newScripted()
	src.permanent[SegmentID{Level: 2, Plane: 1}] = true
	r := NewRetryingSource(nil, src, fastPolicy())
	_, err := r.Segment(2, 1)
	if !errors.Is(err, ErrPermanent) {
		t.Fatalf("want ErrPermanent, got %v", err)
	}
	if got := src.callCount(SegmentID{Level: 2, Plane: 1}); got != 1 {
		t.Fatalf("permanent failure retried %d times", got)
	}
	// Second read fails fast without touching the source.
	_, err = r.Segment(2, 1)
	if !errors.Is(err, ErrPermanent) {
		t.Fatalf("quarantined read: %v", err)
	}
	if got := src.callCount(SegmentID{Level: 2, Plane: 1}); got != 1 {
		t.Fatalf("quarantined plane re-read the source (%d calls)", got)
	}
	q := r.Quarantined()
	if len(q) != 1 || q[0] != (SegmentID{Level: 2, Plane: 1}) {
		t.Fatalf("quarantine list %v", q)
	}
	if st := r.Stats(); st.Quarantined != 1 {
		t.Fatalf("stats %+v, want 1 quarantined", st)
	}
}

func TestRetryingSourceTimeout(t *testing.T) {
	src := newScripted()
	src.delay = 200 * time.Millisecond
	pol := fastPolicy()
	pol.MaxAttempts = 2
	pol.Timeout = 5 * time.Millisecond
	r := NewRetryingSource(nil, src, pol)
	start := time.Now()
	_, err := r.Segment(0, 0)
	if err == nil {
		t.Fatal("stalled read succeeded")
	}
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("timeout not classified transient: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
		t.Fatalf("timeout did not cut the stalled read short (%v)", elapsed)
	}
}

func TestRetryingSourceContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	src := newScripted()
	r := NewRetryingSource(ctx, src, fastPolicy())
	_, err := r.Segment(0, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestRetryingSourceBackoffIsBoundedAndJittered(t *testing.T) {
	var delays []time.Duration
	src := newScripted()
	src.failures[SegmentID{Level: 0, Plane: 0}] = 7
	pol := DefaultRetryPolicy()
	pol.BaseDelay = time.Millisecond
	pol.MaxDelay = 8 * time.Millisecond
	pol.Sleep = func(d time.Duration) { delays = append(delays, d) }
	r := NewRetryingSource(nil, src, pol)
	if _, err := r.Segment(0, 0); err != nil {
		t.Fatal(err)
	}
	if len(delays) != 7 {
		t.Fatalf("slept %d times, want 7", len(delays))
	}
	for i, d := range delays {
		if d <= 0 || d > pol.MaxDelay {
			t.Fatalf("delay %d = %v outside (0, %v]", i, d, pol.MaxDelay)
		}
	}
	// Exponential up to the cap: the later delays must exceed the first.
	if delays[3] <= delays[0] {
		t.Fatalf("backoff not growing: %v", delays)
	}
}

// TestRetryingSourceJitterDeterministicUnderConcurrency pins the fix for
// the shared-jitter-stream bug: backoff delays are a pure function of
// (seed, level, plane, attempt), so the multiset of delays a workload
// produces is identical whether its reads run sequentially or race each
// other. Before the fix, concurrent sessions interleaved draws from one
// shared rand.Rand, perturbing each other's schedules and breaking
// seed-determinism. Run under -race, this also hammers concurrent retries
// through one RetryingSource.
func TestRetryingSourceJitterDeterministicUnderConcurrency(t *testing.T) {
	const planes = 10
	run := func(concurrent bool) []time.Duration {
		var mu sync.Mutex
		var delays []time.Duration
		src := newScripted()
		for k := 0; k < planes; k++ {
			src.failures[SegmentID{Level: 0, Plane: k}] = 2
		}
		pol := DefaultRetryPolicy()
		pol.BaseDelay = time.Millisecond
		pol.MaxDelay = 16 * time.Millisecond
		pol.JitterSeed = 42
		pol.Sleep = func(d time.Duration) {
			mu.Lock()
			delays = append(delays, d)
			mu.Unlock()
		}
		r := NewRetryingSource(nil, src, pol)
		if concurrent {
			var wg sync.WaitGroup
			for k := 0; k < planes; k++ {
				wg.Add(1)
				go func(k int) {
					defer wg.Done()
					if _, err := r.Segment(0, k); err != nil {
						t.Error(err)
					}
				}(k)
			}
			wg.Wait()
		} else {
			for k := 0; k < planes; k++ {
				if _, err := r.Segment(0, k); err != nil {
					t.Fatal(err)
				}
			}
		}
		sort.Slice(delays, func(i, j int) bool { return delays[i] < delays[j] })
		return delays
	}
	seq := run(false)
	conc := run(true)
	if len(seq) != 2*planes {
		t.Fatalf("sequential run slept %d times, want %d", len(seq), 2*planes)
	}
	if !reflect.DeepEqual(seq, conc) {
		t.Fatalf("delay multiset changed under concurrency:\nsequential %v\nconcurrent %v", seq, conc)
	}
	// Distinct planes must not share a schedule: a degenerate constant
	// stream would also pass the multiset check.
	if seq[0] == seq[planes-1] {
		t.Fatalf("first-attempt delays all identical: %v", seq)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want FaultClass
	}{
		{fmt.Errorf("wrapped: %w", ErrTransient), FaultTransient},
		{fmt.Errorf("wrapped: %w", ErrPermanent), FaultPermanent},
		{fmt.Errorf("wrapped: %w", ErrCorrupt), FaultPermanent},
		{fmt.Errorf("open: %w", os.ErrNotExist), FaultPermanent},
		{errors.New("mystery network burp"), FaultTransient},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Fatalf("Classify(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}
