package storage

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// streamTestSegs is a deterministic segment set spanning several levels,
// with a skipped plane and an empty payload.
func streamTestSegs() []struct {
	id      SegmentID
	payload []byte
} {
	var segs []struct {
		id      SegmentID
		payload []byte
	}
	for l := 0; l < 4; l++ {
		for p := 0; p < 5; p++ {
			if l == 2 && p == 1 {
				continue // skipped plane
			}
			payload := bytes.Repeat([]byte{byte(17*l + 3*p + 1)}, 7*l+p)
			segs = append(segs, struct {
				id      SegmentID
				payload []byte
			}{SegmentID{Level: l, Plane: p}, payload})
		}
	}
	return segs
}

// TestStreamWriterByteIdentical is the streaming writer's core contract:
// the file it produces is byte-for-byte the file Writer produces from the
// same segments.
func TestStreamWriterByteIdentical(t *testing.T) {
	dir := t.TempDir()
	meta := []byte(`{"header":"blob","planes":32}`)
	segs := streamTestSegs()

	batchPath := filepath.Join(dir, "batch.pmgd")
	w, err := Create(batchPath, meta)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range segs {
		if err := w.WriteSegment(s.id, s.payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	streamPath := filepath.Join(dir, "stream.pmgd")
	sw, err := CreateStream(streamPath)
	if err != nil {
		t.Fatal(err)
	}
	defer sw.Abort()
	for _, s := range segs {
		if err := sw.WriteSegment(s.id, s.payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Commit(meta); err != nil {
		t.Fatal(err)
	}

	want, err := os.ReadFile(batchPath)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(streamPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("streamed store differs from batch store (%d vs %d bytes)", len(got), len(want))
	}
	if _, err := os.Stat(streamPath + ".spill"); !os.IsNotExist(err) {
		t.Fatalf("spill file not removed after Commit: %v", err)
	}
	// And the streamed file opens and reads back through the normal Store.
	st, err := Open(streamPath)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for _, s := range segs {
		got, err := st.ReadSegment(s.id)
		if err != nil {
			t.Fatalf("%+v: %v", s.id, err)
		}
		if !bytes.Equal(got, s.payload) {
			t.Fatalf("%+v payload mismatch", s.id)
		}
	}
}

// TestStreamWriterOrderEnforced checks the arrival-order contract that
// stands in for Writer's sort.
func TestStreamWriterOrderEnforced(t *testing.T) {
	sw, err := CreateStream(filepath.Join(t.TempDir(), "s.pmgd"))
	if err != nil {
		t.Fatal(err)
	}
	defer sw.Abort()
	if err := sw.WriteSegment(SegmentID{Level: 1, Plane: 2}, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteSegment(SegmentID{Level: 1, Plane: 2}, []byte("b")); err == nil {
		t.Error("duplicate segment accepted")
	}
	if err := sw.WriteSegment(SegmentID{Level: 1, Plane: 1}, []byte("c")); err == nil {
		t.Error("plane regression accepted")
	}
	if err := sw.WriteSegment(SegmentID{Level: 0, Plane: 9}, []byte("d")); err == nil {
		t.Error("level regression accepted")
	}
	if err := sw.WriteSegment(SegmentID{Level: 2, Plane: 0}, []byte("e")); err != nil {
		t.Errorf("level advance rejected: %v", err)
	}
}

// TestStreamWriterAbort checks that Abort leaves nothing behind.
func TestStreamWriterAbort(t *testing.T) {
	path := filepath.Join(t.TempDir(), "aborted.pmgd")
	sw, err := CreateStream(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteSegment(SegmentID{Level: 0, Plane: 0}, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	sw.Abort()
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("final file exists after Abort: %v", err)
	}
	if _, err := os.Stat(path + ".spill"); !os.IsNotExist(err) {
		t.Errorf("spill file exists after Abort: %v", err)
	}
	if err := sw.WriteSegment(SegmentID{Level: 0, Plane: 1}, []byte("x")); err == nil {
		t.Error("write after Abort accepted")
	}
	if err := sw.Commit(nil); err == nil {
		t.Error("commit after Abort accepted")
	}
}

// TestTieredWriterSetMeta checks the streaming-metadata path: meta provided
// after the segments, at Close time, reads back intact.
func TestTieredWriterSetMeta(t *testing.T) {
	h, err := DefaultHierarchy(2)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "store")
	w, err := CreateTiered(dir, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteSegment(SegmentID{Level: 0, Plane: 0}, []byte("seg")); err != nil {
		t.Fatal(err)
	}
	meta := []byte(`{"late":"header"}`)
	if err := w.SetMeta(meta); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := OpenTiered(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if !bytes.Equal(st.Meta(), meta) {
		t.Fatalf("meta = %q, want %q", st.Meta(), meta)
	}
	if err := w.SetMeta(nil); err == nil {
		t.Error("SetMeta after Close accepted")
	}
}

// TestTieredStoreFDCap is the fd-growth regression test: with a handle cap
// the resident fd count stays at the cap no matter how many levels are
// scanned, and ReleaseLevel drops handles eagerly.
func TestTieredStoreFDCap(t *testing.T) {
	const levels = 6
	h, err := DefaultHierarchy(levels)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "store")
	w, err := CreateTiered(dir, h, []byte("m"))
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[SegmentID][]byte)
	for l := 0; l < levels; l++ {
		for p := 0; p < 3; p++ {
			id := SegmentID{Level: l, Plane: p}
			payload := bytes.Repeat([]byte{byte(l*16 + p + 1)}, 9+l)
			want[id] = payload
			if err := w.WriteSegment(id, payload); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := OpenTiered(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// Unbounded default: handles accumulate, one per level touched — the
	// historical behavior the cap exists to fix.
	for l := 0; l < levels; l++ {
		if _, err := st.ReadSegment(SegmentID{Level: l, Plane: 0}); err != nil {
			t.Fatal(err)
		}
	}
	if got := st.openFiles(); got != levels {
		t.Fatalf("unbounded scan: %d handles resident, want %d", got, levels)
	}

	// Capping immediately evicts down to the cap, and a full multi-pass
	// scan never exceeds it.
	const maxFDs = 2
	st.SetMaxOpenFiles(maxFDs)
	if got := st.openFiles(); got > maxFDs {
		t.Fatalf("after SetMaxOpenFiles(%d): %d handles resident", maxFDs, got)
	}
	for pass := 0; pass < 3; pass++ {
		for l := 0; l < levels; l++ {
			for p := 0; p < 3; p++ {
				id := SegmentID{Level: l, Plane: p}
				got, err := st.ReadSegment(id)
				if err != nil {
					t.Fatalf("pass %d %+v: %v", pass, id, err)
				}
				if !bytes.Equal(got, want[id]) {
					t.Fatalf("pass %d %+v: payload mismatch", pass, id)
				}
				if n := st.openFiles(); n > maxFDs {
					t.Fatalf("pass %d %+v: %d handles resident, cap %d", pass, id, n, maxFDs)
				}
			}
		}
	}

	// ReleaseLevel drops handles eagerly even without a cap.
	st.SetMaxOpenFiles(0)
	for l := 0; l < levels; l++ {
		st.ReleaseLevel(l) // clear residue from the capped scan
	}
	if got := st.openFiles(); got != 0 {
		t.Fatalf("%d handles resident after releasing every level", got)
	}
	for l := 0; l < levels; l++ {
		if _, err := st.ReadSegment(SegmentID{Level: l, Plane: 1}); err != nil {
			t.Fatal(err)
		}
		st.ReleaseLevel(l)
		if got := st.openFiles(); got != 0 {
			t.Fatalf("level %d: %d handles resident after ReleaseLevel", l, got)
		}
	}
	// A released level reopens transparently.
	if _, err := st.ReadSegment(SegmentID{Level: 0, Plane: 2}); err != nil {
		t.Fatalf("read after release: %v", err)
	}
}

// TestTieredStoreFDCapConcurrent hammers a capped store from many
// goroutines: eviction must never close a handle mid-read.
func TestTieredStoreFDCapConcurrent(t *testing.T) {
	const levels = 5
	h, err := DefaultHierarchy(levels)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "store")
	w, err := CreateTiered(dir, h, []byte("m"))
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < levels; l++ {
		if err := w.WriteSegment(SegmentID{Level: l, Plane: 0}, bytes.Repeat([]byte{byte(l + 1)}, 1024)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := OpenTiered(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	st.SetMaxOpenFiles(1)

	errc := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 50; i++ {
				l := (g + i) % levels
				b, err := st.ReadSegment(SegmentID{Level: l, Plane: 0})
				if err != nil {
					errc <- fmt.Errorf("goroutine %d read level %d: %w", g, l, err)
					return
				}
				if len(b) != 1024 || b[0] != byte(l+1) {
					errc <- fmt.Errorf("goroutine %d level %d: bad payload", g, l)
					return
				}
			}
			errc <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}
