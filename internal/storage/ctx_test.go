package storage

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// slowSource blocks every Segment call until its gate closes.
type slowSource struct {
	gate  chan struct{}
	calls atomic.Int64
}

func (s *slowSource) Segment(level, plane int) ([]byte, error) {
	s.calls.Add(1)
	<-s.gate
	return []byte{7}, nil
}

func TestSegmentCtxCancelsInFlightRead(t *testing.T) {
	src := &slowSource{gate: make(chan struct{})}
	defer close(src.gate)
	pol := DefaultRetryPolicy()
	r := NewRetryingSource(nil, src, pol)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := r.SegmentCtx(ctx, 0, 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v, want ~20ms", elapsed)
	}
	// The stalled read burned exactly one attempt: cancellation must not
	// keep retrying against the hung tier.
	if got := src.calls.Load(); got != 1 {
		t.Fatalf("source saw %d calls, want 1", got)
	}
}

// transientSource fails every read with a transient error.
type transientSource struct{ calls atomic.Int64 }

func (s *transientSource) Segment(level, plane int) ([]byte, error) {
	s.calls.Add(1)
	return nil, ErrTransient
}

func TestSegmentCtxInterruptsBackoffSleep(t *testing.T) {
	src := &transientSource{}
	pol := DefaultRetryPolicy()
	pol.MaxAttempts = 1000
	pol.BaseDelay = 50 * time.Millisecond
	pol.MaxDelay = 50 * time.Millisecond
	r := NewRetryingSource(nil, src, pol)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := r.SegmentCtx(ctx, 0, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	// 1000 attempts at 25-50ms backoff each would take ~25s+; cancellation
	// must cut the retry loop short mid-sleep.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, want ~10ms", elapsed)
	}
	if got := src.calls.Load(); got > 3 {
		t.Fatalf("source saw %d attempts after cancellation, want ≤ 3", got)
	}
}

func TestSegmentCtxBackgroundMatchesSegment(t *testing.T) {
	src := &countingSource{}
	pol := DefaultRetryPolicy()
	pol.Sleep = func(time.Duration) {}
	r := NewRetryingSource(nil, src, pol)
	a, errA := r.Segment(0, 0)
	b, errB := r.SegmentCtx(context.Background(), 0, 1)
	if errA != nil || errB != nil {
		t.Fatalf("errs = %v, %v", errA, errB)
	}
	if string(a) != string(b) {
		t.Fatalf("Segment and SegmentCtx disagree: %q vs %q", a, b)
	}
}

// countingSource returns a fixed payload and counts reads.
type countingSource struct{ calls atomic.Int64 }

func (s *countingSource) Segment(level, plane int) ([]byte, error) {
	s.calls.Add(1)
	return []byte{42}, nil
}
