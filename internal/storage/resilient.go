package storage

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"pmgard/internal/obs"
)

// Fault-class sentinels. Error producers (the stores in this package, the
// fault injectors in internal/faults, or any user-supplied SegmentSource)
// wrap their errors with one of these so the retry layer and the degraded
// retrieval path in internal/core can tell a blip from a loss:
//
//   - ErrTransient marks failures worth retrying — flaky interconnects,
//     timeouts, throttled tiers.
//   - ErrPermanent marks failures no retry will fix — a deleted level file,
//     an evicted tape segment. RetryingSource quarantines these and
//     Session.Refine degrades around them.
//   - ErrCorrupt marks payloads whose checksum did not match. On-disk
//     corruption is not repaired by re-reading, so it classifies as
//     permanent.
var (
	// ErrTransient marks a read failure that a retry may fix.
	ErrTransient = errors.New("storage: transient read fault")
	// ErrPermanent marks a read failure no retry will fix.
	ErrPermanent = errors.New("storage: permanent read fault")
	// ErrCorrupt marks a payload that failed checksum verification.
	ErrCorrupt = errors.New("storage: payload corruption detected")
)

// FaultClass is the retry layer's verdict on a read error.
type FaultClass int

const (
	// FaultTransient errors are retried with backoff.
	FaultTransient FaultClass = iota
	// FaultPermanent errors are quarantined: the (level, plane) is marked
	// unavailable and every later read fails fast.
	FaultPermanent
)

// Classify maps a read error to its fault class. Explicitly marked
// permanent errors, checksum mismatches and missing files are permanent;
// everything else — including unmarked errors from sources that predate
// the fault sentinels — is treated as transient, the conservative choice
// (a pointless retry costs milliseconds, a wrong quarantine loses data).
func Classify(err error) FaultClass {
	switch {
	case errors.Is(err, ErrPermanent),
		errors.Is(err, ErrCorrupt),
		errors.Is(err, os.ErrNotExist):
		return FaultPermanent
	default:
		return FaultTransient
	}
}

// PlaneSource yields compressed plane payloads. It is structurally
// identical to core.SegmentSource, restated here so the storage layer can
// wrap retrieval sources without importing core.
type PlaneSource interface {
	// Segment returns the compressed payload of plane k of level l.
	Segment(level, plane int) ([]byte, error)
}

// PlaneSourceCtx is the context-aware extension of PlaneSource, matching
// core.ContextSource. A RetryingSource forwards the per-call context to
// sources that implement it, so context values (trace propagation) and
// cancellation reach the underlying read — essential for network-backed
// sources like the shard router's node client, where the context carries
// the traceparent and aborting an abandoned read actually closes the
// connection.
type PlaneSourceCtx interface {
	// SegmentCtx is Segment bounded by ctx.
	SegmentCtx(ctx context.Context, level, plane int) ([]byte, error)
}

// RetryPolicy bounds the retry loop of a RetryingSource.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per read (first attempt
	// included). Values below 1 mean the default of 8.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further retry
	// doubles it. 0 means the default of 1ms.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff. 0 means the default of 100ms.
	MaxDelay time.Duration
	// Timeout is the per-read deadline; a read exceeding it counts as a
	// transient failure. 0 disables the deadline.
	Timeout time.Duration
	// JitterSeed seeds the deterministic backoff jitter so tests are
	// reproducible. 0 uses a fixed default seed.
	JitterSeed int64
	// Sleep replaces the backoff sleep between retries; tests use it to
	// avoid real delays. nil means a real timer that SegmentCtx can
	// interrupt on context cancellation; a custom Sleep is called as-is
	// and only checked for cancellation after it returns.
	Sleep func(time.Duration)
}

// DefaultRetryPolicy is tuned for the paper's storage hierarchy: at the
// default rates a 20% transient fault rate fails a read end-to-end with
// probability 0.2^8 ≈ 3e-6, while the worst-case added latency per read
// stays under a second.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 8,
		BaseDelay:   time.Millisecond,
		MaxDelay:    100 * time.Millisecond,
	}
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	d := DefaultRetryPolicy()
	if p.MaxAttempts < 1 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = d.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = d.MaxDelay
	}
	return p
}

// RetryStats is a point-in-time view over the retry layer's counters, for
// tests and CLI reporting. The counters themselves live in obs instruments
// (standalone by default, registry-backed after Instrument), so the same
// numbers appear in a -metrics-out snapshot and in this struct.
type RetryStats struct {
	// Reads is the number of Segment calls served (including failures).
	Reads int64
	// Retries is the number of extra attempts issued after a transient
	// failure.
	Retries int64
	// Recovered is the number of reads that failed at least once and then
	// succeeded on a retry.
	Recovered int64
	// Exhausted is the number of reads that failed every attempt.
	Exhausted int64
	// Quarantined is the number of (level, plane) segments marked
	// permanently unavailable.
	Quarantined int64
	// BytesTransferred is the payload bytes delivered by successful reads.
	BytesTransferred int64
	// BytesWasted is the payload bytes fetched by attempts whose result was
	// abandoned (reads that finished after their timeout fired).
	BytesWasted int64
	// BackoffSeconds is the total time spent sleeping between retries.
	BackoffSeconds float64
}

// retryCounters are the live instruments behind RetryStats. The zero-ish
// constructor wires standalone instruments so a RetryingSource counts
// exactly even without a registry; Instrument rebinds them to shared,
// registry-named instruments.
type retryCounters struct {
	reads       *obs.Counter
	retries     *obs.Counter
	recovered   *obs.Counter
	exhausted   *obs.Counter
	quarantined *obs.Counter
	bytesOK     *obs.Counter
	bytesWaste  *obs.Counter
	backoff     *obs.Gauge
}

func newRetryCounters() retryCounters {
	return retryCounters{
		reads:       new(obs.Counter),
		retries:     new(obs.Counter),
		recovered:   new(obs.Counter),
		exhausted:   new(obs.Counter),
		quarantined: new(obs.Counter),
		bytesOK:     new(obs.Counter),
		bytesWaste:  new(obs.Counter),
		backoff:     new(obs.Gauge),
	}
}

// RetryingSource wraps any PlaneSource with per-read timeouts, bounded
// retries with exponential backoff and jitter, context cancellation, and a
// per-(level, plane) failure classifier: transient failures are retried,
// permanent ones are quarantined so later reads of the same plane fail
// fast with an error wrapping ErrPermanent (which the degraded session
// path in internal/core turns into a plane drop instead of a hard
// failure). It is safe for concurrent use.
type RetryingSource struct {
	src PlaneSource
	pol RetryPolicy
	ctx context.Context
	// seed drives the per-attempt derived jitter stream; see backoff.
	seed uint64

	mu          sync.Mutex
	quarantined map[SegmentID]error
	c           retryCounters
}

// NewRetryingSource wraps src under the given policy. ctx bounds every
// read and backoff sleep; nil means context.Background().
func NewRetryingSource(ctx context.Context, src PlaneSource, pol RetryPolicy) *RetryingSource {
	if ctx == nil {
		ctx = context.Background()
	}
	seed := pol.JitterSeed
	if seed == 0 {
		seed = 1
	}
	return &RetryingSource{
		src:         src,
		pol:         pol.withDefaults(),
		ctx:         ctx,
		seed:        uint64(seed),
		quarantined: make(map[SegmentID]error),
		c:           newRetryCounters(),
	}
}

// Instrument rebinds the retry counters to shared instruments in o's
// registry under storage.retry.*, folding in anything counted so far, so a
// metrics snapshot and Stats() report the same numbers. Call it before the
// source is shared across goroutines; instrumenting mid-flight races with
// concurrent reads. A nil or metrics-less o is a no-op.
func (r *RetryingSource) Instrument(o *obs.Obs) {
	if o == nil || o.Metrics == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	bind := func(dst **obs.Counter, name string) {
		c := o.Counter("storage.retry." + name)
		c.Add((*dst).Value())
		*dst = c
	}
	bind(&r.c.reads, "reads")
	bind(&r.c.retries, "retries")
	bind(&r.c.recovered, "recovered")
	bind(&r.c.exhausted, "exhausted")
	bind(&r.c.quarantined, "quarantined")
	bind(&r.c.bytesOK, "bytes_transferred")
	bind(&r.c.bytesWaste, "bytes_wasted")
	g := o.Gauge("storage.retry.backoff_seconds")
	g.Add(r.c.backoff.Value())
	r.c.backoff = g
}

// Segment implements PlaneSource (and core.SegmentSource) with the retry
// protocol, bounded only by the source context given at construction.
func (r *RetryingSource) Segment(level, plane int) ([]byte, error) {
	return r.SegmentCtx(context.Background(), level, plane)
}

// SegmentCtx implements the retry protocol bounded by ctx in addition to
// the source context: both cancel in-flight reads and interrupt backoff
// sleeps, so a caller abandoning a request (deadline expiry, client
// disconnect) stops burning attempts against the tier immediately. A
// non-cancellable ctx is exactly Segment.
//
// When ctx carries a request span, the whole read (attempts, backoff and
// all) records as one "storage.read" child span with level/plane/bytes
// attributes and a failure status on error.
func (r *RetryingSource) SegmentCtx(ctx context.Context, level, plane int) ([]byte, error) {
	sp := obs.SpanFromContext(ctx).Child("storage.read")
	if sp == nil {
		return r.segmentCtx(ctx, level, plane)
	}
	sp.SetAttr("level", level)
	sp.SetAttr("plane", plane)
	payload, err := r.segmentCtx(ctx, level, plane)
	sp.SetAttr("bytes", len(payload))
	sp.Fail(err)
	sp.End()
	return payload, err
}

// segmentCtx is the span-free retry protocol behind SegmentCtx.
func (r *RetryingSource) segmentCtx(ctx context.Context, level, plane int) ([]byte, error) {
	id := SegmentID{Level: level, Plane: plane}
	r.c.reads.Add(1)
	r.mu.Lock()
	if qerr, ok := r.quarantined[id]; ok {
		r.mu.Unlock()
		return nil, qerr
	}
	r.mu.Unlock()

	var last error
	for attempt := 1; attempt <= r.pol.MaxAttempts; attempt++ {
		if err := firstCtxErr(r.ctx, ctx); err != nil {
			return nil, fmt.Errorf("storage: read level %d plane %d: %w", level, plane, err)
		}
		payload, err := r.readOnce(ctx, level, plane)
		if err == nil {
			r.c.bytesOK.Add(int64(len(payload)))
			if attempt > 1 {
				r.c.recovered.Add(1)
			}
			return payload, nil
		}
		last = err
		if Classify(err) == FaultPermanent {
			qerr := fmt.Errorf("storage: level %d plane %d quarantined: %w: %w", level, plane, ErrPermanent, err)
			r.mu.Lock()
			r.quarantined[id] = qerr
			r.mu.Unlock()
			r.c.quarantined.Add(1)
			return nil, qerr
		}
		if attempt < r.pol.MaxAttempts {
			r.c.retries.Add(1)
			d := r.backoff(level, plane, attempt)
			r.c.backoff.Add(d.Seconds())
			if err := r.sleep(ctx, d); err != nil {
				return nil, fmt.Errorf("storage: read level %d plane %d: %w", level, plane, err)
			}
		}
	}
	r.c.exhausted.Add(1)
	return nil, fmt.Errorf("storage: level %d plane %d failed after %d attempts: %w",
		level, plane, r.pol.MaxAttempts, last)
}

// firstCtxErr returns the first ended context's error, nil when both are
// still live.
func firstCtxErr(a, b context.Context) error {
	if err := a.Err(); err != nil {
		return err
	}
	return b.Err()
}

// sleep waits out one backoff delay. A custom policy Sleep runs as-is
// (tests rely on it being called exactly once per retry) and cancellation
// is only observed after it returns; the default real-timer path is
// interrupted by either context immediately.
func (r *RetryingSource) sleep(ctx context.Context, d time.Duration) error {
	if r.pol.Sleep != nil {
		r.pol.Sleep(d)
		return firstCtxErr(r.ctx, ctx)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-r.ctx.Done():
		return r.ctx.Err()
	}
}

// readOnce issues a single attempt, bounded by the per-read timeout, the
// source context and the per-call context. The underlying read runs in its
// own goroutine so a hung tier cannot stall the retriever; an abandoned
// read finishes (and is discarded) in the background.
func (r *RetryingSource) readOnce(ctx context.Context, level, plane int) ([]byte, error) {
	// Context-aware sources get the per-call context so trace values and
	// cancellation reach the read itself, not just the select below.
	read := r.src.Segment
	if cs, ok := r.src.(PlaneSourceCtx); ok {
		read = func(level, plane int) ([]byte, error) { return cs.SegmentCtx(ctx, level, plane) }
	}
	if r.pol.Timeout <= 0 && r.ctx.Done() == nil && ctx.Done() == nil {
		return read(level, plane)
	}
	type result struct {
		payload []byte
		err     error
	}
	ch := make(chan result, 1)
	var abandoned atomic.Bool
	go func() {
		p, err := read(level, plane)
		// An abandoned read still moved payload bytes off the tier; account
		// them as waste so fetched-byte totals reflect real transfer cost.
		// (A read finishing in the instant between the timeout firing and
		// the flag store goes uncounted — acceptable telemetry slack.)
		if abandoned.Load() {
			r.c.bytesWaste.Add(int64(len(p)))
		}
		// Non-blocking send: once the caller has taken the timeout or
		// cancellation branch nobody ever receives, and a blocking send
		// would pin this goroutine (and the payload) forever. The buffer
		// makes the default branch unreachable today, but the send must
		// not rely on that.
		select {
		case ch <- result{p, err}:
		default:
		}
	}()
	var timeout <-chan time.Time
	if r.pol.Timeout > 0 {
		t := time.NewTimer(r.pol.Timeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case res := <-ch:
		return res.payload, res.err
	case <-timeout:
		abandoned.Store(true)
		return nil, fmt.Errorf("storage: read level %d plane %d timed out after %v: %w",
			level, plane, r.pol.Timeout, ErrTransient)
	case <-ctx.Done():
		abandoned.Store(true)
		return nil, fmt.Errorf("storage: read level %d plane %d: %w", level, plane, ctx.Err())
	case <-r.ctx.Done():
		abandoned.Store(true)
		return nil, fmt.Errorf("storage: read level %d plane %d: %w", level, plane, r.ctx.Err())
	}
}

// backoff returns the exponential equal-jitter delay before retry
// `attempt` (1-based) of a read of (level, plane): base·2^(attempt-1)
// capped at MaxDelay, scaled into [½, 1) by a jitter fraction derived
// statelessly from the seed and the read's coordinates. Deriving the
// fraction per attempt instead of drawing from a shared rand.Rand keeps
// every read's backoff schedule a pure function of the seed: concurrent
// sessions retrying different planes can no longer interleave draws and
// perturb each other's schedules, so seed-determinism survives
// concurrency (and the draw needs no lock).
func (r *RetryingSource) backoff(level, plane, attempt int) time.Duration {
	d := r.pol.BaseDelay << uint(attempt-1)
	if d <= 0 || d > r.pol.MaxDelay {
		d = r.pol.MaxDelay
	}
	frac := 0.5 + 0.5*jitterFrac(r.seed, level, plane, attempt)
	return time.Duration(float64(d) * frac)
}

// jitterFrac hashes (seed, level, plane, attempt) to a uniform fraction in
// [0, 1) using splitmix64 finalizer rounds — cheap, stateless, and stable
// across processes.
func jitterFrac(seed uint64, level, plane, attempt int) float64 {
	x := seed
	for _, v := range [...]uint64{uint64(level), uint64(plane), uint64(attempt)} {
		x += 0x9e3779b97f4a7c15 + v
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		x ^= x >> 31
	}
	return float64(x>>11) / (1 << 53)
}

// Stats returns a snapshot of the retry counters.
func (r *RetryingSource) Stats() RetryStats {
	return RetryStats{
		Reads:            r.c.reads.Value(),
		Retries:          r.c.retries.Value(),
		Recovered:        r.c.recovered.Value(),
		Exhausted:        r.c.exhausted.Value(),
		Quarantined:      r.c.quarantined.Value(),
		BytesTransferred: r.c.bytesOK.Value(),
		BytesWasted:      r.c.bytesWaste.Value(),
		BackoffSeconds:   r.c.backoff.Value(),
	}
}

// Quarantined returns the segments marked permanently unavailable so far,
// in no particular order.
func (r *RetryingSource) Quarantined() []SegmentID {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SegmentID, 0, len(r.quarantined))
	for id := range r.quarantined {
		out = append(out, id)
	}
	return out
}
