package storage

import (
	"testing"
	"time"

	"pmgard/internal/obs"
)

// flipSource fails each (level, plane) once with a transient error, then
// serves a fixed payload.
type flipSource struct {
	seen    map[SegmentID]bool
	payload []byte
}

func (f *flipSource) Segment(level, plane int) ([]byte, error) {
	id := SegmentID{Level: level, Plane: plane}
	if !f.seen[id] {
		f.seen[id] = true
		return nil, ErrTransient
	}
	return f.payload, nil
}

func TestRetryingSourceInstrumentMirrorsStats(t *testing.T) {
	src := &flipSource{seen: make(map[SegmentID]bool), payload: []byte("abcdefgh")}
	pol := DefaultRetryPolicy()
	pol.Sleep = func(time.Duration) {}
	r := NewRetryingSource(nil, src, pol)

	// Count one read before instrumenting to exercise the value transfer.
	if _, err := r.Segment(0, 0); err != nil {
		t.Fatal(err)
	}
	o := obs.New()
	r.Instrument(o)
	if _, err := r.Segment(0, 1); err != nil {
		t.Fatal(err)
	}

	st := r.Stats()
	if st.Reads != 2 || st.Retries != 2 || st.Recovered != 2 {
		t.Fatalf("stats view = %+v, want 2 reads/retries/recovered", st)
	}
	if st.BytesTransferred != 2*int64(len(src.payload)) {
		t.Fatalf("bytes transferred = %d, want %d", st.BytesTransferred, 2*len(src.payload))
	}
	snap := o.Metrics.Snapshot()
	if got := snap.Counters["storage.retry.reads"]; got != st.Reads {
		t.Fatalf("registry reads = %d, stats view = %d", got, st.Reads)
	}
	if got := snap.Counters["storage.retry.retries"]; got != st.Retries {
		t.Fatalf("registry retries = %d, stats view = %d", got, st.Retries)
	}
	if got := snap.Counters["storage.retry.bytes_transferred"]; got != st.BytesTransferred {
		t.Fatalf("registry bytes = %d, stats view = %d", got, st.BytesTransferred)
	}
	if snap.Gauges["storage.retry.backoff_seconds"] != st.BackoffSeconds {
		t.Fatalf("registry backoff = %g, stats view = %g",
			snap.Gauges["storage.retry.backoff_seconds"], st.BackoffSeconds)
	}
}
