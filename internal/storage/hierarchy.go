// Package storage provides the two storage-side pieces of the progressive
// retrieval framework: a model of an HPC storage hierarchy (tiers with
// latency and bandwidth, and a placement of coefficient levels onto tiers,
// §II-A) and a file-backed segment store with ranged reads of individual
// (level, bit-plane) segments.
package storage

import "fmt"

// Tier describes one tier of the storage hierarchy.
type Tier struct {
	// Name identifies the tier ("nvme", "hdd", ...).
	Name string
	// Latency is the fixed per-request cost in seconds.
	Latency float64
	// Bandwidth is the sustained read bandwidth in bytes per second.
	Bandwidth float64
}

// Hierarchy is a set of tiers and a placement of coefficient levels onto
// them. Per the paper, the coarsest level (level 0) sits on the fastest
// tier, since it is read by every retrieval, and the finest details sit on
// the slowest.
type Hierarchy struct {
	Tiers []Tier
	// Placement[l] is the index into Tiers holding level l's segments.
	Placement []int
}

// DefaultTiers returns a four-tier model loosely calibrated to a
// leadership-class machine: node-local NVMe, burst buffer SSD, parallel
// file system disk, and archival tape.
func DefaultTiers() []Tier {
	return []Tier{
		{Name: "nvme", Latency: 20e-6, Bandwidth: 5e9},
		{Name: "ssd", Latency: 100e-6, Bandwidth: 1.5e9},
		{Name: "hdd", Latency: 8e-3, Bandwidth: 250e6},
		{Name: "tape", Latency: 30, Bandwidth: 100e6},
	}
}

// DefaultHierarchy places `levels` coefficient levels across the default
// tiers: level 0 on the fastest tier, the finest level on the slowest, and
// intermediate levels spread proportionally.
func DefaultHierarchy(levels int) (Hierarchy, error) {
	if levels < 1 {
		return Hierarchy{}, fmt.Errorf("storage: levels %d < 1", levels)
	}
	tiers := DefaultTiers()
	placement := make([]int, levels)
	if levels == 1 {
		return Hierarchy{Tiers: tiers, Placement: placement}, nil
	}
	for l := 0; l < levels; l++ {
		placement[l] = l * (len(tiers) - 1) / (levels - 1)
	}
	return Hierarchy{Tiers: tiers, Placement: placement}, nil
}

// Validate reports whether the hierarchy is internally consistent.
func (h Hierarchy) Validate() error {
	if len(h.Tiers) == 0 {
		return fmt.Errorf("storage: hierarchy has no tiers")
	}
	for i, t := range h.Tiers {
		if t.Bandwidth <= 0 {
			return fmt.Errorf("storage: tier %d (%s) has non-positive bandwidth", i, t.Name)
		}
		if t.Latency < 0 {
			return fmt.Errorf("storage: tier %d (%s) has negative latency", i, t.Name)
		}
	}
	for l, p := range h.Placement {
		if p < 0 || p >= len(h.Tiers) {
			return fmt.Errorf("storage: level %d placed on tier %d, have %d tiers", l, p, len(h.Tiers))
		}
	}
	return nil
}

// ReadTime models the time to read the given number of bytes from level l's
// tier in `requests` separate requests. requests below 1 is treated as 1
// when bytes > 0, and 0 requests with 0 bytes costs nothing.
func (h Hierarchy) ReadTime(level int, bytes int64, requests int) (float64, error) {
	if level < 0 || level >= len(h.Placement) {
		return 0, fmt.Errorf("storage: level %d outside placement of %d levels", level, len(h.Placement))
	}
	if bytes == 0 && requests <= 0 {
		return 0, nil
	}
	if requests < 1 {
		requests = 1
	}
	t := h.Tiers[h.Placement[level]]
	return float64(requests)*t.Latency + float64(bytes)/t.Bandwidth, nil
}

// PlanTime models the total time of a retrieval plan: bytesPerLevel[l] bytes
// read from level l in requestsPerLevel[l] requests. Levels on the same tier
// are read sequentially (single I/O path), so times add.
func (h Hierarchy) PlanTime(bytesPerLevel []int64, requestsPerLevel []int) (float64, error) {
	if len(bytesPerLevel) != len(requestsPerLevel) {
		return 0, fmt.Errorf("storage: plan arrays disagree: %d levels vs %d", len(bytesPerLevel), len(requestsPerLevel))
	}
	total := 0.0
	for l := range bytesPerLevel {
		t, err := h.ReadTime(l, bytesPerLevel[l], requestsPerLevel[l])
		if err != nil {
			return 0, err
		}
		total += t
	}
	return total, nil
}
