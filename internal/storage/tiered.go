package storage

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"pmgard/internal/obs"
)

// TieredWriter materializes the paper's storage-hierarchy placement: each
// coefficient level's segments go to the directory of its assigned tier
// (e.g. nvme/, ssd/, hdd/, tape/), one file per level holding its plane
// segments contiguously. A manifest at the root records the placement and
// the shared metadata blob.
type TieredWriter struct {
	root      string
	hierarchy Hierarchy
	meta      []byte
	// perLevel[l] collects (plane, payload) pairs until Close.
	perLevel map[int][]tieredSeg
	closed   bool
}

type tieredSeg struct {
	plane   int
	payload []byte
}

// tieredManifest is the JSON manifest of a tiered store.
//
// Version history:
//
//	1 — tier names, placement, meta, per-level plane sizes.
//	2 — adds Checksums, a per-plane CRC32 (IEEE) of each payload, so
//	    ranged reads detect on-disk corruption before the decoder sees
//	    it, mirroring the flat segment store's table CRCs.
//
// Readers accept both; writers emit version 2.
type tieredManifest struct {
	Version   int      `json:"version"`
	TierNames []string `json:"tier_names"`
	Placement []int    `json:"placement"`
	Meta      []byte   `json:"meta"`
	// Levels[l] lists the plane sizes of level l, in plane order.
	Levels [][]int64 `json:"levels"`
	// Checksums[l][k] is the CRC32 (IEEE) of plane k of level l. Absent
	// in version-1 manifests, in which case reads are unverified.
	Checksums [][]uint32 `json:"checksums,omitempty"`
}

// tieredManifestVersion is the manifest version written by TieredWriter.
const tieredManifestVersion = 2

// CreateTiered starts a tiered store rooted at dir with the given hierarchy
// and opaque metadata.
func CreateTiered(dir string, h Hierarchy, meta []byte) (*TieredWriter, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	if len(h.Placement) == 0 {
		return nil, fmt.Errorf("storage: tiered store needs a level placement")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create %s: %w", dir, err)
	}
	return &TieredWriter{
		root:      dir,
		hierarchy: h,
		meta:      meta,
		perLevel:  make(map[int][]tieredSeg),
	}, nil
}

// WriteSegment buffers one (level, plane) payload. Planes of a level must
// be written in increasing plane order.
func (w *TieredWriter) WriteSegment(id SegmentID, payload []byte) error {
	if w.closed {
		return fmt.Errorf("storage: write to closed tiered writer")
	}
	if id.Level < 0 || id.Level >= len(w.hierarchy.Placement) {
		return fmt.Errorf("storage: level %d outside placement of %d levels", id.Level, len(w.hierarchy.Placement))
	}
	segs := w.perLevel[id.Level]
	if len(segs) > 0 && segs[len(segs)-1].plane >= id.Plane {
		return fmt.Errorf("storage: level %d planes must be written in order (got %d after %d)",
			id.Level, id.Plane, segs[len(segs)-1].plane)
	}
	w.perLevel[id.Level] = append(segs, tieredSeg{plane: id.Plane, payload: payload})
	return nil
}

// Close writes the per-tier level files and the manifest. The write is
// atomic at the store level: every file lands under a temporary name
// first, and the manifest — which OpenTiered requires — is renamed into
// place last, after all level files. A Close that fails partway leaves no
// manifest.json (or the previous one, if overwriting), so OpenTiered
// never half-accepts the store; stray *.tmp files are cleaned up on the
// error path.
func (w *TieredWriter) Close() (err error) {
	if w.closed {
		return nil
	}
	w.closed = true
	man := tieredManifest{
		Version:   tieredManifestVersion,
		Placement: w.hierarchy.Placement,
		Meta:      w.meta,
		Levels:    make([][]int64, len(w.hierarchy.Placement)),
		Checksums: make([][]uint32, len(w.hierarchy.Placement)),
	}
	for _, t := range w.hierarchy.Tiers {
		man.TierNames = append(man.TierNames, t.Name)
	}
	// tmp → final renames, performed only once every file is written.
	var tmps, finals []string
	defer func() {
		if err != nil {
			for _, t := range tmps {
				os.Remove(t)
			}
		}
	}()
	for l := 0; l < len(w.hierarchy.Placement); l++ {
		tierName := w.hierarchy.Tiers[w.hierarchy.Placement[l]].Name
		dir := filepath.Join(w.root, tierName)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("storage: create tier dir: %w", err)
		}
		final := filepath.Join(dir, fmt.Sprintf("level_%d.seg", l))
		tmp := final + ".tmp"
		f, err := os.Create(tmp)
		if err != nil {
			return fmt.Errorf("storage: create level file: %w", err)
		}
		tmps, finals = append(tmps, tmp), append(finals, final)
		segs := w.perLevel[l]
		var sizes []int64
		var crcs []uint32
		for _, s := range segs {
			// Pad skipped plane ids with zero-length entries so plane k is
			// always entry k.
			for len(sizes) < s.plane {
				sizes = append(sizes, 0)
				crcs = append(crcs, 0)
			}
			if _, err := f.Write(s.payload); err != nil {
				f.Close()
				return fmt.Errorf("storage: write level %d: %w", l, err)
			}
			sizes = append(sizes, int64(len(s.payload)))
			crcs = append(crcs, crc32.ChecksumIEEE(s.payload))
		}
		if err := f.Close(); err != nil {
			return err
		}
		man.Levels[l] = sizes
		man.Checksums[l] = crcs
	}
	blob, err := json.Marshal(man)
	if err != nil {
		return fmt.Errorf("storage: marshal manifest: %w", err)
	}
	manFinal := filepath.Join(w.root, "manifest.json")
	manTmp := manFinal + ".tmp"
	if err := os.WriteFile(manTmp, blob, 0o644); err != nil {
		return fmt.Errorf("storage: write manifest: %w", err)
	}
	tmps, finals = append(tmps, manTmp), append(finals, manFinal)
	// Commit: level files first, manifest last.
	for i := range tmps {
		if err := os.Rename(tmps[i], finals[i]); err != nil {
			return fmt.Errorf("storage: commit %s: %w", finals[i], err)
		}
	}
	return nil
}

// TieredStore reads segments from a tiered store directory with per-tier
// I/O accounting.
type TieredStore struct {
	root string
	man  tieredManifest
	// offsets[l][k] is the byte offset of plane k within level l's file.
	offsets [][]int64
	files   map[int]*os.File

	mu        sync.Mutex
	tierBytes map[string]int64
	tierReqs  map[string]int64
	o         *obs.Obs
}

// Instrument mirrors the per-tier accounting into o's registry as
// storage.tier.<name>.bytes_read / .requests counters, folding in bytes
// already read. Call before sharing the store across goroutines; a nil or
// metrics-less o is a no-op.
func (s *TieredStore) Instrument(o *obs.Obs) {
	if o == nil || o.Metrics == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.o = o
	for tier, b := range s.tierBytes {
		o.Counter("storage.tier." + tier + ".bytes_read").Add(b)
	}
	for tier, n := range s.tierReqs {
		o.Counter("storage.tier." + tier + ".requests").Add(n)
	}
}

// OpenTiered opens a tiered store directory.
func OpenTiered(dir string) (*TieredStore, error) {
	blob, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, fmt.Errorf("storage: read manifest: %w", err)
	}
	var man tieredManifest
	if err := json.Unmarshal(blob, &man); err != nil {
		return nil, fmt.Errorf("storage: parse manifest: %w", err)
	}
	if man.Version != 1 && man.Version != tieredManifestVersion {
		return nil, fmt.Errorf("storage: unsupported tiered version %d", man.Version)
	}
	if len(man.Placement) != len(man.Levels) {
		return nil, fmt.Errorf("storage: manifest placement/levels mismatch")
	}
	if man.Version >= 2 {
		if len(man.Checksums) != len(man.Levels) {
			return nil, fmt.Errorf("storage: manifest has %d checksum levels for %d levels",
				len(man.Checksums), len(man.Levels))
		}
		for l := range man.Levels {
			if len(man.Checksums[l]) != len(man.Levels[l]) {
				return nil, fmt.Errorf("storage: manifest level %d has %d checksums for %d planes",
					l, len(man.Checksums[l]), len(man.Levels[l]))
			}
		}
	} else if man.Checksums != nil {
		return nil, fmt.Errorf("storage: version-1 manifest carries checksums")
	}
	st := &TieredStore{
		root:      dir,
		man:       man,
		files:     make(map[int]*os.File),
		tierBytes: make(map[string]int64),
		tierReqs:  make(map[string]int64),
	}
	st.offsets = make([][]int64, len(man.Levels))
	for l, sizes := range man.Levels {
		offs := make([]int64, len(sizes))
		var off int64
		for k, sz := range sizes {
			if sz < 0 || off > (1<<50)-sz {
				return nil, fmt.Errorf("storage: manifest level %d has implausible sizes", l)
			}
			offs[k] = off
			off += sz
		}
		st.offsets[l] = offs
	}
	return st, nil
}

// Meta returns the opaque metadata blob.
func (s *TieredStore) Meta() []byte { return s.man.Meta }

// TierOf returns the tier name holding level l.
func (s *TieredStore) TierOf(level int) (string, error) {
	if level < 0 || level >= len(s.man.Placement) {
		return "", fmt.Errorf("storage: level %d out of range", level)
	}
	ix := s.man.Placement[level]
	if ix < 0 || ix >= len(s.man.TierNames) {
		return "", fmt.Errorf("storage: corrupt placement for level %d", level)
	}
	return s.man.TierNames[ix], nil
}

// ReadSegment reads one plane segment with a ranged read from the level's
// tier file.
func (s *TieredStore) ReadSegment(id SegmentID) ([]byte, error) {
	if id.Level < 0 || id.Level >= len(s.man.Levels) {
		return nil, fmt.Errorf("storage: level %d out of range", id.Level)
	}
	sizes := s.man.Levels[id.Level]
	if id.Plane < 0 || id.Plane >= len(sizes) {
		return nil, fmt.Errorf("storage: plane %d out of range on level %d", id.Plane, id.Level)
	}
	tier, err := s.TierOf(id.Level)
	if err != nil {
		return nil, err
	}
	f, err := s.levelFile(id.Level, tier)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("storage: stat level %d tier file: %w", id.Level, err)
	}
	if end := s.offsets[id.Level][id.Plane] + sizes[id.Plane]; end > fi.Size() {
		return nil, fmt.Errorf("storage: level %d plane %d extends past its tier file (truncated): %w",
			id.Level, id.Plane, ErrCorrupt)
	}
	buf := make([]byte, sizes[id.Plane])
	if len(buf) > 0 {
		// A short read is truncation, not a transient hiccup: the size check
		// above can pass and the file still shrink before ReadAt (or the
		// filesystem lie about Stat), and tolerating io.EOF with a partial n
		// would hand a zero-padded buffer to version-1 (checksum-less)
		// manifests, which accept it silently. Re-reading a truncated file
		// cannot recover the bytes, so the error classifies as permanent.
		n, err := f.ReadAt(buf, s.offsets[id.Level][id.Plane])
		if err != nil && err != io.EOF {
			return nil, fmt.Errorf("storage: read level %d plane %d: %w", id.Level, id.Plane, err)
		}
		if n != len(buf) {
			return nil, fmt.Errorf("storage: level %d plane %d short read (%d of %d bytes, truncated tier file): %w",
				id.Level, id.Plane, n, len(buf), ErrCorrupt)
		}
	}
	if s.man.Checksums != nil {
		if got, want := crc32.ChecksumIEEE(buf), s.man.Checksums[id.Level][id.Plane]; got != want {
			return nil, fmt.Errorf("storage: level %d plane %d checksum mismatch (got %08x, want %08x): %w",
				id.Level, id.Plane, got, want, ErrCorrupt)
		}
	}
	s.mu.Lock()
	s.tierBytes[tier] += int64(len(buf))
	s.tierReqs[tier]++
	o := s.o
	s.mu.Unlock()
	if o != nil {
		o.Counter("storage.tier." + tier + ".bytes_read").Add(int64(len(buf)))
		o.Counter("storage.tier." + tier + ".requests").Add(1)
	}
	return buf, nil
}

func (s *TieredStore) levelFile(level int, tier string) (*os.File, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.files[level]; ok {
		return f, nil
	}
	path := filepath.Join(s.root, tier, fmt.Sprintf("level_%d.seg", level))
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	s.files[level] = f
	return f, nil
}

// TierBytes returns the payload bytes read from each tier so far.
func (s *TieredStore) TierBytes() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.tierBytes))
	for k, v := range s.tierBytes {
		out[k] = v
	}
	return out
}

// TierRequests returns the ranged-read counts per tier so far.
func (s *TieredStore) TierRequests() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.tierReqs))
	for k, v := range s.tierReqs {
		out[k] = v
	}
	return out
}

// Close releases the tier files.
func (s *TieredStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, f := range s.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.files = make(map[int]*os.File)
	return first
}
