package storage

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// TieredWriter materializes the paper's storage-hierarchy placement: each
// coefficient level's segments go to the directory of its assigned tier
// (e.g. nvme/, ssd/, hdd/, tape/), one file per level holding its plane
// segments contiguously. A manifest at the root records the placement and
// the shared metadata blob.
type TieredWriter struct {
	root      string
	hierarchy Hierarchy
	meta      []byte
	// perLevel[l] collects (plane, payload) pairs until Close.
	perLevel map[int][]tieredSeg
	closed   bool
}

type tieredSeg struct {
	plane   int
	payload []byte
}

// tieredManifest is the JSON manifest of a tiered store.
type tieredManifest struct {
	Version   int      `json:"version"`
	TierNames []string `json:"tier_names"`
	Placement []int    `json:"placement"`
	Meta      []byte   `json:"meta"`
	// Levels[l] lists the plane sizes of level l, in plane order.
	Levels [][]int64 `json:"levels"`
}

// CreateTiered starts a tiered store rooted at dir with the given hierarchy
// and opaque metadata.
func CreateTiered(dir string, h Hierarchy, meta []byte) (*TieredWriter, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	if len(h.Placement) == 0 {
		return nil, fmt.Errorf("storage: tiered store needs a level placement")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create %s: %w", dir, err)
	}
	return &TieredWriter{
		root:      dir,
		hierarchy: h,
		meta:      meta,
		perLevel:  make(map[int][]tieredSeg),
	}, nil
}

// WriteSegment buffers one (level, plane) payload. Planes of a level must
// be written in increasing plane order.
func (w *TieredWriter) WriteSegment(id SegmentID, payload []byte) error {
	if w.closed {
		return fmt.Errorf("storage: write to closed tiered writer")
	}
	if id.Level < 0 || id.Level >= len(w.hierarchy.Placement) {
		return fmt.Errorf("storage: level %d outside placement of %d levels", id.Level, len(w.hierarchy.Placement))
	}
	segs := w.perLevel[id.Level]
	if len(segs) > 0 && segs[len(segs)-1].plane >= id.Plane {
		return fmt.Errorf("storage: level %d planes must be written in order (got %d after %d)",
			id.Level, id.Plane, segs[len(segs)-1].plane)
	}
	w.perLevel[id.Level] = append(segs, tieredSeg{plane: id.Plane, payload: payload})
	return nil
}

// Close writes the per-tier level files and the manifest.
func (w *TieredWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	man := tieredManifest{
		Version:   1,
		Placement: w.hierarchy.Placement,
		Meta:      w.meta,
		Levels:    make([][]int64, len(w.hierarchy.Placement)),
	}
	for _, t := range w.hierarchy.Tiers {
		man.TierNames = append(man.TierNames, t.Name)
	}
	for l := 0; l < len(w.hierarchy.Placement); l++ {
		tierName := w.hierarchy.Tiers[w.hierarchy.Placement[l]].Name
		dir := filepath.Join(w.root, tierName)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("storage: create tier dir: %w", err)
		}
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("level_%d.seg", l)))
		if err != nil {
			return fmt.Errorf("storage: create level file: %w", err)
		}
		segs := w.perLevel[l]
		var sizes []int64
		for _, s := range segs {
			// Pad skipped plane ids with zero-length entries so plane k is
			// always entry k.
			for len(sizes) < s.plane {
				sizes = append(sizes, 0)
			}
			if _, err := f.Write(s.payload); err != nil {
				f.Close()
				return fmt.Errorf("storage: write level %d: %w", l, err)
			}
			sizes = append(sizes, int64(len(s.payload)))
		}
		if err := f.Close(); err != nil {
			return err
		}
		man.Levels[l] = sizes
	}
	blob, err := json.Marshal(man)
	if err != nil {
		return fmt.Errorf("storage: marshal manifest: %w", err)
	}
	if err := os.WriteFile(filepath.Join(w.root, "manifest.json"), blob, 0o644); err != nil {
		return fmt.Errorf("storage: write manifest: %w", err)
	}
	return nil
}

// TieredStore reads segments from a tiered store directory with per-tier
// I/O accounting.
type TieredStore struct {
	root string
	man  tieredManifest
	// offsets[l][k] is the byte offset of plane k within level l's file.
	offsets [][]int64
	files   map[int]*os.File

	mu        sync.Mutex
	tierBytes map[string]int64
	tierReqs  map[string]int64
}

// OpenTiered opens a tiered store directory.
func OpenTiered(dir string) (*TieredStore, error) {
	blob, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, fmt.Errorf("storage: read manifest: %w", err)
	}
	var man tieredManifest
	if err := json.Unmarshal(blob, &man); err != nil {
		return nil, fmt.Errorf("storage: parse manifest: %w", err)
	}
	if man.Version != 1 {
		return nil, fmt.Errorf("storage: unsupported tiered version %d", man.Version)
	}
	if len(man.Placement) != len(man.Levels) {
		return nil, fmt.Errorf("storage: manifest placement/levels mismatch")
	}
	st := &TieredStore{
		root:      dir,
		man:       man,
		files:     make(map[int]*os.File),
		tierBytes: make(map[string]int64),
		tierReqs:  make(map[string]int64),
	}
	st.offsets = make([][]int64, len(man.Levels))
	for l, sizes := range man.Levels {
		offs := make([]int64, len(sizes))
		var off int64
		for k, sz := range sizes {
			if sz < 0 || off > (1<<50)-sz {
				return nil, fmt.Errorf("storage: manifest level %d has implausible sizes", l)
			}
			offs[k] = off
			off += sz
		}
		st.offsets[l] = offs
	}
	return st, nil
}

// Meta returns the opaque metadata blob.
func (s *TieredStore) Meta() []byte { return s.man.Meta }

// TierOf returns the tier name holding level l.
func (s *TieredStore) TierOf(level int) (string, error) {
	if level < 0 || level >= len(s.man.Placement) {
		return "", fmt.Errorf("storage: level %d out of range", level)
	}
	ix := s.man.Placement[level]
	if ix < 0 || ix >= len(s.man.TierNames) {
		return "", fmt.Errorf("storage: corrupt placement for level %d", level)
	}
	return s.man.TierNames[ix], nil
}

// ReadSegment reads one plane segment with a ranged read from the level's
// tier file.
func (s *TieredStore) ReadSegment(id SegmentID) ([]byte, error) {
	if id.Level < 0 || id.Level >= len(s.man.Levels) {
		return nil, fmt.Errorf("storage: level %d out of range", id.Level)
	}
	sizes := s.man.Levels[id.Level]
	if id.Plane < 0 || id.Plane >= len(sizes) {
		return nil, fmt.Errorf("storage: plane %d out of range on level %d", id.Plane, id.Level)
	}
	tier, err := s.TierOf(id.Level)
	if err != nil {
		return nil, err
	}
	f, err := s.levelFile(id.Level, tier)
	if err != nil {
		return nil, err
	}
	if fi, err := f.Stat(); err == nil {
		if end := s.offsets[id.Level][id.Plane] + sizes[id.Plane]; end > fi.Size() {
			return nil, fmt.Errorf("storage: level %d plane %d extends past its tier file", id.Level, id.Plane)
		}
	}
	buf := make([]byte, sizes[id.Plane])
	if len(buf) > 0 {
		if _, err := f.ReadAt(buf, s.offsets[id.Level][id.Plane]); err != nil && err != io.EOF {
			return nil, fmt.Errorf("storage: read level %d plane %d: %w", id.Level, id.Plane, err)
		}
	}
	s.mu.Lock()
	s.tierBytes[tier] += int64(len(buf))
	s.tierReqs[tier]++
	s.mu.Unlock()
	return buf, nil
}

func (s *TieredStore) levelFile(level int, tier string) (*os.File, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.files[level]; ok {
		return f, nil
	}
	path := filepath.Join(s.root, tier, fmt.Sprintf("level_%d.seg", level))
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	s.files[level] = f
	return f, nil
}

// TierBytes returns the payload bytes read from each tier so far.
func (s *TieredStore) TierBytes() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.tierBytes))
	for k, v := range s.tierBytes {
		out[k] = v
	}
	return out
}

// TierRequests returns the ranged-read counts per tier so far.
func (s *TieredStore) TierRequests() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.tierReqs))
	for k, v := range s.tierReqs {
		out[k] = v
	}
	return out
}

// Close releases the tier files.
func (s *TieredStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, f := range s.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.files = make(map[int]*os.File)
	return first
}
