package storage

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"pmgard/internal/obs"
)

// TieredWriter materializes the paper's storage-hierarchy placement: each
// coefficient level's segments go to the directory of its assigned tier
// (e.g. nvme/, ssd/, hdd/, tape/), one file per level holding its plane
// segments contiguously. A manifest at the root records the placement and
// the shared metadata blob.
//
// The writer streams: each payload is appended to its level's temporary
// file the moment WriteSegment returns, so the writer's memory footprint
// is per-plane bookkeeping (sizes and CRCs), never payload bytes. Open
// file handles are bounded by the level count. Close writes the manifest
// and renames everything into place atomically, exactly as before.
type TieredWriter struct {
	root      string
	hierarchy Hierarchy
	meta      []byte
	levels    map[int]*tieredLevel
	closed    bool
}

// tieredLevel is the streaming state of one level's tier file.
type tieredLevel struct {
	f     *os.File
	tmp   string
	final string
	sizes []int64
	crcs  []uint32
}

// tieredManifest is the JSON manifest of a tiered store.
//
// Version history:
//
//	1 — tier names, placement, meta, per-level plane sizes.
//	2 — adds Checksums, a per-plane CRC32 (IEEE) of each payload, so
//	    ranged reads detect on-disk corruption before the decoder sees
//	    it, mirroring the flat segment store's table CRCs.
//
// Readers accept both; writers emit version 2.
type tieredManifest struct {
	Version   int      `json:"version"`
	TierNames []string `json:"tier_names"`
	Placement []int    `json:"placement"`
	Meta      []byte   `json:"meta"`
	// Levels[l] lists the plane sizes of level l, in plane order.
	Levels [][]int64 `json:"levels"`
	// Checksums[l][k] is the CRC32 (IEEE) of plane k of level l. Absent
	// in version-1 manifests, in which case reads are unverified.
	Checksums [][]uint32 `json:"checksums,omitempty"`
}

// tieredManifestVersion is the manifest version written by TieredWriter.
const tieredManifestVersion = 2

// CreateTiered starts a tiered store rooted at dir with the given hierarchy
// and opaque metadata.
func CreateTiered(dir string, h Hierarchy, meta []byte) (*TieredWriter, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	if len(h.Placement) == 0 {
		return nil, fmt.Errorf("storage: tiered store needs a level placement")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create %s: %w", dir, err)
	}
	return &TieredWriter{
		root:      dir,
		hierarchy: h,
		meta:      meta,
		levels:    make(map[int]*tieredLevel),
	}, nil
}

// SetMeta replaces the opaque metadata blob before Close. Streaming callers
// use this: the compression header is only complete once every segment has
// been produced, long after the writer was created.
func (w *TieredWriter) SetMeta(meta []byte) error {
	if w.closed {
		return fmt.Errorf("storage: set meta on closed tiered writer")
	}
	w.meta = meta
	return nil
}

// level returns (opening if needed) the streaming state for level l.
func (w *TieredWriter) level(l int) (*tieredLevel, error) {
	if lv, ok := w.levels[l]; ok {
		return lv, nil
	}
	tierName := w.hierarchy.Tiers[w.hierarchy.Placement[l]].Name
	dir := filepath.Join(w.root, tierName)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create tier dir: %w", err)
	}
	final := filepath.Join(dir, fmt.Sprintf("level_%d.seg", l))
	tmp := final + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, fmt.Errorf("storage: create level file: %w", err)
	}
	lv := &tieredLevel{f: f, tmp: tmp, final: final}
	w.levels[l] = lv
	return lv, nil
}

// WriteSegment appends one (level, plane) payload to its level's tier file.
// Planes of a level must be written in increasing plane order. The payload
// is on disk when WriteSegment returns; the caller may recycle the buffer.
func (w *TieredWriter) WriteSegment(id SegmentID, payload []byte) error {
	if w.closed {
		return fmt.Errorf("storage: write to closed tiered writer")
	}
	if id.Level < 0 || id.Level >= len(w.hierarchy.Placement) {
		return fmt.Errorf("storage: level %d outside placement of %d levels", id.Level, len(w.hierarchy.Placement))
	}
	lv, err := w.level(id.Level)
	if err != nil {
		return err
	}
	if last := len(lv.sizes) - 1; last >= 0 && last >= id.Plane {
		return fmt.Errorf("storage: level %d planes must be written in order (got %d after %d)",
			id.Level, id.Plane, last)
	}
	// Pad skipped plane ids with zero-length entries so plane k is always
	// entry k.
	for len(lv.sizes) < id.Plane {
		lv.sizes = append(lv.sizes, 0)
		lv.crcs = append(lv.crcs, 0)
	}
	if _, err := lv.f.Write(payload); err != nil {
		return fmt.Errorf("storage: write level %d: %w", id.Level, err)
	}
	lv.sizes = append(lv.sizes, int64(len(payload)))
	lv.crcs = append(lv.crcs, crc32.ChecksumIEEE(payload))
	return nil
}

// Abort discards the write: open level files are closed and their
// temporary files removed, and no manifest is written, so OpenTiered never
// sees the partial store. A no-op after Close or a prior Abort.
func (w *TieredWriter) Abort() {
	if w.closed {
		return
	}
	w.closed = true
	for _, lv := range w.levels {
		lv.f.Close()
		os.Remove(lv.tmp)
	}
}

// Close writes the per-tier level files and the manifest. The write is
// atomic at the store level: every file lands under a temporary name
// first, and the manifest — which OpenTiered requires — is renamed into
// place last, after all level files. A Close that fails partway leaves no
// manifest.json (or the previous one, if overwriting), so OpenTiered
// never half-accepts the store; stray *.tmp files are cleaned up on the
// error path.
func (w *TieredWriter) Close() (err error) {
	if w.closed {
		return nil
	}
	w.closed = true
	man := tieredManifest{
		Version:   tieredManifestVersion,
		Placement: w.hierarchy.Placement,
		Meta:      w.meta,
		Levels:    make([][]int64, len(w.hierarchy.Placement)),
		Checksums: make([][]uint32, len(w.hierarchy.Placement)),
	}
	for _, t := range w.hierarchy.Tiers {
		man.TierNames = append(man.TierNames, t.Name)
	}
	// tmp → final renames, performed only once every file is written.
	var tmps, finals []string
	defer func() {
		if err != nil {
			for _, t := range tmps {
				os.Remove(t)
			}
			// Level files opened for streaming but not yet in tmps (their
			// Close failed, or a later level's setup did) are cleaned too.
			for _, lv := range w.levels {
				lv.f.Close()
				os.Remove(lv.tmp)
			}
		}
	}()
	for l := 0; l < len(w.hierarchy.Placement); l++ {
		// Levels that saw no segments still get (empty) tier files, exactly
		// as the buffering writer produced.
		lv, lerr := w.level(l)
		if lerr != nil {
			return lerr
		}
		if cerr := lv.f.Close(); cerr != nil {
			return cerr
		}
		tmps, finals = append(tmps, lv.tmp), append(finals, lv.final)
		man.Levels[l] = lv.sizes
		man.Checksums[l] = lv.crcs
	}
	blob, err := json.Marshal(man)
	if err != nil {
		return fmt.Errorf("storage: marshal manifest: %w", err)
	}
	manFinal := filepath.Join(w.root, "manifest.json")
	manTmp := manFinal + ".tmp"
	if err := os.WriteFile(manTmp, blob, 0o644); err != nil {
		return fmt.Errorf("storage: write manifest: %w", err)
	}
	tmps, finals = append(tmps, manTmp), append(finals, manFinal)
	// Commit: level files first, manifest last.
	for i := range tmps {
		if err := os.Rename(tmps[i], finals[i]); err != nil {
			return fmt.Errorf("storage: commit %s: %w", finals[i], err)
		}
	}
	return nil
}

// TieredStore reads segments from a tiered store directory with per-tier
// I/O accounting.
//
// Open level files are cached in a refcounted handle map. Historically the
// map only grew — every level ever touched held its fd until Close — which
// streaming retrieval over many stores turns into fd exhaustion. The cache
// is now bounded: SetMaxOpenFiles caps resident handles with LRU eviction,
// and ReleaseLevel drops a level's handle eagerly once a caller knows it is
// done with the level. Handles are refcounted so eviction never closes a
// file mid-ReadAt.
type TieredStore struct {
	root string
	man  tieredManifest
	// offsets[l][k] is the byte offset of plane k within level l's file.
	offsets [][]int64

	mu      sync.Mutex
	files   map[int]*levelHandle
	maxOpen int   // 0 = unbounded
	tick    int64 // LRU clock

	tierBytes map[string]int64
	tierReqs  map[string]int64
	o         *obs.Obs
}

// levelHandle is one level file plus the bookkeeping that lets eviction
// coexist with in-flight ranged reads.
type levelHandle struct {
	f       *os.File
	refs    int   // in-flight reads holding the handle
	evicted bool  // close when refs drops to 0; no longer in files map
	lastUse int64 // LRU tick of the most recent acquire
}

// Instrument mirrors the per-tier accounting into o's registry as
// storage.tier.<name>.bytes_read / .requests counters, folding in bytes
// already read. Call before sharing the store across goroutines; a nil or
// metrics-less o is a no-op.
func (s *TieredStore) Instrument(o *obs.Obs) {
	if o == nil || o.Metrics == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.o = o
	for tier, b := range s.tierBytes {
		o.Counter("storage.tier." + tier + ".bytes_read").Add(b)
	}
	for tier, n := range s.tierReqs {
		o.Counter("storage.tier." + tier + ".requests").Add(n)
	}
}

// OpenTiered opens a tiered store directory.
func OpenTiered(dir string) (*TieredStore, error) {
	blob, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, fmt.Errorf("storage: read manifest: %w", err)
	}
	var man tieredManifest
	if err := json.Unmarshal(blob, &man); err != nil {
		return nil, fmt.Errorf("storage: parse manifest: %w", err)
	}
	if man.Version != 1 && man.Version != tieredManifestVersion {
		return nil, fmt.Errorf("storage: unsupported tiered version %d", man.Version)
	}
	if len(man.Placement) != len(man.Levels) {
		return nil, fmt.Errorf("storage: manifest placement/levels mismatch")
	}
	if man.Version >= 2 {
		if len(man.Checksums) != len(man.Levels) {
			return nil, fmt.Errorf("storage: manifest has %d checksum levels for %d levels",
				len(man.Checksums), len(man.Levels))
		}
		for l := range man.Levels {
			if len(man.Checksums[l]) != len(man.Levels[l]) {
				return nil, fmt.Errorf("storage: manifest level %d has %d checksums for %d planes",
					l, len(man.Checksums[l]), len(man.Levels[l]))
			}
		}
	} else if man.Checksums != nil {
		return nil, fmt.Errorf("storage: version-1 manifest carries checksums")
	}
	st := &TieredStore{
		root:      dir,
		man:       man,
		files:     make(map[int]*levelHandle),
		tierBytes: make(map[string]int64),
		tierReqs:  make(map[string]int64),
	}
	st.offsets = make([][]int64, len(man.Levels))
	for l, sizes := range man.Levels {
		offs := make([]int64, len(sizes))
		var off int64
		for k, sz := range sizes {
			if sz < 0 || off > (1<<50)-sz {
				return nil, fmt.Errorf("storage: manifest level %d has implausible sizes", l)
			}
			offs[k] = off
			off += sz
		}
		st.offsets[l] = offs
	}
	return st, nil
}

// Meta returns the opaque metadata blob.
func (s *TieredStore) Meta() []byte { return s.man.Meta }

// TierOf returns the tier name holding level l.
func (s *TieredStore) TierOf(level int) (string, error) {
	if level < 0 || level >= len(s.man.Placement) {
		return "", fmt.Errorf("storage: level %d out of range", level)
	}
	ix := s.man.Placement[level]
	if ix < 0 || ix >= len(s.man.TierNames) {
		return "", fmt.Errorf("storage: corrupt placement for level %d", level)
	}
	return s.man.TierNames[ix], nil
}

// ReadSegment reads one plane segment with a ranged read from the level's
// tier file.
func (s *TieredStore) ReadSegment(id SegmentID) ([]byte, error) {
	if id.Level < 0 || id.Level >= len(s.man.Levels) {
		return nil, fmt.Errorf("storage: level %d out of range", id.Level)
	}
	sizes := s.man.Levels[id.Level]
	if id.Plane < 0 || id.Plane >= len(sizes) {
		return nil, fmt.Errorf("storage: plane %d out of range on level %d", id.Plane, id.Level)
	}
	tier, err := s.TierOf(id.Level)
	if err != nil {
		return nil, err
	}
	h, err := s.acquire(id.Level, tier)
	if err != nil {
		return nil, err
	}
	defer s.release(h)
	f := h.f
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("storage: stat level %d tier file: %w", id.Level, err)
	}
	if end := s.offsets[id.Level][id.Plane] + sizes[id.Plane]; end > fi.Size() {
		return nil, fmt.Errorf("storage: level %d plane %d extends past its tier file (truncated): %w",
			id.Level, id.Plane, ErrCorrupt)
	}
	buf := make([]byte, sizes[id.Plane])
	if len(buf) > 0 {
		// A short read is truncation, not a transient hiccup: the size check
		// above can pass and the file still shrink before ReadAt (or the
		// filesystem lie about Stat), and tolerating io.EOF with a partial n
		// would hand a zero-padded buffer to version-1 (checksum-less)
		// manifests, which accept it silently. Re-reading a truncated file
		// cannot recover the bytes, so the error classifies as permanent.
		n, err := f.ReadAt(buf, s.offsets[id.Level][id.Plane])
		if err != nil && err != io.EOF {
			return nil, fmt.Errorf("storage: read level %d plane %d: %w", id.Level, id.Plane, err)
		}
		if n != len(buf) {
			return nil, fmt.Errorf("storage: level %d plane %d short read (%d of %d bytes, truncated tier file): %w",
				id.Level, id.Plane, n, len(buf), ErrCorrupt)
		}
	}
	if s.man.Checksums != nil {
		if got, want := crc32.ChecksumIEEE(buf), s.man.Checksums[id.Level][id.Plane]; got != want {
			return nil, fmt.Errorf("storage: level %d plane %d checksum mismatch (got %08x, want %08x): %w",
				id.Level, id.Plane, got, want, ErrCorrupt)
		}
	}
	s.mu.Lock()
	s.tierBytes[tier] += int64(len(buf))
	s.tierReqs[tier]++
	o := s.o
	s.mu.Unlock()
	if o != nil {
		o.Counter("storage.tier." + tier + ".bytes_read").Add(int64(len(buf)))
		o.Counter("storage.tier." + tier + ".requests").Add(1)
	}
	return buf, nil
}

// SetMaxOpenFiles bounds the resident level-file handles to n (0 restores
// the unbounded default). When a new open would exceed the cap, the
// least-recently-used idle handle is evicted; handles pinned by in-flight
// reads are never closed under them, so the cap can be transiently
// exceeded by the read concurrency.
func (s *TieredStore) SetMaxOpenFiles(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.maxOpen = n
	s.evictLocked()
}

// ReleaseLevel eagerly drops level's cached handle — streaming callers call
// it once a level has been fully read so long scans never accumulate fds.
// In-flight reads on the level finish on the old handle; a later read
// simply reopens. Unknown or unopened levels are a no-op.
func (s *TieredStore) ReleaseLevel(level int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.files[level]
	if !ok {
		return
	}
	delete(s.files, level)
	h.evicted = true
	if h.refs == 0 {
		h.f.Close()
	}
}

// acquire pins (opening if needed) the handle for level; pair with release.
func (s *TieredStore) acquire(level int, tier string) (*levelHandle, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tick++
	if h, ok := s.files[level]; ok {
		h.refs++
		h.lastUse = s.tick
		return h, nil
	}
	path := filepath.Join(s.root, tier, fmt.Sprintf("level_%d.seg", level))
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	h := &levelHandle{f: f, refs: 1, lastUse: s.tick}
	s.files[level] = h
	s.evictLocked()
	return h, nil
}

// release unpins a handle, closing it if it was evicted while in use.
func (s *TieredStore) release(h *levelHandle) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h.refs--
	if h.evicted && h.refs == 0 {
		h.f.Close()
	}
}

// evictLocked enforces maxOpen by closing idle LRU handles. Callers hold mu.
func (s *TieredStore) evictLocked() {
	if s.maxOpen <= 0 {
		return
	}
	for len(s.files) > s.maxOpen {
		victim, oldest := -1, int64(0)
		for l, h := range s.files {
			if h.refs > 0 {
				continue
			}
			if victim == -1 || h.lastUse < oldest {
				victim, oldest = l, h.lastUse
			}
		}
		if victim == -1 {
			return // every handle is pinned; cap exceeded transiently
		}
		h := s.files[victim]
		delete(s.files, victim)
		h.evicted = true
		h.f.Close()
	}
}

// openFiles reports the resident handle count (for the fd regression test).
func (s *TieredStore) openFiles() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.files)
}

// TierBytes returns the payload bytes read from each tier so far.
func (s *TieredStore) TierBytes() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.tierBytes))
	for k, v := range s.tierBytes {
		out[k] = v
	}
	return out
}

// TierRequests returns the ranged-read counts per tier so far.
func (s *TieredStore) TierRequests() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.tierReqs))
	for k, v := range s.tierReqs {
		out[k] = v
	}
	return out
}

// Close releases the tier files. Handles pinned by in-flight reads are
// marked for close when their reads finish.
func (s *TieredStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, h := range s.files {
		h.evicted = true
		if h.refs > 0 {
			continue
		}
		if err := h.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.files = make(map[int]*levelHandle)
	return first
}
