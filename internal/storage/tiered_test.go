package storage

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func buildTieredStore(t *testing.T, segs map[SegmentID][]byte) (string, Hierarchy) {
	t.Helper()
	h, err := DefaultHierarchy(3)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "store")
	w, err := CreateTiered(dir, h, []byte(`{"f":"x"}`))
	if err != nil {
		t.Fatal(err)
	}
	// Write planes in order per level.
	for l := 0; l < 3; l++ {
		for p := 0; p < 4; p++ {
			if payload, ok := segs[SegmentID{Level: l, Plane: p}]; ok {
				if err := w.WriteSegment(SegmentID{Level: l, Plane: p}, payload); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, h
}

func TestTieredRoundTrip(t *testing.T) {
	segs := map[SegmentID][]byte{
		{Level: 0, Plane: 0}: []byte("aaa"),
		{Level: 0, Plane: 1}: []byte("bb"),
		{Level: 1, Plane: 0}: []byte("cccc"),
		{Level: 2, Plane: 0}: []byte("d"),
		{Level: 2, Plane: 3}: []byte("eeeee"), // skipped planes 1-2
	}
	dir, _ := buildTieredStore(t, segs)
	st, err := OpenTiered(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if !bytes.Equal(st.Meta(), []byte(`{"f":"x"}`)) {
		t.Fatal("meta mismatch")
	}
	for id, want := range segs {
		got, err := st.ReadSegment(id)
		if err != nil {
			t.Fatalf("%+v: %v", id, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%+v payload mismatch: %q vs %q", id, got, want)
		}
	}
	// Skipped plane reads back empty.
	if got, err := st.ReadSegment(SegmentID{Level: 2, Plane: 1}); err != nil || len(got) != 0 {
		t.Fatalf("skipped plane: %v, %q", err, got)
	}
}

func TestTieredPlacementOnDisk(t *testing.T) {
	dir, h := buildTieredStore(t, map[SegmentID][]byte{
		{Level: 0, Plane: 0}: []byte("x"),
		{Level: 2, Plane: 0}: []byte("y"),
	})
	// Level 0 lives in the fastest tier's directory, level 2 in the slowest.
	fast := h.Tiers[h.Placement[0]].Name
	slow := h.Tiers[h.Placement[2]].Name
	if _, err := os.Stat(filepath.Join(dir, fast, "level_0.seg")); err != nil {
		t.Fatalf("level 0 not in %s: %v", fast, err)
	}
	if _, err := os.Stat(filepath.Join(dir, slow, "level_2.seg")); err != nil {
		t.Fatalf("level 2 not in %s: %v", slow, err)
	}
}

func TestTieredPerTierAccounting(t *testing.T) {
	dir, h := buildTieredStore(t, map[SegmentID][]byte{
		{Level: 0, Plane: 0}: make([]byte, 100),
		{Level: 2, Plane: 0}: make([]byte, 7),
	})
	st, err := OpenTiered(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	st.ReadSegment(SegmentID{Level: 0, Plane: 0})
	st.ReadSegment(SegmentID{Level: 2, Plane: 0})
	st.ReadSegment(SegmentID{Level: 2, Plane: 0})
	fast := h.Tiers[h.Placement[0]].Name
	slow := h.Tiers[h.Placement[2]].Name
	tb, tr := st.TierBytes(), st.TierRequests()
	if tb[fast] != 100 || tr[fast] != 1 {
		t.Fatalf("fast tier accounting: %d bytes, %d reqs", tb[fast], tr[fast])
	}
	if tb[slow] != 14 || tr[slow] != 2 {
		t.Fatalf("slow tier accounting: %d bytes, %d reqs", tb[slow], tr[slow])
	}
}

func TestTieredWriterValidation(t *testing.T) {
	h, _ := DefaultHierarchy(2)
	dir := filepath.Join(t.TempDir(), "s")
	w, err := CreateTiered(dir, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteSegment(SegmentID{Level: 5, Plane: 0}, nil); err == nil {
		t.Fatal("out-of-placement level accepted")
	}
	if err := w.WriteSegment(SegmentID{Level: 0, Plane: 1}, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteSegment(SegmentID{Level: 0, Plane: 0}, []byte("b")); err == nil {
		t.Fatal("out-of-order plane accepted")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteSegment(SegmentID{Level: 0, Plane: 2}, nil); err == nil {
		t.Fatal("write after close accepted")
	}
	// No placement at all is rejected at creation.
	if _, err := CreateTiered(dir, Hierarchy{Tiers: DefaultTiers()}, nil); err == nil {
		t.Fatal("hierarchy without placement accepted")
	}
}

func TestOpenTieredRejectsCorrupt(t *testing.T) {
	dir := t.TempDir()
	if _, err := OpenTiered(dir); err == nil {
		t.Fatal("missing manifest accepted")
	}
	os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("nope"), 0o644)
	if _, err := OpenTiered(dir); err == nil {
		t.Fatal("corrupt manifest accepted")
	}
	os.WriteFile(filepath.Join(dir, "manifest.json"),
		[]byte(`{"version":99}`), 0o644)
	if _, err := OpenTiered(dir); err == nil {
		t.Fatal("wrong version accepted")
	}
	// Version 2 must carry one checksum per plane.
	os.WriteFile(filepath.Join(dir, "manifest.json"),
		[]byte(`{"version":2,"tier_names":["a"],"placement":[0],"levels":[[3]],"checksums":[[]]}`), 0o644)
	if _, err := OpenTiered(dir); err == nil {
		t.Fatal("checksum/plane count mismatch accepted")
	}
	os.WriteFile(filepath.Join(dir, "manifest.json"),
		[]byte(`{"version":2,"tier_names":["a"],"placement":[0],"levels":[[3]]}`), 0o644)
	if _, err := OpenTiered(dir); err == nil {
		t.Fatal("version-2 manifest without checksums accepted")
	}
	// Version 1 must not carry checksums.
	os.WriteFile(filepath.Join(dir, "manifest.json"),
		[]byte(`{"version":1,"tier_names":["a"],"placement":[0],"levels":[[3]],"checksums":[[7]]}`), 0o644)
	if _, err := OpenTiered(dir); err == nil {
		t.Fatal("version-1 manifest with checksums accepted")
	}
}

func TestTieredChecksumDetectsCorruption(t *testing.T) {
	dir, h := buildTieredStore(t, map[SegmentID][]byte{
		{Level: 0, Plane: 0}: []byte("good data here"),
		{Level: 0, Plane: 1}: []byte("untouched"),
	})
	// Flip one byte of plane 0 on disk.
	path := filepath.Join(dir, h.Tiers[h.Placement[0]].Name, "level_0.seg")
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[2] ^= 0x01
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := OpenTiered(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	_, err = st.ReadSegment(SegmentID{Level: 0, Plane: 0})
	if err == nil {
		t.Fatal("corrupted payload decoded")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corruption error does not wrap ErrCorrupt: %v", err)
	}
	if Classify(err) != FaultPermanent {
		t.Fatal("corruption must classify permanent")
	}
	// The undamaged plane still reads (its checksum matches).
	if _, err := st.ReadSegment(SegmentID{Level: 0, Plane: 1}); err != nil {
		t.Fatalf("clean plane rejected: %v", err)
	}
}

// downgradeManifestV1 rewrites a store's manifest as version 1 (no
// checksums), as written by pre-checksum stores.
func downgradeManifestV1(t *testing.T, dir string) {
	t.Helper()
	manPath := filepath.Join(dir, "manifest.json")
	blob, err := os.ReadFile(manPath)
	if err != nil {
		t.Fatal(err)
	}
	var man map[string]any
	if err := json.Unmarshal(blob, &man); err != nil {
		t.Fatal(err)
	}
	man["version"] = 1
	delete(man, "checksums")
	blob, err = json.Marshal(man)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(manPath, blob, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestTieredReadsVersion1Manifest(t *testing.T) {
	dir, _ := buildTieredStore(t, map[SegmentID][]byte{
		{Level: 0, Plane: 0}: []byte("v1 payload"),
	})
	downgradeManifestV1(t, dir)
	st, err := OpenTiered(dir)
	if err != nil {
		t.Fatalf("version-1 store rejected: %v", err)
	}
	defer st.Close()
	got, err := st.ReadSegment(SegmentID{Level: 0, Plane: 0})
	if err != nil || !bytes.Equal(got, []byte("v1 payload")) {
		t.Fatalf("version-1 read: %q, %v", got, err)
	}
}

// TestTieredTruncationDetectedWithoutChecksums is the short-read regression
// test: a tier file truncated after Open must fail the read with a
// permanent-classifiable error — never return a zero-padded buffer — even
// against a version-1 manifest, whose missing checksums cannot catch it.
func TestTieredTruncationDetectedWithoutChecksums(t *testing.T) {
	dir, _ := buildTieredStore(t, map[SegmentID][]byte{
		{Level: 0, Plane: 0}: []byte("plane zero"),
		{Level: 0, Plane: 1}: []byte("plane one payload"),
	})
	downgradeManifestV1(t, dir)
	st, err := OpenTiered(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// Warm the cached file handle with a good read.
	if _, err := st.ReadSegment(SegmentID{Level: 0, Plane: 0}); err != nil {
		t.Fatal(err)
	}
	// Truncate mid-way through plane 1, as a tier losing its tail would.
	tier, err := st.TierOf(0)
	if err != nil {
		t.Fatal(err)
	}
	levelPath := filepath.Join(dir, tier, "level_0.seg")
	if err := os.Truncate(levelPath, int64(len("plane zero")+3)); err != nil {
		t.Fatal(err)
	}
	got, err := st.ReadSegment(SegmentID{Level: 0, Plane: 1})
	if err == nil {
		t.Fatalf("truncated plane read succeeded with %q; zero-padded buffers must not pass", got)
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncation error = %v, want it to wrap ErrCorrupt", err)
	}
	if Classify(err) != FaultPermanent {
		t.Fatal("truncation classified as transient; retries cannot restore lost bytes")
	}
	// The intact prefix stays readable: degraded sessions fall back to it.
	if _, err := st.ReadSegment(SegmentID{Level: 0, Plane: 0}); err != nil {
		t.Fatalf("plane 0 unreadable after tail truncation: %v", err)
	}
}

func TestTieredCloseIsAtomic(t *testing.T) {
	h, err := DefaultHierarchy(2)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "store")
	w, err := CreateTiered(dir, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteSegment(SegmentID{Level: 0, Plane: 0}, []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Sabotage the commit: a directory squats on level 0's final name, so
	// the tmp→final rename must fail after the files are written.
	tier0 := filepath.Join(dir, h.Tiers[h.Placement[0]].Name)
	if err := os.MkdirAll(filepath.Join(tier0, "level_0.seg"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err == nil {
		t.Fatal("sabotaged Close succeeded")
	}
	// The failed Close must not leave a manifest (OpenTiered half-accepting
	// the store) nor stray temp files.
	if _, err := os.Stat(filepath.Join(dir, "manifest.json")); !os.IsNotExist(err) {
		t.Fatalf("failed Close left a manifest: %v", err)
	}
	if _, err := OpenTiered(dir); err == nil {
		t.Fatal("half-written store opened")
	}
	matches, err := filepath.Glob(filepath.Join(dir, "*", "*.tmp"))
	if err != nil {
		t.Fatal(err)
	}
	tmpMan, err := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches)+len(tmpMan) > 0 {
		t.Fatalf("failed Close left temp files: %v %v", matches, tmpMan)
	}
}

func TestTieredCloseLeavesNoTempFiles(t *testing.T) {
	dir, _ := buildTieredStore(t, map[SegmentID][]byte{
		{Level: 0, Plane: 0}: []byte("x"),
		{Level: 1, Plane: 0}: []byte("y"),
	})
	var temps []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && filepath.Ext(path) == ".tmp" {
			temps = append(temps, path)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(temps) > 0 {
		t.Fatalf("successful Close left temp files: %v", temps)
	}
}

func TestTieredReadValidation(t *testing.T) {
	dir, _ := buildTieredStore(t, map[SegmentID][]byte{{Level: 0, Plane: 0}: {1}})
	st, err := OpenTiered(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.ReadSegment(SegmentID{Level: 9, Plane: 0}); err == nil {
		t.Fatal("bad level accepted")
	}
	if _, err := st.ReadSegment(SegmentID{Level: 0, Plane: 9}); err == nil {
		t.Fatal("bad plane accepted")
	}
	if _, err := st.TierOf(9); err == nil {
		t.Fatal("TierOf bad level accepted")
	}
}
